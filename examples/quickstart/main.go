// Quickstart: make a lock-free linked list durably linearizable with the
// FliT default (automatic) mode — the paper's Theorem 3.1 in action — then
// crash the machine and recover.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/list"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func main() {
	// 1. Simulated NVRAM + persistent heap (PMDK's libvmmalloc in the
	//    paper). One million words is plenty here.
	mem := pmem.New(pmem.DefaultConfig(1 << 20))
	heap := pheap.New(mem)

	// 2. The FliT policy: Algorithm 4 over a 1MB hashed flit-counter
	//    table. Automatic mode makes *every* instruction a p-instruction —
	//    no algorithmic insight required, any linearizable structure
	//    becomes durably linearizable.
	policy := core.NewFliT(core.NewHashTable(1 << 20))
	cfg := dstruct.Config{
		Heap:   heap,
		Policy: policy,
		Mode:   dstruct.Automatic,
		Stride: dstruct.StrideFor(policy),
	}

	l := list.New(cfg)
	th := l.NewThread().(*list.Thread)
	for k := uint64(1); k <= 10; k++ {
		th.Insert(k, k*100)
	}
	th.Delete(3)
	th.Delete(7)
	fmt.Println("before crash:", keys(l.Snapshot()), "(deleted 3 and 7)")

	// 3. Crash. DropUnfenced is the harshest model: anything not
	//    explicitly flushed+fenced is gone.
	watermark := heap.Watermark()
	image := mem.CrashImage(pmem.DropUnfenced, 42)
	fmt.Println("power failure! volatile state lost, reading back the persistent image...")

	// 4. Recover: rebuild the heap over the image and re-attach the list.
	mem2 := pmem.NewFromImage(image, mem.Config())
	heap2 := pheap.Recover(mem2, watermark)
	cfg2 := cfg
	cfg2.Heap = heap2
	l2 := list.Recover(cfg2)

	fmt.Println("after recovery:", keys(l2.Snapshot()))
	th2 := l2.NewThread().(*list.Thread)
	if v, ok := th2.Get(5); ok {
		fmt.Printf("recovered value for key 5: %d\n", v)
	}
	if !th2.Contains(3) && !th2.Contains(7) {
		fmt.Println("deleted keys stayed deleted: durable linearizability held")
	}
	// The recovered structure is fully operational.
	th2.Insert(11, 1100)
	fmt.Println("post-recovery insert works:", th2.Contains(11))
}

func keys(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := uint64(0); k <= 20; k++ {
		if _, ok := m[k]; ok {
			out = append(out, k)
		}
	}
	return out
}
