// taskqueue: a durable work queue (the Friedman et al. queue the paper
// cites in §4 as the example of volatile head/tail pointers). Producers
// enqueue jobs, consumers dequeue and acknowledge them, the machine
// crashes mid-stream, and after recovery no acknowledged job is lost and
// no completed job runs twice — exactly-once hand-off across a power
// failure.
//
// Run: go run ./examples/taskqueue
package main

import (
	"fmt"
	"sync"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/queue"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func main() {
	mem := pmem.New(pmem.DefaultConfig(1 << 20))
	heap := pheap.New(mem)
	policy := core.NewFliT(core.NewHashTable(1 << 18))
	cfg := dstruct.Config{
		Heap: heap, Policy: policy,
		Mode: dstruct.Manual, Stride: dstruct.StrideFor(policy),
	}
	q := queue.New(cfg)

	var mu sync.Mutex
	produced := map[uint64]bool{} // acknowledged enqueues
	consumed := map[uint64]bool{} // acknowledged dequeues
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := q.NewThread()
			th.T().SetCrashAfter(int64(2_000 + p*777))
			pmem.RunToCrash(func() {
				for i := 0; i < 1000; i++ {
					job := uint64(p*1000 + i + 1)
					th.Enqueue(job)
					mu.Lock()
					produced[job] = true
					mu.Unlock()
				}
			})
		}(p)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			th := q.NewThread()
			th.T().SetCrashAfter(int64(1_500 + c*901))
			pmem.RunToCrash(func() {
				for {
					if job, ok := th.Dequeue(); ok {
						mu.Lock()
						consumed[job] = true
						mu.Unlock()
					}
				}
			})
		}(c)
	}
	wg.Wait()
	fmt.Printf("crash: %d jobs acknowledged-produced, %d acknowledged-consumed\n",
		len(produced), len(consumed))

	img := mem.CrashImage(pmem.RandomSubset, 3)
	mem2 := pmem.NewFromImage(img, mem.Config())
	cfg2 := cfg
	cfg2.Heap = pheap.Recover(mem2, heap.Watermark())
	q2 := queue.Recover(cfg2)

	// Drain the recovered queue and audit exactly-once delivery.
	th := q2.NewThread()
	recovered := map[uint64]bool{}
	for {
		job, ok := th.Dequeue()
		if !ok {
			break
		}
		if recovered[job] {
			fmt.Printf("DUPLICATE job %d ✗\n", job)
			return
		}
		recovered[job] = true
	}
	lost, replayed := 0, 0
	for job := range produced {
		if !recovered[job] && !consumed[job] {
			lost++
		}
	}
	for job := range consumed {
		if recovered[job] {
			replayed++
		}
	}
	fmt.Printf("recovered queue delivered %d jobs\n", len(recovered))
	switch {
	case replayed > 0:
		fmt.Printf("%d completed jobs would run twice ✗\n", replayed)
	case lost > 2: // <= #consumers jobs may sit in a crashed consumer's hands
		fmt.Printf("%d acknowledged jobs lost ✗\n", lost)
	default:
		fmt.Println("no acknowledged job lost, no completed job replayed ✓")
	}
}
