// kvstore: a durable key-value store on the FliT hash table, crashed in
// the middle of a concurrent write burst at instruction granularity —
// exactly where a power failure could land — then recovered and audited.
//
// Every acknowledged write must survive; writes that were still in flight
// may or may not (durable linearizability allows either).
//
// Run: go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func main() {
	mem := pmem.New(pmem.DefaultConfig(1 << 22))
	heap := pheap.New(mem)
	policy := core.NewFliT(core.NewHashTable(1 << 20))
	cfg := dstruct.Config{
		Heap: heap, Policy: policy,
		// NVTraverse mode: traversals stay volatile, decisive writes
		// persist — the store stays durable but much faster than naive
		// flushing.
		Mode:   dstruct.NVTraverse,
		Stride: dstruct.StrideFor(policy),
	}
	kv := hashtable.New(cfg, 1024)

	// Concurrent writers, each acknowledging writes as they complete.
	const writers = 4
	const perWriter = 500
	acked := make([][]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := kv.NewThread().(*hashtable.Thread)
			// Crash this writer after a pseudo-random number of memory
			// instructions — mid-operation, wherever that lands.
			th.Ctx().T.SetCrashAfter(int64(1_500 + w*911))
			pmem.RunToCrash(func() {
				for i := 0; i < perWriter; i++ {
					key := uint64(w*perWriter + i)
					th.Insert(key, key*10)
					// Only acknowledged (completed) writes are promised.
					acked[w] = append(acked[w], key)
				}
			})
		}(w)
	}
	wg.Wait()
	total := 0
	for w := range acked {
		total += len(acked[w])
	}
	fmt.Printf("crash hit during the burst: %d writes acknowledged before power failure\n", total)

	// Materialize the persistent image and recover.
	watermark := heap.Watermark()
	image := mem.CrashImage(pmem.RandomSubset, 7) // evictions + lost write-backs
	mem2 := pmem.NewFromImage(image, mem.Config())
	cfg2 := cfg
	cfg2.Heap = pheap.Recover(mem2, watermark)
	kv2 := hashtable.Recover(cfg2)

	th := kv2.NewThread().(*hashtable.Thread)
	lost := 0
	for w := range acked {
		for _, key := range acked[w] {
			if v, ok := th.Get(key); !ok || v != key*10 {
				lost++
			}
		}
	}
	recovered := len(kv2.Snapshot())
	fmt.Printf("recovered store holds %d keys\n", recovered)
	if lost == 0 {
		fmt.Printf("all %d acknowledged writes survived the crash ✓\n", total)
	} else {
		fmt.Printf("DURABILITY VIOLATION: %d acknowledged writes lost ✗\n", lost)
	}
	if extra := recovered - total; extra > 0 {
		fmt.Printf("(%d in-flight writes also made it — allowed: they were never acknowledged)\n", extra)
	}
}
