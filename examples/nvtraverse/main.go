// nvtraverse: the three durability methods of the paper, side by side on
// the same BST workload — automatic (every instruction persisted),
// NVTraverse (volatile traversals), and manual (hand-tuned) — showing how
// many flushes each issues and what that does to throughput, with and
// without FliT.
//
// Run: go run ./examples/nvtraverse
package main

import (
	"fmt"
	"time"

	"flit/internal/dstruct"
	"flit/internal/harness"
)

func main() {
	fmt.Println("BST, 10K keys, 5% updates, one run per durability method")
	fmt.Println()
	fmt.Printf("%-12s %-16s %14s %12s\n", "durability", "policy", "throughput", "pwbs/op")
	for _, mode := range dstruct.Modes {
		for _, pol := range []string{harness.PolPlain, harness.PolHT} {
			r := harness.Measure(
				harness.Spec{DS: "bst", Policy: pol, Mode: mode, KeyRange: 10_000},
				harness.Workload{Threads: 2, UpdatePct: 5, Duration: 200 * time.Millisecond},
			)
			fmt.Printf("%-12s %-16s %11.2f Mops %12.3f\n",
				mode, pol, r.OpsPerSec/1e6, r.PWBsPerOp)
		}
	}
	fmt.Println()
	fmt.Println("Reading the table like the paper does (§6.4):")
	fmt.Println(" - automatic+plain flushes on every load: the naive durable BST")
	fmt.Println(" - automatic+flit skips nearly all of them: durability almost for free")
	fmt.Println(" - nvtraverse/manual shrink the p-instruction set; FliT still helps,")
	fmt.Println("   because the remaining p-loads flush only while a store is pending")
}
