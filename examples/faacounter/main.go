// faacounter: durable statistics counters built on fetch-and-add
// p-instructions. This is the use case the paper highlights as impossible
// under link-and-persist (which requires every store to be a CAS and has
// no spare bit to steal from an arbitrary integer), while FliT instruments
// FAA like any other instruction.
//
// Run: go run ./examples/faacounter
package main

import (
	"fmt"
	"sync"

	"flit/internal/core"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

const counters = 8

func main() {
	mem := pmem.New(pmem.DefaultConfig(1 << 16))
	heap := pheap.New(mem)
	policy := core.NewFliT(core.NewHashTable(1 << 16))

	// A bank of persistent event counters at fixed roots: counter i lives
	// at root slot i (its word has a free neighbor for flit-adjacent too).
	addr := func(i int) pmem.Addr { return heap.Root(i) }

	// Concurrent workers bump counters with persisted FAA. Each increment
	// is durable before the instruction returns.
	const workers = 4
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.RegisterThread()
			for i := 0; i < perWorker; i++ {
				policy.FAA(th, addr((w+i)%counters), 1, core.P)
			}
			policy.Complete(th)
		}(w)
	}
	wg.Wait()

	// Crash with the harshest model and read the counters back.
	image := mem.CrashImage(pmem.DropUnfenced, 1)
	mem2 := pmem.NewFromImage(image, mem.Config())
	th := mem2.RegisterThread()
	var total uint64
	for i := 0; i < counters; i++ {
		v := policy.Load(th, pheap.New(mem2).Root(i), core.P)
		fmt.Printf("counter[%d] = %6d (persisted)\n", i, v)
		total += v
	}
	fmt.Printf("total = %d, expected %d\n", total, workers*perWorker)
	if total == workers*perWorker {
		fmt.Println("every acknowledged FAA survived the crash ✓")
	}

	// And the contrast the paper draws:
	fmt.Println()
	func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Println("link-and-persist, as expected, cannot do this:")
				fmt.Println("  ", r)
			}
		}()
		core.LinkAndPersist{}.FAA(mem2.RegisterThread(), 8, 1, core.P)
	}()
}
