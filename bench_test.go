// Benchmarks regenerating every table and figure of the FliT paper's
// evaluation (§6), plus micro-benchmarks of the substrate. Each
// BenchmarkFigN runs the corresponding harness experiment (short cells;
// use cmd/flitbench for longer, quieter runs) and logs the full table
// under -v; the headline quantity of each figure is emitted as a custom
// benchmark metric.
package flit_test

import (
	"runtime"
	"testing"
	"time"

	"flit/internal/bench"
	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/harness"
	"flit/internal/pheap"
	"flit/internal/pmem"
	"flit/internal/store"
	"flit/internal/workload"
)

func benchOpts() harness.Options {
	return harness.Options{
		Threads:  runtime.GOMAXPROCS(0),
		Duration: 60 * time.Millisecond,
	}
}

func logTables(b *testing.B, tables []*harness.Table) {
	for _, t := range tables {
		b.Log("\n" + t.Format())
	}
}

// BenchmarkFig5 regenerates Figure 5 (flit-HT size tuning, automatic BST).
// Metric: throughput ratio of the 1MB table over the 4KB table at 50%
// updates (the paper's collision collapse).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := harness.Fig5(benchOpts())
		t := tables[0]
		if v4, v1m := t.Rows[0].Cells[2], t.Rows[2].Cells[2]; v4 > 0 {
			b.ReportMetric(v1m/v4, "x_1MB_over_4KB_at50upd")
		}
		logTables(b, tables)
	}
}

// BenchmarkFig6 regenerates Figure 6 (thread scalability, automatic BST).
// Metric: flit-HT throughput at the host's core count, in Mops/s.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := harness.Fig6(benchOpts())
		t := tables[0]
		cores := 0
		for ci := range t.Cols {
			if t.Cols[ci] == "" {
				break
			}
			cores = ci
			if t.Cols[ci] == "2" {
				break
			}
		}
		b.ReportMetric(t.Rows[2].Cells[cores], "Mops_flitHT_atCores")
		logTables(b, tables)
	}
}

// BenchmarkFig7 regenerates Figure 7 (structures x durability x policy).
// Metrics: min and max flit-HT-over-plain speedups across all cells (the
// paper reports 2.17x..99.5x).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := harness.Fig7(benchOpts())
		summary := tables[len(tables)-1]
		minS, maxS := 1e18, 0.0
		for _, row := range summary.Rows {
			for _, v := range row.Cells {
				if v == 0 {
					continue
				}
				if v < minS {
					minS = v
				}
				if v > maxS {
					maxS = v
				}
			}
		}
		b.ReportMetric(minS, "x_speedup_min")
		b.ReportMetric(maxS, "x_speedup_max")
		logTables(b, tables)
	}
}

// BenchmarkFig8 regenerates Figure 8 (update-ratio sweep, normalized to
// the non-persistent baseline). Small sizes only at bench durations; run
// flitbench for the large sweep. Metric: flit-HT fraction of baseline on
// the small BST at 0% updates (the paper shows near-1.0).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Small = true
		tables := harness.Fig8(o)
		for _, t := range tables {
			for _, r := range t.Rows {
				if r.Label == "flit-HT(1MB)" {
					b.ReportMetric(r.Cells[0], "frac_of_baseline_bst0upd")
				}
				break
			}
			break
		}
		logTables(b, tables)
	}
}

// BenchmarkFig9 regenerates Figure 9 (flushes per operation). Metric:
// plain-over-flit-HT pwb ratio on the automatic list (the redundant
// flushes FliT eliminates).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := harness.Fig9(benchOpts())
		t := tables[0]
		var plain, flit float64
		for _, r := range t.Rows {
			switch r.Label {
			case "plain":
				plain = r.Cells[2]
			case "flit-HT(1MB)":
				flit = r.Cells[2]
			}
		}
		if flit > 0 {
			b.ReportMetric(plain/flit, "x_pwbs_plain_over_flit")
		}
		logTables(b, tables)
	}
}

// BenchmarkAblationInvalidate regenerates ablation A (clwb invalidation).
func BenchmarkAblationInvalidate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTables(b, harness.AblationInvalidate(benchOpts()))
	}
}

// BenchmarkAblationPacked regenerates ablation B (packed flit-counters).
func BenchmarkAblationPacked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTables(b, harness.AblationPacked(benchOpts()))
	}
}

// BenchmarkAblationPerLine regenerates ablation C (per-cache-line
// counters, the paper's future-work variant).
func BenchmarkAblationPerLine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTables(b, harness.AblationPerLine(benchOpts()))
	}
}

// BenchmarkAblationIzraelevitz regenerates ablation D (the original
// Izraelevitz et al. construction as the historical baseline).
func BenchmarkAblationIzraelevitz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTables(b, harness.AblationIzraelevitz(benchOpts()))
	}
}

// BenchmarkAblationZipf regenerates ablation E (skewed-access contention).
func BenchmarkAblationZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTables(b, harness.AblationZipf(benchOpts()))
	}
}

// --- bench-matrix adapter ---

// BenchmarkMatrixSmoke runs the CI perf-gate matrix (internal/bench's
// "smoke" preset, shortened) and re-emits every report cell through the
// Go-benchmark custom-metric channel — the thin adapter that keeps `go
// test -bench` output and the BENCH_*.json schema reporting the same
// numbers from the same fold.
func BenchmarkMatrixSmoke(b *testing.B) {
	m, ok := bench.Preset("smoke")
	if !ok {
		b.Fatal("smoke preset missing")
	}
	m.Duration = 30 * time.Millisecond
	m.Warmup = 15 * time.Millisecond
	m.Repeats = 1
	for i := 0; i < b.N; i++ {
		rep, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		bench.ReportMetrics(b, rep)
	}
}

// BenchmarkMatrixSmokeVClock is BenchmarkMatrixSmoke under pmem's
// virtual-clock cost mode: same modeled costs and near-identical
// pwbs/op cells, no calibrated spin loops. Skipping the spin burn collapses the
// YCSB load phases outright and — because per-op wall cost no longer
// carries spin-granularity noise — lets the measured windows shrink to a
// third while each still collects more ops than the longer spin-mode
// window does, for a ≥2x wall-clock win overall. Throughput cells are
// not comparable with the spin variant's; pwbs/op cells are identical.
func BenchmarkMatrixSmokeVClock(b *testing.B) {
	m, ok := bench.Preset("smoke")
	if !ok {
		b.Fatal("smoke preset missing")
	}
	m.Duration = 5 * time.Millisecond
	m.Warmup = 2 * time.Millisecond
	m.Repeats = 1
	m.VirtualClock = true
	for i := 0; i < b.N; i++ {
		rep, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		bench.ReportMetrics(b, rep)
	}
}

// --- substrate micro-benchmarks ---

func newBenchMem(b *testing.B) (*pmem.Memory, *pmem.Thread) {
	m := pmem.New(pmem.DefaultConfig(1 << 16))
	return m, m.RegisterThread()
}

// BenchmarkRawLoad measures an instrumented volatile load.
func BenchmarkRawLoad(b *testing.B) {
	_, th := newBenchMem(b)
	th.Store(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Load(64)
	}
}

// BenchmarkPWBPFence measures a flush+fence pair — the cost FliT avoids.
func BenchmarkPWBPFence(b *testing.B) {
	_, th := newBenchMem(b)
	th.Store(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.PWB(64)
		th.PFence()
	}
}

// BenchmarkPLoadUntagged measures FliT's p-load fast path (tag check, no
// flush): this is what every read in an automatic-mode traversal costs.
func BenchmarkPLoadUntagged(b *testing.B) {
	_, th := newBenchMem(b)
	pol := core.NewFliT(core.NewHashTable(1 << 20))
	pol.Store(th, 64, 1, core.P)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Load(th, 64, core.P)
	}
}

// BenchmarkPLoadPlain measures the plain policy's p-load (unconditional
// flush) for contrast.
func BenchmarkPLoadPlain(b *testing.B) {
	_, th := newBenchMem(b)
	pol := core.Plain{}
	pol.Store(th, 64, 1, core.P)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Load(th, 64, core.P)
		if i%64 == 0 {
			th.PFence() // drain the write-back queue as a real op would
		}
	}
}

// BenchmarkPStore measures a full Algorithm 4 shared p-store.
func BenchmarkPStore(b *testing.B) {
	_, th := newBenchMem(b)
	pol := core.NewFliT(core.NewHashTable(1 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Store(th, 64, uint64(i), core.P)
	}
}

// BenchmarkSetContains measures a single-threaded automatic-mode Contains
// on each structure under flit-HT (10K keys).
func BenchmarkSetContains(b *testing.B) {
	for _, ds := range harness.DataStructures {
		b.Run(ds, func(b *testing.B) {
			inst := harness.Build(harness.Spec{
				DS: ds, Policy: harness.PolHT, Mode: dstruct.Automatic, KeyRange: 10_000,
			})
			inst.Prefill()
			th := inst.Set.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Contains(uint64(i*2654435761) % 10_000)
			}
		})
	}
}

// BenchmarkSetInsertDelete measures an automatic-mode insert+delete pair
// under flit-HT.
func BenchmarkSetInsertDelete(b *testing.B) {
	for _, ds := range harness.DataStructures {
		b.Run(ds, func(b *testing.B) {
			inst := harness.Build(harness.Spec{
				DS: ds, Policy: harness.PolHT, Mode: dstruct.Automatic, KeyRange: 10_000,
				Duration: 10 * time.Second, // leak budget for the skiplist
			})
			inst.Prefill()
			th := inst.Set.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i*2654435761)%10_000 + 1
				th.Insert(k, k)
				th.Delete(k)
			}
		})
	}
}

// --- FliT-Store service-layer benchmarks ---

func newBenchStore(b *testing.B, shards, keys int) *store.Store {
	b.Helper()
	st, err := store.New(store.Options{
		Shards: shards, ExpectedKeys: keys, Policy: harness.PolHT,
	})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStorePut measures the session upsert hot path: hash, shard
// route, durable insert-or-overwrite (8 shards, flit-HT, automatic).
func BenchmarkStorePut(b *testing.B) {
	const keys = 1 << 15
	st := newBenchStore(b, 8, keys)
	sess := store.Open[string](st, store.Direct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) & (keys - 1)
		sess.Put(workload.Key(k), uint64(i))
	}
}

// BenchmarkStoreGet measures the read hot path on a loaded store.
func BenchmarkStoreGet(b *testing.B) {
	const keys = 1 << 14
	st := newBenchStore(b, 8, keys)
	workload.Load(st, keys, runtime.GOMAXPROCS(0))
	sess := store.Open[string](st, store.Direct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Get(workload.Key(uint64(i*2654435761) % keys))
	}
}

// BenchmarkStoreWorkload runs the YCSB-style mixes; each iteration is one
// timed window, with throughput and tail latency reported as metrics.
func BenchmarkStoreWorkload(b *testing.B) {
	const records = 10_000
	for _, mix := range []string{"a", "b", "c", "f"} {
		for _, dist := range []string{workload.DistUniform, workload.DistZipfian} {
			b.Run(mix+"/"+dist, func(b *testing.B) {
				st := newBenchStore(b, 8, records*2)
				workload.Load(st, records, runtime.GOMAXPROCS(0))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := workload.Run(st, workload.Spec{
						Mix: mix, Dist: dist,
						Threads:  runtime.GOMAXPROCS(0),
						Duration: 50 * time.Millisecond,
						Records:  records, Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.OpsPerSec, "ops/s")
					b.ReportMetric(float64(res.P99.Nanoseconds()), "p99_ns")
					b.ReportMetric(res.PWBsPerOp, "pwbs/op")
				}
			})
		}
	}
}

// BenchmarkStoreRecovery measures shard-parallel post-crash rebuild of a
// loaded store; the serial/parallel ratio is reported as a metric.
func BenchmarkStoreRecovery(b *testing.B) {
	const records = 20_000
	for _, shards := range []int{1, 8} {
		b.Run(map[int]string{1: "shards=1", 8: "shards=8"}[shards], func(b *testing.B) {
			st := newBenchStore(b, shards, records*2)
			workload.Load(st, records, runtime.GOMAXPROCS(0))
			wm := st.Heap().Watermark()
			img := st.Mem().CrashImage(pmem.DropUnfenced, 7)
			cfg := st.Mem().Config()
			opts := st.Opts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mem2 := pmem.NewFromImage(img, cfg)
				b.StartTimer()
				_, rs, err := store.Recover(mem2, wm, opts)
				if err != nil {
					b.Fatal(err)
				}
				var serial time.Duration
				for _, d := range rs.Shards {
					serial += d
				}
				if rs.Elapsed > 0 {
					b.ReportMetric(float64(serial)/float64(rs.Elapsed), "x_parallel")
				}
				b.ReportMetric(float64(rs.Keys), "keys")
			}
		})
	}
}

// BenchmarkArenaAlloc measures the persistent allocator's hot path.
func BenchmarkArenaAlloc(b *testing.B) {
	m := pmem.New(pmem.DefaultConfig(1 << 24))
	ar := pheap.New(m).NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ar.Alloc(4)
		ar.Free(p, 4)
	}
}
