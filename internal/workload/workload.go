// Package workload is a YCSB-style workload subsystem for FliT-Store: the
// six core operation mixes (A–F), uniform / zipfian / latest key
// distributions, and a runner that drives store sessions while recording
// throughput, tail latency (p50/p95/p99) and per-policy flush counts from
// the pmem statistics.
//
// Deviations from YCSB proper, forced by the simulated substrate, are
// deliberate and documented: records are fixed 64-bit values rather than
// 10×100B fields, and workload E's range scan is approximated as a burst
// of point reads over consecutive key indices (the store's hashed
// keyspace has no order to scan).
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
)

// OpKind classifies generated operations.
type OpKind int

// Operation kinds, in YCSB's vocabulary.
const (
	Read OpKind = iota
	Update
	Insert
	ReadModifyWrite
	Scan
	// Add is an atomic increment/decrement (store Add): the generator
	// emits self-cancelling ±1 deltas, the churny counter traffic mix G
	// uses to demonstrate net-delta coalescing.
	Add
	numKinds
)

func (k OpKind) String() string {
	switch k {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case ReadModifyWrite:
		return "rmw"
	case Scan:
		return "scan"
	case Add:
		return "add"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Mix is an operation mix in percent, summing to 100.
type Mix struct {
	Name string
	// Read..Add are the percentages of each kind.
	Read, Update, Insert, RMW, Scan, Add int
}

// Validate checks that the percentages are non-negative and sum to
// exactly 100. Next classifies by cumulative thresholds over a draw in
// [0,100), so an under-100 mix would silently send the remainder to
// the last kind and an over-100 mix would starve the trailing kinds —
// both are configuration bugs, rejected at construction.
func (m Mix) Validate() error {
	for _, p := range []int{m.Read, m.Update, m.Insert, m.RMW, m.Scan, m.Add} {
		if p < 0 {
			return fmt.Errorf("workload: mix %q has a negative percentage", m.Name)
		}
	}
	if sum := m.Read + m.Update + m.Insert + m.RMW + m.Scan + m.Add; sum != 100 {
		return fmt.Errorf("workload: mix %q sums to %d%%, want 100%%", m.Name, sum)
	}
	return nil
}

// Mixes are the YCSB core workloads — A update-heavy, B read-heavy,
// C read-only, D read-latest, E "scan"-heavy (see package comment),
// F read-modify-write — plus G, the churny counter mix: FAA-heavy,
// self-cancelling ±1 deltas, usually run with a small HotKeys knob so
// traffic piles onto one counter. G exists to measure net-delta
// coalescing honestly: its logical op stream nets to ~nothing.
var Mixes = []Mix{
	{Name: "a", Read: 50, Update: 50},
	{Name: "b", Read: 95, Update: 5},
	{Name: "c", Read: 100},
	{Name: "d", Read: 95, Insert: 5},
	{Name: "e", Scan: 95, Insert: 5},
	{Name: "f", Read: 50, RMW: 50},
	{Name: "g", Read: 5, Add: 95},
}

// MixByName resolves a workload letter (a–g, case-insensitive via exact
// lowercase match).
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (known: a-g)", name)
}

// Key distribution identifiers.
const (
	DistUniform = "uniform"
	DistZipfian = "zipfian"
	DistLatest  = "latest"
)

// DefaultZipfS is the default zipfian skew. YCSB's canonical constant is
// 0.99 but Go's rand.Zipf requires s > 1; 1.1 gives a comparably hot head.
const DefaultZipfS = 1.1

// KeyPrefix starts every canonical workload key; the index follows as a
// zero-padded 16-digit decimal (YCSB's "user<id>" convention).
const KeyPrefix = "user"

// keyDigits is the fixed index width. 10^16 > 2^48, so every index the
// 48-bit keyspace can hold fits without widening.
const keyDigits = 16

// AppendKey appends key index i's canonical form to dst and returns the
// extended slice — the allocation-free spelling of Key for hot op loops,
// which reuse one buffer per worker (strconv-style fixed-width append;
// fmt.Sprintf was the workload runner's dominant allocation).
func AppendKey(dst []byte, i uint64) []byte {
	if i >= 1e16 {
		// Wider than the fixed field (only reachable above the 48-bit
		// keyspace): fall back to plain decimal, as %016d would.
		return strconv.AppendUint(append(dst, KeyPrefix...), i, 10)
	}
	var buf [keyDigits]byte
	for j := keyDigits - 1; j >= 0; j-- {
		buf[j] = byte('0' + i%10)
		i /= 10
	}
	return append(append(dst, KeyPrefix...), buf[:]...)
}

// Key renders key index i as its canonical string form, the store-facing
// key the generator hands to sessions.
func Key(i uint64) string { return string(AppendKey(make([]byte, 0, len(KeyPrefix)+20), i)) }

// Op is one generated operation over key indices.
type Op struct {
	Kind OpKind
	// Key is a key index; pass it through Key for the store-facing form.
	Key uint64
	// ScanLen is the point-read burst length (Scan only).
	ScanLen int
	// Delta is the two's-complement increment (Add only): ±1, drawn with
	// equal probability so the stream self-cancels in expectation.
	Delta uint64
}

// Generator emits one thread's operation stream. Not safe for concurrent
// use; the keyspace high-water mark (limit) is shared across generators so
// inserts by any thread become readable by all.
type Generator struct {
	mix     Mix
	dist    string
	rng     *rand.Rand
	zipf    *rand.Zipf
	zipfS   float64
	zipfMax uint64 // the zipf's imax: draws cover [0, zipfMax]
	limit   *atomic.Uint64
	scanMax int
	hotKeys uint64
}

// NewGenerator builds a generator for mix over dist. records is the
// initial keyspace size; limit (shared across threads, pre-set to
// records) tracks growth from inserts. zipfS ≤ 1 selects DefaultZipfS.
// hotKeys, when non-zero, confines every non-insert key draw to the
// uniform window [0, hotKeys) regardless of dist — the single-hot-key
// knob (hotKeys=1) that concentrates mix G's counter churn. The mix
// must sum to 100 (Mix.Validate).
func NewGenerator(mix Mix, dist string, zipfS float64, records uint64, limit *atomic.Uint64, scanMax int, hotKeys uint64, seed int64) (*Generator, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if records == 0 {
		return nil, fmt.Errorf("workload: empty keyspace")
	}
	if zipfS <= 1 {
		zipfS = DefaultZipfS
	}
	if scanMax < 1 {
		scanMax = 16
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{mix: mix, dist: dist, rng: rng, zipfS: zipfS, limit: limit, scanMax: scanMax, hotKeys: hotKeys}
	switch dist {
	case DistUniform:
	case DistZipfian, DistLatest:
		g.zipfMax = records - 1
		g.zipf = rand.NewZipf(rng, zipfS, 1, g.zipfMax)
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q (uniform|zipfian|latest)", dist)
	}
	return g, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Intn(100)
	var kind OpKind
	switch {
	case r < g.mix.Read:
		kind = Read
	case r < g.mix.Read+g.mix.Update:
		kind = Update
	case r < g.mix.Read+g.mix.Update+g.mix.Insert:
		kind = Insert
	case r < g.mix.Read+g.mix.Update+g.mix.Insert+g.mix.RMW:
		kind = ReadModifyWrite
	case r < g.mix.Read+g.mix.Update+g.mix.Insert+g.mix.RMW+g.mix.Scan:
		kind = Scan
	default:
		kind = Add
	}
	if kind == Insert {
		// Claim a fresh key index past the current high-water mark.
		return Op{Kind: Insert, Key: g.limit.Add(1) - 1}
	}
	op := Op{Kind: kind, Key: g.pick()}
	switch kind {
	case Scan:
		op.ScanLen = 1 + g.rng.Intn(g.scanMax)
	case Add:
		op.Delta = 1
		if g.rng.Intn(2) == 0 {
			op.Delta = ^uint64(0) // -1
		}
	}
	return op
}

// pick draws a key index from the configured distribution over the
// current keyspace.
func (g *Generator) pick() uint64 {
	if g.hotKeys > 0 {
		// Hot-key mode: every non-insert draw lands uniformly in the
		// pinned window, overriding the distribution — the knob is about
		// contention on a few counters, not popularity shape.
		return uint64(g.rng.Int63()) % g.hotKeys
	}
	n := g.limit.Load()
	// Widen the zipf when inserts outgrow the sampled range: rand.Zipf
	// draws from the fixed window [0, imax] set at construction, so a
	// frozen range would leave scramble(z) % n able to reach only the
	// original `records` distinct keys no matter how far the keyspace
	// grows (YCSB-D/E would hammer a stale subset forever). Widening is
	// geometric — regenerate at 2n — so the rebuild cost amortizes to
	// O(log growth); between widenings the newest keys above zipfMax are
	// reachable only through the modulo wrap, a bounded (< 2x) staleness
	// the test suite pins.
	if g.zipf != nil && n-1 > g.zipfMax {
		g.zipfMax = 2*n - 1
		g.zipf = rand.NewZipf(g.rng, g.zipfS, 1, g.zipfMax)
	}
	switch g.dist {
	case DistZipfian:
		// Scrambled zipfian, as YCSB does: the popularity ranks are
		// scattered across the key space (and hence the shards) so skew
		// stresses contention, not one unlucky shard.
		return scramble(g.zipf.Uint64()) % n
	case DistLatest:
		// Wrap instead of clamping: after widening, draws in [n, zipfMax]
		// would otherwise all clamp to recency offset n-1 — piling a fake
		// hotspot onto the oldest key (key 0). The wrapped tail mass is
		// small and zipf-shaped over the whole range; below the widening
		// threshold (zipfMax < n) the modulo is the identity.
		d := g.zipf.Uint64() % n
		return n - 1 - d
	default:
		return uint64(g.rng.Int63()) % n
	}
}

// scramble is a 64-bit finalizer (Murmur3 fmix64).
func scramble(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
