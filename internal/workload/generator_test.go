package workload

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestZipfWidensWithKeyspace: under insert-heavy growth the zipfian
// sampler must follow the high-water mark. The seed state froze the
// zipf at the initial keyspace, so scramble(z) % n could only ever
// reach `records` distinct keys no matter how far the limit grew.
func TestZipfWidensWithKeyspace(t *testing.T) {
	const records = 4
	var limit atomic.Uint64
	limit.Store(records)
	g, err := NewGenerator(Mix{Name: "reads", Read: 100}, DistZipfian, 0, records, &limit, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: before growth, at most `records` distinct keys are
	// reachable (the zipf window is [0, records-1]).
	before := make(map[uint64]bool)
	for i := 0; i < 4096; i++ {
		op := g.Next()
		if op.Key >= records {
			t.Fatalf("pre-growth key %d outside [0,%d)", op.Key, records)
		}
		before[op.Key] = true
	}
	if len(before) > records {
		t.Fatalf("pre-growth reached %d distinct keys from a %d-key window", len(before), records)
	}

	// Simulate an insert-heavy phase growing the keyspace 1024x.
	limit.Store(records * 1024)
	after := make(map[uint64]bool)
	for i := 0; i < 1<<15; i++ {
		after[g.Next().Key] = true
	}
	// With the frozen zipf, |after| is capped at `records` (4). The
	// widened sampler must reach far beyond the original window.
	if len(after) <= records {
		t.Fatalf("post-growth distinct keys = %d: zipf window still frozen at the initial keyspace", len(after))
	}
	if len(after) < 100 {
		t.Fatalf("post-growth distinct keys = %d, want a broad spread over the grown keyspace", len(after))
	}
}

// TestLatestWidensWithKeyspace: the latest distribution's recency
// window follows growth too — new hot keys must be reachable.
func TestLatestWidensWithKeyspace(t *testing.T) {
	const records = 8
	var limit atomic.Uint64
	limit.Store(records)
	g, err := NewGenerator(Mix{Name: "reads", Read: 100}, DistLatest, 0, records, &limit, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	limit.Store(records * 512)
	sawRecent := false
	var oldest, draws int
	for i := 0; i < 1<<14; i++ {
		k := g.Next().Key
		draws++
		if k >= records*256 {
			sawRecent = true
		}
		if k == 0 {
			oldest++
		}
	}
	if !sawRecent {
		t.Fatal("latest distribution never reached the grown keyspace's recent keys")
	}
	// Regression: the widened sampler must not clamp its tail onto the
	// oldest key (key 0 drew ~3.5% of picks under the clamping bug; its
	// fair share is ~0.02%, and the wrapped tail stays well under 1%).
	if frac := float64(oldest) / float64(draws); frac > 0.01 {
		t.Fatalf("key 0 drew %.2f%% of latest picks: widening is clamping onto the oldest key", 100*frac)
	}
}

// TestMixValidation: mixes that do not sum to 100 are rejected at
// construction instead of silently misclassifying the remainder as
// Scan (under-100) or starving trailing kinds (over-100).
func TestMixValidation(t *testing.T) {
	var limit atomic.Uint64
	limit.Store(16)
	for _, tc := range []struct {
		name string
		mix  Mix
		ok   bool
		want string // substring the rejection must carry
	}{
		{"exact-100", Mix{Name: "ok", Read: 50, Update: 50}, true, ""},
		{"all-scan", Mix{Name: "scan", Scan: 100}, true, ""},
		{"under-100", Mix{Name: "under", Read: 50, Update: 40}, false, "sums to 90"},
		{"over-100", Mix{Name: "over", Read: 60, Update: 50}, false, "sums to 110"},
		{"empty", Mix{Name: "empty"}, false, "sums to 0"},
		{"negative", Mix{Name: "neg", Read: 150, Update: -50}, false, "negative"},
	} {
		_, err := NewGenerator(tc.mix, DistUniform, 0, 16, &limit, 0, 0, 1)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: invalid mix accepted", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not explain the rejection (want %q)", tc.name, err, tc.want)
			}
		}
	}
	// The built-in YCSB mixes must all be valid.
	for _, m := range Mixes {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in mix %q invalid: %v", m.Name, err)
		}
	}
}

// TestQuantileSmallN pins the small-n clamps: with bucket-midpoint
// representatives, low quantiles on a handful of samples could report
// values above every observation but the max (or below the min). Every
// quantile must land inside [min, max].
func TestQuantileSmallN(t *testing.T) {
	qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	cases := [][]time.Duration{
		{1000},
		{900, 1100},
		{100, 5000, 5001},
		{70, 900, 901, 40000},
	}
	for _, obs := range cases {
		h := NewHist()
		var min, max time.Duration
		min = obs[0]
		for _, d := range obs {
			h.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if h.Min() != min || h.Max() != max {
			t.Fatalf("n=%d: Min/Max = %v/%v, want %v/%v", len(obs), h.Min(), h.Max(), min, max)
		}
		for _, q := range qs {
			got := h.Quantile(q)
			if got < min || got > max {
				t.Errorf("n=%d q=%v: quantile %v outside recorded range [%v, %v]", len(obs), q, got, min, max)
			}
		}
		// A single observation must be reported exactly at any quantile.
		if len(obs) == 1 && h.Quantile(0.5) != obs[0] {
			t.Errorf("n=1: Quantile(0.5) = %v, want %v", h.Quantile(0.5), obs[0])
		}
	}
	// Merge must propagate the min clamp too.
	a, b := NewHist(), NewHist()
	a.Record(10 * time.Microsecond)
	b.Record(90 * time.Microsecond)
	a.Merge(b)
	if a.Min() != 10*time.Microsecond || a.Max() != 90*time.Microsecond {
		t.Fatalf("merged Min/Max = %v/%v", a.Min(), a.Max())
	}
	if q := a.Quantile(0); q < a.Min() || q > a.Max() {
		t.Fatalf("merged Quantile(0) = %v outside [%v, %v]", q, a.Min(), a.Max())
	}
}

// TestEmptyHistQuantile: the empty histogram stays at zero.
func TestEmptyHistQuantile(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram reports non-zero statistics")
	}
}
