package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flit/internal/store"
)

// Spec describes one timed run against a store.
type Spec struct {
	Mix      string  // workload letter a–f
	Dist     string  // uniform | zipfian | latest
	ZipfS    float64 // zipfian skew; ≤1 selects DefaultZipfS
	Threads  int
	Duration time.Duration
	// Records is the keyspace size at run start (the loaded record
	// count); D/E inserts grow it.
	Records uint64
	// ScanMax bounds workload E's point-read bursts (default 16).
	ScanMax int
	// Rate switches the runner to open-loop arrivals: operations are
	// fired on a fixed schedule at Rate ops/s total (split evenly across
	// threads) instead of back-to-back, and latency is measured from the
	// scheduled arrival — queueing delay under overload is charged to
	// the store, the coordinated-omission-free spelling. Zero keeps the
	// closed loop. Incompatible with Depth > 1.
	Rate float64
	Seed int64

	// Mode selects the session mode each worker runs under (zero value:
	// store.Direct). Batched workers commit once per window; Combined
	// workers announce each window to the per-shard flat combiners.
	Mode store.SessionMode
	// Depth is the operations per window (default 1): workers collect
	// Depth generated ops and execute them as one vector Apply. With
	// Depth > 1 the latency histogram records one sample per window —
	// window completion latency — and RMW decomposes into a Get and a
	// Put slot (a vector window cannot thread one op's read into its
	// write).
	Depth int
	// HotKeys, when non-zero, confines non-insert key draws to the
	// uniform window [0, HotKeys) — mix G's contention knob.
	HotKeys uint64
}

// Result aggregates one run: throughput, tail latency, flush behaviour.
type Result struct {
	Mix       string        `json:"mix"`
	Dist      string        `json:"dist"`
	Threads   int           `json:"threads"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	Ops       uint64        `json:"ops"`
	OpsPerSec float64       `json:"ops_per_sec"`

	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`

	// Rate echoes the open-loop arrival rate (0: closed loop).
	Rate float64 `json:"rate,omitempty"`

	Reads   uint64 `json:"reads"`
	Updates uint64 `json:"updates"`
	Inserts uint64 `json:"inserts"`
	RMWs    uint64 `json:"rmws"`
	Scans   uint64 `json:"scans"`
	Adds    uint64 `json:"adds,omitempty"`

	PWBs      uint64  `json:"pwbs"`
	PFences   uint64  `json:"pfences"`
	PWBsPerOp float64 `json:"pwbs_per_op"`

	// NsPerOp is wall-clock thread-nanoseconds per operation
	// (elapsed × threads / ops — the inverse of per-thread throughput).
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp is Go heap allocations per operation across the
	// measured window (runtime mallocs delta / ops) — the runner's own
	// overhead, which the zero-allocation op loop holds at ≈0.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// OpenLoopSchedule computes one worker's slice of a fixed-rate global
// arrival schedule: the step between the worker's own arrivals and its
// staggered first-arrival offset, such that the union over workers is
// evenly spaced at rate ops/s (not workers-sized lockstep bursts). The
// step is clamped to >= 1ns — an absurd rate would otherwise truncate
// it to zero and the schedule could never reach its deadline. Shared by
// the in-process runner and the network load generator so the two
// open-loop measurements stay comparable.
func OpenLoopSchedule(rate float64, w, workers int) (step, offset time.Duration) {
	step = time.Duration(float64(time.Second) * float64(workers) / rate)
	if step < 1 {
		step = 1
	}
	return step, time.Duration(w) * step / time.Duration(workers)
}

// Load bulk-inserts key indices [0, records) through threads parallel
// sessions (the YCSB load phase) and returns its wall time and
// throughput. Unlike the figure harness's Prefill, latency modeling stays
// on: loading a durable store pays its flushes, and the report says so.
func Load(st *store.Store, records uint64, threads int) (time.Duration, float64) {
	if threads < 1 {
		threads = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sess := store.Open[[]byte](st, store.Direct)
			keyBuf := make([]byte, 0, len(KeyPrefix)+20)
			for i := uint64(t); i < records; i += uint64(threads) {
				keyBuf = AppendKey(keyBuf[:0], i)
				sess.Put(keyBuf, i)
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := float64(records) / elapsed.Seconds()
	return elapsed, ops
}

// Run drives st with the spec's mix and distribution for the configured
// duration and returns throughput, latency percentiles and flush counts.
// Memory statistics are reset at the start of the measured window, so the
// flush counts are the run's alone.
func Run(st *store.Store, sp Spec) (Result, error) {
	mix, err := MixByName(sp.Mix)
	if err != nil {
		return Result{}, err
	}
	if sp.Threads < 1 {
		sp.Threads = 1
	}
	if sp.Records == 0 {
		return Result{}, fmt.Errorf("workload: spec needs Records > 0")
	}
	if sp.Dist == "" {
		sp.Dist = DistUniform
	}
	if sp.Depth < 1 {
		sp.Depth = 1
	}
	if sp.Depth > 1 && sp.Rate > 0 {
		return Result{}, fmt.Errorf("workload: open-loop arrivals (Rate) and windowed execution (Depth > 1) are mutually exclusive")
	}
	scanMax := sp.ScanMax
	if scanMax < 1 {
		scanMax = 16
	}

	var limit atomic.Uint64
	limit.Store(sp.Records)
	gens := make([]*Generator, sp.Threads)
	for t := range gens {
		g, err := NewGenerator(mix, sp.Dist, sp.ZipfS, sp.Records, &limit, sp.ScanMax, sp.HotKeys, sp.Seed+int64(t)*7919)
		if err != nil {
			return Result{}, err
		}
		gens[t] = g
	}

	st.Mem().ResetStats()
	var wg sync.WaitGroup
	hists := make([]*Hist, sp.Threads)
	var kindCounts [numKinds][]uint64
	for k := range kindCounts {
		kindCounts[k] = make([]uint64, sp.Threads)
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	// Workers watch the deadline themselves, from the per-op timestamp
	// they already take for the latency histogram — no stop flag, no
	// sleeping coordinator whose timer wake-up lags when the workers
	// saturate every P (see harness.RunWorkload).
	deadline := start.Add(sp.Duration)
	for t := 0; t < sp.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sess := store.Open[[]byte](st, sp.Mode)
			g := gens[t]
			h := NewHist()
			hists[t] = h
			if sp.Depth > 1 {
				runWindowed(sess, g, sp, h, &limit, kindCounts[:], t, deadline)
				return
			}
			// The op loop is allocation-free: keys render into one reused
			// buffer (AppendKey + the byte-key session API), and latency is
			// taken from one clock reading per op — consecutive timestamps
			// delimit each operation, so an op's recorded latency includes
			// the (tiny) generator step that precedes it rather than paying
			// a second time.Now call to exclude it.
			keyBuf := make([]byte, 0, len(KeyPrefix)+20)
			key := func(i uint64) []byte {
				keyBuf = AppendKey(keyBuf[:0], i)
				return keyBuf
			}
			// Open loop: each worker owns every sp.Threads-th slot of the
			// global arrival schedule; an op whose slot has not arrived
			// yet waits, an op running late starts immediately and its
			// queueing delay lands in the histogram.
			var step time.Duration
			var next time.Time
			open := sp.Rate > 0
			if open {
				var off time.Duration
				step, off = OpenLoopSchedule(sp.Rate, t, sp.Threads)
				next = start.Add(off)
			}
			batched := sp.Mode == store.Batched
			prev := time.Now()
			for {
				if open {
					if !next.Before(deadline) {
						break
					}
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				} else if prev.After(deadline) {
					break
				}
				op := g.Next()
				switch op.Kind {
				case Read:
					sess.Get(key(op.Key))
				case Update:
					sess.Put(key(op.Key), op.Key^uint64(t))
				case Insert:
					sess.Put(key(op.Key), op.Key)
				case ReadModifyWrite:
					v, _ := sess.Get(key(op.Key))
					sess.Put(key(op.Key), v+1)
				case Scan:
					n := limit.Load()
					for j := uint64(0); j < uint64(op.ScanLen); j++ {
						sess.Get(key((op.Key + j) % n))
					}
				case Add:
					sess.Add(key(op.Key), op.Delta)
				}
				if batched {
					// Depth-1 batched degenerates to a commit per op; the
					// group-commit win needs Depth > 1.
					sess.Commit()
				}
				now := time.Now()
				if open {
					h.Record(now.Sub(next))
					next = next.Add(step)
				} else {
					h.Record(now.Sub(prev))
				}
				prev = now
				kindCounts[op.Kind][t]++
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	all := NewHist()
	for _, h := range hists {
		all.Merge(h)
	}
	sum := func(xs []uint64) uint64 {
		var s uint64
		for _, x := range xs {
			s += x
		}
		return s
	}
	stats := st.Mem().TotalStats()
	var ops uint64
	for k := range kindCounts {
		ops += sum(kindCounts[k])
	}
	res := Result{
		Mix: sp.Mix, Dist: sp.Dist, Threads: sp.Threads, Rate: sp.Rate,
		// Ops counts generated operations (a scan burst is one op), which
		// equals the histogram count at Depth 1; windowed runs record one
		// latency sample per window, so the histogram undercounts there.
		Elapsed: elapsed, Ops: ops,
		P50: all.Quantile(0.50), P95: all.Quantile(0.95), P99: all.Quantile(0.99), Max: all.Max(),
		Reads:   sum(kindCounts[Read]),
		Updates: sum(kindCounts[Update]),
		Inserts: sum(kindCounts[Insert]),
		RMWs:    sum(kindCounts[ReadModifyWrite]),
		Scans:   sum(kindCounts[Scan]),
		Adds:    sum(kindCounts[Add]),
		PWBs:    stats.PWBs,
		PFences: stats.PFences,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	if res.Ops > 0 {
		res.PWBsPerOp = float64(res.PWBs) / float64(res.Ops)
		res.NsPerOp = float64(elapsed.Nanoseconds()) * float64(sp.Threads) / float64(res.Ops)
		// Mallocs counts every heap allocation process-wide; the per-run
		// fixed cost (sessions, histograms, generators warm-up) amortizes
		// to ~0 over the ops of any real window.
		res.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Ops)
	}
	return res, nil
}

// runWindowed is the Depth>1 worker loop: collect a window of generated
// ops, execute it as one vector Apply, commit (Batched) and record the
// window's completion latency as one histogram sample. RMW decomposes
// into a Get slot and a Put slot; a Scan expands into its point-read
// burst; both may run a window a few slots past Depth rather than split
// an operation across windows.
func runWindowed(sess *store.Sess[[]byte], g *Generator, sp Spec, h *Hist, limit *atomic.Uint64, kindCounts [][]uint64, t int, deadline time.Time) {
	scanMax := sp.ScanMax
	if scanMax < 1 {
		scanMax = 16
	}
	maxWin := sp.Depth + scanMax
	ops := make([]store.Op[[]byte], 0, maxWin)
	res := make([]store.Result, maxWin)
	bufs := make([][]byte, maxWin)
	for i := range bufs {
		bufs[i] = make([]byte, 0, len(KeyPrefix)+20)
	}
	key := func(slot int, i uint64) []byte {
		bufs[slot] = AppendKey(bufs[slot][:0], i)
		return bufs[slot]
	}
	batched := sp.Mode == store.Batched
	prev := time.Now()
	for !prev.After(deadline) {
		ops = ops[:0]
		for len(ops) < sp.Depth {
			op := g.Next()
			switch op.Kind {
			case Read:
				ops = append(ops, store.Op[[]byte]{Kind: store.OpGet, Key: key(len(ops), op.Key)})
			case Update:
				ops = append(ops, store.Op[[]byte]{Kind: store.OpPut, Key: key(len(ops), op.Key), Val: op.Key ^ uint64(t)})
			case Insert:
				ops = append(ops, store.Op[[]byte]{Kind: store.OpPut, Key: key(len(ops), op.Key), Val: op.Key})
			case ReadModifyWrite:
				ops = append(ops, store.Op[[]byte]{Kind: store.OpGet, Key: key(len(ops), op.Key)})
				ops = append(ops, store.Op[[]byte]{Kind: store.OpPut, Key: key(len(ops), op.Key), Val: op.Key + 1})
			case Scan:
				n := limit.Load()
				for j := uint64(0); j < uint64(op.ScanLen); j++ {
					ops = append(ops, store.Op[[]byte]{Kind: store.OpGet, Key: key(len(ops), (op.Key+j)%n)})
				}
			case Add:
				ops = append(ops, store.Op[[]byte]{Kind: store.OpAdd, Key: key(len(ops), op.Key), Val: op.Delta})
			}
			kindCounts[op.Kind][t]++
		}
		sess.Apply(ops, res[:len(ops)])
		if batched {
			sess.Commit()
		}
		now := time.Now()
		h.Record(now.Sub(prev))
		prev = now
	}
}
