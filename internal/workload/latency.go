package workload

import (
	"math"
	"math/bits"
	"time"
)

// Hist is a fixed-size log-linear latency histogram (HDR-style): exact
// below 2^subBits ns, then subBuckets sub-buckets per power of two, giving
// ≤ 1/subBuckets relative quantile error with a few KB of memory and an
// allocation-free Record path. The zero value is not ready; use NewHist.
type Hist struct {
	counts []uint64
	n      uint64
	min    int64 // smallest recorded value; MaxInt64 while empty
	max    int64
}

const (
	subBits    = 4
	subBuckets = 1 << subBits
	// 63-bit nanosecond range: bucket index peaks below 64*subBuckets.
	histBuckets = 64 * subBuckets
)

// NewHist creates an empty histogram.
func NewHist() *Hist { return &Hist{counts: make([]uint64, histBuckets), min: math.MaxInt64} }

// index maps a nanosecond value to its bucket.
func index(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= subBits
	mant := (u >> (uint(exp) - subBits)) & (subBuckets - 1)
	return int(uint(exp-subBits+1)<<subBits | uint(mant))
}

// value returns a representative (upper-mid) nanosecond value for bucket i.
func value(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := uint(i>>subBits) + subBits - 1
	mant := uint64(i & (subBuckets - 1))
	lo := (uint64(subBuckets) | mant) << (exp - subBits)
	return int64(lo + (uint64(1)<<(exp-subBits))/2)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[index(ns)]++
	h.n++
	if ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Merge accumulates o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-th quantile (q in [0,1]) as a duration, with
// relative error bounded by the bucket width (~6%). The bucket's
// upper-mid representative is clamped into [Min, Max]: with a handful
// of samples, a midpoint can otherwise exceed every recorded
// observation but the max (or undershoot them all), reporting a latency
// nobody measured — the small-n edge the clamps close.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > target {
			v := value(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
