package workload

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestAppendKeyMatchesSprintf pins the allocation-free key renderer to
// the canonical %016d form it replaced: any divergence would silently
// split the keyspace between old and new call sites.
func TestAppendKeyMatchesSprintf(t *testing.T) {
	cases := []uint64{0, 1, 9, 10, 99, 1e6, 1e15, 1e16 - 1, 1e16, 1<<48 - 1, ^uint64(0)}
	for _, i := range cases {
		want := fmt.Sprintf("user%016d", i)
		if got := Key(i); got != want {
			t.Errorf("Key(%d) = %q, want %q", i, got, want)
		}
		if got := string(AppendKey(nil, i)); got != want {
			t.Errorf("AppendKey(nil, %d) = %q, want %q", i, got, want)
		}
	}
	// AppendKey must append, not overwrite.
	if got := string(AppendKey([]byte("x/"), 7)); got != "x/user0000000000000007" {
		t.Errorf("AppendKey prefix handling: got %q", got)
	}
	f := func(i uint64) bool { return Key(i) == fmt.Sprintf("user%016d", i) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAppendKeyReusedBufferIsAllocationFree: the hot-loop spelling —
// AppendKey into a reused buffer — must not allocate once the buffer
// has grown.
func TestAppendKeyReusedBufferIsAllocationFree(t *testing.T) {
	buf := make([]byte, 0, len(KeyPrefix)+20)
	n := testing.AllocsPerRun(1000, func() {
		buf = AppendKey(buf[:0], 123456)
	})
	if n != 0 {
		t.Fatalf("AppendKey into a reused buffer allocates %.1f times per op, want 0", n)
	}
}
