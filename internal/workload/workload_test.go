package workload

import (
	"sync/atomic"
	"testing"
	"time"

	"flit/internal/core"
	"flit/internal/store"
)

func TestMixByName(t *testing.T) {
	for _, m := range Mixes {
		got, err := MixByName(m.Name)
		if err != nil || got.Name != m.Name {
			t.Fatalf("MixByName(%q) = %v, %v", m.Name, got, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("mix %q does not validate: %v", m.Name, err)
		}
	}
	if _, err := MixByName("z"); err == nil {
		t.Fatal("MixByName accepted an unknown mix")
	}
}

func newGen(t *testing.T, mixName, dist string, records uint64) (*Generator, *atomic.Uint64) {
	t.Helper()
	mix, err := MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	var limit atomic.Uint64
	limit.Store(records)
	g, err := NewGenerator(mix, dist, 0, records, &limit, 8, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g, &limit
}

func TestGeneratorProportions(t *testing.T) {
	g, _ := newGen(t, "a", DistUniform, 1000)
	var reads, updates int
	for i := 0; i < 20_000; i++ {
		switch g.Next().Kind {
		case Read:
			reads++
		case Update:
			updates++
		default:
			t.Fatal("mix a generated a kind outside read/update")
		}
	}
	if reads < 9000 || reads > 11000 {
		t.Fatalf("mix a: %d reads of 20000, want ~10000", reads)
	}
	_ = updates
}

func TestInsertsGrowTheKeyspace(t *testing.T) {
	g, limit := newGen(t, "d", DistLatest, 100)
	inserted := 0
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == Insert {
			if op.Key != 100+uint64(inserted) {
				t.Fatalf("insert %d claimed key %d, want %d", inserted, op.Key, 100+inserted)
			}
			inserted++
		} else if op.Key >= limit.Load() {
			t.Fatalf("read key %d beyond keyspace %d", op.Key, limit.Load())
		}
	}
	if inserted == 0 || limit.Load() != 100+uint64(inserted) {
		t.Fatalf("inserted %d, limit %d", inserted, limit.Load())
	}
}

func TestZipfianSkew(t *testing.T) {
	g, _ := newGen(t, "c", DistZipfian, 10_000)
	counts := map[uint64]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// A zipfian head is orders of magnitude hotter than uniform's n/keys=5.
	if max < 50 {
		t.Fatalf("hottest key drawn %d times of %d; no zipfian skew", max, n)
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct keys drawn; scrambling broken?", len(counts))
	}
}

func TestLatestFavorsRecentKeys(t *testing.T) {
	g, _ := newGen(t, "c", DistLatest, 10_000)
	high := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if g.Next().Key >= 9000 {
			high++
		}
	}
	if high < n/2 {
		t.Fatalf("latest distribution drew the top decile only %d/%d times", high, n)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		lo, hi := want*9/10, want*11/10
		if got < lo || got > hi {
			t.Fatalf("Quantile(%g) = %v, want within 10%% of %v", q, got, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if h.Max() != time.Millisecond {
		t.Fatalf("Max = %v, want 1ms", h.Max())
	}

	o := NewHist()
	o.Record(5 * time.Millisecond)
	h.Merge(o)
	if h.Count() != 1001 || h.Max() != 5*time.Millisecond {
		t.Fatalf("after merge: count %d max %v", h.Count(), h.Max())
	}
	if h.Quantile(1) != 5*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want max", h.Quantile(1))
	}
}

func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for ns := int64(0); ns < 1<<20; ns += 7 {
		i := index(ns)
		if i < prev {
			t.Fatalf("index(%d) = %d < previous %d", ns, i, prev)
		}
		prev = i
	}
}

func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 12, Policy: core.PolicyHT, HTBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLoadPopulates(t *testing.T) {
	st := newTestStore(t)
	elapsed, ops := Load(st, 1000, 4)
	if elapsed <= 0 || ops <= 0 {
		t.Fatalf("Load reported elapsed=%v ops/s=%g", elapsed, ops)
	}
	if got := len(st.Snapshot()); got != 1000 {
		t.Fatalf("loaded %d keys, want 1000", got)
	}
}

func TestRunSmoke(t *testing.T) {
	st := newTestStore(t)
	Load(st, 500, 2)
	for _, mixName := range []string{"a", "d", "e", "f"} {
		res, err := Run(st, Spec{
			Mix: mixName, Dist: DistZipfian, Threads: 2,
			Duration: 25 * time.Millisecond, Records: 500, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops == 0 || res.OpsPerSec <= 0 {
			t.Fatalf("mix %s: no throughput: %+v", mixName, res)
		}
		if res.P50 <= 0 || res.P99 < res.P95 || res.P95 < res.P50 {
			t.Fatalf("mix %s: implausible percentiles p50=%v p95=%v p99=%v", mixName, res.P50, res.P95, res.P99)
		}
		if res.PWBs == 0 {
			t.Fatalf("mix %s: flit-ht workload issued no PWBs", mixName)
		}
		switch mixName {
		case "a":
			if res.Updates == 0 || res.Inserts != 0 {
				t.Fatalf("mix a: updates=%d inserts=%d", res.Updates, res.Inserts)
			}
		case "d":
			if res.Inserts == 0 {
				t.Fatal("mix d generated no inserts")
			}
		case "e":
			if res.Scans == 0 {
				t.Fatal("mix e generated no scans")
			}
		case "f":
			if res.RMWs == 0 {
				t.Fatal("mix f generated no read-modify-writes")
			}
		}
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	st := newTestStore(t)
	if _, err := Run(st, Spec{Mix: "z", Records: 10, Duration: time.Millisecond}); err == nil {
		t.Fatal("Run accepted unknown mix")
	}
	if _, err := Run(st, Spec{Mix: "a", Duration: time.Millisecond}); err == nil {
		t.Fatal("Run accepted zero records")
	}
	if _, err := Run(st, Spec{Mix: "a", Records: 10, Dist: "pareto", Duration: time.Millisecond}); err == nil {
		t.Fatal("Run accepted unknown distribution")
	}
}

// TestRunOpenLoop: the open-loop runner paces arrivals to the target
// rate — throughput tracks the schedule, not the store's speed — and
// still reports sane latency percentiles measured from the schedule.
func TestRunOpenLoop(t *testing.T) {
	st := newTestStore(t)
	Load(st, 500, 2)
	res, err := Run(st, Spec{
		Mix: "b", Dist: DistUniform, Threads: 2,
		Duration: 200 * time.Millisecond, Records: 500, Seed: 7,
		Rate: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate != 2000 {
		t.Fatalf("Result.Rate = %v, want 2000", res.Rate)
	}
	// 2000/s over 200ms ≈ 400 scheduled arrivals. Generous slack for
	// scheduler jitter, but pacing must bind in both directions — the
	// closed loop would run two orders of magnitude more ops here.
	if res.Ops > 500 {
		t.Fatalf("open loop ran %d ops at 2000/s over 200ms: pacing is not limiting", res.Ops)
	}
	if res.Ops < 100 {
		t.Fatalf("open loop ran only %d ops at 2000/s over 200ms", res.Ops)
	}
	if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
		t.Fatalf("implausible open-loop percentiles p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
}

// TestMixGIsChurnyAdds: mix G is Add-dominated, its deltas are strictly
// ±1 and roughly self-cancelling, and Add draws respect the keyspace.
func TestMixGIsChurnyAdds(t *testing.T) {
	g, limit := newGen(t, "g", DistUniform, 100)
	adds, reads, plus, minus := 0, 0, 0, 0
	const n = 20_000
	for i := 0; i < n; i++ {
		op := g.Next()
		switch op.Kind {
		case Add:
			adds++
			switch op.Delta {
			case 1:
				plus++
			case ^uint64(0):
				minus++
			default:
				t.Fatalf("Add delta %#x, want ±1", op.Delta)
			}
			if op.Key >= limit.Load() {
				t.Fatalf("Add key %d beyond keyspace %d", op.Key, limit.Load())
			}
		case Read:
			reads++
		default:
			t.Fatalf("mix g generated %v", op.Kind)
		}
	}
	if adds < n*90/100 {
		t.Fatalf("mix g: %d adds of %d, want ≥90%%", adds, n)
	}
	if plus < adds*2/5 || minus < adds*2/5 {
		t.Fatalf("deltas not self-cancelling: +1 ×%d, -1 ×%d", plus, minus)
	}
	_ = reads
}

// TestHotKeysKnob: hotKeys confines every non-insert draw to [0,hotKeys)
// — down to a single hot key — while hotKeys=0 keeps draws spread over
// many distinct keys.
func TestHotKeysKnob(t *testing.T) {
	mix, _ := MixByName("g")
	var limit atomic.Uint64
	limit.Store(1000)
	for _, hot := range []uint64{1, 4} {
		g, err := NewGenerator(mix, DistZipfian, 0, 1000, &limit, 0, hot, 9)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			op := g.Next()
			if op.Key >= hot {
				t.Fatalf("hotKeys=%d: drew key %d", hot, op.Key)
			}
			seen[op.Key] = true
		}
		if uint64(len(seen)) != hot {
			t.Fatalf("hotKeys=%d: drew %d distinct keys, want %d", hot, len(seen), hot)
		}
	}
	g, err := NewGenerator(mix, DistUniform, 0, 1000, &limit, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[g.Next().Key] = true
	}
	if len(seen) < 100 {
		t.Fatalf("hotKeys=0 drew only %d distinct keys", len(seen))
	}
}

// TestRunWindowedModes drives the windowed runner (Depth > 1) in every
// session mode, including mix G under the Combined net-delta path.
func TestRunWindowedModes(t *testing.T) {
	for _, mode := range store.SessionModes {
		for _, mixName := range []string{"a", "f", "g"} {
			st := newTestStore(t)
			Load(st, 300, 2)
			res, err := Run(st, Spec{
				Mix: mixName, Dist: DistUniform, Threads: 2,
				Duration: 20 * time.Millisecond, Records: 300, Seed: 5,
				Mode: mode, Depth: 8, HotKeys: 2,
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, mixName, err)
			}
			if res.Ops == 0 || res.OpsPerSec <= 0 {
				t.Fatalf("%v/%s: no throughput: %+v", mode, mixName, res)
			}
			if mixName == "g" && res.Adds == 0 {
				t.Fatalf("%v/g: no adds recorded", mode)
			}
		}
	}
	if _, err := Run(newTestStore(t), Spec{
		Mix: "a", Dist: DistUniform, Threads: 1, Duration: time.Millisecond,
		Records: 10, Depth: 4, Rate: 100,
	}); err == nil {
		t.Fatal("Run accepted open-loop arrivals with Depth > 1")
	}
}
