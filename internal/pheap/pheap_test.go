package pheap

import (
	"sync"
	"testing"
	"testing/quick"

	"flit/internal/pmem"
)

func newHeap(words int) *Heap {
	cfg := pmem.DefaultConfig(words)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
	return New(pmem.New(cfg))
}

func TestRootsAreFixedAndDisjoint(t *testing.T) {
	h := newHeap(1 << 16)
	seen := map[pmem.Addr]bool{}
	for i := 0; i < NumRoots; i++ {
		r := h.Root(i)
		if r == pmem.NilAddr {
			t.Fatal("root at nil address")
		}
		if seen[r] {
			t.Fatalf("duplicate root address %d", r)
		}
		seen[r] = true
	}
	// Roots must be stable across heap instances (recovery relies on it).
	h2 := newHeap(1 << 16)
	if h.Root(3) != h2.Root(3) {
		t.Fatal("root addresses differ across heaps")
	}
}

func TestRootOutOfRangePanics(t *testing.T) {
	h := newHeap(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range root")
		}
	}()
	h.Root(NumRoots)
}

func TestSizeClasses(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 16: 16, 17: 24, 64: 64}
	for n, want := range cases {
		if got := sizeClass(n); got != want {
			t.Errorf("sizeClass(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAllocDisjointAndAligned(t *testing.T) {
	h := newHeap(1 << 16)
	a := h.NewArena()
	type block struct {
		p pmem.Addr
		n int
	}
	var blocks []block
	for i, n := range []int{1, 2, 3, 4, 5, 8, 9, 16, 40, 1, 7, 8, 2} {
		p := a.Alloc(n)
		if p == pmem.NilAddr {
			t.Fatal("alloc returned nil")
		}
		c := sizeClass(n)
		align := c
		if align > pmem.WordsPerLine {
			align = pmem.WordsPerLine
		}
		if uint64(p)%uint64(align) != 0 {
			t.Fatalf("alloc %d (%d words) at %d not %d-aligned", i, n, p, align)
		}
		// Sub-line objects must not straddle a line.
		if c <= pmem.WordsPerLine && pmem.LineOf(p) != pmem.LineOf(p+pmem.Addr(c)-1) {
			t.Fatalf("object at %d size %d straddles a line", p, c)
		}
		blocks = append(blocks, block{p, c})
	}
	for i, b := range blocks {
		for j, o := range blocks {
			if i == j {
				continue
			}
			if b.p < o.p+pmem.Addr(o.n) && o.p < b.p+pmem.Addr(b.n) {
				t.Fatalf("blocks %d and %d overlap: [%d,%d) vs [%d,%d)",
					i, j, b.p, b.p+pmem.Addr(b.n), o.p, o.p+pmem.Addr(o.n))
			}
		}
	}
}

func TestFreeRecycles(t *testing.T) {
	h := newHeap(1 << 16)
	a := h.NewArena()
	p := a.Alloc(8)
	a.Free(p, 8)
	q := a.Alloc(8)
	if q != p {
		t.Fatalf("recycled alloc = %d, want %d", q, p)
	}
	if _, _, rec := a.AllocStats(); rec != 1 {
		t.Fatalf("recycleHit = %d, want 1", rec)
	}
	// Different size class must not recycle the freed block.
	a.Free(q, 8)
	r := a.Alloc(1)
	if r == p {
		t.Fatal("size-class mixing: 1-word alloc returned 8-word block")
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	h := newHeap(1 << 10) // tiny heap
	a := h.NewArena()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on heap exhaustion")
		}
	}()
	for i := 0; i < 1<<20; i++ {
		a.Alloc(8)
	}
}

func TestWatermarkAndRecover(t *testing.T) {
	h := newHeap(1 << 16)
	a := h.NewArena()
	th := h.Mem().RegisterThread()
	p := a.Alloc(8)
	th.Store(p, 77)
	th.PWB(p)
	th.PFence()
	wm := h.Watermark()

	img := h.Mem().CrashImage(pmem.DropUnfenced, 1)
	mem2 := pmem.NewFromImage(img, h.Mem().Config())
	h2 := Recover(mem2, wm)
	if mem2.VolatileWord(p) != 77 {
		t.Fatal("persisted object lost across recovery")
	}
	// New allocations must land past the watermark.
	a2 := h2.NewArena()
	q := a2.Alloc(8)
	if uint64(q) < wm {
		t.Fatalf("post-recovery alloc at %d below watermark %d", q, wm)
	}
	// Recover clamps tiny watermarks to the heap base.
	h3 := Recover(mem2, 0)
	if h3.Watermark() < heapBase {
		t.Fatal("watermark below heap base")
	}
}

func TestConcurrentArenasDisjoint(t *testing.T) {
	h := newHeap(1 << 20)
	const workers = 4
	const perWorker = 3000
	var mu sync.Mutex
	owned := make(map[pmem.Addr]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := h.NewArena()
			local := make([]pmem.Addr, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				local = append(local, a.Alloc(1+i%8))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, p := range local {
				if prev, dup := owned[p]; dup {
					t.Errorf("address %d allocated by workers %d and %d", p, prev, w)
				}
				owned[p] = w
			}
		}(w)
	}
	wg.Wait()
}

// TestQuickAllocFreeNeverOverlaps: random alloc/free interleavings keep
// live blocks disjoint.
func TestQuickAllocFreeNeverOverlaps(t *testing.T) {
	f := func(ops []uint8) bool {
		h := newHeap(1 << 18)
		a := h.NewArena()
		type blk struct {
			p pmem.Addr
			c int
		}
		var live []blk
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				n := 1 + int(op%12)
				p := a.Alloc(n)
				c := sizeClass(n)
				for _, b := range live {
					if p < b.p+pmem.Addr(b.c) && b.p < p+pmem.Addr(c) {
						return false
					}
				}
				live = append(live, blk{p, c})
			} else {
				i := int(op) % len(live)
				a.Free(live[i].p, live[i].c)
				live = append(live[:i], live[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
