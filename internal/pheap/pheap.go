// Package pheap is a persistent-heap allocator over simulated NVRAM, the
// stand-in for PMDK's libvmmalloc used in the paper's evaluation. Objects
// live inside pmem and are referenced by word offsets (pmem.Addr), exactly
// how persistent heaps represent pointers; offset 0 is nil.
//
// Like libvmmalloc, allocator *metadata* is volatile: free lists and bump
// pointers do not survive a crash, and blocks held by in-flight operations
// at crash time leak. Data structures recover from their persistent roots;
// the harness carries the heap watermark across a crash so post-recovery
// allocations never overwrite surviving objects.
//
// Allocation is scalable: each thread owns an Arena that carves thread-
// local chunks off a single global atomic bump pointer and recycles freed
// blocks through per-size free lists, so the hot path is contention-free.
package pheap

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flit/internal/pmem"
)

const (
	// NumRoots is the default number of well-known persistent root slots.
	// Roots live at fixed addresses so recovery can find data structures;
	// multi-region layouts (one shard per root, as in internal/store) ask
	// for more via NewWithRoots.
	NumRoots = 16
	// MaxRoots bounds configurable root regions.
	MaxRoots = 1 << 16
	// rootBase is the address of root slot 0. Line 0 (words 0..7) is
	// reserved so that address 0 stays an unambiguous nil. Root slots are
	// spaced two words apart so the word after each root is free for the
	// flit-adjacent counter placement.
	rootBase   = pmem.WordsPerLine
	rootStride = 2
	// heapBase is the first allocatable word of a default-layout heap.
	heapBase = rootBase + rootStride*NumRoots
	// chunkWords is the size of a thread-local allocation chunk.
	chunkWords = 4096
	// maxAlloc is the largest supported object size in words.
	maxAlloc = 4 << 20 // large enough for bucket arrays of million-key tables
)

// heapBaseFor returns the first allocatable word past a root region of the
// given size, line-aligned: every chunk the bump pointer hands out must
// stay line-aligned or Arena.Alloc's alignment step could never fit a
// chunk-sized line-aligned object. Root slot addresses do not depend on
// the region size, so a recovery that only knows where slot 0 lives can
// probe it before the full layout is known.
func heapBaseFor(roots int) uint64 {
	base := uint64(rootBase + rootStride*roots)
	return (base + pmem.WordsPerLine - 1) &^ uint64(pmem.WordsPerLine-1)
}

// Heap manages allocation of persistent objects inside a pmem.Memory.
type Heap struct {
	mem   *pmem.Memory
	roots int
	bump  atomic.Uint64 // next unallocated word

	// central holds free blocks and chunk remainders surrendered by
	// released arenas, so memory recycled by a session outlives the
	// session: without it, per-session free lists would die with their
	// arenas and a connection churn would grow the watermark without
	// bound even though every delete freed its node.
	centralMu sync.Mutex
	central   map[int][]pmem.Addr // size class -> surrendered blocks
	extents   []extent            // surrendered partial chunks

	// poison, when armed, stamps every freed block's words (volatile
	// layer only) so a use-after-free dereference trips deterministically
	// — the ABA battery's detector.
	poisonOn  atomic.Bool
	poisonVal uint64
}

// extent is an unconsumed tail of a released arena's bump chunk.
type extent struct {
	start, end uint64
}

// New creates a heap covering all of mem past the default root region.
func New(mem *pmem.Memory) *Heap { return NewWithRoots(mem, NumRoots) }

// NewWithRoots creates a heap whose root region holds the given number of
// slots — the multi-region layout used by sharded services, which anchor
// each shard (plus a superblock) at its own root.
func NewWithRoots(mem *pmem.Memory, roots int) *Heap {
	h := &Heap{mem: mem, roots: clampRoots(roots)}
	h.bump.Store(heapBaseFor(h.roots))
	return h
}

// Recover rebuilds a default-layout heap on recovered memory. watermark
// must be at least the pre-crash Watermark so new allocations cannot
// clobber objects that survived; blocks that were free before the crash
// leak, as they do under libvmmalloc.
func Recover(mem *pmem.Memory, watermark uint64) *Heap {
	return RecoverWithRoots(mem, watermark, NumRoots)
}

// RecoverWithRoots rebuilds a heap with a custom root-region size (see
// NewWithRoots) on recovered memory.
func RecoverWithRoots(mem *pmem.Memory, watermark uint64, roots int) *Heap {
	h := &Heap{mem: mem, roots: clampRoots(roots)}
	if base := heapBaseFor(h.roots); watermark < base {
		watermark = base
	}
	h.bump.Store(watermark)
	return h
}

func clampRoots(roots int) int {
	if roots < 1 {
		roots = 1
	}
	if roots > MaxRoots {
		panic(fmt.Sprintf("pheap: %d root slots exceeds max %d", roots, MaxRoots))
	}
	return roots
}

// Mem returns the underlying memory.
func (h *Heap) Mem() *pmem.Memory { return h.mem }

// Watermark returns the high-water mark of allocation, for carrying across
// a simulated crash.
func (h *Heap) Watermark() uint64 { return h.bump.Load() }

// NumRootSlots returns the size of this heap's root region.
func (h *Heap) NumRootSlots() int { return h.roots }

// Root returns the address of persistent root slot i.
func (h *Heap) Root(i int) pmem.Addr {
	if i < 0 || i >= h.roots {
		panic(fmt.Sprintf("pheap: root index %d out of range [0,%d)", i, h.roots))
	}
	return pmem.Addr(rootBase + rootStride*i)
}

// grabChunk advances the global bump pointer by at least n words and
// returns the chunk's bounds.
func (h *Heap) grabChunk(n int) (start, end uint64) {
	size := uint64(chunkWords)
	if uint64(n) > size {
		size = uint64(n)
	}
	start = h.bump.Add(size) - size
	end = start + size
	if end > uint64(h.mem.Words()) {
		panic(fmt.Sprintf("pheap: out of simulated persistent memory (need %d words past %d, capacity %d); size the pmem.Config for the workload",
			size, start, h.mem.Words()))
	}
	return start, end
}

// sizeClass rounds a request to its allocation class: powers of two up to
// a cache line, then whole lines. This mirrors what jemalloc-style
// persistent allocators do and keeps sub-line objects from straddling
// cache lines, which would distort flush counts.
func sizeClass(n int) int {
	switch {
	case n <= 0:
		panic("pheap: non-positive allocation")
	case n <= 1:
		return 1
	case n <= 2:
		return 2
	case n <= 4:
		return 4
	case n <= pmem.WordsPerLine:
		return pmem.WordsPerLine
	case n <= maxAlloc:
		return (n + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	default:
		panic(fmt.Sprintf("pheap: allocation of %d words exceeds max %d", n, maxAlloc))
	}
}

// Arena is a thread-private allocation context. Each worker goroutine must
// use its own Arena.
type Arena struct {
	h          *Heap
	chunk      uint64
	chunkEnd   uint64
	free       map[int][]pmem.Addr // size class -> recycled blocks
	allocs     uint64
	frees      uint64
	recycleHit uint64
	released   bool
}

// NewArena creates a thread-private allocator on h.
func (h *Heap) NewArena() *Arena {
	return &Arena{h: h, free: make(map[int][]pmem.Addr)}
}

// Alloc returns the address of n contiguous words of persistent memory,
// aligned so that sub-line objects never straddle a cache line. The words
// contain whatever a previously freed block left behind; callers must
// initialize every field they will read (data structures do, since nodes
// are fully initialized before being linked in).
func (a *Arena) Alloc(n int) pmem.Addr {
	c := sizeClass(n)
	a.allocs++
	if fl := a.free[c]; len(fl) > 0 {
		p := fl[len(fl)-1]
		a.free[c] = fl[:len(fl)-1]
		a.recycleHit++
		return p
	}
	if p, ok := a.h.centralTake(c); ok {
		a.recycleHit++
		return p
	}
	align := uint64(c)
	if align > pmem.WordsPerLine {
		align = pmem.WordsPerLine
	}
	for {
		start := (a.chunk + align - 1) &^ (align - 1)
		if start+uint64(c) <= a.chunkEnd {
			a.carve(a.chunk, start) // alignment hole, if any
			a.chunk = start + uint64(c)
			return pmem.Addr(start)
		}
		a.surrenderTail()
		if s, e, ok := a.h.extentTake(uint64(c), align); ok {
			a.chunk, a.chunkEnd = s, e
			continue
		}
		a.chunk, a.chunkEnd = a.h.grabChunk(c)
	}
}

// surrenderTail parks the unconsumed tail of the arena's bump chunk
// before the arena abandons it for a new one: line-sized-or-larger tails
// go to the heap's extent list, smaller ones are carved onto the arena's
// free lists. Every chunk switch used to drop its tail on the floor —
// a few words per session that grew the watermark without bound under
// connection churn even though every delete freed its node.
func (a *Arena) surrenderTail() {
	start, end := a.chunk, a.chunkEnd
	a.chunk, a.chunkEnd = 0, 0
	if end <= start {
		return
	}
	if end-start >= pmem.WordsPerLine {
		h := a.h
		h.centralMu.Lock()
		h.extents = append(h.extents, extent{start, end})
		h.centralMu.Unlock()
		return
	}
	a.carve(start, end)
}

// carve splits the sub-line range [start,end) into aligned size-class
// blocks on the arena's free lists, so alignment holes and chunk-tail
// fragments stay allocatable instead of leaking.
func (a *Arena) carve(start, end uint64) {
	for start < end {
		c := uint64(1)
		for c*2 <= end-start && start%(c*2) == 0 && c*2 <= pmem.WordsPerLine {
			c *= 2
		}
		a.free[int(c)] = append(a.free[int(c)], pmem.Addr(start))
		start += c
	}
}

// centralTake pops one surrendered block of size class c, if any.
func (h *Heap) centralTake(c int) (pmem.Addr, bool) {
	h.centralMu.Lock()
	defer h.centralMu.Unlock()
	fl := h.central[c]
	if len(fl) == 0 {
		return 0, false
	}
	p := fl[len(fl)-1]
	h.central[c] = fl[:len(fl)-1]
	return p, true
}

// extentTake pops a surrendered chunk tail that can hold an aligned
// object of n words, if any.
func (h *Heap) extentTake(n, align uint64) (start, end uint64, ok bool) {
	h.centralMu.Lock()
	defer h.centralMu.Unlock()
	for i, x := range h.extents {
		s := (x.start + align - 1) &^ (align - 1)
		if s+n <= x.end {
			h.extents = append(h.extents[:i], h.extents[i+1:]...)
			return x.start, x.end, true
		}
	}
	return 0, 0, false
}

// Free recycles a block of n words previously returned by Alloc. The block
// joins this arena's free list regardless of which arena allocated it.
//
// Note on safety: Free reuses immediately and is only safe for blocks no
// other thread can still reference (never-shared nodes, lock-protected
// removals). Lock-free structures must route shared blocks through
// reclaim.Handle.Retire, which defers this call past an epoch grace
// period — the role ssmem plays in the paper's artifact.
func (a *Arena) Free(p pmem.Addr, n int) {
	c := sizeClass(n)
	a.frees++
	if a.h.poisonOn.Load() {
		for i := 0; i < c; i++ {
			a.h.mem.SetVolatileWord(p+pmem.Addr(i), a.h.poisonVal)
		}
	}
	a.free[c] = append(a.free[c], p)
}

// Release surrenders the arena's recycled blocks and the unconsumed tail
// of its bump chunk to the heap's central lists, where future arenas can
// reuse them. Call it when the owning session closes: it is what keeps
// the heap watermark bounded under session churn. Idempotent; the arena
// must not allocate afterwards.
func (a *Arena) Release() {
	if a.released {
		return
	}
	a.released = true
	a.surrenderTail() // sub-line tails carve onto a.free, larger go to extents
	h := a.h
	h.centralMu.Lock()
	if len(a.free) > 0 {
		if h.central == nil {
			h.central = make(map[int][]pmem.Addr)
		}
		for c, fl := range a.free {
			h.central[c] = append(h.central[c], fl...)
		}
	}
	h.centralMu.Unlock()
	a.free = nil
}

// SetFreePoison arms (or, with on=false, disarms) free-block poisoning:
// every word of every subsequently freed block is overwritten with v in
// the volatile layer. With epoch reclamation working correctly no pinned
// reader can ever observe the poison; the ABA battery relies on that. Set
// only while allocator users are quiescent.
func (h *Heap) SetFreePoison(v uint64, on bool) {
	h.poisonVal = v
	h.poisonOn.Store(on)
}

// CentralStats reports the central recycling depot's content: blocks on
// the size-class lists and words covered by surrendered chunk tails
// (tests and diagnostics).
func (h *Heap) CentralStats() (blocks int, extentWords uint64) {
	h.centralMu.Lock()
	defer h.centralMu.Unlock()
	for _, fl := range h.central {
		blocks += len(fl)
	}
	for _, x := range h.extents {
		extentWords += x.end - x.start
	}
	return blocks, extentWords
}

// AllocStats reports allocation counters (tests and diagnostics).
func (a *Arena) AllocStats() (allocs, frees, recycled uint64) {
	return a.allocs, a.frees, a.recycleHit
}
