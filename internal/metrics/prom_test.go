package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// page renders a representative exposition: counters with and without
// labels, a gauge, and a labeled histogram.
func page(t *testing.T) []byte {
	t.Helper()
	h := NewHist()
	for i := int64(0); i < 10_000; i++ {
		h.RecordNs(i * 797)
	}
	var s HistSnapshot
	h.Read(&s)

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Meta("flit_ops_total", "counter", "acked store operations")
	p.Sample("flit_ops_total", `op="get"`, 123)
	p.Sample("flit_ops_total", `op="put"`, 456)
	p.Meta("flit_conns_open", "gauge", "open connections")
	p.Sample("flit_conns_open", "", 7)
	p.Meta("flit_op_seconds", "histogram", "op service time")
	p.Histogram("flit_op_seconds", `op="get"`, &s, 1e-9)
	p.Meta("flit_batch_ops", "histogram", "ops per group commit")
	p.Histogram("flit_batch_ops", "", &s, 1)
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestExpositionRoundTrip writes a page with the PromWriter and
// validates it with the parser — the writer and the checker must agree
// on the format.
func TestExpositionRoundTrip(t *testing.T) {
	data := page(t)
	st, err := ValidateExposition(data)
	if err != nil {
		t.Fatalf("validate: %v\npage:\n%s", err, data)
	}
	if st.Families != 4 {
		t.Fatalf("families = %d, want 4", st.Families)
	}
	if st.Samples < 10 {
		t.Fatalf("samples = %d, implausibly few", st.Samples)
	}
	for _, want := range []string{
		`flit_op_seconds_bucket{op="get",le="+Inf"} 10000`,
		"flit_op_seconds_count{op=\"get\"} 10000",
		"flit_batch_ops_count 10000",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("page missing %q:\n%s", want, data)
		}
	}
}

// TestValidateRejects feeds the validator the malformations it exists
// to catch.
func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE": `flit_x_total 3`,
		"unknown type": `# TYPE flit_x woble
flit_x 3`,
		"bad value": `# TYPE flit_x gauge
flit_x abc`,
		"bad name": `# TYPE flit_x gauge
9flit{} 3`,
		"unquoted label": `# TYPE flit_x gauge
flit_x{op=get} 3`,
		"non-cumulative buckets": `# TYPE flit_h histogram
flit_h_bucket{le="0.1"} 5
flit_h_bucket{le="0.2"} 3
flit_h_bucket{le="+Inf"} 5
flit_h_sum 1
flit_h_count 5`,
		"non-increasing le": `# TYPE flit_h histogram
flit_h_bucket{le="0.2"} 3
flit_h_bucket{le="0.1"} 5
flit_h_bucket{le="+Inf"} 5
flit_h_sum 1
flit_h_count 5`,
		"missing +Inf": `# TYPE flit_h histogram
flit_h_bucket{le="0.1"} 5
flit_h_sum 1
flit_h_count 5`,
		"count mismatch": `# TYPE flit_h histogram
flit_h_bucket{le="0.1"} 5
flit_h_bucket{le="+Inf"} 5
flit_h_sum 1
flit_h_count 6`,
		"bucket without le": `# TYPE flit_h histogram
flit_h_bucket{op="get"} 5`,
	}
	for name, body := range cases {
		if _, err := ValidateExposition([]byte(body)); err == nil {
			t.Errorf("%s: validator accepted:\n%s", name, body)
		}
	}
}

// TestValidateAcceptsLabeledSeries checks that two label sets of one
// histogram family are tracked independently.
func TestValidateAcceptsLabeledSeries(t *testing.T) {
	body := `# TYPE flit_h histogram
flit_h_bucket{op="get",le="0.1"} 5
flit_h_bucket{op="get",le="+Inf"} 5
flit_h_sum{op="get"} 1
flit_h_count{op="get"} 5
flit_h_bucket{op="put",le="0.1"} 2
flit_h_bucket{op="put",le="+Inf"} 3
flit_h_sum{op="put"} 1
flit_h_count{op="put"} 3
`
	if _, err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
