package metrics

import "sync"

// Sample is one timeseries point: a per-interval view of the server
// computed by the sampler from consecutive cumulative snapshots. Rate
// and per-op fields cover the interval since the previous sample;
// Ops/Batches are the cumulative totals at sample time, so consumers
// can re-derive any window.
type Sample struct {
	UnixNano int64 `json:"unix_nano"`

	Ops     uint64 `json:"ops"`     // cumulative acked store ops
	Batches uint64 `json:"batches"` // cumulative group commits
	Conns   int64  `json:"conns"`   // open connections at sample time

	OpsPerSec    float64 `json:"ops_per_sec"`    // interval rate
	P50Ns        int64   `json:"p50_ns"`         // interval op service time
	P95Ns        int64   `json:"p95_ns"`         //
	P99Ns        int64   `json:"p99_ns"`         //
	PWBsPerOp    float64 `json:"pwbs_per_op"`    // interval persistence cost
	PFencesPerOp float64 `json:"pfences_per_op"` //
	OpsPerBatch  float64 `json:"ops_per_batch"`  // interval amortization
}

// Ring is a fixed-capacity timeseries of Samples: the sampler pushes
// once per interval, overwriting the oldest point when full; live
// views read the most recent point (Last) or the whole window
// (Snapshot). A mutex is fine here — the ring is touched a handful of
// times per second, never on an op path.
type Ring struct {
	mu   sync.Mutex
	buf  []Sample
	head int // next write position
	n    int // occupied
}

// NewRing creates a ring holding up to capacity samples (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Sample, capacity)}
}

// Push appends s, evicting the oldest sample when full.
func (r *Ring) Push(s Sample) {
	r.mu.Lock()
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len reports the number of samples held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Last returns the most recent sample, if any.
func (r *Ring) Last() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return Sample{}, false
	}
	return r.buf[(r.head-1+len(r.buf))%len(r.buf)], true
}

// Snapshot appends the held samples to dst, oldest first, and returns
// the extended slice.
func (r *Ring) Snapshot(dst []Sample) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(start+i)%len(r.buf)])
	}
	return dst
}
