package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4: `# HELP` / `# TYPE` comments followed by `name{labels} value`
// samples). It is the cold path — a scrape, not an op — so it favors
// clarity over allocation thrift. Errors are sticky: the first write
// failure is remembered and returned by Flush, so call sites can emit
// the whole page unconditionally.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Meta writes the HELP/TYPE header for a metric family. Call once per
// family, before its samples; typ is "counter", "gauge" or "histogram".
func (p *PromWriter) Meta(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one sample line. labels is the pre-rendered inner label
// list (`op="get"`) or "" for none.
func (p *PromWriter) Sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, formatFloat(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, formatFloat(v))
}

// Histogram writes a full histogram family body from a snapshot:
// cumulative `le` buckets at the log-bucket upper edges (only edges
// whose bucket holds observations — the le set of a Prometheus
// histogram is free, and 1024 mostly-empty lines would bury a scrape),
// the `+Inf` bucket, `_sum` and `_count`. scale converts recorded
// units to the exposition unit (1e-9 for ns → seconds, 1 for counts).
// labels is the shared inner label list or "".
func (p *PromWriter) Histogram(name, labels string, s *HistSnapshot, scale float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := float64(BucketUpperBound(i)) * scale
		p.printf("%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatFloat(le), cum)
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	p.Sample(name+"_sum", labels, float64(s.Sum)*scale)
	p.printf("%s_count", name)
	if labels != "" {
		p.printf("{%s}", labels)
	}
	p.printf(" %d\n", s.Count)
}

// Flush drains the buffer and returns the first error seen.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// formatFloat renders a value the exposition format accepts: shortest
// round-trip representation, integers without an exponent where
// possible.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpositionStats summarizes a validated exposition page.
type ExpositionStats struct {
	Families int // # TYPE declarations
	Samples  int // sample lines
}

// ValidateExposition parses a Prometheus text exposition page and
// checks the invariants a scraper relies on:
//
//   - every sample's family has a preceding # TYPE of a known type
//     (histogram samples resolve _bucket/_sum/_count to their family);
//   - metric names and label syntax are well-formed, values parse;
//   - histogram bucket series are cumulative: le values strictly
//     increase, counts never decrease, the +Inf bucket is present and
//     equals the family's _count for the same label set.
//
// It is the test helper behind the -race hammer test, the CI scrape
// check and `flitload -scrape`.
func ValidateExposition(data []byte) (ExpositionStats, error) {
	var st ExpositionStats
	types := map[string]string{}
	// histogram bucket tracking per family + non-le label set
	type series struct {
		lastLe  float64
		lastCum uint64
		haveInf bool
		infVal  uint64
	}
	buckets := map[string]*series{}
	counts := map[string]uint64{} // _count samples per family+labels
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && (f[1] == "HELP" || f[1] == "TYPE") && len(f) < 4 {
				return st, fmt.Errorf("line %d: truncated %s comment", lineNo, f[1])
			}
			if len(f) >= 4 && f[1] == "TYPE" {
				name, typ := f[2], f[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return st, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = typ
				st.Families++
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %w", lineNo, err)
		}
		st.Samples++
		fam, suffix := name, ""
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && types[base] == "histogram" {
				fam, suffix = base, suf
				break
			}
		}
		typ, ok := types[fam]
		if !ok {
			return st, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if typ == "histogram" && suffix == "" {
			return st, fmt.Errorf("line %d: bare sample %s of histogram family", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		le, rest, hasLe := splitLe(labels)
		key := fam + "{" + rest + "}"
		switch suffix {
		case "_bucket":
			if !hasLe {
				return st, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			s := buckets[key]
			if s == nil {
				s = &series{lastLe: math.Inf(-1)}
				buckets[key] = s
			}
			cum := uint64(value)
			if le == "+Inf" {
				s.haveInf, s.infVal = true, cum
				if cum < s.lastCum {
					return st, fmt.Errorf("line %d: +Inf bucket %d below prior bucket %d", lineNo, cum, s.lastCum)
				}
				break
			}
			lv, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return st, fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
			}
			if lv <= s.lastLe {
				return st, fmt.Errorf("line %d: le %q not increasing (prev %v)", lineNo, le, s.lastLe)
			}
			if cum < s.lastCum {
				return st, fmt.Errorf("line %d: bucket count %d below prior %d — not cumulative", lineNo, cum, s.lastCum)
			}
			s.lastLe, s.lastCum = lv, cum
		case "_count":
			counts[key] = uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := buckets[k]
		if !s.haveInf {
			return st, fmt.Errorf("histogram series %s has no +Inf bucket", k)
		}
		n, ok := counts[k]
		if !ok {
			return st, fmt.Errorf("histogram series %s has no _count", k)
		}
		if n != s.infVal {
			return st, fmt.Errorf("histogram series %s: _count %d != +Inf bucket %d", k, n, s.infVal)
		}
	}
	return st, nil
}

// parseSample splits `name{labels} value` (labels optional). The label
// body is returned raw; splitLe digs out le when needed.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		f := strings.IndexAny(rest, " \t")
		if f < 0 {
			return "", "", 0, fmt.Errorf("sample has no value")
		}
		name = rest[:f]
		rest = strings.TrimSpace(rest[f:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	if err := validLabels(labels); err != nil {
		return "", "", 0, err
	}
	// A timestamp may follow the value; the repo never emits one, but a
	// parser helper should not choke on the format's option.
	if f := strings.IndexAny(rest, " \t"); f >= 0 {
		rest = rest[:f]
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", rest, err)
	}
	return name, labels, value, nil
}

// splitLe extracts the le label, returning the remaining label body in
// original order.
func splitLe(labels string) (le, rest string, ok bool) {
	if labels == "" {
		return "", "", false
	}
	parts := splitLabelPairs(labels)
	kept := make([]string, 0, len(parts))
	for _, p := range parts {
		if v, found := strings.CutPrefix(p, `le="`); found {
			le, ok = strings.TrimSuffix(v, `"`), true
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ","), ok
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabels(labels string) error {
	if labels == "" {
		return nil
	}
	for _, p := range splitLabelPairs(labels) {
		k, v, found := strings.Cut(p, "=")
		if !found {
			return fmt.Errorf("label pair %q has no =", p)
		}
		if !validMetricName(k) || strings.Contains(k, ":") {
			return fmt.Errorf("bad label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %q not quoted", v)
		}
	}
	return nil
}
