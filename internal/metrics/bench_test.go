package metrics

import (
	"sync/atomic"
	"testing"
)

// The hot-path cost contract: recording is a handful of atomic adds,
// zero allocations. TestHotPathZeroAlloc pins the allocation count to
// zero; these pin the cycle cost so a regression shows up in -bench
// diffs. Run with -benchmem to see the 0 B/op alongside.

func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RecordNs(int64(i&0xffff) + 1)
	}
}

func BenchmarkHistRecordParallel(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.RecordNs(i&0xffff + 1)
		}
	})
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(3)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		stripe := int(next.Add(1) - 1)
		for pb.Next() {
			c.Inc(stripe)
		}
	})
}

func BenchmarkHistRead(b *testing.B) {
	h := NewHist()
	for i := 0; i < 1<<16; i++ {
		h.RecordNs(int64(i) + 1)
	}
	var s HistSnapshot
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Read(&s)
	}
}
