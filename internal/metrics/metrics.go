// Package metrics is the server observability core: a small,
// dependency-free set of hot-path-safe primitives — striped atomic
// counters, gauges, and a lock-free variant of the workload package's
// log-bucketed latency histogram — plus the cold-path machinery that
// exposes them: point-in-time snapshots with quantiles, a Prometheus
// text-exposition writer and validator (prom.go), and a fixed-capacity
// timeseries ring for live views (ring.go).
//
// The design discipline matches the rest of the hot path (PR 3): a
// recorded observation is a handful of atomic adds — zero allocations,
// no locks, no shared cacheline ping-pong beyond the histogram bucket
// actually hit. Counters are striped across padded cachelines so
// concurrent connections never contend on a counter word; histograms
// share bucket words (two connections only collide when they record
// the same latency bucket at the same instant), which keeps a Hist at
// one atomic add per observation instead of stripes × 8KB of memory.
//
// Readers (the /metrics endpoint, STATS snapshots, the ring sampler)
// are wait-free with respect to writers: they load each word atomically
// and tolerate the transient skew of a snapshot taken mid-record. Every
// exported total is monotone, so interval deltas are always
// non-negative.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// CounterStripes is the stripe count of a Counter: enough that a
// realistic connection fleet spreads across distinct cachelines, small
// enough that a counter stays cheap to sum and cheap to hold.
const CounterStripes = 16

// stripe is one padded counter cell: the value plus enough padding to
// fill a 64-byte cacheline, so adjacent stripes never false-share.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotone counter striped across padded cachelines.
// Writers pick a stripe (any int — it is masked) and stay on it; a
// connection handler uses its connection id, so two connections only
// share a cacheline when their ids collide mod CounterStripes.
type Counter struct {
	s [CounterStripes]stripe
}

// Add adds d on the given stripe.
//
//flit:hotpath
func (c *Counter) Add(stripe int, d uint64) {
	c.s[stripe&(CounterStripes-1)].v.Add(d)
}

// Inc adds one on the given stripe.
//
//flit:hotpath
func (c *Counter) Inc(stripe int) { c.Add(stripe, 1) }

// Load sums the stripes. Monotone across calls (each stripe is).
func (c *Counter) Load() uint64 {
	var sum uint64
	for i := range c.s {
		sum += c.s[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous signed value (open connections, pipeline
// occupancy). Not striped: gauges are read as often as written and a
// striped sum of signed deltas would cost more than it saves at the
// write rates gauges see.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//flit:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
//
//flit:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram geometry — identical to workload.Hist (HDR-style
// log-linear): exact below 2^SubBits, then SubBuckets sub-buckets per
// power of two, ≤ 1/SubBuckets relative quantile error.
// TestHistMatchesWorkloadHist pins the two bucket functions to each
// other.
const (
	SubBits    = 4
	SubBuckets = 1 << SubBits
	NumBuckets = 64 * SubBuckets
)

// Bucket maps a non-negative value to its bucket index.
//
//flit:hotpath
func Bucket(u uint64) int {
	if u < SubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= SubBits
	mant := (u >> (uint(exp) - SubBits)) & (SubBuckets - 1)
	return int(uint(exp-SubBits+1)<<SubBits | uint(mant))
}

// BucketValue returns bucket i's representative (upper-mid) value, the
// quantile interpolation point — same shape as workload.Hist.
func BucketValue(i int) int64 {
	if i < SubBuckets {
		return int64(i)
	}
	exp := uint(i>>SubBits) + SubBits - 1
	mant := uint64(i & (SubBuckets - 1))
	lo := (uint64(SubBuckets) | mant) << (exp - SubBits)
	return int64(lo + (uint64(1)<<(exp-SubBits))/2)
}

// BucketUpperBound returns bucket i's inclusive upper edge — the
// largest value the bucket can hold, the Prometheus `le` boundary.
// Strictly increasing in i.
func BucketUpperBound(i int) uint64 {
	if i < SubBuckets {
		return uint64(i)
	}
	exp := uint(i>>SubBits) + SubBits - 1
	mant := uint64(i & (SubBuckets - 1))
	lo := (uint64(SubBuckets) | mant) << (exp - SubBits)
	return lo + (uint64(1) << (exp - SubBits)) - 1
}

// Hist is the lock-free atomic spelling of workload.Hist: concurrent
// writers Record with three atomic adds (bucket, sum, and — rarely —
// a min/max CAS); concurrent readers snapshot without stopping them.
// The zero value is NOT ready: call Init (or NewHist) so the min
// tracker starts at +inf.
type Hist struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // Σ recorded values
	min    atomic.Int64  // smallest recorded; MaxInt64 while empty
	max    atomic.Int64
}

// NewHist allocates and initializes a histogram.
func NewHist() *Hist {
	h := &Hist{}
	h.Init()
	return h
}

// Init prepares a zero-value (usually embedded) histogram for use.
// Must happen-before any Record.
func (h *Hist) Init() { h.min.Store(math.MaxInt64) }

// RecordNs adds one observation (negative values clamp to zero). Safe
// for any number of concurrent callers; never allocates.
//
//flit:hotpath
func (h *Hist) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	h.counts[Bucket(u)].Add(1)
	h.sum.Add(u)
	// The CAS loops run only while the observation extends the range —
	// a handful of times over a histogram's whole life. Steady state is
	// two plain atomic loads.
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Record adds one duration observation.
func (h *Hist) Record(d time.Duration) { h.RecordNs(d.Nanoseconds()) }

// RecordNNs adds n observations of the same value in one shot — a
// single weighted bucket add instead of n RecordNs calls. The batch
// executor uses it to attribute a batch's execution window to its ops
// without paying per-op atomics. No-op when n is 0.
//
//flit:hotpath
func (h *Hist) RecordNNs(ns int64, n uint64) {
	if n == 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	h.counts[Bucket(u)].Add(n)
	h.sum.Add(u * n)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (sum over buckets, so it
// always agrees with a freshly read snapshot's Count).
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Read fills s with a point-in-time snapshot. Concurrent-safe: each
// word is loaded atomically. A snapshot taken while writers run can be
// mid-record skewed (a bucket incremented but the sum not yet, or vice
// versa); all fields are monotone, so snapshot deltas (Sub) are always
// non-negative, and after writers quiesce a snapshot is exact.
func (h *Hist) Read(s *HistSnapshot) {
	var n uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		n += c
	}
	s.Count = n
	s.Sum = h.sum.Load()
	s.MinNs = h.min.Load()
	s.MaxNs = h.max.Load()
	if s.Count == 0 {
		s.MinNs, s.MaxNs = 0, 0
	}
}

// HistSnapshot is a plain (non-atomic) copy of a Hist: the input to
// quantiles, exposition, interval deltas and merges.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64 // Σ Counts
	Sum    uint64 // Σ recorded values
	MinNs  int64
	MaxNs  int64
}

// Quantile returns the q-th quantile (q in [0,1]), clamped into
// [MinNs, MaxNs] exactly like workload.Hist.Quantile — with a handful
// of samples a bucket midpoint could otherwise report a value nobody
// measured.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if c > 0 && seen > target {
			v := BucketValue(i)
			if s.MaxNs > 0 && v > s.MaxNs {
				v = s.MaxNs
			}
			if v < s.MinNs {
				v = s.MinNs
			}
			return v
		}
	}
	return s.MaxNs
}

// Mean returns the average observation (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Sub subtracts prev from s in place, turning two cumulative snapshots
// into an interval distribution. Counts and Sum are exact deltas
// (monotone, so never negative with snapshots of the same Hist taken
// in order); Min/Max cannot be deltaed — the interval keeps s's
// cumulative MaxNs as its clamp ceiling and drops the floor to 0.
func (s *HistSnapshot) Sub(prev *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] -= prev.Counts[i]
	}
	s.Count -= prev.Count
	s.Sum -= prev.Sum
	s.MinNs = 0
}

// Merge accumulates o into s (union of two disjoint distributions).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Count > 0 && (s.Count == o.Count || o.MinNs < s.MinNs) {
		s.MinNs = o.MinNs
	}
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
}
