package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"flit/internal/workload"
)

// TestHistMatchesWorkloadHist pins the atomic histogram to the
// workload package's log-bucketed histogram: same geometry, same
// quantile semantics (clamped to min/max), same counts — the property
// that makes server-side and client-side percentiles comparable.
func TestHistMatchesWorkloadHist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ah := NewHist()
	wh := workload.NewHist()
	for i := 0; i < 50_000; i++ {
		var ns int64
		switch i % 4 {
		case 0:
			ns = rng.Int63n(16) // exact region
		case 1:
			ns = rng.Int63n(100_000)
		case 2:
			ns = rng.Int63n(50_000_000)
		default:
			ns = rng.Int63n(5_000_000_000)
		}
		ah.RecordNs(ns)
		wh.Record(time.Duration(ns))
	}
	var s HistSnapshot
	ah.Read(&s)
	if s.Count != wh.Count() {
		t.Fatalf("count %d != workload %d", s.Count, wh.Count())
	}
	if got, want := time.Duration(s.MinNs), wh.Min(); got != want {
		t.Fatalf("min %v != workload %v", got, want)
	}
	if got, want := time.Duration(s.MaxNs), wh.Max(); got != want {
		t.Fatalf("max %v != workload %v", got, want)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		if got, want := time.Duration(s.Quantile(q)), wh.Quantile(q); got != want {
			t.Fatalf("q%.3f: %v != workload %v", q, got, want)
		}
	}
}

// TestBucketUpperBound checks the le edges: each bucket's upper bound
// still maps into the bucket, the next value maps past it, and the
// edges strictly increase.
func TestBucketUpperBound(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		ub := BucketUpperBound(i)
		if int64(ub) <= prev {
			t.Fatalf("bucket %d: upper bound %d not increasing (prev %d)", i, ub, prev)
		}
		prev = int64(ub)
		if ub > 1<<62 {
			break // past the nanosecond range the histogram can see
		}
		if got := Bucket(ub); got != i {
			t.Fatalf("Bucket(upper(%d)=%d) = %d", i, ub, got)
		}
		if got := Bucket(ub + 1); got != i+1 {
			t.Fatalf("Bucket(upper(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
}

// TestHotPathZeroAlloc pins the acceptance criterion: a recorded
// observation — histogram, counter or gauge — allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	h := NewHist()
	var c Counter
	var g Gauge
	ns := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		h.RecordNs(ns)
		c.Inc(3)
		g.Add(1)
		ns += 1237
	}); n != 0 {
		t.Fatalf("hot-path record allocates %.1f objects/op, want 0", n)
	}
}

// TestCounterConcurrent sums striped adds across goroutines.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 32, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter sums to %d, want %d", got, workers*per)
	}
}

// TestHistConcurrent hammers one histogram from many goroutines and
// checks nothing is lost: bucket sum, count and value sum all match.
func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	const workers, per = 16, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.RecordNs(rng.Int63n(1 << 30))
			}
		}(w)
	}
	wg.Wait()
	var s HistSnapshot
	h.Read(&s)
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var rebuilt uint64
	for _, c := range s.Counts {
		rebuilt += c
	}
	if rebuilt != s.Count {
		t.Fatalf("bucket sum %d != count %d", rebuilt, s.Count)
	}
	if s.MinNs < 0 || s.MaxNs >= 1<<30 || s.MinNs > s.MaxNs {
		t.Fatalf("implausible range [%d, %d]", s.MinNs, s.MaxNs)
	}
}

// TestRecordNNs pins the weighted record to n individual records: same
// buckets, count, sum, min, max — and therefore identical quantiles.
func TestRecordNNs(t *testing.T) {
	a, b := NewHist(), NewHist()
	vals := []int64{0, 1, 17, 300, 4096, 1 << 20, 1<<40 + 7}
	ns := []uint64{1, 2, 3, 64, 1000, 5, 1}
	for i, v := range vals {
		a.RecordNNs(v, ns[i])
		for j := uint64(0); j < ns[i]; j++ {
			b.RecordNs(v)
		}
	}
	a.RecordNNs(99, 0) // weight 0 must be a no-op
	var sa, sb HistSnapshot
	a.Read(&sa)
	b.Read(&sb)
	if sa != sb {
		t.Fatalf("weighted and individual records diverge:\n%+v\n%+v", sa, sb)
	}
}

// TestSnapshotSubMerge checks interval deltas and unions.
func TestSnapshotSubMerge(t *testing.T) {
	h := NewHist()
	for i := int64(0); i < 1000; i++ {
		h.RecordNs(i * 1000)
	}
	var first HistSnapshot
	h.Read(&first)
	for i := int64(0); i < 500; i++ {
		h.RecordNs(i * 2000)
	}
	var second HistSnapshot
	h.Read(&second)

	delta := second
	delta.Sub(&first)
	if delta.Count != 500 {
		t.Fatalf("interval count %d, want 500", delta.Count)
	}
	if delta.Quantile(1) > second.MaxNs {
		t.Fatalf("interval quantile above cumulative max")
	}

	var a, b HistSnapshot
	ha, hb := NewHist(), NewHist()
	ha.RecordNs(10)
	ha.RecordNs(100)
	hb.RecordNs(5)
	hb.RecordNs(1_000_000)
	ha.Read(&a)
	hb.Read(&b)
	a.Merge(&b)
	if a.Count != 4 || a.MinNs != 5 || a.MaxNs != 1_000_000 {
		t.Fatalf("merge: count=%d min=%d max=%d", a.Count, a.MinNs, a.MaxNs)
	}
	var empty HistSnapshot
	empty.Merge(&b)
	if empty.MinNs != 5 || empty.MaxNs != 1_000_000 || empty.Count != 2 {
		t.Fatalf("merge into empty: %+v", empty)
	}
}

// TestRing checks capacity, eviction and ordering.
func TestRing(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring reports a last sample")
	}
	for i := 1; i <= 6; i++ {
		r.Push(Sample{Ops: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	last, ok := r.Last()
	if !ok || last.Ops != 6 {
		t.Fatalf("last = %+v, want Ops=6", last)
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("snapshot len %d", len(got))
	}
	for i, s := range got {
		if want := uint64(i + 3); s.Ops != want {
			t.Fatalf("snapshot[%d].Ops = %d, want %d (oldest first)", i, s.Ops, want)
		}
	}
}

// TestGauge checks the trivial contract (and that Set overrides Adds).
func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
	g.Set(42)
	if g.Load() != 42 {
		t.Fatalf("gauge = %d, want 42", g.Load())
	}
}
