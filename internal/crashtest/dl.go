package crashtest

import (
	"fmt"

	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/dstruct/queue"
	"flit/internal/pheap"
	"flit/internal/pmem"
	"flit/internal/store"
)

// This file wires the randomized crash harness's target registry into the
// systematic enumerator (internal/dlcheck): the same structures, the same
// recovery paths, but every PWB/PFence boundary of a recorded execution
// checked instead of one random image per round.

// DL adapts a crash-test target for dlcheck.RunSet.
func (t Target) DL() dlcheck.Target {
	return dlcheck.Target{
		Name:    t.Name,
		New:     func(cfg dstruct.Config) dlcheck.Instance { return dlcheck.Instance(t.New(cfg)) },
		Recover: func(cfg dstruct.Config) dlcheck.Instance { return dlcheck.Instance(t.Recover(cfg)) },
	}
}

// RunQueueDL runs the systematic checker against the durable FIFO queue.
func RunQueueDL(cfg dstruct.Config, opts dlcheck.Options) *dlcheck.Report {
	q := queue.New(cfg)
	return dlcheck.RunQueue(dlcheck.QueueHarness{
		Name:       "queue",
		Mem:        cfg.Heap.Mem(),
		Policy:     cfg.Policy,
		NewSession: func() dlcheck.QueueSession { return q.NewThread() },
		Recover: func(img []uint64) ([]uint64, error) {
			cfg2 := cfg
			cfg2.Heap = pheap.Recover(pmem.NewFromImage(img, cfg.Heap.Mem().Config()), cfg.Heap.Watermark())
			return queue.Recover(cfg2).Snapshot(), nil
		},
	}, opts)
}

// NewDLStore builds the store shape the systematic battery enumerates:
// few shards and a small memory (every crash boundary copies the image)
// on the virtual clock. The single source of truth for the flitcrash
// CLI, this package's battery tests and dlcheck's mutation self-tests —
// the service analogue of dlcheck.NewConfig.
func NewDLStore(policy string, mode dstruct.Mode) (*store.Store, error) {
	return store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 8, Buckets: 16,
		Policy: policy, HTBytes: 1 << 14, Mode: mode,
		MemWords: 1 << 17, VirtualClock: true,
	})
}

// dlStoreSession maps the enumerator's uint64 key space onto store string
// keys, giving the whole-store service set semantics the engine records
// (Put ≡ Insert: true iff newly inserted).
type dlStoreSession struct {
	sess *store.Sess[string]
}

func dlStoreKey(k uint64) string { return fmt.Sprintf("dlkey-%d", k) }

func (s dlStoreSession) Insert(k, v uint64) bool { return s.sess.Put(dlStoreKey(k), v) }
func (s dlStoreSession) Delete(k uint64) bool    { return s.sess.Delete(dlStoreKey(k)) }
func (s dlStoreSession) Contains(k uint64) bool  { return s.sess.Contains(dlStoreKey(k)) }

// RunStoreDL runs the systematic checker against a whole store: sessions
// record service-level histories, and every (budgeted) crash boundary is
// recovered with the store's superblock probe and shard-parallel rebuild
// before checking. st must be freshly created (no unrecorded keys): any
// recovered key outside the checker's namespace is reported as a
// violation, which is exactly the "no operation absent from the history
// may appear" half of the durable rule.
func RunStoreDL(st *store.Store, opts dlcheck.Options) *dlcheck.Report {
	opts = opts.Normalized()
	keyspace := opts.KeyRange
	if opts.Prefill > keyspace {
		keyspace = opts.Prefill
	}
	// Hash → engine-key translation for recovered snapshots.
	back := make(map[uint64]uint64, keyspace)
	for k := 0; k < keyspace; k++ {
		back[store.HashKey(dlStoreKey(uint64(k)))] = uint64(k)
	}
	return dlcheck.Run(dlcheck.Harness{
		Name:       "store",
		Mem:        st.Mem(),
		Policy:     st.Policy(),
		NewSession: func() dstruct.SetThread { return dlStoreSession{store.Open[string](st, store.Direct)} },
		Recover: func(img []uint64) (map[uint64]bool, error) {
			mem2 := pmem.NewFromImage(img, st.Mem().Config())
			st2, _, err := store.Recover(mem2, st.Heap().Watermark(), st.Opts())
			if err != nil {
				return nil, err
			}
			final := make(map[uint64]bool)
			for h := range st2.Snapshot() {
				k, ok := back[h]
				if !ok {
					return nil, fmt.Errorf("recovered key hash %#x is outside the checker's namespace (phantom key)", h)
				}
				final[k] = true
			}
			return final, nil
		},
	}, opts)
}
