package crashtest

import (
	"testing"

	"flit/internal/core"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/store"
)

func newDLStore(t *testing.T, policy string, mode dstruct.Mode) *store.Store {
	t.Helper()
	st, err := NewDLStore(policy, mode)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreDLEnumerated is the service-level systematic battery: the
// sharded store, every durability mode, every (budgeted) crash boundary
// recovered through the superblock probe and shard-parallel rebuild.
func TestStoreDLEnumerated(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, mode := range dstruct.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			for _, seed := range seeds {
				st := newDLStore(t, core.PolicyHT, mode)
				opts := dlcheck.DefaultOptions(seed)
				if testing.Short() {
					opts.Budget = 48
				} else {
					opts.Budget = 0
				}
				rep := RunStoreDL(st, opts)
				if rep.Violation != nil {
					t.Fatalf("seed %d: %v", seed, rep.Violation)
				}
				if rep.Records == 0 || rep.Points < 2 {
					t.Fatalf("seed %d: thin run: %+v", seed, rep)
				}
			}
		})
	}
}

// TestStructureDLEnumeratedViaTargets spot-checks the Target→dlcheck
// adapter used by flitcrash -dlcheck (the structure batteries themselves
// live with the structures, via dstest.DLCheck).
func TestStructureDLEnumeratedViaTargets(t *testing.T) {
	target := Targets()[0] // list
	cfg := mkConfig(core.NewFliT(core.NewHashTable(1<<14)), dstruct.Automatic, 1<<16)
	rep := dlcheck.RunSet(cfg, target.DL(), dlcheck.DefaultOptions(1))
	if rep.Violation != nil {
		t.Fatal(rep.Violation)
	}
	if rep.Records == 0 || rep.Fences == 0 {
		t.Fatalf("thin run: %+v", rep)
	}
}
