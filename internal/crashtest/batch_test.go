package crashtest

import (
	"testing"

	"flit/internal/core"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/store"
	"flit/internal/workload"
)

// TestStoreBatchedDurableLinearizability is the randomized battery over
// the batched (group-commit) request path: pipelined batches, crash
// injection landing between and inside batches, shard-parallel
// recovery, exact per-key checking. Mid-batch crashes freeze whole
// batches as pending — the ack rule under test is that nothing responds
// before its batch's commit fence.
func TestStoreBatchedDurableLinearizability(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyLAP}
	if testing.Short() {
		policies = policies[:2]
	}
	for _, policy := range policies {
		modes := []dstruct.Mode{dstruct.Automatic}
		if policy == core.PolicyHT {
			modes = dstruct.Modes
		}
		t.Run(policy, func(t *testing.T) {
			for _, mode := range modes {
				for _, cm := range crashModes {
					for _, seed := range seeds {
						st := newCrashStoreMode(t, policy, mode)
						workload.Load(st, 200, 2)
						opts := DefaultStoreOptions(seed, cm)
						opts.KeyRange = 300
						opts.KeyOf = workload.Key
						verdict, err := RunStoreBatched(st, opts, 8)
						if err != nil {
							t.Fatal(err)
						}
						if verdict.Violation != nil {
							t.Fatalf("mode %v crash mode %v seed %d: %v", mode, cm, seed, verdict.Violation)
						}
						sess := store.Open[string](verdict.Store, store.Direct)
						if !sess.Put("post", 1) || !sess.Contains("post") || !sess.Delete("post") {
							t.Fatalf("mode %v crash mode %v seed %d: recovered store inoperable", mode, cm, seed)
						}
					}
				}
			}
		})
	}
}

// TestStoreBatchedDL is the systematic battery over the batched path:
// every (budgeted) persist boundary of recorded batched executions,
// across policies and durability modes. This is the enumeration the
// server's ack rule rests on: a response only ever follows its batch's
// commit fence, so no checked boundary may lose an acknowledged op.
func TestStoreBatchedDL(t *testing.T) {
	budget := 0 // every boundary
	seeds := []int64{1, 2}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyIz, core.PolicyLAP}
	if testing.Short() {
		budget = 64
		seeds = seeds[:1]
	}
	for _, policy := range policies {
		modes := []dstruct.Mode{dstruct.Automatic}
		if policy == core.PolicyHT {
			modes = dstruct.Modes
		}
		t.Run(policy, func(t *testing.T) {
			for _, mode := range modes {
				for _, seed := range seeds {
					st, err := NewDLStore(policy, mode)
					if err != nil {
						t.Fatal(err)
					}
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := RunStoreBatchedDL(st, opts)
					if rep.Violation != nil {
						t.Fatalf("mode %v seed %d: %v", mode, seed, rep.Violation)
					}
					if rep.Points < 2 {
						t.Fatalf("mode %v seed %d: only %d crash points checked", mode, seed, rep.Points)
					}
					if policy == core.PolicyHT && rep.LiveTags != 0 {
						t.Fatalf("mode %v seed %d: %d live tags after batched run", mode, seed, rep.LiveTags)
					}
				}
			}
		})
	}
}

// TestStoreBatchedFencesAmortized: the batched path must actually
// batch — the same recorded op budget issues fewer PFence instructions
// (and no more PWBs) through group commit than through per-op
// persistence. Single-worker, so the comparison is deterministic:
// with concurrency, readers of another batch's in-flight (tagged)
// stores legitimately pay extra flushes, which only the macro
// benchmarks can weigh against the dedup wins.
func TestStoreBatchedFencesAmortized(t *testing.T) {
	opts := dlcheck.Options{Workers: 1, OpsPerWorker: 54, Seed: 1, Budget: 2}

	stPer, err := NewDLStore(core.PolicyHT, dstruct.Automatic)
	if err != nil {
		t.Fatal(err)
	}
	per := RunStoreDL(stPer, opts)
	if per.Violation != nil {
		t.Fatal(per.Violation)
	}
	perStats := stPer.Mem().TotalStats()

	stBat, err := NewDLStore(core.PolicyHT, dstruct.Automatic)
	if err != nil {
		t.Fatal(err)
	}
	bat := RunStoreBatchedDL(stBat, opts)
	if bat.Violation != nil {
		t.Fatal(bat.Violation)
	}
	batStats := stBat.Mem().TotalStats()

	if batStats.PFences >= perStats.PFences {
		t.Fatalf("batched path issued %d fences, per-op path %d: group commit is not amortizing",
			batStats.PFences, perStats.PFences)
	}
	if batStats.PWBs > perStats.PWBs {
		t.Fatalf("batched path issued %d PWBs, per-op path %d: deferral added flushes",
			batStats.PWBs, perStats.PWBs)
	}
}

// TestStoreBatchedCheckerHasTeeth: with persistence disabled, the
// batched commit persists nothing — DropUnfenced rounds must surface a
// violation, proving the battery checks the ack rule rather than the
// code path's shape.
func TestStoreBatchedCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 6 && !caught; seed++ {
		st := newCrashStore(t, core.PolicyNoPersist)
		workload.Load(st, 200, 2)
		opts := DefaultStoreOptions(seed, pmem.DropUnfenced)
		opts.KeyRange = 300
		opts.KeyOf = workload.Key
		verdict, err := RunStoreBatched(st, opts, 8)
		if err != nil {
			t.Fatal(err)
		}
		caught = verdict.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the batched crash checker — the battery has no teeth")
	}
}

// TestStoreBatchedDLCheckerHasTeeth: the systematic batched battery
// must reject no-persist too — completed batched ops that never
// persisted show up at the first crash boundary.
func TestStoreBatchedDLCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 4 && !caught; seed++ {
		st, err := NewDLStore(core.PolicyNoPersist, dstruct.Automatic)
		if err != nil {
			t.Fatal(err)
		}
		opts := dlcheck.DefaultOptions(seed)
		opts.Budget = 16
		rep := RunStoreBatchedDL(st, opts)
		caught = rep.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the batched systematic battery")
	}
}
