package crashtest

import (
	"fmt"
	"math/rand"
	"sync"

	"flit/internal/dlcheck"
	"flit/internal/hist"
	"flit/internal/pmem"
	"flit/internal/server"
	"flit/internal/store"
)

// This file wires the batched request path — the network server's
// group-commit executor (server.Batcher over store.BatchSession) — into
// both crash harnesses: the randomized rounds (RunStoreBatched) and the
// systematic enumerator (RunStoreBatchedDL). The batteries drive the
// exact code the wire protocol runs, minus the sockets: per-shard
// grouping, deferred-persistence execution, one commit fence, then (and
// only then) responses.

// reqFor translates a checker operation into its wire request.
func reqFor(kind hist.Kind, key []byte, val uint64) server.Request {
	switch kind {
	case hist.Insert:
		return server.Request{Op: server.OpPut, Key: key, Val: val}
	case hist.Delete:
		return server.Request{Op: server.OpDelete, Key: key}
	default:
		return server.Request{Op: server.OpContains, Key: key}
	}
}

// batchExec adapts a server.Batcher to dlcheck.BatchExecutor, mapping
// the enumerator's uint64 keys onto store string keys (same namespace
// as RunStoreDL).
type batchExec struct {
	b     *server.Batcher
	reqs  []server.Request
	resps []server.Response
}

func (e *batchExec) ExecBatch(ops []dlcheck.BatchOp, results []bool) {
	e.reqs, e.resps = e.reqs[:0], e.resps[:0]
	for _, op := range ops {
		e.reqs = append(e.reqs, reqFor(op.Kind, []byte(dlStoreKey(op.Key)), op.Val))
		e.resps = append(e.resps, server.Response{})
	}
	e.b.Exec(e.reqs, e.resps)
	for i := range e.resps {
		results[i] = e.resps[i].Flag
	}
}

// RunStoreBatchedDL runs the systematic checker against a whole store
// reached through the server's batched executor: pipelined batches of
// varying depth execute under single commit fences, every response is
// recorded only after its batch's commit, and every (budgeted) persist
// boundary is recovered and checked. st must be freshly created, as for
// RunStoreDL.
func RunStoreBatchedDL(st *store.Store, opts dlcheck.Options) *dlcheck.Report {
	opts = opts.Normalized()
	keyspace := opts.KeyRange
	if opts.Prefill > keyspace {
		keyspace = opts.Prefill
	}
	back := make(map[uint64]uint64, keyspace)
	for k := 0; k < keyspace; k++ {
		back[store.HashKey(dlStoreKey(uint64(k)))] = uint64(k)
	}
	srv := server.New(st, server.Options{})
	return dlcheck.RunBatched(dlcheck.BatchedHarness{
		Name:       "store-batched",
		Mem:        st.Mem(),
		Policy:     st.Policy(),
		NewSession: func() dlcheck.BatchExecutor { return &batchExec{b: srv.NewBatcher()} },
		Recover: func(img []uint64) (map[uint64]bool, error) {
			mem2 := pmem.NewFromImage(img, st.Mem().Config())
			st2, _, err := store.Recover(mem2, st.Heap().Watermark(), st.Opts())
			if err != nil {
				return nil, err
			}
			final := make(map[uint64]bool)
			for h := range st2.Snapshot() {
				k, ok := back[h]
				if !ok {
					return nil, fmt.Errorf("recovered key hash %#x is outside the checker's namespace (phantom key)", h)
				}
				final[k] = true
			}
			return final, nil
		},
	}, opts)
}

// RunStoreBatched executes one seeded randomized crash round through
// the batched request path: workers pipeline batches of up to
// MaxBatch ops into group-commit executors, each crashing at a seeded
// instruction countdown — including mid-batch, which freezes executed-
// but-unacknowledged operations as pending history entries (free to
// survive or vanish). The recovered key set is then checked exactly as
// RunStore does.
func RunStoreBatched(st *store.Store, opts StoreOptions, maxBatch int) (StoreVerdict, error) {
	if opts.KeyOf == nil {
		opts.KeyOf = func(i uint64) string { return fmt.Sprintf("key-%d", i) }
	}
	if min := uint64(opts.Workers*opts.OpsPerWorker)/4 + 1; opts.KeyRange < min {
		opts.KeyRange = min
	}
	if opts.MaxCrash < opts.MinCrash {
		opts.MaxCrash = opts.MinCrash
	}
	if maxBatch <= 0 {
		maxBatch = 8
	}

	initial := make(map[uint64]bool)
	for k := range st.Snapshot() {
		initial[k] = true
	}

	srv := server.New(st, server.Options{MaxBatch: maxBatch})
	clock := &hist.Clock{}
	rng := rand.New(rand.NewSource(opts.Seed))
	recs := make([]*hist.Recorder, opts.Workers)
	batchers := make([]*server.Batcher, opts.Workers)
	countdowns := make([]int64, opts.Workers)
	seeds := make([]int64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		recs[w] = hist.NewRecorder(clock)
		batchers[w] = srv.NewBatcher()
		countdowns[w] = opts.MinCrash + rng.Int63n(opts.MaxCrash-opts.MinCrash+1)
		seeds[w] = rng.Int63()
	}

	var crashed, recorded int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := batchers[w]
			rec := recs[w]
			wrng := rand.New(rand.NewSource(seeds[w]))
			b.Session().Thread().SetCrashAfter(countdowns[w])
			n := 0
			reqs := make([]server.Request, 0, maxBatch)
			resps := make([]server.Response, maxBatch)
			toks := make([]int, 0, maxBatch)
			kinds := make([]hist.Kind, 0, maxBatch)
			c := pmem.RunToCrash(func() {
				remaining := opts.OpsPerWorker
				for remaining > 0 {
					depth := 1 + wrng.Intn(maxBatch)
					if depth > remaining {
						depth = remaining
					}
					remaining -= depth
					reqs, toks, kinds = reqs[:0], toks[:0], kinds[:0]
					for i := 0; i < depth; i++ {
						idx := uint64(wrng.Int63()) % opts.KeyRange
						key := opts.KeyOf(idx)
						hk := store.HashKey(key)
						kind := hist.Kind(wrng.Intn(3))
						reqs = append(reqs, reqFor(kind, []byte(key), uint64(n+i)))
						toks = append(toks, rec.Begin(kind, hk))
						kinds = append(kinds, kind)
					}
					n += depth
					// A crash inside Exec leaves the whole batch
					// unacknowledged: every op stays pending.
					b.Exec(reqs, resps[:depth])
					for i := 0; i < depth; i++ {
						rec.Finish(toks[i], resps[i].Flag)
					}
				}
			})
			mu.Lock()
			recorded += int64(n)
			if c {
				crashed++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(opts.CrashMode, opts.Seed^0x5ca1ab1e)
	mem2 := pmem.NewFromImage(img, st.Mem().Config())
	st2, rstats, err := store.Recover(mem2, wm, st.Opts())
	if err != nil {
		return StoreVerdict{}, err
	}
	final := make(map[uint64]bool)
	for k := range st2.Snapshot() {
		final[k] = true
	}
	return StoreVerdict{
		Violation:   hist.Check(recs, initial, final),
		Store:       st2,
		Recovery:    rstats,
		RecordedOps: int(recorded),
		Crashed:     int(crashed),
	}, nil
}
