package crashtest

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flit/internal/client"
	"flit/internal/hist"
	"flit/internal/pmem"
	"flit/internal/resilience"
	"flit/internal/server"
	"flit/internal/store"
)

// This file is the chaos harness: it drives the REAL service path —
// client.Conn pipelines over net.Pipe transports into server.ServeConn —
// through injected transport faults (resilience.WrapConn) and resilience
// policies (admission control, deadlines, drain), records every
// operation's acknowledgement in the hist checker, then takes a
// DropUnfenced crash image and verifies the one invariant the whole
// stack exists to keep: an acknowledged operation survives the crash.
//
// Responses the fault schedule destroys — and operations the server
// sheds with BUSY/DRAINING — stay PENDING in the history: the checker
// accepts either outcome for them, exactly the uncertainty a real client
// is left with. Acknowledged operations are completed entries, and a
// completed-but-unpersisted effect is a violation.
//
// The image is taken after the scenario quiesces (all handlers exited,
// every honest batch already committed), so the capture itself is
// race-free; mid-execution crash points are the batched dlcheck
// batteries' job (batch.go). What chaos adds is the service boundary:
// does the ack discipline survive resets, stalls, blackholes, overload
// and drain? Options.UnsafeDrainAckFirst exists as the harness's
// must-fail tooth — a deliberately broken drain that acks without the
// group-commit fence, which this battery has to catch.

// ChaosScenario describes one fault × policy × load cell.
type ChaosScenario struct {
	Name string
	// Faults is the per-connection client-side fault schedule; each dialed
	// connection bumps the seed so redials draw fresh but reproducible
	// faults.
	Faults resilience.Faults
	// Server carries the resilience policy under test (rate limit,
	// inflight caps, deadlines, UnsafeDrainAckFirst).
	Server server.Options
	// Conns workers each run OpsPerConn recorded operations, pipelining
	// up to Depth frames per flush.
	Conns, OpsPerConn, Depth int
	// KeyRange sizes the keyspace (widened like RunStore when too hot for
	// the exact checker).
	KeyRange uint64
	// OpTimeout bounds every client flush/receive so blackholed or wedged
	// connections fail instead of hanging the battery (default 250ms).
	OpTimeout time.Duration
	// DrainMid triggers srv.Shutdown once the first worker passes half
	// its budget, while the others keep driving load.
	DrainMid bool
}

// ChaosVerdict is the outcome of one chaos round.
type ChaosVerdict struct {
	// Violation is nil when every acknowledged operation survived the
	// crash (durable linearizability of the acked history).
	Violation *hist.Violation
	// Acked counts definitively answered store ops; Shed counts
	// BUSY/DRAINING rejections (left pending); Lost counts ops whose
	// response the fault schedule destroyed (also pending).
	Acked, Shed, Lost int
	// Redials counts worker reconnects after transport loss.
	Redials int
	// ServerStats is the server's own post-run accounting, for
	// cross-checking client-observed sheds against server-counted ones.
	ServerStats server.Stats
	// Recovery reports the post-crash rebuild.
	Recovery store.RecoveryStats
}

// RunStoreChaos executes one seeded chaos round against a fresh store
// and reports the checker's verdict. st must have VirtualClock-style
// deterministic instrumentation like the other batteries, and must be
// freshly created (the pre-round snapshot is the initial state).
func RunStoreChaos(st *store.Store, sc ChaosScenario, seed int64) (ChaosVerdict, error) {
	if sc.Conns <= 0 {
		sc.Conns = 4
	}
	if sc.OpsPerConn <= 0 {
		sc.OpsPerConn = 96
	}
	if sc.Depth <= 0 {
		sc.Depth = 8
	}
	if sc.OpTimeout <= 0 {
		sc.OpTimeout = 250 * time.Millisecond
	}
	if min := uint64(sc.Conns*sc.OpsPerConn)/4 + 1; sc.KeyRange < min {
		sc.KeyRange = min
	}

	initial := make(map[uint64]bool)
	for k := range st.Snapshot() {
		initial[k] = true
	}

	srv := server.New(st, sc.Server)
	clock := &hist.Clock{}
	rng := rand.New(rand.NewSource(seed))
	recs := make([]*hist.Recorder, sc.Conns)
	seeds := make([]int64, sc.Conns)
	for w := 0; w < sc.Conns; w++ {
		recs[w] = hist.NewRecorder(clock)
		seeds[w] = rng.Int63()
	}

	// The drain trigger waits for every worker to finish at least one
	// window: firing while a worker's handler is still registering would
	// reject that connection outright, flooding the history with pending
	// ops — pending deletes can then legally "explain" any missing key,
	// masking exactly the unfenced-ack bug the tooth must expose.
	var warmed atomic.Int32
	var drainOnce sync.Once
	shutdownDone := make(chan error, 1)
	triggerDrain := func() {
		drainOnce.Do(func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				shutdownDone <- srv.Shutdown(ctx)
			}()
		})
	}

	var mu sync.Mutex
	var acked, shed, lost, redials int
	var wg sync.WaitGroup
	for w := 0; w < sc.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := recs[w]
			wrng := rand.New(rand.NewSource(seeds[w]))
			var aAck, aShed, aLost, aRedial int
			connSeq := int64(0)
			dial := func() *client.Conn {
				cc, scn := net.Pipe()
				go srv.ServeConn(scn)
				f := sc.Faults
				f.Seed = seeds[w] + connSeq
				connSeq++
				c := client.New(resilience.WrapConn(cc, f))
				c.SetOpTimeout(sc.OpTimeout)
				return c
			}
			c := dial()
			defer func() { c.Close() }()

			budget := sc.OpsPerConn
			toks := make([]int, 0, sc.Depth)
			sawDraining := false
			firstWindow := true
			for budget > 0 && !sawDraining {
				// Any worker past half budget may pull the trigger once
				// every worker is warmed — scheduling decides which one
				// actually does, so the drain lands mid-load regardless
				// of how the runtime interleaves the workers.
				if sc.DrainMid && budget <= sc.OpsPerConn/2 &&
					warmed.Load() == int32(sc.Conns) {
					triggerDrain()
				}
				depth := 1 + wrng.Intn(sc.Depth)
				if depth > budget {
					depth = budget
				}
				budget -= depth
				toks = toks[:0]
				for i := 0; i < depth; i++ {
					idx := uint64(wrng.Int63()) % sc.KeyRange
					key := fmt.Sprintf("chaos-%d", idx)
					hk := store.HashKey(key)
					kind := hist.Kind(wrng.Intn(3))
					toks = append(toks, rec.Begin(kind, hk))
					req := reqFor(kind, []byte(key), uint64(budget+i))
					c.Send(&req)
				}
				if err := c.Flush(); err != nil {
					// The whole window is in an unknown state: pending.
					aLost += depth
					c.Close()
					c = dial()
					aRedial++
					continue
				}
				broken := false
				for i := 0; i < depth; i++ {
					resp, err := c.Recv()
					if err != nil {
						aLost += depth - i
						broken = true
						break
					}
					switch resp.Status {
					case server.StatusBusy:
						aShed++ // pending: the server says "not executed"
					case server.StatusDraining:
						aShed++
						sawDraining = true
					default:
						rec.Finish(toks[i], resp.Flag)
						aAck++
					}
				}
				if broken {
					c.Close()
					c = dial()
					aRedial++
				}
				if firstWindow {
					firstWindow = false
					warmed.Add(1)
				}
			}
			mu.Lock()
			acked += aAck
			shed += aShed
			lost += aLost
			redials += aRedial
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// Quiesce: every worker's connections are closed; wait for (or force)
	// server teardown so no handler is mid-batch when the image is taken.
	if sc.DrainMid {
		triggerDrain() // in case worker 0 lost its connection before the trigger point
		if err := <-shutdownDone; err != nil {
			return ChaosVerdict{}, fmt.Errorf("chaos %q: shutdown: %w", sc.Name, err)
		}
	} else {
		srv.Close()
	}
	stats := srv.Stats()

	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(pmem.DropUnfenced, seed^0x5ca1ab1e)
	mem2 := pmem.NewFromImage(img, st.Mem().Config())
	st2, rstats, err := store.Recover(mem2, wm, st.Opts())
	if err != nil {
		return ChaosVerdict{}, fmt.Errorf("chaos %q: recover: %w", sc.Name, err)
	}
	final := make(map[uint64]bool)
	for k := range st2.Snapshot() {
		final[k] = true
	}
	return ChaosVerdict{
		Violation:   hist.Check(recs, initial, final),
		Acked:       acked,
		Shed:        shed,
		Lost:        lost,
		Redials:     redials,
		ServerStats: stats,
		Recovery:    rstats,
	}, nil
}

// ChaosScenarios is the standard battery: one cell per fault family,
// each crossed with the resilience policy that answers it. Every cell
// must pass the acked⇒persisted check; the broken-drain tooth
// (UnsafeDrainAckFirst) is NOT in this list — it is the battery's
// must-fail control, run separately (see BrokenDrainScenario).
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			// Pure overload: a tight rate limit sheds most of the offered
			// load; everything acked anyway must persist.
			Name:   "overload-shed",
			Server: server.Options{MaxBatch: 8, RateLimit: 2000, RateBurst: 8, MaxInflight: 16},
			Conns:  4, OpsPerConn: 96, Depth: 8,
		},
		{
			// Connection resets mid-pipeline: responses vanish, workers
			// redial; every op that DID get an ack must persist.
			Name:   "reset-mid-pipeline",
			Faults: resilience.Faults{ResetAfterBytes: 1536},
			Server: server.Options{MaxBatch: 8},
			Conns:  4, OpsPerConn: 96, Depth: 8,
		},
		{
			// Pathological framing: every write split into 1..16-byte
			// chunks; the server must reassemble or classify, never
			// mis-execute.
			Name:   "partial-writes",
			Faults: resilience.Faults{PartialWrites: true},
			Server: server.Options{MaxBatch: 8},
			Conns:  4, OpsPerConn: 64, Depth: 8,
		},
		{
			// Stalled readers: the client dawdles on every read while the
			// server's write budget reaps it; acks that made it through
			// must persist.
			Name:   "slow-reader-reap",
			Faults: resilience.Faults{DelayEvery: 3, ReadDelay: 15 * time.Millisecond},
			Server: server.Options{MaxBatch: 8, WriteTimeout: 5 * time.Millisecond},
			Conns:  3, OpsPerConn: 48, Depth: 6,
		},
		{
			// Dead peer that never RSTs: traffic blackholes, client op
			// timeouts fire, ops stay pending.
			Name:   "blackhole",
			Faults: resilience.Faults{BlackholeAfterBytes: 1200},
			Server: server.Options{MaxBatch: 8, IdleTimeout: 50 * time.Millisecond},
			Conns:  3, OpsPerConn: 64, Depth: 6,
			OpTimeout: 60 * time.Millisecond,
		},
		{
			// Graceful drain under live traffic: batches in flight are
			// committed and acked, everything else is answered DRAINING —
			// and the acked prefix survives the crash.
			Name:   "drain-mid-run",
			Server: server.Options{MaxBatch: 8},
			Conns:  4, OpsPerConn: 96, Depth: 8,
			DrainMid: true,
		},
	}
}

// BrokenDrainScenario is the harness's tooth: a drain that keeps serving
// and acks WITHOUT the group-commit fence. Run through RunStoreChaos it
// MUST produce a violation — a battery that passes this cell has lost
// its teeth and cannot be trusted on the real ones.
func BrokenDrainScenario() ChaosScenario {
	return ChaosScenario{
		Name:   "broken-drain-tooth",
		Server: server.Options{MaxBatch: 8, UnsafeDrainAckFirst: true},
		Conns:  4, OpsPerConn: 96, Depth: 8,
		DrainMid: true,
	}
}
