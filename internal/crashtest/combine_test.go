package crashtest

import (
	"testing"

	"flit/internal/core"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/store"
	"flit/internal/workload"
)

// TestStoreCombinedDurableLinearizability is the randomized battery over
// the embedded flat-combining path: workers announce op vectors to the
// per-shard combiners, crash injection lands on the combiner threads —
// mid-window, which freezes every in-flight Apply in the process as
// pending history — and the recovered key set is checked exactly. The
// ack rule under test: nothing responds before its window's one fence.
func TestStoreCombinedDurableLinearizability(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyLAP}
	if testing.Short() {
		policies = policies[:2]
	}
	for _, policy := range policies {
		modes := []dstruct.Mode{dstruct.Automatic}
		if policy == core.PolicyHT {
			modes = dstruct.Modes
		}
		t.Run(policy, func(t *testing.T) {
			for _, mode := range modes {
				for _, cm := range crashModes {
					for _, seed := range seeds {
						st := newCrashStoreMode(t, policy, mode)
						workload.Load(st, 200, 2)
						opts := DefaultStoreOptions(seed, cm)
						opts.KeyRange = 300
						opts.KeyOf = workload.Key
						verdict, err := RunStoreCombined(st, opts, 8)
						if err != nil {
							t.Fatal(err)
						}
						if verdict.Violation != nil {
							t.Fatalf("mode %v crash mode %v seed %d: %v", mode, cm, seed, verdict.Violation)
						}
						sess := store.Open[string](verdict.Store, store.Direct)
						if !sess.Put("post", 1) || !sess.Contains("post") || !sess.Delete("post") {
							t.Fatalf("mode %v crash mode %v seed %d: recovered store inoperable", mode, cm, seed)
						}
					}
				}
			}
		})
	}
}

// TestStoreCombinedDL is the systematic battery over the combining path:
// every (budgeted) persist boundary of recorded combined executions,
// across policies and durability modes. Concurrent sessions' vectors
// merge into shared combiner windows here, so the enumeration covers
// boundaries inside multi-session windows — executed-but-unfenced
// operations from several announcers at once.
func TestStoreCombinedDL(t *testing.T) {
	budget := 0 // every boundary
	seeds := []int64{1, 2}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyIz, core.PolicyLAP}
	if testing.Short() {
		budget = 64
		seeds = seeds[:1]
	}
	for _, policy := range policies {
		modes := []dstruct.Mode{dstruct.Automatic}
		if policy == core.PolicyHT {
			modes = dstruct.Modes
		}
		t.Run(policy, func(t *testing.T) {
			for _, mode := range modes {
				for _, seed := range seeds {
					st, err := NewDLStore(policy, mode)
					if err != nil {
						t.Fatal(err)
					}
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := RunStoreCombinedDL(st, opts)
					if rep.Violation != nil {
						t.Fatalf("mode %v seed %d: %v", mode, seed, rep.Violation)
					}
					if rep.Points < 2 {
						t.Fatalf("mode %v seed %d: only %d crash points checked", mode, seed, rep.Points)
					}
					if policy == core.PolicyHT && rep.LiveTags != 0 {
						t.Fatalf("mode %v seed %d: %d live tags after combined run", mode, seed, rep.LiveTags)
					}
				}
			}
		})
	}
}

// TestStoreCombinedCheckerHasTeeth: with persistence disabled, the
// combiner's window fence persists nothing — DropUnfenced rounds must
// surface a violation, proving the battery checks the ack rule rather
// than the code path's shape.
func TestStoreCombinedCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 6 && !caught; seed++ {
		st := newCrashStore(t, core.PolicyNoPersist)
		workload.Load(st, 200, 2)
		opts := DefaultStoreOptions(seed, pmem.DropUnfenced)
		opts.KeyRange = 300
		opts.KeyOf = workload.Key
		verdict, err := RunStoreCombined(st, opts, 8)
		if err != nil {
			t.Fatal(err)
		}
		caught = verdict.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the combined crash checker — the battery has no teeth")
	}
}

// TestStoreCombinedDLCheckerHasTeeth: the systematic combined battery
// must reject no-persist too — acknowledged combined ops that never
// persisted show up at the first crash boundary.
func TestStoreCombinedDLCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 4 && !caught; seed++ {
		st, err := NewDLStore(core.PolicyNoPersist, dstruct.Automatic)
		if err != nil {
			t.Fatal(err)
		}
		opts := dlcheck.DefaultOptions(seed)
		opts.Budget = 16
		rep := RunStoreCombinedDL(st, opts)
		caught = rep.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the combined systematic battery")
	}
}

// TestStoreCombinedAddsCrashSafety is the net-delta battery: windows of
// ±1 deltas over a few hot counters, crash countdowns on the combiner
// threads, and the interval check — every recovered counter must equal
// the acknowledged net plus some subset of the pending deltas. This is
// the crash-safety contract the coalescing elision must honor: skipping
// the store for a self-cancelling window is legal only because the
// acknowledged net really is zero.
func TestStoreCombinedAddsCrashSafety(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:3]
	}
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyLAP}
	if testing.Short() {
		policies = policies[:2]
	}
	crashes := 0
	for _, policy := range policies {
		t.Run(policy, func(t *testing.T) {
			for _, cm := range crashModes {
				for _, seed := range seeds {
					st := newCrashStore(t, policy)
					opts := DefaultStoreOptions(seed, cm)
					// Coalescing collapses a whole round's adds into ~100
					// instrumented instructions per combiner thread;
					// tighten the countdowns so crashes still land mid-run.
					opts.MinCrash, opts.MaxCrash = 10, 150
					verdict, err := RunStoreCombinedAdds(st, opts, 16, 4, false)
					if err != nil {
						t.Fatal(err)
					}
					if verdict.Violation != nil {
						t.Fatalf("crash mode %v seed %d: %v", cm, seed, verdict.Violation)
					}
					crashes += verdict.Crashed
				}
			}
		})
	}
	if !testing.Short() && crashes == 0 {
		t.Fatal("no round crashed mid-run: the adds battery exercised no crash point")
	}
}

// TestStoreCombinedAddsCheckerHasTeeth: biased (+1-only) traffic through
// a no-persist store drifts every acknowledged counter upward while the
// image retains nothing — the interval check must reject it.
func TestStoreCombinedAddsCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 4 && !caught; seed++ {
		st := newCrashStore(t, core.PolicyNoPersist)
		opts := DefaultStoreOptions(seed, pmem.DropUnfenced)
		opts.MinCrash, opts.MaxCrash = 10, 150
		verdict, err := RunStoreCombinedAdds(st, opts, 16, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		caught = verdict.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the net-delta battery — it has no teeth")
	}
}
