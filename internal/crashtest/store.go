package crashtest

import (
	"fmt"
	"math/rand"
	"sync"

	"flit/internal/hist"
	"flit/internal/pmem"
	"flit/internal/store"
)

// StoreOptions parameterizes one whole-store crash round.
type StoreOptions struct {
	Workers int
	// OpsPerWorker is each worker's budget (workers usually crash first).
	OpsPerWorker int
	// KeyRange draws key indices from [0, KeyRange); KeyOf renders them as
	// store keys. RunStore widens a too-small range so per-key histories
	// stay inside the checker's 64-op exact window.
	KeyRange uint64
	KeyOf    func(uint64) string
	// MinCrash/MaxCrash bound the per-worker instruction countdowns.
	MinCrash, MaxCrash int64
	CrashMode          pmem.CrashMode
	Seed               int64
}

// DefaultStoreOptions mirrors DefaultOptions at service granularity.
func DefaultStoreOptions(seed int64, mode pmem.CrashMode) StoreOptions {
	return StoreOptions{
		Workers: 4, OpsPerWorker: 96, KeyRange: 256,
		MinCrash: 200, MaxCrash: 6000,
		CrashMode: mode, Seed: seed,
	}
}

// StoreVerdict is the outcome of one store crash round.
type StoreVerdict struct {
	// Violation is nil when the recovered state is durably linearizable.
	Violation *hist.Violation
	// Store is the recovered instance (usable for the next cycle).
	Store *store.Store
	// Recovery reports the shard-parallel rebuild.
	Recovery store.RecoveryStats
	// RecordedOps counts operations the workers invoked (completed or
	// pending at the crash); Crashed counts workers the crash interrupted.
	RecordedOps int
	Crashed     int
}

// RunStore executes one seeded crash-recovery round against a whole
// store: workers run recorded Put/Get/Delete streams through sessions,
// each crashing at a seeded instruction countdown; the persistent image
// is materialized, every shard is recovered in parallel, and the
// recovered key set is checked for durable linearizability against the
// recorded multi-key history. The pre-round snapshot is the initial
// state, so RunStore composes with unrecorded load/run phases before it.
func RunStore(st *store.Store, opts StoreOptions) (StoreVerdict, error) {
	if opts.KeyOf == nil {
		opts.KeyOf = func(i uint64) string { return fmt.Sprintf("key-%d", i) }
	}
	// Keep expected per-key op counts ≤ ~4 so the exact checker's 64-op
	// cap holds with overwhelming probability even on the hottest key.
	if min := uint64(opts.Workers*opts.OpsPerWorker)/4 + 1; opts.KeyRange < min {
		opts.KeyRange = min
	}
	if opts.MaxCrash < opts.MinCrash {
		opts.MaxCrash = opts.MinCrash
	}

	initial := make(map[uint64]bool)
	for k := range st.Snapshot() {
		initial[k] = true
	}

	clock := &hist.Clock{}
	rng := rand.New(rand.NewSource(opts.Seed))
	recs := make([]*hist.Recorder, opts.Workers)
	sessions := make([]*store.Sess[string], opts.Workers)
	countdowns := make([]int64, opts.Workers)
	seeds := make([]int64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		recs[w] = hist.NewRecorder(clock)
		sessions[w] = store.Open[string](st, store.Direct)
		countdowns[w] = opts.MinCrash + rng.Int63n(opts.MaxCrash-opts.MinCrash+1)
		seeds[w] = rng.Int63()
	}

	var crashed, recorded int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sessions[w]
			rec := recs[w]
			wrng := rand.New(rand.NewSource(seeds[w]))
			sess.Thread().SetCrashAfter(countdowns[w])
			n := 0
			c := pmem.RunToCrash(func() {
				for i := 0; i < opts.OpsPerWorker; i++ {
					idx := uint64(wrng.Int63()) % opts.KeyRange
					key := opts.KeyOf(idx)
					hk := store.HashKey(key)
					n++
					switch wrng.Intn(3) {
					case 0:
						// Put maps onto set-Insert semantics: true iff the
						// key was newly inserted.
						tok := rec.Begin(hist.Insert, hk)
						rec.Finish(tok, sess.Put(key, uint64(i)))
					case 1:
						tok := rec.Begin(hist.Delete, hk)
						rec.Finish(tok, sess.Delete(key))
					default:
						tok := rec.Begin(hist.Contains, hk)
						_, ok := sess.Get(key)
						rec.Finish(tok, ok)
					}
				}
			})
			mu.Lock()
			recorded += int64(n)
			if c {
				crashed++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(opts.CrashMode, opts.Seed^0x5ca1ab1e)
	mem2 := pmem.NewFromImage(img, st.Mem().Config())
	st2, rstats, err := store.Recover(mem2, wm, st.Opts())
	if err != nil {
		return StoreVerdict{}, err
	}

	final := make(map[uint64]bool)
	for k := range st2.Snapshot() {
		final[k] = true
	}
	return StoreVerdict{
		Violation:   hist.Check(recs, initial, final),
		Store:       st2,
		Recovery:    rstats,
		RecordedOps: int(recorded),
		Crashed:     int(crashed),
	}, nil
}
