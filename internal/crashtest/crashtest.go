// Package crashtest drives randomized crash-recovery validation: worker
// threads run recorded operations against a durable set, each crashing at
// a seeded instruction countdown (anywhere a real power failure could
// land); the persistent image is materialized under a chosen CrashMode,
// recovered, and the surviving state is checked for durable
// linearizability with the hist checker.
package crashtest

import (
	"math/rand"
	"sync"

	"flit/internal/dstruct"
	"flit/internal/dstruct/bst"
	"flit/internal/dstruct/hashtable"
	"flit/internal/dstruct/list"
	"flit/internal/dstruct/lockmap"
	"flit/internal/dstruct/skiplist"
	"flit/internal/hist"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// Instance couples a set with a quiescent snapshot function.
type Instance struct {
	Set      dstruct.Set
	Snapshot func() map[uint64]uint64
}

// Target describes one data structure under crash test.
type Target struct {
	Name string
	// WithLAP reports whether link-and-persist applies (false for the BST).
	WithLAP bool
	New     func(cfg dstruct.Config) Instance
	Recover func(cfg dstruct.Config) Instance
}

// Targets enumerates the paper's four lock-free structures plus the
// lock-based map (§7's extension).
func Targets() []Target {
	return []Target{
		{
			Name: "list", WithLAP: true,
			New: func(cfg dstruct.Config) Instance {
				l := list.New(cfg)
				return Instance{Set: l, Snapshot: l.Snapshot}
			},
			Recover: func(cfg dstruct.Config) Instance {
				l := list.Recover(cfg)
				return Instance{Set: l, Snapshot: l.Snapshot}
			},
		},
		{
			Name: "hashtable", WithLAP: true,
			New: func(cfg dstruct.Config) Instance {
				h := hashtable.New(cfg, 8)
				return Instance{Set: h, Snapshot: h.Snapshot}
			},
			Recover: func(cfg dstruct.Config) Instance {
				h := hashtable.Recover(cfg)
				return Instance{Set: h, Snapshot: h.Snapshot}
			},
		},
		{
			Name: "skiplist", WithLAP: true,
			New: func(cfg dstruct.Config) Instance {
				s := skiplist.New(cfg)
				return Instance{Set: s, Snapshot: s.Snapshot}
			},
			Recover: func(cfg dstruct.Config) Instance {
				s := skiplist.Recover(cfg)
				return Instance{Set: s, Snapshot: s.Snapshot}
			},
		},
		{
			Name: "lockmap", WithLAP: true,
			New: func(cfg dstruct.Config) Instance {
				m := lockmap.New(cfg, 8)
				return Instance{Set: m, Snapshot: m.Snapshot}
			},
			Recover: func(cfg dstruct.Config) Instance {
				m := lockmap.Recover(cfg)
				return Instance{Set: m, Snapshot: m.Snapshot}
			},
		},
		{
			Name: "bst", WithLAP: false,
			New: func(cfg dstruct.Config) Instance {
				b := bst.New(cfg)
				return Instance{Set: b, Snapshot: b.Snapshot}
			},
			Recover: func(cfg dstruct.Config) Instance {
				b := bst.Recover(cfg)
				return Instance{Set: b, Snapshot: b.Snapshot}
			},
		},
	}
}

// Options parameterizes one crash run.
type Options struct {
	Workers   int
	KeyRange  int   // keys in [0, KeyRange); sized so per-key histories stay < 64 ops
	Prefill   int   // keys [0, Prefill) inserted before the recorded run
	MaxOps    int   // per-worker op budget (workers usually crash first)
	MinCrash  int64 // instruction-countdown bounds per worker
	MaxCrash  int64
	CrashMode pmem.CrashMode
	Seed      int64
}

// DefaultOptions returns a configuration tuned so the checker stays exact
// (per-key histories under 64 ops) while crashes land mid-operation.
func DefaultOptions(seed int64, mode pmem.CrashMode) Options {
	return Options{
		Workers: 4, KeyRange: 24, Prefill: 12, MaxOps: 120,
		MinCrash: 50, MaxCrash: 4000,
		CrashMode: mode, Seed: seed,
	}
}

// Run executes one seeded crash-recovery round and returns the checker's
// verdict (nil = durably linearizable) plus the recovered instance for
// further inspection.
func Run(cfg dstruct.Config, target Target, opts Options) (*hist.Violation, Instance) {
	inst := target.New(cfg)

	// Prefill with completed inserts outside the recorded history.
	setup := inst.Set.NewThread()
	initial := make(map[uint64]bool, opts.Prefill)
	for k := 0; k < opts.Prefill; k++ {
		setup.Insert(uint64(k), uint64(k)+1000)
		initial[uint64(k)] = true
	}

	clock := &hist.Clock{}
	recs := make([]*hist.Recorder, opts.Workers)
	rng := rand.New(rand.NewSource(opts.Seed))
	countdowns := make([]int64, opts.Workers)
	seeds := make([]int64, opts.Workers)
	for w := range countdowns {
		countdowns[w] = opts.MinCrash + rng.Int63n(opts.MaxCrash-opts.MinCrash+1)
		seeds[w] = rng.Int63()
	}

	var wg sync.WaitGroup
	threads := make([]dstruct.SetThread, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		threads[w] = inst.Set.NewThread()
		recs[w] = hist.NewRecorder(clock)
	}
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := threads[w]
			rec := recs[w]
			wrng := rand.New(rand.NewSource(seeds[w]))
			// Arm the deterministic instruction-countdown crash. The
			// thread context is reachable via the structures' Ctx
			// accessors, but the countdown API lives on pmem.Thread; we
			// route through the ctxOf helper.
			ctxOf(th).T.SetCrashAfter(countdowns[w])
			pmem.RunToCrash(func() {
				for i := 0; i < opts.MaxOps; i++ {
					k := uint64(wrng.Intn(opts.KeyRange))
					switch wrng.Intn(3) {
					case 0:
						tok := rec.Begin(hist.Insert, k)
						rec.Finish(tok, th.Insert(k, uint64(i)))
					case 1:
						tok := rec.Begin(hist.Delete, k)
						rec.Finish(tok, th.Delete(k))
					default:
						tok := rec.Begin(hist.Contains, k)
						rec.Finish(tok, th.Contains(k))
					}
				}
			})
		}(w)
	}
	wg.Wait()

	wm := cfg.Heap.Watermark()
	img := cfg.Heap.Mem().CrashImage(opts.CrashMode, opts.Seed^0x5ca1ab1e)
	mem2 := pmem.NewFromImage(img, cfg.Heap.Mem().Config())
	cfg2 := cfg
	cfg2.Heap = pheap.Recover(mem2, wm)
	rec2 := target.Recover(cfg2)

	final := make(map[uint64]bool)
	for k := range rec2.Snapshot() {
		final[k] = true
	}
	return hist.Check(recs, initial, final), rec2
}

// ctxOf extracts the dstruct.Ctx from any target's thread type.
func ctxOf(th dstruct.SetThread) dstruct.Ctx {
	type hasCtx interface{ Ctx() dstruct.Ctx }
	return th.(hasCtx).Ctx()
}
