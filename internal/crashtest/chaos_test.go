package crashtest

import (
	"testing"

	"flit/internal/core"
	"flit/internal/store"
)

func chaosStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 12, Policy: core.PolicyHT,
		HTBytes: 1 << 16, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosBattery runs every standard scenario: whatever the fault
// schedule destroys, every acknowledged operation must survive a
// DropUnfenced crash.
func TestChaosBattery(t *testing.T) {
	for _, sc := range ChaosScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			v, err := RunStoreChaos(chaosStore(t), sc, 42)
			if err != nil {
				t.Fatal(err)
			}
			if v.Violation != nil {
				t.Fatalf("acked op lost: %v", v.Violation)
			}
			if v.Acked == 0 {
				t.Fatalf("scenario recorded no acked ops (shed=%d lost=%d) — it exercised nothing", v.Shed, v.Lost)
			}
			t.Logf("%s: acked=%d shed=%d lost=%d redials=%d serverShed=%d",
				sc.Name, v.Acked, v.Shed, v.Lost, v.Redials,
				v.ServerStats.ShedBusy+v.ServerStats.ShedDraining)
		})
	}
}

// TestChaosScenarioShapes pins per-scenario expectations: each cell must
// actually trigger its fault family, or the battery is vacuous.
func TestChaosScenarioShapes(t *testing.T) {
	for _, sc := range ChaosScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			v, err := RunStoreChaos(chaosStore(t), sc, 7)
			if err != nil {
				t.Fatal(err)
			}
			switch sc.Name {
			case "overload-shed":
				if v.Shed == 0 {
					t.Fatalf("overload cell shed nothing: %+v", v)
				}
				serverShed := v.ServerStats.ShedBusy + v.ServerStats.ShedDraining
				// No transport faults: every shed the server counted was
				// delivered to and counted by a client.
				if uint64(v.Shed) != serverShed {
					t.Fatalf("client counted %d sheds, server %d", v.Shed, serverShed)
				}
			case "reset-mid-pipeline", "blackhole":
				if v.Lost == 0 {
					t.Fatalf("%s lost no responses: %+v", sc.Name, v)
				}
				if v.Redials == 0 {
					t.Fatalf("%s never redialed: %+v", sc.Name, v)
				}
			case "slow-reader-reap":
				if v.ServerStats.ConnErrors["slow_reader"] == 0 {
					t.Fatalf("write budget never reaped a stalled reader: %+v", v.ServerStats.ConnErrors)
				}
			case "drain-mid-run":
				if v.ServerStats.ShedDraining == 0 && v.Lost == 0 {
					t.Fatalf("drain cell neither rejected nor cut anything: %+v", v)
				}
				if !v.ServerStats.Draining {
					t.Fatal("server does not report draining after Shutdown")
				}
			}
		})
	}
}

// TestChaosBrokenDrainToothBites runs the deliberately broken drain
// (acks without the group-commit fence). The battery MUST flag it: a
// green result here means the harness has lost its ability to detect
// the very bug class it exists for.
func TestChaosBrokenDrainToothBites(t *testing.T) {
	v, err := RunStoreChaos(chaosStore(t), BrokenDrainScenario(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if v.Violation == nil {
		t.Fatalf("broken drain was NOT detected (acked=%d shed=%d lost=%d) — the battery is toothless",
			v.Acked, v.Shed, v.Lost)
	}
	t.Logf("tooth bit as required: %v", v.Violation)
}
