package crashtest

import (
	"fmt"
	"math/rand"
	"sync"

	"flit/internal/dlcheck"
	"flit/internal/hist"
	"flit/internal/pmem"
	"flit/internal/store"
)

// This file wires the embedded flat-combining path — Combined sessions
// announcing into the store's per-shard combiners — into both crash
// harnesses. The ack rule under test is the combiner's: a Combined
// Apply returns (and thus a result is externalized) only after its
// window's single commit fence, so no crash boundary may lose an
// acknowledged operation. Crash injection is armed on the combiner
// threads (store.CombinerThreads): announcing sessions execute no
// instrumented instructions themselves, so in Combined mode those are
// the only threads a countdown can fire on. A firing countdown kills
// the whole simulated process (sticky Store crash flag), freezing every
// in-flight window as pending history.

// combExec adapts a Combined store session to dlcheck.BatchExecutor,
// mapping the enumerator's uint64 keys onto store string keys (same
// namespace as RunStoreDL).
type combExec struct {
	sess *store.Sess[string]
	ops  []store.Op[string]
	res  []store.Result
}

func (e *combExec) ExecBatch(ops []dlcheck.BatchOp, results []bool) {
	e.ops, e.res = e.ops[:0], e.res[:0]
	for _, op := range ops {
		kind := store.OpContains
		switch op.Kind {
		case hist.Insert:
			kind = store.OpPut
		case hist.Delete:
			kind = store.OpDelete
		}
		e.ops = append(e.ops, store.Op[string]{Kind: kind, Key: dlStoreKey(op.Key), Val: op.Val})
		e.res = append(e.res, store.Result{})
	}
	e.sess.Apply(e.ops, e.res)
	for i := range e.res {
		results[i] = e.res[i].Ok
	}
}

// RunStoreCombinedDL runs the systematic checker against a whole store
// reached through Combined sessions: pipelined op vectors announce to
// the per-shard combiners, execute under single window fences (possibly
// merged with other sessions' announcements into one window), and every
// response is recorded only after Apply returns — i.e. after the fence.
// Every (budgeted) persist boundary is then recovered and checked. st
// must be freshly created, as for RunStoreDL.
func RunStoreCombinedDL(st *store.Store, opts dlcheck.Options) *dlcheck.Report {
	opts = opts.Normalized()
	keyspace := opts.KeyRange
	if opts.Prefill > keyspace {
		keyspace = opts.Prefill
	}
	back := make(map[uint64]uint64, keyspace)
	for k := 0; k < keyspace; k++ {
		back[store.HashKey(dlStoreKey(uint64(k)))] = uint64(k)
	}
	return dlcheck.RunBatched(dlcheck.BatchedHarness{
		Name:   "store-combined",
		Mem:    st.Mem(),
		Policy: st.Policy(),
		NewSession: func() dlcheck.BatchExecutor {
			return &combExec{sess: store.Open[string](st, store.Combined)}
		},
		Recover: func(img []uint64) (map[uint64]bool, error) {
			mem2 := pmem.NewFromImage(img, st.Mem().Config())
			st2, _, err := store.Recover(mem2, st.Heap().Watermark(), st.Opts())
			if err != nil {
				return nil, err
			}
			final := make(map[uint64]bool)
			for h := range st2.Snapshot() {
				k, ok := back[h]
				if !ok {
					return nil, fmt.Errorf("recovered key hash %#x is outside the checker's namespace (phantom key)", h)
				}
				final[k] = true
			}
			return final, nil
		},
	}, opts)
}

// RunStoreCombined executes one seeded randomized crash round through
// the flat-combining path: workers pipeline op vectors of up to
// maxBatch ops into Combined sessions while the per-shard combiner
// threads run seeded instruction countdowns. A countdown firing
// mid-window kills the simulated process — the crashing volunteer's
// window freezes as executed-but-unacknowledged, and every other
// worker's in-flight Apply dies with it, so all their ops stay pending
// (free to survive or vanish). The recovered key set is then checked
// exactly as RunStore does.
func RunStoreCombined(st *store.Store, opts StoreOptions, maxBatch int) (StoreVerdict, error) {
	if opts.KeyOf == nil {
		opts.KeyOf = func(i uint64) string { return fmt.Sprintf("key-%d", i) }
	}
	if min := uint64(opts.Workers*opts.OpsPerWorker)/4 + 1; opts.KeyRange < min {
		opts.KeyRange = min
	}
	if opts.MaxCrash < opts.MinCrash {
		opts.MaxCrash = opts.MinCrash
	}
	if maxBatch <= 0 {
		maxBatch = 8
	}

	initial := make(map[uint64]bool)
	for k := range st.Snapshot() {
		initial[k] = true
	}

	clock := &hist.Clock{}
	rng := rand.New(rand.NewSource(opts.Seed))
	recs := make([]*hist.Recorder, opts.Workers)
	sessions := make([]*store.Sess[string], opts.Workers)
	seeds := make([]int64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		recs[w] = hist.NewRecorder(clock)
		sessions[w] = store.Open[string](st, store.Combined)
		seeds[w] = rng.Int63()
	}
	// Countdowns live on the combiner threads, one per shard — the only
	// threads that execute instrumented instructions in Combined mode.
	for _, ct := range st.CombinerThreads() {
		ct.SetCrashAfter(opts.MinCrash + rng.Int63n(opts.MaxCrash-opts.MinCrash+1))
	}

	var crashed, recorded int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sessions[w]
			rec := recs[w]
			wrng := rand.New(rand.NewSource(seeds[w]))
			n := 0
			ops := make([]store.Op[string], 0, maxBatch)
			res := make([]store.Result, maxBatch)
			toks := make([]int, 0, maxBatch)
			c := pmem.RunToCrash(func() {
				remaining := opts.OpsPerWorker
				for remaining > 0 {
					depth := 1 + wrng.Intn(maxBatch)
					if depth > remaining {
						depth = remaining
					}
					remaining -= depth
					ops, toks = ops[:0], toks[:0]
					for i := 0; i < depth; i++ {
						idx := uint64(wrng.Int63()) % opts.KeyRange
						key := opts.KeyOf(idx)
						hk := store.HashKey(key)
						kind := hist.Kind(wrng.Intn(3))
						sk := store.OpContains
						switch kind {
						case hist.Insert:
							sk = store.OpPut
						case hist.Delete:
							sk = store.OpDelete
						}
						ops = append(ops, store.Op[string]{Kind: sk, Key: key, Val: uint64(n + i)})
						toks = append(toks, rec.Begin(kind, hk))
					}
					n += depth
					// A crash inside Apply — in this session's own window
					// or anywhere else in the process — leaves the whole
					// vector unacknowledged: every op stays pending.
					sess.Apply(ops, res[:depth])
					for i := 0; i < depth; i++ {
						rec.Finish(toks[i], res[i].Ok)
					}
				}
			})
			mu.Lock()
			recorded += int64(n)
			if c {
				crashed++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(opts.CrashMode, opts.Seed^0x5ca1ab1e)
	mem2 := pmem.NewFromImage(img, st.Mem().Config())
	st2, rstats, err := store.Recover(mem2, wm, st.Opts())
	if err != nil {
		return StoreVerdict{}, err
	}
	final := make(map[uint64]bool)
	for k := range st2.Snapshot() {
		final[k] = true
	}
	return StoreVerdict{
		Violation:   hist.Check(recs, initial, final),
		Store:       st2,
		Recovery:    rstats,
		RecordedOps: int(recorded),
		Crashed:     int(crashed),
	}, nil
}

// combineAddBase offsets the counter keys of the net-delta battery so
// signed ±1 churn never drives a stored value negative.
const combineAddBase = uint64(1) << 20

// AddsVerdict is the outcome of one net-delta crash round.
type AddsVerdict struct {
	// Violation is nil when every recovered counter is explainable by
	// the acknowledged deltas plus a subset of the pending ones.
	Violation error
	// Store is the recovered instance.
	Store *store.Store
	// Recovery reports the shard-parallel rebuild.
	Recovery store.RecoveryStats
	// AckedWindows counts Apply calls that returned before the crash;
	// Crashed counts workers the crash interrupted.
	AckedWindows int
	Crashed      int
}

// RunStoreCombinedAdds is the net-delta crash battery: the checker the
// VSA-style coalescing optimization answers to. Workers drive windows
// of OpAdd deltas over a few hot counter keys through Combined
// sessions; the combiner folds each window's deltas into one net store
// per key and fences once, so a crash must respect counter semantics at
// window granularity:
//
//   - every acknowledged window's net delta is durable (its Apply
//     returned only after the fence), and
//   - the crash-interrupted windows are pending: each may contribute
//     any subset of its deltas, so the recovered value must lie within
//     [acked + pendingNeg, acked + pendingPos].
//
// Coalescing makes the elision total for self-cancelling traffic — a
// net-zero window writes nothing — which is precisely why this battery
// exists: an unsound elision (skipping a non-zero net, or acking before
// the fence) shows up here as a counter outside the interval. biased
// selects all-+1 deltas instead of ±1, giving the no-persist tooth a
// drift the pending interval cannot absorb.
func RunStoreCombinedAdds(st *store.Store, opts StoreOptions, window, hotKeys int, biased bool) (AddsVerdict, error) {
	if opts.KeyOf == nil {
		opts.KeyOf = func(i uint64) string { return fmt.Sprintf("key-%d", i) }
	}
	if window <= 0 {
		window = 16
	}
	if hotKeys <= 0 {
		hotKeys = 4
	}
	if opts.MaxCrash < opts.MinCrash {
		opts.MaxCrash = opts.MinCrash
	}

	// Seed every counter through a Direct session — fenced per op —
	// before any countdown is armed: the bases must survive every crash.
	seed := store.Open[string](st, store.Direct)
	keys := make([]string, hotKeys)
	for i := range keys {
		keys[i] = opts.KeyOf(uint64(i))
		seed.Put(keys[i], combineAddBase)
	}
	seed.Close()

	rng := rand.New(rand.NewSource(opts.Seed))
	sessions := make([]*store.Sess[string], opts.Workers)
	seeds := make([]int64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		sessions[w] = store.Open[string](st, store.Combined)
		seeds[w] = rng.Int63()
	}
	for _, ct := range st.CombinerThreads() {
		ct.SetCrashAfter(opts.MinCrash + rng.Int63n(opts.MaxCrash-opts.MinCrash+1))
	}

	// Per-worker, per-key ledgers: acknowledged net deltas, and the
	// positive/negative delta sums of the window in flight at the crash.
	acked := make([][]int64, opts.Workers)
	pendPos := make([][]int64, opts.Workers)
	pendNeg := make([][]int64, opts.Workers)
	for w := range acked {
		acked[w] = make([]int64, hotKeys)
		pendPos[w] = make([]int64, hotKeys)
		pendNeg[w] = make([]int64, hotKeys)
	}

	var crashed, ackedWindows int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sessions[w]
			wrng := rand.New(rand.NewSource(seeds[w]))
			ops := make([]store.Op[string], window)
			res := make([]store.Result, window)
			cur := make([]int64, hotKeys)    // in-flight window net per key
			curPos := make([]int64, hotKeys) // in-flight positive sum per key
			curNeg := make([]int64, hotKeys) // in-flight negative sum per key
			windows := opts.OpsPerWorker / window
			if windows < 1 {
				windows = 1
			}
			var acks int64
			c := pmem.RunToCrash(func() {
				for b := 0; b < windows; b++ {
					for k := 0; k < hotKeys; k++ {
						cur[k], curPos[k], curNeg[k] = 0, 0, 0
					}
					for i := 0; i < window; i++ {
						k := wrng.Intn(hotKeys)
						var d int64 = 1
						if !biased && wrng.Intn(2) == 0 {
							d = -1
						}
						ops[i] = store.Op[string]{Kind: store.OpAdd, Key: keys[k], Val: uint64(d)}
						cur[k] += d
						if d > 0 {
							curPos[k] += d
						} else {
							curNeg[k] += d
						}
					}
					// Apply returns only after every touched shard's window
					// fence — the acknowledgment the ledger records.
					sess.Apply(ops, res)
					for k := 0; k < hotKeys; k++ {
						acked[w][k] += cur[k]
					}
					acks++
				}
			})
			mu.Lock()
			ackedWindows += acks
			if c {
				crashed++
				// The interrupted window is pending: any subset of its
				// deltas may have reached the image, so its contribution
				// is bounded by the per-key signed sums.
				for k := 0; k < hotKeys; k++ {
					pendPos[w][k] = curPos[k]
					pendNeg[w][k] = curNeg[k]
				}
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(opts.CrashMode, opts.Seed^0x5ca1ab1e)
	mem2 := pmem.NewFromImage(img, st.Mem().Config())
	st2, rstats, err := store.Recover(mem2, wm, st.Opts())
	if err != nil {
		return AddsVerdict{}, err
	}
	v := AddsVerdict{
		Store:        st2,
		Recovery:     rstats,
		AckedWindows: int(ackedWindows),
		Crashed:      int(crashed),
	}
	// Read the counters through a session, not the raw snapshot: policies
	// that keep metadata in the value word (link-and-persist's dirty bit)
	// strip it on the logical load path.
	chk := store.Open[string](st2, store.Direct)
	defer chk.Close()
	for k := 0; k < hotKeys; k++ {
		val, ok := chk.Get(keys[k])
		if !ok {
			v.Violation = fmt.Errorf("counter %q lost: seeded before the round, absent after recovery", keys[k])
			return v, nil
		}
		var ack, lo, hi int64
		for w := 0; w < opts.Workers; w++ {
			ack += acked[w][k]
			lo += pendNeg[w][k]
			hi += pendPos[w][k]
		}
		got := int64(val) - int64(combineAddBase)
		if got < ack+lo || got > ack+hi {
			v.Violation = fmt.Errorf("counter %q recovered at net %d, outside [%d, %d] (acked %d, pending [%d, %d])",
				keys[k], got, ack+lo, ack+hi, ack, lo, hi)
			return v, nil
		}
	}
	return v, nil
}
