package crashtest

import (
	"fmt"
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/store"
	"flit/internal/workload"
)

func newCrashStore(t *testing.T, policy string) *store.Store {
	return newCrashStoreMode(t, policy, dstruct.Automatic)
}

func newCrashStoreMode(t *testing.T, policy string, mode dstruct.Mode) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 8, ExpectedKeys: 1 << 12, Policy: policy, HTBytes: 1 << 14, Mode: mode,
		// Crash rounds never read a latency number; the virtual clock
		// keeps the modeled costs without burning their wall time.
		VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreDurableLinearizability is the service-level analogue of
// TestDurableLinearizability: whole-store histories across sessions,
// crash injection, shard-parallel recovery, per-key exact checking.
func TestStoreDurableLinearizability(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyLAP}
	if testing.Short() {
		policies = policies[:2]
	}
	for _, policy := range policies {
		// The service layer leans on Upsert's in-place value p-store;
		// exercise it under every durability mode for the FliT policy,
		// automatic-only for the rest.
		modes := []dstruct.Mode{dstruct.Automatic}
		if policy == core.PolicyHT {
			modes = dstruct.Modes
		}
		t.Run(policy, func(t *testing.T) {
			for _, mode := range modes {
				for _, cm := range crashModes {
					for _, seed := range seeds {
						st := newCrashStoreMode(t, policy, mode)
						workload.Load(st, 200, 2)
						opts := DefaultStoreOptions(seed, cm)
						opts.KeyRange = 300
						opts.KeyOf = workload.Key
						verdict, err := RunStore(st, opts)
						if err != nil {
							t.Fatal(err)
						}
						if verdict.Violation != nil {
							t.Fatalf("mode %v crash mode %v seed %d: %v", mode, cm, seed, verdict.Violation)
						}
						if len(verdict.Recovery.Shards) != 8 {
							t.Fatalf("recovery covered %d shards, want 8", len(verdict.Recovery.Shards))
						}
						// The recovered store must stay operational.
						sess := verdict.Store.NewSession()
						if !sess.Put("post", 1) || !sess.Contains("post") || !sess.Delete("post") {
							t.Fatalf("mode %v crash mode %v seed %d: recovered store inoperable", mode, cm, seed)
						}
					}
				}
			}
		})
	}
}

// TestStoreCheckerHasTeeth: the no-persist baseline under DropUnfenced
// must lose completed operations — and the checker must notice.
func TestStoreCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 6 && !caught; seed++ {
		st := newCrashStore(t, core.PolicyNoPersist)
		workload.Load(st, 200, 2)
		opts := DefaultStoreOptions(seed, pmem.DropUnfenced)
		opts.KeyRange = 300
		opts.KeyOf = workload.Key
		verdict, err := RunStore(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		caught = verdict.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the crash checker — the store harness has no teeth")
	}
}

// TestStoreRepeatedCrashCycles chains crash→recover→mutate rounds on one
// store lineage, as cmd/flitstore does with -cycles.
func TestStoreRepeatedCrashCycles(t *testing.T) {
	st := newCrashStore(t, core.PolicyHT)
	workload.Load(st, 300, 2)
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		opts := DefaultStoreOptions(int64(100+round), pmem.RandomSubset)
		opts.KeyRange = 400
		opts.KeyOf = workload.Key
		verdict, err := RunStore(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		if verdict.Violation != nil {
			t.Fatalf("round %d: %v", round, verdict.Violation)
		}
		st = verdict.Store
		// Mutate between crashes so each round persists fresh state.
		sess := st.NewSession()
		for i := 0; i < 50; i++ {
			sess.Put(fmt.Sprintf("round%d-%d", round, i), uint64(i))
		}
	}
}
