package crashtest

import (
	"fmt"
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
	"flit/internal/store"
	"flit/internal/workload"
)

func newCrashStore(t *testing.T, policy string) *store.Store {
	return newCrashStoreMode(t, policy, dstruct.Automatic)
}

func newCrashStoreMode(t *testing.T, policy string, mode dstruct.Mode) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 8, ExpectedKeys: 1 << 12, Policy: policy, HTBytes: 1 << 14, Mode: mode,
		// Crash rounds never read a latency number; the virtual clock
		// keeps the modeled costs without burning their wall time.
		VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreDurableLinearizability is the service-level analogue of
// TestDurableLinearizability: whole-store histories across sessions,
// crash injection, shard-parallel recovery, per-key exact checking.
func TestStoreDurableLinearizability(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	policies := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyLAP}
	if testing.Short() {
		policies = policies[:2]
	}
	for _, policy := range policies {
		// The service layer leans on Upsert's in-place value p-store;
		// exercise it under every durability mode for the FliT policy,
		// automatic-only for the rest.
		modes := []dstruct.Mode{dstruct.Automatic}
		if policy == core.PolicyHT {
			modes = dstruct.Modes
		}
		t.Run(policy, func(t *testing.T) {
			for _, mode := range modes {
				for _, cm := range crashModes {
					for _, seed := range seeds {
						st := newCrashStoreMode(t, policy, mode)
						workload.Load(st, 200, 2)
						opts := DefaultStoreOptions(seed, cm)
						opts.KeyRange = 300
						opts.KeyOf = workload.Key
						verdict, err := RunStore(st, opts)
						if err != nil {
							t.Fatal(err)
						}
						if verdict.Violation != nil {
							t.Fatalf("mode %v crash mode %v seed %d: %v", mode, cm, seed, verdict.Violation)
						}
						if len(verdict.Recovery.Shards) != 8 {
							t.Fatalf("recovery covered %d shards, want 8", len(verdict.Recovery.Shards))
						}
						// The recovered store must stay operational.
						sess := store.Open[string](verdict.Store, store.Direct)
						if !sess.Put("post", 1) || !sess.Contains("post") || !sess.Delete("post") {
							t.Fatalf("mode %v crash mode %v seed %d: recovered store inoperable", mode, cm, seed)
						}
					}
				}
			}
		})
	}
}

// TestStoreCheckerHasTeeth: the no-persist baseline under DropUnfenced
// must lose completed operations — and the checker must notice.
func TestStoreCheckerHasTeeth(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 6 && !caught; seed++ {
		st := newCrashStore(t, core.PolicyNoPersist)
		workload.Load(st, 200, 2)
		opts := DefaultStoreOptions(seed, pmem.DropUnfenced)
		opts.KeyRange = 300
		opts.KeyOf = workload.Key
		verdict, err := RunStore(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		caught = verdict.Violation != nil
	}
	if !caught {
		t.Fatal("no-persist store passed the crash checker — the store harness has no teeth")
	}
}

// TestStoreRepeatedCrashCycles chains crash→recover→mutate rounds on one
// store lineage, as cmd/flitstore does with -cycles.
func TestStoreRepeatedCrashCycles(t *testing.T) {
	st := newCrashStore(t, core.PolicyHT)
	workload.Load(st, 300, 2)
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		opts := DefaultStoreOptions(int64(100+round), pmem.RandomSubset)
		opts.KeyRange = 400
		opts.KeyOf = workload.Key
		verdict, err := RunStore(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		if verdict.Violation != nil {
			t.Fatalf("round %d: %v", round, verdict.Violation)
		}
		st = verdict.Store
		// Mutate between crashes so each round persists fresh state.
		sess := store.Open[string](st, store.Direct)
		for i := 0; i < 50; i++ {
			sess.Put(fmt.Sprintf("round%d-%d", round, i), uint64(i))
		}
	}
}

// --- Recovery edge cases -------------------------------------------------
//
// The paths below were previously untested: a crash landing *inside*
// store.New's superblock persist sequence, and a crash landing during
// recovery itself (before the rebuilt store has fenced anything new).

// TestStoreRecoverySuperblockEdges enumerates the states a crash during
// the superblock persist can leave and requires a clean error — never a
// panic or a fabricated store — from recovery.
func TestStoreRecoverySuperblockEdges(t *testing.T) {
	mkMem := func() (*pmem.Memory, *pmem.Thread) {
		mc := pmem.DefaultConfig(1 << 14)
		mc.VirtualClock = true
		mem := pmem.New(mc)
		return mem, mem.RegisterThread()
	}
	recover_ := func(mem *pmem.Memory) error {
		_, _, err := store.Recover(mem, 0, store.Options{Policy: core.PolicyHT})
		return err
	}

	// (a) Crash before the root pointer persisted: empty memory.
	mem, _ := mkMem()
	if err := recover_(mem); err == nil {
		t.Fatal("recovery fabricated a store from empty memory")
	}

	// (b) Root persisted but pointing at an unpersisted superblock (the
	// magic word never reached the shadow). writeSuperblock fences the
	// contents before the root, so this state needs an adversarial image —
	// exactly what DropUnfenced gives when only the root store is fenced.
	mem, th := mkMem()
	heap := pheap.NewWithRoots(mem, 5)
	sb := pmem.Addr(1 << 10)
	th.Store(heap.Root(0), uint64(sb)) // root → sb, but sb's magic stays 0
	th.PWB(heap.Root(0))
	th.PFence()
	img := mem.CrashImage(pmem.DropUnfenced, 0)
	if err := recover_(pmem.NewFromImage(img, mem.Config())); err == nil {
		t.Fatal("recovery accepted a superblock whose magic never persisted")
	}

	// (c) Persisted superblock with a corrupt shard count.
	mem, th = mkMem()
	heap = pheap.NewWithRoots(mem, 5)
	for i, v := range []uint64{store.Magic, store.MaxShards + 5, 16} {
		th.Store(sb+pmem.Addr(i), v)
		th.PWB(sb + pmem.Addr(i))
	}
	th.PFence()
	th.Store(heap.Root(0), uint64(sb))
	th.PWB(heap.Root(0))
	th.PFence()
	if err := recover_(mem); err == nil {
		t.Fatal("recovery accepted an out-of-range shard count")
	}
}

// TestStoreRecoveryIdempotentAndCrashDuringRecovery: (1) two independent
// recoveries from one torn image agree — recovery must not depend on its
// own side effects; (2) a crash immediately after (equivalently: at any
// point during) recovery, dropping everything recovery left unfenced,
// recovers to the same contents again.
func TestStoreRecoveryIdempotentAndCrashDuringRecovery(t *testing.T) {
	st := newCrashStore(t, core.PolicyHT)
	workload.Load(st, 200, 2)
	// Interrupt a session mid-stream so the image is genuinely torn.
	sess := store.Open[string](st, store.Direct)
	sess.Thread().SetCrashAfter(700)
	pmem.RunToCrash(func() {
		for i := 0; ; i++ {
			key := workload.Key(uint64(i % 300))
			if i%3 == 0 {
				sess.Delete(key)
			} else {
				sess.Put(key, uint64(i))
			}
		}
	})
	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(pmem.RandomSubset, 42)

	recoverFrom := func(img []uint64) (*store.Store, map[uint64]uint64) {
		t.Helper()
		mem := pmem.NewFromImage(img, st.Mem().Config())
		st2, _, err := store.Recover(mem, wm, st.Opts())
		if err != nil {
			t.Fatal(err)
		}
		return st2, st2.Snapshot()
	}

	st1, snap1 := recoverFrom(img)
	_, snap2 := recoverFrom(img)
	if len(snap1) != len(snap2) {
		t.Fatalf("independent recoveries disagree: %d vs %d keys", len(snap1), len(snap2))
	}
	for k, v := range snap1 {
		if snap2[k] != v {
			t.Fatalf("independent recoveries disagree on key %#x: %d vs %d", k, v, snap2[k])
		}
	}

	// Crash again before the recovered store persists anything new:
	// everything recovery wrote but never fenced is dropped.
	img2 := st1.Mem().CrashImage(pmem.DropUnfenced, 0)
	_, snap3 := recoverFrom(img2)
	if len(snap3) != len(snap1) {
		t.Fatalf("crash during recovery lost keys: %d vs %d", len(snap3), len(snap1))
	}
	for k, v := range snap1 {
		if snap3[k] != v {
			t.Fatalf("crash during recovery corrupted key %#x: %d vs %d", k, v, snap3[k])
		}
	}
}
