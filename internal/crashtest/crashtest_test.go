package crashtest

import (
	"fmt"
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// policies under crash test. DirectMap is covered in dstest; here we focus
// on the schemes with distinct persistence-ordering behaviour.
func policies(memWords int, withLAP bool) []core.Policy {
	ps := []core.Policy{
		core.NewFliT(core.NewHashTable(1 << 14)),
		core.NewFliT(core.Adjacent{}),
		core.Plain{},
		core.Izraelevitz{},
	}
	if withLAP {
		ps = append(ps, core.LinkAndPersist{})
	}
	return ps
}

func mkConfig(pol core.Policy, mode dstruct.Mode, words int) dstruct.Config {
	mc := pmem.DefaultConfig(words)
	// Crash tests never read a latency number: the virtual clock keeps
	// the modeled costs (unlike the old cost-zeroing) at spin-free speed.
	mc.VirtualClock = true
	return dstruct.Config{
		Heap: pheap.New(pmem.New(mc)), Policy: pol, Mode: mode,
		RootSlot: 0, Stride: dstruct.StrideFor(pol),
	}
}

// TestDurableLinearizability is the central correctness experiment: every
// structure × durability mode × policy × crash mode, across seeds, must
// produce a recovered state explainable by some linearization.
func TestDurableLinearizability(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	pols := func(memWords int, withLAP bool) []core.Policy {
		ps := policies(memWords, withLAP)
		if testing.Short() {
			// Keep one FliT scheme plus the plain baseline; the full
			// matrix runs in the default (scheduled/full) suite.
			ps = ps[:1]
			ps = append(ps, core.Plain{})
		}
		return ps
	}
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	for _, target := range Targets() {
		for _, mode := range dstruct.Modes {
			for _, pol := range pols(1<<20, target.WithLAP) {
				name := fmt.Sprintf("%s/%s/%s", target.Name, mode, pol.Name())
				t.Run(name, func(t *testing.T) {
					for _, cm := range crashModes {
						for _, seed := range seeds {
							cfg := mkConfig(pol, mode, 1<<20)
							v, rec := Run(cfg, target, DefaultOptions(seed, cm))
							if v != nil {
								t.Fatalf("crash mode %v seed %d: %v", cm, seed, v)
							}
							// The recovered structure must remain usable.
							th := rec.Set.NewThread()
							if !th.Insert(9999, 1) || !th.Contains(9999) || !th.Delete(9999) {
								t.Fatalf("crash mode %v seed %d: recovered set inoperable", cm, seed)
							}
						}
					}
				})
			}
		}
	}
}

// brokenPolicy downgrades every instruction to a v-instruction: stores are
// never flushed, so completed inserts evaporate in the crash image. The
// checker must catch it — this validates that the whole crash-test
// apparatus has teeth.
type brokenPolicy struct{ core.Policy }

func (b brokenPolicy) Name() string { return "broken" }
func (b brokenPolicy) Load(t *pmem.Thread, a pmem.Addr, p bool) uint64 {
	return b.Policy.Load(t, a, false)
}
func (b brokenPolicy) Store(t *pmem.Thread, a pmem.Addr, v uint64, p bool) {
	b.Policy.Store(t, a, v, false)
}
func (b brokenPolicy) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, p bool) bool {
	return b.Policy.CAS(t, a, old, new, false)
}
func (b brokenPolicy) FAA(t *pmem.Thread, a pmem.Addr, d uint64, p bool) uint64 {
	return b.Policy.FAA(t, a, d, false)
}
func (b brokenPolicy) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, p bool) uint64 {
	return b.Policy.Exchange(t, a, v, false)
}
func (b brokenPolicy) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, p bool) {
	b.Policy.StorePrivate(t, a, v, false)
}
func (b brokenPolicy) PersistObject(t *pmem.Thread, a pmem.Addr, n int) {}

func TestBrokenPolicyIsCaught(t *testing.T) {
	// Under DropUnfenced, a policy that never persists must be detected:
	// the prefilled completed inserts cannot survive.
	for _, target := range Targets() {
		t.Run(target.Name, func(t *testing.T) {
			caught := false
			for seed := int64(1); seed <= 4 && !caught; seed++ {
				cfg := mkConfig(brokenPolicy{core.NewFliT(core.NewHashTable(1 << 14))},
					dstruct.Automatic, 1<<20)
				v, _ := Run(cfg, target, DefaultOptions(seed, pmem.DropUnfenced))
				caught = v != nil
			}
			if !caught {
				t.Fatal("broken policy passed the checker — the crash harness has no teeth")
			}
		})
	}
}

// TestPersistAllAlwaysCleanRecovers: under eADR-like semantics everything
// volatile persists, so even the NoPersist policy must recover exactly.
func TestPersistAllAlwaysCleanRecovers(t *testing.T) {
	for _, target := range Targets() {
		t.Run(target.Name, func(t *testing.T) {
			cfg := mkConfig(core.NoPersist{}, dstruct.Automatic, 1<<20)
			v, _ := Run(cfg, target, DefaultOptions(77, pmem.PersistAll))
			if v != nil {
				t.Fatalf("PersistAll violated: %v", v)
			}
		})
	}
}
