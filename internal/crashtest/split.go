package crashtest

import (
	"fmt"

	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/store"
)

// RunStoreSplitDL is RunStoreDL with an online shard split racing the
// recorded workload: the store splits from its configured shard count to
// splitTo while the workers run, so the enumerated crash boundaries land
// before the split's activation word, inside the key migration (between
// any two of its batch fences), and after completion. Every boundary must
// recover a complete, duplicate-free keyspace — the split's
// crash-consistency claim, checked against the same durable rule as the
// static battery:
//
//   - a key acknowledged before the crash must be present after recovery
//     exactly once (duplicates would surface as linearizability
//     violations on later operations, and phantom hash collisions are
//     rejected outright);
//   - the migration itself must be invisible: it moves keys, it never
//     creates or destroys them.
//
// st must be freshly created with fewer than splitTo shards and no
// combined sessions.
func RunStoreSplitDL(st *store.Store, splitTo int, opts dlcheck.Options) *dlcheck.Report {
	opts = opts.Normalized()
	keyspace := opts.KeyRange
	if opts.Prefill > keyspace {
		keyspace = opts.Prefill
	}
	back := make(map[uint64]uint64, keyspace)
	for k := 0; k < keyspace; k++ {
		back[store.HashKey(dlStoreKey(uint64(k)))] = uint64(k)
	}
	return dlcheck.Run(dlcheck.Harness{
		Name:       fmt.Sprintf("store-split(%d→%d)", st.NumShards(), splitTo),
		Mem:        st.Mem(),
		Policy:     st.Policy(),
		NewSession: func() dstruct.SetThread { return dlStoreSession{store.Open[string](st, store.Direct)} },
		During: func() {
			if err := st.Split(splitTo); err != nil {
				panic(fmt.Sprintf("crashtest: split activation failed: %v", err))
			}
			if !st.WaitSplit() {
				panic("crashtest: split migrator crashed without a countdown armed")
			}
		},
		Recover: func(img []uint64) (map[uint64]bool, error) {
			mem2 := pmem.NewFromImage(img, st.Mem().Config())
			// The watermark is read at enumeration time — after the
			// migration's allocations — so recovery can never allocate
			// below anything the trace persisted.
			st2, _, err := store.Recover(mem2, st.Heap().Watermark(), st.Opts())
			if err != nil {
				return nil, err
			}
			final := make(map[uint64]bool)
			for h := range st2.Snapshot() {
				k, ok := back[h]
				if !ok {
					return nil, fmt.Errorf("recovered key hash %#x is outside the checker's namespace (phantom key)", h)
				}
				final[k] = true
			}
			return final, nil
		},
	}, opts)
}
