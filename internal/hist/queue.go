package hist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FIFO-queue histories. Unlike the set checker, queue linearizability is
// not per-key local — the order of enqueues couples every element — so the
// whole history is decided in one Wing–Gong-style interval-order search
// over explicit queue states, memoized on (linearized-set, state). Exact
// for up to 64 operations; the dlcheck batteries keep runs well under
// that.

// QKind is a queue operation type.
type QKind int8

// Queue operation kinds.
const (
	QEnqueue QKind = iota
	QDequeue
)

func (k QKind) String() string {
	switch k {
	case QEnqueue:
		return "enqueue"
	case QDequeue:
		return "dequeue"
	default:
		return fmt.Sprintf("QKind(%d)", int(k))
	}
}

// QOp is one recorded queue operation.
type QOp struct {
	Kind QKind
	// Value is the enqueued value, or the dequeued value when OK.
	Value uint64
	// OK distinguishes a successful dequeue from an empty one (dequeues
	// only; enqueues always succeed).
	OK        bool
	Completed bool  // the response returned before the crash
	Start     int64 // invocation timestamp
	End       int64 // response timestamp; math.MaxInt64 while pending
}

func (op QOp) String() string {
	end, res := "pending", "?"
	if op.Completed {
		end = fmt.Sprint(op.End)
		switch {
		case op.Kind == QEnqueue:
			res = "ok"
		case op.OK:
			res = fmt.Sprint(op.Value)
		default:
			res = "empty"
		}
	}
	arg := ""
	if op.Kind == QEnqueue {
		arg = fmt.Sprint(op.Value)
	}
	return fmt.Sprintf("[%d,%s] %s(%s) = %s", op.Start, end, op.Kind, arg, res)
}

// QRecorder logs the queue operations of a single thread. Not safe for
// sharing; one per worker goroutine.
type QRecorder struct {
	clock *Clock
	ops   []QOp
}

// NewQRecorder creates a queue recorder stamping against clock.
func NewQRecorder(clock *Clock) *QRecorder { return &QRecorder{clock: clock} }

// BeginEnqueue logs an enqueue invocation and returns a token for Finish.
func (r *QRecorder) BeginEnqueue(v uint64) int {
	r.ops = append(r.ops, QOp{Kind: QEnqueue, Value: v, Start: r.clock.Now(), End: math.MaxInt64})
	return len(r.ops) - 1
}

// BeginDequeue logs a dequeue invocation and returns a token for Finish.
func (r *QRecorder) BeginDequeue() int {
	r.ops = append(r.ops, QOp{Kind: QDequeue, Start: r.clock.Now(), End: math.MaxInt64})
	return len(r.ops) - 1
}

// FinishEnqueue logs an enqueue response.
func (r *QRecorder) FinishEnqueue(tok int) {
	r.ops[tok].End = r.clock.Now()
	r.ops[tok].Completed = true
}

// FinishDequeue logs a dequeue response.
func (r *QRecorder) FinishDequeue(tok int, v uint64, ok bool) {
	r.ops[tok].End = r.clock.Now()
	r.ops[tok].Completed = true
	r.ops[tok].OK = ok
	if ok {
		r.ops[tok].Value = v
	}
}

// Ops returns the recorded operations (read after the thread stopped).
func (r *QRecorder) Ops() []QOp { return r.ops }

// TruncateQ is Truncate for queue histories: ops invoked after stamp
// vanish, ops still running become pending.
func TruncateQ(ops []QOp, stamp int64) []QOp {
	out := make([]QOp, 0, len(ops))
	for _, op := range ops {
		if op.Start > stamp {
			continue
		}
		if op.End > stamp {
			op.Completed = false
			op.OK = false
			if op.Kind == QDequeue {
				op.Value = 0
			}
			op.End = math.MaxInt64
		}
		out = append(out, op)
	}
	return out
}

// QViolation describes a durable-linearizability failure of a queue
// history.
type QViolation struct {
	Initial []uint64
	Final   []uint64
	Ops     []QOp
}

// Error formats the violation with the full history.
func (v *QViolation) Error() string {
	s := fmt.Sprintf("queue: no linearization explains recovered contents %v (initial %v, %d ops)",
		v.Final, v.Initial, len(v.Ops))
	for _, op := range v.Ops {
		s += "\n  " + op.String()
	}
	return s
}

// CheckQueue decides whether some linearization of ops — consistent with
// FIFO sequential semantics, the ops' interval order and completed
// results, with pending ops free to take effect or vanish — transforms
// the initial queue contents (front first) into exactly final. It returns
// nil, or a violation carrying the history. Exact for up to 64 ops.
func CheckQueue(ops []QOp, initial, final []uint64) *QViolation {
	if len(ops) > 64 {
		panic("hist: more than 64 queue ops; shorten the run")
	}
	var completedMask uint64
	for i, op := range ops {
		if op.Completed {
			completedMask |= 1 << i
		}
	}
	type state struct {
		mask uint64
		q    string
	}
	encode := func(q []uint64) string {
		b := make([]byte, 8*len(q))
		for i, v := range q {
			binary.LittleEndian.PutUint64(b[8*i:], v)
		}
		return string(b)
	}
	equal := func(a, b []uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	visited := make(map[state]bool)
	var rec func(mask uint64, q []uint64) bool
	rec = func(mask uint64, q []uint64) bool {
		if mask&completedMask == completedMask && equal(q, final) {
			return true // leftover pending ops simply never took effect
		}
		key := state{mask, encode(q)}
		if visited[key] {
			return false
		}
		visited[key] = true
		for i := range ops {
			bit := uint64(1) << i
			if mask&bit != 0 {
				continue
			}
			// Interval order: i may linearize next only if no other
			// remaining op already responded before i was invoked.
			blocked := false
			for j := range ops {
				if j != i && mask&(uint64(1)<<j) == 0 && ops[j].End < ops[i].Start {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			op := ops[i]
			var nq []uint64
			switch {
			case op.Kind == QEnqueue:
				nq = append(append(make([]uint64, 0, len(q)+1), q...), op.Value)
			case op.Completed && op.OK:
				if len(q) == 0 || q[0] != op.Value {
					continue
				}
				nq = q[1:]
			case op.Completed: // completed empty dequeue
				if len(q) != 0 {
					continue
				}
				nq = q
			default: // pending dequeue taking effect: pops the front, if any
				if len(q) > 0 {
					nq = q[1:]
				} else {
					nq = q
				}
			}
			if rec(mask|bit, nq) {
				return true
			}
		}
		return false
	}
	if rec(0, initial) {
		return nil
	}
	return &QViolation{Initial: initial, Final: final, Ops: ops}
}
