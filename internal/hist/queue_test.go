package hist

import (
	"math"
	"testing"
)

func qop(kind QKind, v uint64, ok bool, start, end int64) QOp {
	op := QOp{Kind: kind, Value: v, OK: ok, Start: start, End: end, Completed: true}
	if end == math.MaxInt64 {
		op.Completed = false
		op.OK = false
	}
	return op
}

func TestCheckQueueSequential(t *testing.T) {
	ops := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QEnqueue, 2, false, 3, 4),
		qop(QDequeue, 1, true, 5, 6),
	}
	if v := CheckQueue(ops, nil, []uint64{2}); v != nil {
		t.Fatalf("valid FIFO history rejected: %v", v)
	}
	// Dequeue out of FIFO order must be rejected.
	bad := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QEnqueue, 2, false, 3, 4),
		qop(QDequeue, 2, true, 5, 6),
	}
	if CheckQueue(bad, nil, []uint64{1}) == nil {
		t.Fatal("out-of-order dequeue accepted")
	}
	// Empty dequeue while an element is present must be rejected.
	bad2 := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QDequeue, 0, false, 3, 4),
	}
	if CheckQueue(bad2, nil, []uint64{1}) == nil {
		t.Fatal("empty dequeue on non-empty queue accepted")
	}
}

func TestCheckQueueInitialState(t *testing.T) {
	// Prefilled elements are dequeued first.
	ops := []QOp{qop(QDequeue, 7, true, 1, 2)}
	if v := CheckQueue(ops, []uint64{7, 8}, []uint64{8}); v != nil {
		t.Fatalf("prefill dequeue rejected: %v", v)
	}
	if CheckQueue(ops, []uint64{8, 7}, []uint64{7}) == nil {
		t.Fatal("dequeue of non-front prefill accepted")
	}
	// An untouched prefilled element must survive.
	if CheckQueue(nil, []uint64{5}, nil) == nil {
		t.Fatal("lost prefill element accepted")
	}
}

func TestCheckQueueConcurrentOverlap(t *testing.T) {
	// Two overlapping enqueues may linearize either way.
	ops := []QOp{
		qop(QEnqueue, 1, false, 1, 10),
		qop(QEnqueue, 2, false, 2, 9),
	}
	if v := CheckQueue(ops, nil, []uint64{2, 1}); v != nil {
		t.Fatalf("overlap order rejected: %v", v)
	}
	if v := CheckQueue(ops, nil, []uint64{1, 2}); v != nil {
		t.Fatalf("overlap order rejected: %v", v)
	}
	// Non-overlapping enqueues must keep real-time order.
	seq := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QEnqueue, 2, false, 3, 4),
	}
	if CheckQueue(seq, nil, []uint64{2, 1}) == nil {
		t.Fatal("real-time order inversion accepted")
	}
}

func TestCheckQueueCrashSemantics(t *testing.T) {
	// A pending enqueue may take effect or vanish.
	pend := []QOp{qop(QEnqueue, 3, false, 1, math.MaxInt64)}
	if v := CheckQueue(pend, nil, []uint64{3}); v != nil {
		t.Fatalf("pending enqueue taking effect rejected: %v", v)
	}
	if v := CheckQueue(pend, nil, nil); v != nil {
		t.Fatalf("pending enqueue vanishing rejected: %v", v)
	}
	// A completed dequeue must not resurrect: value gone from final.
	ops := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QDequeue, 1, true, 3, 4),
	}
	if CheckQueue(ops, nil, []uint64{1}) == nil {
		t.Fatal("dequeued element resurrected and accepted")
	}
	// A pending dequeue may remove the front element.
	ops2 := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QDequeue, 0, false, 3, math.MaxInt64),
	}
	if v := CheckQueue(ops2, nil, nil); v != nil {
		t.Fatalf("pending dequeue taking effect rejected: %v", v)
	}
	// The durable-queue hole the failed-p-CAS fix closes: deq(v) completed
	// while the pending deq(front) lost its taken mark — recovered state
	// still holds the front element, which no linearization explains.
	hole := []QOp{
		qop(QEnqueue, 1, false, 1, 2),
		qop(QEnqueue, 2, false, 3, 4),
		qop(QDequeue, 0, false, 5, math.MaxInt64), // pending deq of 1
		qop(QDequeue, 2, true, 6, 7),              // completed deq of 2
	}
	if CheckQueue(hole, nil, []uint64{1}) == nil {
		t.Fatal("resurrected front ahead of a completed dequeue accepted")
	}
	// With the front really gone, the same history is fine.
	if v := CheckQueue(hole, nil, nil); v != nil {
		t.Fatalf("valid crash outcome rejected: %v", v)
	}
}

func TestTruncateQ(t *testing.T) {
	ops := []QOp{
		qop(QEnqueue, 1, false, 1, 4),
		qop(QDequeue, 1, true, 5, 8),
		qop(QEnqueue, 2, false, 9, 10),
	}
	got := TruncateQ(ops, 6)
	if len(got) != 2 {
		t.Fatalf("truncate kept %d ops, want 2", len(got))
	}
	if !got[0].Completed || got[0].Value != 1 {
		t.Fatalf("completed op mangled: %+v", got[0])
	}
	if got[1].Completed || got[1].OK || got[1].End != math.MaxInt64 {
		t.Fatalf("running op not demoted to pending: %+v", got[1])
	}
	// Truncation at a stamp past every response is the identity.
	if all := TruncateQ(ops, 100); len(all) != 3 || !all[2].Completed {
		t.Fatalf("identity truncation mangled history: %+v", all)
	}
}

func TestTruncateSet(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Result: true, Completed: true, Start: 1, End: 4},
		{Kind: Contains, Key: 1, Result: true, Completed: true, Start: 5, End: 8},
		{Kind: Delete, Key: 1, Result: true, Completed: true, Start: 9, End: 10},
	}
	got := Truncate(ops, 6)
	if len(got) != 2 {
		t.Fatalf("truncate kept %d ops, want 2", len(got))
	}
	if !got[0].Completed {
		t.Fatalf("completed op demoted: %+v", got[0])
	}
	if got[1].Completed || got[1].Result {
		t.Fatalf("running op not demoted: %+v", got[1])
	}
	// The surviving completed insert still forces presence at this crash
	// point; the dropped delete (invoked after the crash) no longer can
	// explain absence.
	if !CheckKey(got, false, true) {
		t.Fatal("truncated history rejected the forced outcome")
	}
	if CheckKey(got, false, false) {
		t.Fatal("truncated history accepted absence the completed insert forbids")
	}
}
