// Package hist records concurrent set histories and checks durable
// linearizability [Izraelevitz et al., DISC'16] against a post-crash
// state.
//
// The checker is per-key: linearizability is local (Herlihy & Wing), and
// operations on distinct set keys commute, so a multi-key set history is
// durably linearizable iff every per-key subhistory is — per-key checking
// is both sound and complete here. Each per-key subhistory is decided
// exactly (Wing–Gong style interval-order search with memoization), under
// crash semantics: operations that completed before the crash must appear
// with their observed results; operations pending at the crash may take
// effect or vanish.
package hist

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Kind is a set operation type.
type Kind int8

// Set operation kinds.
const (
	Insert Kind = iota
	Delete
	Contains
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Contains:
		return "contains"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one recorded operation.
type Op struct {
	Kind      Kind
	Key       uint64
	Result    bool  // valid only if Completed
	Completed bool  // the response returned before the crash
	Start     int64 // invocation timestamp
	End       int64 // response timestamp; math.MaxInt64 while pending
}

// Clock is the shared logical clock all recorders stamp against: if op A's
// response precedes op B's invocation in real time, A.End < B.Start.
type Clock struct{ c atomic.Int64 }

// Now returns a fresh, strictly increasing timestamp.
func (c *Clock) Now() int64 { return c.c.Add(1) }

// Recorder logs the operations of a single thread. Not safe for sharing;
// one per worker goroutine.
type Recorder struct {
	clock *Clock
	ops   []Op
}

// NewRecorder creates a recorder stamping against clock.
func NewRecorder(clock *Clock) *Recorder { return &Recorder{clock: clock} }

// Begin logs an invocation and returns a token for Finish. If the thread
// crashes before Finish, the op remains recorded as pending.
func (r *Recorder) Begin(kind Kind, key uint64) int {
	r.ops = append(r.ops, Op{
		Kind: kind, Key: key,
		Start: r.clock.Now(), End: math.MaxInt64,
	})
	return len(r.ops) - 1
}

// Finish logs the response of the op returned by Begin.
func (r *Recorder) Finish(tok int, result bool) {
	r.ops[tok].End = r.clock.Now()
	r.ops[tok].Result = result
	r.ops[tok].Completed = true
}

// Ops returns the recorded operations (read after the thread stopped).
func (r *Recorder) Ops() []Op { return r.ops }

// Gather merges recorders into per-key subhistories.
func Gather(recs []*Recorder) map[uint64][]Op {
	out := make(map[uint64][]Op)
	for _, r := range recs {
		for _, op := range r.ops {
			out[op.Key] = append(out[op.Key], op)
		}
	}
	return out
}

// Truncate projects a per-key history onto a hypothetical crash at the
// given stamp: operations invoked after the crash never existed, and
// operations still running at the crash become pending (their eventual
// result is unknowable at that instant). The crash-point enumerator
// (internal/dlcheck) uses it to re-read one recorded execution as a
// family of crashed executions, one per persist boundary.
func Truncate(ops []Op, stamp int64) []Op {
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if op.Start > stamp {
			continue
		}
		if op.End > stamp {
			op.Completed = false
			op.Result = false
			op.End = math.MaxInt64
		}
		out = append(out, op)
	}
	return out
}

// Violation describes a durable-linearizability failure for one key.
type Violation struct {
	Key     uint64
	Final   bool // presence in the recovered structure
	Initial bool
	Ops     []Op
}

// Error formats the violation with its full per-key history.
func (v *Violation) Error() string {
	s := fmt.Sprintf("key %d: no linearization explains recovered presence=%v (initial=%v, %d ops)",
		v.Key, v.Final, v.Initial, len(v.Ops))
	for _, op := range v.Ops {
		end := "pending"
		res := "?"
		if op.Completed {
			end = fmt.Sprint(op.End)
			res = fmt.Sprint(op.Result)
		}
		s += fmt.Sprintf("\n  [%d,%s] %s(%d) = %s", op.Start, end, op.Kind, op.Key, res)
	}
	return s
}

// CheckKey decides whether some linearization of ops — consistent with set
// sequential semantics, the ops' interval order, completed results, and
// optional inclusion of pending ops — starts at initial presence init and
// ends at presence final. It is exact (no false positives or negatives)
// for up to 64 ops per key.
func CheckKey(ops []Op, init, final bool) bool {
	if len(ops) > 64 {
		panic("hist: more than 64 ops on one key; shard the workload or shorten the run")
	}
	var completedMask uint64
	for i, op := range ops {
		if op.Completed {
			completedMask |= 1 << i
		}
	}
	type state struct {
		mask uint64
		st   bool
	}
	memo := make(map[state]bool) // visited (not result) memo
	var rec func(mask uint64, st bool) bool
	rec = func(mask uint64, st bool) bool {
		if mask&completedMask == completedMask && st == final {
			return true // pending leftovers simply never took effect
		}
		key := state{mask, st}
		if memo[key] {
			return false
		}
		memo[key] = true
		for i := 0; i < len(ops); i++ {
			bit := uint64(1) << i
			if mask&bit != 0 {
				continue
			}
			// Interval order: i may linearize next only if no other
			// remaining op already responded before i was invoked.
			ok := true
			for j := 0; j < len(ops); j++ {
				jb := uint64(1) << j
				if j == i || mask&jb != 0 {
					continue
				}
				if ops[j].End < ops[i].Start {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			op := ops[i]
			var newSt bool
			switch op.Kind {
			case Insert:
				eff := !st
				if op.Completed && op.Result != eff {
					continue
				}
				newSt = true
			case Delete:
				eff := st
				if op.Completed && op.Result != eff {
					continue
				}
				newSt = false
			case Contains:
				if op.Completed && op.Result != st {
					continue
				}
				newSt = st
			}
			if rec(mask|bit, newSt) {
				return true
			}
		}
		return false
	}
	return rec(0, init)
}

// Check verifies a whole multi-key history against the recovered state.
// initial maps prefilled keys to true; finalState maps keys present after
// recovery. It returns nil, or the first violation found.
func Check(recs []*Recorder, initial map[uint64]bool, finalState map[uint64]bool) *Violation {
	return CheckOps(Gather(recs), initial, finalState)
}

// CheckOps is Check over an already-gathered (and possibly Truncated)
// per-key history.
func CheckOps(perKey map[uint64][]Op, initial map[uint64]bool, finalState map[uint64]bool) *Violation {
	// Keys only in initial/final still need checking (e.g. a prefilled key
	// nobody touched must survive).
	keys := make(map[uint64]bool)
	for k := range perKey {
		keys[k] = true
	}
	for k := range initial {
		keys[k] = true
	}
	for k := range finalState {
		keys[k] = true
	}
	for k := range keys {
		ops := perKey[k]
		if !CheckKey(ops, initial[k], finalState[k]) {
			return &Violation{Key: k, Final: finalState[k], Initial: initial[k], Ops: ops}
		}
	}
	return nil
}
