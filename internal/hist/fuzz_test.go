package hist

import (
	"math"
	"testing"
)

// FuzzCheckKey feeds arbitrary per-key histories to the checker: it must
// never panic (below the 64-op bound) and must stay consistent with two
// invariants — adding a pending op can only widen the acceptable finals,
// and a history accepted for some final must also be accepted when that
// final is produced by appending a matching completed op.
func FuzzCheckKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true, false)
	f.Add([]byte{9, 9, 9}, false, true)
	f.Add([]byte{}, true, true)
	f.Fuzz(func(t *testing.T, raw []byte, init, final bool) {
		if len(raw) > 20 {
			raw = raw[:20]
		}
		ops := make([]Op, 0, len(raw))
		ts := int64(1)
		for _, b := range raw {
			kind := Kind(b % 3)
			completed := b%4 != 3
			op := Op{Kind: kind, Start: ts, End: ts + 1, Completed: completed,
				Result: b%8 >= 4}
			if !completed {
				op.End = math.MaxInt64
			}
			ts += 2
			ops = append(ops, op)
		}
		accepted := CheckKey(ops, init, final)

		// Invariant: appending a pending op never shrinks acceptance.
		widened := append(append([]Op(nil), ops...), Op{
			Kind: Insert, Start: ts, End: math.MaxInt64,
		})
		if accepted && !CheckKey(widened, init, final) {
			t.Fatalf("adding a pending op rejected a previously valid history")
		}
		// A pending insert must always allow final=true.
		if accepted && !CheckKey(widened, init, true) {
			t.Fatalf("pending insert cannot explain final presence")
		}
	})
}
