package hist

import (
	"math"
	"testing"
)

// FuzzCheckKey feeds arbitrary per-key histories to the checker: it must
// never panic (below the 64-op bound) and must stay consistent with two
// invariants — adding a pending op can only widen the acceptable finals,
// and a history accepted for some final must also be accepted when that
// final is produced by appending a matching completed op.
func FuzzCheckKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true, false)
	f.Add([]byte{9, 9, 9}, false, true)
	f.Add([]byte{}, true, true)
	// Duplicate responses: back-to-back completed inserts (both reporting
	// success is inconsistent), duplicated deletes, and insert/delete
	// pairs that both claim the same transition.
	f.Add([]byte{4, 4}, false, true)
	f.Add([]byte{5, 5, 4, 4}, false, false)
	f.Add([]byte{4, 0, 4, 0}, false, true)
	// Crash-truncated shapes: pending tails (b%4==3 → pending) behind
	// completed prefixes, and alternating pending/completed traffic.
	f.Add([]byte{4, 3, 7, 11}, false, true)
	f.Add([]byte{0, 3, 1, 7, 2, 11}, true, false)
	f.Add([]byte{3, 3, 3}, false, false)
	f.Fuzz(func(t *testing.T, raw []byte, init, final bool) {
		if len(raw) > 20 {
			raw = raw[:20]
		}
		ops := opsFromBytes(raw)
		accepted := CheckKey(ops, init, final)

		// Invariant: appending a pending op never shrinks acceptance.
		widened := append(append([]Op(nil), ops...), Op{
			Kind: Insert, Start: int64(2*len(ops) + 1), End: math.MaxInt64,
		})
		if accepted && !CheckKey(widened, init, final) {
			t.Fatalf("adding a pending op rejected a previously valid history")
		}
		// A pending insert must always allow final=true.
		if accepted && !CheckKey(widened, init, true) {
			t.Fatalf("pending insert cannot explain final presence")
		}
	})
}

// opsFromBytes decodes the fuzz byte encoding shared by the hist fuzz
// targets: kind = b%3, completed unless b%4==3, result = b%8>=4, with
// op i occupying [2i+1, 2i+2].
func opsFromBytes(raw []byte) []Op {
	ops := make([]Op, 0, len(raw))
	ts := int64(1)
	for _, b := range raw {
		op := Op{Kind: Kind(b % 3), Start: ts, End: ts + 1,
			Completed: b%4 != 3, Result: b%8 >= 4}
		if !op.Completed {
			op.End = math.MaxInt64
		}
		ts += 2
		ops = append(ops, op)
	}
	return ops
}

// FuzzTruncate checks the crash-projection's invariants: truncation is
// idempotent, truncating past every response is the identity, and
// truncating at the last invocation (which drops nothing, only demotes)
// can only widen the set of acceptable finals.
func FuzzTruncate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true, false, uint8(3))
	f.Add([]byte{4, 3, 7, 11}, false, true, uint8(5))
	f.Add([]byte{5, 5, 4, 4}, false, false, uint8(0))
	f.Add([]byte{}, true, true, uint8(9))
	f.Fuzz(func(t *testing.T, raw []byte, init, final bool, stampRaw uint8) {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		ops := opsFromBytes(raw)
		stamp := int64(stampRaw)

		trunc := Truncate(ops, stamp)
		again := Truncate(trunc, stamp)
		if len(again) != len(trunc) {
			t.Fatalf("truncation not idempotent: %d then %d ops", len(trunc), len(again))
		}
		for i := range trunc {
			if trunc[i] != again[i] {
				t.Fatalf("truncation not idempotent at op %d: %+v vs %+v", i, trunc[i], again[i])
			}
		}

		ident := Truncate(ops, math.MaxInt64)
		if len(ident) != len(ops) {
			t.Fatalf("identity truncation dropped ops: %d of %d", len(ident), len(ops))
		}
		for i := range ops {
			if ident[i] != ops[i] {
				t.Fatalf("identity truncation mangled op %d", i)
			}
		}

		if len(ops) > 0 {
			lastStart := ops[len(ops)-1].Start // starts are increasing
			demoted := Truncate(ops, lastStart)
			if len(demoted) != len(ops) {
				t.Fatalf("demotion-only truncation dropped ops")
			}
			if CheckKey(ops, init, final) && !CheckKey(demoted, init, final) {
				t.Fatalf("demoting running ops to pending shrank acceptance")
			}
		}
	})
}
