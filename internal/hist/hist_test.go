package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mkOp builds a completed op.
func mkOp(kind Kind, start, end int64, result bool) Op {
	return Op{Kind: kind, Start: start, End: end, Result: result, Completed: true}
}

// pend builds a pending op.
func pend(kind Kind, start int64) Op {
	return Op{Kind: kind, Start: start, End: math.MaxInt64}
}

func TestSequentialHistories(t *testing.T) {
	cases := []struct {
		name   string
		ops    []Op
		init   bool
		final  bool
		accept bool
	}{
		{"empty absent", nil, false, false, true},
		{"empty present", nil, true, true, true},
		{"empty lost prefill", nil, true, false, false},
		{"insert persists", []Op{mkOp(Insert, 1, 2, true)}, false, true, true},
		{"insert lost", []Op{mkOp(Insert, 1, 2, true)}, false, false, false},
		{"insert then delete", []Op{mkOp(Insert, 1, 2, true), mkOp(Delete, 3, 4, true)}, false, false, true},
		{"deleted key resurrected", []Op{mkOp(Insert, 1, 2, true), mkOp(Delete, 3, 4, true)}, false, true, false},
		{"failed insert on present", []Op{mkOp(Insert, 1, 2, false)}, true, true, true},
		{"failed insert result wrong", []Op{mkOp(Insert, 1, 2, false)}, false, true, false},
		{"contains true needs presence", []Op{mkOp(Contains, 1, 2, true)}, false, false, false},
		{"contains false on absent", []Op{mkOp(Contains, 1, 2, false)}, false, false, true},
		{"delete false on absent", []Op{mkOp(Delete, 1, 2, false)}, false, false, true},
		{"delete true on absent", []Op{mkOp(Delete, 1, 2, true)}, false, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := CheckKey(c.ops, c.init, c.final); got != c.accept {
				t.Fatalf("CheckKey = %v, want %v", got, c.accept)
			}
		})
	}
}

func TestPendingOpsMayOrMayNotTakeEffect(t *testing.T) {
	// A pending insert explains both presence and absence.
	ops := []Op{pend(Insert, 1)}
	if !CheckKey(ops, false, true) || !CheckKey(ops, false, false) {
		t.Fatal("pending insert must allow both outcomes")
	}
	// A pending delete of a prefilled key likewise.
	ops = []Op{pend(Delete, 1)}
	if !CheckKey(ops, true, true) || !CheckKey(ops, true, false) {
		t.Fatal("pending delete must allow both outcomes")
	}
	// But a pending insert cannot explain the loss of a prefilled key.
	if CheckKey(ops[:0], true, false) {
		t.Fatal("prefilled key lost with no delete accepted")
	}
}

func TestIntervalOrderRespected(t *testing.T) {
	// insert completes (true), then strictly later contains says false,
	// with no delete: not linearizable.
	ops := []Op{
		mkOp(Insert, 1, 2, true),
		mkOp(Contains, 3, 4, false),
	}
	if CheckKey(ops, false, true) {
		t.Fatal("accepted contains=false strictly after completed insert")
	}
	// If they overlap, contains may linearize first: acceptable.
	ops = []Op{
		mkOp(Insert, 1, 4, true),
		mkOp(Contains, 2, 3, false),
	}
	if !CheckKey(ops, false, true) {
		t.Fatal("rejected overlapping insert/contains")
	}
}

func TestConcurrentInsertDelete(t *testing.T) {
	// Two overlapping ops: insert=true, delete=true. Both orders valid but
	// final state differs: delete-last -> absent; the reverse is
	// impossible because delete(true) needs presence first.
	ops := []Op{
		mkOp(Insert, 1, 10, true),
		mkOp(Delete, 2, 9, true),
	}
	if !CheckKey(ops, false, false) {
		t.Fatal("rejected insert;delete -> absent")
	}
	if CheckKey(ops, false, true) {
		t.Fatal("accepted impossible final=true for insert(true)+delete(true) from absent")
	}
}

func TestCrashedDeleteMayResurface(t *testing.T) {
	// Prefilled key, delete pending at crash: both outcomes fine; a later
	// completed contains pins the order.
	ops := []Op{
		pend(Delete, 5),
		mkOp(Contains, 6, 7, true),
	}
	if !CheckKey(ops, true, true) {
		t.Fatal("rejected pending delete that never took effect")
	}
	// contains=true completed, then recovered absent: the pending delete
	// can still linearize after the contains. Accepted.
	if !CheckKey(ops, true, false) {
		t.Fatal("rejected pending delete linearized after the contains")
	}
}

func TestRecorderAndGather(t *testing.T) {
	clock := &Clock{}
	r1 := NewRecorder(clock)
	r2 := NewRecorder(clock)
	tok := r1.Begin(Insert, 7)
	r1.Finish(tok, true)
	r2.Begin(Delete, 7) // crashes pending
	perKey := Gather([]*Recorder{r1, r2})
	if len(perKey[7]) != 2 {
		t.Fatalf("gathered %d ops, want 2", len(perKey[7]))
	}
	var completed, pending int
	for _, op := range perKey[7] {
		if op.Completed {
			completed++
		} else {
			pending++
		}
	}
	if completed != 1 || pending != 1 {
		t.Fatalf("completed=%d pending=%d", completed, pending)
	}
	if perKey[7][0].Start >= perKey[7][0].End {
		t.Fatal("timestamps not increasing")
	}
}

func TestCheckWholeHistory(t *testing.T) {
	clock := &Clock{}
	r := NewRecorder(clock)
	tok := r.Begin(Insert, 1)
	r.Finish(tok, true)
	tok = r.Begin(Insert, 2)
	r.Finish(tok, true)
	tok = r.Begin(Delete, 2)
	r.Finish(tok, true)

	good := map[uint64]bool{1: true}
	if v := Check([]*Recorder{r}, nil, good); v != nil {
		t.Fatalf("valid history rejected: %v", v)
	}
	bad := map[uint64]bool{1: true, 2: true}
	if v := Check([]*Recorder{r}, nil, bad); v == nil {
		t.Fatal("resurrected key accepted")
	} else if v.Key != 2 {
		t.Fatalf("violation on key %d, want 2", v.Key)
	}
	// A prefilled, untouched key must survive.
	if v := Check([]*Recorder{r}, map[uint64]bool{9: true}, good); v == nil {
		t.Fatal("lost prefilled key accepted")
	}
}

// TestQuickGeneratedSequentialHistoriesAccepted: simulate a correct
// sequential execution with random crash cut; the checker must accept the
// surviving state both when pending ops take effect and when they don't.
func TestQuickGeneratedSequentialHistoriesAccepted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := &Clock{}
		r := NewRecorder(clock)
		st := false
		for i := 0; i < int(n%24); i++ {
			kind := Kind(rng.Intn(3))
			tok := r.Begin(kind, 1)
			var res bool
			switch kind {
			case Insert:
				res = !st
				st = true
			case Delete:
				res = st
				st = false
			case Contains:
				res = st
			}
			r.Finish(tok, res)
		}
		// Optionally leave one op pending, applied or not.
		finals := []bool{st}
		if rng.Intn(2) == 0 {
			kind := Kind(rng.Intn(2))
			r.Begin(kind, 1)
			applied := st
			if kind == Insert {
				applied = true
			} else {
				applied = false
			}
			finals = append(finals, applied)
		}
		for _, fin := range finals {
			if !CheckKey(r.Ops(), false, fin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMutatedHistoriesRejected: flipping the final state of a
// deterministic alternating history must be rejected.
func TestQuickMutatedHistoriesRejected(t *testing.T) {
	f := func(n uint8) bool {
		clock := &Clock{}
		r := NewRecorder(clock)
		st := false
		for i := 0; i < 2+int(n%10); i++ {
			var tok int
			if st {
				tok = r.Begin(Delete, 1)
				st = false
			} else {
				tok = r.Begin(Insert, 1)
				st = true
			}
			r.Finish(tok, true)
		}
		return !CheckKey(r.Ops(), false, !st) // flipped outcome must fail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTooManyOpsPanics(t *testing.T) {
	ops := make([]Op, 65)
	for i := range ops {
		ops[i] = mkOp(Contains, int64(2*i), int64(2*i+1), false)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized per-key history")
		}
	}()
	CheckKey(ops, false, false)
}
