package core

import "flit/internal/pmem"

// Izraelevitz is the original durable-linearizability construction of
// Izraelevitz et al. [DISC'16], as summarized in §3.1 of the FliT paper:
// every load-acquire is accompanied by a pwb *and a pfence*, and every
// store-release by a pwb and pfence. It is the strictest (and slowest)
// baseline — unlike Plain, a p-load pays its fence immediately instead of
// deferring it to the next store or operation completion.
type Izraelevitz struct{}

// Name returns "izraelevitz".
func (Izraelevitz) Name() string { return "izraelevitz" }

// SupportsRMW reports true.
func (Izraelevitz) SupportsRMW() bool { return true }

// Load flushes and fences on every p-load.
func (Izraelevitz) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	v := t.Load(a)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
	return v
}

// The store primitives spell out the fence-apply-flush-fence sequence
// directly (no apply-closure indirection on the hot path; see the note
// in flit.go).

// Store writes with flush+fence on p-stores.
func (Izraelevitz) Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.PFence()
	t.Store(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
}

// CAS compare-and-swaps with flush+fence on every p-CAS: a successful one
// persists the written value; a failed one observed the current value and
// pays a p-load's immediate flush+fence, in keeping with the
// construction's uniform treatment of acquire reads.
func (Izraelevitz) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	t.CheckCrash()
	t.PFence()
	ok := t.CAS(a, old, new)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
	return ok
}

// FAA fetch-and-adds with flush+fence on p-FAA.
func (Izraelevitz) FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64 {
	t.CheckCrash()
	t.PFence()
	prev := t.FAA(a, delta)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
	return prev
}

// Exchange swaps with flush+fence on p-exchange.
func (Izraelevitz) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64 {
	t.CheckCrash()
	t.PFence()
	prev := t.Exchange(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
	return prev
}

// LoadPrivate reads without flushing.
func (Izraelevitz) LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	return t.Load(a)
}

// StorePrivate writes, flushing+fencing p-stores.
func (Izraelevitz) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.Store(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
}

// PersistObject flushes the object's lines without fencing.
func (Izraelevitz) PersistObject(t *pmem.Thread, base pmem.Addr, n int) {
	t.CheckCrash()
	persistObject(t, base, n)
}

// Complete fences.
func (Izraelevitz) Complete(t *pmem.Thread) {
	t.CheckCrash()
	t.PFence()
}
