package core

import "flit/internal/pmem"

// Plain is the paper's baseline persistence method: pwb and pfence placed
// where the P-V Interface requires them, but with no tagging — every
// p-load flushes its location unconditionally, because without a tag the
// reader cannot know whether a concurrent p-store already persisted the
// value. This is the "plain" series the paper's figures show collapsing
// under read traffic.
type Plain struct{}

// Name returns "plain".
func (Plain) Name() string { return "plain" }

// SupportsRMW reports true.
func (Plain) SupportsRMW() bool { return true }

// Load flushes on every p-load — the cost FliT exists to avoid.
func (Plain) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	v := t.Load(a)
	if pflag {
		t.PWB(a)
	}
	return v
}

// The store primitives spell out the fence-apply-flush-fence sequence
// directly (no apply-closure indirection on the hot path; see the note
// in flit.go).

// Store writes with flush+fence on p-stores.
func (Plain) Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.PFence()
	t.Store(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
}

// CAS compare-and-swaps with flush+fence on successful p-CAS. A failed
// p-CAS observed the current value and may act on it, so it pays the same
// unconditional flush as a p-load (fence deferred to the next store or
// completion).
func (Plain) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	t.CheckCrash()
	t.PFence()
	ok := t.CAS(a, old, new)
	if pflag {
		t.PWB(a)
		if ok {
			t.PFence()
		}
	}
	return ok
}

// FAA fetch-and-adds with flush+fence on p-FAA.
func (Plain) FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64 {
	t.CheckCrash()
	t.PFence()
	prev := t.FAA(a, delta)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
	return prev
}

// Exchange swaps with flush+fence on p-exchange.
func (Plain) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64 {
	t.CheckCrash()
	t.PFence()
	prev := t.Exchange(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
	return prev
}

// LoadPrivate reads without flushing (private locations have no pending
// foreign p-store).
func (Plain) LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	return t.Load(a)
}

// StorePrivate writes, flushing+fencing p-stores, without the leading fence.
func (Plain) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.Store(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
}

// PersistObject flushes the object's lines without fencing.
func (Plain) PersistObject(t *pmem.Thread, base pmem.Addr, n int) {
	t.CheckCrash()
	persistObject(t, base, n)
}

// Complete fences, persisting the operation's dependencies.
func (Plain) Complete(t *pmem.Thread) {
	t.CheckCrash()
	t.PFence()
}

// NoPersist is the non-persistent baseline (the grey dotted line in every
// figure): raw volatile instructions, no flushes, no fences. It provides
// no durability whatsoever and exists to bound attainable throughput.
type NoPersist struct{}

// Name returns "no-persist".
func (NoPersist) Name() string { return "no-persist" }

// SupportsRMW reports true.
func (NoPersist) SupportsRMW() bool { return true }

// Load reads the volatile value.
func (NoPersist) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	return t.Load(a)
}

// Store writes the volatile value.
func (NoPersist) Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.Store(a, v)
}

// CAS compare-and-swaps the volatile value.
func (NoPersist) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	t.CheckCrash()
	return t.CAS(a, old, new)
}

// FAA fetch-and-adds the volatile value.
func (NoPersist) FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64 {
	t.CheckCrash()
	return t.FAA(a, delta)
}

// Exchange swaps the volatile value.
func (NoPersist) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64 {
	t.CheckCrash()
	return t.Exchange(a, v)
}

// LoadPrivate reads the volatile value.
func (NoPersist) LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	return t.Load(a)
}

// StorePrivate writes the volatile value.
func (NoPersist) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.Store(a, v)
}

// PersistObject is a no-op.
func (NoPersist) PersistObject(t *pmem.Thread, base pmem.Addr, n int) { t.CheckCrash() }

// Complete is a no-op.
func (NoPersist) Complete(t *pmem.Thread) { t.CheckCrash() }
