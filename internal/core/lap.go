package core

import "flit/internal/pmem"

// LinkAndPersist implements the link-and-persist technique of David et
// al. [ATC'18], the prior flush-avoidance scheme FliT is compared against.
// Instead of a separate counter, it steals one bit (DirtyBit) from each
// word: a p-store installs its value with the bit set, flushes, fences,
// and clears the bit; a p-load flushes only while the bit is set.
//
// The technique's restrictions, faithfully reproduced:
//   - every store must be a CAS (Store is emulated with a CAS loop, and
//     FAA/Exchange panic), otherwise a blind write could clear the dirty
//     bit of a value that was never persisted;
//   - the instrumented word must have a spare bit, so the policy is
//     inapplicable to algorithms that use them all (the NM-BST here).
//
// Values returned by loads and expected by CAS are logical (bit stripped).
type LinkAndPersist struct{}

// Name returns "link-and-persist".
func (LinkAndPersist) Name() string { return "link-and-persist" }

// SupportsRMW reports false: link-and-persist cannot instrument FAA or
// swap.
func (LinkAndPersist) SupportsRMW() bool { return false }

// Load returns the logical value; a p-load flushes while the dirty bit is
// up (the writer, or a helping CAS, clears it after persisting).
func (LinkAndPersist) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	v := t.Load(a)
	if v&DirtyBit != 0 {
		if pflag {
			t.PWB(a)
		}
		v &^= DirtyBit
	}
	return v
}

// help persists and clears a dirty word so a store can proceed without
// destroying the un-persisted flag (the CAS-only discipline in action).
func lapHelp(t *pmem.Thread, a pmem.Addr, raw uint64) {
	t.PWB(a)
	t.PFence()
	t.CAS(a, raw, raw&^DirtyBit)
}

// CAS installs new if the logical value equals old. A p-CAS writes
// new|DirtyBit, flushes, fences, then clears the bit (unless a helper
// already did).
func (LinkAndPersist) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	t.CheckCrash()
	t.PFence() // dependencies persist before the store linearizes
	for {
		raw := t.Load(a)
		if raw&^DirtyBit != old {
			// The failure observed the current value; if that value is
			// still dirty (un-persisted), a failed p-CAS inherits a
			// p-load's obligation and flushes it, fence deferred to the
			// next store or completion — same as Load's dirty path.
			if pflag && raw&DirtyBit != 0 {
				t.PWB(a)
			}
			return false
		}
		if raw&DirtyBit != 0 {
			lapHelp(t, a, raw)
			continue
		}
		installed := new
		if pflag {
			installed |= DirtyBit
		}
		if !t.CAS(a, raw, installed) {
			continue // raw changed under us; re-evaluate
		}
		if pflag {
			t.PWB(a)
			t.PFence()
			t.CAS(a, installed, new) // clear own flag; failure = helped
		}
		return true
	}
}

// Store emulates an unconditional write with a CAS loop, preserving the
// no-blind-write discipline.
func (lp LinkAndPersist) Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.PFence()
	for {
		raw := t.Load(a)
		if raw&DirtyBit != 0 {
			lapHelp(t, a, raw)
			continue
		}
		installed := v
		if pflag {
			installed |= DirtyBit
		}
		if !t.CAS(a, raw, installed) {
			continue
		}
		if pflag {
			t.PWB(a)
			t.PFence()
			t.CAS(a, installed, v)
		}
		return
	}
}

// FAA is not expressible under link-and-persist; callers must check
// SupportsRMW.
func (LinkAndPersist) FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64 {
	panic("core: link-and-persist cannot instrument fetch-and-add (paper §2)")
}

// Exchange is not expressible under link-and-persist; callers must check
// SupportsRMW.
func (LinkAndPersist) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64 {
	panic("core: link-and-persist cannot instrument swap (paper §2)")
}

// LoadPrivate reads the logical value without flushing.
func (LinkAndPersist) LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	return t.Load(a) &^ DirtyBit
}

// StorePrivate writes directly — no dirty bit is needed on a location only
// this thread can reach; a p-store flushes and fences.
func (LinkAndPersist) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.Store(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
}

// PersistObject flushes the object's lines without fencing.
func (LinkAndPersist) PersistObject(t *pmem.Thread, base pmem.Addr, n int) {
	t.CheckCrash()
	persistObject(t, base, n)
}

// Complete fences, persisting the operation's dependencies.
func (LinkAndPersist) Complete(t *pmem.Thread) {
	t.CheckCrash()
	t.PFence()
}
