package core

import "sync/atomic"

// TagAuditor is the optional counter-read hook a CounterScheme can expose
// for verification harnesses: LiveTags sums the scheme's counters, i.e.
// the number of p-stores currently tagged as pending. The
// durable-linearizability checker (internal/dlcheck) uses it as a
// recovery oracle — at quiescence every tag must have been decremented
// back to zero, so a non-zero sum means the flit protocol leaked a tag
// (an Inc without its Dec) and the base crash image cannot be trusted.
//
// Reads are atomic but the sum is only meaningful while no thread is
// mid-instruction; call it at quiescent points.
type TagAuditor interface {
	// LiveTags returns the sum of all counters.
	LiveTags() int
}

// LiveTags sums the hashed counters.
func (h *HashTable) LiveTags() int {
	n := uint64(0)
	for i := range h.counters {
		n += atomic.LoadUint64(&h.counters[i])
	}
	return int(n)
}

// LiveTags sums the packed byte counters.
func (h *PackedHashTable) LiveTags() int {
	n := uint64(0)
	for i := range h.words {
		w := atomic.LoadUint64(&h.words[i])
		for sh := uint(0); sh < 64; sh += 8 {
			n += (w >> sh) & 0xFF
		}
	}
	return int(n)
}

// LiveTags sums the per-line counters.
func (d *DirectMap) LiveTags() int {
	n := uint64(0)
	for i := range d.counters {
		n += atomic.LoadUint64(&d.counters[i])
	}
	return int(n)
}

// LiveTagCount reports the live flit-tag count of a policy's counter
// scheme, when the policy has one that can be enumerated (the Adjacent
// scheme scatters its counters through the persistent heap, so it cannot).
// ok is false when the policy exposes no auditable counters.
func LiveTagCount(p Policy) (n int, ok bool) {
	f, isFlit := p.(*FliT)
	if !isFlit {
		return 0, false
	}
	a, canAudit := f.C.(TagAuditor)
	if !canAudit {
		return 0, false
	}
	return a.LiveTags(), true
}
