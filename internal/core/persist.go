package core

import "flit/internal/pmem"

// Persist is the user-facing handle of the paper's Figure 1: the
// persist<T> template, bound to one memory word, a policy, and a default
// pflag. Declaring a variable this way is the "minimal code change" the
// paper advertises — all accesses go through the library's
// flit-instructions, and the default pflag makes the common call sites
// argument-free (the C++ version's overloaded -> and = operators).
//
//	v := core.NewPersist(pol, addr, core.P) // flush_option::persisted
//	v.Store(th, 42)                         // persisted store
//	x := v.Load(th)                         // persisted load
//	v.StoreFlag(th, 1, core.V)              // explicit override
type Persist struct {
	pol  Policy
	addr pmem.Addr
	def  bool
}

// NewPersist binds a persist variable at addr with a default pflag.
func NewPersist(pol Policy, addr pmem.Addr, defaultPflag bool) Persist {
	return Persist{pol: pol, addr: addr, def: defaultPflag}
}

// Addr returns the variable's location.
func (p Persist) Addr() pmem.Addr { return p.addr }

// Load reads with the default pflag.
func (p Persist) Load(t *pmem.Thread) uint64 { return p.pol.Load(t, p.addr, p.def) }

// LoadFlag reads with an explicit pflag.
func (p Persist) LoadFlag(t *pmem.Thread, pflag bool) uint64 { return p.pol.Load(t, p.addr, pflag) }

// Store writes with the default pflag.
func (p Persist) Store(t *pmem.Thread, v uint64) { p.pol.Store(t, p.addr, v, p.def) }

// StoreFlag writes with an explicit pflag.
func (p Persist) StoreFlag(t *pmem.Thread, v uint64, pflag bool) {
	p.pol.Store(t, p.addr, v, pflag)
}

// CAS compare-and-swaps with the default pflag.
func (p Persist) CAS(t *pmem.Thread, old, new uint64) bool {
	return p.pol.CAS(t, p.addr, old, new, p.def)
}

// CASFlag compare-and-swaps with an explicit pflag.
func (p Persist) CASFlag(t *pmem.Thread, old, new uint64, pflag bool) bool {
	return p.pol.CAS(t, p.addr, old, new, pflag)
}

// FAA fetch-and-adds with the default pflag (Figure 1 restricts FAA to
// integer types; every simulated word is an integer).
func (p Persist) FAA(t *pmem.Thread, delta uint64) uint64 {
	return p.pol.FAA(t, p.addr, delta, p.def)
}

// Exchange swaps with the default pflag.
func (p Persist) Exchange(t *pmem.Thread, v uint64) uint64 {
	return p.pol.Exchange(t, p.addr, v, p.def)
}

// OperationCompletion is Figure 1's static operation_completion(): call at
// the end of every data structure operation.
func (p Persist) OperationCompletion(t *pmem.Thread) { p.pol.Complete(t) }
