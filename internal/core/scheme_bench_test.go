package core

import (
	"testing"

	"flit/internal/pmem"
)

// TestPow2Sizing pins the sizing helper's edge cases: minimum sizes,
// exact powers, one-past-a-power, and the shift that maps a 64-bit hash
// onto the table by its top bits.
func TestPow2Sizing(t *testing.T) {
	cases := []struct {
		n     int
		size  int
		shift uint
	}{
		{-5, 1, 64}, // degenerate inputs clamp to the 1-entry table
		{0, 1, 64},
		{1, 1, 64},
		{2, 2, 63},
		{3, 4, 62},
		{4, 4, 62},
		{5, 8, 61},
		{8, 8, 61},
		{9, 16, 60},
		{1 << 20, 1 << 20, 44},
		{1<<20 + 1, 1 << 21, 43},
	}
	for _, c := range cases {
		size, shift := Pow2Sizing(c.n)
		if size != c.size || shift != c.shift {
			t.Errorf("Pow2Sizing(%d) = (%d,%d), want (%d,%d)", c.n, size, shift, c.size, c.shift)
		}
		if got := CeilPow2(c.n); got != c.size {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.n, got, c.size)
		}
		// The shift must map every 64-bit hash into [0, size).
		for _, h := range []uint64{0, 1, ^uint64(0), 0x9E3779B97F4A7C15} {
			if idx := h >> shift; idx >= uint64(size) {
				t.Errorf("Pow2Sizing(%d): hash %#x >> %d = %d escapes [0,%d)", c.n, h, shift, idx, size)
			}
		}
	}
}

// TestSchemeSizingUnchanged pins the constructors to the helper: table
// byte sizes and report names must match the pre-refactor rounding.
func TestSchemeSizingUnchanged(t *testing.T) {
	if h := NewHashTable(1 << 20); h.bytes != 1<<20 || h.Name() != "flit-HT(1MB)" {
		t.Errorf("NewHashTable(1MB) = %d bytes %q", h.bytes, h.Name())
	}
	if h := NewHashTable(1); h.bytes != 64 {
		t.Errorf("NewHashTable(1) = %d bytes, want the 64B floor", h.bytes)
	}
	if h := NewHashTable(65); h.bytes != 64 {
		t.Errorf("NewHashTable(65) = %d bytes, want 64 (integer bytes/8 truncates)", h.bytes)
	}
	if h := NewHashTable(129); h.bytes != 128 {
		t.Errorf("NewHashTable(129) = %d bytes, want 128", h.bytes)
	}
	if h := NewPackedHashTable(1 << 12); h.bytes != 1<<12 || h.Name() != "flit-packed(4KB)" {
		t.Errorf("NewPackedHashTable(4KB) = %d bytes %q", h.bytes, h.Name())
	}
	if h := NewPackedHashTable(65); h.bytes != 128 {
		t.Errorf("NewPackedHashTable(65) = %d bytes, want 128", h.bytes)
	}
}

// --- scheme-level microbenchmarks ---
//
// BenchmarkCounterScheme* isolate the flit-counter placements: one
// Inc/Tagged/Dec round per iteration over a spread of addresses, which
// is what every FliT p-store (and the p-load tag check) costs before
// any flush is issued. Scheme-level regressions show up here without
// running the full matrix.

func benchScheme(b *testing.B, c CounterScheme) {
	cfg := pmem.DefaultConfig(1 << 16)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost, cfg.MissCost = 0, 0, 0, 0
	m := pmem.New(cfg)
	th := m.RegisterThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride the 48-bit-style keyspace like a traversal would; the
		// adjacent scheme needs a+1 in range, hence the -8 headroom.
		a := pmem.Addr(8 + (uint64(i)*2654435761)%(1<<16-8))
		c.Inc(th, a)
		if !c.Tagged(th, a) {
			b.Fatal("incremented counter not tagged")
		}
		c.Dec(th, a)
	}
}

func BenchmarkCounterSchemeAdjacent(b *testing.B) { benchScheme(b, Adjacent{}) }

func BenchmarkCounterSchemeHT4KB(b *testing.B) { benchScheme(b, NewHashTable(1<<12)) }

func BenchmarkCounterSchemeHT1MB(b *testing.B) { benchScheme(b, NewHashTable(1<<20)) }

func BenchmarkCounterSchemePacked4KB(b *testing.B) { benchScheme(b, NewPackedHashTable(1<<12)) }

func BenchmarkCounterSchemePacked1MB(b *testing.B) { benchScheme(b, NewPackedHashTable(1<<20)) }

func BenchmarkCounterSchemePerLine(b *testing.B) { benchScheme(b, NewDirectMap(1<<16)) }

// BenchmarkPStoreClosureFree pins the restructured Algorithm 4 p-store
// path: it must not allocate (the apply-closure elimination).
func BenchmarkPStoreClosureFree(b *testing.B) {
	cfg := pmem.DefaultConfig(1 << 12)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost, cfg.MissCost = 0, 0, 0, 0
	m := pmem.New(cfg)
	th := m.RegisterThread()
	pol := NewFliT(NewHashTable(1 << 12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Store(th, 64, uint64(i), P)
		pol.CAS(th, 64, uint64(i), uint64(i+1), P)
		pol.FAA(th, 64, 1, P)
		pol.Exchange(th, 64, uint64(i), P)
	}
}
