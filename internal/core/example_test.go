package core_test

import (
	"fmt"

	"flit/internal/core"
	"flit/internal/pmem"
)

// ExampleFliT shows the heart of the paper: a p-store persists before it
// returns, and p-loads skip the flush whenever no store is pending.
func ExampleFliT() {
	mem := pmem.New(pmem.Config{Words: 1 << 10}) // zero-latency for the example
	th := mem.RegisterThread()
	pol := core.NewFliT(core.NewHashTable(1 << 12))

	pol.Store(th, 64, 42, core.P)
	fmt.Println("persisted after p-store:", mem.PersistedWord(64))

	before := th.Stats.PWBs
	for i := 0; i < 1000; i++ {
		pol.Load(th, 64, core.P) // untagged: no flush
	}
	fmt.Println("flushes issued by 1000 p-loads:", th.Stats.PWBs-before)

	plain := core.Plain{}
	before = th.Stats.PWBs
	for i := 0; i < 1000; i++ {
		plain.Load(th, 64, core.P) // plain flushes every p-load
	}
	fmt.Println("flushes issued by plain:", th.Stats.PWBs-before)
	// Output:
	// persisted after p-store: 42
	// flushes issued by 1000 p-loads: 0
	// flushes issued by plain: 1000
}

// ExamplePersist demonstrates the paper's Figure 1 API: a persist<>
// variable with a default pflag.
func ExamplePersist() {
	mem := pmem.New(pmem.Config{Words: 1 << 10})
	th := mem.RegisterThread()
	v := core.NewPersist(core.NewFliT(core.Adjacent{}), 64, core.P)

	v.Store(th, 7)
	v.FAA(th, 3)
	v.OperationCompletion(th)
	fmt.Println("volatile:", v.Load(th))
	fmt.Println("persistent:", mem.PersistedWord(64))
	// Output:
	// volatile: 10
	// persistent: 10
}
