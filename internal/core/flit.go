package core

import "flit/internal/pmem"

// FliT is the paper's Algorithm 4 ("Flush if Tagged"). Every shared store
// fences first (persisting the thread's dependencies — P-V Condition 4);
// a p-store additionally tags its location's flit-counter, writes, flushes,
// fences, and untags; a p-load flushes its location only while tagged.
// This elides nearly every load-side flush: in steady state a location's
// pending-store window is tiny, so loads almost never see a tag.
type FliT struct {
	// C places the flit-counters (adjacent, hashed, packed, per-line).
	C CounterScheme
}

// NewFliT returns a FliT policy over the given counter placement.
func NewFliT(c CounterScheme) *FliT { return &FliT{C: c} }

// Name returns "flit/" plus the counter scheme name.
func (f *FliT) Name() string { return f.C.Name() }

// SupportsRMW reports true: FliT instruments any primitive, one of its
// advantages over link-and-persist.
func (f *FliT) SupportsRMW() bool { return true }

// Load implements Algorithm 4's shared-load.
//
//flit:hotpath
func (f *FliT) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	v := t.Load(a)
	if pflag && f.C.Tagged(t, a) {
		t.PWB(a)
	}
	return v
}

// Each shared-store primitive spells out Algorithm 4's skeleton —
// leading fence, tag, apply, flush+fence, untag — directly around its
// memory instruction rather than threading an apply closure through a
// shared helper: the closure allocation and indirect call sat on every
// instrumented store of every workload. persistTagged is the shared
// epilogue for the primitives that always write.

// persistTagged flushes, fences and untags a tagged p-store that was
// applied (the success epilogue of Algorithm 4's shared-store).
//
//flit:hotpath
func (f *FliT) persistTagged(t *pmem.Thread, a pmem.Addr) {
	t.PWB(a)
	t.PFence() // the new value is persisted before untagging
	f.C.Dec(t, a)
}

// Store implements Algorithm 4's shared-store for a plain write.
//
//flit:hotpath
func (f *FliT) Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.PFence() // dependencies persist before the store linearizes
	if !pflag {
		t.Store(a, v)
		return
	}
	f.C.Inc(t, a)
	t.Store(a, v)
	f.persistTagged(t, a)
}

// CAS implements Algorithm 4's shared-store for compare-and-swap.
//
//flit:hotpath
func (f *FliT) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	t.CheckCrash()
	t.PFence() // dependencies persist before the store linearizes
	if !pflag {
		return t.CAS(a, old, new)
	}
	f.C.Inc(t, a)
	if t.CAS(a, old, new) {
		f.persistTagged(t, a)
		return true
	}
	// On a failed CAS nothing was written, so the store-side flush is
	// skipped and the location untagged directly. But the failure
	// *observed* the current value, and the thread may act on that
	// observation (a queue skipping a taken node, a helper seeing a mark),
	// so a failed p-CAS carries a p-load's obligation: flush if another
	// p-store is still pending, deferring the fence to the next shared
	// store or operation completion, exactly as Load does. Without this,
	// an operation can complete depending on a value a crash then loses —
	// the hole the dlcheck enumerator catches on the durable queue.
	f.C.Dec(t, a)
	if f.C.Tagged(t, a) {
		t.PWB(a)
	}
	return false
}

// FAA implements Algorithm 4's shared-store for fetch-and-add.
//
//flit:hotpath
func (f *FliT) FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64 {
	t.CheckCrash()
	t.PFence() // dependencies persist before the store linearizes
	if !pflag {
		return t.FAA(a, delta)
	}
	f.C.Inc(t, a)
	prev := t.FAA(a, delta)
	f.persistTagged(t, a)
	return prev
}

// Exchange implements Algorithm 4's shared-store for swap.
//
//flit:hotpath
func (f *FliT) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64 {
	t.CheckCrash()
	t.PFence() // dependencies persist before the store linearizes
	if !pflag {
		return t.Exchange(a, v)
	}
	f.C.Inc(t, a)
	prev := t.Exchange(a, v)
	f.persistTagged(t, a)
	return prev
}

// LoadPrivate implements Algorithm 4's private-load: no tag check — a
// private location cannot have a pending p-store by another thread.
//
//flit:hotpath
func (f *FliT) LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	return t.Load(a)
}

// StorePrivate implements Algorithm 4's private-store: no counter, no
// leading fence; a p-store still flushes and fences before returning.
//
//flit:hotpath
func (f *FliT) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	t.CheckCrash()
	t.Store(a, v)
	if pflag {
		t.PWB(a)
		t.PFence()
	}
}

// PersistObject flushes the object's lines without fencing.
//
//flit:hotpath
func (f *FliT) PersistObject(t *pmem.Thread, base pmem.Addr, n int) {
	t.CheckCrash()
	persistObject(t, base, n)
}

// Complete implements operation_completion(): a fence persists every
// dependency of the finished operation.
//
//flit:hotpath
func (f *FliT) Complete(t *pmem.Thread) {
	t.CheckCrash()
	t.PFence()
}

// persistObject issues one PWB per cache line covering [base, base+n).
//
//flit:hotpath
func persistObject(t *pmem.Thread, base pmem.Addr, n int) {
	end := base + pmem.Addr(n)
	for a := base; a < end; a = (a + pmem.WordsPerLine) &^ (pmem.WordsPerLine - 1) {
		t.PWB(a)
	}
}
