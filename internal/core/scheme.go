package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"flit/internal/pmem"
)

// CeilPow2 returns the smallest power of two >= n (and 1 for n < 1) —
// the table-sizing rule shared by the flit-counter schemes, the durable
// hash structures and the store's bucket layout.
func CeilPow2(n int) int {
	if n < 2 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Pow2Sizing returns CeilPow2(n) together with the right-shift that maps
// a 64-bit hash onto [0, size) by its top bits (64 for size 1, where any
// shift of a 64-bit value yields index 0).
func Pow2Sizing(n int) (size int, shift uint) {
	if n < 2 {
		return 1, 64
	}
	l := bits.Len(uint(n - 1))
	return 1 << l, 64 - uint(l)
}

// CounterScheme assigns a flit-counter to each memory location (§5.1 of
// the paper). Counters live in volatile memory: their contents are
// meaningless after a crash (new processes are spawned), and sharing one
// counter among many locations is safe — it can only cause extra flushes,
// never missed ones.
type CounterScheme interface {
	// Inc tags location a: a p-store on a is pending.
	Inc(t *pmem.Thread, a pmem.Addr)
	// Dec untags location a after the pending p-store persisted.
	Dec(t *pmem.Thread, a pmem.Addr)
	// Tagged reports whether a p-store on a may still be un-persisted.
	Tagged(t *pmem.Thread, a pmem.Addr) bool
	// Name identifies the scheme in reports.
	Name() string
}

// AdjacentStride is the field stride data structures use with the Adjacent
// scheme: every persisted word is followed by its counter word, doubling
// object size — the layout cost §6.6 observes on the skiplist.
const AdjacentStride = 2

// Adjacent places each flit-counter in the word immediately after its data
// word (the "flit-adjacent" variant). Counter accesses therefore hit the
// same cache line as the data — free when the line is hot, but subject to
// the clwb-invalidation miss on the decrement, the effect behind the extra
// flushes in Figure 9.
//
// The counter word lives in simulated pmem but is never flushed; its
// post-crash content is irrelevant (a stale non-zero counter merely causes
// spurious flushes, per Lemma 5.1's safety argument).
type Adjacent struct{}

// Inc increments the counter word at a+1.
func (Adjacent) Inc(t *pmem.Thread, a pmem.Addr) { t.FAA(a+1, 1) }

// Dec decrements the counter word at a+1.
func (Adjacent) Dec(t *pmem.Thread, a pmem.Addr) { t.FAA(a+1, ^uint64(0)) }

// Tagged reports whether the counter word at a+1 is non-zero.
func (Adjacent) Tagged(t *pmem.Thread, a pmem.Addr) bool { return t.Load(a+1) != 0 }

// Name returns "flit-adjacent".
func (Adjacent) Name() string { return "flit-adjacent" }

// hashAddr spreads addresses over table indices (Fibonacci hashing).
func hashAddr(a pmem.Addr, shift uint) uint64 {
	return (uint64(a) * 0x9E3779B97F4A7C15) >> shift
}

// HashTable is the "flit-HT" variant: a fixed-size table of word-wide
// counters indexed by a hash of the address. Different locations may share
// a counter (extra flushes at worst); distinct counters in the same real
// cache line may false-share (the coherence-miss collapse the paper shows
// for a 4 KB table at ≥5% updates).
type HashTable struct {
	counters []uint64
	shift    uint
	bytes    int
}

// NewHashTable builds a table of the given size in bytes (rounded up to a
// power of two; one 8-byte counter per entry).
func NewHashTable(bytes int) *HashTable {
	if bytes < 64 {
		bytes = 64
	}
	entries, shift := Pow2Sizing(bytes / 8)
	return &HashTable{counters: make([]uint64, entries), bytes: entries * 8, shift: shift}
}

func (h *HashTable) slot(a pmem.Addr) *uint64 { return &h.counters[hashAddr(a, h.shift)] }

// Inc increments a's hashed counter.
func (h *HashTable) Inc(t *pmem.Thread, a pmem.Addr) { atomic.AddUint64(h.slot(a), 1) }

// Dec decrements a's hashed counter.
func (h *HashTable) Dec(t *pmem.Thread, a pmem.Addr) { atomic.AddUint64(h.slot(a), ^uint64(0)) }

// Tagged reports whether a's hashed counter is non-zero.
func (h *HashTable) Tagged(t *pmem.Thread, a pmem.Addr) bool {
	return atomic.LoadUint64(h.slot(a)) != 0
}

// Name returns e.g. "flit-HT(1MB)".
func (h *HashTable) Name() string { return fmt.Sprintf("flit-HT(%s)", fmtBytes(h.bytes)) }

// PackedHashTable squeezes eight 8-bit flit-counters into each table word
// (§5.1's compaction): 8x the counters per byte, at the cost of more false
// sharing. Eight bits cannot overflow — a counter's value never exceeds
// the number of threads, and machines with >255 simultaneous incrementers
// of one counter are outside the paper's (and this module's) scope.
type PackedHashTable struct {
	words []uint64
	shift uint
	bytes int
}

// NewPackedHashTable builds a packed table of the given size in bytes
// (rounded up to a power of two; one byte per counter).
func NewPackedHashTable(bytes int) *PackedHashTable {
	if bytes < 64 {
		bytes = 64
	}
	n, shift := Pow2Sizing(bytes)
	return &PackedHashTable{words: make([]uint64, n/8), bytes: n, shift: shift}
}

func (h *PackedHashTable) locate(a pmem.Addr) (*uint64, uint) {
	idx := hashAddr(a, h.shift) // byte index in [0, bytes)
	return &h.words[idx/8], uint(idx%8) * 8
}

// add replaces the target byte with (byte+delta) mod 256 under a CAS loop.
// A plain 64-bit add would carry out of the byte and corrupt the neighbor
// counter — the masked replace keeps each byte independent.
func (h *PackedHashTable) add(a pmem.Addr, delta uint64) {
	w, sh := h.locate(a)
	for {
		old := atomic.LoadUint64(w)
		b := (old >> sh) & 0xFF
		nw := (old &^ (0xFF << sh)) | (((b + delta) & 0xFF) << sh)
		if atomic.CompareAndSwapUint64(w, old, nw) {
			return
		}
	}
}

// Inc increments a's packed byte counter.
func (h *PackedHashTable) Inc(t *pmem.Thread, a pmem.Addr) { h.add(a, 1) }

// Dec decrements a's packed byte counter.
func (h *PackedHashTable) Dec(t *pmem.Thread, a pmem.Addr) { h.add(a, 0xFF) /* -1 mod 256 */ }

// Tagged reports whether a's packed byte counter is non-zero.
func (h *PackedHashTable) Tagged(t *pmem.Thread, a pmem.Addr) bool {
	w, sh := h.locate(a)
	return (atomic.LoadUint64(w)>>sh)&0xFF != 0
}

// Name returns e.g. "flit-packed(4KB)".
func (h *PackedHashTable) Name() string { return fmt.Sprintf("flit-packed(%s)", fmtBytes(h.bytes)) }

// DirectMap assigns one counter per simulated cache line — the counter
// granularity the paper's conclusion proposes as future work. No hash
// collisions; words on the same line share a counter, so a pending p-store
// tags its whole line.
type DirectMap struct {
	counters []uint64
}

// NewDirectMap builds a per-line counter array covering a memory of the
// given word capacity.
func NewDirectMap(memWords int) *DirectMap {
	return &DirectMap{counters: make([]uint64, (memWords+pmem.WordsPerLine-1)/pmem.WordsPerLine)}
}

func (d *DirectMap) slot(a pmem.Addr) *uint64 { return &d.counters[pmem.LineOf(a)] }

// Inc increments the line counter of a.
func (d *DirectMap) Inc(t *pmem.Thread, a pmem.Addr) { atomic.AddUint64(d.slot(a), 1) }

// Dec decrements the line counter of a.
func (d *DirectMap) Dec(t *pmem.Thread, a pmem.Addr) { atomic.AddUint64(d.slot(a), ^uint64(0)) }

// Tagged reports whether the line counter of a is non-zero.
func (d *DirectMap) Tagged(t *pmem.Thread, a pmem.Addr) bool {
	return atomic.LoadUint64(d.slot(a)) != 0
}

// Name returns "flit-perline".
func (d *DirectMap) Name() string { return "flit-perline" }

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
