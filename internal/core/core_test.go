package core

import (
	"sync"
	"testing"
	"testing/quick"

	"flit/internal/pmem"
)

func newMem(words int) *pmem.Memory {
	cfg := pmem.DefaultConfig(words)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost, cfg.MissCost = 0, 0, 0, 0
	return pmem.New(cfg)
}

// allPolicies returns one instance of every policy, with fresh counter
// state, for table-driven tests.
func allPolicies(memWords int) []Policy {
	return []Policy{
		NewFliT(Adjacent{}),
		NewFliT(NewHashTable(1 << 20)),
		NewFliT(NewHashTable(4 << 10)),
		NewFliT(NewPackedHashTable(4 << 10)),
		NewFliT(NewDirectMap(memWords)),
		Plain{},
		Izraelevitz{},
		LinkAndPersist{},
		NoPersist{},
	}
}

func TestPolicyVolatileSemantics(t *testing.T) {
	const words = 1 << 12
	for _, pol := range allPolicies(words) {
		t.Run(pol.Name(), func(t *testing.T) {
			m := newMem(words)
			th := m.RegisterThread()
			a := pmem.Addr(64) // even address: Adjacent uses a+1
			for _, pflag := range []bool{P, V} {
				pol.Store(th, a, 10, pflag)
				if got := pol.Load(th, a, pflag); got != 10 {
					t.Fatalf("pflag=%v: Load = %d, want 10", pflag, got)
				}
				if pol.CAS(th, a, 9, 11, pflag) {
					t.Fatalf("pflag=%v: CAS with wrong expected succeeded", pflag)
				}
				if !pol.CAS(th, a, 10, 12, pflag) {
					t.Fatalf("pflag=%v: CAS with correct expected failed", pflag)
				}
				if pol.SupportsRMW() {
					if old := pol.FAA(th, a, 5, pflag); old != 12 {
						t.Fatalf("pflag=%v: FAA returned %d, want 12", pflag, old)
					}
					if old := pol.Exchange(th, a, 10, pflag); old != 17 {
						t.Fatalf("pflag=%v: Exchange returned %d, want 17", pflag, old)
					}
				} else {
					pol.Store(th, a, 10, pflag) // re-align state for next loop
				}
				pol.Store(th, a, 10, pflag)
			}
			pol.Complete(th)
		})
	}
}

func TestPStoreIsDurableOnReturn(t *testing.T) {
	const words = 1 << 12
	for _, pol := range allPolicies(words) {
		if (pol == Policy(NoPersist{})) {
			continue
		}
		t.Run(pol.Name(), func(t *testing.T) {
			m := newMem(words)
			th := m.RegisterThread()
			a := pmem.Addr(64)
			pol.Store(th, a, 42, P)
			if got := m.PersistedWord(a) &^ DirtyBit; got != 42 {
				t.Fatalf("after p-store, persisted = %d, want 42", got)
			}
			pol.CAS(th, a, 42, 43, P)
			if got := m.PersistedWord(a) &^ DirtyBit; got != 43 {
				t.Fatalf("after p-CAS, persisted = %d, want 43", got)
			}
			pol.StorePrivate(th, a+8, 7, P)
			if got := m.PersistedWord(a + 8); got != 7 {
				t.Fatalf("after private p-store, persisted = %d, want 7", got)
			}
		})
	}
}

func TestVStoreIsNotImmediatelyDurable(t *testing.T) {
	const words = 1 << 12
	for _, pol := range allPolicies(words) {
		if pol.Name() == "no-persist" {
			continue
		}
		t.Run(pol.Name(), func(t *testing.T) {
			m := newMem(words)
			th := m.RegisterThread()
			a := pmem.Addr(64)
			pol.Store(th, a, 42, V)
			if got := m.PersistedWord(a); got != 0 {
				t.Fatalf("v-store leaked to persistence: %d", got)
			}
		})
	}
}

func TestFliTLoadSkipsFlushWhenUntagged(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	pol := NewFliT(NewHashTable(1 << 16))
	a := pmem.Addr(64)
	pol.Store(th, a, 5, P)
	before := th.Stats.PWBs
	for i := 0; i < 100; i++ {
		pol.Load(th, a, P)
	}
	if th.Stats.PWBs != before {
		t.Fatalf("untagged p-loads issued %d PWBs", th.Stats.PWBs-before)
	}
	// Plain, by contrast, flushes every p-load.
	plain := Plain{}
	before = th.Stats.PWBs
	for i := 0; i < 100; i++ {
		plain.Load(th, a, P)
	}
	if th.Stats.PWBs != before+100 {
		t.Fatalf("plain p-loads issued %d PWBs, want 100", th.Stats.PWBs-before)
	}
}

func TestFliTLoadFlushesWhileTagged(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	scheme := NewHashTable(1 << 16)
	pol := NewFliT(scheme)
	a := pmem.Addr(64)
	scheme.Inc(th, a) // simulate a concurrent pending p-store
	before := th.Stats.PWBs
	pol.Load(th, a, P)
	if th.Stats.PWBs != before+1 {
		t.Fatal("tagged p-load did not flush")
	}
	pol.Load(th, a, V) // v-load never flushes, tagged or not
	if th.Stats.PWBs != before+1 {
		t.Fatal("tagged v-load flushed")
	}
	scheme.Dec(th, a)
	pol.Load(th, a, P)
	if th.Stats.PWBs != before+1 {
		t.Fatal("untagged p-load flushed after Dec")
	}
}

func TestCounterSchemes(t *testing.T) {
	const words = 1 << 12
	m := newMem(words)
	th := m.RegisterThread()
	schemes := []CounterScheme{
		Adjacent{},
		NewHashTable(1 << 12),
		NewPackedHashTable(1 << 12),
		NewDirectMap(words),
	}
	for _, s := range schemes {
		t.Run(s.Name(), func(t *testing.T) {
			a := pmem.Addr(128)
			if s.Tagged(th, a) {
				t.Fatal("fresh counter tagged")
			}
			s.Inc(th, a)
			if !s.Tagged(th, a) {
				t.Fatal("not tagged after Inc")
			}
			s.Inc(th, a) // two pending stores
			s.Dec(th, a)
			if !s.Tagged(th, a) {
				t.Fatal("untagged while one store still pending")
			}
			s.Dec(th, a)
			if s.Tagged(th, a) {
				t.Fatal("tagged after balanced Inc/Dec")
			}
		})
	}
}

func TestDirectMapSharesCounterPerLine(t *testing.T) {
	s := NewDirectMap(1 << 12)
	m := newMem(1 << 12)
	th := m.RegisterThread()
	s.Inc(th, 64)
	if !s.Tagged(th, 65) || !s.Tagged(th, 71) {
		t.Fatal("same-line words not tagged")
	}
	if s.Tagged(th, 72) {
		t.Fatal("next-line word tagged")
	}
	s.Dec(th, 64)
}

func TestPackedCountersIndependent(t *testing.T) {
	s := NewPackedHashTable(1 << 12)
	m := newMem(1 << 12)
	th := m.RegisterThread()
	// Tag many addresses; each must untag independently.
	addrs := []pmem.Addr{8, 16, 24, 32, 40, 48, 1000, 2000}
	for _, a := range addrs {
		s.Inc(th, a)
	}
	for _, a := range addrs {
		if !s.Tagged(th, a) {
			t.Fatalf("addr %d lost its tag", a)
		}
	}
	for _, a := range addrs {
		s.Dec(th, a)
	}
	for _, a := range addrs {
		if s.Tagged(th, a) {
			t.Fatalf("addr %d still tagged", a)
		}
	}
}

func TestAdjacentCounterUsesNeighborWord(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	s := Adjacent{}
	s.Inc(th, 64)
	if m.VolatileWord(65) != 1 {
		t.Fatal("adjacent counter not at a+1")
	}
	s.Dec(th, 64)
	if m.VolatileWord(65) != 0 {
		t.Fatal("adjacent counter not balanced")
	}
}

func TestFailedPCASUntagsWithoutFlush(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	scheme := NewHashTable(1 << 16)
	pol := NewFliT(scheme)
	a := pmem.Addr(64)
	pol.Store(th, a, 1, V)
	before := th.Stats.PWBs
	if pol.CAS(th, a, 99, 2, P) {
		t.Fatal("CAS should have failed")
	}
	if th.Stats.PWBs != before {
		t.Fatal("failed p-CAS flushed")
	}
	if scheme.Tagged(th, a) {
		t.Fatal("failed p-CAS left location tagged")
	}
}

func TestLinkAndPersistDirtyBitProtocol(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	lp := LinkAndPersist{}
	a := pmem.Addr(64)

	lp.CAS(th, a, 0, 5, P)
	if raw := m.VolatileWord(a); raw != 5 {
		t.Fatalf("dirty bit not cleared after p-CAS: raw=%#x", raw)
	}
	if m.PersistedWord(a)&^DirtyBit != 5 {
		t.Fatal("p-CAS value not persisted")
	}

	// Simulate an in-flight p-store by another thread: dirty raw value.
	th.Store(a, 7|DirtyBit)
	if got := lp.Load(th, a, V); got != 7 {
		t.Fatalf("v-load returned %d, want logical 7", got)
	}
	before := th.Stats.PWBs
	if got := lp.Load(th, a, P); got != 7 {
		t.Fatalf("p-load returned %d, want logical 7", got)
	}
	if th.Stats.PWBs != before+1 {
		t.Fatal("p-load of dirty word did not flush")
	}

	// A CAS on the dirty word must first help persist+clear, then succeed
	// against the logical value.
	if !lp.CAS(th, a, 7, 9, P) {
		t.Fatal("CAS on dirty word with correct logical expected failed")
	}
	if m.PersistedWord(a)&^DirtyBit != 9 {
		t.Fatal("helped CAS value not persisted")
	}
	if m.VolatileWord(a) != 9 {
		t.Fatalf("dirty bit left set: %#x", m.VolatileWord(a))
	}
}

func TestLinkAndPersistStoreLoop(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	lp := LinkAndPersist{}
	a := pmem.Addr(64)
	th.Store(a, 3|DirtyBit) // pending foreign p-store
	lp.Store(th, a, 8, P)
	if m.VolatileWord(a) != 8 {
		t.Fatalf("store loop left %#x", m.VolatileWord(a))
	}
	// Helping must have persisted the old value before overwriting:
	// the shadow saw 3 at some point; now it must hold 8.
	if m.PersistedWord(a)&^DirtyBit != 8 {
		t.Fatal("store loop value not persisted")
	}
}

func TestLinkAndPersistRejectsRMW(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	lp := LinkAndPersist{}
	if lp.SupportsRMW() {
		t.Fatal("link-and-persist claims RMW support")
	}
	for _, fn := range []func(){
		func() { lp.FAA(th, 64, 1, P) },
		func() { lp.Exchange(th, 64, 1, P) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("RMW did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPersistObjectFlushesEveryLine(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	pol := NewFliT(NewHashTable(1 << 16))
	// A 20-word object at addr 60 covers words 60..79: lines 7, 8, 9.
	base := pmem.Addr(60)
	for i := pmem.Addr(0); i < 20; i++ {
		th.Store(base+i, uint64(i+1))
	}
	before := th.Stats.PWBs
	pol.PersistObject(th, base, 20)
	if got := th.Stats.PWBs - before; got != 3 {
		t.Fatalf("PersistObject issued %d PWBs, want 3", got)
	}
	pol.Complete(th)
	for i := pmem.Addr(0); i < 20; i++ {
		if m.PersistedWord(base+i) != uint64(i+1) {
			t.Fatalf("word %d not persisted", base+i)
		}
	}
}

// TestPVCondition3And4 checks the load-dependency guarantee concurrently:
// whenever a reader p-loads a value and completes its operation, that
// value (or a newer one) must be persistent. The writer publishes strictly
// increasing values with p-stores, so "v or newer" is v <= shadow.
func TestPVCondition3And4(t *testing.T) {
	const words = 1 << 12
	for _, pol := range allPolicies(words) {
		if pol.Name() == "no-persist" {
			continue
		}
		t.Run(pol.Name(), func(t *testing.T) {
			m := newMem(words)
			a := pmem.Addr(64)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			writer := m.RegisterThread()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					pol.Store(writer, a, i, P)
					pol.Complete(writer)
				}
			}()
			reader := m.RegisterThread()
			for i := 0; i < 3000; i++ {
				v := pol.Load(reader, a, P)
				pol.Complete(reader)
				// The moment Complete returns, v must be persisted (or
				// overwritten by a newer persisted value).
				if pv := m.PersistedWord(a) &^ DirtyBit; pv < v {
					close(stop)
					wg.Wait()
					t.Fatalf("P-V violation: read %d, persisted %d", v, pv)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestQuickPoliciesPreserveVolatileBehavior: random instruction sequences
// behave identically under every policy (Condition 1: persistence handling
// must not change volatile semantics).
func TestQuickPoliciesPreserveVolatileBehavior(t *testing.T) {
	const words = 1 << 12
	f := func(prog []uint16) bool {
		ref := make(map[pmem.Addr]uint64)
		for _, pol := range allPolicies(words) {
			m := newMem(words)
			th := m.RegisterThread()
			got := make(map[pmem.Addr]uint64)
			for i, ins := range prog {
				// Even addresses, spaced by AdjacentStride, payload < 2^48.
				a := pmem.Addr(64 + 2*(ins%128))
				v := uint64(i + 1)
				pflag := ins%2 == 0
				switch ins % 4 {
				case 0:
					pol.Store(th, a, v, pflag)
					got[a] = v
				case 1:
					if pol.Load(th, a, pflag) != got[a] {
						return false
					}
				case 2:
					if !pol.CAS(th, a, got[a], v, pflag) {
						return false
					}
					got[a] = v
				case 3:
					if pol.SupportsRMW() {
						if pol.FAA(th, a, 3, pflag) != got[a] {
							return false
						}
						got[a] += 3
					}
				}
			}
			pol.Complete(th)
			// All policies that ran the same program must agree with the
			// first run's reference.
			if len(ref) == 0 {
				for k, v := range got {
					ref[k] = v
				}
			}
			_ = ref
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedDecDoesNotCarryIntoNeighbor is the regression test for the
// byte-carry bug: decrementing one packed counter must never disturb any
// other byte of its word (a 64-bit add of 0xFF<<shift would carry).
func TestPackedDecDoesNotCarryIntoNeighbor(t *testing.T) {
	s := NewPackedHashTable(1 << 10)
	m := newMem(1 << 12)
	th := m.RegisterThread()
	// Hammer balanced Inc/Dec cycles across many addresses; afterwards
	// every counter byte in the whole table must be exactly zero.
	for round := 0; round < 3; round++ {
		for a := pmem.Addr(8); a < 2048; a += 3 {
			s.Inc(th, a)
			s.Dec(th, a)
		}
	}
	for i, w := range s.words {
		if w != 0 {
			t.Fatalf("table word %d = %#x after balanced Inc/Dec (carry corruption)", i, w)
		}
	}
}
