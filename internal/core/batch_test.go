package core

import (
	"testing"

	"flit/internal/pmem"
)

func newDeferredMem(t *testing.T) (*pmem.Memory, *pmem.Thread) {
	t.Helper()
	cfg := pmem.DefaultConfig(1 << 12)
	cfg.VirtualClock = true
	m := pmem.New(cfg)
	return m, m.RegisterThread()
}

// TestDeferredKinds pins the wrapper's dispatch: which policies defer
// what.
func TestDeferredKinds(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  Policy
		kind deferKind
	}{
		{"flit-ht", NewFliT(NewHashTable(1 << 12)), deferFlit},
		{"flit-adjacent", NewFliT(Adjacent{}), deferFlit},
		{"plain", Plain{}, deferFlush},
		{"izraelevitz", Izraelevitz{}, deferFlush},
		{"link-and-persist", LinkAndPersist{}, deferComplete},
		{"no-persist", NoPersist{}, deferNone},
	} {
		d := NewDeferred(tc.pol)
		if d.kind != tc.kind {
			t.Errorf("%s: kind = %d, want %d", tc.name, d.kind, tc.kind)
		}
		if d.Inner() != tc.pol {
			t.Errorf("%s: Inner() lost the wrapped policy", tc.name)
		}
		if d.Name() != tc.pol.Name()+"+gc" {
			t.Errorf("%s: Name() = %q", tc.name, d.Name())
		}
	}
}

// TestDeferredStoreHoldsTagUntilFlush: a deferred FliT p-store leaves
// its location tagged (so concurrent readers carry the flush
// obligation), and Flush fences first, then untags — after which the
// live-tag count is zero.
func TestDeferredStoreHoldsTagUntilFlush(t *testing.T) {
	_, th := newDeferredMem(t)
	f := NewFliT(NewHashTable(1 << 12))
	d := NewDeferred(f)
	const a = pmem.Addr(64)

	d.Store(th, a, 42, P)
	if !f.C.Tagged(th, a) {
		t.Fatal("deferred p-store did not leave the location tagged")
	}
	if n, _ := LiveTagCount(f); n != 1 {
		t.Fatalf("live tags before Flush = %d, want 1", n)
	}
	if th.M.PersistedWord(a) != 0 {
		t.Fatal("deferred p-store persisted before Flush")
	}
	if got := d.DeferredStores(); got != 1 {
		t.Fatalf("DeferredStores = %d, want 1", got)
	}

	if n := d.Flush(th); n != 1 {
		t.Fatalf("Flush drained %d lines, want 1", n)
	}
	if f.C.Tagged(th, a) {
		t.Fatal("location still tagged after Flush")
	}
	if n, _ := LiveTagCount(f); n != 0 {
		t.Fatalf("live tags after Flush = %d, want 0", n)
	}
	if th.M.PersistedWord(a) != 42 {
		t.Fatalf("persisted word = %d, want 42", th.M.PersistedWord(a))
	}
}

// TestDeferredDedupsSameLinePWBs: consecutive deferred stores (and
// tagged loads) against one cache line issue a single PWB — the batch
// window's coalescing dedup, which per-op trailing fences deny the
// unbatched path.
func TestDeferredDedupsSameLinePWBs(t *testing.T) {
	_, th := newDeferredMem(t)
	d := NewDeferred(NewFliT(NewHashTable(1 << 12)))
	const a = pmem.Addr(64) // words 64..71 share a line

	for i := 0; i < 8; i++ {
		d.Store(th, a+pmem.Addr(i%4), uint64(i), P)
	}
	// The stores left the line tagged; p-loads must not re-flush it
	// while it is pending on this batch's queue.
	for i := 0; i < 4; i++ {
		d.Load(th, a, P)
	}
	if th.Stats.PWBs != 1 {
		t.Fatalf("issued %d PWBs for 8 same-line stores + 4 tagged loads, want 1", th.Stats.PWBs)
	}
	if th.Stats.PFences != 0 {
		t.Fatalf("issued %d fences before Flush, want 0", th.Stats.PFences)
	}
	if n := d.Flush(th); n != 1 {
		t.Fatalf("Flush drained %d lines, want 1", n)
	}
	if th.Stats.PFences != 1 {
		t.Fatalf("Flush issued %d fences, want 1", th.Stats.PFences)
	}
}

// TestDeferredCompleteDefersFence: Complete is fence-free for every
// deferring kind; the batch fence is Flush's.
func TestDeferredCompleteDefersFence(t *testing.T) {
	for _, pol := range []Policy{
		NewFliT(Adjacent{}), Plain{}, Izraelevitz{}, LinkAndPersist{},
	} {
		_, th := newDeferredMem(t)
		d := NewDeferred(pol)
		d.Complete(th)
		if th.Stats.PFences != 0 {
			t.Errorf("%s: Complete fenced under the batch skeleton", pol.Name())
		}
	}
}

// TestDeferredFlushPersistsLoadObligations: a deferred-mode p-load of a
// line another thread left tagged flushes it, and this batch's Flush
// persists it — the cross-session half of "ack ⇒ persisted".
func TestDeferredFlushPersistsLoadObligations(t *testing.T) {
	m, writer := newDeferredMem(t)
	f := NewFliT(NewHashTable(1 << 12))
	wd := NewDeferred(f)
	const a = pmem.Addr(128)
	wd.Store(writer, a, 7, P) // in flight: tagged, unfenced

	reader := m.RegisterThread()
	rd := NewDeferred(f)
	if v := rd.Load(reader, a, P); v != 7 {
		t.Fatalf("Load = %d, want 7", v)
	}
	if reader.Stats.PWBs != 1 {
		t.Fatalf("reader issued %d PWBs for a tagged line, want 1", reader.Stats.PWBs)
	}
	rd.Flush(reader)
	if m.PersistedWord(a) != 7 {
		t.Fatal("reader's Flush did not persist the tagged value it observed")
	}
}

// TestDeferredPassThrough: no-persist defers nothing and Flush does
// nothing.
func TestDeferredPassThrough(t *testing.T) {
	_, th := newDeferredMem(t)
	d := NewDeferred(NoPersist{})
	d.Store(th, 64, 1, P)
	d.Complete(th)
	if n := d.Flush(th); n != 0 {
		t.Fatalf("no-persist Flush drained %d lines, want 0", n)
	}
	if th.Stats.PWBs != 0 || th.Stats.PFences != 0 {
		t.Fatal("no-persist pass-through issued persistence instructions")
	}
}

// TestDeferredPlainStoreDeferred: under Plain the deferred store
// flushes without fencing, and Flush persists it.
func TestDeferredPlainStoreDeferred(t *testing.T) {
	m, th := newDeferredMem(t)
	d := NewDeferred(Plain{})
	const a = pmem.Addr(64)
	d.Store(th, a, 9, P)
	if th.Stats.PWBs != 1 || th.Stats.PFences != 0 {
		t.Fatalf("plain deferred store: PWBs=%d PFences=%d, want 1/0", th.Stats.PWBs, th.Stats.PFences)
	}
	if m.PersistedWord(a) != 0 {
		t.Fatal("plain deferred store persisted before Flush")
	}
	d.Flush(th)
	if m.PersistedWord(a) != 9 {
		t.Fatal("Flush did not persist the deferred plain store")
	}
}

// TestDeferredCASDelegates: publishing instructions keep the wrapped
// policy's full fence discipline — a successful p-CAS is persistent
// before it returns, batch or no batch.
func TestDeferredCASDelegates(t *testing.T) {
	m, th := newDeferredMem(t)
	d := NewDeferred(NewFliT(NewHashTable(1 << 12)))
	const a = pmem.Addr(64)
	if !d.CAS(th, a, 0, 5, P) {
		t.Fatal("CAS failed")
	}
	if m.PersistedWord(a) != 5 {
		t.Fatal("p-CAS under the batch skeleton was not immediately persistent")
	}
}
