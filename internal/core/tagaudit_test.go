package core

import (
	"testing"

	"flit/internal/pmem"
)

// TestLiveTagsBalance: every scheme's tag sum returns to zero after
// balanced Inc/Dec traffic and reflects outstanding tags in between.
func TestLiveTagsBalance(t *testing.T) {
	mem := pmem.New(pmem.Config{Words: 1 << 12})
	th := mem.RegisterThread()
	schemes := []CounterScheme{
		NewHashTable(1 << 10),
		NewPackedHashTable(1 << 10),
		NewDirectMap(1 << 12),
	}
	for _, s := range schemes {
		a := s.(TagAuditor)
		if got := a.LiveTags(); got != 0 {
			t.Fatalf("%s: fresh scheme has %d live tags", s.Name(), got)
		}
		addrs := []pmem.Addr{64, 65, 200, 4000}
		for _, ad := range addrs {
			s.Inc(th, ad)
		}
		s.Inc(th, addrs[0]) // double-tag one location
		if got := a.LiveTags(); got != len(addrs)+1 {
			t.Fatalf("%s: %d live tags, want %d", s.Name(), got, len(addrs)+1)
		}
		for _, ad := range addrs {
			s.Dec(th, ad)
		}
		s.Dec(th, addrs[0])
		if got := a.LiveTags(); got != 0 {
			t.Fatalf("%s: %d live tags after balance, want 0", s.Name(), got)
		}
	}
}

// TestLiveTagCountPolicies: the policy-level hook audits FliT policies
// with enumerable schemes and declines everything else.
func TestLiveTagCountPolicies(t *testing.T) {
	if _, ok := LiveTagCount(NewFliT(NewHashTable(1 << 10))); !ok {
		t.Fatal("flit-HT must be auditable")
	}
	if _, ok := LiveTagCount(NewFliT(Adjacent{})); ok {
		t.Fatal("flit-adjacent counters live in pmem and must not claim auditability")
	}
	if _, ok := LiveTagCount(Plain{}); ok {
		t.Fatal("plain has no counters to audit")
	}
}

// TestFailedPCASFlushesObservedValue: a failed p-CAS must behave like a
// p-load of the observed value — flushing it while another thread's
// p-store is still pending — so an operation acting on the observation
// cannot complete ahead of the value's persistence. This is the
// load-obligation the dlcheck enumerator verifies end to end.
func TestFailedPCASFlushesObservedValue(t *testing.T) {
	const addr = pmem.Addr(64)
	for _, tc := range []struct {
		name string
		pol  Policy
		// tag simulates the concurrent writer's un-persisted p-store
		// state for schemes that need explicit setup.
		tag   func(t *pmem.Thread, p Policy)
		untag func(t *pmem.Thread, p Policy)
	}{
		{
			name: "flit-ht", pol: NewFliT(NewHashTable(1 << 10)),
			tag:   func(th *pmem.Thread, p Policy) { p.(*FliT).C.Inc(th, addr) },
			untag: func(th *pmem.Thread, p Policy) { p.(*FliT).C.Dec(th, addr) },
		},
		{name: "plain", pol: Plain{}},
		{name: "izraelevitz", pol: Izraelevitz{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := pmem.New(pmem.Config{Words: 1 << 10})
			writer := mem.RegisterThread()
			reader := mem.RegisterThread()

			// The "writer" installs a value volatile-only, mimicking the
			// window between a p-store's apply and its fence.
			writer.Store(addr, 42)
			if tc.tag != nil {
				tc.tag(writer, tc.pol)
			}

			// The reader's p-CAS fails (expects 0, sees 42).
			if tc.pol.CAS(reader, addr, 0, 7, P) {
				t.Fatal("CAS unexpectedly succeeded")
			}
			tc.pol.Complete(reader)
			if got := mem.PersistedWord(addr); got != 42 {
				t.Fatalf("observed value not persisted by failed p-CAS + completion: shadow = %d", got)
			}
			if tc.untag != nil {
				tc.untag(writer, tc.pol)
			}
		})
	}

	// Link-and-persist: the dirty bit plays the tag's role.
	t.Run("link-and-persist", func(t *testing.T) {
		mem := pmem.New(pmem.Config{Words: 1 << 10})
		writer := mem.RegisterThread()
		reader := mem.RegisterThread()
		writer.Store(addr, 42|DirtyBit)
		pol := LinkAndPersist{}
		if pol.CAS(reader, addr, 0, 7, P) {
			t.Fatal("CAS unexpectedly succeeded")
		}
		pol.Complete(reader)
		if got := mem.PersistedWord(addr) &^ DirtyBit; got != 42 {
			t.Fatalf("dirty observed value not persisted by failed p-CAS: shadow = %d", got)
		}
	})
}
