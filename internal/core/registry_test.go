package core

import (
	"strings"
	"testing"
)

// TestPolicyRegistryRoundTrip constructs every registered policy name
// and checks the constructed policy identifies itself consistently with
// the registry: simple policies report their canonical name verbatim;
// parameterized flit variants keep the "flit-" family prefix with their
// sizing appended.
func TestPolicyRegistryRoundTrip(t *testing.T) {
	exact := map[string]bool{
		PolicyNoPersist: true, PolicyPlain: true, PolicyIz: true,
		PolicyLAP: true, PolicyAdjacent: true, PolicyPerLine: true,
	}
	for _, name := range PolicyNames() {
		pol, err := NewPolicyByName(name, 1<<12, 0)
		if err != nil {
			t.Fatalf("NewPolicyByName(%q): %v", name, err)
		}
		if pol == nil {
			t.Fatalf("NewPolicyByName(%q): nil policy", name)
		}
		got := pol.Name()
		if exact[name] && got != name {
			t.Errorf("policy %q self-reports %q", name, got)
		}
		if !exact[name] && !strings.HasPrefix(strings.ToLower(got), name) {
			t.Errorf("policy %q self-reports %q (want prefix %q)", name, got, name)
		}
	}
}

func TestPolicyRegistryHTBytesDefault(t *testing.T) {
	// htBytes == 0 defaults to the paper's 1MB table.
	pol, err := NewPolicyByName(PolicyHT, 1<<12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.Name(); !strings.Contains(got, "1MB") {
		t.Fatalf("default flit-ht sizing not 1MB: %q", got)
	}
	pol, err = NewPolicyByName(PolicyPacked, 1<<12, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.Name(); !strings.Contains(got, "64KB") {
		t.Fatalf("explicit packed sizing lost: %q", got)
	}
}

func TestPolicyRegistryUnknown(t *testing.T) {
	pol, err := NewPolicyByName("flit-nonsense", 1<<12, 0)
	if err == nil || pol != nil {
		t.Fatalf("unknown name should error, got %v, %v", pol, err)
	}
	if !strings.Contains(err.Error(), "flit-nonsense") {
		t.Fatalf("error should name the offender: %v", err)
	}
	for _, known := range PolicyNames() {
		if !strings.Contains(err.Error(), known) {
			t.Fatalf("error should list known policies (missing %q): %v", known, err)
		}
	}
}
