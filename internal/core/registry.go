package core

import "fmt"

// Canonical policy identifiers, shared by every layer that names policies
// in flags, specs or reports (harness, crash tester, store service).
const (
	PolicyNoPersist = "no-persist"
	PolicyPlain     = "plain"
	PolicyIz        = "izraelevitz"
	PolicyAdjacent  = "flit-adjacent"
	PolicyHT        = "flit-ht"
	PolicyPacked    = "flit-packed"
	PolicyPerLine   = "flit-perline"
	PolicyLAP       = "link-and-persist"
)

// PolicyNames lists the canonical identifiers in the paper's order.
func PolicyNames() []string {
	return []string{
		PolicyNoPersist, PolicyPlain, PolicyIz, PolicyAdjacent,
		PolicyHT, PolicyPacked, PolicyPerLine, PolicyLAP,
	}
}

// NewPolicyByName constructs the policy named by one of the Policy*
// identifiers. memWords sizes the per-cache-line DirectMap scheme (it
// must cover the simulated memory); htBytes sizes the hashed
// flit-counter tables, defaulting to the paper's 1MB when zero.
func NewPolicyByName(name string, memWords, htBytes int) (Policy, error) {
	if htBytes == 0 {
		htBytes = 1 << 20
	}
	switch name {
	case PolicyNoPersist:
		return NoPersist{}, nil
	case PolicyPlain:
		return Plain{}, nil
	case PolicyIz:
		return Izraelevitz{}, nil
	case PolicyAdjacent:
		return NewFliT(Adjacent{}), nil
	case PolicyHT:
		return NewFliT(NewHashTable(htBytes)), nil
	case PolicyPacked:
		return NewFliT(NewPackedHashTable(htBytes)), nil
	case PolicyPerLine:
		return NewFliT(NewDirectMap(memWords)), nil
	case PolicyLAP:
		return LinkAndPersist{}, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (known: %v)", name, PolicyNames())
	}
}
