package core

import (
	"testing"

	"flit/internal/pmem"
)

// TestPersistFacade exercises the paper's Figure 1 API surface: default
// pflag, explicit overrides, and operation completion.
func TestPersistFacade(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	pol := NewFliT(NewHashTable(1 << 14))
	v := NewPersist(pol, 64, P)

	if v.Addr() != 64 {
		t.Fatalf("Addr = %d, want 64", v.Addr())
	}
	v.Store(th, 10)
	if got := v.Load(th); got != 10 {
		t.Fatalf("Load = %d, want 10", got)
	}
	// Default pflag P: the store is already durable.
	if m.PersistedWord(64) != 10 {
		t.Fatal("default-P store not persisted")
	}
	if !v.CAS(th, 10, 11) || v.CAS(th, 10, 12) {
		t.Fatal("CAS semantics broken")
	}
	if old := v.FAA(th, 4); old != 11 {
		t.Fatalf("FAA returned %d, want 11", old)
	}
	if old := v.Exchange(th, 100); old != 15 {
		t.Fatalf("Exchange returned %d, want 15", old)
	}
	v.OperationCompletion(th)
	if m.PersistedWord(64) != 100 {
		t.Fatal("exchange value not persisted after completion")
	}

	// Explicit V override: not immediately durable.
	v.StoreFlag(th, 7, V)
	if m.PersistedWord(64) == 7 {
		t.Fatal("v-store leaked to persistence")
	}
	if got := v.LoadFlag(th, V); got != 7 {
		t.Fatalf("LoadFlag = %d, want 7", got)
	}
	if !v.CASFlag(th, 7, 8, P) {
		t.Fatal("CASFlag failed")
	}
	if m.PersistedWord(64) != 8 {
		t.Fatal("p-CASFlag not persisted")
	}
}

// TestPersistDefaultVolatile mirrors Figure 3's manual BST root:
// flush_option::volatile as the default, persistence only on request.
func TestPersistDefaultVolatile(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	v := NewPersist(Plain{}, 72, V)
	v.Store(th, 3)
	if m.PersistedWord(72) != 0 {
		t.Fatal("default-V store persisted")
	}
	v.StoreFlag(th, 4, P)
	if m.PersistedWord(72) != 4 {
		t.Fatal("explicit p-store not persisted")
	}
}

// TestPrivateOpsAcrossPolicies covers the LoadPrivate/StorePrivate/
// PersistObject surface of every policy uniformly.
func TestPrivateOpsAcrossPolicies(t *testing.T) {
	const words = 1 << 12
	for _, pol := range allPolicies(words) {
		t.Run(pol.Name(), func(t *testing.T) {
			m := newMem(words)
			th := m.RegisterThread()
			base := pmem.Addr(128)
			for i := pmem.Addr(0); i < 4; i++ {
				pol.StorePrivate(th, base+i, uint64(i+1), V)
			}
			for i := pmem.Addr(0); i < 4; i++ {
				if got := pol.LoadPrivate(th, base+i, P); got != uint64(i+1) {
					t.Fatalf("LoadPrivate(%d) = %d, want %d", base+i, got, i+1)
				}
			}
			pol.PersistObject(th, base, 4)
			pol.Complete(th)
			if pol.Name() == "no-persist" {
				return
			}
			for i := pmem.Addr(0); i < 4; i++ {
				if got := m.PersistedWord(base + i); got != uint64(i+1) {
					t.Fatalf("word %d not persisted after PersistObject+Complete (got %d)", base+i, got)
				}
			}
		})
	}
}

// TestPolicyNames pins the report labels the harness and figures rely on.
func TestPolicyNames(t *testing.T) {
	const words = 1 << 10
	want := map[string]Policy{
		"flit-adjacent":    NewFliT(Adjacent{}),
		"flit-HT(1MB)":     NewFliT(NewHashTable(1 << 20)),
		"flit-packed(4KB)": NewFliT(NewPackedHashTable(4 << 10)),
		"flit-perline":     NewFliT(NewDirectMap(words)),
		"plain":            Plain{},
		"izraelevitz":      Izraelevitz{},
		"link-and-persist": LinkAndPersist{},
		"no-persist":       NoPersist{},
	}
	for name, pol := range want {
		if pol.Name() != name {
			t.Errorf("Name() = %q, want %q", pol.Name(), name)
		}
	}
}
