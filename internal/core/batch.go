package core

import "flit/internal/pmem"

// Deferred is the group-commit batch skeleton over the closure-free
// policies: a Policy whose shared p-stores and operation completions
// leave their *trailing* persistence obligations open until an explicit
// Flush — the single fence a batching server issues per pipeline batch
// before acknowledging any of the batch's operations.
//
// What is deferred, and why it stays durably linearizable:
//
//   - FliT (Algorithm 4): a p-store tags its flit-counter, applies and
//     flushes, but neither fences nor untags; Flush fences once and then
//     releases every tag held by the batch. Until then the location
//     reads as tagged, so a concurrent p-load (any thread, any session)
//     flushes it and persists it under its own completion — exactly the
//     tag protocol's contract. Nothing an acknowledged operation
//     observed can be lost: its own effects drain at its batch's Flush
//     before the ack, and foreign pending stores it read were flushed by
//     its own tagged loads.
//   - Plain / Izraelevitz: no tags — every p-load already flushes its
//     location unconditionally, which is the same reader-side guarantee
//     made stronger; deferring the store-side and load-side fences to
//     Flush keeps ack ⇒ persisted.
//   - Link-and-persist: every store is a dirty-bit CAS and is left fully
//     persisted (CASes are never deferred, see below); only the
//     operation-completion fence — covering load-side dirty flushes —
//     moves to Flush.
//
// What is NOT deferred: CAS, FAA and Exchange delegate to the wrapped
// policy untouched. They are the pointer-publishing instructions of the
// structures (a list insert's link, a delete's mark and unlink), and two
// of their fences carry crash-image ordering the batch must not relax:
// the leading fence drains a fresh node's contents before the link that
// publishes it can enter the write-back queue (otherwise line coalescing
// could persist the link ahead of the contents in a crash prefix), and
// the unlink's trailing fence persists unreachability before the node is
// retired for reuse. Deferred stores therefore cover exactly the
// non-publishing writes — fresh-node field initialization and in-place
// value overwrites — whose early or late persistence is independently
// consistent.
//
// A deferred p-store also elides its PWB instruction when the target
// line is already pending on the thread's write-back queue
// (pmem.Thread.LinePending): the queue coalesces repeated flushes of a
// line into one drain regardless, so the second clwb is pure cost — a
// dedup hardware cannot perform (it cannot see the software flush
// window) but a software write-back tracker gets for free. This is where
// group commit wins PWBs, not just fences: consecutive same-line stores
// in one batch (hot zipfian keys, the 3 field stores of a fresh node)
// flush once.
//
// A Deferred instance carries per-batch state (the held tags) and must
// not be shared between goroutines; wrap one per session. The wrapped
// policy's shared state (flit-counter tables) is unchanged and remains
// shared with plain sessions. Flush must be called before the batch's
// results are exposed; the store's BatchSession and the network server
// own that discipline.
type Deferred struct {
	inner Policy
	flit  *FliT // non-nil iff inner is a FliT policy
	kind  deferKind

	// tags are the addresses whose flit-counters this batch has
	// incremented and not yet released (one entry per deferred p-store;
	// duplicates balance because counters count).
	tags []pmem.Addr
	// stores counts deferred p-stores since the last Flush (stat hook).
	stores int
}

type deferKind int

const (
	// deferFlit defers untag+fence of shared p-stores and the completion
	// fence (FliT policies).
	deferFlit deferKind = iota
	// deferFlush defers store-side and load-side fences (Plain,
	// Izraelevitz: readers flush unconditionally, so no tags exist).
	deferFlush
	// deferComplete defers only the operation-completion fence
	// (link-and-persist: stores are CASes and stay fully persisted).
	deferComplete
	// deferNone passes everything through (no-persist and unknown
	// policies; Flush is a no-op — there is nothing to commit).
	deferNone
)

// NewDeferred wraps p in the group-commit batch skeleton. Every known
// policy is supported; policies with nothing to defer (no-persist)
// degrade to a transparent pass-through whose Flush does nothing.
func NewDeferred(p Policy) *Deferred {
	d := &Deferred{inner: p}
	switch ip := p.(type) {
	case *FliT:
		d.flit, d.kind = ip, deferFlit
	case Plain, Izraelevitz:
		d.kind = deferFlush
	case LinkAndPersist:
		d.kind = deferComplete
	default:
		d.kind = deferNone
	}
	return d
}

// Inner returns the wrapped policy.
func (d *Deferred) Inner() Policy { return d.inner }

// Name returns the wrapped policy's name with a "+gc" (group commit)
// suffix.
func (d *Deferred) Name() string { return d.inner.Name() + "+gc" }

// SupportsRMW defers to the wrapped policy.
func (d *Deferred) SupportsRMW() bool { return d.inner.SupportsRMW() }

// DeferredStores reports the p-stores whose persistence the current
// batch still holds (diagnostics; reset by Flush).
func (d *Deferred) DeferredStores() int { return d.stores }

// Flush is the group commit: one fence drains every line the batch
// flushed (each distinct line exactly once — the PR 3 coalescing queue),
// then the batch's flit-tags are released. It returns the number of
// lines drained. After Flush returns, every operation executed since the
// previous Flush is persistent and may be acknowledged.
//
//flit:hotpath
func (d *Deferred) Flush(t *pmem.Thread) int {
	d.stores = 0
	if d.kind == deferNone {
		return 0
	}
	n := t.Drain()
	if d.flit != nil {
		// Untag strictly after the fence: a reader observing the tag up
		// to this point flushes the value itself, as Algorithm 4's
		// persistTagged ordering requires.
		for _, a := range d.tags {
			d.flit.C.Dec(t, a)
		}
		d.tags = d.tags[:0]
	}
	return n
}

// pwbOnce flushes a's line unless it is already pending on the queue.
//
//flit:hotpath
func pwbOnce(t *pmem.Thread, a pmem.Addr) {
	if !t.LinePending(a) {
		t.PWB(a)
	}
}

// Load is the wrapped policy's shared-load with the batch dedup: a flush
// obligation against a line this batch already holds pending is elided —
// the line drains, with its final contents, at this batch's Flush before
// any of the batch's responses escape.
//
//flit:hotpath
func (d *Deferred) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	switch d.kind {
	case deferFlit:
		t.CheckCrash()
		v := t.Load(a)
		if pflag && d.flit.C.Tagged(t, a) {
			pwbOnce(t, a)
		}
		return v
	case deferFlush:
		t.CheckCrash()
		v := t.Load(a)
		if pflag {
			// Plain flushes with the fence deferred to completion;
			// Izraelevitz fences immediately. Under group commit both
			// defer the fence to Flush — the batch boundary is the
			// completion the construction's fence was buying.
			pwbOnce(t, a)
		}
		return v
	default:
		return d.inner.Load(t, a, pflag)
	}
}

// Store applies a shared store whose trailing persistence is deferred to
// Flush. Under FliT the location stays tagged until then, so concurrent
// readers carry the flush obligation exactly as for any in-flight
// p-store; under Plain/Izraelevitz readers flush unconditionally. The
// leading dependency fence is elided with the trailing one: the batch's
// deferred stores are non-publishing writes (see the type comment), and
// every pointer-publishing CAS still fences ahead of itself.
//
//flit:hotpath
func (d *Deferred) Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	switch d.kind {
	case deferFlit:
		t.CheckCrash()
		if !pflag {
			t.Store(a, v)
			return
		}
		d.flit.C.Inc(t, a)
		t.Store(a, v)
		pwbOnce(t, a)
		d.tags = append(d.tags, a)
		d.stores++
	case deferFlush:
		t.CheckCrash()
		t.Store(a, v)
		if pflag {
			pwbOnce(t, a)
			d.stores++
		}
	default:
		d.inner.Store(t, a, v, pflag)
	}
}

// releaseTagsIfFenced releases every held tag when a delegated
// instruction issued a fence. Any fence on this thread drains the whole
// write-back queue, and every deferred store keeps its latest value
// pending (pwbOnce re-enqueues after each intervening drain), so a
// fence leaves every deferred store persisted — holding its tag longer
// would only make readers re-flush already-durable lines.
//
//flit:hotpath
func (d *Deferred) releaseTagsIfFenced(t *pmem.Thread, fencesBefore uint64) {
	if t.Stats.PFences == fencesBefore || len(d.tags) == 0 {
		return
	}
	for _, a := range d.tags {
		d.flit.C.Dec(t, a)
	}
	d.tags = d.tags[:0]
}

// CAS delegates untouched: publishing instructions keep their leading
// and trailing fences (see the type comment for why the batch must not
// relax them). Their fences persist the batch's deferred stores as a
// side effect, so the held tags are released on the spot.
//
//flit:hotpath
func (d *Deferred) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	if d.flit == nil {
		return d.inner.CAS(t, a, old, new, pflag)
	}
	before := t.Stats.PFences
	ok := d.inner.CAS(t, a, old, new, pflag)
	d.releaseTagsIfFenced(t, before)
	return ok
}

// FAA delegates untouched (tag release as for CAS).
//
//flit:hotpath
func (d *Deferred) FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64 {
	if d.flit == nil {
		return d.inner.FAA(t, a, delta, pflag)
	}
	before := t.Stats.PFences
	prev := d.inner.FAA(t, a, delta, pflag)
	d.releaseTagsIfFenced(t, before)
	return prev
}

// Exchange delegates untouched (tag release as for CAS).
//
//flit:hotpath
func (d *Deferred) Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64 {
	if d.flit == nil {
		return d.inner.Exchange(t, a, v, pflag)
	}
	before := t.Stats.PFences
	prev := d.inner.Exchange(t, a, v, pflag)
	d.releaseTagsIfFenced(t, before)
	return prev
}

// LoadPrivate delegates: private loads never flush.
//
//flit:hotpath
func (d *Deferred) LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	return d.inner.LoadPrivate(t, a, pflag)
}

// StorePrivate delegates: the optimized modes' private stores are
// volatile (their persistence rides PersistObject), and a private
// p-store's immediate fence is rare enough not to batch.
//
//flit:hotpath
func (d *Deferred) StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) {
	d.inner.StorePrivate(t, a, v, pflag)
}

// PersistObject delegates: its flushes land on the same queue and drain
// at the next fence — the publishing CAS's leading fence, as always.
//
//flit:hotpath
func (d *Deferred) PersistObject(t *pmem.Thread, base pmem.Addr, n int) {
	d.inner.PersistObject(t, base, n)
}

// Complete defers the operation-completion fence to Flush: the batch
// boundary is where the operation's response escapes, so that is where
// its dependencies must be persistent — not earlier.
//
//flit:hotpath
func (d *Deferred) Complete(t *pmem.Thread) {
	if d.kind == deferNone {
		d.inner.Complete(t)
		return
	}
	t.CheckCrash()
}
