// Package core implements the paper's primary contribution: the P-V
// instruction interface (Definition 1) and the FliT algorithm (Algorithm 4)
// that realizes it, alongside the competing persistence methods evaluated
// in the paper — link-and-persist, plain flushing, and the non-persistent
// baseline.
//
// A Policy instruments every memory instruction of a data structure. Each
// instrumented instruction carries a pflag: true makes it a p-instruction
// (its effect must be persisted per the P-V Interface), false makes it a
// v-instruction (persistence optimized away). Making every instruction a
// p-instruction turns any linearizable data structure durably linearizable
// (Theorem 3.1); the NVtraverse and manual durability methods downgrade
// carefully chosen instructions to v-instructions for speed.
//
// The FliT policy tracks pending p-stores with flit-counters whose
// placement is pluggable (CounterScheme): adjacent to each word, in a
// hash table of configurable size, packed eight to a word, or one per
// cache line (the paper's future-work variant).
package core

import "flit/internal/pmem"

// Pflag values, for readable call sites: instr(..., core.P) persists the
// instruction's effect, instr(..., core.V) leaves it volatile.
const (
	P = true
	V = false
)

// Bit layout of instrumented words. Offset pointers and keys/values stored
// through a Policy must fit in the low 60 bits; the high bits carry
// algorithm metadata.
const (
	// MarkBit is the Harris logical-deletion mark (owned by data structures).
	MarkBit uint64 = 1 << 63
	// DirtyBit is reserved by the LinkAndPersist policy as the
	// flushed-or-not flag that the link-and-persist technique steals from
	// each word. Data structures must keep it clear; the Natarajan–Mittal
	// BST cannot (it uses its spare bits), which is exactly why the paper
	// reports link-and-persist as inapplicable to the BST.
	DirtyBit uint64 = 1 << 62
	// FlagBit and TagBit are the Natarajan–Mittal BST edge states.
	FlagBit uint64 = 1 << 61
	TagBit  uint64 = 1 << 60
	// PayloadMask isolates the payload (pointer or datum) of a word.
	PayloadMask uint64 = TagBit - 1
)

// Policy is the P-V Interface: the set of instrumented memory instructions
// a persistent algorithm is written against. Shared instructions may race
// with other threads on the same location; the Private variants (and
// PersistObject) may only target locations no other thread can reach, such
// as a freshly allocated node before it is linked in.
//
// All implementations inject simulated crashes (Thread.CheckCrash) at
// instruction granularity, so crash tests interrupt operations anywhere a
// real power failure could.
type Policy interface {
	// Name identifies the policy in reports (e.g. "flit-HT(1MB)").
	Name() string

	// Load returns the value at a; as a p-load it guarantees the value is
	// persisted before the thread's next shared store or op completion.
	Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64
	// Store writes v to a; as a p-store the value is persisted before the
	// instruction returns.
	Store(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool)
	// CAS atomically replaces old with new at a and reports success.
	CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool
	// FAA atomically adds delta at a, returning the prior value. Policies
	// for which FAA is inapplicable (link-and-persist) panic.
	FAA(t *pmem.Thread, a pmem.Addr, delta uint64, pflag bool) uint64
	// Exchange atomically swaps v into a, returning the prior value.
	// Policies for which it is inapplicable (link-and-persist) panic.
	Exchange(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool) uint64

	// LoadPrivate reads a location only this thread can access. Private
	// p-loads never flush: a private location has no pending p-store by
	// another thread (Algorithm 4).
	LoadPrivate(t *pmem.Thread, a pmem.Addr, pflag bool) uint64
	// StorePrivate writes a location only this thread can access, skipping
	// the flit-counter and the leading fence (Algorithm 4's private-store).
	StorePrivate(t *pmem.Thread, a pmem.Addr, v uint64, pflag bool)
	// PersistObject write-backs every line of the n-word private object at
	// base without fencing: a batch of private p-stores whose fence is
	// deferred to the next shared store or completion (P-V Condition 4
	// orders it before the object becomes shared).
	PersistObject(t *pmem.Thread, base pmem.Addr, n int)

	// Complete is the paper's operation_completion(): it must be called at
	// the end of every data structure operation.
	Complete(t *pmem.Thread)

	// SupportsRMW reports whether FAA/Exchange are available (the
	// link-and-persist technique requires all stores to be CAS).
	SupportsRMW() bool
}
