package harness

import (
	"testing"
	"time"

	"flit/internal/dstruct"
)

func quickOpts() Options {
	return Options{Threads: 2, Duration: 30 * time.Millisecond, Small: true}
}

func TestMeasureProducesThroughput(t *testing.T) {
	for _, ds := range DataStructures {
		for _, pol := range []string{PolNoPersist, PolPlain, PolAdjacent, PolHT} {
			r := Measure(Spec{DS: ds, Policy: pol, Mode: dstruct.Automatic, KeyRange: 512},
				Workload{Threads: 2, UpdatePct: 5, Duration: 20 * time.Millisecond})
			if r.Ops == 0 || r.OpsPerSec <= 0 {
				t.Fatalf("%s/%s: no throughput measured: %+v", ds, pol, r)
			}
		}
	}
}

func TestPrefillFillsHalf(t *testing.T) {
	inst := Build(Spec{DS: "list", Policy: PolHT, Mode: dstruct.Automatic, KeyRange: 128})
	inst.Prefill()
	if got := len(inst.Snapshot()); got != 64 {
		t.Fatalf("prefill produced %d keys, want 64", got)
	}
	if inst.Mem.TotalStats().PWBs != 0 {
		t.Fatal("prefill statistics not reset")
	}
}

func TestFliTBeatsPlainOnReadHeavyAutomatic(t *testing.T) {
	// The paper's central claim, in miniature: with p-loads dominating
	// (automatic mode, 5% updates), FliT must outperform plain flushing.
	w := Workload{Threads: 2, UpdatePct: 5, Duration: 60 * time.Millisecond}
	plain := Measure(Spec{DS: "bst", Policy: PolPlain, Mode: dstruct.Automatic, KeyRange: 10_000}, w)
	flit := Measure(Spec{DS: "bst", Policy: PolHT, Mode: dstruct.Automatic, KeyRange: 10_000}, w)
	if flit.OpsPerSec < 1.5*plain.OpsPerSec {
		t.Fatalf("FliT %.0f ops/s vs plain %.0f ops/s: speedup %.2fx < 1.5x",
			flit.OpsPerSec, plain.OpsPerSec, flit.OpsPerSec/plain.OpsPerSec)
	}
	if flit.PWBsPerOp >= plain.PWBsPerOp {
		t.Fatalf("FliT pwbs/op %.2f not below plain %.2f", flit.PWBsPerOp, plain.PWBsPerOp)
	}
}

func TestPolicyLabels(t *testing.T) {
	cases := map[string]Spec{
		"no-persist":       {Policy: PolNoPersist},
		"plain":            {Policy: PolPlain},
		"flit-adjacent":    {Policy: PolAdjacent},
		"flit-HT(1MB)":     {Policy: PolHT},
		"flit-HT(4KB)":     {Policy: PolHT, HTBytes: 4 << 10},
		"flit-packed(4KB)": {Policy: PolPacked, HTBytes: 4 << 10},
		"flit-perline":     {Policy: PolPerLine},
		"link-and-persist": {Policy: PolLAP},
	}
	for want, s := range cases {
		if got := s.PolicyLabel(); got != want {
			t.Errorf("PolicyLabel(%q) = %q, want %q", s.Policy, got, want)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{Title: "T", ColHead: "h", Cols: []string{"a", "b"}, Unit: "u"}
	tb.AddRow("row", 1.5, 1234)
	out := tb.Format()
	for _, want := range []string{"=== T", "row", "1.500", "1234"} {
		if !contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestFig9RunsQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiment")
	}
	tables := Fig9(quickOpts())
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("Fig9 shape wrong: %+v", tables)
	}
	// plain must flush more per op than flit-HT on the list/automatic cell.
	var plain, flitHT float64
	for _, r := range tables[0].Rows {
		if r.Label == "plain" {
			plain = r.Cells[2]
		}
		if r.Label == "flit-HT(1MB)" {
			flitHT = r.Cells[2]
		}
	}
	if plain <= flitHT {
		t.Fatalf("plain pwbs/op %.2f not above flit-HT %.2f", plain, flitHT)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "T", ColHead: "h", Cols: []string{"a,b", "c"}, Unit: "u"}
	tb.AddRow(`r"1`, 1.5, 2)
	out := tb.CSV()
	for _, want := range []string{"# T [u]", `"a,b"`, `"r""1"`, "1.5,2"} {
		if !contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureRepeatedAverages(t *testing.T) {
	r := MeasureRepeated(
		Spec{DS: "list", Policy: PolHT, Mode: dstruct.Automatic, KeyRange: 64},
		Workload{Threads: 2, UpdatePct: 5, Duration: 10 * time.Millisecond}, 3)
	if r.Ops == 0 || r.OpsPerSec <= 0 {
		t.Fatalf("no throughput from repeated measurement: %+v", r)
	}
}
