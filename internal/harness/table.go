package harness

import (
	"fmt"
	"strings"

	"flit/internal/bench/stats"
)

// Table is a formatted experiment result: one row per series, one column
// per x-value, mirroring how the paper's plots are read.
type Table struct {
	Title string
	// ColHead labels the column dimension (e.g. "update%", "threads").
	ColHead string
	Cols    []string
	Rows    []TableRow
	// Unit annotates cell values (e.g. "Mops/s", "pwbs/op", "× baseline").
	Unit string
	// Notes carries caveats shown under the table.
	Notes []string
}

// TableRow is one series.
type TableRow struct {
	Label string
	Cells []float64
	// Stats, when non-nil, parallels Cells with the repeat statistics the
	// cell means were folded from; the JSON export carries it, the text
	// and CSV renderings show Cells (the means), so all three agree.
	Stats []stats.Summary
}

// AddRow appends a series of bare values (derived quantities like
// ratios, which have no per-repeat samples of their own).
func (t *Table) AddRow(label string, cells ...float64) {
	t.Rows = append(t.Rows, TableRow{Label: label, Cells: cells})
}

// AddRowStats appends a series of summarized measurements; the rendered
// cell value is each summary's mean.
func (t *Table) AddRowStats(label string, sums ...stats.Summary) {
	row := TableRow{Label: label, Stats: sums, Cells: make([]float64, len(sums))}
	for i, s := range sums {
		row.Cells[i] = s.Mean
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s  [%s]\n", t.Title, t.Unit)
	width := 28
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, t.ColHead)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%15s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, "%15s", fmtCell(v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values for plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s [%s]\n", t.Title, t.Unit)
	fmt.Fprintf(&b, "%s", csvEscape(t.ColHead))
	for _, c := range t.Cols {
		fmt.Fprintf(&b, ",%s", csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s", csvEscape(r.Label))
		for _, v := range r.Cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func fmtCell(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
