package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flit/internal/bench/stats"
)

// Workload is a timed benchmark mix, matching the paper's setup: updates
// split 50/50 between inserts and deletes, uniformly random keys.
type Workload struct {
	Threads   int
	UpdatePct int // 0, 5, 50 in the paper
	Duration  time.Duration
	// ZipfS, when > 1, draws keys from a Zipf(s) distribution instead of
	// uniform: hot keys create the contended access pattern the paper
	// names as where FliT's benefits concentrate (§7).
	ZipfS float64
}

// Result aggregates one run, or — after RepeatRuns — the fold of
// several. OpsPerSec and PWBsPerOp always equal Throughput.Mean and
// PWBRate.Mean, so every rendering (text table, CSV, JSON) reads the
// same averaged value.
type Result struct {
	Label     string
	Ops       uint64
	OpsPerSec float64
	PWBs      uint64
	PFences   uint64
	PWBsPerOp float64
	Elapsed   time.Duration
	// NsPerOp is wall-clock thread-nanoseconds per op (elapsed × threads
	// / ops); AllocsPerOp is Go heap allocations per op over the measured
	// window. Both average across repeats under RepeatRuns.
	NsPerOp     float64
	AllocsPerOp float64
	// Throughput (ops/s) and PWBRate (pwbs/op) summarize the per-run
	// samples across repeats; N == 1 for a single run.
	Throughput stats.Summary
	PWBRate    stats.Summary
}

func (r Result) String() string {
	return fmt.Sprintf("%-40s %12.0f ops/s  %7.3f pwbs/op", r.Label, r.OpsPerSec, r.PWBsPerOp)
}

// RunWorkload drives the instance with w and returns throughput and flush
// statistics. The instance should already be prefilled; statistics are
// reset at the start of the measured window.
func RunWorkload(inst *Instance, w Workload) Result {
	inst.Mem.ResetStats()
	var totalOps atomic.Uint64
	var wg sync.WaitGroup
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	// Workers watch the deadline themselves (once per small batch) rather
	// than polling a stop flag set by a sleeping coordinator: with every P
	// saturated by CPU-bound workers, the coordinator's timer wake-up can
	// lag the nominal window by many milliseconds, and that overshoot —
	// not the workload — used to dominate short cells' wall time.
	deadline := start.Add(w.Duration)
	for t := 0; t < w.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			th := inst.Set.NewThread()
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + t*7919)))
			keyRange := inst.Spec.KeyRange
			var zipf *rand.Zipf
			if w.ZipfS > 1 {
				zipf = rand.NewZipf(rng, w.ZipfS, 1, keyRange-1)
			}
			var ops uint64
			for !time.Now().After(deadline) {
				// A small batch per deadline check keeps the clock off the
				// per-op hot path.
				for i := 0; i < 64; i++ {
					var k uint64
					if zipf != nil {
						k = zipf.Uint64()
					} else {
						k = uint64(rng.Int63()) % keyRange
					}
					r := rng.Intn(100)
					switch {
					case r < w.UpdatePct && r%2 == 0:
						th.Insert(k, k)
					case r < w.UpdatePct:
						th.Delete(k)
					default:
						th.Contains(k)
					}
					ops++
				}
			}
			totalOps.Add(ops)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	mstats := inst.Mem.TotalStats()
	ops := totalOps.Load()
	res := Result{
		Label:   inst.Label(),
		Ops:     ops,
		PWBs:    mstats.PWBs,
		PFences: mstats.PFences,
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	if ops > 0 {
		res.PWBsPerOp = float64(mstats.PWBs) / float64(ops)
		res.NsPerOp = float64(elapsed.Nanoseconds()) * float64(w.Threads) / float64(ops)
		res.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(ops)
	}
	res.Throughput = stats.Of(res.OpsPerSec)
	res.PWBRate = stats.Of(res.PWBsPerOp)
	return res
}

// Measure builds, prefills and runs a spec in one call.
func Measure(s Spec, w Workload) Result {
	s.Duration = w.Duration
	inst := Build(s)
	inst.Prefill()
	return RunWorkload(inst, w)
}

// RepeatRuns invokes run n times and folds the results through the
// bench statistics kernel: counts and elapsed time accumulate, the rate
// quantities (ops/s, pwbs/op) are summarized across runs with the mean
// exposed as OpsPerSec/PWBsPerOp. Every repetition in the harness —
// MeasureRepeated, the figure sweeps, the bench matrix — goes through
// this one fold, so text tables, CSV and JSON all agree.
func RepeatRuns(n int, run func() Result) Result {
	if n < 1 {
		n = 1
	}
	var acc Result
	ops := make([]float64, 0, n)
	pwbs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		r := run()
		acc.Label = r.Label
		acc.Ops += r.Ops
		acc.PWBs += r.PWBs
		acc.PFences += r.PFences
		acc.Elapsed += r.Elapsed
		acc.NsPerOp += r.NsPerOp
		acc.AllocsPerOp += r.AllocsPerOp
		ops = append(ops, r.OpsPerSec)
		pwbs = append(pwbs, r.PWBsPerOp)
	}
	acc.NsPerOp /= float64(n)
	acc.AllocsPerOp /= float64(n)
	acc.Throughput = stats.Summarize(ops)
	acc.PWBRate = stats.Summarize(pwbs)
	acc.OpsPerSec = acc.Throughput.Mean
	acc.PWBsPerOp = acc.PWBRate.Mean
	return acc
}

// MeasureRepeated averages n runs on one prefilled instance — the paper
// reports the average of 5 runs of every configuration.
func MeasureRepeated(s Spec, w Workload, n int) Result {
	if n < 1 {
		n = 1
	}
	s.Duration = w.Duration * time.Duration(n)
	inst := Build(s)
	inst.Prefill()
	return RepeatRuns(n, func() Result { return RunWorkload(inst, w) })
}
