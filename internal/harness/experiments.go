package harness

import (
	"fmt"
	"runtime"
	"time"

	"flit/internal/bench/stats"
	"flit/internal/dstruct"
)

// Options tunes how the figure experiments run. Zero values pick defaults
// scaled to the host.
type Options struct {
	Threads  int           // default: GOMAXPROCS
	Duration time.Duration // per measured cell; default 120 ms
	// Repeats averages each cell over this many runs (the paper averages
	// 5); default 1.
	Repeats int
	// Small restricts Figure 8 to the small structure sizes.
	Small bool
	// Invalidate turns on clwb-invalidation modeling everywhere
	// (reproducing the paper's Cascade Lake behaviour).
	Invalidate bool
}

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Duration == 0 {
		o.Duration = 120 * time.Millisecond
	}
	if o.Repeats == 0 {
		o.Repeats = 1
	}
	return o
}

// measure is the cell primitive all figures share: averaged runs per the
// paper's methodology.
func (o Options) measure(s Spec, w Workload) Result {
	return MeasureRepeated(s, w, o.Repeats)
}

// smallSize mirrors the paper's small configurations (10K keys; 128 for
// the linear-traversal list).
func smallSize(ds string) uint64 {
	if ds == "list" {
		return 128
	}
	return 10_000
}

// largeSize mirrors the paper's large configurations, scaled from 10M to
// 1M keys (4K for the list, as in the paper) to fit a laptop-class host.
func largeSize(ds string) uint64 {
	if ds == "list" {
		return 4096
	}
	return 1_000_000
}

// DataStructures lists the four benchmark structures in the paper's order.
var DataStructures = []string{"bst", "hashtable", "list", "skiplist"}

// measureUpdSweep builds+prefills one instance and runs it at each update
// ratio, reusing the steady-state fill across ratios. Repetition folds
// through RepeatRuns like every other cell.
func measureUpdSweep(s Spec, o Options, upds []int) []Result {
	s.Duration = o.Duration * time.Duration(o.Repeats*len(upds))
	inst := Build(s)
	inst.Prefill()
	out := make([]Result, len(upds))
	for i, u := range upds {
		w := Workload{Threads: o.Threads, UpdatePct: u, Duration: o.Duration}
		out[i] = RepeatRuns(o.Repeats, func() Result { return RunWorkload(inst, w) })
	}
	return out
}

// Fig5 reproduces Figure 5: flit-HT size tuning on the automatic BST with
// 10K keys across update ratios.
func Fig5(o Options) []*Table {
	o = o.withDefaults()
	upds := []int{0, 5, 50}
	sizes := []int{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20}
	t := &Table{
		Title:   "Figure 5: flit-HT size tuning (automatic BST, 10K keys)",
		ColHead: "flit-HT size \\ update%",
		Cols:    []string{"0%", "5%", "50%"},
		Unit:    "Mops/s",
	}
	for _, bytes := range sizes {
		s := Spec{DS: "bst", Policy: PolHT, HTBytes: bytes, Mode: dstruct.Automatic,
			KeyRange: smallSize("bst"), Invalidate: o.Invalidate}
		res := measureUpdSweep(s, o, upds)
		cells := make([]stats.Summary, len(res))
		for i, r := range res {
			cells[i] = r.Throughput.Scale(1e-6)
		}
		t.AddRowStats(s.PolicyLabel(), cells...)
	}
	t.Notes = append(t.Notes,
		"paper: larger tables lose at 0% updates (cache residency); 4KB collapses at >=5% (line collisions)")
	return []*Table{t}
}

// fig6Policies are the series of Figure 6.
var fig6Policies = []string{PolNoPersist, PolPlain, PolHT, PolAdjacent}

// Fig6 reproduces Figure 6: thread scalability of the automatic BST (10K
// keys, 5% updates). Thread counts beyond the host's cores oversubscribe
// goroutines.
func Fig6(o Options) []*Table {
	o = o.withDefaults()
	maxT := o.Threads * 4
	var threads []int
	for n := 1; n <= maxT; n *= 2 {
		threads = append(threads, n)
	}
	t := &Table{
		Title:   "Figure 6: scalability (automatic BST, 10K keys, 5% updates)",
		ColHead: "policy \\ threads",
		Unit:    "Mops/s",
	}
	for _, n := range threads {
		t.Cols = append(t.Cols, fmt.Sprint(n))
	}
	for _, pol := range fig6Policies {
		s := Spec{DS: "bst", Policy: pol, Mode: dstruct.Automatic,
			KeyRange: smallSize("bst"), Invalidate: o.Invalidate,
			Duration: o.Duration * time.Duration(o.Repeats)}
		inst := Build(s)
		inst.Prefill()
		cells := make([]stats.Summary, len(threads))
		for i, n := range threads {
			w := Workload{Threads: n, UpdatePct: 5, Duration: o.Duration}
			r := RepeatRuns(o.Repeats, func() Result { return RunWorkload(inst, w) })
			cells[i] = r.Throughput.Scale(1e-6)
		}
		t.AddRowStats(s.PolicyLabel(), cells...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host has %d CPUs; counts beyond that oversubscribe goroutines", runtime.NumCPU()))
	return []*Table{t}
}

// fig7Policies returns the policy series of Figure 7 for a structure.
func fig7Policies(ds string) []string {
	ps := []string{PolPlain, PolAdjacent, PolHT}
	if ds != "bst" { // link-and-persist inapplicable to the NM-BST
		ps = append(ps, PolLAP)
	}
	return ps
}

// Fig7 reproduces Figure 7: all four structures, three durability methods,
// all persistence policies, 5% updates, small sizes.
func Fig7(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range DataStructures {
		t := &Table{
			Title:   fmt.Sprintf("Figure 7: %s, %d keys, %d threads, 5%% updates", ds, smallSize(ds), o.Threads),
			ColHead: "durability \\ policy",
			Cols:    []string{"plain", "flit-adjacent", "flit-HT", "link&persist"},
			Unit:    "Mops/s",
		}
		base := o.measure(Spec{DS: ds, Policy: PolNoPersist, Mode: dstruct.Automatic,
			KeyRange: smallSize(ds), Invalidate: o.Invalidate},
			Workload{Threads: o.Threads, UpdatePct: 5, Duration: o.Duration})
		for _, mode := range dstruct.Modes {
			cells := make([]stats.Summary, 4)
			for i, pol := range fig7Policies(ds) {
				r := o.measure(Spec{DS: ds, Policy: pol, Mode: mode,
					KeyRange: smallSize(ds), Invalidate: o.Invalidate},
					Workload{Threads: o.Threads, UpdatePct: 5, Duration: o.Duration})
				cells[i] = r.Throughput.Scale(1e-6)
			}
			t.AddRowStats(mode.String(), cells...)
		}
		t.AddRowStats("non-persistent baseline", base.Throughput.Scale(1e-6))
		tables = append(tables, t)
	}
	tables = append(tables, speedupTable(tables))
	return tables
}

// speedupTable distills Figure 7 into the paper's headline claims: FliT's
// speedup over plain per structure and durability method.
func speedupTable(figs []*Table) *Table {
	t := &Table{
		Title:   "Figure 7 summary: flit-HT speedup over plain",
		ColHead: "durability \\ structure",
		Unit:    "x (>=1 means FliT wins)",
	}
	for _, f := range figs {
		t.Cols = append(t.Cols, f.Title[10:f.titleComma()])
	}
	for mi, mode := range dstruct.Modes {
		cells := make([]float64, len(figs))
		for fi, f := range figs {
			row := f.Rows[mi]
			if row.Cells[0] > 0 {
				cells[fi] = row.Cells[2] / row.Cells[0] // flit-HT / plain
			}
		}
		t.AddRow(mode.String(), cells...)
	}
	t.Notes = append(t.Notes, "paper: >=2.1x in all but one workload; automatic gains most (6.68x-99.5x)")
	return t
}

// titleComma finds the end of the structure name in a Fig7 title.
func (t *Table) titleComma() int {
	for i := 10; i < len(t.Title); i++ {
		if t.Title[i] == ',' {
			return i
		}
	}
	return len(t.Title)
}

// fig8Series are the policy rows of Figure 8.
var fig8Series = []string{PolPlain, PolAdjacent, PolHT, PolLAP}

// Fig8 reproduces Figure 8: automatic durability, two sizes per structure,
// update-ratio sweep, normalized to the non-persistent baseline.
func Fig8(o Options) []*Table {
	o = o.withDefaults()
	upds := []int{0, 5, 50}
	sizes := []func(string) uint64{smallSize}
	names := []string{"small"}
	if !o.Small {
		sizes = append(sizes, largeSize)
		names = append(names, "large")
	}
	var tables []*Table
	for si, sizeOf := range sizes {
		for _, ds := range DataStructures {
			n := sizeOf(ds)
			t := &Table{
				Title:   fmt.Sprintf("Figure 8: %s (%s, %d keys), automatic, normalized", ds, names[si], n),
				ColHead: "policy \\ update%",
				Cols:    []string{"0%", "5%", "50%"},
				Unit:    "fraction of non-persistent throughput",
			}
			base := measureUpdSweep(Spec{DS: ds, Policy: PolNoPersist, Mode: dstruct.Automatic,
				KeyRange: n, Invalidate: o.Invalidate}, o, upds)
			for _, pol := range fig8Series {
				if pol == PolLAP && ds == "bst" {
					continue
				}
				res := measureUpdSweep(Spec{DS: ds, Policy: pol, Mode: dstruct.Automatic,
					KeyRange: n, Invalidate: o.Invalidate}, o, upds)
				cells := make([]float64, len(upds))
				for i := range res {
					if base[i].OpsPerSec > 0 {
						cells[i] = res[i].OpsPerSec / base[i].OpsPerSec
					}
				}
				probe := Spec{DS: ds, Policy: pol}
				t.AddRow(probe.PolicyLabel(), cells...)
			}
			t.Notes = append(t.Notes,
				"paper: more updates -> lower fraction; large sizes approach 1.0 (traversal-dominated)")
			tables = append(tables, t)
		}
	}
	return tables
}

// Fig9 reproduces Figure 9: pwb instructions per operation for the
// hashtable (10K keys) and list (128 keys) at 5% updates, automatic and
// manual durability.
func Fig9(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "Figure 9: flushes per operation, 5% updates",
		ColHead: "policy \\ structure/mode",
		Cols:    []string{"ht/auto", "ht/manual", "list/auto", "list/manual"},
		Unit:    "pwbs/op",
	}
	type cellSpec struct {
		ds   string
		mode dstruct.Mode
	}
	cols := []cellSpec{
		{"hashtable", dstruct.Automatic}, {"hashtable", dstruct.Manual},
		{"list", dstruct.Automatic}, {"list", dstruct.Manual},
	}
	for _, pol := range fig8Series {
		cells := make([]stats.Summary, len(cols))
		for i, c := range cols {
			r := o.measure(Spec{DS: c.ds, Policy: pol, Mode: c.mode,
				KeyRange: smallSize(c.ds), Invalidate: o.Invalidate},
				Workload{Threads: o.Threads, UpdatePct: 5, Duration: o.Duration})
			cells[i] = r.PWBRate
		}
		probe := Spec{DS: "list", Policy: pol}
		t.AddRowStats(probe.PolicyLabel(), cells...)
	}
	t.Notes = append(t.Notes,
		"paper: counts are similar across FliT variants; flit-adjacent/link-and-persist inflate on list/auto only under invalidating clwb (see ablation A)")
	return []*Table{t}
}

// AblationInvalidate (ablation A) repeats the Figure 9 list/automatic cell
// with clwb-invalidation modeling off and on: the paper attributes
// flit-adjacent's extra flushes to the invalidating clwb of Cascade Lake.
func AblationInvalidate(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "Ablation A: clwb invalidation effect (list 128 keys, automatic, 5% updates)",
		ColHead: "policy \\ clwb model",
		Cols:    []string{"non-invalidating", "invalidating"},
		Unit:    "pwbs/op",
	}
	for _, pol := range fig8Series {
		cells := make([]stats.Summary, 2)
		for i, inval := range []bool{false, true} {
			r := o.measure(Spec{DS: "list", Policy: pol, Mode: dstruct.Automatic,
				KeyRange: smallSize("list"), Invalidate: inval},
				Workload{Threads: o.Threads, UpdatePct: 5, Duration: o.Duration})
			cells[i] = r.PWBRate
		}
		probe := Spec{DS: "list", Policy: pol}
		t.AddRowStats(probe.PolicyLabel(), cells...)
	}
	t.Notes = append(t.Notes,
		"paper observes the 'invalidating' column on hardware; non-invalidating is Intel's documented intent")
	return []*Table{t}
}

// AblationPacked (ablation B) compares word-wide and packed (8/word)
// flit-counters at small table sizes: packing multiplies counters per byte
// but increases false sharing (paper §5.1).
func AblationPacked(o Options) []*Table {
	o = o.withDefaults()
	upds := []int{0, 5, 50}
	t := &Table{
		Title:   "Ablation B: packed flit-counters (automatic BST, 10K keys)",
		ColHead: "scheme \\ update%",
		Cols:    []string{"0%", "5%", "50%"},
		Unit:    "Mops/s",
	}
	for _, variant := range []struct {
		pol   string
		bytes int
	}{
		{PolHT, 4 << 10}, {PolPacked, 4 << 10},
		{PolHT, 64 << 10}, {PolPacked, 64 << 10},
	} {
		s := Spec{DS: "bst", Policy: variant.pol, HTBytes: variant.bytes,
			Mode: dstruct.Automatic, KeyRange: smallSize("bst"), Invalidate: o.Invalidate}
		res := measureUpdSweep(s, o, upds)
		cells := make([]stats.Summary, len(res))
		for i, r := range res {
			cells[i] = r.Throughput.Scale(1e-6)
		}
		t.AddRowStats(s.PolicyLabel(), cells...)
	}
	return []*Table{t}
}

// AblationPerLine (ablation C) evaluates the paper's future-work variant:
// one flit-counter per cache line, against the evaluated placements.
func AblationPerLine(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "Ablation C: per-cache-line counters (automatic, small sizes, 5% updates)",
		ColHead: "policy \\ structure",
		Cols:    append([]string(nil), DataStructures...),
		Unit:    "Mops/s",
	}
	for _, pol := range []string{PolHT, PolAdjacent, PolPerLine} {
		cells := make([]stats.Summary, len(DataStructures))
		for i, ds := range DataStructures {
			r := o.measure(Spec{DS: ds, Policy: pol, Mode: dstruct.Automatic,
				KeyRange: smallSize(ds), Invalidate: o.Invalidate},
				Workload{Threads: o.Threads, UpdatePct: 5, Duration: o.Duration})
			cells[i] = r.Throughput.Scale(1e-6)
		}
		probe := Spec{DS: "bst", Policy: pol}
		t.AddRowStats(probe.PolicyLabel(), cells...)
	}
	return []*Table{t}
}

// AblationIzraelevitz (ablation D) adds the original Izraelevitz et al.
// construction (§3.1) — pwb+pfence accompanying every p-load — as the
// historical baseline under the automatic transformation. FliT's "up to
// 200x over plain flush instructions" headline is measured against this
// kind of construction.
func AblationIzraelevitz(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "Ablation D: Izraelevitz baseline (automatic, small sizes, 5% updates)",
		ColHead: "policy \\ structure",
		Cols:    append([]string(nil), DataStructures...),
		Unit:    "Mops/s",
	}
	for _, pol := range []string{PolIz, PolPlain, PolHT} {
		cells := make([]stats.Summary, len(DataStructures))
		for i, ds := range DataStructures {
			r := o.measure(Spec{DS: ds, Policy: pol, Mode: dstruct.Automatic,
				KeyRange: smallSize(ds), Invalidate: o.Invalidate},
				Workload{Threads: o.Threads, UpdatePct: 5, Duration: o.Duration})
			cells[i] = r.Throughput.Scale(1e-6)
		}
		probe := Spec{DS: "bst", Policy: pol}
		t.AddRowStats(probe.PolicyLabel(), cells...)
	}
	t.Notes = append(t.Notes, "paper: FliT is up to 200x the plain-flush construction; izraelevitz fences every p-load")
	return []*Table{t}
}

// AblationZipf (ablation E) measures skewed-access contention: the paper
// argues FliT's largest benefits appear in contended workloads (§7). Hot
// keys concentrate p-stores on few locations, stretching tagged windows
// and stressing counter placement.
func AblationZipf(o Options) []*Table {
	o = o.withDefaults()
	skews := []float64{0, 1.2, 2.0}
	t := &Table{
		Title:   "Ablation E: access skew (automatic BST, 10K keys, 50% updates)",
		ColHead: "policy \\ zipf s",
		Cols:    []string{"uniform", "s=1.2", "s=2.0"},
		Unit:    "Mops/s",
	}
	for _, pol := range []string{PolPlain, PolAdjacent, PolHT, PolPerLine} {
		cells := make([]stats.Summary, len(skews))
		for i, s := range skews {
			r := o.measure(Spec{DS: "bst", Policy: pol, Mode: dstruct.Automatic,
				KeyRange: smallSize("bst"), Invalidate: o.Invalidate},
				Workload{Threads: o.Threads, UpdatePct: 50, Duration: o.Duration, ZipfS: s})
			cells[i] = r.Throughput.Scale(1e-6)
		}
		probe := Spec{DS: "bst", Policy: pol}
		t.AddRowStats(probe.PolicyLabel(), cells...)
	}
	t.Notes = append(t.Notes, "hot keys concentrate flit-counter traffic; FliT must keep its lead under skew")
	return []*Table{t}
}

// Figures maps figure identifiers to their experiment functions.
var Figures = map[string]func(Options) []*Table{
	"5":             Fig5,
	"6":             Fig6,
	"7":             Fig7,
	"8":             Fig8,
	"9":             Fig9,
	"ablation-inv":  AblationInvalidate,
	"ablation-pack": AblationPacked,
	"ablation-line": AblationPerLine,
	"ablation-iz":   AblationIzraelevitz,
	"ablation-zipf": AblationZipf,
}

// FigureOrder is the canonical run order for "all".
var FigureOrder = []string{"5", "6", "7", "8", "9", "ablation-inv", "ablation-pack", "ablation-line", "ablation-iz", "ablation-zipf"}
