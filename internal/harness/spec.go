// Package harness builds benchmark instances and drives the timed
// workloads that regenerate every figure of the paper's evaluation
// (§6): throughput and flush counts across data structures, durability
// methods, persistence policies, flit-counter placements, thread counts,
// update ratios and structure sizes.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/bst"
	"flit/internal/dstruct/hashtable"
	"flit/internal/dstruct/list"
	"flit/internal/dstruct/skiplist"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// Policy identifiers accepted by Spec.Policy — aliases of the canonical
// core registry names.
const (
	PolNoPersist = core.PolicyNoPersist
	PolPlain     = core.PolicyPlain
	PolIz        = core.PolicyIz
	PolAdjacent  = core.PolicyAdjacent
	PolHT        = core.PolicyHT
	PolPacked    = core.PolicyPacked
	PolPerLine   = core.PolicyPerLine
	PolLAP       = core.PolicyLAP
)

// Spec describes one benchmark instance: a data structure over a policy,
// durability mode, and sizing.
type Spec struct {
	DS       string // list | hashtable | skiplist | bst
	Policy   string // one of the Pol* identifiers
	HTBytes  int    // flit-ht / flit-packed table size (default 1 MB)
	Mode     dstruct.Mode
	KeyRange uint64
	// Buckets for the hashtable (default KeyRange/2, giving short chains
	// at the steady-state 50% fill, like the paper's setup).
	Buckets int
	// Invalidate turns on clwb-invalidation modeling (ablation A).
	Invalidate bool
	// VirtualClock charges latency costs to per-thread virtual-time
	// counters instead of spin loops (pmem.Config.VirtualClock) —
	// for latency-blind runs like the CI smoke matrix.
	VirtualClock bool
	// Duration hint: sizes the skiplist leak budget for long runs.
	Duration time.Duration
}

// Instance is a ready-to-run benchmark subject.
type Instance struct {
	Spec     Spec
	Set      dstruct.Set
	Snapshot func() map[uint64]uint64
	Mem      *pmem.Memory
	Heap     *pheap.Heap
	Policy   core.Policy
}

// perKeyWords estimates the allocation footprint per key (in fields,
// before stride).
func perKeyWords(ds string) int {
	switch ds {
	case "list", "hashtable":
		return list.NumFields
	case "skiplist":
		return 7 // key,val,level + ~2 tower levels on average, headroom
	case "bst":
		return 2 * bst.NumFields // leaf + internal
	default:
		panic("harness: unknown data structure " + ds)
	}
}

// memWords sizes the simulated memory: live set (~keyRange/2 at steady
// state), allocation churn headroom, and — for the skiplist, which does
// not recycle nodes — a duration-scaled leak budget.
func (s Spec) memWords(stride int) int {
	leak := uint64(400_000)
	if s.DS == "skiplist" {
		secs := s.Duration.Seconds()
		if secs < 0.5 {
			secs = 0.5
		}
		leak += uint64(2_000_000 * secs)
	}
	words := (s.KeyRange*3/4 + leak) * uint64(perKeyWords(s.DS)) * uint64(stride)
	words += uint64(s.Buckets*stride) + (1 << 18)
	return int(words)
}

// buildPolicy constructs the policy named by the spec via the core
// registry.
func (s Spec) buildPolicy(memWords int) core.Policy {
	pol, err := core.NewPolicyByName(s.Policy, memWords, s.HTBytes)
	if err != nil {
		panic("harness: " + err.Error())
	}
	return pol
}

// PolicyLabel names the policy with its parameters, as in the paper's
// legends.
func (s Spec) PolicyLabel() string {
	if s.Policy == PolHT || s.Policy == PolPacked {
		ht := s.HTBytes
		if ht == 0 {
			ht = 1 << 20
		}
		probe := s
		probe.HTBytes = ht
		return probe.buildPolicy(1 << 10).Name()
	}
	switch s.Policy {
	case PolNoPersist, PolPlain, PolIz, PolLAP:
		return s.Policy
	default:
		return s.buildPolicy(1 << 10).Name()
	}
}

// Build allocates the simulated memory, heap, policy and data structure.
func Build(s Spec) *Instance {
	if s.Buckets == 0 {
		s.Buckets = int(s.KeyRange / 2)
		if s.Buckets < 4 {
			s.Buckets = 4
		}
	}
	// Stride depends on the policy kind; adjacent counters double fields.
	stride := 1
	if s.Policy == PolAdjacent {
		stride = core.AdjacentStride
	}
	words := s.memWords(stride)
	mcfg := pmem.DefaultConfig(words)
	mcfg.InvalidateOnPWB = s.Invalidate
	mcfg.VirtualClock = s.VirtualClock
	mem := pmem.New(mcfg)
	heap := pheap.New(mem)
	pol := s.buildPolicy(words)
	cfg := dstruct.Config{
		Heap: heap, Policy: pol, Mode: s.Mode, RootSlot: 0,
		Stride: dstruct.StrideFor(pol),
	}
	inst := &Instance{Spec: s, Mem: mem, Heap: heap, Policy: pol}
	switch s.DS {
	case "list":
		l := list.New(cfg)
		inst.Set, inst.Snapshot = l, l.Snapshot
	case "hashtable":
		h := hashtable.New(cfg, s.Buckets)
		inst.Set, inst.Snapshot = h, h.Snapshot
	case "skiplist":
		sl := skiplist.New(cfg)
		inst.Set, inst.Snapshot = sl, sl.Snapshot
	case "bst":
		b := bst.New(cfg)
		inst.Set, inst.Snapshot = b, b.Snapshot
	default:
		panic("harness: unknown data structure " + s.DS)
	}
	return inst
}

// Prefill inserts every other key (50% fill, the steady state of a 50/50
// insert/delete mix), with latency modeling suspended — setup is not part
// of the measured run. Keys are inserted in shuffled order: sorted
// insertion would degenerate the external BST into a linear chain.
func (inst *Instance) Prefill() {
	saved := inst.Mem.Config()
	inst.Mem.SetCosts(0, 0, 0, 0)
	th := inst.Set.NewThread()
	keys := make([]uint64, 0, inst.Spec.KeyRange/2)
	for k := uint64(0); k < inst.Spec.KeyRange; k += 2 {
		keys = append(keys, k)
	}
	rng := rand.New(rand.NewSource(0xF117))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		th.Insert(k, k)
	}
	inst.Mem.SetCosts(saved.PWBCost, saved.PFenceCost, saved.PFenceEntryCost, saved.MissCost)
	inst.Mem.ResetStats()
}

// Label describes the instance for tables.
func (inst *Instance) Label() string {
	return fmt.Sprintf("%s/%s/%s", inst.Spec.DS, inst.Spec.Mode, inst.Spec.PolicyLabel())
}
