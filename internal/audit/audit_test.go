package audit

import (
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/bst"
	"flit/internal/dstruct/hashtable"
	"flit/internal/dstruct/list"
	"flit/internal/dstruct/lockmap"
	"flit/internal/dstruct/skiplist"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func newMem(words int) *pmem.Memory {
	cfg := pmem.DefaultConfig(words)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
	return pmem.New(cfg)
}

func TestConformingSequenceHasNoViolations(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	a := New(core.NewFliT(core.NewHashTable(1<<14)), m)
	a.Store(th, 64, 1, core.P)
	v := a.Load(th, 64, core.P)
	a.Store(th, 80, v+1, core.P) // depends on the load; FliT persists in time
	a.Complete(th)
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("violations on conforming sequence: %v", vs)
	}
}

func TestPersistObjectThenShareIsConforming(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	a := New(core.NewFliT(core.NewHashTable(1<<14)), m)
	// Private init, batched flush, then publish: the canonical node-init
	// pattern. The leading fence of the publishing p-store must discharge
	// the object dependencies.
	for i := pmem.Addr(0); i < 3; i++ {
		a.StorePrivate(th, 128+i, uint64(i+1), core.V)
	}
	a.PersistObject(th, 128, 3)
	a.Store(th, 64, 128, core.P) // publish
	a.Complete(th)
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("violations on init-then-publish: %v", vs)
	}
}

func TestMissingFlushIsFlagged(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	// NoPersist never flushes: a p-store dependency can never discharge.
	a := New(core.NoPersist{}, m)
	a.Store(th, 64, 7, core.P)
	a.Complete(th)
	vs := a.Violations()
	if len(vs) == 0 {
		t.Fatal("un-persisted p-store dependency not flagged")
	}
	if vs[0].Addr != 64 || vs[0].Want != 7 {
		t.Fatalf("wrong violation recorded: %+v", vs[0])
	}
}

func TestSupersededDependencyIsExcused(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	a := New(core.NoPersist{}, m)
	a.Store(th, 64, 7, core.P) // never persisted...
	a.Store(th, 64, 8, core.V) // ...but superseded before any checkpoint?
	// The store checkpoint runs after each shared store: the first Store's
	// own checkpoint ran before recording, the second Store's checkpoint
	// sees volatile=8 != want=7 and excuses it; the new v-store adds no
	// dependency. Completion then has nothing left to flag for value 7.
	a.Complete(th)
	for _, v := range a.Violations() {
		if v.Want == 7 {
			t.Fatalf("superseded dependency flagged: %v", v)
		}
	}
}

// TestDataStructuresConformUnderAudit runs every structure × durability
// mode single-threaded under the auditor: zero violations proves each
// call-site pflag assignment satisfies Condition 4 mechanically.
func TestDataStructuresConformUnderAudit(t *testing.T) {
	for _, mode := range dstruct.Modes {
		for _, name := range []string{"list", "hashtable", "skiplist", "bst", "lockmap"} {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				m := newMem(1 << 20)
				aud := New(core.NewFliT(core.NewHashTable(1<<16)), m)
				cfg := dstruct.Config{
					Heap: pheap.New(m), Policy: aud, Mode: mode,
					RootSlot: 0, Stride: dstruct.StrideFor(aud.Inner),
				}
				var set dstruct.Set
				switch name {
				case "list":
					set = list.New(cfg)
				case "hashtable":
					set = hashtable.New(cfg, 16)
				case "skiplist":
					set = skiplist.New(cfg)
				case "bst":
					set = bst.New(cfg)
				case "lockmap":
					set = lockmap.New(cfg, 16)
				}
				th := set.NewThread()
				for i := 0; i < 600; i++ {
					k := uint64(i*7) % 97
					switch i % 3 {
					case 0:
						th.Insert(k, k)
					case 1:
						th.Delete(k)
					default:
						th.Contains(k)
					}
				}
				if vs := aud.Violations(); len(vs) != 0 {
					t.Fatalf("%d P-V violations, first: %v", len(vs), vs[0])
				}
			})
		}
	}
}

// TestBrokenModeIsLocalized: downgrading the decisive link CAS to a
// v-instruction must be flagged at the next checkpoint, naming the broken
// location — the auditor's purpose is localizing protocol bugs.
func TestBrokenModeIsLocalized(t *testing.T) {
	m := newMem(1 << 16)
	th := m.RegisterThread()
	aud := New(core.NewFliT(core.NewHashTable(1<<14)), m)
	// Simulate a buggy insert: private init + PersistObject, then a
	// v-CAS link (bug: should be P), then completion.
	aud.StorePrivate(th, 128, 5, core.V)
	aud.PersistObject(th, 128, 1)
	aud.CAS(th, 64, 0, 128, core.V) // BUG: link not persisted
	// The link value 128 at addr 64 was never a recorded dependency (it
	// was a v-CAS) — but a subsequent p-load of it by the same thread
	// creates one, and completion must then flag it.
	aud.Load(th, 64, core.P)
	aud.Complete(th)
	found := false
	for _, v := range aud.Violations() {
		if v.Addr == 64 && v.Want == 128 {
			found = true
		}
	}
	if !found {
		t.Fatalf("v-linked pointer read by p-load not flagged: %v", aud.Violations())
	}
}

// TestAuditRMWAndAccessors covers the FAA/Exchange wrappers and accessors.
func TestAuditRMWAndAccessors(t *testing.T) {
	m := newMem(1 << 12)
	th := m.RegisterThread()
	a := New(core.NewFliT(core.NewHashTable(1<<14)), m)
	if a.Name() != "audit(flit-HT(16KB))" {
		t.Fatalf("Name = %q", a.Name())
	}
	if !a.SupportsRMW() {
		t.Fatal("audit over FliT must support RMW")
	}
	if prev := a.FAA(th, 64, 5, core.P); prev != 0 {
		t.Fatalf("FAA prev = %d", prev)
	}
	if prev := a.Exchange(th, 64, 9, core.P); prev != 5 {
		t.Fatalf("Exchange prev = %d", prev)
	}
	if got := a.LoadPrivate(th, 64, core.V); got != 9 {
		t.Fatalf("LoadPrivate = %d", got)
	}
	a.Complete(th)
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	// Violation String formatting.
	v := Violation{Thread: 1, Addr: 64, Want: 9, Shadow: 0, Checkpoint: "x"}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}
