// Package audit provides a runtime conformance checker for the P-V
// Interface (Definition 1 of the paper). An Auditor wraps any core.Policy
// and tracks, per thread, the dependency set the definition prescribes:
//
//   - Condition 2: the thread depends on its own linearized p-stores;
//   - Condition 3: a p-load adds a dependency on the loaded value;
//   - Condition 4: at every shared store and at operation completion, all
//     dependencies must be persisted.
//
// At each checkpoint the auditor inspects the simulated persistent shadow:
// a dependency (addr, value) is discharged if the shadow holds the value,
// or if the volatile layer has moved past it (a newer store linearized on
// that location — the newer value carries the obligation forward, exactly
// as in the paper's proof of Theorem 3.1). Anything else is a violation.
//
// The auditor is exact for quiescent checks and conservative under
// concurrency (a racing overwrite between the two inspections could mask
// a real violation, never invent one in practice); the crash-test harness
// remains the end-to-end oracle. Use the auditor to localize *which
// instruction* broke the protocol.
package audit

import (
	"fmt"
	"sync"

	"flit/internal/core"
	"flit/internal/pmem"
)

// Violation is one failed Condition-4 check.
type Violation struct {
	Thread     int
	Addr       pmem.Addr
	Want       uint64 // the depended-on value
	Shadow     uint64 // what the persistent shadow held
	Checkpoint string
}

func (v Violation) String() string {
	return fmt.Sprintf("thread %d: dependency on %d=%d not persisted at %s (shadow holds %d)",
		v.Thread, v.Addr, v.Want, v.Checkpoint, v.Shadow)
}

// Auditor wraps an inner policy with dependency tracking. Create one per
// memory; threads are tracked independently and lock-free on the hot path
// (each thread owns its dependency map).
type Auditor struct {
	Inner core.Policy
	Mem   *pmem.Memory

	mu         sync.Mutex
	deps       map[*pmem.Thread]map[pmem.Addr]uint64
	violations []Violation
}

// New wraps inner with auditing against mem's persistent shadow.
func New(inner core.Policy, mem *pmem.Memory) *Auditor {
	return &Auditor{Inner: inner, Mem: mem, deps: make(map[*pmem.Thread]map[pmem.Addr]uint64)}
}

// Violations returns all recorded violations.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

func (a *Auditor) depsOf(t *pmem.Thread) map[pmem.Addr]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := a.deps[t]
	if d == nil {
		d = make(map[pmem.Addr]uint64)
		a.deps[t] = d
	}
	return d
}

// record adds a dependency (Conditions 2 and 3).
func (a *Auditor) record(t *pmem.Thread, addr pmem.Addr, v uint64) {
	a.depsOf(t)[addr] = v &^ core.DirtyBit
}

// check verifies Condition 4 and clears discharged dependencies.
func (a *Auditor) check(t *pmem.Thread, where string) {
	d := a.depsOf(t)
	for addr, want := range d {
		shadow := a.Mem.PersistedWord(addr) &^ core.DirtyBit
		if shadow == want {
			delete(d, addr)
			continue
		}
		if vol := a.Mem.VolatileWord(addr) &^ core.DirtyBit; vol != want {
			// Superseded: a newer store linearized here; its writer (or
			// this thread's later p-load of it) carries the obligation.
			delete(d, addr)
			continue
		}
		a.mu.Lock()
		a.violations = append(a.violations, Violation{
			Thread: t.ID, Addr: addr, Want: want, Shadow: shadow, Checkpoint: where,
		})
		a.mu.Unlock()
		delete(d, addr)
	}
}

// Name labels the audited policy.
func (a *Auditor) Name() string { return "audit(" + a.Inner.Name() + ")" }

// SupportsRMW defers to the inner policy.
func (a *Auditor) SupportsRMW() bool { return a.Inner.SupportsRMW() }

// Load delegates, then records the Condition-3 dependency for p-loads.
func (a *Auditor) Load(t *pmem.Thread, addr pmem.Addr, pflag bool) uint64 {
	v := a.Inner.Load(t, addr, pflag)
	if pflag {
		a.record(t, addr, v)
	}
	return v
}

// Store delegates (the inner leading fence runs first), then checks
// Condition 4 and records the Condition-2 dependency for p-stores.
func (a *Auditor) Store(t *pmem.Thread, addr pmem.Addr, v uint64, pflag bool) {
	a.Inner.Store(t, addr, v, pflag)
	a.check(t, "shared store")
	if pflag {
		a.record(t, addr, v)
	}
}

// CAS delegates, then checks Condition 4; a successful p-CAS records its
// new value as a dependency.
func (a *Auditor) CAS(t *pmem.Thread, addr pmem.Addr, old, new uint64, pflag bool) bool {
	ok := a.Inner.CAS(t, addr, old, new, pflag)
	a.check(t, "shared CAS")
	if ok && pflag {
		a.record(t, addr, new)
	}
	return ok
}

// FAA delegates, then checks Condition 4 and records the new value.
func (a *Auditor) FAA(t *pmem.Thread, addr pmem.Addr, delta uint64, pflag bool) uint64 {
	prev := a.Inner.FAA(t, addr, delta, pflag)
	a.check(t, "shared FAA")
	if pflag {
		a.record(t, addr, prev+delta)
	}
	return prev
}

// Exchange delegates, then checks Condition 4 and records the new value.
func (a *Auditor) Exchange(t *pmem.Thread, addr pmem.Addr, v uint64, pflag bool) uint64 {
	prev := a.Inner.Exchange(t, addr, v, pflag)
	a.check(t, "shared exchange")
	if pflag {
		a.record(t, addr, v)
	}
	return prev
}

// LoadPrivate delegates; private loads add no dependencies (their location
// has no pending foreign p-store).
func (a *Auditor) LoadPrivate(t *pmem.Thread, addr pmem.Addr, pflag bool) uint64 {
	return a.Inner.LoadPrivate(t, addr, pflag)
}

// StorePrivate delegates and records p-stores (persisted immediately by
// the inner policy, so the dependency discharges at the next check).
func (a *Auditor) StorePrivate(t *pmem.Thread, addr pmem.Addr, v uint64, pflag bool) {
	a.Inner.StorePrivate(t, addr, v, pflag)
	if pflag {
		a.record(t, addr, v)
	}
}

// PersistObject delegates and records every covered word as a dependency:
// the batched private p-stores must persist before the object is shared,
// which the next checkpoint verifies.
func (a *Auditor) PersistObject(t *pmem.Thread, base pmem.Addr, n int) {
	a.Inner.PersistObject(t, base, n)
	for i := 0; i < n; i++ {
		addr := base + pmem.Addr(i)
		a.record(t, addr, a.Mem.VolatileWord(addr))
	}
}

// Complete delegates, then checks Condition 4 at operation completion.
func (a *Auditor) Complete(t *pmem.Thread) {
	a.Inner.Complete(t)
	a.check(t, "operation completion")
}
