package pmem_test

import (
	"fmt"

	"flit/internal/pmem"
)

// Example_crashSemantics shows why persistent programming is hard: a
// store alone survives nothing, a flush alone survives nothing, only
// flush + fence is durable.
func Example_crashSemantics() {
	mem := pmem.New(pmem.Config{Words: 1 << 10})
	th := mem.RegisterThread()

	th.Store(8, 1) // stored, never flushed
	th.Store(24, 3)
	th.PWB(24)
	th.PFence() // flushed and fenced: durable
	th.Store(16, 2)
	th.PWB(16) // flushed after the fence: still pending at the crash

	img := mem.CrashImage(pmem.DropUnfenced, 0)
	fmt.Println("stored only:   ", img[8])
	fmt.Println("flushed only:  ", img[16])
	fmt.Println("flushed+fenced:", img[24])
	// Output:
	// stored only:    0
	// flushed only:   0
	// flushed+fenced: 3
}
