// Package pmem simulates byte-addressable non-volatile memory with volatile
// caches, the substrate the FliT paper assumes (Intel Optane DC + Cascade
// Lake clwb/sfence in the original; a software model here).
//
// Memory is an array of 64-bit words grouped into cache lines of
// WordsPerLine words. All loads, stores and read-modify-write instructions
// operate on the volatile layer. A PWB ("persistent write-back", the
// paper's architecture-agnostic name for clwb/DC CVAP) enqueues the word's
// cache line into the issuing thread's write-back queue; a PFence drains
// that queue, copying the lines' current volatile contents into the
// persistent shadow. Upon a simulated crash the volatile layer is lost and
// the persistent image is materialized under a configurable CrashMode:
// lines that were written but never flushed+fenced may or may not have
// reached persistence (background cache evictions), exactly the hazard
// persistent algorithms must tolerate.
//
// Flush and fence latency is modeled with calibrated spin loops so that,
// as on real hardware, a PWB costs an order of magnitude more than a load
// and a PFence pays per distinct pending write-back (per-thread queues
// coalesce repeated flushes of one line, as cache coherence does). An
// optional virtual-clock mode (Config.VirtualClock) charges the same
// costs to a per-thread virtual-time counter instead of spinning, so
// runs that only need the modeled-cost ordering — crash tests, CI smoke
// matrices — skip the wall-clock burn entirely. Another optional mode
// reproduces the Cascade Lake clwb behaviour observed in the paper
// (§6.6): flushing a line also invalidates it, charging a miss penalty
// to the line's next access.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is a word index into simulated persistent memory. Addr 0 is reserved
// and acts as the nil pointer for offset-based data structures.
type Addr uint64

// NilAddr is the reserved null address.
const NilAddr Addr = 0

const (
	// LineShift is log2 of WordsPerLine.
	LineShift = 3
	// WordsPerLine is the cache line size in 64-bit words (64 bytes).
	WordsPerLine = 1 << LineShift
	// lineMask isolates the word-within-line bits of an address.
	lineMask = WordsPerLine - 1
)

// Line identifies a cache line (an aligned group of WordsPerLine words).
type Line uint64

// LineOf returns the cache line containing address a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// ErrCrashed is the panic value raised by crash injection. Worker
// goroutines run under RunToCrash (or their own recover) translate it into
// a clean stop; any other panic is re-raised.
var ErrCrashed = errors.New("pmem: simulated crash")

// CrashMode selects how un-fenced data behaves when a crash image is taken.
type CrashMode int

const (
	// DropUnfenced keeps only explicitly fenced write-backs: every line
	// that was dirty but not flushed+fenced is lost. The most adversarial
	// mode with respect to losing data.
	DropUnfenced CrashMode = iota
	// RandomSubset applies a random subset of pending write-backs and
	// additionally "evicts" (persists) a random subset of dirty lines,
	// modeling background cache evictions that persist data the program
	// never flushed. Whole lines persist atomically, as on hardware.
	RandomSubset
	// PersistAll persists the entire volatile state (eADR-like). Useful as
	// a control: every correct algorithm must also pass under it.
	PersistAll
)

func (m CrashMode) String() string {
	switch m {
	case DropUnfenced:
		return "drop-unfenced"
	case RandomSubset:
		return "random-subset"
	case PersistAll:
		return "persist-all"
	default:
		return fmt.Sprintf("CrashMode(%d)", int(m))
	}
}

// Config parameterizes a simulated memory.
type Config struct {
	// Words is the total number of 64-bit words (rounded up to a whole
	// number of cache lines). Word 0 is reserved as nil.
	Words int
	// PWBCost is the spin cost charged per PWB instruction.
	PWBCost int
	// PFenceCost is the base spin cost charged per PFence instruction.
	PFenceCost int
	// PFenceEntryCost is the additional spin cost per pending write-back
	// drained by a PFence.
	PFenceEntryCost int
	// VirtualClock, when true, accrues every latency cost to the issuing
	// thread's virtual-time counter (Thread.VirtualTime) instead of a
	// calibrated spin loop. Modeled-cost ordering is preserved — a run
	// that would spin longer accumulates more virtual time — but no
	// wall-clock CPU is burned, making latency-blind runs (crash tests,
	// CI smoke matrices) several times faster.
	VirtualClock bool
	// InvalidateOnPWB, when true, models the Cascade Lake clwb behaviour:
	// a PWB invalidates the line and the next access to it (by any thread)
	// pays MissCost. The paper attributes flit-adjacent's extra flushes in
	// Figure 9 to exactly this.
	InvalidateOnPWB bool
	// MissCost is the spin cost of the post-invalidation miss.
	MissCost int
}

// DefaultConfig returns a configuration whose latency ratios roughly track
// the paper's hardware: a flush is ~20-40x a cached load, and a fence on a
// non-empty write-back queue is more expensive still.
func DefaultConfig(words int) Config {
	return Config{
		Words:           words,
		PWBCost:         300,
		PFenceCost:      20, // an sfence with an empty write-back queue is nearly free
		PFenceEntryCost: 150,
		MissCost:        200,
	}
}

// Memory is a simulated persistent memory: a volatile word array backed by
// a persistent shadow. All instruction methods live on Thread; Memory
// carries the shared state and thread registry.
type Memory struct {
	cfg    Config
	words  []uint64 // volatile layer; accessed with sync/atomic
	shadow []uint64 // persistent layer; accessed with sync/atomic
	inval  []uint32 // per-line invalidation flags, nil unless configured

	// drainLock serializes write-backs of one line into the shadow. On
	// hardware, cache coherence gives each line a single owner, so an
	// older line value can never overwrite a newer one in memory; without
	// this lock two racing fence drains could interleave their
	// load-then-store copies and regress the shadow.
	drainLock []uint32

	crashArmed atomic.Bool

	// trace, when non-nil, records every fence-drained line (see
	// StartTrace). Attached/detached only while quiescent, like SetCosts.
	trace *Trace

	mu      sync.Mutex
	threads []*Thread // nil entries are released slots awaiting reuse
	freeIDs []int     // released thread IDs, reused LIFO by RegisterThread

	// retired accumulates the statistics and virtual-time high-water mark
	// of released threads, so TotalStats and MaxVirtualTime keep counting
	// work done by sessions that have since closed.
	retired      Stats
	retiredVTime uint64
}

// New creates a simulated memory of cfg.Words words. The persistent shadow
// starts equal to the (all-zero) volatile layer.
func New(cfg Config) *Memory {
	if cfg.Words < WordsPerLine {
		cfg.Words = WordsPerLine
	}
	// Round up to whole lines so line copies never run off the end.
	cfg.Words = (cfg.Words + lineMask) &^ lineMask
	m := &Memory{
		cfg:       cfg,
		words:     make([]uint64, cfg.Words),
		shadow:    make([]uint64, cfg.Words),
		drainLock: make([]uint32, cfg.Words/WordsPerLine),
	}
	if cfg.InvalidateOnPWB {
		m.inval = make([]uint32, cfg.Words/WordsPerLine)
	}
	return m
}

// NewFromImage creates a memory whose volatile and persistent layers both
// start from a crash image, modeling post-crash recovery: the system
// reboots and sees exactly the persisted bytes.
func NewFromImage(img []uint64, cfg Config) *Memory {
	cfg.Words = len(img)
	m := New(cfg)
	copy(m.words, img)
	copy(m.shadow, img)
	return m
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// SetCosts adjusts the latency model. Benchmark harnesses zero the costs
// during prefill so setup is not charged, then restore them for the
// measured run. Callers must be quiescent: the fields are read without
// synchronization on the instruction hot path.
func (m *Memory) SetCosts(pwb, pfence, pfenceEntry, miss int) {
	m.cfg.PWBCost = pwb
	m.cfg.PFenceCost = pfence
	m.cfg.PFenceEntryCost = pfenceEntry
	m.cfg.MissCost = miss
}

// MaxVirtualTime returns the largest virtual-time counter across all
// registered threads — the modeled makespan of a virtual-clock run.
func (m *Memory) MaxVirtualTime() uint64 {
	m.mu.Lock()
	max := m.retiredVTime
	m.mu.Unlock()
	for _, t := range m.Threads() {
		if t.vtime > max {
			max = t.vtime
		}
	}
	return max
}

// Words returns the number of addressable words.
func (m *Memory) Words() int { return len(m.words) }

// RegisterThread allocates a Thread handle. Every goroutine issuing memory
// instructions must own a distinct Thread: write-back queues and statistics
// are thread-local, mirroring per-core store buffers. Slots released by
// Thread.Release are reused, so a churn of short-lived sessions keeps the
// registry bounded by the peak concurrent thread count.
func (m *Memory) RegisterThread() *Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Thread{M: m, crashIn: -1}
	if n := len(m.freeIDs); n > 0 {
		t.ID = m.freeIDs[n-1]
		m.freeIDs = m.freeIDs[:n-1]
		m.threads[t.ID] = t
	} else {
		t.ID = len(m.threads)
		m.threads = append(m.threads, t)
	}
	return t
}

// Threads returns all live (registered and not released) threads.
func (m *Memory) Threads() []*Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Thread, 0, len(m.threads))
	for _, t := range m.threads {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Release returns the thread's registry slot for reuse by a future
// RegisterThread. Its statistics and virtual time are folded into the
// memory's retired accumulators, so TotalStats and MaxVirtualTime keep
// reporting the released thread's contribution. Any write-backs still
// pending in its queue are discarded — the same loss a crash at this
// point would inflict — so callers that need durability must fence
// before releasing. Release is idempotent; the thread must not issue
// instructions afterwards.
func (t *Thread) Release() {
	m := t.M
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.ID >= len(m.threads) || m.threads[t.ID] != t {
		return
	}
	m.retired.Add(&t.Stats)
	if t.vtime > m.retiredVTime {
		m.retiredVTime = t.vtime
	}
	m.threads[t.ID] = nil
	m.freeIDs = append(m.freeIDs, t.ID)
}

// ArmCrash makes every subsequent instrumented instruction panic with
// ErrCrashed. Workers running under RunToCrash stop at instruction
// granularity, leaving their un-fenced write-backs pending — exactly the
// state a real power failure would freeze.
func (m *Memory) ArmCrash() { m.crashArmed.Store(true) }

// CrashArmed reports whether a crash has been requested.
func (m *Memory) CrashArmed() bool { return m.crashArmed.Load() }

// DisarmCrash clears a previously armed crash (test helper).
func (m *Memory) DisarmCrash() { m.crashArmed.Store(false) }

// TotalStats sums the statistics of all live threads plus the retired
// contributions of released ones.
func (m *Memory) TotalStats() Stats {
	m.mu.Lock()
	s := m.retired
	m.mu.Unlock()
	for _, t := range m.Threads() {
		s.Add(&t.Stats)
	}
	return s
}

// ResetStats zeroes the statistics of all live threads and the retired
// accumulators. Callers must ensure no thread is concurrently issuing
// instructions.
func (m *Memory) ResetStats() {
	m.mu.Lock()
	m.retired = Stats{}
	m.retiredVTime = 0
	m.mu.Unlock()
	for _, t := range m.Threads() {
		t.Stats = Stats{}
		t.vtime = 0
	}
}

// RunToCrash invokes fn and converts an ErrCrashed panic into a normal
// return of true; any other panic propagates. It returns false if fn
// completed without crashing.
func RunToCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == ErrCrashed {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}
