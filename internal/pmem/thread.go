package pmem

import "sync/atomic"

// Stats counts the instructions a thread issued. Fields are written only by
// the owning thread; read them after the thread has stopped (or tolerate
// slightly stale values).
type Stats struct {
	Loads    uint64 // load instructions
	Stores   uint64 // store instructions
	RMWs     uint64 // CAS/FAA/Exchange instructions
	PWBs     uint64 // persistent write-backs issued
	PFences  uint64 // fences issued
	Drained  uint64 // pending write-backs drained by fences
	Misses   uint64 // post-invalidation misses charged (InvalidateOnPWB)
	Ops      uint64 // completed high-level operations (set by callers)
	FailedOp uint64 // crashed/aborted high-level operations (set by callers)
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.RMWs += o.RMWs
	s.PWBs += o.PWBs
	s.PFences += o.PFences
	s.Drained += o.Drained
	s.Misses += o.Misses
	s.Ops += o.Ops
	s.FailedOp += o.FailedOp
}

// PWBsPerOp returns the average number of PWB instructions per completed
// operation, the quantity Figure 9 of the paper reports.
func (s *Stats) PWBsPerOp() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.PWBs) / float64(s.Ops)
}

// Thread is a per-goroutine handle to the memory: it owns a write-back
// queue (the lines PWBed but not yet fenced), statistics, and crash
// injection state. A Thread must not be shared between goroutines.
type Thread struct {
	M     *Memory
	ID    int
	Stats Stats

	// wb holds the lines flushed since the last fence, coalesced so each
	// distinct line is pending at most once (as cache coherence
	// guarantees on hardware). A fence copies their then-current volatile
	// contents into the persistent shadow, matching hardware, where the
	// write-back reads the coherent line at drain time, not at clwb time.
	wb wbQueue

	// vtime accumulates modeled instruction latency when the memory runs
	// in virtual-clock mode (Config.VirtualClock); see charge.
	vtime uint64

	// crashIn, when >= 0, counts down instrumented instructions and
	// injects a crash when it reaches zero (deterministic crash points).
	crashIn int64

	// crashed is set (before the panic) when crash injection kills the
	// thread. Observers — the reclamation orphan rule — use it to tell a
	// handle whose owner provably unwound from one that is merely slow.
	crashed atomic.Bool
}

// charge applies a modeled latency cost: a calibrated spin by default,
// or — in virtual-clock mode — an addition to the thread's virtual-time
// counter, which preserves the relative cost ordering of runs without
// burning wall-clock CPU (crash tests and CI smoke runs never read a
// latency number, only the modeled ordering).
//
//flit:hotpath
func (t *Thread) charge(n int) {
	if n <= 0 {
		return
	}
	if t.M.cfg.VirtualClock {
		t.vtime += uint64(n)
		return
	}
	spin(n)
}

// VirtualTime returns the latency the thread has accumulated in
// virtual-clock mode (zero otherwise): the modeled time it would have
// spent spinning.
func (t *Thread) VirtualTime() uint64 { return t.vtime }

// SetCrashAfter arranges for the thread to crash (panic ErrCrashed) after n
// more CheckCrash calls. n < 0 disables the countdown.
func (t *Thread) SetCrashAfter(n int64) { t.crashIn = n }

// CheckCrash injects a crash if one is armed globally or the thread's
// countdown expired. Instrumented instruction wrappers (internal/core)
// call it once per instruction, so crashes land between — never inside —
// atomic memory instructions, as on real hardware.
//
//flit:hotpath
func (t *Thread) CheckCrash() {
	if t.crashIn >= 0 {
		if t.crashIn == 0 {
			t.crashIn = -1
			t.crashed.Store(true)
			panic(ErrCrashed)
		}
		t.crashIn--
	}
	if t.M.crashArmed.Load() {
		t.crashed.Store(true)
		panic(ErrCrashed)
	}
}

// Crashed reports whether crash injection has killed this thread. Once
// set, the owning goroutine has unwound (the flag is stored immediately
// before the ErrCrashed panic) and the thread never issues another
// instruction.
func (t *Thread) Crashed() bool { return t.crashed.Load() }

// touch charges the post-invalidation miss if the line was flushed under
// InvalidateOnPWB and nobody has re-fetched it yet.
//
//flit:hotpath
func (t *Thread) touch(a Addr) {
	m := t.M
	if m.inval == nil {
		return
	}
	l := LineOf(a)
	if atomic.LoadUint32(&m.inval[l]) != 0 && atomic.SwapUint32(&m.inval[l], 0) != 0 {
		t.Stats.Misses++
		t.charge(m.cfg.MissCost)
	}
}

// Load atomically reads the volatile value at a.
//
//flit:hotpath
func (t *Thread) Load(a Addr) uint64 {
	t.touch(a)
	t.Stats.Loads++
	return atomic.LoadUint64(&t.M.words[a])
}

// Store atomically writes v to the volatile value at a.
//
//flit:hotpath
func (t *Thread) Store(a Addr, v uint64) {
	t.touch(a)
	t.Stats.Stores++
	atomic.StoreUint64(&t.M.words[a], v)
}

// CAS atomically compares-and-swaps the volatile value at a.
//
//flit:hotpath
func (t *Thread) CAS(a Addr, old, new uint64) bool {
	t.touch(a)
	t.Stats.RMWs++
	return atomic.CompareAndSwapUint64(&t.M.words[a], old, new)
}

// FAA atomically adds delta to the volatile value at a and returns the
// previous value.
//
//flit:hotpath
func (t *Thread) FAA(a Addr, delta uint64) uint64 {
	t.touch(a)
	t.Stats.RMWs++
	return atomic.AddUint64(&t.M.words[a], delta) - delta
}

// Exchange atomically swaps the volatile value at a with v and returns the
// previous value.
//
//flit:hotpath
func (t *Thread) Exchange(a Addr, v uint64) uint64 {
	t.touch(a)
	t.Stats.RMWs++
	return atomic.SwapUint64(&t.M.words[a], v)
}

// PWB issues a persistent write-back of the cache line containing a. The
// line is queued on the thread's write-back queue; it becomes persistent
// only once a subsequent PFence drains it (or if a crash-time eviction
// happens to persist it under CrashMode RandomSubset).
//
//flit:hotpath
func (t *Thread) PWB(a Addr) {
	t.Stats.PWBs++
	l := LineOf(a)
	// Coalesce: a line already pending stays queued once, as the cache
	// would keep a single dirty copy. The PWB count above still records
	// every issued instruction.
	t.wb.add(l)
	m := t.M
	if m.inval != nil {
		atomic.StoreUint32(&m.inval[l], 1)
	}
	t.charge(m.cfg.PWBCost)
}

// PFence drains the thread's write-back queue: every distinct pending
// line's current volatile content is copied, word by word, into the
// persistent shadow — each line exactly once, however many PWBs targeted
// it. After PFence returns, everything the thread flushed is durable.
func (t *Thread) PFence() { t.drain() }

// Drain is the explicit batch-drain entry point for group commit: one
// fence (counted as a PFence) that persists every line flushed since the
// last fence, coalesced, and reports how many distinct lines it drained —
// the amortization a batching server wants to observe per committed
// batch. Semantically identical to PFence.
func (t *Thread) Drain() int { return t.drain() }

// LinePending reports whether the cache line containing a was flushed
// since the thread's last fence and is still awaiting its drain. Software
// that tracks its own flush window (the deferred batch skeleton in
// internal/core) uses it to elide PWB instructions that hardware would
// coalesce anyway: a pending line drains once, with its final contents,
// at the next fence.
func (t *Thread) LinePending(a Addr) bool { return t.wb.has(LineOf(a)) }

//flit:hotpath
func (t *Thread) drain() int {
	t.Stats.PFences++
	m := t.M
	n := len(t.wb.lines)
	tr := m.trace
	for _, l := range t.wb.lines {
		// Serialize per-line write-backs, as coherence does on hardware:
		// whichever drain runs second re-reads the volatile line, so the
		// shadow can only move forward.
		for !atomic.CompareAndSwapUint32(&m.drainLock[l], 0, 1) {
		}
		if tr != nil {
			tr.drain(t, l)
		} else {
			base := Addr(l) << LineShift
			for i := Addr(0); i < WordsPerLine; i++ {
				v := atomic.LoadUint64(&m.words[base+i])
				atomic.StoreUint64(&m.shadow[base+i], v)
			}
		}
		atomic.StoreUint32(&m.drainLock[l], 0)
	}
	t.wb.reset()
	t.Stats.Drained += uint64(n)
	t.charge(m.cfg.PFenceCost + n*m.cfg.PFenceEntryCost)
	return n
}

// PendingLines returns a copy of the thread's un-fenced write-back
// queue: the distinct pending lines in first-enqueue order (test and
// crash-image helper).
func (t *Thread) PendingLines() []Line {
	return append([]Line(nil), t.wb.lines...)
}
