package pmem

import (
	"math/rand"
	"sync/atomic"
)

// CrashImage materializes the persistent state that would survive a power
// failure at this instant. All registered threads must be stopped (crashed
// or quiescent); their un-fenced write-back queues are consumed according
// to mode. The returned slice is an independent copy safe to hand to
// NewFromImage.
//
// Under RandomSubset, two nondeterministic hardware effects are modeled
// with the seeded RNG: (1) each pending write-back independently may or may
// not have drained before the failure, and (2) each dirty line may have
// been evicted by the cache and persisted even though the program never
// flushed it. Both operate at whole-line granularity, as real caches do.
func (m *Memory) CrashImage(mode CrashMode, seed int64) []uint64 {
	img := make([]uint64, len(m.shadow))
	if mode == PersistAll {
		for i := range img {
			img[i] = atomic.LoadUint64(&m.words[i])
		}
		return img
	}
	for i := range img {
		img[i] = atomic.LoadUint64(&m.shadow[i])
	}
	if mode == DropUnfenced {
		return img
	}
	rng := rand.New(rand.NewSource(seed))
	copyLine := func(l Line) {
		base := Addr(l) << LineShift
		for i := Addr(0); i < WordsPerLine; i++ {
			img[base+i] = atomic.LoadUint64(&m.words[base+i])
		}
	}
	// (1) pending write-backs race the failure. The queue is coalesced —
	// each distinct line appears once — so a line gets exactly one coin
	// flip and persists atomically or not at all; it can never be
	// materialized twice divergently.
	for _, t := range m.Threads() {
		for _, l := range t.wb.lines {
			if rng.Intn(2) == 0 {
				copyLine(l)
			}
		}
	}
	// (2) background evictions persist a random subset of dirty lines.
	lines := len(m.words) / WordsPerLine
	for l := 0; l < lines; l++ {
		base := l << LineShift
		dirty := false
		for i := 0; i < WordsPerLine; i++ {
			if atomic.LoadUint64(&m.words[base+i]) != img[base+i] {
				dirty = true
				break
			}
		}
		if dirty && rng.Intn(2) == 0 {
			copyLine(Line(l))
		}
	}
	return img
}

// DirtyLines counts lines whose volatile content differs from the
// persistent shadow (test helper; threads should be quiescent).
func (m *Memory) DirtyLines() int {
	n := 0
	lines := len(m.words) / WordsPerLine
	for l := 0; l < lines; l++ {
		base := l << LineShift
		for i := 0; i < WordsPerLine; i++ {
			if atomic.LoadUint64(&m.words[base+i]) != atomic.LoadUint64(&m.shadow[base+i]) {
				n++
				break
			}
		}
	}
	return n
}

// PersistedWord reads a word from the persistent shadow (test helper).
func (m *Memory) PersistedWord(a Addr) uint64 {
	return atomic.LoadUint64(&m.shadow[a])
}

// VolatileWord reads a word from the volatile layer without a Thread
// (test and recovery helper).
func (m *Memory) VolatileWord(a Addr) uint64 {
	return atomic.LoadUint64(&m.words[a])
}

// SetVolatileWord overwrites a word in the volatile layer without a
// Thread and without instruction accounting. Test instrumentation only —
// the pheap free-poison hook uses it to stamp recycled blocks so a
// use-after-free dereference trips deterministically. The persistent
// shadow is untouched.
func (m *Memory) SetVolatileWord(a Addr, v uint64) {
	atomic.StoreUint64(&m.words[a], v)
}
