package pmem

import (
	"sync"
	"testing"
	"testing/quick"
)

func newMem(words int) *Memory {
	cfg := DefaultConfig(words)
	// Zero latency keeps unit tests fast; latency is benchmarked elsewhere.
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost, cfg.MissCost = 0, 0, 0, 0
	return New(cfg)
}

func TestWordsRoundedToLines(t *testing.T) {
	m := New(Config{Words: 1})
	if m.Words() != WordsPerLine {
		t.Fatalf("Words() = %d, want %d", m.Words(), WordsPerLine)
	}
	m = New(Config{Words: WordsPerLine + 1})
	if m.Words() != 2*WordsPerLine {
		t.Fatalf("Words() = %d, want %d", m.Words(), 2*WordsPerLine)
	}
}

func TestVolatileSemantics(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()

	th.Store(3, 42)
	if got := th.Load(3); got != 42 {
		t.Fatalf("Load(3) = %d, want 42", got)
	}
	if th.CAS(3, 41, 7) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !th.CAS(3, 42, 7) {
		t.Fatal("CAS with correct expected value failed")
	}
	if old := th.FAA(3, 5); old != 7 {
		t.Fatalf("FAA returned %d, want 7", old)
	}
	if got := th.Load(3); got != 12 {
		t.Fatalf("after FAA, Load(3) = %d, want 12", got)
	}
	if old := th.Exchange(3, 100); old != 12 {
		t.Fatalf("Exchange returned %d, want 12", old)
	}
	if got := th.Load(3); got != 100 {
		t.Fatalf("after Exchange, Load(3) = %d, want 100", got)
	}
}

func TestPWBWithoutFenceIsNotDurable(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.PWB(8)
	img := m.CrashImage(DropUnfenced, 1)
	if img[8] != 0 {
		t.Fatal("un-fenced PWB reached the persistent image under DropUnfenced")
	}
	th.PFence()
	img = m.CrashImage(DropUnfenced, 1)
	if img[8] != 1 {
		t.Fatal("fenced PWB missing from the persistent image")
	}
}

func TestFenceDrainsLineGranularity(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	// Two words on the same line; flushing either persists both.
	th.Store(8, 11)
	th.Store(9, 22)
	th.PWB(8)
	th.PFence()
	if m.PersistedWord(8) != 11 || m.PersistedWord(9) != 22 {
		t.Fatalf("line flush persisted (%d,%d), want (11,22)",
			m.PersistedWord(8), m.PersistedWord(9))
	}
}

func TestFenceTimeContentIsPersisted(t *testing.T) {
	// A write-back drains the line's content at fence time, so a store
	// between PWB and PFence is persisted too — and, crucially, the shadow
	// never regresses to a stale snapshot.
	m := newMem(64)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.PWB(8)
	th.Store(8, 2)
	th.PFence()
	if m.PersistedWord(8) != 2 {
		t.Fatalf("persisted %d, want fence-time value 2", m.PersistedWord(8))
	}
}

func TestCrashImageModes(t *testing.T) {
	m := newMem(128)
	th := m.RegisterThread()
	th.Store(8, 5)  // dirty, never flushed
	th.Store(16, 6) // flushed + fenced
	th.PWB(16)
	th.PFence()
	th.Store(24, 7) // flushed, not fenced
	th.PWB(24)

	drop := m.CrashImage(DropUnfenced, 1)
	if drop[8] != 0 || drop[16] != 6 || drop[24] != 0 {
		t.Fatalf("DropUnfenced image = (%d,%d,%d), want (0,6,0)", drop[8], drop[16], drop[24])
	}
	all := m.CrashImage(PersistAll, 1)
	if all[8] != 5 || all[16] != 6 || all[24] != 7 {
		t.Fatalf("PersistAll image = (%d,%d,%d), want (5,6,7)", all[8], all[16], all[24])
	}
	// RandomSubset must yield, per word, either the fenced value or the
	// volatile value, and the fenced word must always survive.
	for seed := int64(0); seed < 32; seed++ {
		img := m.CrashImage(RandomSubset, seed)
		if img[16] != 6 {
			t.Fatalf("seed %d: fenced word lost", seed)
		}
		if img[8] != 0 && img[8] != 5 {
			t.Fatalf("seed %d: img[8]=%d not in {0,5}", seed, img[8])
		}
		if img[24] != 0 && img[24] != 7 {
			t.Fatalf("seed %d: img[24]=%d not in {0,7}", seed, img[24])
		}
	}
	// With 32 seeds, both outcomes for the pending line should appear.
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 32; seed++ {
		seen[m.CrashImage(RandomSubset, seed)[24]] = true
	}
	if !seen[0] || !seen[7] {
		t.Fatalf("RandomSubset never varied pending line outcome: %v", seen)
	}
}

func TestNewFromImage(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	th.Store(8, 9)
	th.PWB(8)
	th.PFence()
	img := m.CrashImage(DropUnfenced, 1)

	m2 := NewFromImage(img, m.Config())
	th2 := m2.RegisterThread()
	if got := th2.Load(8); got != 9 {
		t.Fatalf("recovered Load(8) = %d, want 9", got)
	}
	if m2.PersistedWord(8) != 9 {
		t.Fatal("recovered shadow missing persisted word")
	}
}

func TestCrashInjectionCountdown(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	th.SetCrashAfter(2)
	steps := 0
	crashed := RunToCrash(func() {
		for i := 0; i < 10; i++ {
			th.CheckCrash()
			steps++
		}
	})
	if !crashed || steps != 2 {
		t.Fatalf("crashed=%v steps=%d, want true/2", crashed, steps)
	}
	// Countdown disarms itself after firing.
	if c := RunToCrash(func() { th.CheckCrash() }); c {
		t.Fatal("countdown fired twice")
	}
}

func TestCrashInjectionArmed(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	if RunToCrash(func() { th.CheckCrash() }) {
		t.Fatal("crashed while disarmed")
	}
	m.ArmCrash()
	if !RunToCrash(func() { th.CheckCrash() }) {
		t.Fatal("did not crash while armed")
	}
	m.DisarmCrash()
	if RunToCrash(func() { th.CheckCrash() }) {
		t.Fatal("crashed after disarm")
	}
}

func TestRunToCrashPropagatesOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	RunToCrash(func() { panic("boom") })
}

func TestStatsCounting(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.Load(8)
	th.CAS(8, 1, 2)
	th.FAA(8, 1)
	th.Exchange(8, 5)
	th.PWB(8)
	th.PWB(16)
	th.PFence()
	s := m.TotalStats()
	if s.Loads != 1 || s.Stores != 1 || s.RMWs != 3 || s.PWBs != 2 || s.PFences != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Drained != 2 {
		t.Fatalf("Drained = %d, want 2", s.Drained)
	}
	m.ResetStats()
	if s := m.TotalStats(); s.Loads != 0 || s.PWBs != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

func TestAdjacentDuplicatePWBSuppression(t *testing.T) {
	m := newMem(64)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.PWB(8)
	th.PWB(9) // same line, back to back: queue should not grow
	if got := len(th.PendingLines()); got != 1 {
		t.Fatalf("pending = %d lines, want 1", got)
	}
	if th.Stats.PWBs != 2 {
		t.Fatalf("PWBs = %d, want 2 (suppression must not hide the count)", th.Stats.PWBs)
	}
}

func TestInvalidateOnPWBChargesOneMiss(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost, cfg.MissCost = 0, 0, 0, 0
	cfg.InvalidateOnPWB = true
	m := New(cfg)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.PWB(8)
	th.Load(8) // first access after flush: miss
	th.Load(8) // second: hit
	if th.Stats.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", th.Stats.Misses)
	}
	th.PWB(8)
	th.Store(9, 2) // same line, store also pays the miss
	if th.Stats.Misses != 2 {
		t.Fatalf("Misses = %d, want 2", th.Stats.Misses)
	}
}

func TestDirtyLines(t *testing.T) {
	m := newMem(256)
	th := m.RegisterThread()
	if m.DirtyLines() != 0 {
		t.Fatal("fresh memory has dirty lines")
	}
	th.Store(8, 1)
	th.Store(64, 1)
	if m.DirtyLines() != 2 {
		t.Fatalf("DirtyLines = %d, want 2", m.DirtyLines())
	}
	th.PWB(8)
	th.PFence()
	if m.DirtyLines() != 1 {
		t.Fatalf("after flush, DirtyLines = %d, want 1", m.DirtyLines())
	}
}

// TestQuickVolatileMatchesReference runs random instruction sequences and
// checks the volatile layer behaves like a plain map of words.
func TestQuickVolatileMatchesReference(t *testing.T) {
	f := func(prog []uint16) bool {
		m := newMem(256)
		th := m.RegisterThread()
		ref := make(map[Addr]uint64)
		for i, ins := range prog {
			a := Addr(8 + ins%200)
			v := uint64(i + 1)
			switch ins % 5 {
			case 0:
				th.Store(a, v)
				ref[a] = v
			case 1:
				if th.Load(a) != ref[a] {
					return false
				}
			case 2:
				if th.CAS(a, ref[a], v) {
					ref[a] = v
				} else {
					return false // CAS with the true current value must succeed
				}
			case 3:
				if th.FAA(a, 3) != ref[a] {
					return false
				}
				ref[a] += 3
			case 4:
				if th.Exchange(a, v) != ref[a] {
					return false
				}
				ref[a] = v
			}
		}
		for a, v := range ref {
			if th.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashImageSoundness: every word of every crash image equals
// either the last fenced value or some value the word actually held.
func TestQuickCrashImageSoundness(t *testing.T) {
	f := func(stores []uint8, seed int64) bool {
		m := newMem(128)
		th := m.RegisterThread()
		written := make(map[Addr]map[uint64]bool)
		note := func(a Addr, v uint64) {
			if written[a] == nil {
				written[a] = map[uint64]bool{0: true}
			}
			written[a][v] = true
		}
		for i, s := range stores {
			a := Addr(8 + s%100)
			v := uint64(i + 1)
			th.Store(a, v)
			note(a, v)
			switch s % 3 {
			case 1:
				th.PWB(a)
			case 2:
				th.PWB(a)
				th.PFence()
			}
		}
		for _, mode := range []CrashMode{DropUnfenced, RandomSubset, PersistAll} {
			img := m.CrashImage(mode, seed)
			for a, vals := range written {
				if !vals[img[a]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSmoke exercises the substrate under the race detector:
// threads hammer overlapping lines with stores, flushes and fences.
func TestConcurrentSmoke(t *testing.T) {
	m := newMem(1024)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := m.RegisterThread()
		wg.Add(1)
		go func(th *Thread, w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a := Addr(8 + (i*7+w)%512)
				th.Store(a, uint64(w*1_000_000+i))
				th.PWB(a)
				if i%8 == 0 {
					th.PFence()
				}
				th.Load(Addr(8 + (i*13+w)%512))
				th.CAS(Addr(8+w), uint64(i), uint64(i+1))
				th.FAA(600, 1)
			}
			th.PFence()
		}(th, w)
	}
	wg.Wait()
	th := m.RegisterThread()
	if got := th.Load(600); got != workers*2000 {
		t.Fatalf("FAA total = %d, want %d", got, workers*2000)
	}
	// Every fenced word must match volatile now that all threads fenced
	// everything they flushed... only guaranteed for the FAA word if it was
	// flushed; just sanity-check the image machinery doesn't explode.
	img := m.CrashImage(RandomSubset, 42)
	if len(img) != m.Words() {
		t.Fatalf("image size %d, want %d", len(img), m.Words())
	}
}

// TestShadowNeverRegresses is the regression test for the drain-lock: a
// monotonically increasing word, flushed and fenced by racing threads,
// must never move backwards in the persistent shadow (hardware coherence
// serializes per-line write-backs; the simulator must too).
func TestShadowNeverRegresses(t *testing.T) {
	m := newMem(64)
	const a = Addr(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		th := m.RegisterThread()
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				th.FAA(a, 1)
				th.PWB(a)
				th.PFence()
			}
		}(th)
	}
	last := uint64(0)
	for i := 0; i < 200_000; i++ {
		v := m.PersistedWord(a)
		if v < last {
			close(stop)
			wg.Wait()
			t.Fatalf("shadow regressed: %d after %d", v, last)
		}
		last = v
	}
	close(stop)
	wg.Wait()
}
