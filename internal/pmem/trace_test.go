package pmem

import (
	"sync"
	"sync/atomic"
	"testing"
)

func testClock() func() int64 {
	var c int64
	return func() int64 { return atomic.AddInt64(&c, 1) }
}

// TestTraceRecordsFenceDrains: each PFence contributes one record per
// distinct pending line, stamped in order, grouped by (thread, epoch), and
// carrying the values that reached the shadow.
func TestTraceRecordsFenceDrains(t *testing.T) {
	m := New(Config{Words: 1 << 10})
	th := m.RegisterThread()
	tr := m.StartTrace(testClock())

	a1, a2 := Addr(64), Addr(64+WordsPerLine) // two distinct lines
	th.Store(a1, 11)
	th.PWB(a1)
	th.Store(a2, 22)
	th.PWB(a2)
	th.PWB(a1) // coalesces: still one record for a1's line
	th.PFence()

	th.Store(a1, 33)
	th.PWB(a1)
	th.PFence()
	m.StopTrace()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	if recs[0].Line != LineOf(a1) || recs[1].Line != LineOf(a2) || recs[2].Line != LineOf(a1) {
		t.Fatalf("unexpected line order: %+v", recs)
	}
	if recs[0].Words[0] != 11 || recs[2].Words[0] != 33 {
		t.Fatalf("captured words wrong: %+v", recs)
	}
	if recs[0].Epoch != recs[1].Epoch {
		t.Fatalf("one fence must share an epoch: %+v", recs)
	}
	if recs[2].Epoch == recs[0].Epoch {
		t.Fatalf("distinct fences must have distinct epochs: %+v", recs)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Stamp <= recs[i-1].Stamp {
			t.Fatalf("stamps not strictly increasing: %+v", recs)
		}
	}
}

// TestTracePrefixReplay: replaying every prefix of the trace onto the base
// image walks the shadow through exactly its historical states; the full
// replay equals the final shadow.
func TestTracePrefixReplay(t *testing.T) {
	m := New(Config{Words: 1 << 10})
	th := m.RegisterThread()
	base := m.CrashImage(DropUnfenced, 0)
	tr := m.StartTrace(testClock())

	for i := 0; i < 20; i++ {
		a := Addr(WordsPerLine * (1 + i%5))
		th.Store(a, uint64(100+i))
		th.PWB(a)
		if i%3 == 0 {
			th.PFence()
		}
	}
	th.PFence()
	m.StopTrace()

	img := append([]uint64(nil), base...)
	for _, r := range tr.Records() {
		ApplyRecord(img, r)
	}
	for i := range img {
		if img[i] != m.PersistedWord(Addr(i)) {
			t.Fatalf("full replay diverges from shadow at word %d: %d != %d",
				i, img[i], m.PersistedWord(Addr(i)))
		}
	}
}

// TestTraceConcurrentDrains: concurrent fences serialize through the trace
// lock; the record sequence stays stamp-ordered and complete (run with
// -race to check the locking).
func TestTraceConcurrentDrains(t *testing.T) {
	m := New(Config{Words: 1 << 12})
	tr := m.StartTrace(testClock())
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.RegisterThread()
			for i := 0; i < 50; i++ {
				a := Addr(WordsPerLine * (1 + (w*50+i)%16))
				th.Store(a, uint64(w*1000+i))
				th.PWB(a)
				th.PFence()
			}
		}(w)
	}
	wg.Wait()
	m.StopTrace()

	recs := tr.Records()
	if len(recs) != workers*50 {
		t.Fatalf("got %d records, want %d", len(recs), workers*50)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Stamp <= recs[i-1].Stamp {
			t.Fatalf("records out of stamp order at %d", i)
		}
	}
}
