package pmem

import "math/bits"

// wbQueue is a per-thread line-coalescing write-back queue: the set of
// cache lines PWBed since the last fence, each recorded exactly once in
// first-enqueue order. Hardware gives the same guarantee for free —
// coherence lets a line be dirty in at most one cache, so repeated clwb
// of the same line queues one write-back — and the simulator matches it:
// a fence drains each distinct line exactly once, no matter how many
// times (or in what interleaving) the thread flushed it.
//
// Membership is tracked by an open-addressed, epoch-stamped hash table:
// resetting the queue bumps the epoch instead of zeroing the slots, so
// a fence costs O(distinct lines) with no per-fence table clearing, and
// both the order buffer and the slot table are reused across fences.
// The queue allocates only when it grows past its high-water mark —
// steady-state PWB/PFence traffic is allocation-free.
type wbQueue struct {
	lines []Line   // distinct pending lines, first-enqueue order
	slots []wbSlot // open-addressed dedup table, power-of-two size
	shift uint     // 64 - log2(len(slots)): hash-to-index shift
	epoch uint32   // current generation; any other stamp marks a free slot
}

// wbSlot is one dedup-table entry; it is live only while its epoch
// matches the queue's.
type wbSlot struct {
	line  Line
	epoch uint32
}

// wbMinSlots is the initial dedup-table size (power of two). 64 slots
// cover 32 distinct pending lines before the first grow — larger than
// any fence window the instrumented policies produce in practice.
const wbMinSlots = 64

// init sizes the dedup table (n must be a power of two). pmem sits below
// core in the import graph, so the sizing math is spelled out here
// rather than through core.Pow2Sizing.
func (q *wbQueue) init(n int) {
	q.slots = make([]wbSlot, n)
	q.shift = 64 - uint(bits.Len(uint(n-1)))
	q.epoch = 1
}

// hash spreads lines over slot indices (Fibonacci hashing; the top bits
// of the product are the well-mixed ones, so index by shifting, not
// masking).
//
//flit:hotpath
func (q *wbQueue) hash(l Line) uint {
	return uint((uint64(l) * 0x9E3779B97F4A7C15) >> q.shift)
}

// add enqueues l if it is not already pending and reports whether it was
// newly enqueued.
//
//flit:hotpath
func (q *wbQueue) add(l Line) bool {
	if q.slots == nil {
		q.init(wbMinSlots)
	}
	mask := uint(len(q.slots) - 1)
	for i := q.hash(l); ; i = (i + 1) & mask {
		s := &q.slots[i]
		if s.epoch != q.epoch { // free (stale or never used): claim it
			s.line, s.epoch = l, q.epoch
			q.lines = append(q.lines, l)
			if len(q.lines)*2 >= len(q.slots) {
				q.grow()
			}
			return true
		}
		if s.line == l { // already pending: coalesce
			return false
		}
	}
}

// has reports whether l is pending (flushed since the last fence).
//
//flit:hotpath
func (q *wbQueue) has(l Line) bool {
	if q.slots == nil || len(q.lines) == 0 {
		return false
	}
	mask := uint(len(q.slots) - 1)
	for i := q.hash(l); ; i = (i + 1) & mask {
		s := &q.slots[i]
		if s.epoch != q.epoch {
			return false
		}
		if s.line == l {
			return true
		}
	}
}

// grow doubles the dedup table, re-inserting the pending lines. The
// order buffer is untouched.
func (q *wbQueue) grow() {
	lines := q.lines
	q.init(2 * len(q.slots))
	mask := uint(len(q.slots) - 1)
	for _, l := range lines {
		for i := q.hash(l); ; i = (i + 1) & mask {
			if s := &q.slots[i]; s.epoch != q.epoch {
				s.line, s.epoch = l, q.epoch
				break
			}
		}
	}
}

// reset empties the queue in O(1): the order buffer is truncated for
// reuse and the epoch bump frees every slot at once. On the (once per
// 2^32 fences) epoch wrap the table is cleared eagerly, so stale slots
// from a previous life of the same epoch value can never alias.
func (q *wbQueue) reset() {
	q.lines = q.lines[:0]
	q.epoch++
	if q.epoch == 0 {
		for i := range q.slots {
			q.slots[i] = wbSlot{}
		}
		q.epoch = 1
	}
}
