package pmem

import (
	"testing"
	"testing/quick"
)

// TestPWBCoalescesDuplicates: the write-back queue holds each distinct
// line once, whether the duplicate flushes are adjacent or interleaved
// with other lines, and PendingLines reports first-enqueue order.
func TestPWBCoalescesDuplicates(t *testing.T) {
	m := newMem(256)
	th := m.RegisterThread()
	th.PWB(8)   // line 1
	th.PWB(64)  // line 8
	th.PWB(9)   // line 1 again, non-adjacent in issue order
	th.PWB(128) // line 16
	th.PWB(64)  // line 8 again
	got := th.PendingLines()
	want := []Line{1, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("PendingLines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PendingLines = %v, want %v (first-enqueue order)", got, want)
		}
	}
	if th.Stats.PWBs != 5 {
		t.Fatalf("PWBs = %d, want 5 (coalescing must not hide the instruction count)", th.Stats.PWBs)
	}
}

// TestFenceDrainsEachLineOnce: Drained counts distinct lines, not issued
// PWBs, and the queue is reusable after the fence.
func TestFenceDrainsEachLineOnce(t *testing.T) {
	m := newMem(256)
	th := m.RegisterThread()
	for i := 0; i < 10; i++ {
		th.Store(8, uint64(i))
		th.PWB(8)
		th.PWB(64)
	}
	th.PFence()
	if th.Stats.Drained != 2 {
		t.Fatalf("Drained = %d, want 2 (one per distinct line)", th.Stats.Drained)
	}
	if m.PersistedWord(8) != 9 || m.PersistedWord(64) != 0 {
		t.Fatalf("persisted (%d,%d), want (9,0)", m.PersistedWord(8), m.PersistedWord(64))
	}
	// The epoch bump must actually free the slots: the same lines are
	// enqueueable again in the next fence window.
	th.PWB(8)
	if got := len(th.PendingLines()); got != 1 {
		t.Fatalf("re-enqueue after fence: pending = %d lines, want 1", got)
	}
	th.PFence()
	if th.Stats.Drained != 3 {
		t.Fatalf("Drained = %d, want 3", th.Stats.Drained)
	}
}

// TestQueueGrowsPastHighWaterMark: enqueueing far more distinct lines
// than the initial table holds keeps the dedup exact through the grows.
func TestQueueGrowsPastHighWaterMark(t *testing.T) {
	m := newMem(64 * 1024)
	th := m.RegisterThread()
	const lines = 1000
	for pass := 0; pass < 2; pass++ { // second pass: every add a duplicate
		for l := 0; l < lines; l++ {
			th.PWB(Addr(l * WordsPerLine))
		}
		if got := len(th.PendingLines()); got != lines {
			t.Fatalf("pass %d: pending = %d lines, want %d", pass, got, lines)
		}
	}
	th.PFence()
	if th.Stats.Drained != lines {
		t.Fatalf("Drained = %d, want %d", th.Stats.Drained, lines)
	}
}

// TestQueueEpochWrap: when the epoch counter wraps, the table must be
// cleared — otherwise slots stamped in a previous life of the same epoch
// value would falsely report lines as pending.
func TestQueueEpochWrap(t *testing.T) {
	m := newMem(256)
	th := m.RegisterThread()
	th.PWB(8)
	th.PFence()
	th.wb.epoch = ^uint32(0) // next reset wraps
	th.PWB(8)
	th.PFence()
	th.PWB(8) // must still be enqueueable post-wrap
	if got := len(th.PendingLines()); got != 1 {
		t.Fatalf("post-wrap pending = %d lines, want 1", got)
	}
	if th.wb.epoch == 0 {
		t.Fatal("epoch 0 is the free-slot stamp and must never be current")
	}
}

// TestRandomSubsetLineAtomicOverCoalescedQueue: a line PWBed several
// times with stores in between gets one coin flip per crash image — the
// image shows either the fenced state or the crash-time volatile line,
// whole-line atomically, never a mix of intermediate values.
func TestRandomSubsetLineAtomicOverCoalescedQueue(t *testing.T) {
	m := newMem(256)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.Store(9, 1)
	th.PWB(8)
	th.PFence() // fenced state: (1, 1)
	th.Store(8, 2)
	th.PWB(8)
	th.Store(9, 2)
	th.PWB(9) // same line, pending once
	th.Store(8, 3)
	th.Store(9, 3) // crash-time volatile state: (3, 3)
	for seed := int64(0); seed < 64; seed++ {
		img := m.CrashImage(RandomSubset, seed)
		a, b := img[8], img[9]
		if !(a == 1 && b == 1) && !(a == 3 && b == 3) {
			t.Fatalf("seed %d: image (%d,%d) is neither the fenced (1,1) nor the volatile (3,3) line",
				seed, a, b)
		}
	}
	// Both outcomes must occur across seeds.
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 64; seed++ {
		seen[m.CrashImage(RandomSubset, seed)[8]] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("RandomSubset never varied the coalesced line's outcome: %v", seen)
	}
}

// TestQuickQueueMatchesReferenceSet: random add/reset sequences against
// a map-based reference model.
func TestQuickQueueMatchesReferenceSet(t *testing.T) {
	f := func(ops []uint16) bool {
		var q wbQueue
		ref := make(map[Line]bool)
		var order []Line
		for _, op := range ops {
			if op%17 == 0 {
				q.reset()
				ref = make(map[Line]bool)
				order = order[:0]
				continue
			}
			l := Line(op % 97)
			fresh := q.add(l)
			if fresh == ref[l] {
				return false // add must report exactly "not seen this window"
			}
			if fresh {
				ref[l] = true
				order = append(order, l)
			}
		}
		if len(q.lines) != len(order) {
			return false
		}
		for i, l := range order {
			if q.lines[i] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualClockAccrues: in virtual-clock mode the configured costs
// accumulate on the issuing thread's counter instead of spinning.
func TestVirtualClockAccrues(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.VirtualClock = true
	m := New(cfg)
	th := m.RegisterThread()
	th.Store(8, 1)
	th.PWB(8)
	want := uint64(cfg.PWBCost)
	if th.VirtualTime() != want {
		t.Fatalf("after PWB, VirtualTime = %d, want %d", th.VirtualTime(), want)
	}
	th.PFence() // one pending line
	want += uint64(cfg.PFenceCost + cfg.PFenceEntryCost)
	if th.VirtualTime() != want {
		t.Fatalf("after PFence, VirtualTime = %d, want %d", th.VirtualTime(), want)
	}
	th.PFence() // empty queue: base fence cost only
	want += uint64(cfg.PFenceCost)
	if th.VirtualTime() != want {
		t.Fatalf("after empty PFence, VirtualTime = %d, want %d", th.VirtualTime(), want)
	}
	if m.MaxVirtualTime() != want {
		t.Fatalf("MaxVirtualTime = %d, want %d", m.MaxVirtualTime(), want)
	}
	m.ResetStats()
	if th.VirtualTime() != 0 {
		t.Fatal("ResetStats must clear virtual time")
	}
}

// TestVirtualClockPreservesDurability: latency accounting must not leak
// into persistence semantics — fenced data is durable either way.
func TestVirtualClockPreservesDurability(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.VirtualClock = true
	m := New(cfg)
	th := m.RegisterThread()
	th.Store(8, 42)
	th.PWB(8)
	th.PFence()
	if img := m.CrashImage(DropUnfenced, 1); img[8] != 42 {
		t.Fatalf("virtual-clock fenced word = %d, want 42", img[8])
	}
	// Miss charging under InvalidateOnPWB accrues virtually too.
	cfg2 := DefaultConfig(256)
	cfg2.VirtualClock = true
	cfg2.InvalidateOnPWB = true
	m2 := New(cfg2)
	th2 := m2.RegisterThread()
	th2.Store(8, 1)
	th2.PWB(8)
	before := th2.VirtualTime()
	th2.Load(8)
	if th2.VirtualTime() != before+uint64(cfg2.MissCost) {
		t.Fatalf("miss charged %d virtual units, want %d", th2.VirtualTime()-before, cfg2.MissCost)
	}
}

// TestLinePendingAndDrain covers the group-commit entry points: pending
// membership tracks PWB/fence, and Drain is a counted fence reporting
// the coalesced line count.
func TestLinePendingAndDrain(t *testing.T) {
	m := New(DefaultConfig(1 << 10))
	th := m.RegisterThread()
	a, b := Addr(64), Addr(128)
	if th.LinePending(a) {
		t.Fatal("fresh thread reports a pending line")
	}
	th.Store(a, 1)
	th.Store(a+1, 2)
	th.Store(b, 3)
	th.PWB(a)
	th.PWB(a + 1) // same line: coalesced
	th.PWB(b)
	if !th.LinePending(a) || !th.LinePending(a+1) || !th.LinePending(b) {
		t.Fatal("flushed lines not reported pending")
	}
	if th.LinePending(a + WordsPerLine) {
		t.Fatal("untouched line reported pending")
	}
	if n := th.Drain(); n != 2 {
		t.Fatalf("Drain returned %d lines, want 2", n)
	}
	if th.LinePending(a) || th.LinePending(b) {
		t.Fatal("lines still pending after Drain")
	}
	if th.Stats.PFences != 1 {
		t.Fatalf("Drain counted %d fences, want 1", th.Stats.PFences)
	}
	if m.PersistedWord(a) != 1 || m.PersistedWord(a+1) != 2 || m.PersistedWord(b) != 3 {
		t.Fatal("Drain did not persist the pending lines")
	}
}
