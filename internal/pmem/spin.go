package pmem

import "sync/atomic"

// spinSink defeats dead-code elimination of the latency loops.
var spinSink uint64

// spin burns roughly n iterations of register-only work, modeling
// instruction latency (flush, fence, post-invalidation miss) without
// touching shared state. n <= 0 is free.
func spin(n int) {
	if n <= 0 {
		return
	}
	x := uint64(n) | 1
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	atomic.StoreUint64(&spinSink, x)
}
