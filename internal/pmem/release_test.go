package pmem

import "testing"

// TestThreadReleaseBoundsRegistry is the thread-leak regression test: N
// register→work→release cycles must not grow the live thread registry —
// released slots are reused — while TotalStats and MaxVirtualTime keep
// counting the released threads' contributions.
func TestThreadReleaseBoundsRegistry(t *testing.T) {
	cfg := DefaultConfig(1 << 10)
	cfg.VirtualClock = true
	m := New(cfg)

	const cycles = 100
	var wantStores, wantPWBs uint64
	for i := 0; i < cycles; i++ {
		th := m.RegisterThread()
		th.Store(8, uint64(i))
		th.PWB(8)
		th.PFence()
		wantStores++
		wantPWBs++
		th.Release()
	}
	if n := len(m.Threads()); n != 0 {
		t.Fatalf("live threads after %d register/release cycles: %d, want 0", cycles, n)
	}

	st := m.TotalStats()
	if st.Stores != wantStores || st.PWBs != wantPWBs || st.PFences != wantPWBs {
		t.Fatalf("TotalStats lost released threads: stores=%d pwbs=%d pfences=%d, want %d/%d/%d",
			st.Stores, st.PWBs, st.PFences, wantStores, wantPWBs, wantPWBs)
	}
	if m.MaxVirtualTime() == 0 {
		t.Fatal("MaxVirtualTime dropped released threads' virtual time")
	}

	// Slot reuse: interleaved live threads keep their slots; new
	// registrations fill freed IDs before growing the table.
	a, b := m.RegisterThread(), m.RegisterThread()
	b.Release()
	c := m.RegisterThread()
	if c.ID != b.ID {
		t.Fatalf("released slot %d not reused: new thread got %d", b.ID, c.ID)
	}
	if got := len(m.Threads()); got != 2 {
		t.Fatalf("live threads: %d, want 2", got)
	}
	a.Release()
	c.Release()
}

// TestThreadReleaseIdempotent guards the double-release and
// stale-slot-owner cases: releasing twice, or releasing after the slot
// was reassigned, must not disturb the new owner.
func TestThreadReleaseIdempotent(t *testing.T) {
	m := New(DefaultConfig(1 << 10))
	a := m.RegisterThread()
	a.Release()
	b := m.RegisterThread() // takes a's slot
	a.Release()             // stale release: must not evict b
	if n := len(m.Threads()); n != 1 {
		t.Fatalf("live threads after stale release: %d, want 1", n)
	}
	if m.Threads()[0] != b {
		t.Fatal("stale Release evicted the slot's new owner")
	}
	b.Release()
}

// TestResetStatsClearsRetired: ResetStats must also zero the retired
// accumulators, or released-thread history would leak into post-reset
// measurements.
func TestResetStatsClearsRetired(t *testing.T) {
	m := New(DefaultConfig(1 << 10))
	th := m.RegisterThread()
	th.Store(8, 1)
	th.Release()
	m.ResetStats()
	if st := m.TotalStats(); st.Stores != 0 {
		t.Fatalf("retired stats survived ResetStats: %+v", st)
	}
}
