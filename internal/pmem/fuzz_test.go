package pmem

import "testing"

// FuzzInstructionSequences drives arbitrary single-threaded instruction
// programs: the volatile layer must match a reference map, every crash
// image must be per-word explainable, and nothing may panic.
func FuzzInstructionSequences(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, int64(1))
	f.Add([]byte{5, 4, 3, 2, 1, 0}, int64(42))
	f.Fuzz(func(t *testing.T, prog []byte, seed int64) {
		if len(prog) > 256 {
			prog = prog[:256]
		}
		m := newMem(512)
		th := m.RegisterThread()
		ref := make(map[Addr]uint64)
		written := make(map[Addr]map[uint64]bool)
		note := func(a Addr, v uint64) {
			if written[a] == nil {
				written[a] = map[uint64]bool{0: true}
			}
			written[a][v] = true
		}
		for i, b := range prog {
			a := Addr(8 + uint64(b)%400)
			v := uint64(i + 1)
			switch b % 6 {
			case 0:
				th.Store(a, v)
				ref[a] = v
				note(a, v)
			case 1:
				if th.Load(a) != ref[a] {
					t.Fatalf("load mismatch at %d", a)
				}
			case 2:
				if th.CAS(a, ref[a], v) {
					ref[a] = v
					note(a, v)
				} else {
					t.Fatalf("CAS with current value failed at %d", a)
				}
			case 3:
				th.FAA(a, 3)
				ref[a] += 3
				note(a, ref[a])
			case 4:
				th.PWB(a)
			case 5:
				th.PFence()
			}
		}
		for a, v := range ref {
			if th.Load(a) != v {
				t.Fatalf("final volatile mismatch at %d", a)
			}
		}
		for _, mode := range []CrashMode{DropUnfenced, RandomSubset, PersistAll} {
			img := m.CrashImage(mode, seed)
			for a, vals := range written {
				if !vals[img[a]] {
					t.Fatalf("mode %v: image[%d]=%d never written", mode, a, img[a])
				}
			}
		}
	})
}
