package pmem

import (
	"sync"
	"sync/atomic"
)

// PersistRecord is one line write-back drained into the persistent shadow:
// the unit of the durable-linearizability checker's crash-point model.
// Applying a prefix of a trace's records to the trace's base image yields
// exactly the persistent state a power failure at that boundary would have
// left behind (under DropUnfenced semantics — pending, never-fenced
// write-backs are lost).
type PersistRecord struct {
	// Thread is the ID of the thread whose PFence drained the line.
	Thread int
	// Epoch is the thread's write-back-queue generation at drain time: all
	// records of one fence share (Thread, Epoch), so distinct persist
	// points (fences) are recoverable from a flat line-granular trace.
	Epoch uint32
	// Line is the drained cache line.
	Line Line
	// Words are the values copied into the persistent shadow.
	Words [WordsPerLine]uint64
	// Stamp is drawn from the trace clock immediately *before* the shadow
	// write, under the trace lock. Consequences for checkers: (1) records
	// sorted by Stamp are in true shadow-write order, and (2) any event
	// stamped after a record's Stamp is causally after the trace lock was
	// taken, so an operation whose response stamp exceeds a record's stamp
	// cannot have completed before that record's persist began. Both are
	// what makes prefix images sound crash states to check completed
	// operations against.
	Stamp int64
}

// Trace accumulates the persist-line events of one recorded execution.
// While a trace is attached (StartTrace), every fence drain is serialized
// through the trace lock — tracing trades drain parallelism for a total
// order, which is what makes prefix replay exact. Detach with StopTrace
// before measuring anything.
type Trace struct {
	mu   sync.Mutex
	now  func() int64
	recs []PersistRecord
}

// StartTrace attaches a persist tracer to the memory and returns it. now
// supplies stamps and must be a strictly increasing shared clock — the
// durable-linearizability checker passes the same hist.Clock its history
// recorders stamp against, so persist events and operation
// invocations/responses land in one total order.
//
// Like SetCosts, attachment is unsynchronized: callers must be quiescent
// (no thread issuing instructions) when starting or stopping a trace.
// Worker goroutines started after StartTrace observe it via the usual
// go-statement happens-before edge.
func (m *Memory) StartTrace(now func() int64) *Trace {
	tr := &Trace{now: now}
	m.trace = tr
	return tr
}

// StopTrace detaches the tracer (callers quiescent, as for StartTrace).
// The Trace remains readable afterwards.
func (m *Memory) StopTrace() { m.trace = nil }

// drain performs one traced line write-back: stamp, copy volatile→shadow,
// record — all under the trace lock (and the caller's per-line drainLock),
// so the record sequence is the exact global shadow-write order.
func (tr *Trace) drain(t *Thread, l Line) {
	m := t.M
	tr.mu.Lock()
	r := PersistRecord{Thread: t.ID, Epoch: t.wb.epoch, Line: l, Stamp: tr.now()}
	base := Addr(l) << LineShift
	for i := Addr(0); i < WordsPerLine; i++ {
		v := atomic.LoadUint64(&m.words[base+i])
		atomic.StoreUint64(&m.shadow[base+i], v)
		r.Words[i] = v
	}
	tr.recs = append(tr.recs, r)
	tr.mu.Unlock()
}

// Records returns a copy of the recorded persist events, in shadow-write
// (and Stamp) order.
func (tr *Trace) Records() []PersistRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]PersistRecord(nil), tr.recs...)
}

// Len returns the number of recorded persist events.
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.recs)
}

// ApplyRecord replays one persist event onto a crash image (a word slice
// as returned by CrashImage): the image after applying records 0..k-1 of
// a trace to its base image is the persistent state of a crash between
// record k-1 and record k.
func ApplyRecord(img []uint64, r PersistRecord) {
	base := Addr(r.Line) << LineShift
	copy(img[base:base+WordsPerLine], r.Words[:])
}
