// Package dlcheck is the durable-linearizability checking subsystem: it
// verifies the repository's core claim — that an operation which responded
// before a crash survives it — *systematically* rather than
// probabilistically.
//
// The randomized crash harness (internal/crashtest) interrupts threads at
// seeded instruction counts and materializes one crash image per round;
// it can exercise a schedule but never exhaust its crash points. dlcheck
// instead records one complete concurrent execution together with its
// persist trace (pmem.StartTrace: every cache line a PFence drains, in
// global shadow-write order, stamped against the same logical clock the
// history recorders use) and then re-reads that single execution as a
// family of crashed executions — one per PWB/PFence boundary:
//
//   - the crash image at boundary k is the base image plus persist
//     records 0..k-1 (pmem.ApplyRecord), exactly the DropUnfenced state
//     a power failure between records k-1 and k would leave;
//   - the history at boundary k is the recorded history truncated at the
//     boundary's stamp (hist.Truncate): operations that responded earlier
//     are completed and must be reflected in the recovered state,
//     operations still running become pending (free to take effect or
//     vanish), operations invoked later never existed;
//   - the recovered structure's contents at boundary k must then be
//     explainable by a linearization of that truncated history — the
//     durable rule — decided exactly by the hist checkers (per-key
//     Wing–Gong search for sets, whole-history FIFO search for queues).
//
// Scope: the hist checkers decide key membership (and, for queues,
// FIFO order) — values are not modeled, so a crash that loses an
// in-place value overwrite while the key survives is invisible here;
// the store's Upsert value durability is covered by its own test
// (internal/store TestUpsertValueDurability).
//
// Soundness leans on the trace's stamping discipline (see
// pmem.PersistRecord): a record's stamp is drawn before its shadow write,
// so an operation whose response stamp precedes a record's stamp cannot
// have depended on that record's persist — every prefix is a crash state
// that genuinely could have occurred.
//
// A second, cheaper oracle rides along: for FliT policies with auditable
// counter schemes (core.TagAuditor), the engine asserts every flit-tag
// returned to zero at quiescence — a leaked tag means the counter
// discipline itself is broken.
//
// Enumeration is bounded by Options.Budget: when an execution has more
// persist boundaries than the budget, an evenly-strided deterministic
// subset (always including the first and last boundary) is checked.
// Batteries run on the virtual clock (pmem.Config.VirtualClock), so full
// enumeration stays fast enough for CI.
//
// The engine is deliberately structure-agnostic (it imports no concrete
// data structure or service): internal/dstruct/dstest adapts the set
// batteries, internal/crashtest adapts the queue and the sharded store.
package dlcheck

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/hist"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// Options parameterizes one recorded execution and its enumeration.
type Options struct {
	// Workers is the number of recording worker goroutines.
	Workers int
	// OpsPerWorker is each worker's operation count (all complete; crash
	// points are enumerated afterwards, not injected).
	OpsPerWorker int
	// KeyRange draws keys from [0, KeyRange); small ranges maximize the
	// cross-thread overlap the checker exists to scrutinize. Sized so
	// per-key histories stay inside the exact checker's 64-op window.
	KeyRange int
	// Prefill inserts keys [0, Prefill) before recording starts; they form
	// the initial state and must survive every crash point.
	Prefill int
	// Budget bounds the number of crash points checked (<= 0: all).
	Budget int
	// Seed drives the workers' operation mix.
	Seed int64
}

// DefaultOptions returns a configuration tuned for dense cross-thread
// overlap with per-key histories comfortably inside the exact window.
func DefaultOptions(seed int64) Options {
	return Options{Workers: 3, OpsPerWorker: 18, KeyRange: 8, Prefill: 4, Budget: 256, Seed: seed}
}

// Words sizes simulated memories for enumeration runs: workloads are tens
// of operations, and every crash boundary copies the image, so small
// memories keep every-boundary enumeration cheap.
const Words = 1 << 16

// NewConfig builds the standard enumeration config — a Words-sized
// virtual-clock heap (enumeration never reads a latency number) with the
// policy's stride — the single source of truth for the CLI battery, the
// dstest batteries, and dlcheck's own tests.
func NewConfig(pol core.Policy, mode dstruct.Mode) dstruct.Config {
	mc := pmem.DefaultConfig(Words)
	mc.VirtualClock = true
	return dstruct.Config{
		Heap: pheap.New(pmem.New(mc)), Policy: pol, Mode: mode,
		RootSlot: 0, Stride: dstruct.StrideFor(pol),
	}
}

// Normalized returns the options with zero fields replaced by defaults —
// what Run itself applies; adapters that need to see the effective
// values (e.g. the store's key-namespace translation) call it first.
func (o Options) Normalized() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	d := DefaultOptions(o.Seed)
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if o.OpsPerWorker <= 0 {
		o.OpsPerWorker = d.OpsPerWorker
	}
	if o.KeyRange <= 0 {
		o.KeyRange = d.KeyRange
	}
	if o.Prefill < 0 {
		o.Prefill = 0
	}
	return o
}

// Harness abstracts the set-semantics structure or service under check.
// Sessions share the uint64 key space the recorders log; adapters that
// speak another key language (the store's string keys) translate in both
// directions. The target must be freshly constructed: the engine's
// prefill is the entire initial state, so any other surviving key reads
// as a phantom violation.
type Harness struct {
	// Name identifies the target in reports.
	Name string
	// Mem is the simulated memory the execution runs in (and is traced).
	Mem *pmem.Memory
	// Policy feeds the flit-tag quiescence oracle; nil skips it.
	Policy core.Policy
	// NewSession returns a fresh per-goroutine operation handle.
	NewSession func() dstruct.SetThread
	// Recover materializes the target from a crash image and returns its
	// recovered key set. An error is reported as a violation (recovery
	// must succeed from every reachable crash state).
	Recover func(img []uint64) (map[uint64]bool, error)
	// During, when non-nil, runs concurrently with the recording workers —
	// a background mutation of the target whose persist boundaries should
	// land inside the trace (the store's online shard split migrates here,
	// so crash points are enumerated mid-migration). Run joins it after
	// the workers, before the trace closes; it must leave the target
	// quiescent and must not change the key membership the recorded
	// operations establish.
	During func()
}

// Instance couples a live structure with a quiescent snapshot function
// (the same shape internal/crashtest uses, so targets convert directly).
type Instance struct {
	Set      dstruct.Set
	Snapshot func() map[uint64]uint64
}

// Target describes a cfg-constructed data structure under check.
type Target struct {
	Name    string
	New     func(cfg dstruct.Config) Instance
	Recover func(cfg dstruct.Config) Instance
}

// Report summarizes one enumeration run.
type Report struct {
	// Name is the target's name.
	Name string
	// Records is the number of persist-line events in the trace; the
	// execution has Records+1 crash boundaries.
	Records int
	// Fences is the number of distinct persist points — (thread, epoch)
	// fence drains — in the trace.
	Fences int
	// Points is the number of crash boundaries actually checked.
	Points int
	// Ops is the number of recorded operations.
	Ops int
	// LiveTags is the flit-counter sum at quiescence (-1: policy not
	// auditable). Non-zero is reported as a violation.
	LiveTags int
	// Violation is nil when every checked boundary is durably
	// linearizable.
	Violation *Violation
}

// Violation is a minimal repro trace for one failed crash boundary:
// everything needed to debug the failure from a CI artifact alone — the
// boundary, the un-persisted record it sits before, the truncated
// schedule, and the recovered-state diff.
type Violation struct {
	// Target names the structure or service checked.
	Target string
	// Point is the boundary index: persist records 0..Point-1 were
	// applied to the base image.
	Point int
	// Stamp is the crash instant on the shared logical clock.
	Stamp int64
	// Boundary is the first record NOT persisted (nil when the violation
	// is at the end-of-run boundary or in the quiescence oracle).
	Boundary *pmem.PersistRecord
	// Reason is the checker's verdict (e.g. the per-key history no
	// linearization explains).
	Reason string
	// Schedule renders the truncated history, invocation-ordered.
	Schedule string
	// Diff describes the recovered state against the recorded
	// expectation for the violating region.
	Diff string
}

// Error formats the full repro trace.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dlcheck %s: durable-linearizability violation at crash point %d (stamp %d)\n",
		v.Target, v.Point, v.Stamp)
	if v.Boundary != nil {
		fmt.Fprintf(&b, "boundary: before persist of line %d by thread %d (fence epoch %d, stamp %d)\n",
			v.Boundary.Line, v.Boundary.Thread, v.Boundary.Epoch, v.Boundary.Stamp)
	} else {
		b.WriteString("boundary: end of recorded execution (all persists applied)\n")
	}
	fmt.Fprintf(&b, "reason: %s\n", v.Reason)
	if v.Diff != "" {
		fmt.Fprintf(&b, "state diff: %s\n", v.Diff)
	}
	if v.Schedule != "" {
		fmt.Fprintf(&b, "schedule (truncated at crash):\n%s", v.Schedule)
	}
	return b.String()
}

// Run records one concurrent execution against the harness and checks
// every (budgeted) crash boundary. The returned report's Violation is nil
// iff all checked boundaries are durably linearizable.
func Run(h Harness, opts Options) *Report {
	opts = opts.withDefaults()

	// Prefill outside the recorded history; each insert completes (and
	// fences), so the base image below carries the initial state.
	setup := h.NewSession()
	initial := make(map[uint64]bool, opts.Prefill)
	for k := 0; k < opts.Prefill; k++ {
		setup.Insert(uint64(k), uint64(k)+1000)
		initial[uint64(k)] = true
	}
	base := h.Mem.CrashImage(pmem.DropUnfenced, 0)

	clock := &hist.Clock{}
	trace := h.Mem.StartTrace(clock.Now)
	recs := make([]*hist.Recorder, opts.Workers)
	sessions := make([]dstruct.SetThread, opts.Workers)
	for w := range recs {
		recs[w] = hist.NewRecorder(clock)
		sessions[w] = h.NewSession()
	}
	var wg sync.WaitGroup
	if h.During != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.During()
		}()
	}
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, rec := sessions[w], recs[w]
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			for i := 0; i < opts.OpsPerWorker; i++ {
				k := uint64(rng.Intn(opts.KeyRange))
				switch rng.Intn(3) {
				case 0:
					tok := rec.Begin(hist.Insert, k)
					rec.Finish(tok, th.Insert(k, uint64(w*1000+i)))
				case 1:
					tok := rec.Begin(hist.Delete, k)
					rec.Finish(tok, th.Delete(k))
				default:
					tok := rec.Begin(hist.Contains, k)
					rec.Finish(tok, th.Contains(k))
				}
			}
		}(w)
	}
	wg.Wait()
	h.Mem.StopTrace()

	records := trace.Records()
	rep := newReport(h.Name, h.Policy, records, opts)
	if rep.Violation != nil {
		return rep
	}

	perKey := hist.Gather(recs)
	guardPerKeyWindow(perKey)
	enumerate(rep, base, records, opts.Budget, setBoundaryCheck(h.Recover, initial, perKey))
	return rep
}

// setBoundaryCheck builds the per-boundary verdict function for
// set-semantics targets (shared by Run and RunBatched): truncate the
// history at the crash stamp, recover the image, decide with the exact
// checkers.
func setBoundaryCheck(recover func(img []uint64) (map[uint64]bool, error),
	initial map[uint64]bool, perKey map[uint64][]hist.Op) func(img []uint64, stamp int64) *Violation {
	return func(img []uint64, stamp int64) *Violation {
		trunc := make(map[uint64][]hist.Op, len(perKey))
		for kk, ops := range perKey {
			trunc[kk] = hist.Truncate(ops, stamp)
		}
		final, err := recover(img)
		if err != nil {
			// A failed recovery is debuggable from the artifact alone too:
			// carry the schedule that produced the unrecoverable image.
			return &Violation{
				Reason:   fmt.Sprintf("recovery failed: %v", err),
				Schedule: renderSetSchedule(trunc),
			}
		}
		if hv := hist.CheckOps(trunc, initial, final); hv != nil {
			return &Violation{
				Reason:   hv.Error(),
				Schedule: renderSetSchedule(trunc),
				Diff:     setDiff(initial, final, trunc),
			}
		}
		return nil
	}
}

// newReport builds a report skeleton and runs the flit-counter
// quiescence oracle; a leaked tag lands in rep.Violation.
func newReport(name string, pol core.Policy, records []pmem.PersistRecord, opts Options) *Report {
	rep := &Report{
		Name:     name,
		Records:  len(records),
		Fences:   countFences(records),
		Ops:      opts.Workers * opts.OpsPerWorker,
		LiveTags: -1,
	}
	rep.Violation = tagOracle(name, pol, rep, len(records))
	return rep
}

// enumerate walks the budgeted crash boundaries in order, maintaining
// the incremental image, and invokes check at each; check's violation
// (if any) is completed with the boundary coordinates and ends the walk.
func enumerate(rep *Report, base []uint64, records []pmem.PersistRecord, budget int,
	check func(img []uint64, stamp int64) *Violation) {
	img := append([]uint64(nil), base...)
	applied := 0
	for _, k := range crashPoints(len(records), budget) {
		for applied < k {
			pmem.ApplyRecord(img, records[applied])
			applied++
		}
		stamp, boundary := boundaryStamp(records, k)
		rep.Points++
		if v := check(img, stamp); v != nil {
			v.Target, v.Point, v.Stamp, v.Boundary = rep.Name, k, stamp, boundary
			rep.Violation = v
			return
		}
	}
}

// RunSet is Run over a cfg-constructed data structure target: recovery
// rebuilds the structure on a fresh heap over each crash image, carrying
// the live heap's watermark (read at recovery time, i.e. after the
// recorded execution) so post-crash allocation can never clobber
// surviving objects.
func RunSet(cfg dstruct.Config, tgt Target, opts Options) *Report {
	inst := tgt.New(cfg)
	return Run(Harness{
		Name:       tgt.Name,
		Mem:        cfg.Heap.Mem(),
		Policy:     cfg.Policy,
		NewSession: func() dstruct.SetThread { return inst.Set.NewThread() },
		Recover: func(img []uint64) (map[uint64]bool, error) {
			cfg2 := cfg
			cfg2.Heap = pheap.Recover(pmem.NewFromImage(img, cfg.Heap.Mem().Config()), cfg.Heap.Watermark())
			rec := tgt.Recover(cfg2)
			final := make(map[uint64]bool)
			for k := range rec.Snapshot() {
				final[k] = true
			}
			return final, nil
		},
	}, opts)
}

// tagOracle runs the flit-counter quiescence check, filling in
// rep.LiveTags and returning a violation on a leaked tag.
func tagOracle(name string, pol core.Policy, rep *Report, point int) *Violation {
	if pol == nil {
		return nil
	}
	n, ok := core.LiveTagCount(pol)
	if !ok {
		return nil
	}
	rep.LiveTags = n
	if n == 0 {
		return nil
	}
	return &Violation{
		Target: name, Point: point, Stamp: math.MaxInt64,
		Reason: fmt.Sprintf("%d flit counters still tagged at quiescence (Inc without Dec)", n),
	}
}

// crashPoints selects the boundaries to check: all records+1 of them when
// the budget allows, otherwise an evenly-strided subset that always
// includes the first (nothing persisted) and last (everything persisted)
// boundary.
func crashPoints(records, budget int) []int {
	n := records + 1
	if budget <= 0 || n <= budget {
		pts := make([]int, n)
		for i := range pts {
			pts[i] = i
		}
		return pts
	}
	if budget < 2 {
		budget = 2
	}
	pts := make([]int, 0, budget)
	last := -1
	for i := 0; i < budget; i++ {
		k := i * records / (budget - 1)
		if k != last {
			pts = append(pts, k)
			last = k
		}
	}
	return pts
}

// countFences counts distinct (thread, epoch) pairs.
func countFences(recs []pmem.PersistRecord) int {
	type fence struct {
		th int
		ep uint32
	}
	seen := make(map[fence]bool)
	for _, r := range recs {
		seen[fence{r.Thread, r.Epoch}] = true
	}
	return len(seen)
}

// boundaryStamp returns the crash instant of boundary k: just before
// record k's persist began, or the end of time at the final boundary.
func boundaryStamp(recs []pmem.PersistRecord, k int) (int64, *pmem.PersistRecord) {
	if k < len(recs) {
		return recs[k].Stamp - 1, &recs[k]
	}
	return math.MaxInt64, nil
}

// guardPerKeyWindow keeps runs inside the exact checker's 64-op cap with
// a configuration-level message instead of CheckKey's panic.
func guardPerKeyWindow(perKey map[uint64][]hist.Op) {
	for k, ops := range perKey {
		if len(ops) > 64 {
			panic(fmt.Sprintf("dlcheck: %d ops on key %d exceed the exact checker's window; widen KeyRange or shorten the run", len(ops), k))
		}
	}
}

// renderSetSchedule formats a truncated multi-key history in invocation
// order.
func renderSetSchedule(perKey map[uint64][]hist.Op) string {
	var all []hist.Op
	for _, ops := range perKey {
		all = append(all, ops...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	var b strings.Builder
	for _, op := range all {
		end, res := "pending", "?"
		if op.Completed {
			end = fmt.Sprint(op.End)
			res = fmt.Sprint(op.Result)
		}
		fmt.Fprintf(&b, "  [%d,%s] %s(%d) = %s\n", op.Start, end, op.Kind, op.Key, res)
	}
	return b.String()
}

// setDiff summarizes how the recovered key set departs from the naive
// expectation: phantom keys (present but never inserted nor prefilled)
// and untouched prefill keys that vanished.
func setDiff(initial, final map[uint64]bool, perKey map[uint64][]hist.Op) string {
	var phantoms, lost []uint64
	for k := range final {
		if !initial[k] && len(perKey[k]) == 0 {
			phantoms = append(phantoms, k)
		}
	}
	for k := range initial {
		if !final[k] && len(perKey[k]) == 0 {
			lost = append(lost, k)
		}
	}
	sort.Slice(phantoms, func(i, j int) bool { return phantoms[i] < phantoms[j] })
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	var parts []string
	if len(phantoms) > 0 {
		parts = append(parts, fmt.Sprintf("phantom keys (recovered, never written): %v", phantoms))
	}
	if len(lost) > 0 {
		parts = append(parts, fmt.Sprintf("lost untouched prefill keys: %v", lost))
	}
	parts = append(parts, fmt.Sprintf("recovered %d keys, initial %d", len(final), len(initial)))
	return strings.Join(parts, "; ")
}
