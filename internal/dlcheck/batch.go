package dlcheck

import (
	"math/rand"
	"sync"

	"flit/internal/core"
	"flit/internal/hist"
	"flit/internal/pmem"
)

// This file extends the enumerator to batched (group-commit) request
// paths: executions where a worker pipelines several operations, the
// target executes them under one deferred-persistence batch, and every
// response materializes only after the batch's single commit fence.
//
// The history model is the pipeline's: all of a batch's operations are
// invoked (Begin) before the batch executes and respond (Finish) only
// after it commits, so they overlap each other — any per-batch
// serialization the executor picks is admissible — while the durable
// rule still bites at full strength: once Finish is stamped, every
// crash boundary after it must reflect the operation. A commit fence
// that failed to persist an acknowledged effect is exactly what the
// enumeration catches.

// BatchOp is one operation of a batched execution (hist.Insert maps to
// the store's Put: true iff newly inserted).
type BatchOp struct {
	Kind hist.Kind
	Key  uint64
	Val  uint64
}

// BatchExecutor executes one pipeline batch under a single group
// commit. results[i] answers ops[i]; no result may be externalized
// before the batch's commit fence — that is the property under test.
type BatchExecutor interface {
	ExecBatch(ops []BatchOp, results []bool)
}

// BatchedHarness abstracts a batched set-semantics target.
type BatchedHarness struct {
	// Name identifies the target in reports.
	Name string
	// Mem is the simulated memory the execution runs in (and is traced).
	Mem *pmem.Memory
	// Policy feeds the flit-tag quiescence oracle; nil skips it.
	Policy core.Policy
	// NewSession returns a fresh per-goroutine batch executor.
	NewSession func() BatchExecutor
	// Recover materializes the target from a crash image and returns its
	// recovered key set.
	Recover func(img []uint64) (map[uint64]bool, error)
	// MaxBatch bounds the (seeded, varying) per-batch operation count
	// (default 6 — deep enough to exercise multi-op commits, shallow
	// enough to keep many commit boundaries per run).
	MaxBatch int
}

// RunBatched records one concurrent batched execution against the
// harness and checks every (budgeted) crash boundary, exactly as Run
// does for per-operation targets.
func RunBatched(h BatchedHarness, opts Options) *Report {
	opts = opts.withDefaults()
	maxBatch := h.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 6
	}

	// Prefill as one committed batch: the base image below must carry
	// the initial state.
	setup := h.NewSession()
	initial := make(map[uint64]bool, opts.Prefill)
	if opts.Prefill > 0 {
		ops := make([]BatchOp, opts.Prefill)
		for k := range ops {
			ops[k] = BatchOp{Kind: hist.Insert, Key: uint64(k), Val: uint64(k) + 1000}
			initial[uint64(k)] = true
		}
		setup.ExecBatch(ops, make([]bool, len(ops)))
	}
	base := h.Mem.CrashImage(pmem.DropUnfenced, 0)

	clock := &hist.Clock{}
	trace := h.Mem.StartTrace(clock.Now)
	recs := make([]*hist.Recorder, opts.Workers)
	sessions := make([]BatchExecutor, opts.Workers)
	for w := range recs {
		recs[w] = hist.NewRecorder(clock)
		sessions[w] = h.NewSession()
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex, rec := sessions[w], recs[w]
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			ops := make([]BatchOp, 0, maxBatch)
			results := make([]bool, maxBatch)
			toks := make([]int, 0, maxBatch)
			remaining := opts.OpsPerWorker
			for remaining > 0 {
				depth := 1 + rng.Intn(maxBatch)
				if depth > remaining {
					depth = remaining
				}
				remaining -= depth
				ops, toks = ops[:0], toks[:0]
				for i := 0; i < depth; i++ {
					k := uint64(rng.Intn(opts.KeyRange))
					kind := hist.Kind(rng.Intn(3))
					ops = append(ops, BatchOp{Kind: kind, Key: k, Val: uint64(w*1000 + i)})
					// Invocation before execution: the pipeline has
					// accepted the request.
					toks = append(toks, rec.Begin(kind, k))
				}
				ex.ExecBatch(ops, results[:depth])
				// Responses exist only now — after the batch's commit.
				for i := 0; i < depth; i++ {
					rec.Finish(toks[i], results[i])
				}
			}
		}(w)
	}
	wg.Wait()
	h.Mem.StopTrace()

	records := trace.Records()
	rep := newReport(h.Name, h.Policy, records, opts)
	if rep.Violation != nil {
		return rep
	}
	perKey := hist.Gather(recs)
	guardPerKeyWindow(perKey)
	enumerate(rep, base, records, opts.Budget, setBoundaryCheck(h.Recover, initial, perKey))
	return rep
}
