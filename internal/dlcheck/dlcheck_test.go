package dlcheck

import "testing"

func TestCrashPointsBudget(t *testing.T) {
	// Unbudgeted: every boundary 0..records.
	pts := crashPoints(5, 0)
	if len(pts) != 6 || pts[0] != 0 || pts[5] != 5 {
		t.Fatalf("unbudgeted points wrong: %v", pts)
	}
	// Budget larger than the boundary count: also everything.
	if got := crashPoints(3, 100); len(got) != 4 {
		t.Fatalf("oversized budget trimmed points: %v", got)
	}
	// Budgeted: strided, deduplicated, first and last always present.
	pts = crashPoints(1000, 10)
	if len(pts) != 10 || pts[0] != 0 || pts[len(pts)-1] != 1000 {
		t.Fatalf("budgeted points wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("points not strictly increasing: %v", pts)
		}
	}
	// Degenerate budget still covers both ends.
	if got := crashPoints(7, 1); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("budget 1 points wrong: %v", got)
	}
	// No records: the single end-of-run boundary.
	if got := crashPoints(0, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("zero-record points wrong: %v", got)
	}
}
