package dlcheck_test

import (
	"strings"
	"testing"
	"time"

	"flit/internal/core"
	"flit/internal/crashtest"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/store"
)

// Mutation self-tests: deliberately broken policies must be *caught* by
// the enumerator — a checker that cannot reject a broken protocol proves
// nothing by accepting a correct one.

// windowFliT drives the mutation self-test. It reimplements the flit
// store protocol with the tag window held open between a successful p-CAS
// and its flush+fence (modeling a slow clwb/sfence: the schedule shape
// under which the pre-read flush earns its keep), and — when broken — it
// skips that pre-read flush: a p-load that observes a tagged (pending,
// possibly unpersisted) value returns it without flushing, and a failed
// p-CAS likewise drops its observed-value obligation. An operation can
// then complete depending on a value a crash at the right boundary loses,
// which the enumerator must find; the un-broken variant under the same
// window must sail through (no false positives from slow hardware).
type windowFliT struct {
	*core.FliT
	broken bool
}

func (p windowFliT) Name() string {
	if p.broken {
		return "flit-broken-load"
	}
	return "flit-slow-window"
}

func (p windowFliT) Load(t *pmem.Thread, a pmem.Addr, pflag bool) uint64 {
	t.CheckCrash()
	v := t.Load(a)
	if !p.broken && pflag && p.C.Tagged(t, a) {
		t.PWB(a)
	}
	return v
}

func (p windowFliT) CAS(t *pmem.Thread, a pmem.Addr, old, new uint64, pflag bool) bool {
	t.CheckCrash()
	t.PFence()
	if !pflag {
		return t.CAS(a, old, new)
	}
	p.C.Inc(t, a)
	ok := t.CAS(a, old, new)
	if ok {
		holdWindow() // concurrent readers now see the tagged, unpersisted value
		t.PWB(a)
		t.PFence()
	}
	p.C.Dec(t, a)
	if !ok && !p.broken && p.C.Tagged(t, a) {
		t.PWB(a)
	}
	return ok
}

// holdWindow parks the writer long enough for concurrently running
// readers to complete whole operations inside the tag window.
func holdWindow() { time.Sleep(200 * time.Microsecond) }

func newDLStore(t *testing.T, policy string) *store.Store {
	t.Helper()
	st, err := crashtest.NewDLStore(policy, dstruct.Automatic)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// mutationOpts is the shared shape of the window runs: contended keys,
// enough overlap, full enumeration (any occurrence in the recorded
// schedule must be found).
func mutationOpts(seed int64) dlcheck.Options {
	opts := dlcheck.DefaultOptions(seed)
	opts.Workers = 4
	opts.OpsPerWorker = 24
	opts.KeyRange = 6
	opts.Budget = 0
	return opts
}

// TestBrokenLoadPolicyIsCaught: the skipped pre-read flush must be
// detected on at least one structure. The tag window is held open by the
// policy (see windowFliT), so readers reliably complete inside it; a few
// seeds bound scheduler variance.
func TestBrokenLoadPolicyIsCaught(t *testing.T) {
	maxSeed := int64(10)
	targets := crashtest.Targets()
	caught := false
	var sample string
	for seed := int64(1); seed <= maxSeed && !caught; seed++ {
		for _, target := range targets[:2] { // list and hashtable: densest overlap
			pol := windowFliT{core.NewFliT(core.NewHashTable(1 << 14)), true}
			rep := dlcheck.RunSet(dlcheck.NewConfig(pol, dstruct.Automatic), target.DL(), mutationOpts(seed))
			if rep.Violation != nil {
				caught = true
				sample = rep.Violation.Error()
				break
			}
		}
	}
	if !caught {
		t.Fatal("broken-load policy passed the enumerator — dlcheck has no teeth")
	}
	t.Logf("caught as expected:\n%s", sample)
}

// TestSlowWindowPolicyPasses is the mutation test's control: the same
// held-open tag window with the *correct* load protocol must produce zero
// violations — the enumerator's stamping discipline must not mistake slow
// persists for lost ones.
func TestSlowWindowPolicyPasses(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, target := range crashtest.Targets()[:2] {
			pol := windowFliT{core.NewFliT(core.NewHashTable(1 << 14)), false}
			rep := dlcheck.RunSet(dlcheck.NewConfig(pol, dstruct.Automatic), target.DL(), mutationOpts(seed))
			if rep.Violation != nil {
				t.Fatalf("%s seed %d: slow-but-correct window flagged: %v", target.Name, seed, rep.Violation)
			}
		}
	}
}

// TestNoPersistPolicyIsCaught: the non-persistent baseline must fail
// deterministically — its prefill never reaches the base image, so even
// the first boundary is unexplainable.
func TestNoPersistPolicyIsCaught(t *testing.T) {
	for _, target := range crashtest.Targets() {
		t.Run(target.Name, func(t *testing.T) {
			opts := dlcheck.DefaultOptions(1)
			rep := dlcheck.RunSet(dlcheck.NewConfig(core.NoPersist{}, dstruct.Automatic), target.DL(), opts)
			if rep.Violation == nil {
				t.Fatal("no-persist policy passed the enumerator")
			}
			if rep.Violation.Reason == "" || rep.Violation.Diff == "" {
				t.Fatalf("violation lacks a repro trace: %+v", rep.Violation)
			}
		})
	}
}

// TestNoPersistStoreIsCaught: same teeth at service granularity.
func TestNoPersistStoreIsCaught(t *testing.T) {
	st := newDLStore(t, core.PolicyNoPersist)
	rep := crashtest.RunStoreDL(st, dlcheck.DefaultOptions(1))
	if rep.Violation == nil {
		t.Fatal("no-persist store passed the enumerator")
	}
}

// TestViolationReproTrace: the repro trace must carry the boundary, the
// schedule and the state diff — debuggable from a CI artifact alone.
func TestViolationReproTrace(t *testing.T) {
	opts := dlcheck.DefaultOptions(3)
	rep := dlcheck.RunSet(dlcheck.NewConfig(core.NoPersist{}, dstruct.Automatic), crashtest.Targets()[0].DL(), opts)
	if rep.Violation == nil {
		t.Fatal("expected a violation to format")
	}
	msg := rep.Violation.Error()
	for _, want := range []string{"durable-linearizability violation", "reason:", "state diff:"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("repro trace missing %q:\n%s", want, msg)
		}
	}
}
