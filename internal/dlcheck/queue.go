package dlcheck

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"flit/internal/core"
	"flit/internal/hist"
	"flit/internal/pmem"
)

// QueueSession is the per-goroutine surface of a FIFO queue under check
// (internal/dstruct/queue's Thread satisfies it).
type QueueSession interface {
	Enqueue(v uint64)
	Dequeue() (uint64, bool)
}

// QueueHarness abstracts a durable FIFO queue for the enumerator, in the
// same shape as Harness. Recover returns the recovered contents in FIFO
// order.
type QueueHarness struct {
	Name       string
	Mem        *pmem.Memory
	Policy     core.Policy // feeds the tag oracle; nil skips it
	NewSession func() QueueSession
	Recover    func(img []uint64) ([]uint64, error)
}

// maxQueueOps bounds a queue run's total operation count: queue
// linearizability is not per-key local, so hist.CheckQueue searches the
// whole truncated history at every boundary and a long, heavily
// overlapped schedule can blow up its interval-order search.
const maxQueueOps = 24

// RunQueue is Run for FIFO queues. Queue linearizability is not per-key
// local, so the whole truncated history is decided by hist.CheckQueue at
// every boundary; OpsPerWorker is clamped so the run never exceeds
// maxQueueOps total operations (the set-battery default of 3×18 would
// otherwise be quietly intractable). Enqueued values are unique per
// (worker, op), making recovered contents unambiguous in repro traces.
// As with Harness, the queue must be freshly constructed: the engine's
// prefill is the entire initial state.
func RunQueue(h QueueHarness, opts Options) *Report {
	opts = opts.withDefaults()
	if opts.Workers*opts.OpsPerWorker > maxQueueOps {
		opts.OpsPerWorker = maxQueueOps / opts.Workers
		if opts.OpsPerWorker < 1 {
			opts.OpsPerWorker = 1
		}
	}

	setup := h.NewSession()
	var initial []uint64
	for k := 0; k < opts.Prefill; k++ {
		v := uint64(1_000_000 + k)
		setup.Enqueue(v)
		initial = append(initial, v)
	}
	base := h.Mem.CrashImage(pmem.DropUnfenced, 0)

	clock := &hist.Clock{}
	trace := h.Mem.StartTrace(clock.Now)
	recs := make([]*hist.QRecorder, opts.Workers)
	sessions := make([]QueueSession, opts.Workers)
	for w := range recs {
		recs[w] = hist.NewQRecorder(clock)
		sessions[w] = h.NewSession()
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, rec := sessions[w], recs[w]
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*104729))
			for i := 0; i < opts.OpsPerWorker; i++ {
				if rng.Intn(2) == 0 {
					v := uint64((w+1)<<20 | i)
					tok := rec.BeginEnqueue(v)
					th.Enqueue(v)
					rec.FinishEnqueue(tok)
				} else {
					tok := rec.BeginDequeue()
					v, ok := th.Dequeue()
					rec.FinishDequeue(tok, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	h.Mem.StopTrace()

	records := trace.Records()
	rep := newReport(h.Name, h.Policy, records, opts)
	if rep.Violation != nil {
		return rep
	}

	var allOps []hist.QOp
	for _, r := range recs {
		allOps = append(allOps, r.Ops()...)
	}
	sort.Slice(allOps, func(i, j int) bool { return allOps[i].Start < allOps[j].Start })
	if len(allOps) > 64 {
		panic(fmt.Sprintf("dlcheck: %d queue ops exceed the exact checker's window; shorten the run", len(allOps)))
	}

	enumerate(rep, base, records, opts.Budget, func(img []uint64, stamp int64) *Violation {
		trunc := hist.TruncateQ(allOps, stamp)
		final, err := h.Recover(img)
		if err != nil {
			// A failed recovery is debuggable from the artifact alone too:
			// carry the schedule that produced the unrecoverable image.
			return &Violation{
				Reason:   fmt.Sprintf("recovery failed: %v", err),
				Schedule: renderQueueSchedule(trunc),
				Diff:     fmt.Sprintf("initial %v (recovery aborted before a snapshot)", initial),
			}
		}
		if qv := hist.CheckQueue(trunc, initial, final); qv != nil {
			return &Violation{
				Reason:   qv.Error(),
				Schedule: renderQueueSchedule(trunc),
				Diff:     fmt.Sprintf("recovered contents %v, initial %v", final, initial),
			}
		}
		return nil
	})
	return rep
}

// renderQueueSchedule formats a truncated queue history in invocation
// order.
func renderQueueSchedule(ops []hist.QOp) string {
	var b strings.Builder
	for _, op := range ops {
		b.WriteString("  " + op.String() + "\n")
	}
	return b.String()
}
