package dlcheck_test

import (
	"fmt"
	"testing"

	"flit/internal/core"
	"flit/internal/crashtest"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
)

func dlPolicies(withLAP bool) []core.Policy {
	ps := []core.Policy{
		core.NewFliT(core.NewHashTable(1 << 14)),
		core.NewFliT(core.Adjacent{}),
		core.Plain{},
		core.Izraelevitz{},
	}
	if withLAP {
		ps = append(ps, core.LinkAndPersist{})
	}
	return ps
}

// TestEnumeratedSetsAllTargets is the subsystem's central battery: every
// structure × durability mode × policy, each recorded execution checked
// at every (budgeted) PWB/PFence boundary.
func TestEnumeratedSetsAllTargets(t *testing.T) {
	seeds := []int64{1, 2}
	budget := 0 // full enumeration
	if testing.Short() {
		seeds = seeds[:1]
		budget = 48
	}
	for _, target := range crashtest.Targets() {
		pols := dlPolicies(target.WithLAP)
		if testing.Short() {
			pols = []core.Policy{pols[0], core.Plain{}}
		}
		for _, mode := range dstruct.Modes {
			for _, pol := range pols {
				name := fmt.Sprintf("%s/%s/%s", target.Name, mode, pol.Name())
				t.Run(name, func(t *testing.T) {
					for _, seed := range seeds {
						opts := dlcheck.DefaultOptions(seed)
						opts.Budget = budget
						rep := dlcheck.RunSet(dlcheck.NewConfig(pol, mode), target.DL(), opts)
						if rep.Violation != nil {
							t.Fatalf("seed %d: %v", seed, rep.Violation)
						}
						if rep.Records == 0 {
							t.Fatalf("seed %d: no persist records traced — tracer unwired?", seed)
						}
						if rep.Points < 2 {
							t.Fatalf("seed %d: only %d crash points checked", seed, rep.Points)
						}
					}
				})
			}
		}
	}
}

// TestEnumeratedQueue checks the durable FIFO queue — the structure whose
// taken-mark skip path motivated the failed-p-CAS load obligation — at
// every boundary under the full policy set.
func TestEnumeratedQueue(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	// Same coverage as the set battery; LAP applies (CAS-only stores).
	for _, pol := range dlPolicies(true) {
		t.Run(pol.Name(), func(t *testing.T) {
			for _, seed := range seeds {
				opts := dlcheck.DefaultOptions(seed)
				opts.OpsPerWorker = 8 // whole-history FIFO search: keep ops modest
				opts.Budget = 0
				rep := crashtest.RunQueueDL(dlcheck.NewConfig(pol, dstruct.Manual), opts)
				if rep.Violation != nil {
					t.Fatalf("seed %d: %v", seed, rep.Violation)
				}
				if rep.Records == 0 {
					t.Fatalf("seed %d: no persist records traced", seed)
				}
			}
		})
	}
}

// TestEnumeratedStore checks the sharded store service end to end:
// session histories, superblock probe and shard-parallel recovery at
// every boundary.
func TestEnumeratedStore(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, policy := range []string{core.PolicyHT, core.PolicyAdjacent} {
		t.Run(policy, func(t *testing.T) {
			for _, seed := range seeds {
				st := newDLStore(t, policy)
				opts := dlcheck.DefaultOptions(seed)
				if testing.Short() {
					opts.Budget = 48
				} else {
					opts.Budget = 0
				}
				rep := crashtest.RunStoreDL(st, opts)
				if rep.Violation != nil {
					t.Fatalf("seed %d: %v", seed, rep.Violation)
				}
				if rep.Records == 0 || rep.Points < 2 {
					t.Fatalf("seed %d: thin run: %+v", seed, rep)
				}
			}
		})
	}
}
