// Package analysis is flitvet's static-analysis framework: a small,
// dependency-free (stdlib go/* only) re-implementation of the
// golang.org/x/tools/go/analysis shape, plus the four analyzers that
// encode this repository's cross-cutting disciplines as compile-time
// checks:
//
//   - persistraw: persistence-bypassing raw writes to pmem-backed words
//     outside internal/pmem and internal/core (the fence-apply-flush
//     skeleton must not be skipped).
//   - handleclose: flow-sensitive lifecycle check that acquired handles
//     (pmem threads, heap arenas, store sessions, table handles,
//     reclamation handles) reach their Release/Close on all paths,
//     including error returns and explicit panics.
//   - ackorder: in internal/server and the store's combiner, no response
//     write or slot done-flip may be reachable while a deferred batch is
//     uncommitted — the ack ⇒ persisted invariant.
//   - hotpath: functions annotated //flit:hotpath must stay
//     allocation-free: no time.Now, no fmt, no capturing closures, no
//     map iteration, no interface-boxing conversions.
//
// Every protocol bug this repo has shipped so far (the failed-p-CAS
// flush obligation, shard-recovery interleaving, drain under-answering,
// handle leaks) was caught by an expensive dynamic battery after the
// fact; these analyzers are the review-time complement, each paired
// with the dynamic battery that motivated it (see DESIGN.md).
//
// # Annotation grammar
//
// Annotations are magic comments attached to a function declaration
// (in its doc comment or on the line of the declaration):
//
//	//flit:hotpath
//	    The function is a zero-allocation hot path; the hotpath
//	    analyzer checks its body.
//
//	//flit:rawpersist <reason>
//	    The function manages persistence manually (superblock writes,
//	    single-threaded recovery rebuild): raw pmem.Thread instructions
//	    inside it are intentional and carry their own PWB/PFence
//	    discipline. The reason is mandatory.
//
// Suppressions are per-diagnostic and must name the analyzer and a
// reason:
//
//	//flitvet:ignore <analyzer> <reason>
//
// placed on the flagged line, on the line immediately above it, or in
// the enclosing function's doc comment (which suppresses the analyzer
// for the whole function). An ignore without a reason is itself a
// diagnostic.
//
// Packages are identified by import-path suffix (for example a package
// whose path ends in "internal/pmem" is "the pmem package"), so the
// analyzers work identically on this module, on the analysistest
// fixture tree, and on the temp-module smoke tests.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //flitvet:ignore comments.
	Name string
	// Doc is the one-paragraph description shown by `flitvet -list`.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{PersistRaw, HandleClose, AckOrder, HotPath}
}

// ByName resolves a comma-separated analyzer list ("persistraw,hotpath");
// the empty string selects the whole suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to pkg and returns the surviving
// diagnostics: findings suppressed by a well-formed //flitvet:ignore
// are dropped, and malformed ignore comments (missing analyzer name or
// reason) are reported as findings of the pseudo-analyzer "flitvet".
// Diagnostics are sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Pos:      token.Position{Filename: pkg.PkgPath},
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	diags = applyIgnores(pkg, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// ignoreDirective is one parsed //flitvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	// fnStart/fnEnd bound the enclosing function when the directive sits
	// in a function doc comment (0 otherwise): the suppression then
	// covers the whole body.
	fnStart, fnEnd int
	used           bool
	malformed      bool
}

// applyIgnores drops diagnostics covered by ignore directives and adds
// diagnostics for malformed or unused ones.
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	var dirs []*ignoreDirective
	for _, f := range pkg.Files {
		fname := func(p token.Pos) string { return pkg.Fset.Position(p).Filename }
		// Function-doc directives cover the whole function.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if d := parseIgnore(c.Text); d != nil {
					d.file = fname(c.Pos())
					d.line = pkg.Fset.Position(c.Pos()).Line
					d.fnStart = pkg.Fset.Position(fd.Pos()).Line
					d.fnEnd = pkg.Fset.Position(fd.End()).Line
					dirs = append(dirs, d)
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d := parseIgnore(c.Text); d != nil {
					pos := pkg.Fset.Position(c.Pos())
					// Skip ones already collected as function-doc directives.
					dup := false
					for _, e := range dirs {
						if e.file == pos.Filename && e.line == pos.Line {
							dup = true
						}
					}
					if dup {
						continue
					}
					d.file = pos.Filename
					d.line = pos.Line
					dirs = append(dirs, d)
				}
			}
		}
	}
	var out []Diagnostic
	for _, dg := range diags {
		suppressed := false
		for _, d := range dirs {
			if d.malformed || d.analyzer != dg.Analyzer || d.file != dg.Pos.Filename {
				continue
			}
			// Same line, the line above, or anywhere in the annotated
			// function's extent.
			if d.line == dg.Pos.Line || d.line == dg.Pos.Line-1 ||
				(d.fnEnd > 0 && dg.Pos.Line >= d.fnStart && dg.Pos.Line <= d.fnEnd) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, dg)
		}
	}
	for _, d := range dirs {
		if d.malformed {
			out = append(out, Diagnostic{
				Analyzer: "flitvet",
				Pos:      token.Position{Filename: d.file, Line: d.line},
				Message:  "malformed //flitvet:ignore: want \"//flitvet:ignore <analyzer> <reason>\"",
			})
		}
	}
	return out
}

// parseIgnore parses a //flitvet:ignore comment, returning nil for
// unrelated comments and a malformed directive when the analyzer name
// or reason is missing.
func parseIgnore(text string) *ignoreDirective {
	rest, ok := strings.CutPrefix(text, "//flitvet:ignore")
	if !ok {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return &ignoreDirective{malformed: true}
	}
	known := false
	for _, a := range All() {
		if a.Name == fields[0] {
			known = true
		}
	}
	if !known {
		return &ignoreDirective{malformed: true}
	}
	return &ignoreDirective{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
}

// --- shared helpers ---

// pathHasSuffix reports whether import path p ends with the given
// slash-separated suffix at a path-segment boundary ("internal/pmem"
// matches "flit/internal/pmem" but not "x/notinternal/pmem").
func pathHasSuffix(p, suffix string) bool {
	if p == suffix {
		return true
	}
	return strings.HasSuffix(p, "/"+suffix)
}

// pkgPathOf returns the import path of obj's package ("" for builtins).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// typeName declared in a package whose path ends in pkgSuffix.
func typeIs(t types.Type, pkgSuffix, typeName string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// methodCall resolves call to (receiver type, method name) when call is
// a method call expression; ok is false for plain function calls.
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selection.Recv(), sel.Sel.Name, true
}

// calleeFunc resolves call to the *types.Func it invokes (package-level
// function or method), or nil for closures, builtins and func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // generic instantiation: Open[string](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
				return f
			}
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// funcAnnotations collects the //flit:<name> annotations of a function
// declaration: its doc comment plus any comment on the declaration line.
func funcAnnotations(fset *token.FileSet, file *ast.File, fd *ast.FuncDecl) map[string]string {
	out := map[string]string{}
	collect := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//flit:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			out[fields[0]] = strings.Join(fields[1:], " ")
		}
	}
	collect(fd.Doc)
	// Same-line comment after the declaration header.
	declLine := fset.Position(fd.Pos()).Line
	for _, cg := range file.Comments {
		if fset.Position(cg.Pos()).Line == declLine && cg.Pos() > fd.Pos() && cg.End() < fd.End() {
			collect(cg)
		}
	}
	return out
}

// hasAnnotation reports whether the function declaration enclosing pos
// (if any) carries the given //flit: annotation.
func hasAnnotation(fset *token.FileSet, files []*ast.File, pos token.Pos, name string) bool {
	for _, f := range files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || pos < fd.Pos() || pos > fd.End() {
					continue
				}
				_, has := funcAnnotations(fset, f, fd)[name]
				return has
			}
		}
	}
	return false
}
