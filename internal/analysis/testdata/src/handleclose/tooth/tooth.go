// Package tooth is the handleclose mutation tooth: the PR 9 leak shape
// (handle dropped on the error path). The analyzer MUST flag it.
package tooth

import (
	"errors"

	"flit/internal/analysis/testdata/src/handleclose/internal/pmem"
)

var errFull = errors.New("full")

// RegisterAndMaybeFail leaks the thread slot when the capacity check
// fails — the exact leak the reclamation battery caught dynamically.
func RegisterAndMaybeFail(m *pmem.Memory, full bool) (*pmem.Thread, error) {
	t := m.RegisterThread()
	if full {
		return nil, errFull // want "function returns without releasing pmem thread"
	}
	return t, nil
}
