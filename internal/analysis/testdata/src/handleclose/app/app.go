// Package app exercises handleclose: acquisitions must reach their
// release on every path out of the function.
package app

import (
	"errors"

	"flit/internal/analysis/testdata/src/handleclose/internal/pheap"
	"flit/internal/analysis/testdata/src/handleclose/internal/pmem"
	"flit/internal/analysis/testdata/src/handleclose/internal/reclaim"
)

var errBoom = errors.New("boom")

type session struct {
	t  *pmem.Thread
	ar *pheap.Arena
}

// deferRelease is the canonical good shape.
func deferRelease(m *pmem.Memory) uint64 {
	t := m.RegisterThread()
	defer t.Release()
	return t.Work()
}

// releaseAllPaths releases on both branches.
func releaseAllPaths(m *pmem.Memory, fail bool) error {
	t := m.RegisterThread()
	if fail {
		t.Release()
		return errBoom
	}
	t.Release()
	return nil
}

// storedInStruct escapes: ownership moves to the session (the
// initCombiners / newSessionCore shape), released elsewhere.
func storedInStruct(m *pmem.Memory, h *pheap.Heap) *session {
	t := m.RegisterThread()
	ar := h.NewArena()
	return &session{t: t, ar: ar}
}

// passedAlong escapes: ownership transferred to the callee.
func passedAlong(m *pmem.Memory) {
	t := m.RegisterThread()
	consume(t)
}

func consume(t *pmem.Thread) { t.Release() }

// earlyReturnLeak is the PR 9 bug class: the error path forgets the
// handle.
func earlyReturnLeak(m *pmem.Memory, fail bool) error {
	t := m.RegisterThread()
	if fail {
		return errBoom // want "function returns without releasing pmem thread"
	}
	t.Release()
	return nil
}

// missedBranchLeak releases on one branch only.
func missedBranchLeak(h *pheap.Heap, big bool) int {
	ar := h.NewArena()
	if big {
		n := ar.Alloc(64)
		ar.Release()
		return n
	}
	return 0 // want "function returns without releasing heap arena"
}

// panicLeak leaks on an explicit panic with no deferred release.
func panicLeak(d *reclaim.Domain, bad bool) {
	h := d.NewHandle()
	if bad {
		panic("bad") // want "function panics without releasing reclamation handle"
	}
	h.Close()
}

// neverReleased falls off the end still holding the handle.
func neverReleased(m *pmem.Memory) { // fixture body below leaks
	t := m.RegisterThread() // want "pmem thread acquired here is never released"
	_ = t.Work()
}

// suppressedLeak documents an intentional leak (process-lifetime
// handle).
func suppressedLeak(m *pmem.Memory) {
	t := m.RegisterThread() //flitvet:ignore handleclose fixture: process-lifetime handle
	_ = t.Work()
}

// deferredClosure releases inside a deferred literal.
func deferredClosure(m *pmem.Memory) uint64 {
	t := m.RegisterThread()
	defer func() {
		t.Release()
	}()
	return t.Work()
}
