// Package reclaim is a fixture stub for handleclose.
package reclaim

type Domain struct{}

type Handle struct{}

func (d *Domain) NewHandle() *Handle { return &Handle{} }
func (h *Handle) Close()             {}
