// Package pmem is a fixture stub for handleclose.
package pmem

type Memory struct{}

type Thread struct{}

func (m *Memory) RegisterThread() *Thread { return &Thread{} }
func (t *Thread) Release()                {}
func (t *Thread) Work() uint64            { return 0 }
