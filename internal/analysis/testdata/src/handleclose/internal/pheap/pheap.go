// Package pheap is a fixture stub for handleclose.
package pheap

type Heap struct{}

type Arena struct{}

func (h *Heap) NewArena() *Arena { return &Arena{} }
func (a *Arena) Release()        {}
func (a *Arena) Alloc(n int) int { return 0 }
