// Package server is the ackorder mutation tooth: acks a client while
// the batch is uncommitted. The analyzer MUST flag it.
package server

type batch struct{ pending int }

func (b *batch) Put(k, v uint64) { b.pending++ }
func (b *batch) Commit() int {
	n := b.pending
	b.pending = 0
	return n
}

func writeResp(n int) {}

// AckFirst answers the client before the effects are durable — the
// drain under-answering bug class, inverted.
func AckFirst(b *batch, ops []uint64) {
	for _, op := range ops {
		b.Put(op, op)
	}
	writeResp(len(ops)) // want "response write (writeResp) is reachable before the pending batch is committed"
	b.Commit()
}
