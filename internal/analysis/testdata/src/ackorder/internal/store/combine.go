// Package store exercises ackorder's combiner shape: the slot
// done-flip is the ack and must come after the Deferred flush.
package store

import "sync/atomic"

const (
	slotEmpty uint32 = iota
	slotAnnounced
	slotClaimed
	slotDone
)

type slot struct {
	state atomic.Uint32
	ops   int
}

type deferred struct{ stores int }

func (d *deferred) Flush() int {
	n := d.stores
	d.stores = 0
	return n
}

type table struct{}

func (t *table) Put(k, v uint64) {}

// goodCombine is the real combiner ordering: effects, flush, done-flip.
func goodCombine(sl *slot, d *deferred, ht *table) {
	for i := 0; i < sl.ops; i++ {
		ht.Put(uint64(i), uint64(i))
		d.stores++
	}
	d.Flush()
	sl.state.Store(slotDone)
}

// badCombine flips done before the flush: an acked-but-unpersisted
// window, the delegation-protocol bug class.
func badCombine(sl *slot, d *deferred, ht *table) {
	ht.Put(1, 2)
	d.stores++
	sl.state.Store(slotDone) // want "slot done-flip (slotDone) is reachable before the pending batch is committed"
	d.Flush()
}

// recycleSlots: non-Done transitions are not acks.
func recycleSlots(sl *slot, ht *table) {
	ht.Put(3, 4)
	sl.state.Store(slotEmpty)
	sl.state.Store(slotAnnounced)
}
