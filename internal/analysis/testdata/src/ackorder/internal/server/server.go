// Package server exercises ackorder in a package whose import path
// ends in internal/server. The batch type lives in-package, which makes
// it a batch carrier for the analyzer.
package server

type batch struct{ pending int }

func (b *batch) Put(k, v uint64) { b.pending++ }
func (b *batch) Get(k uint64) (uint64, bool) {
	return 0, false
}
func (b *batch) Commit() int {
	n := b.pending
	b.pending = 0
	return n
}

func writeResp(n int) {}

// goodOrder commits before acking.
func goodOrder(b *batch) {
	b.Put(1, 2)
	b.Commit()
	writeResp(1)
}

// goodConditionalCommit is the Batcher.Exec shape: the commit is
// conditional, correlated with whether the loop produced effects. The
// asymmetric join must not flag the ack.
func goodConditionalCommit(b *batch, ops []uint64) {
	n := 0
	for _, op := range ops {
		b.Put(op, op)
		n++
	}
	if n > 0 {
		b.Commit()
	}
	writeResp(n)
}

// readsNeedNoCommit: Get carries no commit obligation.
func readsNeedNoCommit(b *batch) {
	v, _ := b.Get(7)
	writeResp(int(v))
}

// ackBeforeCommit acks while the batch is dirty.
func ackBeforeCommit(b *batch) {
	b.Put(1, 2)
	writeResp(1) // want "response write (writeResp) is reachable before the pending batch is committed"
	b.Commit()
}

// ackOnEffectBranch: the effect branch acks without committing.
func ackOnEffectBranch(b *batch, store bool) {
	if store {
		b.Put(3, 4)
		writeResp(1) // want "response write (writeResp) is reachable before the pending batch is committed"
	} else {
		b.Commit()
		writeResp(0)
	}
}

// helperCommit commits via a helper; the summary must see it.
func helperCommit(b *batch) {
	b.Put(5, 6)
	commitQuietly(b)
	writeResp(1)
}

func commitQuietly(b *batch) { b.Commit() }

// closureAck acks via a local closure; calling it dirty is flagged at
// the call site.
func closureAck(b *batch) {
	writeResps := func(n int) { writeResp(n) }
	b.Put(8, 9)
	writeResps(1) // want "response write (writeResps) is reachable before the pending batch is committed"
	b.Commit()
	writeResps(1)
}

// suppressedAck documents an intentional early ack (chaos tooth shape).
func suppressedAck(b *batch) {
	b.Put(1, 1)
	writeResp(1) //flitvet:ignore ackorder fixture: chaos tooth acks before commit by design
	b.Commit()
}
