// Package app exercises hotpath: annotated functions must stay
// allocation-free.
package app

import (
	"fmt"
	"time"
)

type recorder struct {
	buckets [64]uint64
	labels  map[string]int
}

//flit:hotpath
func hotViolations(r *recorder, v uint64) string {
	start := time.Now()       // want "time.Now on a //flit:hotpath function"
	s := fmt.Sprintf("%d", v) // want "fmt.Sprintf allocates"
	for k := range r.labels { // want "map iteration on a //flit:hotpath function"
		s += k
	}
	f := func() uint64 { return v } // want "closure captures v"
	_ = f()
	var sink any = start // want "value converts to interface here"
	_ = sink
	return s
}

//flit:hotpath
func hotClean(r *recorder, v uint64) uint64 {
	i := int(v % 64)
	r.buckets[i] += v
	return r.buckets[i]
}

// coldPath is unannotated: the same constructs are fine here.
func coldPath(r *recorder, v uint64) string {
	defer func() { _ = recover() }()
	s := fmt.Sprintf("%d-%v", v, time.Now())
	for k := range r.labels {
		s += k
	}
	return s
}

// hotSuppressed documents a deliberate exception: the function-doc
// ignore suppresses hotpath for the whole body.
//
//flit:hotpath
//flitvet:ignore hotpath fixture: startup-only slow path kept annotated for visibility
func hotSuppressed(r *recorder) {
	_ = time.Now()
}

//flit:hotpath
func boxingInCall(v uint64) {
	sink(v) // want "value converts to interface here"
}

func sink(x any) {}
