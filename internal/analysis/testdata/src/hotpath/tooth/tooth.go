// Package tooth is the hotpath mutation tooth: an annotated hot path
// that allocates. The analyzer MUST flag it.
package tooth

import "fmt"

// RecordSlow formats inside the record path — the exact regression the
// allocs-per-op pin tests catch at runtime.
//
//flit:hotpath
func RecordSlow(v uint64) string {
	return fmt.Sprintf("v=%d", v) // want "fmt.Sprintf allocates"
}
