// Package tooth is the persistraw mutation tooth: a known-bad file the
// analyzer MUST flag. The suite fails if it produces no finding here —
// that would mean the analyzer lost its bite.
package tooth

import "flit/internal/analysis/testdata/src/persistraw/internal/pmem"

// LeakFlush skips the policy entirely: a store with a bare flush from
// application code. This is the PR 4 bug class distilled.
func LeakFlush(t *pmem.Thread, a pmem.Addr, v uint64) {
	t.Store(a, v) // want "raw pmem.Thread.Store bypasses"
	t.PWB(a)      // want "raw pmem.Thread.PWB bypasses"
}
