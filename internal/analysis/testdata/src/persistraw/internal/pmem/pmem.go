// Package pmem is a fixture stub whose import path ends in
// internal/pmem, so the analyzers treat its types as the real pmem
// package's. Raw instructions issued *inside* this package are allowed
// (it owns the persistence protocol).
package pmem

import "sync/atomic"

type Addr uint64

type Thread struct{ n uint64 }

func (t *Thread) Load(a Addr) uint64           { return 0 }
func (t *Thread) Store(a Addr, v uint64)       {}
func (t *Thread) CAS(a Addr, o, n uint64) bool { return true }
func (t *Thread) FAA(a Addr, d uint64) uint64  { return 0 }
func (t *Thread) Exchange(a Addr, v uint64) uint64 {
	return 0
}
func (t *Thread) PWB(a Addr) {}
func (t *Thread) PFence()    {}
func (t *Thread) Drain() int { return 0 }
func (t *Thread) Release()   {}

type Memory struct {
	Words []uint64
	seq   atomic.Uint64
}

func (m *Memory) RegisterThread() *Thread { return &Thread{} }

// internalWrite is a negative fixture: this package owns the protocol,
// so its own raw instructions are not flagged.
func (m *Memory) internalWrite(t *Thread, a Addr, v uint64) {
	t.Store(a, v)
	t.PWB(a)
	t.PFence()
	atomic.StoreUint64(&m.Words[a], v)
}
