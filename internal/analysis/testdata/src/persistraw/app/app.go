// Package app exercises persistraw: raw pmem instructions outside the
// protocol-owning packages.
package app

import (
	"sync/atomic"

	"flit/internal/analysis/testdata/src/persistraw/internal/pmem"
)

type shard struct {
	head atomic.Uint64 // volatile DRAM-side mirror
}

func rawWrites(t *pmem.Thread, a pmem.Addr, v uint64) {
	t.Store(a, v)        // want "raw pmem.Thread.Store bypasses"
	t.PWB(a)             // want "raw pmem.Thread.PWB bypasses"
	t.PFence()           // want "raw pmem.Thread.PFence bypasses"
	_ = t.CAS(a, 0, v)   // want "raw pmem.Thread.CAS bypasses"
	_ = t.FAA(a, 1)      // want "raw pmem.Thread.FAA bypasses"
	_ = t.Exchange(a, v) // want "raw pmem.Thread.Exchange bypasses"
	_ = t.Drain()        // want "raw pmem.Thread.Drain bypasses"
}

// rawReads is a negative fixture: loads carry no flush obligation.
func rawReads(t *pmem.Thread, a pmem.Addr) uint64 {
	return t.Load(a)
}

func atomicOnPmem(m *pmem.Memory, a pmem.Addr, v uint64) {
	atomic.StoreUint64(&m.Words[a], v) // want "atomic StoreUint64 on internal/pmem-typed state"
	atomic.AddUint64(&m.Words[a], 1)   // want "atomic AddUint64 on internal/pmem-typed state"
	_ = atomic.LoadUint64(&m.Words[a]) // loads are not flagged
}

// volatileMirror is a negative fixture: storing a pmem.Addr *value*
// into a DRAM-side atomic is not a persistence bypass (the destination
// is not pmem-owned).
func volatileMirror(s *shard, a pmem.Addr) {
	s.head.Store(uint64(a))
}

// Recovery rebuilds state single-threaded with its own fence
// discipline.
//
//flit:rawpersist fixture: manual recovery region
func Recovery(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.PWB(a)
	t.PFence()
}

func suppressed(t *pmem.Thread, a pmem.Addr) {
	//flitvet:ignore persistraw fixture: intentional one-off raw store
	t.Store(a, 2)
	t.PWB(a) //flitvet:ignore persistraw fixture: same-line suppression
}
