package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HandleClose is a flow-sensitive check that every acquired handle
// reaches its release on all paths out of the acquiring function —
// including early error returns and explicit panics — unless ownership
// demonstrably escapes (stored in a struct, passed to another call,
// returned to the caller).
//
// PR 9 fixed this leak class dynamically (pmem thread-slot exhaustion,
// arena leaks on the shard-split error path); this analyzer prevents it
// at review time.
var HandleClose = &Analyzer{
	Name: "handleclose",
	Doc: "flow-sensitive check that acquired handles (pmem.Memory.RegisterThread, " +
		"pheap.Heap.NewArena, store.Open sessions, reclaim.Domain.NewHandle, " +
		"dstruct table Open handles) reach Release/Close on every path out of the " +
		"acquiring function, including error returns and explicit panics",
	Run: runHandleClose,
}

// handleSpec describes one acquisition → release pairing. Acquisitions
// are matched by callee method/function name and defining package
// suffix; the release is any of releaseNames invoked on the acquired
// value.
type handleSpec struct {
	pkgSuffix    string
	acquireNames map[string]bool
	releaseNames map[string]bool
	what         string
}

var handleSpecs = []handleSpec{
	{
		pkgSuffix:    "internal/pmem",
		acquireNames: map[string]bool{"RegisterThread": true, "NewThread": true},
		releaseNames: map[string]bool{"Release": true},
		what:         "pmem thread",
	},
	{
		pkgSuffix:    "internal/pheap",
		acquireNames: map[string]bool{"NewArena": true},
		releaseNames: map[string]bool{"Release": true},
		what:         "heap arena",
	},
	{
		pkgSuffix:    "internal/store",
		acquireNames: map[string]bool{"Open": true},
		releaseNames: map[string]bool{"Close": true},
		what:         "store session",
	},
	{
		pkgSuffix:    "internal/reclaim",
		acquireNames: map[string]bool{"NewHandle": true, "NewHandleOwned": true},
		releaseNames: map[string]bool{"Close": true},
		what:         "reclamation handle",
	},
	{
		pkgSuffix:    "internal/dstruct/hashtable",
		acquireNames: map[string]bool{"Open": true},
		releaseNames: map[string]bool{"Close": true},
		what:         "table thread handle",
	},
	{
		pkgSuffix:    "internal/dstruct/list",
		acquireNames: map[string]bool{"Open": true},
		releaseNames: map[string]bool{"Close": true},
		what:         "list thread handle",
	},
}

func runHandleClose(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncHandles(pass, fd.Body)
		}
	}
	return nil
}

// acquisition is one tracked handle: the local variable it was assigned
// to, the spec that matched, and the statement chain from the
// acquisition to the end of the function.
type acquisition struct {
	obj  types.Object
	spec *handleSpec
	pos  token.Pos
}

// checkFuncHandles finds handle acquisitions assigned to fresh local
// variables in body and verifies each reaches release on all paths.
func checkFuncHandles(pass *Pass, body *ast.BlockStmt) {
	// Locate acquisitions: `x := <acquire call>` or `x, err := ...`.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures are analyzed via their own paths below
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		spec := matchAcquire(pass.TypesInfo, call)
		if spec == nil {
			return true
		}
		// The handle is whichever LHS variable got a type from the
		// spec's package (handles (h, err) shapes).
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if n := namedOf(obj.Type()); n == nil || n.Obj().Pkg() == nil ||
				!pathHasSuffix(n.Obj().Pkg().Path(), spec.pkgSuffix) {
				continue
			}
			acq := &acquisition{obj: obj, spec: spec, pos: as.Pos()}
			chain := remainderChain(body, as)
			if chain == nil {
				continue
			}
			w := &handleWalker{pass: pass, acq: acq}
			terminated := false
			for _, seg := range chain {
				if terminated || w.st != hLive {
					break
				}
				terminated = w.walkStmts(seg)
			}
			if !terminated && w.st == hLive && !w.deferred && !w.reported {
				pass.Reportf(acq.pos, "%s acquired here is never released (want %s)",
					acq.spec.what, nameList(acq.spec.releaseNames))
			}
		}
		return true
	})
}

// matchAcquire reports the handleSpec matched by call, or nil.
func matchAcquire(info *types.Info, call *ast.CallExpr) *handleSpec {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	for i := range handleSpecs {
		spec := &handleSpecs[i]
		if !spec.acquireNames[fn.Name()] {
			continue
		}
		if pathHasSuffix(pkgPathOf(fn), spec.pkgSuffix) {
			return spec
		}
	}
	return nil
}

// remainderChain returns the statement lists from target to the end of
// the function: the tail of target's own block (after target), then
// the tail of each enclosing block after the statement containing it.
func remainderChain(body *ast.BlockStmt, target ast.Stmt) [][]ast.Stmt {
	var chain [][]ast.Stmt
	var find func(list []ast.Stmt) bool
	find = func(list []ast.Stmt) bool {
		for i, s := range list {
			if s == target {
				chain = append(chain, list[i+1:])
				return true
			}
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if blk, ok := n.(*ast.BlockStmt); ok && blk != nil {
					if find(blk.List) {
						found = true
						return false
					}
				}
				if cc, ok := n.(*ast.CaseClause); ok {
					if find(cc.Body) {
						found = true
						return false
					}
				}
				if cc, ok := n.(*ast.CommClause); ok {
					if find(cc.Body) {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				chain = append(chain, list[i+1:])
				return true
			}
		}
		return false
	}
	if !find(body.List) {
		return nil
	}
	return chain
}

type hstate int

const (
	hLive hstate = iota
	hReleased
	hEscaped
)

// handleWalker evaluates the statements after an acquisition,
// tracking whether the handle has been released, escaped, or is still
// live. It is deliberately conservative: any use of the handle other
// than a release call, a nil comparison, or a field read makes it
// escape (ownership transferred — stop tracking).
type handleWalker struct {
	pass     *Pass
	acq      *acquisition
	st       hstate
	deferred bool // a deferred release covers every later exit
	reported bool
}

// walkStmts evaluates list; the return value reports whether the path
// terminated (return/panic/branch) within it.
func (w *handleWalker) walkStmts(list []ast.Stmt) (terminated bool) {
	for _, s := range list {
		if w.st != hLive && !w.deferred {
			// Released or escaped: nothing more to check on this path.
			return false
		}
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

func (w *handleWalker) walkStmt(s ast.Stmt) (terminated bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if ok && w.isReleaseCall(call) {
			w.st = hReleased
			return false
		}
		if ok && isPanicCall(w.pass.TypesInfo, call) {
			if w.st == hLive && !w.deferred && !w.reported {
				w.report(st.Pos(), "panics")
			}
			return true
		}
		if w.usesHandle(st.X) {
			w.st = hEscaped
		}
	case *ast.DeferStmt:
		if w.isReleaseCall(st.Call) || w.deferredLitReleases(st.Call) {
			w.deferred = true
			return false
		}
		if w.usesHandle(st.Call) {
			w.st = hEscaped
		}
	case *ast.GoStmt:
		if w.usesHandle(st.Call) {
			w.st = hEscaped
		}
	case *ast.AssignStmt:
		for _, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok && w.pass.TypesInfo.Uses[id] == w.acq.obj {
				w.st = hEscaped // reassigned; stop tracking
				return false
			}
		}
		for _, r := range st.Rhs {
			if w.usesHandle(r) {
				w.st = hEscaped
				return false
			}
		}
		for _, l := range st.Lhs {
			if w.usesHandle(l) { // e.g. c.t = t via selector on handle? (lhs uses)
				w.st = hEscaped
				return false
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if w.usesHandle(r) {
				w.st = hEscaped // returned to caller: ownership transferred
				return true
			}
		}
		if w.st == hLive && !w.deferred && !w.reported {
			w.report(st.Pos(), "returns")
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if w.usesHandleNonCompare(st.Cond) {
			w.st = hEscaped
			return false
		}
		pre := w.snapshot()
		thenTerm := w.walkStmts(st.Body.List)
		thenExit := w.snapshot()
		w.restore(pre)
		elseTerm := false
		if st.Else != nil {
			elseTerm = w.walkStmt(st.Else)
		}
		elseExit := w.snapshot()
		w.joinBranches(pre, thenExit, thenTerm, elseExit, elseTerm)
		return thenTerm && elseTerm && st.Else != nil
	case *ast.BlockStmt:
		return w.walkStmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil && w.usesHandleNonCompare(st.Cond) {
			w.st = hEscaped
			return false
		}
		w.walkStmts(st.Body.List) // optimistic: adopt body effects
		return false
	case *ast.RangeStmt:
		if w.usesHandleNonCompare(st.X) {
			w.st = hEscaped
			return false
		}
		w.walkStmts(st.Body.List)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkSwitch(st)
		return false
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: path leaves this region; approximate as
		// terminated so we don't mis-report the fallthrough state.
		return true
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		if w.usesHandleNode(s) {
			w.st = hEscaped
		}
	}
	return false
}

type hsnap struct {
	st       hstate
	deferred bool
}

func (w *handleWalker) snapshot() hsnap { return hsnap{w.st, w.deferred} }
func (w *handleWalker) restore(s hsnap) { w.st, w.deferred = s.st, s.deferred }

// joinBranches merges the exits of an if/else. Escape on any live
// branch wins (stop tracking — conservative against false positives);
// otherwise the handle counts released only if all live branches
// released it.
func (w *handleWalker) joinBranches(pre hsnap, a hsnap, aTerm bool, b hsnap, bTerm bool) {
	exits := []hsnap{}
	if !aTerm {
		exits = append(exits, a)
	}
	if !bTerm {
		exits = append(exits, b)
	}
	if len(exits) == 0 {
		w.restore(pre)
		return
	}
	joined := exits[0]
	for _, e := range exits[1:] {
		if e.st == hEscaped || joined.st == hEscaped {
			joined.st = hEscaped
		} else if e.st == hLive || joined.st == hLive {
			joined.st = hLive
		}
		joined.deferred = joined.deferred && e.deferred
	}
	// A deferred release in every surviving branch counts globally.
	w.restore(joined)
}

func (w *handleWalker) walkSwitch(s ast.Stmt) {
	pre := w.snapshot()
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(body []ast.Stmt, isDefault bool) {
		bodies = append(bodies, body)
		hasDefault = hasDefault || isDefault
	}
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		for _, c := range sw.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range sw.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.SelectStmt:
		for _, c := range sw.Body.List {
			cc := c.(*ast.CommClause)
			collect(cc.Body, cc.Comm == nil)
		}
	}
	var exits []hsnap
	for _, b := range bodies {
		w.restore(pre)
		if !w.walkStmts(b) {
			exits = append(exits, w.snapshot())
		}
	}
	if !hasDefault {
		exits = append(exits, pre)
	}
	if len(exits) == 0 {
		w.restore(pre)
		return
	}
	joined := exits[0]
	for _, e := range exits[1:] {
		if e.st == hEscaped || joined.st == hEscaped {
			joined.st = hEscaped
		} else if e.st == hLive || joined.st == hLive {
			joined.st = hLive
		}
		joined.deferred = joined.deferred && e.deferred
	}
	w.restore(joined)
}

func (w *handleWalker) report(pos token.Pos, how string) {
	w.reported = true
	w.pass.Reportf(pos, "function %s without releasing %s acquired at %s (want %s)",
		how, w.acq.spec.what, w.pass.Fset.Position(w.acq.pos), nameList(w.acq.spec.releaseNames))
}

// isReleaseCall reports whether call is `<handle>.<Release>()`.
func (w *handleWalker) isReleaseCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !w.acq.spec.releaseNames[sel.Sel.Name] {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.pass.TypesInfo.Uses[id] == w.acq.obj
}

// deferredLitReleases reports whether call is an immediately-invoked
// func literal (as in `defer func() { ...; h.Close() }()`) whose body
// releases the handle.
func (w *handleWalker) deferredLitReleases(call *ast.CallExpr) bool {
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	releases := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && w.isReleaseCall(c) {
			releases = true
			return false
		}
		return true
	})
	return releases
}

// usesHandle reports whether expr mentions the handle in a way that
// transfers ownership: passed as an argument, placed in a composite
// literal, aliased, returned, captured. NOT counted: release calls,
// nil comparisons, and the receiver position of any method call on the
// handle (h.Work() is use, not transfer).
func (w *handleWalker) usesHandle(e ast.Expr) bool { return w.usesHandleNode(e) }

func (w *handleWalker) usesHandleNode(root ast.Node) bool {
	used := false
	receiverIdents := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if used {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if w.isReleaseCall(x) {
				return false // the release itself is not an escape
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok &&
					w.pass.TypesInfo.Uses[id] == w.acq.obj {
					receiverIdents[id] = true
				}
			}
		case *ast.BinaryExpr:
			if isNilCompare(w.pass.TypesInfo, x, w.acq.obj) {
				return false
			}
		case *ast.Ident:
			if w.pass.TypesInfo.Uses[x] == w.acq.obj && !receiverIdents[x] {
				used = true
				return false
			}
		}
		return true
	})
	return used
}

// usesHandleNonCompare is usesHandle for condition expressions, where
// nil comparisons are expected and benign.
func (w *handleWalker) usesHandleNonCompare(e ast.Expr) bool {
	return w.usesHandleNode(e)
}

func isNilCompare(info *types.Info, b *ast.BinaryExpr, obj types.Object) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isObj(b.X) && isNil(b.Y)) || (isNil(b.X) && isObj(b.Y))
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func nameList(m map[string]bool) string {
	out := ""
	for _, n := range []string{"Release", "Close", "Commit"} {
		if m[n] {
			if out != "" {
				out += "/"
			}
			out += n
		}
	}
	return out
}
