package analysis

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one analyzer's fixture tree under testdata/src and
// returns the diagnostics of running the given analyzers over it
// (suppressions applied, exactly as the driver would).
func loadFixture(t *testing.T, sub string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+sub+"/...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", sub, err)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, e := range pkg.LoadErrors {
			t.Fatalf("fixture %s: load error in %s: %s", sub, pkg.PkgPath, e)
		}
		diags = append(diags, Run(pkg, analyzers)...)
	}
	return diags
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one `// want "substr"` comment in a fixture file.
type expectation struct {
	file string
	line int
	want string
}

// collectWants scans every .go file under the fixture dir for want
// comments.
func collectWants(t *testing.T, sub string) []expectation {
	t.Helper()
	var out []expectation
	root := filepath.Join("testdata", "src", sub)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		ln := 0
		for sc.Scan() {
			ln++
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				out = append(out, expectation{file: path, line: ln, want: m[1]})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning %s: %v", root, err)
	}
	return out
}

// checkFixture runs analyzers over the fixture and enforces an exact
// match: every want comment matched by a diagnostic on its line, and no
// diagnostic without a want comment.
func checkFixture(t *testing.T, sub string, analyzers ...*Analyzer) {
	t.Helper()
	diags := loadFixture(t, sub, analyzers...)
	wants := collectWants(t, sub)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Line != w.line || !sameFile(d.Pos.Filename, w.file) {
				continue
			}
			if strings.Contains(d.Message, w.want) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.want)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func sameFile(diagPath, wantPath string) bool {
	return filepath.Base(diagPath) == filepath.Base(wantPath) &&
		strings.Contains(filepath.ToSlash(diagPath), filepath.ToSlash(filepath.Dir(wantPath)))
}

func TestPersistRawFixtures(t *testing.T)  { checkFixture(t, "persistraw", PersistRaw) }
func TestHandleCloseFixtures(t *testing.T) { checkFixture(t, "handleclose", HandleClose) }
func TestAckOrderFixtures(t *testing.T)    { checkFixture(t, "ackorder", AckOrder) }
func TestHotPathFixtures(t *testing.T)     { checkFixture(t, "hotpath", HotPath) }

// TestMutationTeeth is the analyzers' own tooth battery: each tooth
// package is a known-bad file its analyzer MUST flag. If an analyzer
// returns zero findings on its tooth, the analyzer has lost its bite
// and the suite fails — the same idiom the dlcheck and chaos harnesses
// use for their detectors.
func TestMutationTeeth(t *testing.T) {
	teeth := []struct {
		analyzer *Analyzer
		sub      string
	}{
		{PersistRaw, "persistraw/tooth"},
		{HandleClose, "handleclose/tooth"},
		{AckOrder, "ackorder/tooth"},
		{HotPath, "hotpath/tooth"},
	}
	for _, tooth := range teeth {
		t.Run(tooth.analyzer.Name, func(t *testing.T) {
			diags := loadFixture(t, tooth.sub, tooth.analyzer)
			n := 0
			for _, d := range diags {
				if d.Analyzer == tooth.analyzer.Name {
					n++
				}
			}
			if n == 0 {
				t.Fatalf("mutation tooth undetected: %s produced no findings on testdata/src/%s",
					tooth.analyzer.Name, tooth.sub)
			}
		})
	}
}

// TestSuiteCleanOnTree runs the full suite over the repository exactly
// as the flitvet gate does and requires zero findings: the committed
// tree must stay clean.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.LoadErrors {
			t.Fatalf("%s: load error: %s", pkg.PkgPath, e)
		}
		for _, d := range Run(pkg, All()) {
			t.Errorf("tree not flitvet-clean: %s", d)
		}
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("persistraw,hotpath")
	if err != nil || len(got) != 2 || got[0] != PersistRaw || got[1] != HotPath {
		t.Fatalf("ByName(persistraw,hotpath) = %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %v, %v", all, err)
	}
}

func TestMalformedIgnoreReported(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module ignorecheck\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

func main() {
	//flitvet:ignore persistraw
	_ = 1
	//flitvet:ignore notananalyzer some reason
	_ = 2
}
`)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var got []Diagnostic
	for _, pkg := range pkgs {
		got = append(got, Run(pkg, All())...)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 malformed-ignore diagnostics, got %v", got)
	}
	for _, d := range got {
		if d.Analyzer != "flitvet" || !strings.Contains(d.Message, "malformed //flitvet:ignore") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFixturesAreGofmtClean keeps the fixture tree formatted: testdata
// is invisible to ./... patterns, so the repo-wide gofmt gate does not
// see it.
func TestFixturesAreGofmtClean(t *testing.T) {
	out, err := exec.Command("gofmt", "-l", "testdata").CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt -l testdata: %v\n%s", err, out)
	}
	if s := strings.TrimSpace(string(out)); s != "" {
		t.Errorf("fixture files need gofmt:\n%s", s)
	}
}
