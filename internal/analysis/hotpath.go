package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath checks functions annotated //flit:hotpath — the op loops,
// policy skeletons, write-back queue, and metrics record paths whose
// zero-allocation property PR 3 and PR 6 pinned with runtime
// allocs-per-op tests. The analyzer turns those pins into review-time
// errors by flagging the constructs that allocate or stall on these
// paths:
//
//   - time.Now / time.Since (vDSO call + defeats the cached-clock idiom)
//   - any fmt call (Sprintf/Errorf/Fprintf all allocate)
//   - function literals that capture variables (closure allocation)
//   - map iteration (randomized, allocation-prone, cache-hostile)
//   - implicit interface conversions of concrete values (boxing
//     allocation) in call arguments, assignments, and returns
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "for functions annotated //flit:hotpath, flags time.Now, fmt calls, " +
		"capturing closures, map iteration, and interface-boxing conversions " +
		"(the zero-allocation hot-path discipline)",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := funcAnnotations(pass.Fset, f, fd)["hotpath"]; hot {
				checkHotBody(pass, fd)
			}
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				switch pkgPathOf(fn) {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
						pass.Reportf(x.Pos(), "time.%s on a //flit:hotpath function; use the cached coarse clock or record outside the hot path", fn.Name())
					}
				case "fmt":
					pass.Reportf(x.Pos(), "fmt.%s allocates on a //flit:hotpath function", fn.Name())
				}
			}
			checkBoxingCall(pass, x)
		case *ast.FuncLit:
			if free := capturedVars(info, fd, x); len(free) > 0 {
				pass.Reportf(x.Pos(), "closure captures %s on a //flit:hotpath function (closure allocation)", free[0])
			}
			return false // don't double-report inside the literal
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "map iteration on a //flit:hotpath function")
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if i < len(x.Names) {
					if obj := info.Defs[x.Names[i]]; obj != nil {
						checkBoxingInto(pass, v, obj.Type())
					}
				}
			}
		case *ast.AssignStmt:
			for i := range x.Lhs {
				if i < len(x.Rhs) && len(x.Lhs) == len(x.Rhs) {
					checkBoxingAssign(pass, x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			// Boxing in returns is checked against the signature.
			sig, _ := info.Defs[fd.Name].(*types.Func)
			if sig != nil {
				res := sig.Type().(*types.Signature).Results()
				if res.Len() == len(x.Results) {
					for i, r := range x.Results {
						checkBoxingInto(pass, r, res.At(i).Type())
					}
				}
			}
		}
		return true
	})
}

// checkBoxingCall flags call arguments whose concrete values convert
// implicitly to interface parameters (a boxing allocation).
func checkBoxingCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if fn := calleeFunc(info, call); fn != nil && pkgPathOf(fn) == "fmt" {
		return // the fmt call itself is already reported
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	// Skip conversions and builtins (len, append, ...).
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // slice passed whole; no per-element boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			checkBoxingInto(pass, arg, pt)
		}
	}
}

func checkBoxingAssign(pass *Pass, lhs, rhs ast.Expr) {
	info := pass.TypesInfo
	lt, ok := info.Types[lhs]
	if !ok {
		return
	}
	checkBoxingInto(pass, rhs, lt.Type)
}

// checkBoxingInto reports expr when it is a concrete (non-interface,
// non-nil, non-constant-string-into-any-ok... the simple cases) value
// converted implicitly to an interface-typed destination.
func checkBoxingInto(pass *Pass, expr ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	info := pass.TypesInfo
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	if _, srcIface := tv.Type.Underlying().(*types.Interface); srcIface {
		return // interface-to-interface: no box
	}
	if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
		return // func values into error-ish interfaces are rare; skip
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		// Untyped constants still box, but small ints use the runtime's
		// staticuint64s pool; flag them anyway for discipline? No — too
		// noisy for error-free code; skip untyped constants.
		return
	}
	pass.Reportf(expr.Pos(), "%s value converts to interface here (boxing allocation) on a //flit:hotpath function", tv.Type.String())
}

// capturedVars returns the names of variables the literal captures from
// the enclosing function (free variables declared outside the literal
// but inside the function).
func capturedVars(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || seen[v] || v.Pos() == 0 {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal.
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			seen[v] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}
