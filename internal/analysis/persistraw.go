package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PersistRaw flags persistence-bypassing writes to pmem-backed state
// outside the packages that own the persistence protocol.
//
// The FliT discipline routes every durable mutation through a
// core.Policy skeleton (fence ordering, apply, flush marking). A raw
// pmem.Thread instruction (Store/CAS/FAA/Exchange) or a bare
// PWB/PFence/Drain issued from arbitrary code skips the policy's flush
// obligations — exactly the class of bug PR 4's failed-p-CAS fix
// repaired after the fact. Likewise, a sync/atomic call whose operands
// reach into pmem- or pheap-owned state mutates persistent words behind
// the policy's back.
//
// Allowed: packages whose import path ends in internal/pmem or
// internal/core (they implement the protocol), and functions annotated
// `//flit:rawpersist <reason>` (manual-persistence regions such as
// superblock writes and single-threaded recovery rebuilds, which carry
// their own PWB/PFence discipline).
var PersistRaw = &Analyzer{
	Name: "persistraw",
	Doc: "flags raw pmem.Thread instructions and sync/atomic calls on pmem-backed words " +
		"outside internal/pmem and internal/core (persistence-bypassing writes that skip " +
		"the policy fence-apply-flush skeleton); silence with a //flit:rawpersist <reason> " +
		"function annotation",
	Run: runPersistRaw,
}

// rawThreadMethods are the pmem.Thread instructions that mutate or
// persist pmem state. Load is deliberately absent: raw reads are common
// in recovery and carry no flush obligation of their own.
var rawThreadMethods = map[string]bool{
	"Store":    true,
	"CAS":      true,
	"FAA":      true,
	"Exchange": true,
	"PWB":      true,
	"PFence":   true,
	"Drain":    true,
}

// persistOwnerPkgs may issue raw pmem instructions freely: pmem and
// core implement the protocol, and pheap is the persistent allocator,
// whose block headers carry their own crash-consistency discipline.
var persistOwnerPkgs = []string{"internal/pmem", "internal/core", "internal/pheap"}

// mutatingAtomicNames are the sync/atomic operations that write.
// (Loads are deliberately excluded: raw reads carry no flush
// obligation.) Both the package functions (StoreUint64, AddUint64, ...)
// and the methods on atomic values (Store, Add, ...) share these
// prefixes.
var mutatingAtomicNames = []string{"Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

func isMutatingAtomicName(name string) bool {
	for _, p := range mutatingAtomicNames {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// pmemStatePkgs own persistent state: sync/atomic operands typed by
// them indicate a policy-bypassing write.
var pmemStatePkgs = []string{"internal/pmem", "internal/pheap"}

func runPersistRaw(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	for _, owner := range persistOwnerPkgs {
		if pathHasSuffix(pass.Pkg.Path(), owner) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Raw pmem.Thread instruction.
			if recv, name, ok := methodCall(pass.TypesInfo, call); ok &&
				rawThreadMethods[name] && typeIs(recv, "internal/pmem", "Thread") {
				if !hasAnnotation(pass.Fset, pass.Files, call.Pos(), "rawpersist") {
					pass.Reportf(call.Pos(),
						"raw pmem.Thread.%s bypasses the persistence policy; route through a core.Policy/Deferred, or annotate the function //flit:rawpersist <reason>",
						name)
				}
				return true
			}
			// A mutating sync/atomic operation — either a package function
			// (atomic.StoreUint64) or a method on an atomic value
			// (atomic.Uint64.Store) — whose operands carry pmem-owned
			// types. The two shapes are distinguished so each call is
			// reported exactly once.
			atomicOp := ""
			isMethod := false
			if recv, name, ok := methodCall(pass.TypesInfo, call); ok {
				if n := namedOf(recv); n != nil && n.Obj().Pkg() != nil &&
					n.Obj().Pkg().Path() == "sync/atomic" && isMutatingAtomicName(name) {
					atomicOp = name
					isMethod = true
				}
			} else if fn := calleeFunc(pass.TypesInfo, call); fn != nil &&
				pkgPathOf(fn) == "sync/atomic" && isMutatingAtomicName(fn.Name()) {
				atomicOp = fn.Name()
			}
			if atomicOp != "" {
				if arg := pmemTypedOperand(pass.TypesInfo, call, isMethod); arg != "" {
					if !hasAnnotation(pass.Fset, pass.Files, call.Pos(), "rawpersist") {
						pass.Reportf(call.Pos(),
							"atomic %s on %s-typed state bypasses the persistence policy; use the pmem.Thread / core.Policy API, or annotate the function //flit:rawpersist <reason>",
							atomicOp, arg)
					}
				}
			}
			return true
		})
	}
	return nil
}

// pmemTypedOperand reports (as a package suffix, "" if none) whether
// the *destination* of the atomic write is pmem-owned state: the
// receiver expression for atomic-value methods (h.meta.Store(v)), the
// pointer argument for package functions (atomic.StoreUint64(&w, v)).
// Value operands are deliberately not scanned — storing a pmem.Addr
// *value* into a volatile DRAM-side atomic (queue head/tail mirrors,
// metrics counters fed from pmem stats) is not a persistence bypass.
func pmemTypedOperand(info *types.Info, call *ast.CallExpr, isMethod bool) string {
	found := ""
	var check func(t types.Type)
	check = func(t types.Type) {
		if t == nil || found != "" {
			return
		}
		n := namedOf(t)
		if n == nil || n.Obj().Pkg() == nil {
			// Also catch slices/maps of named pmem types.
			switch u := t.(type) {
			case *types.Slice:
				check(u.Elem())
			case *types.Array:
				check(u.Elem())
			}
			return
		}
		for _, p := range pmemStatePkgs {
			if pathHasSuffix(n.Obj().Pkg().Path(), p) {
				found = p
				return
			}
		}
	}
	scan := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			if ex, ok := n.(ast.Expr); ok {
				if tv, ok := info.Types[ex]; ok {
					check(tv.Type)
				}
			}
			return true
		})
	}
	if isMethod {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			scan(sel.X)
		}
	} else if len(call.Args) > 0 {
		scan(call.Args[0])
	}
	return found
}
