package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AckOrder enforces the ack ⇒ persisted invariant in the server and the
// store's flat combiner: no response write or combiner slot done-flip
// may be reachable while the current batch of store effects is still
// uncommitted (i.e. before the corresponding Deferred.Flush / session
// Commit has run on that path).
//
// This is the ordering the combiner protocol pins dynamically
// (execSlot → flushDeltas → Deferred.Flush → slotDone) and the drain
// under-answering fix of PR 8 restored in the server; the analyzer
// makes the ordering a review-time error.
//
// Analysis is path-sensitive within a function, with one-level callee
// summaries so that a helper that commits (or a method like
// Batcher.Exec that applies effects and commits internally) is
// accounted for at its call site.
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc: "in internal/server and the store combiner, flags response writes and " +
		"slot done-flips reachable before the corresponding Deferred.Flush/Commit " +
		"(the ack ⇒ persisted invariant)",
	Run: runAckOrder,
}

// ackScopePkgs are the packages where the invariant applies.
var ackScopePkgs = []string{"internal/server", "internal/store"}

// effectMethodNames are store-op methods that enqueue durable effects.
var effectMethodNames = map[string]bool{
	"Get": false, "Contains": false, // reads carry no commit obligation
	"Put": true, "Delete": true, "Add": true, "Insert": true,
	"Apply": true, "Exec": true, "Remove": true,
}

// commitMethodNames mark the batch as persisted.
var commitMethodNames = map[string]bool{
	"Commit": true, "Flush": true, "Drain": true, "PFence": true,
}

// ackEvent classifies what a statement does to the batch state.
type ackEvent int

const (
	evNone ackEvent = iota
	evEffect
	evCommit
	evAck
)

// ackSummary is the one-level summary of a callee: whether it can leave
// a new uncommitted effect at exit, whether it commits, and whether it
// contains an ack site (so calling it while dirty is itself a
// violation).
type ackSummary struct {
	dirtyAtExit bool
	commits     bool
	hasAck      bool
}

type ackAnalysis struct {
	pass      *Pass
	summaries map[types.Object]*ackSummary
	inFlight  map[types.Object]bool
	funcLits  map[types.Object]*ast.FuncLit // closure vars -> literal
	report    bool
}

func runAckOrder(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	inScope := false
	for _, p := range ackScopePkgs {
		if pathHasSuffix(pass.Pkg.Path(), p) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	a := &ackAnalysis{
		pass:      pass,
		summaries: map[types.Object]*ackSummary{},
		inFlight:  map[types.Object]bool{},
		funcLits:  map[types.Object]*ast.FuncLit{},
	}
	// Index closure assignments (x := func(){...}) so calls through the
	// variable can use a summary of the literal.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					a.funcLits[obj] = lit
				}
			}
			return true
		})
	}
	a.report = true
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.evalStmts(fd.Body.List, false)
			// Closures get their own entry-clean evaluation.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.evalStmts(lit.Body.List, false)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// branchResult reports how a statement list transformed the batch
// state along its fall-through path.
type branchResult struct {
	terminated bool
	// localEffect: the branch itself left a new uncommitted effect.
	localEffect bool
	// localCommit: the branch committed (and no effect followed).
	localCommit bool
}

// evalStmts walks list with entry dirtiness `dirty`, reporting ack
// violations as it goes, and returns the branch result.
func (a *ackAnalysis) evalStmts(list []ast.Stmt, dirty bool) branchResult {
	res := branchResult{}
	cur := dirty
	apply := func(ev ackEvent, n ast.Node, what string) {
		switch ev {
		case evEffect:
			cur = true
			res.localEffect = true
			res.localCommit = false
		case evCommit:
			cur = false
			res.localCommit = true
			res.localEffect = false
		case evAck:
			if cur && a.report {
				a.pass.Reportf(n.Pos(),
					"%s is reachable before the pending batch is committed; call Deferred.Flush/Commit first (ack ⇒ persisted)", what)
			}
		}
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ast.ReturnStmt:
			a.scanExprEvents(st, apply)
			res.terminated = true
			if cur {
				res.localEffect = res.localEffect || cur
			}
			return res
		case *ast.BranchStmt:
			res.terminated = true
			return res
		case *ast.IfStmt:
			if st.Init != nil {
				a.scanExprEvents(st.Init, apply)
			}
			a.scanExprEvents(st.Cond, apply)
			thenR := a.evalStmts(st.Body.List, cur)
			var elseR branchResult
			hasElse := st.Else != nil
			if hasElse {
				if blk, ok := st.Else.(*ast.BlockStmt); ok {
					elseR = a.evalStmts(blk.List, cur)
				} else {
					elseR = a.evalStmts([]ast.Stmt{st.Else}, cur)
				}
			}
			cur = joinBranchState(cur, []branchResult{thenR, elseR}, hasElse)
			if thenR.localEffect && !thenR.terminated {
				res.localEffect = true
			}
			if hasElse && elseR.localEffect && !elseR.terminated {
				res.localEffect = true
			}
			if !cur {
				if (thenR.localCommit && !thenR.terminated) || (hasElse && elseR.localCommit && !elseR.terminated) {
					res.localCommit = true
					res.localEffect = false
				}
			}
			if thenR.terminated && hasElse && elseR.terminated {
				res.terminated = true
				return res
			}
		case *ast.ForStmt:
			if st.Init != nil {
				a.scanExprEvents(st.Init, apply)
			}
			bodyR := a.evalStmts(st.Body.List, cur)
			cur = joinBranchState(cur, []branchResult{bodyR}, false)
			if bodyR.localEffect {
				res.localEffect = true
			}
		case *ast.RangeStmt:
			bodyR := a.evalStmts(st.Body.List, cur)
			cur = joinBranchState(cur, []branchResult{bodyR}, false)
			if bodyR.localEffect {
				res.localEffect = true
			}
		case *ast.BlockStmt:
			r := a.evalStmts(st.List, cur)
			cur = joinBranchState(cur, []branchResult{r}, true)
			res.localEffect = res.localEffect || r.localEffect
			res.localCommit = (res.localCommit || r.localCommit) && !cur
			if r.terminated {
				res.terminated = true
				return res
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var results []branchResult
			hasDefault := false
			forEachClause(st, func(body []ast.Stmt, isDefault bool) {
				results = append(results, a.evalStmts(body, cur))
				hasDefault = hasDefault || isDefault
			})
			cur = joinBranchState(cur, results, hasDefault)
			for _, r := range results {
				if r.localEffect && !r.terminated {
					res.localEffect = true
				}
			}
		case *ast.LabeledStmt:
			r := a.evalStmts([]ast.Stmt{st.Stmt}, cur)
			cur = joinBranchState(cur, []branchResult{r}, true)
			res.localEffect = res.localEffect || r.localEffect
			if r.terminated {
				res.terminated = true
				return res
			}
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred/concurrent work runs outside this path's ordering;
			// skip (the closure body is checked independently).
		default:
			a.scanExprEvents(s, apply)
		}
	}
	return res
}

// joinBranchState implements the asymmetric join: a branch that itself
// added an uncommitted effect dirties the merge; otherwise a branch
// that committed cleans it; otherwise the entry state carries through.
// The asymmetry avoids false positives on the idiomatic
// "if work { commit() }" conditional-commit shape, where the condition
// is correlated with whether effects exist.
func joinBranchState(entry bool, results []branchResult, covered bool) bool {
	for _, r := range results {
		if r.terminated {
			continue
		}
		if r.localEffect {
			return true
		}
	}
	for _, r := range results {
		if r.terminated {
			continue
		}
		if r.localCommit {
			return false
		}
	}
	return entry
}

// scanExprEvents walks a non-branching statement in source order and
// feeds effect/commit/ack events to apply.
func (a *ackAnalysis) scanExprEvents(root ast.Node, apply func(ackEvent, ast.Node, string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, what := a.classifyCall(call)
		if ev != evNone {
			apply(ev, call, what)
		}
		return true
	})
}

// classifyCall maps a call to its ack event.
func (a *ackAnalysis) classifyCall(call *ast.CallExpr) (ackEvent, string) {
	info := a.pass.TypesInfo

	// Ack site 1: combiner slot done-flip — a Store on an atomic value
	// reached via a selector whose field name mentions "state" with an
	// argument identifier containing "Done".
	if recv, name, ok := methodCall(info, call); ok && name == "Store" {
		if n := namedOf(recv); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic" {
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && strings.Contains(id.Name, "Done") {
					return evAck, "slot done-flip (" + id.Name + ")"
				}
			}
		}
	}

	// Ack site 2: response writes — calls to functions/methods whose
	// name marks them as emitting replies to the client.
	if fn := calleeFunc(info, call); fn != nil {
		name := fn.Name()
		if isAckName(name) && pathInAckScope(pkgPathOf(fn)) {
			return evAck, "response write (" + name + ")"
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		// Calls through local closures: writeResps-style ack helpers, or
		// summarized effect/commit helpers.
		if obj := info.Uses[id]; obj != nil {
			if isAckName(id.Name) {
				return evAck, "response write (" + id.Name + ")"
			}
			if lit, ok := a.funcLits[obj]; ok {
				sum := a.summarizeLit(obj, lit)
				if sum.hasAck {
					return evAck, "call to " + id.Name + " (writes responses)"
				}
				if sum.dirtyAtExit {
					return evEffect, id.Name
				}
				if sum.commits {
					return evCommit, id.Name
				}
			}
		}
	}

	// Effects and commits on store/core/pmem types.
	if recv, name, ok := methodCall(info, call); ok {
		if commitMethodNames[name] && isBatchCarrier(recv) {
			return evCommit, name
		}
		if doesEffect, listed := effectMethodNames[name]; listed && doesEffect && isBatchCarrier(recv) {
			// Same-package method calls with bodies get a summary so a
			// method that commits internally (Batcher.Exec) registers as
			// committing at the call site. The name-based classification
			// stands otherwise: a listed effect method is an effect even
			// when its body is opaque to this analysis.
			if fn := calleeFunc(info, call); fn != nil {
				if sum := a.summarizeFunc(fn); sum != nil && sum.commits && !sum.dirtyAtExit {
					return evCommit, name
				}
			}
			return evEffect, name
		}
	}
	// Package-local plain function calls: use summaries.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() == a.pass.Pkg {
		if sum := a.summarizeFunc(fn); sum != nil {
			if sum.dirtyAtExit {
				return evEffect, fn.Name()
			}
			if sum.commits {
				return evCommit, fn.Name()
			}
		}
	}
	return evNone, ""
}

// isBatchCarrier reports whether t is a type that carries deferred
// durable effects: store/session/batcher types, core.Deferred, or
// pmem.Thread.
func isBatchCarrier(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return pathHasSuffix(p, "internal/store") ||
		pathHasSuffix(p, "internal/core") ||
		pathHasSuffix(p, "internal/pmem") ||
		pathHasSuffix(p, "internal/server") ||
		pathHasSuffix(p, "internal/dstruct/hashtable")
}

func isAckName(name string) bool {
	switch name {
	case "writeResps", "writeResp", "writeResponse", "writeResponses", "sendResp", "sendReply", "ack":
		return true
	}
	return false
}

func pathInAckScope(p string) bool {
	for _, s := range ackScopePkgs {
		if pathHasSuffix(p, s) {
			return true
		}
	}
	return false
}

// summarizeFunc computes (memoized, cycle-safe) the ack summary of a
// same-package function from its body; nil when the body is unknown.
func (a *ackAnalysis) summarizeFunc(fn *types.Func) *ackSummary {
	if fn.Pkg() != a.pass.Pkg {
		return nil
	}
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inFlight[fn] {
		return &ackSummary{}
	}
	body := a.findBody(fn)
	if body == nil {
		return nil
	}
	a.inFlight[fn] = true
	s := a.summarizeBody(body)
	delete(a.inFlight, fn)
	a.summaries[fn] = s
	return s
}

func (a *ackAnalysis) summarizeLit(obj types.Object, lit *ast.FuncLit) *ackSummary {
	if s, ok := a.summaries[obj]; ok {
		return s
	}
	if a.inFlight[obj] {
		return &ackSummary{}
	}
	a.inFlight[obj] = true
	s := a.summarizeBody(lit.Body)
	delete(a.inFlight, obj)
	a.summaries[obj] = s
	return s
}

// summarizeBody evaluates a body with entry state clean and reporting
// off, recording whether any exit is dirty, whether it commits, and
// whether it contains an ack site.
func (a *ackAnalysis) summarizeBody(body *ast.BlockStmt) *ackSummary {
	saved := a.report
	a.report = false
	r := a.evalStmts(body.List, false)
	a.report = saved
	s := &ackSummary{
		dirtyAtExit: r.localEffect,
		commits:     r.localCommit,
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev, _ := a.classifyCallShallow(call); ev == evAck {
			s.hasAck = true
		}
		return true
	})
	return s
}

// classifyCallShallow is classifyCall without summary recursion (used
// only for hasAck detection inside summaries).
func (a *ackAnalysis) classifyCallShallow(call *ast.CallExpr) (ackEvent, string) {
	info := a.pass.TypesInfo
	if recv, name, ok := methodCall(info, call); ok && name == "Store" {
		if n := namedOf(recv); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic" {
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && strings.Contains(id.Name, "Done") {
					return evAck, ""
				}
			}
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isAckName(id.Name) {
		return evAck, ""
	}
	if fn := calleeFunc(info, call); fn != nil && isAckName(fn.Name()) {
		return evAck, ""
	}
	return evNone, ""
}

// findBody locates the declaration body of fn in this package's files.
func (a *ackAnalysis) findBody(fn *types.Func) *ast.BlockStmt {
	for _, f := range a.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if a.pass.TypesInfo.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// forEachClause iterates switch/select clause bodies.
func forEachClause(s ast.Stmt, f func(body []ast.Stmt, isDefault bool)) {
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		for _, c := range sw.Body.List {
			cc := c.(*ast.CaseClause)
			f(cc.Body, cc.List == nil)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range sw.Body.List {
			cc := c.(*ast.CaseClause)
			f(cc.Body, cc.List == nil)
		}
	case *ast.SelectStmt:
		for _, c := range sw.Body.List {
			cc := c.(*ast.CommClause)
			f(cc.Body, cc.Comm == nil)
		}
	}
}
