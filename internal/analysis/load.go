package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// LoadErrors holds go list / parse / type-check errors. Analyzers
	// still run on partially checked packages, but the driver reports
	// the errors too.
	LoadErrors []string
}

// listPkg is the subset of `go list -json` output flitvet consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads and type-checks the packages matched by patterns, rooted
// at dir (the working directory for the `go list` invocation). It
// shells out to `go list -e -export -deps -json`, which compiles
// dependencies and reports their export-data files; target packages are
// then re-parsed from source (with comments, which analyzers need for
// annotations) and type-checked against that export data. This gives
// full type information using only the standard library — no
// golang.org/x/tools dependency.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	// The gc importer reads export data for dependencies; the lookup
	// function maps import paths to the files `go list -export` wrote.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		pkg := &Package{PkgPath: t.ImportPath, Dir: t.Dir, Fset: fset}
		if t.Error != nil {
			pkg.LoadErrors = append(pkg.LoadErrors, t.Error.Err)
		}
		if len(t.CgoFiles) > 0 {
			pkg.LoadErrors = append(pkg.LoadErrors, "cgo packages are not supported by flitvet")
			out = append(out, pkg)
			continue
		}
		for _, name := range t.GoFiles {
			path := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.LoadErrors = append(pkg.LoadErrors, err.Error())
				continue
			}
			pkg.Files = append(pkg.Files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				pkg.LoadErrors = append(pkg.LoadErrors, err.Error())
			},
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, pkg.Files, info)
		pkg.Types = tpkg
		pkg.TypesInfo = info
		out = append(out, pkg)
	}
	return out, nil
}
