package bench

import (
	"strings"
	"testing"
	"time"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/harness"
	"flit/internal/workload"
)

// TestMatrixRunTiny drives one set cell and one store cell at very short
// durations and checks the report comes back schema-valid with both
// metric kinds per cell.
func TestMatrixRunTiny(t *testing.T) {
	m := Matrix{
		Name:     "tiny",
		Threads:  2,
		Duration: 15 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Repeats:  2,
		Seed:     1,
		Set: []SetCell{
			{DS: "hashtable", Policy: core.PolicyHT, Mode: dstruct.Automatic, KeyRange: 512, UpdatePct: 50},
		},
		Store: []StoreCell{
			{Mix: "a", Dist: workload.DistUniform, Policy: core.PolicyHT, Shards: 2, Records: 1024},
		},
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("want 4 cells (throughput+pwbs_per_op × 2), got %d: %+v", len(rep.Cells), rep.Cells)
	}
	tput := rep.Find("set/hashtable/automatic/flit-ht/k512/u50/throughput")
	if tput == nil {
		t.Fatalf("set throughput cell missing; have %v", cellIDs(rep))
	}
	if tput.Value.N != 2 || tput.Value.Mean <= 0 || tput.Ops == 0 {
		t.Fatalf("set throughput cell not folded from 2 repeats: %+v", tput)
	}
	pwb := rep.Find("set/hashtable/automatic/flit-ht/k512/u50/pwbs_per_op")
	if pwb == nil || !pwb.LowerIsBetter || pwb.Value.Mean <= 0 {
		t.Fatalf("flit-ht at 50%% updates must flush: %+v", pwb)
	}
	stp := rep.Find("store/a/uniform/flit-ht/s2/r1024/throughput")
	if stp == nil || stp.Value.Mean <= 0 || stp.P99Ns <= 0 {
		t.Fatalf("store cell missing latency/throughput: %+v", stp)
	}
	// A matrix self-compare is the degenerate CI gate: it must pass.
	res, err := Compare(rep, rep, 0)
	if err != nil || !res.OK() {
		t.Fatalf("self-compare failed: %v %+v", err, res)
	}
}

// TestMatrixRunOverloadTiny drives one rate-capped overload cell and
// checks its three cell kinds: goodput held near the cap, a nonzero
// shed rate, and a p99. The runner itself enforces client-shed ==
// server-shed per repeat.
func TestMatrixRunOverloadTiny(t *testing.T) {
	m := Matrix{
		Name:     "tiny-overload",
		Threads:  2,
		Duration: 60 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Repeats:  2,
		Seed:     1,
		Overload: []OverloadCell{
			{Mix: "a", Dist: workload.DistUniform, Policy: core.PolicyHT, Shards: 2, Records: 1024,
				Conns: 2, Depth: 8, RateLimit: 1000, Burst: 16},
		},
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	id := "overload/a/uniform/flit-ht/s2/r1024/c2/d8/rl1000"
	good := rep.Find(id + "/goodput")
	if good == nil || good.Value.Mean <= 0 {
		t.Fatalf("goodput cell missing; have %v", cellIDs(rep))
	}
	// The closed loop offers far more than 1000 ops/s; the limiter must
	// hold goodput to the same order as the cap (generous band — short
	// windows and burst credit wobble the edges).
	if good.Value.Mean > 4000 {
		t.Fatalf("goodput %.0f ops/s ignores the 1000 ops/s cap", good.Value.Mean)
	}
	shed := rep.Find(id + "/shed_rate")
	if shed == nil || shed.Value.Mean <= 0 || shed.Value.Mean >= 1 {
		t.Fatalf("shed_rate cell missing or degenerate: %+v", shed)
	}
	if p99 := rep.Find(id + "/p99"); p99 == nil || !p99.LowerIsBetter || p99.Value.Mean <= 0 {
		t.Fatalf("p99 cell missing: %+v", p99)
	}
}

func TestMatrixEmpty(t *testing.T) {
	if _, err := (Matrix{Name: "void"}).Run(); err == nil {
		t.Fatal("empty matrix must error")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		m, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if len(m.Set)+len(m.Store)+len(m.Net)+len(m.Combine)+len(m.Overload) == 0 {
			t.Fatalf("preset %q has no cells", name)
		}
		seen := map[string]bool{}
		for _, c := range m.Set {
			if seen[c.ID()] {
				t.Fatalf("preset %q duplicate cell %s", name, c.ID())
			}
			seen[c.ID()] = true
			if _, err := core.NewPolicyByName(c.Policy, 1<<12, 0); err != nil {
				t.Fatalf("preset %q names unknown policy: %v", name, err)
			}
			if c.Policy == core.PolicyLAP && c.DS == "bst" {
				t.Fatalf("preset %q contains the inapplicable lap×bst cell", name)
			}
		}
		for _, c := range m.Store {
			if _, err := workload.MixByName(c.Mix); err != nil {
				t.Fatalf("preset %q names unknown mix: %v", name, err)
			}
		}
		for _, c := range m.Overload {
			if _, err := workload.MixByName(c.Mix); err != nil {
				t.Fatalf("preset %q names unknown mix: %v", name, err)
			}
			if seen[c.ID()] {
				t.Fatalf("preset %q duplicate cell %s", name, c.ID())
			}
			seen[c.ID()] = true
		}
	}
	if _, ok := Preset("no-such-matrix"); ok {
		t.Fatal("unknown preset should not resolve")
	}
	// Differently-sized matrices must never share cell IDs: Compare
	// joins by ID, and a smoke-vs-full join would gate on non-comparable
	// measurements.
	smoke, _ := Preset("smoke")
	full, _ := Preset("full")
	smokeIDs := map[string]bool{}
	for _, c := range smoke.Set {
		smokeIDs[c.ID()] = true
	}
	for _, c := range smoke.Store {
		smokeIDs[c.ID()] = true
	}
	for _, c := range full.Set {
		if smokeIDs[c.ID()] {
			t.Errorf("smoke and full share cell id %s", c.ID())
		}
	}
	for _, c := range full.Store {
		if smokeIDs[c.ID()] {
			t.Errorf("smoke and full share cell id %s", c.ID())
		}
	}
}

// TestFromTablesFig9Shape converts a real (tiny) figure run and checks
// cell identity, units and repeat statistics survive the conversion.
func TestFromTablesFig9Shape(t *testing.T) {
	o := harness.Options{Threads: 2, Duration: 10 * time.Millisecond, Repeats: 2}
	tables := harness.Fig9(o)
	rep := FromTables(map[string]string{"figures": "9"}, map[string][]*harness.Table{"9": tables})
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if !strings.HasPrefix(c.ID, "fig-9/") {
			t.Fatalf("cell id %q lacks figure prefix", c.ID)
		}
		if c.Unit != "pwbs/op" || !c.LowerIsBetter {
			t.Fatalf("fig9 cells are flush rates, got %+v", c)
		}
		if c.Value.N != o.Repeats {
			t.Fatalf("cell %q lost repeat statistics: %+v", c.ID, c.Value)
		}
	}
}

func cellIDs(r *Report) []string {
	ids := make([]string, len(r.Cells))
	for i, c := range r.Cells {
		ids[i] = c.ID
	}
	return ids
}

// TestMatrixRunNetCell drives one network front-end cell at tiny
// duration: the report must carry client-observed throughput/latency
// and a positive pwbs-per-acked-op value.
func TestMatrixRunNetCell(t *testing.T) {
	m := Matrix{
		Name:     "tiny-net",
		Threads:  1,
		Duration: 20 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Repeats:  2,
		Seed:     1,
		Net: []NetCell{
			{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT,
				Shards: 2, Records: 1024, Conns: 1, Depth: 8},
		},
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	tput := rep.Find("net/a/zipfian/flit-ht/s2/r1024/c1/d8/throughput")
	if tput == nil {
		t.Fatalf("net throughput cell missing; have %v", cellIDs(rep))
	}
	if tput.Value.Mean <= 0 || tput.Ops == 0 || tput.P99Ns <= 0 || tput.PFences == 0 {
		t.Fatalf("net throughput cell incomplete: %+v", tput)
	}
	pwb := rep.Find("net/a/zipfian/flit-ht/s2/r1024/c1/d8/pwbs_per_op")
	if pwb == nil || !pwb.LowerIsBetter || pwb.Value.Mean <= 0 {
		t.Fatalf("net pwbs_per_op cell wrong: %+v", pwb)
	}
	// Group commit at depth 8: far fewer fences than acked ops.
	if tput.PFences >= tput.Ops {
		t.Fatalf("net cell fences %d >= acked ops %d: no amortization", tput.PFences, tput.Ops)
	}
	opb := rep.Find("net/a/zipfian/flit-ht/s2/r1024/c1/d8/ops_per_batch")
	if opb == nil || opb.Value.Mean <= 1.5 {
		t.Fatalf("ops_per_batch cell missing or not batching at depth 8: %+v", opb)
	}
}

// TestGroupCommitPreset pins the committed comparison's structure: the
// groupcommit preset pairs each net mix with its unbatched store
// baseline and includes pipeline depths ≥ 8.
func TestGroupCommitPreset(t *testing.T) {
	m, ok := Preset("groupcommit")
	if !ok {
		t.Fatal("groupcommit preset missing")
	}
	if m.Threads != 1 {
		t.Fatalf("groupcommit preset threads = %d, want 1 (determinism)", m.Threads)
	}
	baseMixes := map[string]bool{}
	for _, c := range m.Store {
		baseMixes[c.Mix] = true
	}
	deep := false
	for _, c := range m.Net {
		if !baseMixes[c.Mix] {
			t.Fatalf("net cell mix %q has no unbatched store baseline in the preset", c.Mix)
		}
		if c.Depth >= 8 {
			deep = true
		}
	}
	if !deep {
		t.Fatal("groupcommit preset has no depth >= 8 net cell")
	}
}
