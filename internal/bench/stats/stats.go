// Package stats is the leaf statistics kernel of the bench subsystem:
// summary statistics over repeated benchmark samples. It is a separate
// package (rather than part of internal/bench) so that internal/harness
// can fold its repetition through the same code without an import cycle
// — internal/bench imports internal/harness to run figure matrices.
package stats

import "math"

// Summary condenses repeated samples of one quantity. Mean is the value
// every human-readable rendering shows; Stddev/Min/Max qualify how
// stable it was across repeats. A Summary with N == 1 is a single
// observation (Stddev 0, Min == Mean == Max).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev,omitempty"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize folds samples into a Summary (sample standard deviation,
// n-1 denominator). An empty slice yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.Stddev = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// Of wraps a single observation.
func Of(x float64) Summary { return Summary{N: 1, Mean: x, Min: x, Max: x} }

// Scale multiplies the summary by k (unit conversions: ops/s → Mops/s).
func (s Summary) Scale(k float64) Summary {
	s.Mean *= k
	s.Stddev *= math.Abs(k)
	s.Min *= k
	s.Max *= k
	if k < 0 {
		s.Min, s.Max = s.Max, s.Min
	}
	return s
}

// IsZero reports whether the summary holds no observations.
func (s Summary) IsZero() bool { return s.N == 0 }
