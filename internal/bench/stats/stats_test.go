package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("got %+v", s)
	}
	// Sample stddev of that classic series is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); !s.IsZero() {
		t.Fatalf("empty: got %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Stddev != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single: got %+v", s)
	}
	if of := Of(3.5); of != s {
		t.Fatalf("Of disagrees with Summarize: %+v vs %+v", of, s)
	}
}

func TestScale(t *testing.T) {
	s := Summarize([]float64{1e6, 3e6}).Scale(1e-6)
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("got %+v", s)
	}
	neg := Summarize([]float64{1, 3}).Scale(-1)
	if neg.Min != -3 || neg.Max != -1 || neg.Stddev < 0 {
		t.Fatalf("negative scale: got %+v", neg)
	}
}
