package bench

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"flit/internal/bench/stats"
	"flit/internal/client"
	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/harness"
	"flit/internal/server"
	"flit/internal/store"
	"flit/internal/workload"
)

// SetCell is one point of the data-structure benchmark grid: a policy ×
// structure × durability mode × update ratio, driven by the figure
// harness (build, prefill, timed uniform workload).
type SetCell struct {
	DS        string
	Policy    string
	Mode      dstruct.Mode
	KeyRange  uint64
	UpdatePct int
}

// ID is the cell's stable identity — a lossless function of the cell
// configuration (sizing included, so differently-sized matrices can
// never silently join in Compare).
func (c SetCell) ID() string {
	return SlugID("set", c.DS, c.Mode.String(), c.Policy,
		fmt.Sprintf("k%d", c.KeyRange), fmt.Sprintf("u%d", c.UpdatePct))
}

// StoreCell is one point of the service-layer grid: a YCSB mix ×
// distribution × policy against the sharded FliT-Store.
type StoreCell struct {
	Mix     string
	Dist    string
	Policy  string
	Shards  int
	Records uint64
}

// ID is the cell's stable identity (shard count and record count
// included — see SetCell.ID).
func (c StoreCell) ID() string {
	return SlugID("store", c.Mix, c.Dist, c.Policy,
		fmt.Sprintf("s%d", c.Shards), fmt.Sprintf("r%d", c.Records))
}

// NetCell is one point of the network front-end grid: a YCSB mix
// driven through the group-commit server over Conns pipelined
// in-process connections at pipeline depth Depth (request frames per
// window). Its pwbs_per_op cell is PWBs per *acknowledged* server
// operation — the quantity group commit amortizes against the same
// mix's in-process StoreCell baseline.
type NetCell struct {
	Mix     string
	Dist    string
	Policy  string
	Shards  int
	Records uint64
	Conns   int
	Depth   int
}

// ID is the cell's stable identity (see SetCell.ID).
func (c NetCell) ID() string {
	return SlugID("net", c.Mix, c.Dist, c.Policy,
		fmt.Sprintf("s%d", c.Shards), fmt.Sprintf("r%d", c.Records),
		fmt.Sprintf("c%d", c.Conns), fmt.Sprintf("d%d", c.Depth))
}

// OverloadCell is one point of the admission-control grid: a closed-loop
// YCSB mix offered through pipelined connections at a server whose
// admission rate is capped at RateLimit ops/s (token bucket, burst
// Burst). The loop pushes as hard as it can; the server sheds the
// excess with BUSY instead of queuing it, so the cell's headline
// numbers are goodput (acknowledged ops/s, which must track the cap),
// shed_rate (the fraction of offered ops rejected), and the goodput
// p99 (which must stay bounded precisely because excess work is shed,
// not queued). RateLimit 0 is the uncapped control cell.
type OverloadCell struct {
	Mix       string
	Dist      string
	Policy    string
	Shards    int
	Records   uint64
	Conns     int
	Depth     int
	RateLimit float64
	Burst     int
}

// ID is the cell's stable identity (see SetCell.ID).
func (c OverloadCell) ID() string {
	return SlugID("overload", c.Mix, c.Dist, c.Policy,
		fmt.Sprintf("s%d", c.Shards), fmt.Sprintf("r%d", c.Records),
		fmt.Sprintf("c%d", c.Conns), fmt.Sprintf("d%d", c.Depth),
		fmt.Sprintf("rl%d", int(c.RateLimit)))
}

// CombineCell is one point of the embedded flat-combining grid: a YCSB
// mix driven in-process through Combined sessions — Matrix.Threads
// workers each announcing Depth-op vector windows to the store's
// per-shard combiners, which merge concurrent announcements and commit
// each combining window (target size Window) under one fence. Its
// pwbs_per_op cell is the embedded counterpart of the net cells'
// group-commit amortization: no server, no pipeline — the combiner IS
// the batch owner. NoCoalesce disables VSA-style net-delta folding
// (the mix-G control cell); HotKeys pins non-insert draws to a tiny
// key window so FAA traffic piles onto a few counters.
type CombineCell struct {
	Mix        string
	Dist       string
	Policy     string
	Shards     int
	Records    uint64
	Depth      int
	Window     int
	HotKeys    uint64
	NoCoalesce bool
}

// ID is the cell's stable identity (see SetCell.ID). The coalescing
// switch is spelled raw|coal so control and optimized cells can never
// silently join.
func (c CombineCell) ID() string {
	coal := "coal"
	if c.NoCoalesce {
		coal = "raw"
	}
	parts := []string{"combine", c.Mix, c.Dist, c.Policy,
		fmt.Sprintf("s%d", c.Shards), fmt.Sprintf("r%d", c.Records),
		fmt.Sprintf("d%d", c.Depth), fmt.Sprintf("w%d", c.Window), coal}
	if c.HotKeys > 0 {
		parts = append(parts, fmt.Sprintf("h%d", c.HotKeys))
	}
	return SlugID(parts...)
}

// Matrix declares a benchmark run: which cells, and how each is
// measured (threads, warmup, measured duration, repeats). Zero values
// take defaults scaled to the host.
type Matrix struct {
	Name     string
	Threads  int           // default GOMAXPROCS
	Duration time.Duration // per measured repeat; default 100ms
	// Warmup is the discarded warm-up window per cell; zero defaults to
	// Duration/2, any negative value means "no warmup".
	Warmup  time.Duration
	Repeats int   // measured repeats per cell; default 2
	Seed    int64 // workload generator seed (0 is a valid seed)
	// Latency additionally emits p99 cells for store workloads (off for
	// the CI smoke matrix — tail latency is too noisy for a shared
	// runner's gate; on for the nightly full matrix).
	Latency bool
	// VirtualClock runs every cell with pmem's virtual-clock cost mode:
	// modeled latency accrues to per-thread counters instead of spin
	// loops. Single-threaded runs (the pinned CI smoke matrix) execute
	// the identical instruction stream either way, so their pwbs/op
	// cells match spin-mode runs exactly; with more threads, different
	// interleavings can shift pwbs/op slightly (reader-helping flushes,
	// CAS retries). Throughput cells are NOT comparable with spin-mode
	// reports in any case — Compare surfaces the config difference.
	VirtualClock bool
	Set          []SetCell
	Store        []StoreCell
	Net          []NetCell
	Combine      []CombineCell
	Overload     []OverloadCell
}

func (m Matrix) withDefaults() Matrix {
	if m.Threads == 0 {
		m.Threads = runtime.GOMAXPROCS(0)
	}
	if m.Duration == 0 {
		m.Duration = 100 * time.Millisecond
	}
	if m.Warmup == 0 {
		m.Warmup = m.Duration / 2
	}
	if m.Warmup < 0 {
		m.Warmup = 0
	}
	if m.Repeats == 0 {
		m.Repeats = 2
	}
	return m
}

// Config renders the matrix knobs for the report header.
func (m Matrix) Config() map[string]string {
	return map[string]string{
		"matrix":   m.Name,
		"threads":  fmt.Sprint(m.Threads),
		"duration": m.Duration.String(),
		"warmup":   m.Warmup.String(),
		"repeats":  fmt.Sprint(m.Repeats),
		"seed":     fmt.Sprint(m.Seed),
		"vclock":   fmt.Sprint(m.VirtualClock),
	}
}

// Run executes every cell — warmup window discarded, repeats folded
// through the stats kernel — and returns the validated report.
func (m Matrix) Run() (*Report, error) {
	m = m.withDefaults()
	if len(m.Set) == 0 && len(m.Store) == 0 && len(m.Net) == 0 && len(m.Combine) == 0 && len(m.Overload) == 0 {
		return nil, fmt.Errorf("bench: matrix %q has no cells", m.Name)
	}
	rep := NewReport("bench-matrix", m.Config())
	for _, c := range m.Set {
		m.runSet(rep, c)
	}
	for _, c := range m.Store {
		if err := m.runStore(rep, c); err != nil {
			return nil, fmt.Errorf("bench: cell %s: %w", c.ID(), err)
		}
	}
	for _, c := range m.Net {
		if err := m.runNet(rep, c); err != nil {
			return nil, fmt.Errorf("bench: cell %s: %w", c.ID(), err)
		}
	}
	for _, c := range m.Combine {
		if err := m.runCombine(rep, c); err != nil {
			return nil, fmt.Errorf("bench: cell %s: %w", c.ID(), err)
		}
	}
	for _, c := range m.Overload {
		if err := m.runOverload(rep, c); err != nil {
			return nil, fmt.Errorf("bench: cell %s: %w", c.ID(), err)
		}
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// runSet measures one data-structure cell via the figure harness.
func (m Matrix) runSet(rep *Report, c SetCell) {
	total := m.Warmup + m.Duration*time.Duration(m.Repeats)
	inst := harness.Build(harness.Spec{
		DS: c.DS, Policy: c.Policy, Mode: c.Mode,
		KeyRange: c.KeyRange, Duration: total,
		VirtualClock: m.VirtualClock,
	})
	inst.Prefill()
	w := harness.Workload{Threads: m.Threads, UpdatePct: c.UpdatePct, Duration: m.Duration}
	if m.Warmup > 0 {
		warm := w
		warm.Duration = m.Warmup
		harness.RunWorkload(inst, warm)
	}
	res := harness.RepeatRuns(m.Repeats, func() harness.Result {
		return harness.RunWorkload(inst, w)
	})
	id := c.ID()
	rep.Add(Cell{
		ID: id + "/throughput", Unit: "ops/s", Value: res.Throughput,
		Ops: res.Ops, PWBs: res.PWBs, PFences: res.PFences,
		NsPerOp: res.NsPerOp, AllocsPerOp: res.AllocsPerOp,
	})
	rep.Add(Cell{
		ID: id + "/pwbs_per_op", Unit: "pwbs/op", Value: res.PWBRate,
		LowerIsBetter: true,
	})
}

// runStore measures one service cell: build the sharded store, YCSB
// load, warmup, repeated timed runs.
func (m Matrix) runStore(rep *Report, c StoreCell) error {
	st, err := store.New(store.Options{
		Shards:       c.Shards,
		ExpectedKeys: int(c.Records) * 3,
		Policy:       c.Policy,
		Mode:         dstruct.Automatic,
		VirtualClock: m.VirtualClock,
	})
	if err != nil {
		return err
	}
	workload.Load(st, c.Records, m.Threads)
	spec := workload.Spec{
		Mix: c.Mix, Dist: c.Dist, Threads: m.Threads,
		Duration: m.Duration, Records: c.Records, Seed: m.Seed,
	}
	if m.Warmup > 0 {
		warm := spec
		warm.Duration = m.Warmup
		if _, err := workload.Run(st, warm); err != nil {
			return err
		}
	}
	var tput, pwbRate, p99 []float64
	var ops, pwbs, pfences uint64
	var p50Sum, p95Sum, p99Sum int64
	var nsPerOp, allocsPerOp float64
	for i := 0; i < m.Repeats; i++ {
		r, err := workload.Run(st, spec)
		if err != nil {
			return err
		}
		tput = append(tput, r.OpsPerSec)
		pwbRate = append(pwbRate, r.PWBsPerOp)
		p99 = append(p99, float64(r.P99.Nanoseconds()))
		ops += r.Ops
		pwbs += r.PWBs
		pfences += r.PFences
		p50Sum += r.P50.Nanoseconds()
		p95Sum += r.P95.Nanoseconds()
		p99Sum += r.P99.Nanoseconds()
		nsPerOp += r.NsPerOp
		allocsPerOp += r.AllocsPerOp
	}
	n := int64(m.Repeats)
	id := c.ID()
	rep.Add(Cell{
		ID: id + "/throughput", Unit: "ops/s", Value: stats.Summarize(tput),
		Ops: ops, PWBs: pwbs, PFences: pfences,
		P50Ns: p50Sum / n, P95Ns: p95Sum / n, P99Ns: p99Sum / n,
		NsPerOp: nsPerOp / float64(n), AllocsPerOp: allocsPerOp / float64(n),
	})
	rep.Add(Cell{
		ID: id + "/pwbs_per_op", Unit: "pwbs/op", Value: stats.Summarize(pwbRate),
		LowerIsBetter: true,
	})
	if m.Latency {
		rep.Add(Cell{
			ID: id + "/p99", Unit: "ns", Value: stats.Summarize(p99),
			LowerIsBetter: true,
		})
	}
	return nil
}

// runNet measures one network front-end cell: build the sharded store,
// YCSB-load it in-process, boot the group-commit server over in-process
// pipe transports, then drive the pipelining client load generator —
// warmup discarded, repeats folded. Throughput and latency are
// client-observed; pwbs/pfences come from the server-side instruction
// deltas per acknowledged op.
func (m Matrix) runNet(rep *Report, c NetCell) error {
	st, err := store.New(store.Options{
		Shards:       c.Shards,
		ExpectedKeys: int(c.Records) * 3,
		Policy:       c.Policy,
		Mode:         dstruct.Automatic,
		VirtualClock: m.VirtualClock,
	})
	if err != nil {
		return err
	}
	workload.Load(st, c.Records, m.Threads)
	// Metrics ride along in every net cell: the committed matrix numbers
	// carry the observability cost, and the cross-check below holds the
	// striped counters to the server's own acked-op count.
	srv := server.New(st, server.Options{Metrics: true})
	defer srv.Close()
	dial := func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
	spec := client.Spec{
		Mix: c.Mix, Dist: c.Dist, Records: c.Records,
		Conns: c.Conns, Depth: c.Depth, Seed: m.Seed,
		Duration: m.Duration,
	}
	if m.Warmup > 0 {
		warm := spec
		warm.Duration = m.Warmup
		if _, err := client.Run(dial, warm); err != nil {
			return err
		}
	}
	var tput, pwbRate, p99, perBatch []float64
	var ops, pwbs, pfences uint64
	var p50Sum, p95Sum, p99Sum int64
	for i := 0; i < m.Repeats; i++ {
		r, err := client.Run(dial, spec)
		if err != nil {
			return err
		}
		tput = append(tput, r.OpsPerSec)
		pwbRate = append(pwbRate, r.PWBsPerOp)
		p99 = append(p99, float64(r.P99.Nanoseconds()))
		perBatch = append(perBatch, r.OpsPerBatch)
		ops += r.ServerOps
		pwbs += r.PWBs
		pfences += r.PFences
		p50Sum += r.P50.Nanoseconds()
		p95Sum += r.P95.Nanoseconds()
		p99Sum += r.P99.Nanoseconds()
	}
	if got, want := srv.Metrics().OpsTotal(), srv.Stats().OpsServed; got != want {
		return fmt.Errorf("bench: metrics op counters sum to %d, server acked %d", got, want)
	}
	n := int64(m.Repeats)
	id := c.ID()
	rep.Add(Cell{
		ID: id + "/throughput", Unit: "ops/s", Value: stats.Summarize(tput),
		Ops: ops, PWBs: pwbs, PFences: pfences,
		P50Ns: p50Sum / n, P95Ns: p95Sum / n, P99Ns: p99Sum / n,
	})
	rep.Add(Cell{
		ID: id + "/pwbs_per_op", Unit: "pwbs/op", Value: stats.Summarize(pwbRate),
		LowerIsBetter: true,
	})
	// The batching headline: acknowledged ops per group commit. Tracks
	// the pipeline depth in the closed loop, so Compare can gate the
	// amortization itself, not just its downstream pwbs/op effect.
	rep.Add(Cell{
		ID: id + "/ops_per_batch", Unit: "ops/batch", Value: stats.Summarize(perBatch),
	})
	if m.Latency {
		rep.Add(Cell{
			ID: id + "/p99", Unit: "ns", Value: stats.Summarize(p99),
			LowerIsBetter: true,
		})
	}
	return nil
}

// runCombine measures one embedded flat-combining cell: build the store
// with the cell's combining window, YCSB-load it, then drive the
// workload runner in Combined mode at the cell's vector depth — every
// worker a concurrent announcer, every window fenced once by whichever
// announcer wins the shard's combiner lock. Measurement mirrors
// runStore so combine cells compare directly against the per-op store
// cells and the server-side net cells.
func (m Matrix) runCombine(rep *Report, c CombineCell) error {
	st, err := store.New(store.Options{
		Shards:            c.Shards,
		ExpectedKeys:      int(c.Records) * 3,
		Policy:            c.Policy,
		Mode:              dstruct.Automatic,
		VirtualClock:      m.VirtualClock,
		CombineWindow:     c.Window,
		CombineNoCoalesce: c.NoCoalesce,
	})
	if err != nil {
		return err
	}
	workload.Load(st, c.Records, m.Threads)
	spec := workload.Spec{
		Mix: c.Mix, Dist: c.Dist, Threads: m.Threads,
		Duration: m.Duration, Records: c.Records, Seed: m.Seed,
		Mode: store.Combined, Depth: c.Depth, HotKeys: c.HotKeys,
	}
	if m.Warmup > 0 {
		warm := spec
		warm.Duration = m.Warmup
		if _, err := workload.Run(st, warm); err != nil {
			return err
		}
	}
	var tput, pwbRate, p99 []float64
	var ops, pwbs, pfences uint64
	var p50Sum, p95Sum, p99Sum int64
	var nsPerOp, allocsPerOp float64
	for i := 0; i < m.Repeats; i++ {
		r, err := workload.Run(st, spec)
		if err != nil {
			return err
		}
		tput = append(tput, r.OpsPerSec)
		pwbRate = append(pwbRate, r.PWBsPerOp)
		p99 = append(p99, float64(r.P99.Nanoseconds()))
		ops += r.Ops
		pwbs += r.PWBs
		pfences += r.PFences
		p50Sum += r.P50.Nanoseconds()
		p95Sum += r.P95.Nanoseconds()
		p99Sum += r.P99.Nanoseconds()
		nsPerOp += r.NsPerOp
		allocsPerOp += r.AllocsPerOp
	}
	n := int64(m.Repeats)
	id := c.ID()
	rep.Add(Cell{
		ID: id + "/throughput", Unit: "ops/s", Value: stats.Summarize(tput),
		Ops: ops, PWBs: pwbs, PFences: pfences,
		P50Ns: p50Sum / n, P95Ns: p95Sum / n, P99Ns: p99Sum / n,
		NsPerOp: nsPerOp / float64(n), AllocsPerOp: allocsPerOp / float64(n),
	})
	rep.Add(Cell{
		ID: id + "/pwbs_per_op", Unit: "pwbs/op", Value: stats.Summarize(pwbRate),
		LowerIsBetter: true,
	})
	if m.Latency {
		rep.Add(Cell{
			ID: id + "/p99", Unit: "ns", Value: stats.Summarize(p99),
			LowerIsBetter: true,
		})
	}
	return nil
}

// runOverload measures one admission-control cell: build and load the
// store, boot the server with the cell's rate cap over in-process pipe
// transports, then drive the closed loop flat out — the server sheds
// the excess with BUSY. The pipe transport delivers every shed response,
// so the client's shed count must equal the server's shed delta exactly;
// a mismatch fails the cell (lost-shed accounting would make the
// shed_rate trajectory lie).
func (m Matrix) runOverload(rep *Report, c OverloadCell) error {
	st, err := store.New(store.Options{
		Shards:       c.Shards,
		ExpectedKeys: int(c.Records) * 3,
		Policy:       c.Policy,
		Mode:         dstruct.Automatic,
		VirtualClock: m.VirtualClock,
	})
	if err != nil {
		return err
	}
	workload.Load(st, c.Records, m.Threads)
	srv := server.New(st, server.Options{
		Metrics: true, RateLimit: c.RateLimit, RateBurst: c.Burst,
	})
	defer srv.Close()
	dial := func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
	spec := client.Spec{
		Mix: c.Mix, Dist: c.Dist, Records: c.Records,
		Conns: c.Conns, Depth: c.Depth, Seed: m.Seed,
		Duration: m.Duration,
	}
	if m.Warmup > 0 {
		warm := spec
		warm.Duration = m.Warmup
		if _, err := client.Run(dial, warm); err != nil {
			return err
		}
	}
	var goodput, shedRate, p99 []float64
	var ops, shed uint64
	var p50Sum, p99Sum int64
	for i := 0; i < m.Repeats; i++ {
		r, err := client.Run(dial, spec)
		if err != nil {
			return err
		}
		if r.Shed != r.ServerShed {
			return fmt.Errorf("bench: client counted %d shed ops, server %d", r.Shed, r.ServerShed)
		}
		goodput = append(goodput, r.OpsPerSec)
		shedRate = append(shedRate, r.ShedRate)
		p99 = append(p99, float64(r.P99.Nanoseconds()))
		ops += r.Ops
		shed += r.Shed
		p50Sum += r.P50.Nanoseconds()
		p99Sum += r.P99.Nanoseconds()
	}
	n := int64(m.Repeats)
	id := c.ID()
	rep.Add(Cell{
		ID: id + "/goodput", Unit: "ops/s", Value: stats.Summarize(goodput),
		Ops: ops, P50Ns: p50Sum / n, P99Ns: p99Sum / n,
	})
	rep.Add(Cell{
		ID: id + "/shed_rate", Unit: "shed/offered", Value: stats.Summarize(shedRate),
	})
	rep.Add(Cell{
		ID: id + "/p99", Unit: "ns", Value: stats.Summarize(p99),
		LowerIsBetter: true,
	})
	return nil
}

// CrossSet expands the cross product of structures × policies × modes ×
// update ratios into set cells, skipping the one inapplicable
// combination (link-and-persist on the NM-BST, as in Figure 7).
func CrossSet(dss, policies []string, modes []dstruct.Mode, keyRange uint64, upds []int) []SetCell {
	var out []SetCell
	for _, ds := range dss {
		for _, pol := range policies {
			if pol == core.PolicyLAP && ds == "bst" {
				continue
			}
			for _, mode := range modes {
				for _, u := range upds {
					out = append(out, SetCell{
						DS: ds, Policy: pol, Mode: mode, KeyRange: keyRange, UpdatePct: u,
					})
				}
			}
		}
	}
	return out
}

// Presets are the named matrices the CLI and CI run. "smoke" is the CI
// perf-gate: a small fixed grid, cheap enough for every push, exercising
// both the figure harness and the store service. "full" is the nightly
// matrix: every structure and headline policy plus the YCSB mixes.
func Presets() map[string]Matrix {
	return map[string]Matrix{
		"smoke": {
			Name:     "smoke",
			Duration: 80 * time.Millisecond,
			Warmup:   40 * time.Millisecond,
			Repeats:  2,
			Seed:     1,
			Set: CrossSet(
				[]string{"bst", "hashtable"},
				[]string{core.PolicyPlain, core.PolicyHT},
				[]dstruct.Mode{dstruct.Automatic},
				4096, []int{0, 50},
			),
			Store: []StoreCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192},
				{Mix: "c", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192},
			},
		},
		// groupcommit is the fence-amortization comparison: the same
		// YCSB mixes measured in-process with per-op persistence (the
		// store cells — the unbatched baseline) and through the
		// group-commit server at increasing pipeline depths (the net
		// cells). Single-threaded / single-connection so the pwbs/op
		// cells are near-deterministic; at depth ≥ 8 the net cells'
		// pwbs/op must sit strictly below the same mix's store cell,
		// and pfences per op collapse (visible in the cells' raw
		// counts). BENCH_groupcommit.json is this matrix's committed
		// trajectory point.
		"groupcommit": {
			Name:     "groupcommit",
			Threads:  1,
			Duration: 150 * time.Millisecond,
			Warmup:   75 * time.Millisecond,
			Repeats:  3,
			Seed:     1,
			Store: []StoreCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192},
				{Mix: "d", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192},
			},
			Net: []NetCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Conns: 1, Depth: 1},
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Conns: 1, Depth: 8},
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Conns: 1, Depth: 32},
				{Mix: "d", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Conns: 1, Depth: 8},
				{Mix: "d", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Conns: 1, Depth: 32},
			},
		},
		// combining is the embedded fence-amortization comparison — the
		// flat-combining answer to groupcommit's pipelined server: the
		// same YCSB mixes measured in-process with per-op persistence
		// (the store cells) and through Combined sessions announcing
		// depth-32 vectors into window-128 per-shard combiners — the
		// window spans one full announce wave (4 threads x depth 32), so
		// a whole wave commits under one fence. The combine cells'
		// pwbs/op must
		// sit at or below the depth-32 net cells committed in
		// BENCH_groupcommit.json — the combiner merges windows ACROSS
		// sessions, which a per-connection pipeline cannot. The mix-G
		// pair is the net-delta coalescing headline: self-cancelling ±1
		// FAA traffic on one hot counter, measured with coalescing on
		// (coal) and off (raw); the coal cell must persist ≥10x fewer
		// lines per op. BENCH_combining.json is this matrix's committed
		// trajectory point.
		"combining": {
			Name:     "combining",
			Threads:  4,
			Duration: 150 * time.Millisecond,
			// Mix d inserts draw from a bounded key range; until the range
			// saturates, every insert dirties fresh lines and pwbs/op sits
			// ~2x above steady state. The long warmup runs the cell past
			// that knee so the committed numbers are the plateau, not the
			// fill transient.
			Warmup:  300 * time.Millisecond,
			Repeats: 3,
			Seed:    1,
			Store: []StoreCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192},
				{Mix: "d", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192},
			},
			Combine: []CombineCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Depth: 32, Window: 128},
				{Mix: "d", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Depth: 32, Window: 128},
				{Mix: "g", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Depth: 32, Window: 128, HotKeys: 1},
				{Mix: "g", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192, Depth: 32, Window: 128, HotKeys: 1, NoCoalesce: true},
			},
		},
		// overload is the admission-control trajectory: the same mix
		// offered flat out against a rate-capped server and against the
		// uncapped control. The capped cells' goodput must track the cap
		// (the rate limiter meters wall-clock ops/s, so these cells are
		// stable across machine speeds) with a nonzero shed_rate and a
		// bounded goodput p99; the control cell pins what the same loop
		// does with shedding off. BENCH_overload.json is this matrix's
		// committed trajectory point.
		"overload": {
			Name:     "overload",
			Duration: 200 * time.Millisecond,
			Warmup:   100 * time.Millisecond,
			Repeats:  3,
			Seed:     1,
			Overload: []OverloadCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192,
					Conns: 2, Depth: 8, RateLimit: 3000, Burst: 32},
				{Mix: "c", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192,
					Conns: 2, Depth: 8, RateLimit: 3000, Burst: 32},
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 4, Records: 8192,
					Conns: 2, Depth: 8},
			},
		},
		"full": {
			Name:     "full",
			Duration: 200 * time.Millisecond,
			Warmup:   100 * time.Millisecond,
			Repeats:  3,
			Seed:     1,
			Latency:  true,
			Set: CrossSet(
				[]string{"bst", "hashtable", "list", "skiplist"},
				[]string{core.PolicyPlain, core.PolicyAdjacent, core.PolicyHT, core.PolicyLAP},
				[]dstruct.Mode{dstruct.Automatic},
				10_000, []int{0, 5, 50},
			),
			Store: []StoreCell{
				{Mix: "a", Dist: workload.DistUniform, Policy: core.PolicyHT, Shards: 8, Records: 20_000},
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 8, Records: 20_000},
				{Mix: "b", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 8, Records: 20_000},
				{Mix: "c", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 8, Records: 20_000},
				{Mix: "f", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 8, Records: 20_000},
			},
			Net: []NetCell{
				{Mix: "a", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 8, Records: 20_000, Conns: 2, Depth: 16},
				{Mix: "b", Dist: workload.DistZipfian, Policy: core.PolicyHT, Shards: 8, Records: 20_000, Conns: 2, Depth: 16},
			},
		},
	}
}

// Preset looks up a named matrix.
func Preset(name string) (Matrix, bool) {
	m, ok := Presets()[name]
	return m, ok
}

// PresetNames lists the preset matrices in a stable order.
func PresetNames() []string {
	return []string{"smoke", "groupcommit", "combining", "overload", "full"}
}
