package bench

import (
	"strings"
	"testing"

	"flit/internal/bench/stats"
)

// twoCell builds a report with one higher-is-better and one
// lower-is-better cell at the given means.
func twoCell(tput, pwbRate float64) *Report {
	r := NewReport("flitbench", nil)
	r.Add(Cell{ID: "x/throughput", Unit: "ops/s", Value: stats.Of(tput)})
	r.Add(Cell{ID: "x/pwbs_per_op", Unit: "pwbs/op", Value: stats.Of(pwbRate), LowerIsBetter: true})
	return r
}

func TestCompareIdentical(t *testing.T) {
	a := twoCell(1e6, 0.5)
	res, err := Compare(a, a, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Regressions != 0 || res.Improvements != 0 {
		t.Fatalf("self-compare should be clean: %+v", res)
	}
	if !strings.Contains(res.Format(), "OK") {
		t.Fatalf("format lacks verdict: %q", res.Format())
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	old := twoCell(1e6, 0.5)
	// 20% throughput drop vs a 10% threshold: regression.
	res, err := Compare(old, twoCell(0.8e6, 0.5), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions != 1 {
		t.Fatalf("expected 1 regression: %+v", res)
	}
	if !res.Deltas[0].Regressed || res.Deltas[0].Change >= 0 {
		t.Fatalf("delta wrong: %+v", res.Deltas[0])
	}
	// 5% drop within a 10% threshold: stable.
	res, err = Compare(old, twoCell(0.95e6, 0.5), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("within-threshold drop should pass: %+v", res)
	}
	// Exactly at the threshold boundary: not a regression (strict >).
	res, err = Compare(old, twoCell(0.9e6, 0.5), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("boundary drop should pass: %+v", res)
	}
}

func TestCompareLowerIsBetter(t *testing.T) {
	old := twoCell(1e6, 0.5)
	// Flush rate doubling is a regression even with throughput flat.
	res, err := Compare(old, twoCell(1e6, 1.0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions != 1 || !res.Deltas[1].Regressed {
		t.Fatalf("pwbs/op increase should regress: %+v", res)
	}
	// Flush rate halving is an improvement.
	res, err = Compare(old, twoCell(1e6, 0.25), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Improvements != 1 || !res.Deltas[1].Improved {
		t.Fatalf("pwbs/op decrease should improve: %+v", res)
	}
}

func TestCompareImprovement(t *testing.T) {
	res, err := Compare(twoCell(1e6, 0.5), twoCell(2e6, 0.5), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Improvements != 1 {
		t.Fatalf("throughput doubling should improve: %+v", res)
	}
}

func TestCompareMissingCells(t *testing.T) {
	old := twoCell(1e6, 0.5)
	onlyTput := NewReport("flitbench", nil)
	onlyTput.Add(Cell{ID: "x/throughput", Unit: "ops/s", Value: stats.Of(1e6)})
	onlyTput.Add(Cell{ID: "y/new", Unit: "ops/s", Value: stats.Of(1)})
	res, err := Compare(old, onlyTput, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("dropping a baseline cell must fail the gate")
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "x/pwbs_per_op" {
		t.Fatalf("missing-in-new wrong: %v", res.MissingInNew)
	}
	if len(res.MissingInOld) != 1 || res.MissingInOld[0] != "y/new" {
		t.Fatalf("missing-in-old wrong: %v", res.MissingInOld)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// A zero higher-is-better baseline has no meaningful ratio and does
	// not gate; a zero lower-is-better baseline (e.g. a read path that
	// never flushed) leaving zero is a full regression — flush-count
	// inflation from zero is exactly what the gate exists to catch.
	res, err := Compare(twoCell(0, 0), twoCell(1e6, 1), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions != 1 {
		t.Fatalf("pwbs/op leaving zero must regress: %+v", res)
	}
	if d := res.Deltas[1]; !d.Regressed || d.Change != -1 {
		t.Fatalf("zero-exit delta wrong: %+v", d)
	}
	// Staying at zero is stable.
	res, err = Compare(twoCell(0, 0), twoCell(2e6, 0), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("zero baseline staying clean should pass: %+v", res)
	}
}

func TestCompareConfigDiffs(t *testing.T) {
	old := twoCell(1e6, 0.5)
	old.Config = map[string]string{"threads": "1", "seed": "1"}
	cand := twoCell(1e6, 0.5)
	cand.Config = map[string]string{"threads": "4", "seed": "1", "extra": "x"}
	res, err := Compare(old, cand, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConfigDiffs) != 1 || !strings.Contains(res.ConfigDiffs[0], "threads") {
		t.Fatalf("config diff not flagged: %v", res.ConfigDiffs)
	}
	if !res.OK() {
		t.Fatalf("config diffs are informational, not gating: %+v", res)
	}
	if !strings.Contains(res.Format(), "config differs") {
		t.Fatalf("format omits config note: %q", res.Format())
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	bad := twoCell(1, 1)
	bad.SchemaVersion = 99
	if _, err := Compare(bad, twoCell(1, 1), 0.1); err == nil {
		t.Fatal("stale baseline schema must error")
	}
	if _, err := Compare(twoCell(1, 1), twoCell(1, 1), -0.1); err == nil {
		t.Fatal("negative threshold must error")
	}
}

func TestParseThreshold(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"10%", 0.10}, {"10 %", 0.10}, {" 75% ", 0.75}, {"150%", 1.5}, {"0.1", 0.1}, {"1", 1}, {"0", 0},
	} {
		got, err := ParseThreshold(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseThreshold(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	// Bare ratios above 1 are the forgotten-% typo and would neutralize
	// the gate.
	for _, bad := range []string{"", "x%", "-5%", "ten", "60", "1.5"} {
		if _, err := ParseThreshold(bad); err == nil {
			t.Fatalf("ParseThreshold(%q) should error", bad)
		}
	}
}

func TestCompareSplitThresholds(t *testing.T) {
	old := twoCell(1e6, 0.5)
	// Throughput -50% is inside a generous 85% gate; pwbs/op +50% busts
	// the tight 25% lower-is-better gate.
	res, err := CompareThresholds(old, twoCell(0.5e6, 0.75), 0.85, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions != 1 || !res.Deltas[1].Regressed || res.Deltas[0].Regressed {
		t.Fatalf("split gate wrong: %+v", res)
	}
	if !strings.Contains(res.Format(), "lower-is-better") {
		t.Fatalf("format omits split gate: %q", res.Format())
	}
}
