// Package bench is the benchmark orchestration subsystem: it runs
// declarative matrices of policy × data structure × workload (reusing
// the core policy registry, the harness's figure specs, the YCSB
// workload mixes and the FliT-Store service), folds warmup + repeated
// runs into summary statistics, and emits one versioned machine-readable
// schema (BenchReport) that every emitter in the repo shares —
// cmd/flitbench (-json / -matrix), cmd/flitstore, and the Go-benchmark
// adapter in bench_test.go. `Compare` diffs two reports cell by cell and
// is the engine of the CI perf-regression gate (see EXPERIMENTS.md).
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"flit/internal/bench/stats"
)

// SchemaVersion stamps every report. Bump it when a field changes
// meaning. Readers accept any version in [MinSchemaVersion,
// SchemaVersion], so a v2 candidate can still be gated against a v1
// baseline (whose cells simply lack the newer fields).
//
// v2 added per-cell wall-clock ns/op and allocs/op.
const SchemaVersion = 2

// MinSchemaVersion is the oldest report version readers still accept.
const MinSchemaVersion = 1

// Report is the versioned machine-readable benchmark record — the unit
// of the repo's BENCH_*.json perf trajectory. Field names are stable
// identifiers; additions are backwards-compatible, renames are not.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"` // "flitbench" | "flitstore" | "go-bench"
	GitRev        string `json:"git_rev,omitempty"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	// Config records the knobs that shaped the run (threads, duration,
	// repeats, seed, matrix/figure ids) as strings, for humans and for
	// "are these comparable?" checks.
	Config map[string]string `json:"config,omitempty"`
	Cells  []Cell            `json:"cells"`
}

// Cell is one measured point of the matrix. ID is unique within a
// report and is the join key of Compare; keep IDs deterministic
// functions of the configuration, never of the measurement.
type Cell struct {
	ID   string `json:"id"`
	Unit string `json:"unit"`
	// Value summarizes the repeated measurements of the cell's headline
	// quantity (throughput for */throughput cells, flush rate for
	// */pwbs_per_op cells, …).
	Value stats.Summary `json:"value"`
	// LowerIsBetter flips Compare's regression direction (latency and
	// flush-count cells regress upward).
	LowerIsBetter bool `json:"lower_is_better,omitempty"`

	// Optional raw counts and tail latencies, populated by runners that
	// track them (matrix store cells, flitstore cycles).
	Ops     uint64 `json:"ops,omitempty"`
	PWBs    uint64 `json:"pwbs,omitempty"`
	PFences uint64 `json:"pfences,omitempty"`
	P50Ns   int64  `json:"p50_ns,omitempty"`
	P95Ns   int64  `json:"p95_ns,omitempty"`
	P99Ns   int64  `json:"p99_ns,omitempty"`

	// Schema v2: wall-clock thread-nanoseconds per op and Go heap
	// allocations per op over the measured window (mean across repeats)
	// — the runner-overhead trajectory the simulated throughput numbers
	// can't see. Absent (zero) in v1 reports.
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// NewReport stamps a report with the environment: git revision, Go
// version, GOMAXPROCS.
func NewReport(tool string, config map[string]string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Tool:          tool,
		GitRev:        gitRev(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Config:        config,
	}
}

// gitRev best-efforts the current revision: CI's GITHUB_SHA, an explicit
// FLIT_GIT_REV override, then `git rev-parse`. Empty when unknowable —
// the report is still valid.
func gitRev() string {
	for _, env := range []string{"FLIT_GIT_REV", "GITHUB_SHA"} {
		if v := os.Getenv(env); v != "" {
			return v
		}
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Add appends a cell.
func (r *Report) Add(c Cell) { r.Cells = append(r.Cells, c) }

// Find returns the cell with the given ID, or nil.
func (r *Report) Find(id string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// Validate checks the report is schema-valid: current version, a tool
// name, and cells with unique non-empty IDs, units, at least one
// observation, and finite numbers.
func (r *Report) Validate() error {
	if r.SchemaVersion < MinSchemaVersion || r.SchemaVersion > SchemaVersion {
		return fmt.Errorf("bench: schema version %d outside supported [%d,%d]",
			r.SchemaVersion, MinSchemaVersion, SchemaVersion)
	}
	if r.Tool == "" {
		return fmt.Errorf("bench: report has no tool")
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("bench: report has no cells")
	}
	seen := make(map[string]bool, len(r.Cells))
	for i, c := range r.Cells {
		if c.ID == "" {
			return fmt.Errorf("bench: cell %d has empty id", i)
		}
		if seen[c.ID] {
			return fmt.Errorf("bench: duplicate cell id %q", c.ID)
		}
		seen[c.ID] = true
		if c.Unit == "" {
			return fmt.Errorf("bench: cell %q has no unit", c.ID)
		}
		if c.Value.N < 1 {
			return fmt.Errorf("bench: cell %q has no observations", c.ID)
		}
		for _, v := range []float64{c.Value.Mean, c.Value.Stddev, c.Value.Min, c.Value.Max} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bench: cell %q has non-finite value", c.ID)
			}
		}
	}
	return nil
}

// WriteFile validates and writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// MetricReporter is the slice of *testing.B the Go-bench adapter needs;
// it keeps the testing package out of this package's import graph.
type MetricReporter interface {
	ReportMetric(n float64, unit string)
}

// ReportMetrics emits every cell of the report through a Go benchmark's
// custom-metric channel, so `go test -bench` output carries the same
// numbers as the JSON schema (the thin adapter keeping bench_test.go
// Go-bench compatible). Metric names are "<cell-id>:<unit>" with spaces
// squeezed out, as Go bench metric units must be space-free.
func ReportMetrics(b MetricReporter, r *Report) {
	for _, c := range r.Cells {
		unit := strings.ReplaceAll(c.ID+":"+c.Unit, " ", "_")
		b.ReportMetric(c.Value.Mean, unit)
	}
}

// SlugID builds a deterministic cell ID from path components: lowercase,
// spaces and commas collapsed to single dashes, slash-joined.
func SlugID(parts ...string) string {
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.ToLower(strings.TrimSpace(p))
		p = strings.Map(func(r rune) rune {
			switch r {
			case ' ', ',', '\t', '%', '\\':
				return '-'
			}
			return r
		}, p)
		for strings.Contains(p, "--") {
			p = strings.ReplaceAll(p, "--", "-")
		}
		p = strings.Trim(p, "-")
		if p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}
