package bench

import (
	"fmt"
	"sort"

	"flit/internal/bench/stats"
	"flit/internal/harness"
)

// FromTables converts figure output (the harness's Table renderings)
// into schema cells, so `flitbench -fig 7 -json r.json` emits the same
// report format as the matrix runner. Cell IDs are slugs of
// figure/table/row/column; cells carry the per-repeat summaries the
// harness attached where a row was measured directly (derived rows —
// ratios, speedups — become single observations of the rendered value).
func FromTables(config map[string]string, figures map[string][]*harness.Table) *Report {
	rep := NewReport("flitbench", config)
	for _, fig := range sortedKeys(figures) {
		for _, t := range figures[fig] {
			lower := lowerIsBetterUnit(t.Unit)
			for _, row := range t.Rows {
				for i, v := range row.Cells {
					col := fmt.Sprintf("c%d", i)
					if i < len(t.Cols) {
						col = t.Cols[i]
					}
					val := stats.Of(v)
					if i < len(row.Stats) {
						val = row.Stats[i]
						if val.IsZero() {
							// Unmeasured cell (inapplicable combination,
							// rendered "-" in the text table): no JSON cell.
							continue
						}
					}
					rep.Add(Cell{
						ID:            SlugID("fig-"+fig, t.Title, row.Label, col),
						Unit:          t.Unit,
						Value:         val,
						LowerIsBetter: lower,
					})
				}
			}
		}
	}
	return rep
}

// lowerIsBetterUnit classifies a table's unit by exact name — substring
// matching is a trap here (the Fig7 speedup table's unit is
// "x (>=1 means FliT wins)", where "means" contains "ns").
func lowerIsBetterUnit(unit string) bool {
	switch unit {
	case "pwbs/op", "ns", "µs", "ms":
		return true
	}
	return false
}

func sortedKeys(m map[string][]*harness.Table) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
