package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flit/internal/bench/stats"
)

// sample builds a small valid report.
func sample() *Report {
	r := NewReport("flitbench", map[string]string{"matrix": "test"})
	r.Add(Cell{ID: "set/bst/automatic/flit-ht/u50/throughput", Unit: "ops/s",
		Value: stats.Summarize([]float64{1e6, 1.2e6}), Ops: 1000, PWBs: 500})
	r.Add(Cell{ID: "set/bst/automatic/flit-ht/u50/pwbs_per_op", Unit: "pwbs/op",
		Value: stats.Of(0.5), LowerIsBetter: true})
	r.Add(Cell{ID: "store/a/zipfian/flit-ht/s4/throughput", Unit: "ops/s",
		Value: stats.Of(2e5), P99Ns: 12345})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sample()
	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", r, got)
	}
	if got.SchemaVersion != SchemaVersion || got.GoVersion == "" || got.GOMAXPROCS < 1 {
		t.Fatalf("environment fields lost: %+v", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"ok", func(r *Report) {}, ""},
		{"version", func(r *Report) { r.SchemaVersion = 99 }, "schema version"},
		{"no tool", func(r *Report) { r.Tool = "" }, "no tool"},
		{"no cells", func(r *Report) { r.Cells = nil }, "no cells"},
		{"empty id", func(r *Report) { r.Cells[0].ID = "" }, "empty id"},
		{"dup id", func(r *Report) { r.Cells[1].ID = r.Cells[0].ID }, "duplicate"},
		{"no unit", func(r *Report) { r.Cells[2].Unit = "" }, "no unit"},
		{"no obs", func(r *Report) { r.Cells[0].Value = stats.Summary{} }, "no observations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sample()
			tc.mutate(r)
			err := r.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestFindAndAdd(t *testing.T) {
	r := sample()
	if c := r.Find("store/a/zipfian/flit-ht/s4/throughput"); c == nil || c.P99Ns != 12345 {
		t.Fatalf("Find returned %+v", c)
	}
	if r.Find("nope") != nil {
		t.Fatal("Find of unknown id should be nil")
	}
}

func TestSlugID(t *testing.T) {
	got := SlugID("fig-7", "Figure 7: bst, 10000 keys", "flit-HT(1MB)", "5%")
	if strings.ContainsAny(got, " ,%") || strings.Contains(got, "--") {
		t.Fatalf("slug not clean: %q", got)
	}
	if got != SlugID("fig-7", "Figure 7: bst, 10000 keys", "flit-HT(1MB)", "5%") {
		t.Fatal("slug not deterministic")
	}
	if SlugID("a", "", "b") != "a/b" {
		t.Fatalf("empty parts should drop: %q", SlugID("a", "", "b"))
	}
}

type metricRecorder struct{ got map[string]float64 }

func (m *metricRecorder) ReportMetric(n float64, unit string) { m.got[unit] = n }

func TestReportMetricsAdapter(t *testing.T) {
	r := sample()
	rec := &metricRecorder{got: map[string]float64{}}
	ReportMetrics(rec, r)
	if len(rec.got) != len(r.Cells) {
		t.Fatalf("adapter emitted %d metrics, want %d", len(rec.got), len(r.Cells))
	}
	key := "set/bst/automatic/flit-ht/u50/throughput:ops/s"
	if v, ok := rec.got[key]; !ok || v != r.Cells[0].Value.Mean {
		t.Fatalf("metric %q = %v, want %v (have %v)", key, v, r.Cells[0].Value.Mean, rec.got)
	}
	for unit := range rec.got {
		if strings.Contains(unit, " ") {
			t.Fatalf("metric unit %q contains a space (Go bench forbids it)", unit)
		}
	}
}
