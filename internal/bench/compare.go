package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

func sortedConfigKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Delta is one cell's old→new movement. Change is the relative change
// of the mean in the cell's "better" direction: positive means the cell
// improved, negative means it degraded (for LowerIsBetter cells a drop
// in the mean is therefore a positive Change).
type Delta struct {
	ID     string
	Unit   string
	Old    float64
	New    float64
	Change float64
	// Regressed marks degradation beyond the comparison threshold;
	// Improved marks movement beyond it in the good direction.
	Regressed bool
	Improved  bool

	// Schema-v2 side metrics (wall-clock ns/op, allocs/op), carried when
	// either report has them. Informational: wall time is host-noisy and
	// allocation counts shift with Go releases, so they annotate the diff
	// without feeding the gate.
	OldNsPerOp     float64
	NewNsPerOp     float64
	OldAllocsPerOp float64
	NewAllocsPerOp float64
}

// HasRuntimeMetrics reports whether either side carried v2 wall-clock /
// allocation metrics.
func (d Delta) HasRuntimeMetrics() bool {
	return d.OldNsPerOp != 0 || d.NewNsPerOp != 0 || d.OldAllocsPerOp != 0 || d.NewAllocsPerOp != 0
}

// CompareResult is a cell-by-cell diff of two reports.
type CompareResult struct {
	// Threshold gates higher-is-better cells (throughput: noisy across
	// hosts); LowerThreshold gates lower-is-better cells (flush rates,
	// latency: near-deterministic, so they can be held much tighter).
	Threshold      float64
	LowerThreshold float64
	Deltas         []Delta
	// MissingInNew lists baseline cells the new report lacks (treated as
	// regressions: a silently dropped cell must not pass the gate).
	// MissingInOld lists new cells with no baseline (informational).
	MissingInNew []string
	MissingInOld []string
	// ConfigDiffs flags config keys present in both reports with
	// different values (threads, duration, …): the numbers may not be
	// structurally comparable. Informational — it does not fail the gate.
	ConfigDiffs  []string
	Regressions  int
	Improvements int
}

// OK reports whether the gate passes: no cell regressed beyond the
// threshold and no baseline cell disappeared.
func (c CompareResult) OK() bool { return c.Regressions == 0 && len(c.MissingInNew) == 0 }

// Compare diffs new against old (the baseline) with one threshold for
// every cell — the relative degradation tolerated, e.g. 0.10 for 10%.
// Any supported schema versions may be mixed (a v2 candidate gates
// against a v1 baseline; v1 cells simply lack the runtime metrics), and
// tools may differ (a flitstore report can be gated against a flitbench
// baseline as long as cell IDs match).
func Compare(old, new *Report, threshold float64) (CompareResult, error) {
	return CompareThresholds(old, new, threshold, threshold)
}

// CompareThresholds is Compare with the gate split by direction:
// threshold for higher-is-better cells, lowerThreshold for
// lower-is-better ones.
func CompareThresholds(old, new *Report, threshold, lowerThreshold float64) (CompareResult, error) {
	if err := old.Validate(); err != nil {
		return CompareResult{}, fmt.Errorf("baseline: %w", err)
	}
	if err := new.Validate(); err != nil {
		return CompareResult{}, fmt.Errorf("candidate: %w", err)
	}
	if threshold < 0 || lowerThreshold < 0 {
		return CompareResult{}, fmt.Errorf("bench: negative threshold %v/%v", threshold, lowerThreshold)
	}
	res := CompareResult{Threshold: threshold, LowerThreshold: lowerThreshold}
	for _, k := range sortedConfigKeys(old.Config) {
		if nv, ok := new.Config[k]; ok && nv != old.Config[k] {
			res.ConfigDiffs = append(res.ConfigDiffs,
				fmt.Sprintf("%s: baseline %q vs candidate %q", k, old.Config[k], nv))
		}
	}
	for _, oc := range old.Cells {
		nc := new.Find(oc.ID)
		if nc == nil {
			res.MissingInNew = append(res.MissingInNew, oc.ID)
			continue
		}
		d := Delta{
			ID: oc.ID, Unit: oc.Unit, Old: oc.Value.Mean, New: nc.Value.Mean,
			OldNsPerOp: oc.NsPerOp, NewNsPerOp: nc.NsPerOp,
			OldAllocsPerOp: oc.AllocsPerOp, NewAllocsPerOp: nc.AllocsPerOp,
		}
		switch {
		case d.Old != 0:
			d.Change = (d.New - d.Old) / d.Old
			if oc.LowerIsBetter {
				d.Change = -d.Change
			}
		case oc.LowerIsBetter && d.New > 0:
			// A lower-is-better cell leaving zero is unboundedly worse —
			// e.g. a read path that never flushed starting to flush. Record
			// it as a full regression so any threshold < 100% gates it.
			d.Change = -1
		}
		th := threshold
		if oc.LowerIsBetter {
			th = lowerThreshold
		}
		if d.Change < -th {
			d.Regressed = true
			res.Regressions++
		} else if d.Change > th {
			d.Improved = true
			res.Improvements++
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, nc := range new.Cells {
		if old.Find(nc.ID) == nil {
			res.MissingInOld = append(res.MissingInOld, nc.ID)
		}
	}
	return res, nil
}

// Format renders the diff for humans: regressions first, then
// improvements, then a one-line verdict. Stable cells are summarized by
// count only.
func (c CompareResult) Format() string {
	var b strings.Builder
	stable := 0
	for _, d := range c.Deltas {
		if d.Regressed {
			fmt.Fprintf(&b, "REGRESSION  %-60s %12.4g -> %-12.4g (%+.1f%%) [%s]\n",
				d.ID, d.Old, d.New, d.Change*100, d.Unit)
		}
	}
	for _, d := range c.Deltas {
		if d.Improved {
			fmt.Fprintf(&b, "improvement %-60s %12.4g -> %-12.4g (%+.1f%%) [%s]\n",
				d.ID, d.Old, d.New, d.Change*100, d.Unit)
		}
	}
	for _, d := range c.Deltas {
		if !d.Regressed && !d.Improved {
			stable++
		}
	}
	// v2 runtime metrics, informational: the wall-clock and allocation
	// trajectory of every cell that carries them.
	for _, d := range c.Deltas {
		if !d.HasRuntimeMetrics() {
			continue
		}
		fmt.Fprintf(&b, "  runtime   %-60s %9.0f -> %-9.0f ns/op   %8.3f -> %-8.3f allocs/op\n",
			d.ID, d.OldNsPerOp, d.NewNsPerOp, d.OldAllocsPerOp, d.NewAllocsPerOp)
	}
	for _, id := range c.MissingInNew {
		fmt.Fprintf(&b, "MISSING     %s (in baseline, absent from candidate)\n", id)
	}
	for _, id := range c.MissingInOld {
		fmt.Fprintf(&b, "new cell    %s (no baseline)\n", id)
	}
	for _, d := range c.ConfigDiffs {
		fmt.Fprintf(&b, "  note: config differs — %s\n", d)
	}
	gate := fmt.Sprintf("±%.0f%%", c.Threshold*100)
	if c.LowerThreshold != c.Threshold {
		gate = fmt.Sprintf("±%.0f%% (±%.0f%% lower-is-better)", c.Threshold*100, c.LowerThreshold*100)
	}
	fmt.Fprintf(&b, "compared %d cells at %s: %d regressed, %d improved, %d stable",
		len(c.Deltas), gate, c.Regressions, c.Improvements, stable)
	if len(c.MissingInNew) > 0 {
		fmt.Fprintf(&b, ", %d missing", len(c.MissingInNew))
	}
	if c.OK() {
		b.WriteString(" — OK\n")
	} else {
		b.WriteString(" — FAIL\n")
	}
	return b.String()
}

// ParseThreshold accepts "10%", "10 %", or a bare ratio like "0.1". A
// bare ratio above 1 is rejected: "-threshold 60" (a forgotten %) would
// otherwise mean 6000% and silently neutralize the gate, since a
// throughput drop can never exceed -100%.
func ParseThreshold(s string) (float64, error) {
	orig := s
	s = strings.TrimSpace(s)
	pct := false
	if strings.HasSuffix(s, "%") {
		pct = true
		s = strings.TrimSpace(strings.TrimSuffix(s, "%"))
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bench: bad threshold %q (want \"10%%\" or \"0.1\")", orig)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("bench: negative threshold %q", orig)
	}
	if !pct && v > 1 {
		return 0, fmt.Errorf("bench: threshold %q is a ratio above 1 — did you mean %q?", orig, s+"%")
	}
	return v, nil
}
