package resilience

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echo pumps every byte written to srv back to the client.
func echo(t *testing.T, srv net.Conn) {
	t.Helper()
	go func() {
		buf := make([]byte, 1024)
		for {
			n, err := srv.Read(buf)
			if n > 0 {
				if _, werr := srv.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
}

func TestWrapConnZeroFaultsIsPassthrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if WrapConn(a, Faults{}) != a {
		t.Fatal("zero Faults must return the conn unchanged")
	}
	_ = b
}

func TestFaultConnPartialWritesReassemble(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	echo(t, srv)
	fc := WrapConn(cli, Faults{Seed: 1, PartialWrites: true})
	defer fc.Close()

	msg := bytes.Repeat([]byte("durability"), 50)
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write(msg)
		done <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted by partial writes")
	}
}

func TestFaultConnResetAfterBytes(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	echo(t, srv)
	fc := WrapConn(cli, Faults{Seed: 2, ResetAfterBytes: 64})
	defer fc.Close()

	// Drain the echo on the raw conn so the synchronous pipe never wedges
	// the echo goroutine; reading raw keeps fault accounting write-only.
	go io.Copy(io.Discard, cli)

	buf := make([]byte, 32)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = fc.Write(buf); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset after byte budget", err)
	}
	// The conn stays dead: reads fail too.
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after reset = %v, want ErrInjectedReset", err)
	}
}

func TestFaultConnBlackholeRespectsDeadline(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	echo(t, srv)
	fc := WrapConn(cli, Faults{Seed: 3, BlackholeAfterBytes: 8})
	defer fc.Close()

	if _, err := fc.Write(make([]byte, 16)); err != nil {
		t.Fatalf("priming write: %v", err)
	}
	// Past the budget: writes succeed silently...
	if n, err := fc.Write(make([]byte, 100)); err != nil || n != 100 {
		t.Fatalf("blackholed write = (%d, %v), want silent success", n, err)
	}
	// ...and reads block until the deadline, then report a net timeout.
	fc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(make([]byte, 8))
	if err == nil {
		t.Fatal("blackholed read returned data")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("blackholed read err = %v, want deadline timeout", err)
		}
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("blackholed read returned before the deadline")
	}
}

func TestFaultConnDelaysEveryN(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	echo(t, srv)
	fc := WrapConn(cli, Faults{Seed: 4, DelayEvery: 1, WriteDelay: 10 * time.Millisecond})
	defer fc.Close()

	start := time.Now()
	go io.Copy(io.Discard, fc)
	for i := 0; i < 3; i++ {
		if _, err := fc.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("3 delayed writes took %v, want >= 30ms", el)
	}
}

func TestFaultListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	fl := &FaultListener{Listener: ln, F: Faults{Seed: 9, ResetAfterBytes: 1}}
	defer fl.Close()

	done := make(chan error, 1)
	go func() {
		c, err := fl.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		if _, ok := c.(*faultConn); !ok {
			done <- errors.New("accepted conn not fault-wrapped")
			return
		}
		buf := make([]byte, 16)
		c.Read(buf)
		_, err = c.Read(buf)
		if !errors.Is(err, ErrInjectedReset) {
			done <- errors.New("accepted conn did not inject reset")
			return
		}
		done <- nil
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.Write(make([]byte, 16))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
