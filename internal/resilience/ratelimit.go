// Package resilience holds the server/client hardening primitives for the
// networked FliT store: a lock-free rate limiter (admission control), a
// capped exponential backoff policy (client retries), and a fault-injecting
// net.Conn wrapper (chaos harness).
//
// Everything in this package is dependency-free and safe for concurrent use
// unless noted otherwise.
package resilience

import (
	"sync/atomic"
	"time"
)

// Limiter is a lock-free token-bucket rate limiter implemented as GCRA
// (generic cell rate algorithm). The whole state is a single int64 — the
// theoretical arrival time (TAT) in nanoseconds — advanced with a CAS loop,
// so admission checks cost one atomic RMW on the hot path and never block.
//
// A Limiter with rate 0 admits everything (nil Limiters do too), which lets
// callers keep a single code path whether or not limiting is configured.
type Limiter struct {
	// tat is the theoretical arrival time of the next conforming request,
	// in nanoseconds on the same clock as the now argument to Allow.
	tat atomic.Int64

	interval int64 // emission interval per token, ns
	burst    int64 // burst allowance, ns (tau in GCRA terms)
}

// NewLimiter builds a limiter admitting ratePerSec tokens per second with
// the given burst capacity (tokens that may be consumed instantaneously).
// ratePerSec <= 0 returns nil: an unlimited limiter.
// burst is clamped to at least 1.
func NewLimiter(ratePerSec float64, burst int) *Limiter {
	if ratePerSec <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(time.Second) / ratePerSec)
	if interval < 1 {
		interval = 1
	}
	return &Limiter{
		interval: interval,
		burst:    int64(burst) * interval,
	}
}

// Allow asks for n tokens at time now (nanoseconds, any monotonic origin).
// It returns ok=true if the request conforms; otherwise ok=false and a
// suggested wait before retrying. n larger than the burst capacity is
// clamped to the burst so oversized batches can still (eventually) pass
// rather than being unservable forever.
func (l *Limiter) Allow(now int64, n int) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	need := int64(n) * l.interval
	if need > l.burst {
		need = l.burst
	}
	for {
		old := l.tat.Load()
		tat := old
		if tat < now {
			tat = now
		}
		newTAT := tat + need
		// Conforms if the new TAT stays within the burst window of now.
		if newTAT-now > l.burst {
			return false, time.Duration(newTAT - now - l.burst)
		}
		if l.tat.CompareAndSwap(old, newTAT) {
			return true, 0
		}
	}
}
