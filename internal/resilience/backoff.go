package resilience

import (
	"math/rand"
	"time"
)

// Backoff produces capped exponential retry delays with full jitter:
// attempt k sleeps for a uniformly random duration in (0, min(Base<<k, Max)].
// Full jitter decorrelates retrying clients so a reconnect storm after a
// server restart does not arrive in lockstep.
//
// Backoff is NOT safe for concurrent use; give each retrying connection its
// own instance.
type Backoff struct {
	Base time.Duration // first-attempt ceiling; default 1ms
	Max  time.Duration // overall ceiling; default 1s

	attempt int
	rng     *rand.Rand
}

// NewBackoff returns a Backoff seeded deterministically (for reproducible
// chaos runs). Base/Max of zero pick the defaults.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	return &Backoff{Base: base, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to sleep before the next retry and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = time.Second
	}
	ceil := base
	for i := 0; i < b.attempt && ceil < max; i++ {
		ceil <<= 1
	}
	if ceil > max {
		ceil = max
	}
	b.attempt++
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(1))
	}
	return time.Duration(b.rng.Int63n(int64(ceil))) + 1
}

// Attempts reports how many times Next has been called since the last Reset.
func (b *Backoff) Attempts() int { return b.attempt }

// Reset rewinds the exponential schedule after a successful operation.
func (b *Backoff) Reset() { b.attempt = 0 }
