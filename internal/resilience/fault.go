package resilience

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by a faultConn once its reset budget is
// exhausted: every subsequent Read/Write fails with it, mimicking a peer
// that sent RST. Callers match it with errors.Is.
var ErrInjectedReset = errors.New("resilience: injected connection reset")

// Faults configures a fault-injecting wrapper around a net.Conn. The zero
// value injects nothing. All byte/op counts are per connection, not global.
type Faults struct {
	// Seed drives the per-connection RNGs so a scenario replays exactly.
	Seed int64

	// DelayEvery injects ReadDelay/WriteDelay before every Nth read/write
	// call (1 = every call). 0 disables delays.
	DelayEvery int
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// PartialWrites splits each Write into random 1..16 byte chunks,
	// exercising short-write handling and frame reassembly on the peer.
	PartialWrites bool

	// ResetAfterBytes hard-fails the connection (ErrInjectedReset) once
	// this many total bytes have crossed it in either direction. 0 disables.
	ResetAfterBytes int64

	// BlackholeAfterBytes silently swallows all traffic after this many
	// bytes: writes "succeed" without delivering, reads block until the
	// deadline (or forever). Models a dead peer that never RSTs. 0 disables.
	BlackholeAfterBytes int64
}

// enabled reports whether the config injects anything at all.
func (f Faults) enabled() bool {
	return f.DelayEvery > 0 || f.PartialWrites || f.ResetAfterBytes > 0 || f.BlackholeAfterBytes > 0
}

// WrapConn wraps c with fault injection. A zero Faults returns c unchanged.
func WrapConn(c net.Conn, f Faults) net.Conn {
	if !f.enabled() {
		return c
	}
	return &faultConn{Conn: c, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// faultConn injects the configured faults around an underlying net.Conn.
// A single mutex serializes the fault bookkeeping; the underlying Read and
// Write are called outside the lock so a delayed reader cannot block a
// concurrent writer.
type faultConn struct {
	net.Conn
	f   Faults
	rng *rand.Rand

	mu     sync.Mutex
	bytes  int64 // total bytes in both directions
	calls  int   // read+write calls, for DelayEvery
	reset  bool
	silent bool // blackholed
}

// before runs the pre-I/O fault decisions and returns the delay to apply
// plus terminal states. It never sleeps while holding the lock.
func (c *faultConn) before(isWrite bool) (delay time.Duration, reset, silent bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, true, false
	}
	if c.silent {
		return 0, false, true
	}
	c.calls++
	if c.f.DelayEvery > 0 && c.calls%c.f.DelayEvery == 0 {
		if isWrite {
			delay = c.f.WriteDelay
		} else {
			delay = c.f.ReadDelay
		}
	}
	return delay, false, false
}

// account adds n transferred bytes and trips the reset/blackhole budgets.
func (c *faultConn) account(n int) error {
	if n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes += int64(n)
	if c.f.ResetAfterBytes > 0 && c.bytes >= c.f.ResetAfterBytes && !c.reset {
		c.reset = true
		return ErrInjectedReset
	}
	if c.f.BlackholeAfterBytes > 0 && c.bytes >= c.f.BlackholeAfterBytes {
		c.silent = true
	}
	return nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	delay, reset, silent := c.before(false)
	if reset {
		return 0, ErrInjectedReset
	}
	if silent {
		return c.blackholeRead()
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.Conn.Read(p)
	if aerr := c.account(n); aerr != nil {
		// Deliver the bytes that made it, fail the next call.
		if err == nil {
			return n, nil
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	delay, reset, silent := c.before(true)
	if reset {
		return 0, ErrInjectedReset
	}
	if silent {
		return len(p), nil // swallowed
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if !c.f.PartialWrites {
		n, err := c.Conn.Write(p)
		c.account(n)
		return n, err
	}
	written := 0
	for written < len(p) {
		c.mu.Lock()
		if c.reset {
			c.mu.Unlock()
			return written, ErrInjectedReset
		}
		if c.silent {
			c.mu.Unlock()
			return len(p), nil
		}
		chunk := 1 + c.rng.Intn(16)
		c.mu.Unlock()
		if written+chunk > len(p) {
			chunk = len(p) - written
		}
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		c.account(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// blackholeRead blocks until the read deadline fires (the underlying conn
// enforces it) without ever delivering bytes. It reads into a throwaway
// buffer on a conn we never write to... simplest portable approach: just
// sleep in small steps until the underlying read fails with a timeout.
func (c *faultConn) blackholeRead() (int, error) {
	// Delegate to the underlying conn with a drained buffer: the peer's
	// bytes may arrive but we discard them and report nothing. Blocking on
	// the real Read keeps deadline semantics (SetReadDeadline) intact.
	var scratch [256]byte
	for {
		n, err := c.Conn.Read(scratch[:])
		if err != nil {
			return 0, err
		}
		_ = n // discard silently
	}
}

// FaultListener wraps every accepted connection with the same Faults,
// bumping the seed per connection so each one draws a distinct but
// reproducible fault schedule.
type FaultListener struct {
	net.Listener
	F Faults

	mu   sync.Mutex
	next int64
}

func (l *FaultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	f := l.F
	f.Seed += l.next
	l.next++
	l.mu.Unlock()
	return WrapConn(c, f), nil
}
