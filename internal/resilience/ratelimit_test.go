package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterNilAndZeroRateAdmitEverything(t *testing.T) {
	var l *Limiter
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow(int64(i), 100); !ok {
			t.Fatal("nil limiter rejected")
		}
	}
	if NewLimiter(0, 10) != nil {
		t.Fatal("rate 0 should build a nil (unlimited) limiter")
	}
	if NewLimiter(-5, 10) != nil {
		t.Fatal("negative rate should build a nil limiter")
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	// 1000 ops/s, burst 10: at t=0 exactly 10 single-token requests pass.
	l := NewLimiter(1000, 10)
	now := int64(0)
	admitted := 0
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow(now, 1); ok {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("admitted %d at t=0, want burst of 10", admitted)
	}
	// After one emission interval (1ms) exactly one more token exists.
	now += int64(time.Millisecond)
	if ok, _ := l.Allow(now, 1); !ok {
		t.Fatal("token should have refilled after one interval")
	}
	if ok, retry := l.Allow(now, 1); ok {
		t.Fatal("second token should not exist yet")
	} else if retry <= 0 {
		t.Fatalf("retryAfter = %v, want positive hint", retry)
	}
}

func TestLimiterRetryAfterIsHonest(t *testing.T) {
	l := NewLimiter(1000, 1)
	now := int64(0)
	if ok, _ := l.Allow(now, 1); !ok {
		t.Fatal("first token must pass")
	}
	_, retry := l.Allow(now, 1)
	if retry <= 0 {
		t.Fatal("expected a retry hint")
	}
	// Waiting the hinted duration must make the next request conform.
	now += int64(retry)
	if ok, _ := l.Allow(now, 1); !ok {
		t.Fatal("request after hinted wait still rejected")
	}
}

func TestLimiterOversizedBatchClampsToBurst(t *testing.T) {
	l := NewLimiter(1000, 4)
	// A request for 100 tokens exceeds the burst of 4; it must still be
	// admissible (clamped), not unservable forever.
	if ok, _ := l.Allow(0, 100); !ok {
		t.Fatal("oversized batch must clamp to burst and pass on a full bucket")
	}
}

func TestLimiterConcurrentAdmissionBounded(t *testing.T) {
	// With a frozen clock, concurrent Allow calls must admit exactly the
	// burst, never more — the CAS loop cannot double-spend tokens.
	l := NewLimiter(100000, 64)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if ok, _ := l.Allow(0, 1); ok {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 64 {
		t.Fatalf("admitted %d under contention, want exactly 64", got)
	}
}

func TestBackoffCapsAndJitters(t *testing.T) {
	b := NewBackoff(time.Millisecond, 16*time.Millisecond, 42)
	prevCeil := time.Duration(0)
	for i := 0; i < 20; i++ {
		d := b.Next()
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", i, d)
		}
		if d > 16*time.Millisecond {
			t.Fatalf("attempt %d: delay %v above cap", i, d)
		}
		if d > prevCeil {
			prevCeil = d
		}
	}
	if b.Attempts() != 20 {
		t.Fatalf("Attempts = %d, want 20", b.Attempts())
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatal("Reset did not rewind attempts")
	}
	// First post-reset delay is again bounded by Base.
	if d := b.Next(); d > time.Millisecond {
		t.Fatalf("post-reset delay %v exceeds base ceiling", d)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := NewBackoff(time.Millisecond, time.Second, 7)
	b := NewBackoff(time.Millisecond, time.Second, 7)
	for i := 0; i < 10; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: seeds diverge (%v vs %v)", i, da, db)
		}
	}
}
