package reclaim

import (
	"testing"

	"flit/internal/pheap"
	"flit/internal/pmem"
)

// TestCloseFreesBagsWhenQuiescent: with no other handle pinned, Close
// advances the epoch past its own grace bags and frees them on the spot
// — a short-lived session that never retired advancePeriod blocks must
// not leave anything behind.
func TestCloseFreesBagsWhenQuiescent(t *testing.T) {
	a := newArena()
	d := NewDomain()
	h := d.NewHandle(a)
	h.Enter()
	for i := 0; i < 8; i++ {
		h.Retire(a.Alloc(4), 4)
	}
	h.Exit()
	h.Close()
	if n := d.NumHandles(); n != 0 {
		t.Fatalf("NumHandles after Close = %d, want 0", n)
	}
	if n := d.OrphanBlocks(); n != 0 {
		t.Fatalf("OrphanBlocks after unobstructed Close = %d, want 0", n)
	}
	if _, frees, _ := a.AllocStats(); frees != 8 {
		t.Fatalf("Close freed %d blocks, want all 8", frees)
	}
}

// TestCloseOrphansBehindPinnedReader: when a live pinned handle blocks
// epoch advancement, Close must park its grace bags on the domain orphan
// list — NOT free them (the reader may still hold references) — and a
// surviving handle frees them once the reader moves on.
func TestCloseOrphansBehindPinnedReader(t *testing.T) {
	a := newArena()
	d := NewDomain()
	reader := d.NewHandle(a)
	reader.Enter() // pins the epoch for the whole first act

	h := d.NewHandle(a)
	h.Enter()
	for i := 0; i < 8; i++ {
		h.Retire(a.Alloc(4), 4)
	}
	h.Exit()
	h.Close()
	if n := d.OrphanBlocks(); n != 8 {
		t.Fatalf("OrphanBlocks after Close behind a pinned reader = %d, want 8", n)
	}
	if _, frees, _ := a.AllocStats(); frees != 0 {
		t.Fatalf("Close freed %d blocks under a pinned reader", frees)
	}

	reader.Exit()
	h2 := d.NewHandle(a)
	for i := 0; i < 10*advancePeriod; i++ {
		h2.Enter()
		h2.Retire(a.Alloc(1), 1)
		h2.Exit()
	}
	if n := d.OrphanBlocks(); n != 0 {
		t.Fatalf("orphans never scavenged by a surviving handle: %d blocks still parked", n)
	}
	h2.Flush()
	h2.Close()
	reader.Close()
}

// TestCrashedOwnerAdopted is the epoch-wedge regression test: a handle
// abandoned while pinned — its owning pmem thread unwound via crash
// injection without Exit or Close — must be adopted during epoch
// advancement instead of pinning the global epoch forever.
func TestCrashedOwnerAdopted(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 18)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
	mem := pmem.New(cfg)
	a := pheap.New(mem).NewArena()
	d := NewDomain()

	th := mem.RegisterThread()
	victim := d.NewHandleOwned(a, th)
	victim.Enter() // pinned; never Exits
	// Kill the owner the way crash injection does: the goroutine unwinds
	// on ErrCrashed with the announcement still in place.
	th.SetCrashAfter(0)
	if crashed := pmem.RunToCrash(func() { th.CheckCrash() }); !crashed {
		t.Fatal("armed crash countdown did not fire")
	}

	writer := d.NewHandle(a)
	start := d.Epoch()
	for i := 0; i < 10*advancePeriod; i++ {
		writer.Enter()
		writer.Retire(a.Alloc(1), 1)
		writer.Exit()
	}
	// At most one advance could succeed past a live pinned handle (see
	// TestPinnedReaderBlocksAdvance); more than one proves adoption.
	if d.Epoch() <= start+1 {
		t.Fatalf("epoch wedged at %d by a crashed owner's pinned handle", d.Epoch())
	}
	if n := d.NumHandles(); n != 1 {
		t.Fatalf("crashed handle not adopted: %d handles registered, want 1", n)
	}
	writer.Flush()
	writer.Close()
}

// TestLiveOwnerStillPins: the orphan rule must not adopt a handle whose
// owner is alive — only Crashed() owners are fair game, else a slow
// reader's nodes could be freed under it.
func TestLiveOwnerStillPins(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 18)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
	mem := pmem.New(cfg)
	a := pheap.New(mem).NewArena()
	d := NewDomain()

	th := mem.RegisterThread()
	reader := d.NewHandleOwned(a, th) // owner set but never crashes
	reader.Enter()
	start := d.Epoch()
	writer := d.NewHandle(a)
	for i := 0; i < 5*advancePeriod; i++ {
		writer.Enter()
		writer.Retire(a.Alloc(1), 1)
		writer.Exit()
	}
	if d.Epoch() > start+1 {
		t.Fatalf("epoch advanced to %d past a pinned handle with a live owner", d.Epoch())
	}
	if n := d.NumHandles(); n != 2 {
		t.Fatalf("live-owner handle was adopted: %d handles, want 2", n)
	}
	reader.Exit()
	writer.Flush()
}

// TestHandleChurnBounded: a churn of short-lived handles must leave the
// domain registry empty and the outstanding (retired-not-freed) block
// population bounded by the grace period, not growing with the number of
// closed handles.
func TestHandleChurnBounded(t *testing.T) {
	a := newArena()
	d := NewDomain()
	for i := 0; i < 64; i++ {
		h := d.NewHandle(a)
		for j := 0; j < 2*advancePeriod; j++ {
			h.Enter()
			h.Retire(a.Alloc(2), 2)
			h.Exit()
		}
		h.Close()
		h.Close() // idempotent
		if n := d.NumHandles(); n != 0 {
			t.Fatalf("cycle %d: NumHandles=%d, want 0", i, n)
		}
	}
	allocs, frees, _ := a.AllocStats()
	if frees == 0 {
		t.Fatal("no retired block was ever freed under handle churn")
	}
	if outstanding := allocs - frees; outstanding > 6*advancePeriod {
		t.Fatalf("outstanding blocks %d grew with handle churn (allocs=%d frees=%d)",
			outstanding, allocs, frees)
	}
}
