// Package reclaim provides epoch-based memory reclamation (EBR) for the
// lock-free data structures, standing in for the ssmem epoch allocator the
// paper's artifact uses. Without it, immediate reuse of freed nodes would
// let concurrent traversals chase re-initialized memory — an ABA hazard the
// simulation would hit just like native code.
//
// The scheme is Fraser-style 3-bucket EBR: threads announce the global
// epoch on entering an operation and announce quiescence on leaving; a
// block retired in epoch e is recycled only once the global epoch reaches
// e+2, by which time every thread that could have held a reference has
// left its critical section.
package reclaim

import (
	"sync"
	"sync/atomic"

	"flit/internal/pheap"
	"flit/internal/pmem"
)

// quiescent marks a thread that is not inside an operation.
const quiescent = ^uint64(0)

// advancePeriod is how many retirements a handle buffers between attempts
// to advance the global epoch.
const advancePeriod = 64

// slot is a cache-line padded epoch announcement.
type slot struct {
	announce atomic.Uint64
	_        [7]uint64 // pad to a cache line to avoid false sharing
}

// Domain is a reclamation domain shared by all threads operating on one
// data structure instance.
type Domain struct {
	epoch atomic.Uint64

	mu    sync.Mutex
	slots []*slot
}

// NewDomain creates an empty reclamation domain.
func NewDomain() *Domain { return &Domain{} }

type retired struct {
	p pmem.Addr
	n int
}

// Handle is a thread-private attachment to a Domain. Each worker goroutine
// must own its own Handle.
type Handle struct {
	d     *Domain
	s     *slot
	arena *pheap.Arena

	bags     [3][]retired
	bagEpoch [3]uint64
	sinceAdv int
}

// NewHandle registers a thread with the domain. Freed blocks are returned
// to arena once safe.
func (d *Domain) NewHandle(arena *pheap.Arena) *Handle {
	s := &slot{}
	s.announce.Store(quiescent)
	d.mu.Lock()
	d.slots = append(d.slots, s)
	d.mu.Unlock()
	return &Handle{d: d, s: s, arena: arena}
}

// Enter pins the current epoch; call at the start of every data structure
// operation, paired with Exit.
func (h *Handle) Enter() {
	h.s.announce.Store(h.d.epoch.Load())
}

// Exit announces quiescence; the thread must hold no references to shared
// nodes after this point.
func (h *Handle) Exit() {
	h.s.announce.Store(quiescent)
}

// Retire schedules the n-word block at p for reuse once no concurrent
// operation can still reference it.
func (h *Handle) Retire(p pmem.Addr, n int) {
	e := h.d.epoch.Load()
	idx := e % 3
	if h.bagEpoch[idx] != e {
		// The bucket belongs to an epoch ≥ 3 behind; its blocks are safe.
		h.drain(idx)
		h.bagEpoch[idx] = e
	}
	h.bags[idx] = append(h.bags[idx], retired{p, n})
	h.sinceAdv++
	if h.sinceAdv >= advancePeriod {
		h.sinceAdv = 0
		h.tryAdvance()
	}
}

// drain returns every block in bucket idx to the arena.
func (h *Handle) drain(idx uint64) {
	for _, r := range h.bags[idx] {
		h.arena.Free(r.p, r.n)
	}
	h.bags[idx] = h.bags[idx][:0]
}

// tryAdvance bumps the global epoch if every non-quiescent thread has
// caught up to it, then frees this handle's now-safe bucket.
func (h *Handle) tryAdvance() {
	d := h.d
	e := d.epoch.Load()
	d.mu.Lock()
	slots := d.slots
	d.mu.Unlock()
	for _, s := range slots {
		a := s.announce.Load()
		if a != quiescent && a != e {
			return // a straggler pins epoch e-1 or e
		}
	}
	if d.epoch.CompareAndSwap(e, e+1) {
		ne := e + 1
		idx := ne % 3
		if h.bagEpoch[idx] != ne && len(h.bags[idx]) > 0 {
			h.drain(idx)
			h.bagEpoch[idx] = ne
		}
	}
}

// Flush force-drains all buckets. Only call when no other thread is inside
// an operation (e.g. test teardown).
func (h *Handle) Flush() {
	for i := uint64(0); i < 3; i++ {
		h.drain(i)
	}
}

// Epoch returns the domain's current global epoch (diagnostics).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }
