// Package reclaim provides epoch-based memory reclamation (EBR) for the
// lock-free data structures, standing in for the ssmem epoch allocator the
// paper's artifact uses. Without it, immediate reuse of freed nodes would
// let concurrent traversals chase re-initialized memory — an ABA hazard the
// simulation would hit just like native code.
//
// The scheme is Fraser-style 3-bucket EBR: threads announce the global
// epoch on entering an operation and announce quiescence on leaving; a
// block retired in epoch e is recycled only once the global epoch reaches
// e+2, by which time every thread that could have held a reference has
// left its critical section.
//
// Handles have a full lifecycle: Close deregisters a handle so a churn of
// short-lived sessions does not grow the domain forever, moving its
// not-yet-safe retirees to a domain-level orphan list that surviving
// handles scavenge as the epoch advances. An orphan rule covers handles
// whose owner died by crash injection mid-operation: a pinned announcement
// whose owning pmem.Thread reports Crashed() is adopted during epoch
// advancement instead of wedging the epoch (and with it every handle's
// bags) forever.
package reclaim

import (
	"sync"
	"sync/atomic"

	"flit/internal/pheap"
	"flit/internal/pmem"
)

// quiescent marks a thread that is not inside an operation.
const quiescent = ^uint64(0)

// advancePeriod is how many retirements a handle buffers between attempts
// to advance the global epoch.
const advancePeriod = 64

// slot is a cache-line padded epoch announcement.
type slot struct {
	announce atomic.Uint64
	_        [7]uint64 // pad to a cache line to avoid false sharing
}

// Domain is a reclamation domain shared by all threads operating on one
// data structure instance.
type Domain struct {
	epoch atomic.Uint64

	mu      sync.Mutex
	handles []*Handle
	// orphans holds retirees confiscated from closed or crashed handles,
	// each stamped with its retirement epoch; they are freed by whichever
	// handle advances the epoch past their grace period.
	orphans []orphanBag
}

// orphanBag is one closed handle's bucket awaiting its grace period.
type orphanBag struct {
	epoch  uint64
	blocks []retired
}

// NewDomain creates an empty reclamation domain.
func NewDomain() *Domain { return &Domain{} }

type retired struct {
	p pmem.Addr
	n int
}

// Handle is a thread-private attachment to a Domain. Each worker goroutine
// must own its own Handle.
type Handle struct {
	d     *Domain
	s     *slot
	arena *pheap.Arena

	// owner, when non-nil, is the pmem thread whose crash-injection death
	// permits the orphan rule to adopt this handle (see tryAdvance).
	owner *pmem.Thread

	bags     [3][]retired
	bagEpoch [3]uint64
	sinceAdv int

	closed bool // guarded by d.mu

	// unsafeImmediate bypasses the grace period — mutation-testing tooth
	// only, never set in real code paths (see SetUnsafeImmediateFree).
	unsafeImmediate bool
}

// NewHandle registers a thread with the domain. Freed blocks are returned
// to arena once safe.
func (d *Domain) NewHandle(arena *pheap.Arena) *Handle {
	return d.NewHandleOwned(arena, nil)
}

// NewHandleOwned is NewHandle with the owning pmem thread recorded, which
// arms the orphan rule: if the owner dies by crash injection while the
// handle is pinned, epoch advancement adopts the handle instead of
// stalling on its announcement forever.
func (d *Domain) NewHandleOwned(arena *pheap.Arena, owner *pmem.Thread) *Handle {
	h := &Handle{d: d, s: &slot{}, arena: arena, owner: owner}
	h.s.announce.Store(quiescent)
	d.mu.Lock()
	d.handles = append(d.handles, h)
	d.mu.Unlock()
	return h
}

// Enter pins the current epoch; call at the start of every data structure
// operation, paired with Exit.
func (h *Handle) Enter() {
	h.s.announce.Store(h.d.epoch.Load())
}

// Exit announces quiescence; the thread must hold no references to shared
// nodes after this point.
func (h *Handle) Exit() {
	h.s.announce.Store(quiescent)
}

// Retire schedules the n-word block at p for reuse once no concurrent
// operation can still reference it.
func (h *Handle) Retire(p pmem.Addr, n int) {
	if h.unsafeImmediate {
		h.arena.Free(p, n)
		return
	}
	e := h.d.epoch.Load()
	idx := e % 3
	if h.bagEpoch[idx] != e {
		// The bucket belongs to an epoch ≥ 3 behind; its blocks are safe.
		h.drain(idx)
		h.bagEpoch[idx] = e
	}
	h.bags[idx] = append(h.bags[idx], retired{p, n})
	h.sinceAdv++
	if h.sinceAdv >= advancePeriod {
		h.sinceAdv = 0
		h.tryAdvance()
	}
}

// drain returns every block in bucket idx to the arena.
func (h *Handle) drain(idx uint64) {
	for _, r := range h.bags[idx] {
		h.arena.Free(r.p, r.n)
	}
	h.bags[idx] = h.bags[idx][:0]
}

// Close deregisters the handle: its announcement no longer participates
// in epoch advancement and retirees still inside their grace period move
// to the domain's orphan list for a surviving handle to free later.
// Already-safe orphans are returned to this handle's arena on the way
// out. Close is idempotent; the handle must not be used afterwards.
//
// Close also attempts up to two epoch advances. Retire only advances the
// epoch every advancePeriod retirements, so a domain whose sessions each
// retire fewer blocks than that would otherwise never advance at all —
// every short-lived session would park its grace bags on the orphan list
// forever, and a connection churn would grow the heap without bound on
// exactly the low-traffic shards. Closing is a natural quiescent point:
// if no surviving handle is pinned behind the epoch, two advances age
// this handle's own bags past their grace period so they free here and
// now rather than waiting for retire volume that may never come.
func (h *Handle) Close() {
	d := h.d
	d.mu.Lock()
	h.closeLocked()
	for i := 0; i < 2 && d.advanceLocked(); i++ {
	}
	d.scavengeLocked(h.arena)
	d.mu.Unlock()
}

// closeLocked does the deregistration under d.mu: void the announcement,
// unlink from the handle list, and orphan the non-empty bags.
func (h *Handle) closeLocked() {
	if h.closed {
		return
	}
	h.closed = true
	h.s.announce.Store(quiescent)
	d := h.d
	for i, o := range d.handles {
		if o == h {
			d.handles = append(d.handles[:i], d.handles[i+1:]...)
			break
		}
	}
	for i := range h.bags {
		if len(h.bags[i]) == 0 {
			continue
		}
		d.orphans = append(d.orphans, orphanBag{
			epoch:  h.bagEpoch[i],
			blocks: h.bags[i],
		})
		h.bags[i] = nil
	}
}

// scavengeLocked frees every orphan bag whose grace period has elapsed
// (global epoch ≥ retirement epoch + 2) into ar.
func (d *Domain) scavengeLocked(ar *pheap.Arena) {
	if len(d.orphans) == 0 {
		return
	}
	e := d.epoch.Load()
	kept := d.orphans[:0]
	for _, o := range d.orphans {
		if e >= o.epoch+2 {
			for _, r := range o.blocks {
				ar.Free(r.p, r.n)
			}
		} else {
			kept = append(kept, o)
		}
	}
	d.orphans = kept
}

// advanceLocked bumps the global epoch if every registered handle is
// quiescent or has caught up to it. A handle pinned behind the epoch
// whose owning pmem thread died by crash injection is adopted here — its
// goroutine has unwound, so its announcement is void and its bags are
// confiscated as orphans — which is what keeps one crashed session from
// pinning the epoch (and every other handle's bags) forever. Caller
// holds d.mu.
func (d *Domain) advanceLocked() bool {
	e := d.epoch.Load()
	for i := 0; i < len(d.handles); i++ {
		o := d.handles[i]
		a := o.s.announce.Load()
		if a == quiescent || a == e {
			continue
		}
		if o.owner != nil && o.owner.Crashed() {
			o.closeLocked() // removes d.handles[i]
			i--
			continue
		}
		return false // a live straggler pins epoch e-1 or e
	}
	return d.epoch.CompareAndSwap(e, e+1)
}

// tryAdvance bumps the global epoch if every non-quiescent handle has
// caught up to it, then frees this handle's now-safe bucket and any
// orphan bags past their grace period.
func (h *Handle) tryAdvance() {
	d := h.d
	d.mu.Lock()
	advanced := d.advanceLocked()
	if advanced {
		d.scavengeLocked(h.arena)
	}
	d.mu.Unlock()
	if advanced {
		ne := d.epoch.Load()
		idx := ne % 3
		if h.bagEpoch[idx] != ne && len(h.bags[idx]) > 0 {
			h.drain(idx)
			h.bagEpoch[idx] = ne
		}
	}
}

// Flush force-drains all buckets. Only call when no other thread is inside
// an operation (e.g. test teardown).
func (h *Handle) Flush() {
	for i := uint64(0); i < 3; i++ {
		h.drain(i)
	}
}

// SetUnsafeImmediateFree makes Retire free blocks immediately, with no
// grace period — deliberately UNSAFE. It exists only as the mutation
// tooth for the ABA battery: with it enabled, a concurrent reader must
// observe a poisoned/recycled node, proving the battery detects exactly
// the bug reclamation prevents. Never enable it outside that test.
func (h *Handle) SetUnsafeImmediateFree(on bool) { h.unsafeImmediate = on }

// Domain returns the domain this handle is attached to (diagnostics).
func (h *Handle) Domain() *Domain { return h.d }

// Epoch returns the domain's current global epoch (diagnostics).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// NumHandles returns the number of registered (unclosed) handles
// (diagnostics: leak tests watch it stay bounded under session churn).
func (d *Domain) NumHandles() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.handles)
}

// OrphanBlocks returns the number of retired blocks currently parked on
// the orphan list (diagnostics).
func (d *Domain) OrphanBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, o := range d.orphans {
		n += len(o.blocks)
	}
	return n
}
