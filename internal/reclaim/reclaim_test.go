package reclaim

import (
	"sync"
	"testing"

	"flit/internal/pheap"
	"flit/internal/pmem"
)

func newArena() *pheap.Arena {
	cfg := pmem.DefaultConfig(1 << 18)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
	return pheap.New(pmem.New(cfg)).NewArena()
}

func TestRetireEventuallyFrees(t *testing.T) {
	a := newArena()
	d := NewDomain()
	h := d.NewHandle(a)
	for i := 0; i < 10*advancePeriod; i++ {
		h.Enter()
		p := a.Alloc(8)
		h.Retire(p, 8)
		h.Exit()
	}
	h.Flush()
	allocs, frees, _ := a.AllocStats()
	if allocs != 10*advancePeriod || frees != 10*advancePeriod {
		t.Fatalf("allocs=%d frees=%d, want both %d", allocs, frees, 10*advancePeriod)
	}
	if d.Epoch() == 0 {
		t.Fatal("epoch never advanced")
	}
}

func TestPinnedReaderBlocksAdvance(t *testing.T) {
	a := newArena()
	d := NewDomain()
	writer := d.NewHandle(a)
	reader := d.NewHandle(a)

	reader.Enter() // pins the current epoch
	start := d.Epoch()
	for i := 0; i < 5*advancePeriod; i++ {
		writer.Enter()
		writer.Retire(a.Alloc(1), 1)
		writer.Exit()
	}
	// One advance may succeed (reader pinned epoch e; advance to e+1 needs
	// all == e, which holds), but e+1 -> e+2 must not.
	if d.Epoch() > start+1 {
		t.Fatalf("epoch advanced from %d to %d past a pinned reader", start, d.Epoch())
	}
	reader.Exit()
	for i := 0; i < 5*advancePeriod; i++ {
		writer.Enter()
		writer.Retire(a.Alloc(1), 1)
		writer.Exit()
	}
	if d.Epoch() <= start+1 {
		t.Fatalf("epoch stuck at %d after reader exited", d.Epoch())
	}
}

func TestNoBlockFreedWithinTwoEpochsOfRetire(t *testing.T) {
	a := newArena()
	d := NewDomain()
	h := d.NewHandle(a)
	h.Enter()
	p := a.Alloc(8)
	h.Retire(p, 8)
	h.Exit()
	// Immediately after retiring, nothing may be freed yet.
	if _, frees, _ := a.AllocStats(); frees != 0 {
		t.Fatalf("block freed immediately after retire (frees=%d)", frees)
	}
}

func TestConcurrentRetireStress(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 22)
	cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
	heap := pheap.New(pmem.New(cfg))
	d := NewDomain()
	const workers = 4
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := heap.NewArena()
			h := d.NewHandle(a)
			live := make([]pmem.Addr, 0, 16)
			for i := 0; i < iters; i++ {
				h.Enter()
				live = append(live, a.Alloc(4))
				if len(live) > 8 {
					h.Retire(live[0], 4)
					live = live[1:]
				}
				h.Exit()
			}
			h.Flush()
		}()
	}
	wg.Wait()
	if d.Epoch() == 0 {
		t.Fatal("epoch never advanced under concurrency")
	}
}
