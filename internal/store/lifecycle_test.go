package store

import (
	"fmt"
	"testing"

	"flit/internal/pmem"
)

// churnRound deletes and re-inserts every key in [0,n) through sess.
func churnRound(sess *Sess[string], n int) {
	for k := 0; k < n; k++ {
		key := fmt.Sprintf("churn-%d", k)
		sess.Delete(key)
		sess.Put(key, uint64(k))
	}
}

// TestChurnWatermarkBounded is the unbounded-growth regression test from
// the live-traffic leak: a steady delete/insert churn over a fixed live
// set, interleaved with session open/close cycles, must hold the pheap
// watermark steady — retired nodes are recycled through the reclamation
// domain instead of stranding, so the high-water mark stays within 2× of
// its post-warmup value no matter how many rounds run.
func TestChurnWatermarkBounded(t *testing.T) {
	st := newTestStore(t, Options{})
	const live = 256

	warm := Open[string](st, Direct)
	for k := 0; k < live; k++ {
		warm.Put(fmt.Sprintf("churn-%d", k), uint64(k))
	}
	churnRound(warm, live) // one full round so steady-state structures exist
	warm.Close()
	w0 := st.Heap().Watermark()
	t0 := len(st.Mem().Threads())

	for round := 0; round < 50; round++ {
		sess := Open[string](st, Direct)
		churnRound(sess, live)
		sess.Close()
	}

	if w := st.Heap().Watermark(); w > 2*w0 {
		t.Fatalf("pheap watermark grew unbounded under churn: %d words after 50 rounds, warmup %d (bound 2×)", w, w0)
	}
	if n := len(st.Mem().Threads()); n > t0 {
		t.Fatalf("thread registry grew under session churn: %d live threads, baseline %d", n, t0)
	}
	if got := len(st.Snapshot()); got != live {
		t.Fatalf("churn lost keys: %d live, want %d", got, live)
	}
}

// TestBatchedSessionCloseReleases: Batched sessions flush and release
// their thread and handles on Close, same as Direct.
func TestBatchedSessionCloseReleases(t *testing.T) {
	st := newTestStore(t, Options{})
	t0 := len(st.Mem().Threads())
	for i := 0; i < 32; i++ {
		sess := Open[string](st, Batched)
		sess.Put("a", uint64(i))
		sess.Put("b", uint64(i))
		sess.Close() // must flush the pending batch durably
	}
	if n := len(st.Mem().Threads()); n > t0 {
		t.Fatalf("Batched session churn leaked threads: %d live, baseline %d", n, t0)
	}
	if v, ok := Open[string](st, Direct).Get("a"); !ok || v != 31 {
		t.Fatalf("close-time flush lost the final batch: got (%d,%v), want (31,true)", v, ok)
	}
}

// TestSessionCloseIdempotent: double Close must be a no-op, not a
// double-release of the thread slot or handles.
func TestSessionCloseIdempotent(t *testing.T) {
	st := newTestStore(t, Options{})
	sess := Open[string](st, Direct)
	sess.Put("x", 1)
	sess.Close()
	sess.Close()
	other := Open[string](st, Direct)
	defer other.Close()
	if !other.Contains("x") {
		t.Fatal("store corrupted by double Close")
	}
}

// TestCrashedSessionDoesNotWedgeReclamation: a session that dies by
// crash injection mid-operation — never calling Close — must not pin the
// reclamation epoch. If it did, every block retired afterwards would
// strand and the watermark would climb with churn; the orphan rule
// (crashed owners are adopted during epoch advancement) keeps it flat.
func TestCrashedSessionDoesNotWedgeReclamation(t *testing.T) {
	st := newTestStore(t, Options{})
	const live = 256

	warm := Open[string](st, Direct)
	for k := 0; k < live; k++ {
		warm.Put(fmt.Sprintf("churn-%d", k), uint64(k))
	}
	churnRound(warm, live)
	warm.Close()
	w0 := st.Heap().Watermark()

	// Kill a session mid-operation: its epoch announcement stays pinned
	// and its goroutine unwinds without Exit or Close.
	victim := Open[string](st, Direct)
	victim.Put("victim-warm", 1) // ensure its handle has entered an epoch
	victim.Thread().SetCrashAfter(3)
	if !pmem.RunToCrash(func() { victim.Put("victim-crash", 2) }) {
		t.Fatal("armed crash did not fire during the victim's operation")
	}

	for round := 0; round < 50; round++ {
		sess := Open[string](st, Direct)
		churnRound(sess, live)
		sess.Close()
	}

	if w := st.Heap().Watermark(); w > 2*w0 {
		t.Fatalf("crashed session wedged reclamation: watermark %d words after churn, warmup %d (bound 2×)", w, w0)
	}
}
