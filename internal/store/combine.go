// Per-shard flat combining for embedded concurrent writers.
//
// The group-commit path (BatchSession / Batched mode) amortizes fences
// for a network pipeline: one goroutine owns the batch, so deferral is
// free. Embedded concurrent writers have no such owner — each session
// fencing per op is exactly the per-op durability cost the ROADMAP's
// flat-combining item targets. Here, sessions ANNOUNCE operations into a
// per-shard slot array instead of executing them; one winner takes the
// shard's combiner lock, collects every announced slot, executes the
// whole window through the deferred group-commit skeleton, commits it
// under ONE fence via the coalescing write-back queue, and only then
// publishes results back into the slots. Losers spin on their slot.
//
// On top rides VSA-style net-delta coalescing: within one combining
// window the combiner sums OpAdd deltas per key in volatile memory and
// commits a single net store per key at window close. Self-cancelling
// increment/decrement traffic (workload mix G) thus persists near-zero
// lines. The reordering is linearizable because a pending delta is
// settled into the table before ANY other operation on its key executes,
// and durably safe because nothing is acknowledged before the window's
// fence — a crash mid-window loses only unacknowledged operations.
package store

import (
	"runtime"
	"sync"
	"sync/atomic"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pmem"
)

// Slot protocol states. Four states, not three: the combiner must mark a
// slot claimed while executing so later sweeps of the same window do not
// re-serve it, and may publish done only AFTER the window's single fence
// — done is the owner's durability acknowledgment.
const (
	slotEmpty uint32 = iota
	// slotAnnounced: owner has published ops/n/res and waits.
	slotAnnounced
	// slotClaimed: the combiner has executed (or is executing) the slot
	// within the current window; results are written but NOT yet durable.
	slotClaimed
	// slotDone: window fenced; results in res are durable. Owner resets
	// the slot to slotEmpty after copying them out.
	slotDone
)

// combinePad keeps each slot's spin word on its own cache line (64-byte
// lines; the state word is 4 bytes).
const combinePad = 60

// cslot is one session's announcement slot at one shard's combiner. The
// owner writes ops/n/res-capacity, then releases them with the
// state.Store(slotAnnounced); the combiner acquires via state.Load, so
// the non-atomic fields never race.
type cslot struct {
	state atomic.Uint32
	_     [combinePad]byte
	n     int
	ops   []hashedOp
	res   []Result
}

// announce publishes the slot's prepared ops to the combiner.
//
//flit:hotpath
func (sl *cslot) announce() { sl.state.Store(slotAnnounced) }

// combiner is one shard's flat combiner: the combining lock, the slot
// registry, and the execution state the lock holder uses (a dedicated
// pmem thread, a deferred policy wrapper, one hashtable handle — the
// shard equivalent of a BatchSession).
type combiner struct {
	st    *Store
	shard int
	// window is the target operation count per combined window: the
	// combiner keeps sweeping the slots until it has executed at least
	// this many operations or the shard goes idle, then fences once.
	window     int
	noCoalesce bool

	lock  atomic.Uint32
	slots atomic.Pointer[[]*cslot]
	regMu sync.Mutex // serializes copy-on-write slot registration

	t  *pmem.Thread
	d  *core.Deferred
	ht *hashtable.Thread

	// Net-delta state, live only within a window: pending[h] is the
	// accumulated OpAdd delta not yet applied to the table; dkeys keeps
	// insertion order so flushDeltas is deterministic.
	pending map[uint64]uint64
	dkeys   []uint64

	// served collects the slots executed in the current window, to flip
	// to slotDone after the fence.
	served []*cslot
}

// initCombiners lazily builds one combiner per shard, first use of a
// Combined session. Each combiner owns its execution resources outright;
// they are exercised only under its lock. The build runs under growMu and
// waits out any in-flight shard split first: combiners capture the shard
// list, so combining and splitting are mutually exclusive phases (Split
// refuses while combiners exist; this waits while a split migrates).
func (s *Store) initCombiners() {
	for {
		s.growMu.Lock()
		if s.combCrashed.Load() {
			s.growMu.Unlock()
			panic(pmem.ErrCrashed)
		}
		lay := s.lay.Load()
		if lay.mig == nil {
			if s.combiners == nil {
				cs := make([]*combiner, len(lay.tables))
				for i, sh := range lay.tables {
					t := s.mem.RegisterThread()
					ar := s.heap.NewArena()
					d := core.NewDeferred(s.policy)
					c := &combiner{
						st:         s,
						shard:      i,
						window:     s.opts.CombineWindow,
						noCoalesce: s.opts.CombineNoCoalesce,
						t:          t,
						d:          d,
						ht:         sh.Open(dstruct.ThreadOpts{T: t, Arena: ar, Policy: d}),
						pending:    make(map[uint64]uint64),
					}
					empty := make([]*cslot, 0)
					c.slots.Store(&empty)
					cs[i] = c
				}
				s.combiners = cs
			}
			s.growMu.Unlock()
			return
		}
		s.growMu.Unlock()
		s.WaitSplit()
	}
}

// CombinerThreads returns the per-shard combiner execution threads, in
// shard order, initializing the combiners if no Combined session has yet
// been opened. Crash tests arm their countdowns here: announcing
// sessions execute no instrumented instructions themselves, so in
// Combined mode these are the threads where a crash can land.
func (s *Store) CombinerThreads() []*pmem.Thread {
	s.initCombiners()
	ts := make([]*pmem.Thread, len(s.combiners))
	for i, c := range s.combiners {
		ts[i] = c.t
	}
	return ts
}

// register adds a new slot for one session, copy-on-write so a scanning
// combiner never observes a partially-updated registry.
func (c *combiner) register() *cslot {
	sl := &cslot{}
	c.regMu.Lock()
	old := *c.slots.Load()
	next := make([]*cslot, len(old)+1)
	copy(next, old)
	next[len(old)] = sl
	c.slots.Store(&next)
	c.regMu.Unlock()
	return sl
}

// deregister withdraws a closed session's slot, copy-on-write like
// register, so the slot registry does not grow without bound under
// session churn. The slot must be idle (no announced, unserved ops).
func (c *combiner) deregister(sl *cslot) {
	c.regMu.Lock()
	old := *c.slots.Load()
	next := make([]*cslot, 0, len(old))
	for _, s := range old {
		if s != sl {
			next = append(next, s)
		}
	}
	c.slots.Store(&next)
	c.regMu.Unlock()
}

// applyCombined groups the hashed op vector by shard, announces each
// group to its shard's combiner, waits for every window to commit, and
// gathers results back into res in vector order.
//
//flit:hotpath
func (c *sessionCore) applyCombined(ops []hashedOp, res []Result) {
	st := c.st
	if st.combCrashed.Load() {
		// The simulated process already crashed (a combiner hit its crash
		// countdown); every thread of the process dies with it.
		panic(pmem.ErrCrashed)
	}
	c.touched = c.touched[:0]
	for i := range ops {
		// Shard by combiner count, not the live layout: combining and
		// splitting are mutually exclusive, so the combiner list IS the
		// shard list for the lifetime of every combined session.
		sh := int(ops[i].h % uint64(len(st.combiners)))
		sl := c.slots[sh]
		if len(c.idxs[sh]) == 0 {
			sl.ops = sl.ops[:0]
			c.touched = append(c.touched, sh)
		}
		sl.ops = append(sl.ops, ops[i])
		c.idxs[sh] = append(c.idxs[sh], i)
	}
	for _, sh := range c.touched {
		sl := c.slots[sh]
		sl.n = len(sl.ops)
		if cap(sl.res) < sl.n {
			sl.res = make([]Result, sl.n)
		} else {
			sl.res = sl.res[:sl.n]
		}
		sl.announce()
	}
	for _, sh := range c.touched {
		st.combiners[sh].await(c.slots[sh])
	}
	for _, sh := range c.touched {
		sl := c.slots[sh]
		for j, idx := range c.idxs[sh] {
			res[idx] = sl.res[j]
		}
		c.idxs[sh] = c.idxs[sh][:0]
		sl.state.Store(slotEmpty)
	}
}

// await blocks until sl reaches slotDone: spin, yielding to let the
// combiner (or other announcers) run, and volunteer as combiner whenever
// the lock is free. A successful volunteer run is guaranteed to serve
// our own announced slot — every sweep collects all announced slots and
// the first sweep always happens.
func (c *combiner) await(sl *cslot) {
	for {
		if sl.state.Load() == slotDone {
			return
		}
		if c.st.combCrashed.Load() {
			// Whole-process crash model: the combiner died mid-window, so
			// this thread dies too. The lock is never released — the shard
			// stays frozen, as a crashed process's memory would.
			panic(pmem.ErrCrashed)
		}
		if c.lock.CompareAndSwap(0, 1) {
			c.run()
			c.lock.Store(0)
			continue
		}
		runtime.Gosched()
	}
}

// maxIdleSweeps bounds combiner lingering: after this many consecutive
// empty sweeps (each preceded by a yield, so announcers on the same P
// get to publish) the combiner closes the window even if it is short.
const maxIdleSweeps = 4

// run executes one combined window under the combiner lock: sweep the
// slot registry, execute announced slots through the deferred skeleton,
// linger while more work arrives (up to the window target), then commit
// everything under one fence and publish done. A crash countdown firing
// mid-window panics through run with the lock held and the sticky
// combCrashed flag set, killing the whole simulated process.
func (c *combiner) run() {
	defer func() {
		if r := recover(); r != nil {
			c.st.combCrashed.Store(true)
			panic(r)
		}
	}()
	executed, idle := 0, 0
	c.served = c.served[:0]
	for executed < c.window && idle < maxIdleSweeps {
		slots := *c.slots.Load()
		found := 0
		for _, sl := range slots {
			if sl.state.Load() != slotAnnounced {
				continue
			}
			sl.state.Store(slotClaimed)
			c.execSlot(sl)
			c.served = append(c.served, sl)
			found += sl.n
		}
		if found == 0 {
			idle++
			runtime.Gosched()
			continue
		}
		idle = 0
		executed += found
	}
	if len(c.served) == 0 {
		return
	}
	c.flushDeltas()
	// THE fence: one Flush persists the whole window (each dirty line
	// drained once via the coalescing write-back queue) and releases the
	// deferred flit-tags. Only now are the window's results durable.
	c.d.Flush(c.t)
	for _, sl := range c.served {
		sl.state.Store(slotDone)
	}
}

// execSlot applies one announced slot's ops through the combiner's
// deferred handle, writing results into the slot. OpAdd traffic is
// diverted into the net-delta accumulator (unless noCoalesce); every
// other kind settles any pending delta on its key first, so results
// always reflect vector order per key.
//
//flit:hotpath
func (c *combiner) execSlot(sl *cslot) {
	for j := 0; j < sl.n; j++ {
		op := &sl.ops[j]
		switch op.kind {
		case OpAdd:
			if !c.noCoalesce {
				c.noteDelta(op.h, op.val)
				sl.res[j] = Result{}
				continue
			}
			v, ok := c.ht.Add(op.h, op.val)
			sl.res[j] = Result{Val: v, Ok: ok}
		case OpGet:
			c.settleDelta(op.h)
			v, ok := c.ht.Get(op.h)
			sl.res[j] = Result{Val: v, Ok: ok}
		case OpPut:
			c.settleDelta(op.h)
			sl.res[j] = Result{Ok: c.ht.Put(op.h, op.val&ValueMask)}
		case OpDelete:
			c.settleDelta(op.h)
			sl.res[j] = Result{Ok: c.ht.Delete(op.h)}
		case OpContains:
			c.settleDelta(op.h)
			sl.res[j] = Result{Ok: c.ht.Contains(op.h)}
		}
	}
}

// noteDelta folds an OpAdd into the window's pending net deltas.
//
//flit:hotpath
func (c *combiner) noteDelta(h, delta uint64) {
	if old, ok := c.pending[h]; ok {
		c.pending[h] = old + delta
		return
	}
	c.pending[h] = delta
	c.dkeys = append(c.dkeys, h)
}

// settleDelta applies the pending net delta on h, if any, before a
// non-Add operation on h observes the table. Required for correctness,
// not just freshness: e.g. a Delete after a pending Add on an absent key
// must find the key present.
//
//flit:hotpath
func (c *combiner) settleDelta(h uint64) {
	d, ok := c.pending[h]
	if !ok {
		return
	}
	delete(c.pending, h)
	c.ht.Add(h, d)
}

// flushDeltas commits the window's surviving net deltas, one store per
// key. A net-zero delta on an already-present key needs no write at all
// — the VSA win for self-cancelling traffic — but on an absent key even
// net zero must insert (Add's insert-if-absent semantics are part of
// every announced op's contract).
//
//flit:hotpath
func (c *combiner) flushDeltas() {
	if len(c.dkeys) == 0 {
		return
	}
	for _, h := range c.dkeys {
		d, ok := c.pending[h]
		if !ok {
			continue // settled mid-window by a same-key operation
		}
		delete(c.pending, h)
		if d == 0 && c.ht.Contains(h) {
			continue
		}
		c.ht.Add(h, d)
	}
	c.dkeys = c.dkeys[:0]
}
