package store

import (
	"flit/internal/core"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// BatchSession is a per-goroutine store handle executing under the
// group-commit batch skeleton (core.Deferred): operations apply and
// flush immediately but their trailing persistence — the fence, and
// under FliT the untagging — is held until Commit, which issues one
// fence for the whole batch via the thread's coalescing write-back
// queue. The contract is the server's ack rule: results of operations
// executed since the last Commit MUST NOT be exposed (acknowledged,
// returned to a client, recorded as completed) until Commit returns.
//
// Reads are safe to expose early in principle — but only Commit orders
// the flush obligations their traversals picked up, so the uniform rule
// stays: expose nothing before Commit.
//
// Like Session, a BatchSession is not safe for concurrent use; create
// one per goroutine. Concurrent BatchSessions (and plain Sessions) on
// one store compose: in-flight deferred stores stay tagged, so other
// sessions' p-loads carry their flush obligation exactly as for any
// pending p-store.
type BatchSession struct {
	st      *Store
	t       *pmem.Thread
	ar      *pheap.Arena
	d       *core.Deferred
	shards  []*hashtable.Thread
	pending int
}

// NewBatchSession registers a new per-goroutine group-commit session.
// Every policy is supported; policies with nothing to defer (no-persist)
// degrade to plain execution with a no-op Commit.
func (s *Store) NewBatchSession() *BatchSession {
	t := s.mem.RegisterThread()
	ar := s.heap.NewArena()
	d := core.NewDeferred(s.policy)
	hts := make([]*hashtable.Thread, len(s.shards))
	for i, sh := range s.shards {
		hts[i] = sh.NewThreadWithPolicy(t, ar, d)
	}
	return &BatchSession{st: s, t: t, ar: ar, d: d, shards: hts}
}

// Thread exposes the session's pmem thread (stats, crash injection).
func (s *BatchSession) Thread() *pmem.Thread { return s.t }

// Pending reports the operations executed since the last Commit.
func (s *BatchSession) Pending() int { return s.pending }

// Commit is the group commit: one fence persists every operation
// executed since the previous Commit (each distinct dirty line drained
// exactly once), then the batch's deferred flit-tags are released. It
// returns the number of cache lines drained. Only after Commit may the
// batch's results be exposed.
func (s *BatchSession) Commit() int {
	s.pending = 0
	return s.d.Flush(s.t)
}

// Get returns the value stored under key, if present.
func (s *BatchSession) Get(key string) (uint64, bool) {
	s.pending++
	h := HashKey(key)
	return s.shards[s.st.shardOf(h)].Get(h)
}

// Put stores key→val (masked to ValueMask), reporting whether the key
// was newly inserted.
func (s *BatchSession) Put(key string, val uint64) bool {
	s.pending++
	h := HashKey(key)
	return s.shards[s.st.shardOf(h)].Put(h, val&ValueMask)
}

// Delete removes key, reporting whether it was present.
func (s *BatchSession) Delete(key string) bool {
	s.pending++
	h := HashKey(key)
	return s.shards[s.st.shardOf(h)].Delete(h)
}

// Contains reports whether key is present.
func (s *BatchSession) Contains(key string) bool {
	s.pending++
	h := HashKey(key)
	return s.shards[s.st.shardOf(h)].Contains(h)
}

// GetBytes, PutBytes, DeleteBytes and ContainsBytes are the byte-slice
// spellings (see Session), for op loops that reuse one key buffer.

// GetBytes returns the value stored under key, if present.
func (s *BatchSession) GetBytes(key []byte) (uint64, bool) {
	s.pending++
	h := HashKeyBytes(key)
	return s.shards[s.st.shardOf(h)].Get(h)
}

// PutBytes stores key→val (masked to ValueMask), reporting whether the
// key was newly inserted.
func (s *BatchSession) PutBytes(key []byte, val uint64) bool {
	s.pending++
	h := HashKeyBytes(key)
	return s.shards[s.st.shardOf(h)].Put(h, val&ValueMask)
}

// DeleteBytes removes key, reporting whether it was present.
func (s *BatchSession) DeleteBytes(key []byte) bool {
	s.pending++
	h := HashKeyBytes(key)
	return s.shards[s.st.shardOf(h)].Delete(h)
}

// ContainsBytes reports whether key is present.
func (s *BatchSession) ContainsBytes(key []byte) bool {
	s.pending++
	h := HashKeyBytes(key)
	return s.shards[s.st.shardOf(h)].Contains(h)
}

// ShardOf returns the shard index serving key — the grouping key the
// network server uses to drain a connection's pipeline into per-shard
// batches.
func (s *Store) ShardOf(key []byte) int { return s.shardOf(HashKeyBytes(key)) }
