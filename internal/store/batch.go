package store

import (
	"flit/internal/pmem"
)

// BatchSession is the legacy per-goroutine group-commit handle (see the
// Batched session mode for the semantics: operations apply and flush
// immediately, the fence and untagging are held until Commit, and
// results MUST NOT be exposed before Commit returns).
//
// Deprecated: use Open[string](s, Batched) or Open[[]byte](s, Batched) —
// one generic session replaces the Get/GetBytes duplication.
// BatchSession is kept so external embedders compile unchanged; no
// in-repo caller remains.
type BatchSession struct{ c *sessionCore }

// NewBatchSession registers a new per-goroutine group-commit session.
// Every policy is supported; policies with nothing to defer (no-persist)
// degrade to plain execution with a no-op Commit.
//
// Deprecated: use Open[string](s, Batched) or Open[[]byte](s, Batched).
func (s *Store) NewBatchSession() *BatchSession {
	return &BatchSession{c: newSessionCore(s, Batched)}
}

// Thread exposes the session's pmem thread (stats, crash injection).
func (s *BatchSession) Thread() *pmem.Thread { return s.c.t }

// Pending reports the operations executed since the last Commit.
func (s *BatchSession) Pending() int { return s.c.pending }

// Commit is the group commit: one fence persists every operation
// executed since the previous Commit (each distinct dirty line drained
// exactly once), then the batch's deferred flit-tags are released. It
// returns the number of cache lines drained. Only after Commit may the
// batch's results be exposed.
func (s *BatchSession) Commit() int { return s.c.commit() }

// Get returns the value stored under key, if present.
func (s *BatchSession) Get(key string) (uint64, bool) {
	r := s.c.do1(OpGet, hashKey(key), 0)
	return r.Val, r.Ok
}

// Put stores key→val (masked to ValueMask), reporting whether the key
// was newly inserted.
func (s *BatchSession) Put(key string, val uint64) bool {
	return s.c.do1(OpPut, hashKey(key), val).Ok
}

// Delete removes key, reporting whether it was present.
func (s *BatchSession) Delete(key string) bool {
	return s.c.do1(OpDelete, hashKey(key), 0).Ok
}

// Contains reports whether key is present.
func (s *BatchSession) Contains(key string) bool {
	return s.c.do1(OpContains, hashKey(key), 0).Ok
}

// GetBytes returns the value stored under key, if present.
func (s *BatchSession) GetBytes(key []byte) (uint64, bool) {
	r := s.c.do1(OpGet, hashKey(key), 0)
	return r.Val, r.Ok
}

// PutBytes stores key→val (masked to ValueMask), reporting whether the
// key was newly inserted.
func (s *BatchSession) PutBytes(key []byte, val uint64) bool {
	return s.c.do1(OpPut, hashKey(key), val).Ok
}

// DeleteBytes removes key, reporting whether it was present.
func (s *BatchSession) DeleteBytes(key []byte) bool {
	return s.c.do1(OpDelete, hashKey(key), 0).Ok
}

// ContainsBytes reports whether key is present.
func (s *BatchSession) ContainsBytes(key []byte) bool {
	return s.c.do1(OpContains, hashKey(key), 0).Ok
}

// ShardOf returns the shard index serving key — the grouping key the
// network server uses to drain a connection's pipeline into per-shard
// batches.
func (s *Store) ShardOf(key []byte) int { return s.shardOf(HashKeyBytes(key)) }
