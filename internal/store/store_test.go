package store

import (
	"fmt"
	"math/rand"
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func testOptions(shards int, policy string) Options {
	return Options{
		Shards:       shards,
		ExpectedKeys: 1 << 12,
		Policy:       policy,
		HTBytes:      1 << 14,
	}
}

func mustNew(t *testing.T, o Options) *Store {
	t.Helper()
	st, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHashKeyStaysInWindow(t *testing.T) {
	for i := 0; i < 10_000; i++ {
		h := HashKey(fmt.Sprintf("key-%d", i))
		if h >= dstruct.KeyMax {
			t.Fatalf("HashKey escaped the 48-bit window: %#x", h)
		}
	}
	if HashKey("alpha") != HashKey("alpha") {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("alpha") == HashKey("beta") {
		t.Fatal("suspicious collision on trivial keys")
	}
}

func TestHashKeyBytesMatchesString(t *testing.T) {
	for _, k := range []string{"", "a", "alpha", "user0000000000000042", "key-9999"} {
		if HashKeyBytes([]byte(k)) != HashKey(k) {
			t.Fatalf("HashKeyBytes(%q) != HashKey(%q)", k, k)
		}
	}
}

// TestByteSessionMatchesString: byte-keyed and string-keyed sessions
// hit the same hashed keyspace.
func TestByteSessionMatchesString(t *testing.T) {
	st := mustNew(t, Options{Shards: 4, ExpectedKeys: 1 << 10})
	bs := Open[[]byte](st, Direct)
	ss := Open[string](st, Direct)
	if !bs.Put([]byte("k1"), 7) {
		t.Fatal("byte Put of a fresh key reported overwrite")
	}
	if v, ok := ss.Get("k1"); !ok || v != 7 {
		t.Fatalf("string Get after byte Put = (%d,%v), want (7,true)", v, ok)
	}
	ss.Put("k2", 9)
	if v, ok := bs.Get([]byte("k2")); !ok || v != 9 {
		t.Fatalf("byte Get after string Put = (%d,%v), want (9,true)", v, ok)
	}
	if !bs.Contains([]byte("k1")) || bs.Contains([]byte("nope")) {
		t.Fatal("byte Contains disagrees with contents")
	}
	if !bs.Delete([]byte("k1")) || ss.Contains("k1") {
		t.Fatal("byte Delete did not remove the key")
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, policy := range []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyLAP} {
		for _, shards := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy, shards), func(t *testing.T) {
				st := mustNew(t, testOptions(shards, policy))
				sess := Open[string](st, Direct)
				model := make(map[string]uint64)
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 3000; i++ {
					key := fmt.Sprintf("user%04d", rng.Intn(400))
					switch rng.Intn(4) {
					case 0, 1:
						v := uint64(i + 1)
						_, in := model[key]
						if inserted := sess.Put(key, v); inserted != !in {
							t.Fatalf("op %d: Put(%s) inserted=%v, model present=%v", i, key, inserted, in)
						}
						model[key] = v
					case 2:
						_, in := model[key]
						if got := sess.Delete(key); got != in {
							t.Fatalf("op %d: Delete(%s) = %v, model %v", i, key, got, in)
						}
						delete(model, key)
					default:
						v, ok := sess.Get(key)
						mv, in := model[key]
						if ok != in || (ok && v != mv) {
							t.Fatalf("op %d: Get(%s) = (%d,%v), model (%d,%v)", i, key, v, ok, mv, in)
						}
					}
				}
				snap := st.Snapshot()
				if len(snap) != len(model) {
					t.Fatalf("snapshot size %d, model %d", len(snap), len(model))
				}
				for k, v := range model {
					if snap[HashKey(k)] != v {
						t.Fatalf("snapshot[%s] = %d, want %d", k, snap[HashKey(k)], v)
					}
				}
			})
		}
	}
}

func TestPutOverwritesDurably(t *testing.T) {
	st := mustNew(t, testOptions(4, core.PolicyHT))
	sess := Open[string](st, Direct)
	if !sess.Put("k", 1) {
		t.Fatal("first Put should insert")
	}
	if sess.Put("k", 2) {
		t.Fatal("second Put should overwrite, not insert")
	}
	if v, ok := sess.Get("k"); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v), want (2,true)", v, ok)
	}

	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(pmem.DropUnfenced, 5)
	st2, _, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), wm, st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Open[string](st2, Direct).Get("k"); !ok || v != 2 {
		t.Fatalf("recovered Get = (%d,%v), want (2,true): overwrite was not durable", v, ok)
	}
}

// TestUpsertValueDurability crashes Put's in-place overwrite at every
// instruction boundary: a crashed overwrite must recover to the old or
// the new value (never torn or absent), and a completed overwrite must
// recover to the new value — the guarantee hist-based checkers cannot
// see, since they track membership only.
func TestUpsertValueDurability(t *testing.T) {
	for _, policy := range []string{core.PolicyHT, core.PolicyPlain} {
		for _, mode := range dstruct.Modes {
			t.Run(fmt.Sprintf("%s/%s", policy, mode), func(t *testing.T) {
				const v1, v2 = 111, 222
				for countdown := int64(1); countdown < 40; countdown++ {
					o := testOptions(4, policy)
					o.Mode = mode
					st := mustNew(t, o)
					sess := Open[string](st, Direct)
					sess.Put("k", v1)

					sess.Thread().SetCrashAfter(countdown)
					completed := !pmem.RunToCrash(func() { sess.Put("k", v2) })
					sess.Thread().SetCrashAfter(-1)

					wm := st.Heap().Watermark()
					img := st.Mem().CrashImage(pmem.DropUnfenced, countdown)
					st2, _, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), wm, o)
					if err != nil {
						t.Fatal(err)
					}
					got, ok := Open[string](st2, Direct).Get("k")
					if !ok {
						t.Fatalf("countdown %d: key vanished across the overwrite crash", countdown)
					}
					if completed && got != v2 {
						t.Fatalf("countdown %d: completed overwrite recovered stale value %d", countdown, got)
					}
					if got != v1 && got != v2 {
						t.Fatalf("countdown %d: torn value %d (want %d or %d)", countdown, got, v1, v2)
					}
				}
			})
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	st := mustNew(t, testOptions(8, core.PolicyHT))
	const workers = 4
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			sess := Open[string](st, Direct)
			ins := 0
			rng := rand.New(rand.NewSource(int64(w + 100)))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("w%d-%d", w, rng.Intn(500))
				switch rng.Intn(3) {
				case 0:
					if sess.Put(key, uint64(i)) {
						ins++
					}
				case 1:
					if sess.Delete(key) {
						ins--
					}
				default:
					sess.Get(key)
				}
			}
			done <- ins
		}(w)
	}
	want := 0
	for w := 0; w < workers; w++ {
		want += <-done
	}
	if got := len(st.Snapshot()); got != want {
		t.Fatalf("store holds %d keys, want %d", got, want)
	}
}

func TestParallelRecovery(t *testing.T) {
	for _, policy := range []string{core.PolicyHT, core.PolicyPlain} {
		t.Run(policy, func(t *testing.T) {
			o := testOptions(8, policy)
			st := mustNew(t, o)
			sess := Open[string](st, Direct)
			model := make(map[uint64]uint64)
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("user%05d", i)
				sess.Put(key, uint64(i))
				model[HashKey(key)] = uint64(i)
			}
			for i := 0; i < 2000; i += 3 {
				key := fmt.Sprintf("user%05d", i)
				sess.Delete(key)
				delete(model, HashKey(key))
			}

			wm := st.Heap().Watermark()
			img := st.Mem().CrashImage(pmem.DropUnfenced, 42)
			st2, rs, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), wm, o)
			if err != nil {
				t.Fatal(err)
			}
			if st2.NumShards() != 8 || len(rs.Shards) != 8 {
				t.Fatalf("recovered %d shards, stats for %d, want 8", st2.NumShards(), len(rs.Shards))
			}
			if rs.Keys != len(model) {
				t.Fatalf("RecoveryStats.Keys = %d, want %d", rs.Keys, len(model))
			}
			snap := st2.Snapshot()
			if len(snap) != len(model) {
				t.Fatalf("recovered %d keys, want %d", len(snap), len(model))
			}
			for k, v := range model {
				if snap[k] != v {
					t.Fatalf("recovered[%d] = %d, want %d", k, snap[k], v)
				}
			}
			// The recovered store must be fully operational.
			s2 := Open[string](st2, Direct)
			if !s2.Put("post-recovery", 7) || !s2.Contains("post-recovery") || !s2.Delete("post-recovery") {
				t.Fatal("recovered store not operational")
			}
		})
	}
}

func TestRecoverWithoutSuperblockFails(t *testing.T) {
	mem := pmem.New(pmem.DefaultConfig(1 << 16))
	if _, _, err := Recover(mem, 0, Options{Policy: core.PolicyHT}); err == nil {
		t.Fatal("Recover accepted memory with no superblock")
	}
}

func TestSuperblockSurvivesImmediateCrash(t *testing.T) {
	o := testOptions(4, core.PolicyHT)
	st := mustNew(t, o)
	// Crash before any operation: the superblock and empty shards must
	// recover to an empty, operational store.
	wm := st.Heap().Watermark()
	img := st.Mem().CrashImage(pmem.DropUnfenced, 9)
	st2, rs, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), wm, o)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Keys != 0 {
		t.Fatalf("empty store recovered %d keys", rs.Keys)
	}
	if !Open[string](st2, Direct).Put("a", 1) {
		t.Fatal("recovered empty store rejected an insert")
	}
}

func TestSessionsShareOneThread(t *testing.T) {
	st := mustNew(t, testOptions(8, core.PolicyHT))
	before := len(st.Mem().Threads())
	sess := Open[string](st, Direct)
	if got := len(st.Mem().Threads()) - before; got != 1 {
		t.Fatalf("one session registered %d pmem threads, want 1 (shared across shards)", got)
	}
	// Ops on different shards land on the same thread's stats.
	for i := 0; i < 64; i++ {
		sess.Put(fmt.Sprintf("k%d", i), uint64(i))
	}
	if sess.Thread().Stats.Stores == 0 && sess.Thread().Stats.RMWs == 0 {
		t.Fatal("session thread recorded no instructions")
	}
}

func TestRootRegionScalesWithShards(t *testing.T) {
	st := mustNew(t, testOptions(32, core.PolicyHT))
	if st.Heap().NumRootSlots() != 33 {
		t.Fatalf("heap has %d root slots, want 33", st.Heap().NumRootSlots())
	}
	// Root addresses must not collide with the default-layout heap base.
	h := st.Heap()
	seen := map[pmem.Addr]bool{}
	for i := 0; i < 33; i++ {
		a := h.Root(i)
		if seen[a] {
			t.Fatalf("duplicate root address %d", a)
		}
		seen[a] = true
	}
	_ = pheap.NumRoots // the default layout still exists for everyone else
}
