package store

import (
	"fmt"
	"sync"
	"testing"

	"flit/internal/pmem"
)

// TestSplitLiveUnderTraffic grows a store 4→6 shards while concurrent
// Direct sessions keep reading and writing. After the migration drains,
// every key must be present exactly once with its latest value, routed
// through the post-split layout.
func TestSplitLiveUnderTraffic(t *testing.T) {
	st := newTestStore(t, Options{Shards: 4, ExpectedKeys: 1 << 11})
	const keys = 512

	seed := Open[string](st, Direct)
	for k := 0; k < keys; k++ {
		seed.Put(fmt.Sprintf("split-%d", k), uint64(k))
	}
	seed.Close()

	const workers = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := Open[string](st, Direct)
			defer sess.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (w*131 + i) % keys
				key := fmt.Sprintf("split-%d", k)
				if i%3 == 0 {
					sess.Put(key, uint64(k)) // rewrite the canonical value
				} else if v, ok := sess.Get(key); ok && v != uint64(k) {
					panic(fmt.Sprintf("mid-split read of %s = %d, want %d", key, v, k))
				}
			}
		}(w)
	}

	if err := st.Split(6); err != nil {
		t.Fatal(err)
	}
	if !st.WaitSplit() {
		t.Fatal("migration crashed without a crash armed")
	}
	close(stop)
	wg.Wait()

	if n := st.NumShards(); n != 6 {
		t.Fatalf("NumShards after split = %d, want 6", n)
	}
	if ss := st.SplitStat(); ss.Active {
		t.Fatalf("SplitStat still active after WaitSplit: %+v", ss)
	}
	snap := st.Snapshot()
	if len(snap) != keys {
		t.Fatalf("post-split snapshot has %d keys, want %d", len(snap), keys)
	}
	check := Open[string](st, Direct)
	defer check.Close()
	for k := 0; k < keys; k++ {
		if v, ok := check.Get(fmt.Sprintf("split-%d", k)); !ok || v != uint64(k) {
			t.Fatalf("post-split Get(split-%d) = (%d,%v), want (%d,true)", k, v, ok, k)
		}
	}
}

// TestSplitThenRecover: a crash image taken after a completed split must
// recover the post-split geometry with the full keyspace.
func TestSplitThenRecover(t *testing.T) {
	st := newTestStore(t, Options{Shards: 4, ExpectedKeys: 1 << 11})
	const keys = 300
	sess := Open[string](st, Direct)
	for k := 0; k < keys; k++ {
		sess.Put(fmt.Sprintf("sr-%d", k), uint64(k)*3)
	}
	if err := st.Split(6); err != nil {
		t.Fatal(err)
	}
	if !st.WaitSplit() {
		t.Fatal("migration crashed")
	}
	sess.Close()

	img := st.Mem().CrashImage(pmem.DropUnfenced, 1)
	st2, rstats, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), st.Heap().Watermark(), st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if n := st2.NumShards(); n != 6 {
		t.Fatalf("recovered NumShards = %d, want 6", n)
	}
	if rstats.Keys != keys {
		t.Fatalf("recovery found %d keys, want %d", rstats.Keys, keys)
	}
	check := Open[string](st2, Direct)
	defer check.Close()
	for k := 0; k < keys; k++ {
		if v, ok := check.Get(fmt.Sprintf("sr-%d", k)); !ok || v != uint64(k)*3 {
			t.Fatalf("recovered Get(sr-%d) = (%d,%v), want (%d,true)", k, v, ok, k*3)
		}
	}
}

// TestSplitCrashMidMigrationRecovers: kill the migrator at an arbitrary
// point mid-migration (a global crash arm catches it between two of its
// persist instructions), then recover from the crash image: the split
// must complete during recovery with a complete, duplicate-free
// keyspace. The exhaustive every-boundary version of this test is the
// flitcrash store-split battery (see EXPERIMENTS.md).
func TestSplitCrashMidMigrationRecovers(t *testing.T) {
	st := newTestStore(t, Options{Shards: 4, ExpectedKeys: 1 << 11})
	const keys = 300
	sess := Open[string](st, Direct)
	for k := 0; k < keys; k++ {
		sess.Put(fmt.Sprintf("mc-%d", k), uint64(k)+7)
	}
	sess.Close()

	if err := st.Split(6); err != nil {
		t.Fatal(err)
	}
	st.Mem().ArmCrash() // every thread, including the migrator, dies at its next instruction
	if st.WaitSplit() {
		t.Fatal("migration completed despite an armed crash")
	}
	if !st.SplitStat().Crashed {
		t.Fatal("SplitStat does not report the crashed migration")
	}
	img := st.Mem().CrashImage(pmem.DropUnfenced, 42)
	st.Mem().DisarmCrash()

	st2, rstats, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), st.Heap().Watermark(), st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if n := st2.NumShards(); n != 6 {
		t.Fatalf("recovered NumShards = %d, want 6 (split must complete at recovery)", n)
	}
	if rstats.Keys != keys {
		t.Fatalf("recovery found %d keys, want %d (lost or duplicated mid-split)", rstats.Keys, keys)
	}
	check := Open[string](st2, Direct)
	defer check.Close()
	for k := 0; k < keys; k++ {
		if v, ok := check.Get(fmt.Sprintf("mc-%d", k)); !ok || v != uint64(k)+7 {
			t.Fatalf("recovered Get(mc-%d) = (%d,%v), want (%d,true)", k, v, ok, k+7)
		}
	}
}

// TestSplitErrors covers the refusal cases: shrinking or no-op targets,
// targets beyond MaxShards, splitting while a migration is in flight,
// and splitting a store that has combined sessions.
func TestSplitErrors(t *testing.T) {
	st := newTestStore(t, Options{Shards: 4})
	if err := st.Split(4); err == nil {
		t.Fatal("Split(4) on a 4-shard store did not error")
	}
	if err := st.Split(2); err == nil {
		t.Fatal("shrinking Split did not error")
	}
	if err := st.Split(MaxShards + 1); err == nil {
		t.Fatal("Split beyond MaxShards did not error")
	}

	sess := Open[string](st, Direct)
	for k := 0; k < 2000; k++ {
		sess.Put(fmt.Sprintf("e-%d", k), uint64(k))
	}
	if err := st.Split(6); err != nil {
		t.Fatal(err)
	}
	if err := st.Split(8); err == nil {
		// The first migration may already have drained on a fast machine;
		// only a concurrent second split is an error.
		if st.SplitStat().Active {
			t.Fatal("concurrent Split did not error")
		}
	}
	st.WaitSplit()
	sess.Close()

	st2 := newTestStore(t, Options{Shards: 4})
	comb := Open[string](st2, Combined)
	if err := st2.Split(6); err == nil {
		t.Fatal("Split with combined sessions did not error")
	}
	comb.Close()
}

// TestSplitChainsAcrossGenerations: a second split after the first has
// drained must work, including re-anchoring the shards the first split
// created (their anchors move to the new directory).
func TestSplitChainsAcrossGenerations(t *testing.T) {
	st := newTestStore(t, Options{Shards: 2, ExpectedKeys: 1 << 10})
	const keys = 200
	sess := Open[string](st, Direct)
	for k := 0; k < keys; k++ {
		sess.Put(fmt.Sprintf("g-%d", k), uint64(k))
	}
	for _, target := range []int{3, 5} {
		if err := st.Split(target); err != nil {
			t.Fatalf("Split(%d): %v", target, err)
		}
		if !st.WaitSplit() {
			t.Fatalf("Split(%d) migration crashed", target)
		}
	}
	sess.Close()
	if n := st.NumShards(); n != 5 {
		t.Fatalf("NumShards after chained splits = %d, want 5", n)
	}

	// Both generations of grown shards must survive a recovery.
	img := st.Mem().CrashImage(pmem.DropUnfenced, 7)
	st2, rstats, err := Recover(pmem.NewFromImage(img, st.Mem().Config()), st.Heap().Watermark(), st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumShards() != 5 || rstats.Keys != keys {
		t.Fatalf("recovered shards=%d keys=%d, want 5/%d", st2.NumShards(), rstats.Keys, keys)
	}
	check := Open[string](st2, Direct)
	defer check.Close()
	for k := 0; k < keys; k++ {
		if v, ok := check.Get(fmt.Sprintf("g-%d", k)); !ok || v != uint64(k) {
			t.Fatalf("chained-split recovery lost g-%d: (%d,%v)", k, v, ok)
		}
	}
}
