package store_test

import (
	"fmt"
	"testing"

	"flit/internal/core"
	"flit/internal/pmem"
	"flit/internal/store"
)

// TestRecoverWithStaleWatermark is the deterministic regression test
// for the gather/rebuild interleave bug: recovering from an image that
// was itself produced by a recovery, with the pre-crash watermark (the
// embedding process died before it could carry the newer one forward).
// The second recovery's rebuild then allocates exactly over the first
// recovery's chains; with gather and rebuild interleaved per bucket,
// rebuilding bucket 0 clobbered the not-yet-gathered chains of every
// later bucket and silently dropped their keys. Two-phase recovery
// (gather everything, then rebuild) makes the stale watermark safe.
//
// One shard forces the intra-table interleave (the multi-shard version
// of the same race is schedule-dependent; this one is not).
func TestRecoverWithStaleWatermark(t *testing.T) {
	st, err := store.New(store.Options{
		Shards: 1, ExpectedKeys: 1 << 10, Buckets: 16,
		Policy: core.PolicyHT, HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const records = 500
	sess := store.Open[string](st, store.Direct)
	for i := 0; i < records; i++ {
		sess.Put(fmt.Sprintf("wm-key-%d", i), uint64(i))
	}
	staleWM := st.Heap().Watermark()

	// First crash + recovery: the rebuilt chains land above staleWM.
	img1 := st.Mem().CrashImage(pmem.DropUnfenced, 1)
	st1, _, err := store.Recover(pmem.NewFromImage(img1, st.Mem().Config()), staleWM, st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	want := st1.Snapshot()
	if len(want) != records {
		t.Fatalf("first recovery kept %d keys, want %d", len(want), records)
	}

	// Crash again before anything new happens, and recover with the
	// STALE watermark — the state a process that died mid-recovery
	// would resume from.
	img2 := st1.Mem().CrashImage(pmem.DropUnfenced, 2)
	st2, rstats, err := store.Recover(pmem.NewFromImage(img2, st1.Mem().Config()), staleWM, st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Keys != records {
		t.Fatalf("stale-watermark recovery reported %d keys, want %d", rstats.Keys, records)
	}
	got := st2.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("stale-watermark recovery kept %d keys, want %d (rebuild clobbered ungathered chains)", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %#x = %d after stale-watermark recovery, want %d", k, got[k], v)
		}
	}
}
