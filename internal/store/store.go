// Package store is FliT-Store: a sharded durable key-value service built
// on the repository's persistent stack. It is the service layer the
// ROADMAP's production-scale goal needs above the single-structure
// harness: N independent shards, each a durable lock-free hash table
// (internal/dstruct/hashtable) anchored at its own persistent root slot,
// addressed by string keys hashed into the instrumented payload keyspace.
//
// Durability is inherited wholesale from the FliT P-V Interface: every
// shard runs under the configured core.Policy and durability mode, so the
// store is durably linearizable whenever its policy is (Theorem 3.1), and
// the crash tester can validate whole-store histories with the
// internal/hist checker. Post-crash recovery is shard-parallel — the
// payoff of sharding beyond concurrency: rebuild time divides by the
// shard count.
//
// Layout: root slot 0 points at a persisted superblock (magic, shard
// count, buckets per shard) so recovery is self-describing; shard i is
// anchored at root slot 1+i. As everywhere in this reproduction, the
// allocator watermark is carried across the crash by the embedding
// process, mirroring libvmmalloc's volatile metadata.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

const (
	// superRoot is the root slot holding the superblock pointer; shard i
	// lives at root slot 1+i.
	superRoot = 0
	// Superblock field indices. fMagic..fBuckets are the v1 layout;
	// fBase..fDirPtr extend it for online shard growth (v2, Magic2):
	// fShards is the serving shard count, fBase the count anchored in the
	// heap root region (fixed at New — root regions cannot grow), and a
	// split in progress is recorded as fNewShards > fShards with fDirPtr
	// pointing at the shard directory, whose slot j anchors grown shard
	// base+j the way a root slot anchors shard i < base.
	fMagic       = 0
	fShards      = 1
	fBuckets     = 2
	fBase        = 3
	fNewShards   = 4
	fDirPtr      = 5
	superFields  = 3
	superFields2 = 6
	// Magic identifies a v1 FliT-Store superblock (fixed shard count). It
	// fits the 48-bit key window so every policy can persist it untouched.
	Magic = uint64(0xF117_5708_E001)
	// Magic2 identifies a v2 superblock (online shard growth).
	Magic2 = uint64(0xF117_5708_E002)
	// MaxShards bounds the shard count.
	MaxShards = 1024
)

// KeyMask is the hashed-key window: HashKey maps strings into
// [0, dstruct.KeyMax).
const KeyMask = dstruct.KeyMax - 1

// ValueMask bounds stored values to the instrumented payload (60 bits);
// Put masks values so policy and structure metadata bits stay free.
const ValueMask = core.PayloadMask

// Options configures a store. Zero values pick defaults.
type Options struct {
	// Shards is the number of independent shard hash tables (default 8).
	Shards int
	// Buckets per shard; default ExpectedKeys/(2*Shards) as in the
	// paper's half-full steady state, floored at 16.
	Buckets int
	// ExpectedKeys sizes memory and buckets (default 1<<16).
	ExpectedKeys int
	// Policy is a core policy identifier (default "flit-ht").
	Policy string
	// HTBytes sizes hashed flit-counter tables (default 1MB).
	HTBytes int
	// Mode is the durability method (default Automatic).
	Mode dstruct.Mode
	// MemWords overrides the derived simulated-memory size.
	MemWords int
	// Invalidate models the invalidating clwb of Cascade Lake.
	Invalidate bool
	// VirtualClock charges latency costs to per-thread virtual-time
	// counters instead of spin loops (see pmem.Config.VirtualClock):
	// same modeled-cost ordering, no wall-clock burn. Crash tests and
	// smoke matrices — anything that never reads a latency number — run
	// several times faster under it.
	VirtualClock bool
	// CombineWindow is the per-shard flat combiner's target operation
	// count per combined window (default 32): the combiner lingers,
	// re-sweeping the announcement slots, until it has collected this
	// many operations or the shard goes idle, then commits the window
	// under one fence. Larger windows amortize the fence further at the
	// cost of announcement latency.
	CombineWindow int
	// CombineNoCoalesce disables VSA-style net-delta coalescing in the
	// combiner: every OpAdd executes individually (and returns its real
	// result). The bench matrix uses it as the honest baseline the
	// coalesced mix-G cells are compared against.
	CombineNoCoalesce bool
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.ExpectedKeys == 0 {
		o.ExpectedKeys = 1 << 16
	}
	if o.Buckets == 0 {
		o.Buckets = o.ExpectedKeys / (2 * o.Shards)
		if o.Buckets < 16 {
			o.Buckets = 16
		}
	}
	// hashtable.New rounds bucket counts up to a power of two; round here
	// so the superblock, Opts() and reports describe the actual layout.
	o.Buckets = core.CeilPow2(o.Buckets)
	if o.Policy == "" {
		o.Policy = core.PolicyHT
	}
	if o.CombineWindow == 0 {
		o.CombineWindow = 32
	}
	return o
}

// memWords sizes the simulated memory for the configured key capacity:
// live nodes, allocation churn headroom, the shard bucket arrays and the
// root/superblock region.
func (o Options) memWords(stride int) int {
	nodes := (uint64(o.ExpectedKeys) + 400_000) * 3 * uint64(stride)
	tables := uint64(o.Shards) * uint64(1+o.Buckets) * uint64(stride)
	return int(nodes + tables + (1 << 17))
}

// Store is a sharded durable key-value store.
type Store struct {
	opts   Options
	mem    *pmem.Memory
	heap   *pheap.Heap
	policy core.Policy
	stride int

	// lay is the serving layout: the shard tables plus, while an online
	// split migrates, the migration descriptor (see split.go). Sessions
	// load it per operation; it is replaced atomically when a split
	// starts or completes.
	lay atomic.Pointer[layout]

	// baseShards is the shard count anchored in the heap root region,
	// fixed at New; shards grown later anchor in the persisted directory.
	baseShards int
	// sbAddr is the superblock's base address, for in-place field updates
	// (the split activation and completion words).
	sbAddr pmem.Addr
	// growMu serializes Split against combiner initialization: the flat
	// combiners capture the shard list at build time, so a store that
	// combines cannot grow and a store mid-split cannot start combining.
	growMu sync.Mutex

	// recovered holds the RecoveryStats of the rebuild that produced this
	// store, when it came from Recover rather than New — the observability
	// layer exposes it (flit_recovery_seconds per shard on /metrics).
	recovered *RecoveryStats

	// Flat-combining state (see combine.go), built lazily by the first
	// Combined session, under growMu (combiners capture the shard list, so
	// they wait out any in-flight split and block later ones). combCrashed
	// is the whole-process crash flag: a combiner or migrator whose crash
	// countdown fires sets it, and every session touching the store
	// thereafter dies with pmem.ErrCrashed.
	combiners   []*combiner
	combCrashed atomic.Bool
}

// New builds a fresh store: simulated memory, heap with one root per
// shard plus the superblock, the policy, and every shard table.
func New(opts Options) (*Store, error) {
	o := opts.withDefaults()
	if o.Shards < 1 || o.Shards > MaxShards {
		return nil, fmt.Errorf("store: shard count %d outside [1,%d]", o.Shards, MaxShards)
	}
	probe, err := core.NewPolicyByName(o.Policy, 1<<10, o.HTBytes)
	if err != nil {
		return nil, err
	}
	stride := dstruct.StrideFor(probe)
	words := o.MemWords
	if words == 0 {
		words = o.memWords(stride)
	}
	mcfg := pmem.DefaultConfig(words)
	mcfg.InvalidateOnPWB = o.Invalidate
	mcfg.VirtualClock = o.VirtualClock
	mem := pmem.New(mcfg)
	pol, err := core.NewPolicyByName(o.Policy, mem.Words(), o.HTBytes)
	if err != nil {
		return nil, err
	}
	st := &Store{
		opts:       o,
		mem:        mem,
		heap:       pheap.NewWithRoots(mem, o.Shards+1),
		policy:     pol,
		stride:     stride,
		baseShards: o.Shards,
	}
	st.writeSuperblock()
	tables := make([]*hashtable.Table, o.Shards)
	for i := range tables {
		tables[i] = hashtable.New(st.cfgFor(1+i), o.Buckets)
	}
	st.lay.Store(&layout{tables: tables})
	return st, nil
}

// writeSuperblock persists the store's self-description before any shard
// exists, so a crash at any later point still recovers a readable layout.
// It issues raw flushes rather than going through the policy: the
// superblock is format-time metadata (what a mkfs tool writes), and must
// survive even under the no-persist baseline policy — whose data losses
// the crash checker then observes against an intact layout.
//
//flit:rawpersist format-time metadata with its own store-PWB-fence discipline
func (s *Store) writeSuperblock() {
	cfg := s.cfgFor(superRoot)
	t := s.mem.RegisterThread()
	ar := s.heap.NewArena()
	sb := ar.Alloc(cfg.Words(superFields2))
	for f, v := range map[int]uint64{
		fMagic:     Magic2,
		fShards:    uint64(s.opts.Shards),
		fBuckets:   uint64(s.opts.Buckets),
		fBase:      uint64(s.opts.Shards),
		fNewShards: uint64(s.opts.Shards),
		fDirPtr:    0,
	} {
		a := cfg.Field(sb, f)
		t.Store(a, v)
		t.PWB(a)
	}
	// Fence the contents before the root points at them.
	t.PFence()
	root := s.heap.Root(superRoot)
	t.Store(root, uint64(sb))
	t.PWB(root)
	t.PFence()
	s.sbAddr = sb
	ar.Release()
	t.Release()
}

// sbField returns the address of superblock field f.
func (s *Store) sbField(f int) pmem.Addr {
	return s.sbAddr + pmem.Addr(f*s.stride)
}

// sbWrite updates one superblock field in place with a raw fenced store —
// format metadata, like writeSuperblock (it must survive even under the
// no-persist baseline policy).
//
//flit:rawpersist format-time metadata with its own store-PWB-fence discipline
func (s *Store) sbWrite(t *pmem.Thread, f int, v uint64) {
	a := s.sbField(f)
	t.Store(a, v)
	t.PWB(a)
	t.PFence()
}

func (s *Store) cfgFor(rootSlot int) dstruct.Config {
	return dstruct.Config{
		Heap: s.heap, Policy: s.policy, Mode: s.opts.Mode,
		RootSlot: rootSlot, Stride: s.stride,
	}
}

// cfgAt is cfgFor with an explicit anchor address instead of a root slot
// — how shards grown past the root region are addressed (their anchor
// word lives in the persisted shard directory).
func (s *Store) cfgAt(addr pmem.Addr) dstruct.Config {
	return dstruct.Config{
		Heap: s.heap, Policy: s.policy, Mode: s.opts.Mode,
		RootAddr: addr, Stride: s.stride,
	}
}

// Opts returns the options the store was built with (defaults resolved).
func (s *Store) Opts() Options { return s.opts }

// Mem returns the underlying simulated memory.
func (s *Store) Mem() *pmem.Memory { return s.mem }

// Heap returns the persistent heap (its Watermark must be carried across
// a simulated crash).
func (s *Store) Heap() *pheap.Heap { return s.heap }

// Policy returns the persistence policy instance.
func (s *Store) Policy() core.Policy { return s.policy }

// NumShards returns the serving shard count (the pre-split count while a
// migration is in flight; it jumps to the target count on completion).
func (s *Store) NumShards() int { return len(s.lay.Load().tables) }

// LastRecovery returns the stats of the shard-parallel rebuild that
// produced this store, or nil when the store was built fresh by New.
// The returned struct is owned by the store; callers must not mutate it.
func (s *Store) LastRecovery() *RecoveryStats { return s.recovered }

// HashKey maps an arbitrary string key into the 48-bit instrumented key
// space: FNV-1a followed by a 64-bit finalizer, masked to KeyMask. Two
// distinct strings collide with probability ~n²/2^49 — negligible at any
// workload size the simulation can hold — and the store treats the hash
// as the key, as fixed-width KV engines over hashed keyspaces do.
func HashKey(key string) uint64 { return hashKey(key) }

// HashKeyBytes is HashKey for a byte-slice key: identical hash, no
// string conversion, so hot op loops can reuse one key buffer.
func HashKeyBytes(key []byte) uint64 { return hashKey(key) }

func hashKey[K Key](key K) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & KeyMask
}

func (s *Store) shardOf(h uint64) int { return int(h % uint64(len(s.lay.Load().tables))) }

// Session is the legacy per-goroutine direct-mode handle: string and
// byte-slice method pairs over one execution context.
//
// Deprecated: use Open[string](s, Direct) or Open[[]byte](s, Direct) —
// one generic session replaces the Get/GetBytes duplication. Session is
// kept so external embedders compile unchanged; no in-repo caller
// remains.
type Session struct{ c *sessionCore }

// NewSession registers a new per-goroutine direct-mode session.
//
// Deprecated: use Open[string](s, Direct) or Open[[]byte](s, Direct).
func (s *Store) NewSession() *Session {
	return &Session{c: newSessionCore(s, Direct)}
}

// Thread exposes the session's pmem thread (stats, crash injection).
func (s *Session) Thread() *pmem.Thread { return s.c.t }

// Close releases the session's resources (see Sess.Close). Idempotent.
func (s *Session) Close() { s.c.close() }

// Get returns the value stored under key, if present.
func (s *Session) Get(key string) (uint64, bool) {
	r := s.c.do1(OpGet, hashKey(key), 0)
	return r.Val, r.Ok
}

// Put stores key→val (masked to ValueMask), inserting or durably
// overwriting in place; it reports whether the key was newly inserted.
func (s *Session) Put(key string, val uint64) bool {
	return s.c.do1(OpPut, hashKey(key), val).Ok
}

// Delete removes key; it reports whether the key was present.
func (s *Session) Delete(key string) bool {
	return s.c.do1(OpDelete, hashKey(key), 0).Ok
}

// Contains reports whether key is present.
func (s *Session) Contains(key string) bool {
	return s.c.do1(OpContains, hashKey(key), 0).Ok
}

// GetBytes returns the value stored under key, if present.
func (s *Session) GetBytes(key []byte) (uint64, bool) {
	r := s.c.do1(OpGet, hashKey(key), 0)
	return r.Val, r.Ok
}

// PutBytes stores key→val (masked to ValueMask), reporting whether the
// key was newly inserted.
func (s *Session) PutBytes(key []byte, val uint64) bool {
	return s.c.do1(OpPut, hashKey(key), val).Ok
}

// DeleteBytes removes key, reporting whether it was present.
func (s *Session) DeleteBytes(key []byte) bool {
	return s.c.do1(OpDelete, hashKey(key), 0).Ok
}

// ContainsBytes reports whether key is present.
func (s *Session) ContainsBytes(key []byte) bool {
	return s.c.do1(OpContains, hashKey(key), 0).Ok
}

// Snapshot unions all shard snapshots, keyed by hashed key (test and
// checker helper).
//
// Concurrency contract: Snapshot is memory-safe against live sessions —
// every word it reads goes through the simulated memory's atomic
// volatile layer, so it never faults, tears a word, or trips the race
// detector (asserted by TestSnapshotConcurrentMemorySafety under
// -race). It is NOT linearizable against live sessions: the traversal
// reads each chain at a different instant, so a concurrent snapshot can
// mix states — observing a later operation's effect while missing an
// earlier one's on another key — and may double- or under-count keys
// moved by concurrent unlinks. Callers that need a consistent snapshot
// (the crash checkers, recovery-key counting, any before/after
// comparison) must quiesce first: every session's operations
// happens-before the Snapshot call (e.g. via WaitGroup join), as the
// crash harnesses do.
func (s *Store) Snapshot() map[uint64]uint64 {
	lay := s.lay.Load()
	out := make(map[uint64]uint64)
	for _, sh := range lay.tables {
		for k, v := range sh.Snapshot() {
			out[k] = v
		}
	}
	if m := lay.mig; m != nil {
		// Mid-split, a key being moved can exist in both its old shard
		// and its target: the target copy is authoritative (session Puts
		// upsert there, shadowing the stale old copy), so overlay it last.
		for _, sh := range m.dir {
			for k, v := range sh.Snapshot() {
				out[k] = v
			}
		}
	}
	return out
}

// RecoveryStats reports one post-crash rebuild.
type RecoveryStats struct {
	// Elapsed is the wall time of the shard-parallel rebuild.
	Elapsed time.Duration
	// Shards holds per-shard rebuild times; max(Shards) ≈ Elapsed when
	// enough cores are available, sum(Shards) is the serial cost avoided.
	Shards []time.Duration
	// Keys is the number of keys present after recovery.
	Keys int
}

// Recover rebuilds a store from a crash image already loaded into mem.
// The superblock (fixed root slot 0) self-describes shard count and
// buckets; opts supplies what is deliberately volatile — policy, mode,
// sizing hints — and must match the pre-crash configuration, as with any
// persistent layout. All shards recover in parallel, each on its own
// goroutine with its own pmem thread and arena.
//
// A crash mid-split (superblock fNewShards > fShards) recovers to the
// POST-split layout: every table — old shards and split targets alike —
// is gathered first (global barrier), then rebuilt in place with the keys
// the target shard count assigns it, preferring a target table's copy of
// a key over a stale old-shard copy (session Puts during migration upsert
// the target only, and the deletion order old-then-new means a key caught
// mid-delete survives nowhere it shouldn't). The rule is applied
// uniformly to every shard, so it needs no migration cursor and is
// idempotent: a crash during this recovery re-runs it from the same
// still-active superblock, and only the final single-word fShards flip —
// after every rebuild has fenced — marks the split complete.
func Recover(mem *pmem.Memory, watermark uint64, opts Options) (*Store, RecoveryStats, error) {
	o := opts.withDefaults()
	var rs RecoveryStats
	probe, err := core.NewPolicyByName(o.Policy, mem.Words(), o.HTBytes)
	if err != nil {
		return nil, rs, err
	}
	stride := dstruct.StrideFor(probe)
	// Probe the superblock before the root-region size is known: slot 0's
	// address does not depend on it.
	probeHeap := pheap.RecoverWithRoots(mem, watermark, 1)
	probeCfg := dstruct.Config{Heap: probeHeap, Policy: probe, Mode: o.Mode, RootSlot: superRoot, Stride: stride}
	sb := dstruct.Ptr(mem.VolatileWord(probeCfg.Root()))
	if sb == pmem.NilAddr {
		return nil, rs, fmt.Errorf("store: no superblock in recovered memory (root slot %d = %d)", superRoot, sb)
	}
	magic := mem.VolatileWord(probeCfg.Field(sb, fMagic))
	if magic != Magic && magic != Magic2 {
		return nil, rs, fmt.Errorf("store: no superblock in recovered memory (root slot %d = %d)", superRoot, sb)
	}
	shards := int(mem.VolatileWord(probeCfg.Field(sb, fShards)))
	buckets := int(mem.VolatileWord(probeCfg.Field(sb, fBuckets)))
	if shards < 1 || shards > MaxShards {
		return nil, rs, fmt.Errorf("store: superblock shard count %d outside [1,%d]", shards, MaxShards)
	}
	// v1 superblocks predate shard growth: base == serving == target.
	base, newShards := shards, shards
	var dir pmem.Addr
	if magic == Magic2 {
		base = int(mem.VolatileWord(probeCfg.Field(sb, fBase)))
		newShards = int(mem.VolatileWord(probeCfg.Field(sb, fNewShards)))
		dir = pmem.Addr(mem.VolatileWord(probeCfg.Field(sb, fDirPtr)))
		if base < 1 || base > shards || newShards < shards || newShards > MaxShards {
			return nil, rs, fmt.Errorf("store: superblock shard geometry base=%d serving=%d target=%d invalid", base, shards, newShards)
		}
		if newShards > base && dir == pmem.NilAddr {
			return nil, rs, fmt.Errorf("store: superblock has grown shards but no directory pointer")
		}
	}
	o.Shards, o.Buckets = newShards, buckets

	st := &Store{
		opts:       o,
		mem:        mem,
		heap:       pheap.RecoverWithRoots(mem, watermark, base+1),
		policy:     probe,
		stride:     stride,
		baseShards: base,
		sbAddr:     sb,
	}
	// cfgShard addresses shard i's anchor: a root slot below base, a
	// directory slot at or above it.
	cfgShard := func(i int) dstruct.Config {
		if i < base {
			return st.cfgFor(1 + i)
		}
		return st.cfgAt(dirSlotAddr(dir, i-base, stride))
	}

	rs.Shards = make([]time.Duration, newShards)
	keys := make([]int, newShards)
	tables := make([]*hashtable.Table, newShards)
	start := time.Now()
	// Two-phase, with a global barrier between everyone's gather and
	// anyone's rebuild: when the carried watermark is stale (the process
	// crashed during a previous recovery before it could hand the newer
	// watermark forward), a shard's fresh rebuild nodes can land on
	// addresses still holding another shard's not-yet-gathered chains.
	// Gathering writes nothing, so once every shard has its pairs in
	// process memory the rebuilds may clobber those regions freely. The
	// mid-split key redistribution reuses the same barrier: it needs every
	// table's pairs before any table's final contents are known.
	recovering := make([]*hashtable.Recovery, newShards)
	var wg sync.WaitGroup
	for i := 0; i < newShards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			recovering[i] = hashtable.BeginRecover(cfgShard(i))
			rs.Shards[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()

	// finals[i] is what shard i holds after recovery. Idle stores keep
	// each table's own gather; a crashed split redistributes by the
	// target shard count, preferring target-table copies.
	finals := make([]map[uint64]uint64, newShards)
	if newShards == shards {
		for i := range finals {
			finals[i] = recovering[i].Pairs()
		}
	} else {
		// Targets above the old serving count start from their own gather
		// (everything in them is authoritative); old serving shards start
		// empty and are refilled below — a non-doubling split can move keys
		// BETWEEN serving shards (k%oldN ≠ k%newN with both below oldN), so
		// every serving shard's contents must be recomputed, not kept.
		for i := shards; i < newShards; i++ {
			finals[i] = recovering[i].Pairs()
		}
		for i := 0; i < shards; i++ {
			finals[i] = make(map[uint64]uint64)
		}
		for i := 0; i < shards; i++ {
			for k, v := range recovering[i].Pairs() {
				nj := int(k % uint64(newShards))
				if nj == i {
					// This table IS the key's target: its copy is
					// authoritative, overwriting any stale moved-in copy an
					// earlier iteration placed here.
					finals[i][k] = v
				} else if _, inTarget := finals[nj][k]; !inTarget {
					// Stale pre-move copy: only lands if the target has not
					// produced its authoritative copy yet; the target table's
					// own pass overwrites it if one exists.
					finals[nj][k] = v
				}
			}
		}
	}

	for i := 0; i < newShards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			tables[i], keys[i] = recovering[i].CompleteWith(finals[i])
			rs.Shards[i] += time.Since(t0)
		}(i)
	}
	wg.Wait()
	if newShards > shards {
		// Every rebuild has fenced; the single-word serving-count flip is
		// the split's idempotent commit point.
		t := mem.RegisterThread()
		st.sbWrite(t, fShards, uint64(newShards))
		t.Release()
	}
	st.lay.Store(&layout{tables: tables})
	rs.Elapsed = time.Since(start)
	for _, k := range keys {
		rs.Keys += k
	}
	kept := rs
	st.recovered = &kept
	return st, rs, nil
}
