// Online shard splitting: a store created with N shards can grow to M > N
// shards while serving traffic, without doubling memory or stopping the
// world. The protocol is crash-consistent at every persist boundary:
//
//  1. A persisted shard DIRECTORY is allocated — one anchor slot per
//     shard beyond the base count, playing the role the heap root region
//     plays for the original shards (root regions are sized once at
//     creation and cannot grow). Anchors of shards grown by earlier
//     splits are copied in; the new target tables are built anchored at
//     their slots. Everything is fenced.
//  2. The superblock's directory pointer is persisted, then the target
//     shard count (fNewShards) — a single-word activation. From this
//     word on, a crash recovers to the POST-split layout (store.Recover
//     redistributes every key by the target count).
//  3. A background migrator walks the old shards in order, moving each
//     key that changes shards (Get old → Insert target if absent →
//     Delete old) through a group-commit batch: one fence per batch,
//     not per key. Sessions route per-key: fully-migrated shards go
//     straight to the target table; the shard under migration is
//     dual-read (target first, then old) under a read-lock the migrator
//     excludes only while actually moving a batch.
//  4. Completion persists the serving count (fShards = fNewShards) —
//     the idempotent commit word — and publishes the flat post-split
//     layout. A crash at ANY point before that word re-runs the
//     redistribution at recovery; the move protocol only ever leaves a
//     key present in both tables with the target copy authoritative, so
//     recovery is duplicate-free without a persisted cursor.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pmem"
)

// layout is the store's serving configuration, swapped atomically in
// Store.lay. tables holds the serving shards; mig is non-nil while an
// online split migrates keys.
type layout struct {
	tables []*hashtable.Table
	mig    *migration
}

// migration describes one in-flight split from oldN to newN shards.
type migration struct {
	oldN, newN int
	// dir holds the newly created target tables for shard indices
	// [oldN, newN); targets below oldN are the serving tables themselves
	// (a non-doubling split moves keys between serving shards too).
	dir []*hashtable.Table
	// cursor is the migrator's progress: old shards below it are fully
	// migrated (their moved keys live only in target tables), the shard at
	// it is being migrated (dual-read), shards above are untouched.
	// Volatile by design — recovery's redistribution rule is
	// cursor-independent.
	cursor atomic.Int64
	// mu excludes sessions touching not-yet-migrated shards (readers)
	// from the migrator's move batches (writer). Fully-migrated shards
	// and keys that do not change shards never take it.
	mu sync.RWMutex
	// moved counts keys moved so far (observability).
	moved atomic.Uint64
	// crashed is set when the migrator's crash countdown fires; the
	// migration freezes (dual-read routing stays correct) and recovery
	// finishes the split.
	crashed atomic.Bool
	// done closes when the migrator goroutine exits (completed or
	// crashed).
	done chan struct{}
}

// target returns shard index j's target table under this migration.
func (m *migration) target(lay *layout, j int) *hashtable.Table {
	if j < m.oldN {
		return lay.tables[j]
	}
	return m.dir[j-m.oldN]
}

// dirSpacing is the word distance between directory anchor slots: at
// least 2 so an adjacent-counter policy (stride 2) has room for the
// anchor's counter word, keeping the directory layout the same across
// policies a recovery might probe with.
func dirSpacing(stride int) int {
	if stride < 2 {
		return 2
	}
	return stride
}

// dirSlotAddr returns the address of directory slot j (anchoring shard
// base+j) for a directory object at dir.
func dirSlotAddr(dir pmem.Addr, j, stride int) pmem.Addr {
	return dir + pmem.Addr(j*dirSpacing(stride))
}

// SplitStatus reports the state of the current (or most recent, if still
// published) online split.
type SplitStatus struct {
	// Active is true while a migration is published in the layout.
	Active bool
	// Shards and Target are the serving and target shard counts.
	Shards, Target int
	// Migrated counts old shards fully migrated.
	Migrated int
	// Moved counts keys moved so far.
	Moved uint64
	// Crashed is true when the migrator died mid-split (simulated crash);
	// the split completes at recovery.
	Crashed bool
}

// Split grows the store to newShards online. It returns once the split is
// durably activated (a crash from here on recovers to the post-split
// layout) with the key migration running in the background; WaitSplit
// blocks until the migration has drained. Split cannot run while flat
// combiners exist (they capture the shard list at build time) or while a
// previous split is still migrating.
//
//flit:rawpersist split activation writes directory anchors and the superblock activation word with explicit fence ordering
func (s *Store) Split(newShards int) error {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	if s.combiners != nil {
		return fmt.Errorf("store: cannot split a store with combined sessions")
	}
	lay := s.lay.Load()
	if lay.mig != nil {
		return fmt.Errorf("store: split to %d shards still migrating", lay.mig.newN)
	}
	cur := len(lay.tables)
	if newShards <= cur || newShards > MaxShards {
		return fmt.Errorf("store: split target %d outside (%d,%d]", newShards, cur, MaxShards)
	}

	t := s.mem.RegisterThread()
	defer t.Release()
	ar := s.heap.NewArena()
	defer ar.Release()

	// Build the new directory: one slot per shard beyond the base count.
	// Slots for shards grown by earlier splits copy their existing anchor
	// (the table object itself is untouched — anchors are only read at
	// attach/recovery); slots for the new shards are written by
	// hashtable.New, which persists its own anchor. Everything is fenced
	// before the superblock points at it.
	spacing := dirSpacing(s.stride)
	dir := ar.Alloc((newShards - s.baseShards) * spacing)
	for g := s.baseShards; g < cur; g++ {
		dst := dirSlotAddr(dir, g-s.baseShards, s.stride)
		t.Store(dst, uint64(lay.tables[g].Base()))
		t.PWB(dst)
	}
	targets := make([]*hashtable.Table, newShards-cur)
	for j := cur; j < newShards; j++ {
		targets[j-cur] = hashtable.New(s.cfgAt(dirSlotAddr(dir, j-s.baseShards, s.stride)), s.opts.Buckets)
	}
	t.PFence()

	// Persist the directory pointer, then the target count. The count is
	// the activation word: a crash before it recovers the pre-split
	// layout (the directory is unreferenced garbage, or — after a prior
	// split — carries the same anchors the old directory did); a crash
	// after it recovers post-split.
	s.sbWrite(t, fDirPtr, uint64(dir))
	s.sbWrite(t, fNewShards, uint64(newShards))

	m := &migration{oldN: cur, newN: newShards, dir: targets, done: make(chan struct{})}
	s.lay.Store(&layout{tables: lay.tables, mig: m})
	go s.migrate(&layout{tables: lay.tables, mig: m})
	return nil
}

// WaitSplit blocks until no migration is in flight (returning immediately
// when none is). It reports whether the migration it waited for (if any)
// completed rather than crashed.
func (s *Store) WaitSplit() bool {
	lay := s.lay.Load()
	if lay.mig == nil {
		return true
	}
	<-lay.mig.done
	return !lay.mig.crashed.Load()
}

// SplitStat reports the current split's progress.
func (s *Store) SplitStat() SplitStatus {
	lay := s.lay.Load()
	st := SplitStatus{Shards: len(lay.tables), Target: len(lay.tables)}
	if m := lay.mig; m != nil {
		st.Active = true
		st.Target = m.newN
		st.Migrated = int(m.cursor.Load())
		st.Moved = m.moved.Load()
		st.Crashed = m.crashed.Load()
	}
	return st
}

// migrate is the background migrator goroutine. A simulated crash
// (pmem.ErrCrashed via the migrator thread's countdown) freezes the
// migration in place: the crashed flag is published, routing stays in
// dual-read mode (still correct — it just never advances), and recovery
// completes the split from the superblock.
func (s *Store) migrate(lay *layout) {
	m := lay.mig
	defer close(m.done)
	if pmem.RunToCrash(func() { s.migrateBody(lay) }) {
		// Whole-process crash model: the migrator died, so the store did.
		m.crashed.Store(true)
		s.combCrashed.Store(true)
	}
}

func (s *Store) migrateBody(lay *layout) {
	m := lay.mig
	t := s.mem.RegisterThread()
	ar := s.heap.NewArena()
	d := core.NewDeferred(s.policy)
	opts := dstruct.ThreadOpts{T: t, Arena: ar, Policy: d}
	ths := make([]*hashtable.Thread, m.newN)
	for j := 0; j < m.newN; j++ {
		ths[j] = m.target(lay, j).Open(opts)
	}
	// The closes run during a crash unwind too — discarding a crashed
	// thread's pending write-backs is exactly the simulated power-loss
	// state, and releasing the handles keeps chaos runs leak-free.
	defer func() {
		for _, th := range ths {
			th.Close()
		}
		ar.Release()
		t.Release()
	}()

	for sh := 0; sh < m.oldN; sh++ {
		s.migrateShard(lay, ths, t, d, sh)
		// Volatile bump only after the shard's last batch has fenced:
		// sessions seeing the new cursor go target-only lock-free.
		m.cursor.Store(int64(sh + 1))
	}

	// Completion: persist the serving count — the idempotent commit word,
	// the same one recovery writes — then publish the flat layout. A
	// session still holding the migration layout routes every shard
	// through the fast path (cursor == oldN), reaching the same tables.
	s.sbWrite(t, fShards, uint64(m.newN))
	tables := make([]*hashtable.Table, m.newN)
	for j := 0; j < m.newN; j++ {
		tables[j] = m.target(lay, j)
	}
	s.lay.Store(&layout{tables: tables})
}

// migrateBatch bounds how many keys move under one write-lock hold and
// one deferred-commit fence.
const migrateBatch = 64

func (s *Store) migrateShard(lay *layout, ths []*hashtable.Thread, t *pmem.Thread, d *core.Deferred, sh int) {
	m := lay.mig
	// Movers are the shard's keys whose target shard differs. Membership
	// of movers is stable outside move batches: every session op on a
	// mover key of a not-fully-migrated shard holds the read lock, so the
	// write lock gives a consistent mover list. Keys that stay (same
	// index mod newN) churn lock-free concurrently, but never join the
	// mover set — the shard index of a key is a pure function of the key.
	m.mu.Lock()
	var movers []uint64
	for k := range lay.tables[sh].Snapshot() {
		if int(k%uint64(m.newN)) != sh {
			movers = append(movers, k)
		}
	}
	m.mu.Unlock()

	for len(movers) > 0 {
		n := migrateBatch
		if n > len(movers) {
			n = len(movers)
		}
		batch := movers[:n]
		movers = movers[n:]
		m.mu.Lock()
		for _, k := range batch {
			v, ok := ths[sh].Get(k)
			if !ok {
				continue // deleted since the snapshot
			}
			// Insert-if-absent: a session Put/Add during migration upserts
			// the target only, and that copy is authoritative — never
			// overwrite it with the stale old-shard value.
			nj := int(k % uint64(m.newN))
			if ths[nj].Insert(k, v) {
				m.moved.Add(1)
			}
			ths[sh].Delete(k)
		}
		m.mu.Unlock()
		// One fence commits the whole batch (the deferred policy already
		// applied and flushed each store; publishing CASes fenced
		// individually, as in any group-commit session). Crash-safe to
		// fence outside the lock: recovery redistributes correctly from
		// any persisted prefix.
		d.Flush(t)
	}
}
