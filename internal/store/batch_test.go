package store_test

import (
	"sync"
	"testing"
	"time"

	"flit/internal/core"
	"flit/internal/pmem"
	"flit/internal/store"
)

func newBatchStore(t *testing.T, policy string) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 10, Policy: policy,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBatchSessionSemantics: the batched ops return the same results as
// plain sessions, and plain sessions observe batched effects (shared
// volatile state, shared flit-counter tables).
func TestBatchSessionSemantics(t *testing.T) {
	st := newBatchStore(t, core.PolicyHT)
	bs := store.Open[string](st, store.Batched)
	plain := store.Open[string](st, store.Direct)

	if !bs.Put("a", 1) {
		t.Fatal("fresh Put reported existing key")
	}
	if bs.Put("a", 2) {
		t.Fatal("overwrite reported new key")
	}
	if v, ok := bs.Get("a"); !ok || v != 2 {
		t.Fatalf("Get(a) = %d,%v want 2,true", v, ok)
	}
	if !bs.Contains("a") || bs.Contains("b") {
		t.Fatal("Contains disagrees with Put history")
	}
	if got := bs.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	bs.Commit()
	if bs.Pending() != 0 {
		t.Fatal("Pending not reset by Commit")
	}

	// Cross-session visibility (volatile) both ways.
	if v, ok := plain.Get("a"); !ok || v != 2 {
		t.Fatalf("plain session Get(a) = %d,%v want 2,true", v, ok)
	}
	plain.Put("c", 3)
	if v, ok := bs.Get("c"); !ok || v != 3 {
		t.Fatalf("batch session Get(c) = %d,%v want 3,true", v, ok)
	}
	if !bs.Delete("a") || bs.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	bs.Commit()
}

// TestBatchCommitIsTheDurabilityBoundary: in-place value overwrites are
// the deferred p-stores of the batch path — a committed overwrite
// survives a DropUnfenced crash, an uncommitted one rolls back to the
// old value. (Fresh inserts persist inside their link-CAS fences either
// way; only the ack, not the durability, waits for Commit there.)
func TestBatchCommitIsTheDurabilityBoundary(t *testing.T) {
	st := newBatchStore(t, core.PolicyHT)
	bs := store.Open[string](st, store.Batched)

	bs.Put("committed", 1)
	bs.Put("rollback", 1)
	bs.Commit()

	bs.Put("committed", 2) // overwrite: deferred value p-store
	if drained := bs.Commit(); drained == 0 {
		t.Fatal("Commit drained nothing for an overwrite batch")
	}
	bs.Put("rollback", 2) // overwrite left uncommitted: must not persist

	img := st.Mem().CrashImage(pmem.DropUnfenced, 1)
	st2, _, err := store.Recover(pmem.NewFromImage(img, st.Mem().Config()), st.Heap().Watermark(), st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	sess := store.Open[string](st2, store.Direct)
	if v, ok := sess.Get("committed"); !ok || v != 2 {
		t.Fatalf("committed overwrite lost: Get = %d,%v want 2,true", v, ok)
	}
	if v, ok := sess.Get("rollback"); !ok || v != 1 {
		// Not a durability violation (the op was never acknowledged),
		// but under DropUnfenced an unfenced value store cannot survive —
		// if it does, the deferral isn't deferring.
		t.Fatalf("uncommitted overwrite observed after DropUnfenced crash: Get = %d,%v want 1,true", v, ok)
	}
}

// TestBatchTagsQuiesce: after Commit, no flit-counter stays tagged (the
// dlcheck quiescence oracle at service granularity).
func TestBatchTagsQuiesce(t *testing.T) {
	st := newBatchStore(t, core.PolicyHT)
	bs := store.Open[[]byte](st, store.Batched)
	for i := 0; i < 64; i++ {
		key := []byte{'k', byte(i)}
		bs.Put(key, uint64(i))
		if i%3 == 0 {
			bs.Delete(key)
		}
	}
	bs.Commit()
	if n, ok := core.LiveTagCount(st.Policy()); !ok || n != 0 {
		t.Fatalf("live tags after Commit = %d (auditable=%v), want 0", n, ok)
	}
}

// TestBatchAmortizesFences: the same op stream costs strictly fewer
// fences — and no more PWBs — through a BatchSession committing every 16
// ops than through per-op-persisting plain sessions. This is the
// group-commit claim at its smallest scale.
func TestBatchAmortizesFences(t *testing.T) {
	ops := func(put func(k []byte, v uint64), get func(k []byte)) {
		var key [2]byte
		for i := 0; i < 256; i++ {
			key[0], key[1] = byte(i), byte(i>>4)
			if i%2 == 0 {
				put(key[:], uint64(i))
			} else {
				get(key[:])
			}
		}
	}

	base := newBatchStore(t, core.PolicyHT)
	sess := store.Open[[]byte](base, store.Direct)
	base.Mem().ResetStats()
	ops(func(k []byte, v uint64) { sess.Put(k, v) }, func(k []byte) { sess.Get(k) })
	unbatched := base.Mem().TotalStats()

	batched := newBatchStore(t, core.PolicyHT)
	bs := store.Open[[]byte](batched, store.Batched)
	batched.Mem().ResetStats()
	n := 0
	commitEvery := func() {
		if n++; n%16 == 0 {
			bs.Commit()
		}
	}
	ops(
		func(k []byte, v uint64) { bs.Put(k, v); commitEvery() },
		func(k []byte) { bs.Get(k); commitEvery() },
	)
	bs.Commit()
	grouped := batched.Mem().TotalStats()

	if grouped.PFences >= unbatched.PFences {
		t.Fatalf("batched fences %d not below unbatched %d", grouped.PFences, unbatched.PFences)
	}
	if grouped.PWBs > unbatched.PWBs {
		t.Fatalf("batched PWBs %d exceed unbatched %d", grouped.PWBs, unbatched.PWBs)
	}
}

// TestSnapshotConcurrentMemorySafety pins the documented half of
// Store.Snapshot's contract that CAN be asserted mechanically: against
// live sessions it is memory-safe (all reads go through the atomic
// volatile layer — no race-detector report, no fault), even though its
// contents are only linearizable after quiescence. Run under -race in
// the nightly suite, this test is the assertion; the quiescent half is
// checked by the exact-contents comparison after the join.
func TestSnapshotConcurrentMemorySafety(t *testing.T) {
	st := newBatchStore(t, core.PolicyHT)
	const workers, opsEach = 3, 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := store.Open[[]byte](st, store.Direct)
			var key [3]byte
			for i := 0; i < opsEach; i++ {
				key[0], key[1], key[2] = byte(w), byte(i), byte(i>>8)
				switch i % 3 {
				case 0:
					sess.Put(key[:], uint64(i))
				case 1:
					sess.Get(key[:])
				default:
					sess.Delete(key[:])
				}
			}
		}(w)
	}
	// Concurrent snapshots: must not race or panic; contents are
	// best-effort while sessions run (documented).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = st.Snapshot()
			}
		}
	}()
	// Quiesce the mutators, then stop the snapshotter.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		// The mutators finish fast; give the snapshotter overlap time.
		time.Sleep(20 * time.Millisecond)
		close(stop)
	}()
	<-done

	// Quiescent now: Snapshot must be exact. Workers each leave the
	// keys of their final i%3==0 puts that were not later deleted —
	// recompute independently and compare.
	want := map[uint64]uint64{}
	for w := 0; w < workers; w++ {
		var key [3]byte
		alive := map[uint64]uint64{}
		for i := 0; i < opsEach; i++ {
			key[0], key[1], key[2] = byte(w), byte(i), byte(i>>8)
			h := store.HashKeyBytes(key[:])
			switch i % 3 {
			case 0:
				alive[h] = uint64(i)
			case 2:
				delete(alive, h)
			}
		}
		for h, v := range alive {
			want[h] = v
		}
	}
	got := st.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("quiescent snapshot has %d keys, want %d", len(got), len(want))
	}
	for h, v := range want {
		if got[h] != v {
			t.Fatalf("quiescent snapshot[%#x] = %d, want %d", h, got[h], v)
		}
	}
}
