package store

import (
	"fmt"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// SessionMode selects how a session's operations reach persistence. The
// combiner is a mode, not a fourth session type: every mode shares one
// generic session surface (Open / Sess), and the legacy Session and
// BatchSession types are thin deprecated wrappers over the same core.
type SessionMode int

const (
	// Direct executes each operation to completion under the store's
	// policy: persistence (flush + fence + untag) happens inside the
	// operation, exactly as the paper's per-op FliT discipline.
	Direct SessionMode = iota
	// Batched executes operations under the group-commit skeleton
	// (core.Deferred): stores apply and flush immediately but the fence
	// and untagging are held until Commit, which persists the whole batch
	// under one fence. Results MUST NOT be exposed before Commit returns.
	Batched
	// Combined announces operations to the store's per-shard flat
	// combiners: one winner thread per shard executes every announced
	// operation and commits the window under ONE fence before publishing
	// results, so results are durable — and safe to expose — as soon as
	// the call returns. FAA traffic (Add) is additionally coalesced to
	// net deltas within a window unless Options.CombineNoCoalesce is set.
	Combined
)

// String names the mode as spelled in bench cell IDs.
func (m SessionMode) String() string {
	switch m {
	case Direct:
		return "direct"
	case Batched:
		return "batched"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("SessionMode(%d)", int(m))
	}
}

// SessionModes lists all modes.
var SessionModes = []SessionMode{Direct, Batched, Combined}

// SessionModeByName resolves a mode name as printed by String.
func SessionModeByName(name string) (SessionMode, bool) {
	for _, m := range SessionModes {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Key constrains the session key type: string for convenience, []byte for
// allocation-free hot loops reusing one buffer. Both hash identically
// (HashKey ≡ HashKeyBytes on equal bytes), so sessions of different key
// types interoperate on one store.
type Key interface{ ~string | ~[]byte }

// OpKind identifies a store operation in the vector Apply interface.
type OpKind uint8

const (
	// OpGet reads a key: Result{Val, Ok: present}.
	OpGet OpKind = iota
	// OpPut stores key→val (masked to ValueMask): Result{Ok: inserted}.
	OpPut
	// OpDelete removes a key: Result{Ok: was present}.
	OpDelete
	// OpContains probes a key: Result{Ok: present}.
	OpContains
	// OpAdd atomically adds Val (a two's-complement delta, full 64-bit
	// wrap) to the key's value, inserting key→Val when absent. Direct and
	// Batched sessions return Result{Val: new value, Ok: was present};
	// Combined sessions coalesce deltas blind and return Result{} (see
	// Sess.Add).
	OpAdd
)

// Op is one operation in a vector Apply call.
type Op[K Key] struct {
	Kind OpKind
	Key  K
	// Val is the value for OpPut, the delta for OpAdd; unused otherwise.
	Val uint64
}

// Result is one operation's outcome. Val/Ok meanings per OpKind are
// documented on the OpKind constants.
type Result struct {
	Val uint64
	Ok  bool
}

// hashedOp is an Op after key hashing — the mode-independent internal
// currency, and what travels through a combining slot.
type hashedOp struct {
	kind OpKind
	h    uint64
	val  uint64
}

// sessionCore is the non-generic heart shared by Sess[K] and the legacy
// Session/BatchSession wrappers: it works on hashed keys and dispatches
// on the session mode. Not safe for concurrent use.
type sessionCore struct {
	st   *Store
	mode SessionMode

	// Direct/Batched execution state: one pmem thread, one arena, one
	// handle per shard (nil in Combined mode — combined sessions own no
	// execution resources, the per-shard combiners do).
	t      *pmem.Thread
	ar     *pheap.Arena
	d      *core.Deferred // Batched only
	shards []*hashtable.Thread

	// Combined announcement state: this session's slot at each shard's
	// combiner, plus scratch reused across Apply calls.
	slots   []*cslot
	idxs    [][]int // per shard: original op index of each slot entry
	touched []int   // shards announced to in the current Apply
	op1     [1]hashedOp
	res1    [1]Result

	pending int
}

func newSessionCore(s *Store, mode SessionMode) *sessionCore {
	c := &sessionCore{st: s, mode: mode}
	switch mode {
	case Combined:
		s.initCombiners()
		c.slots = make([]*cslot, len(s.shards))
		c.idxs = make([][]int, len(s.shards))
		for i, cb := range s.combiners {
			c.slots[i] = cb.register()
		}
	case Batched:
		c.t = s.mem.RegisterThread()
		c.ar = s.heap.NewArena()
		c.d = core.NewDeferred(s.policy)
		c.shards = make([]*hashtable.Thread, len(s.shards))
		for i, sh := range s.shards {
			c.shards[i] = sh.Open(dstruct.ThreadOpts{T: c.t, Arena: c.ar, Policy: c.d})
		}
	default:
		c.t = s.mem.RegisterThread()
		c.ar = s.heap.NewArena()
		c.shards = make([]*hashtable.Thread, len(s.shards))
		for i, sh := range s.shards {
			c.shards[i] = sh.Open(dstruct.ThreadOpts{T: c.t, Arena: c.ar})
		}
	}
	return c
}

// do1 routes a single operation through the mode's execution path.
func (c *sessionCore) do1(kind OpKind, h, val uint64) Result {
	if c.mode == Combined {
		c.op1[0] = hashedOp{kind: kind, h: h, val: val}
		c.applyCombined(c.op1[:], c.res1[:])
		return c.res1[0]
	}
	c.pending++
	sh := c.shards[c.st.shardOf(h)]
	switch kind {
	case OpGet:
		v, ok := sh.Get(h)
		return Result{Val: v, Ok: ok}
	case OpPut:
		return Result{Ok: sh.Put(h, val&ValueMask)}
	case OpDelete:
		return Result{Ok: sh.Delete(h)}
	case OpContains:
		return Result{Ok: sh.Contains(h)}
	case OpAdd:
		v, ok := sh.Add(h, val)
		return Result{Val: v, Ok: ok}
	default:
		panic(fmt.Sprintf("store: unknown OpKind %d", kind))
	}
}

// apply executes a pre-hashed op vector, filling res (len(res) must equal
// len(ops)). Direct mode runs each op to completion; Batched mode runs
// the vector as one uncommitted batch (caller commits); Combined mode
// announces per-shard groups and waits for the combiners.
func (c *sessionCore) apply(ops []hashedOp, res []Result) {
	if c.mode == Combined {
		c.applyCombined(ops, res)
		return
	}
	for i := range ops {
		res[i] = c.do1(ops[i].kind, ops[i].h, ops[i].val)
	}
}

// commit is the group commit (Batched mode): one fence persists every
// operation since the previous commit; returns lines drained. Direct and
// Combined sessions have nothing deferred, so commit is a no-op.
func (c *sessionCore) commit() int {
	c.pending = 0
	if c.d == nil {
		return 0
	}
	return c.d.Flush(c.t)
}

// Sess is the unified per-goroutine store session, generic over the key
// type and parameterized by SessionMode at construction. Not safe for
// concurrent use; create one per goroutine. Sessions of any mix of modes
// compose on one store: Direct and Batched sessions interleave through
// the structures' lock-free protocols (in-flight deferred stores stay
// flit-tagged, so other sessions' p-loads carry their flush obligation),
// and Combined sessions serialize per shard through the combiner.
type Sess[K Key] struct {
	c *sessionCore

	// hops is scratch for Apply: the hashed spelling of the op vector.
	hops []hashedOp
}

// Open registers a new session on s in the given mode. The key type is
// chosen explicitly at the call site: Open[string](s, store.Direct) for
// convenience keys, Open[[]byte](s, store.Batched) for zero-allocation
// loops reusing one key buffer.
func Open[K Key](s *Store, mode SessionMode) *Sess[K] {
	return &Sess[K]{c: newSessionCore(s, mode)}
}

// Mode returns the session's mode.
func (s *Sess[K]) Mode() SessionMode { return s.c.mode }

// Thread exposes the session's pmem thread (stats, crash injection).
// Combined sessions execute nothing themselves — their operations run on
// the combiner threads (Store.CombinerThreads) — so Thread returns nil.
func (s *Sess[K]) Thread() *pmem.Thread { return s.c.t }

// Pending reports the operations executed since the last Commit
// (meaningful in Batched mode; Direct and Combined operations are
// already durable when they return).
func (s *Sess[K]) Pending() int { return s.c.pending }

// Commit is the group commit (Batched mode): one fence persists every
// operation executed since the previous Commit, then the batch's
// deferred flit-tags are released; it returns the number of cache lines
// drained. Only after Commit may a Batched session's results be exposed.
// In Direct and Combined modes Commit is a no-op returning 0.
func (s *Sess[K]) Commit() int { return s.c.commit() }

// Get returns the value stored under key, if present.
func (s *Sess[K]) Get(key K) (uint64, bool) {
	r := s.c.do1(OpGet, hashKey(key), 0)
	return r.Val, r.Ok
}

// Put stores key→val (masked to ValueMask), inserting or durably
// overwriting in place; it reports whether the key was newly inserted.
func (s *Sess[K]) Put(key K, val uint64) bool {
	return s.c.do1(OpPut, hashKey(key), val).Ok
}

// Delete removes key; it reports whether the key was present.
func (s *Sess[K]) Delete(key K) bool {
	return s.c.do1(OpDelete, hashKey(key), 0).Ok
}

// Contains reports whether key is present.
func (s *Sess[K]) Contains(key K) bool {
	return s.c.do1(OpContains, hashKey(key), 0).Ok
}

// Add atomically adds delta (two's-complement, full 64-bit wrap) to the
// value under key, inserting key→delta when absent. Direct and Batched
// sessions return the post-add value and whether the key was already
// present. Combined sessions coalesce deltas to one net store per key
// per combining window — the VSA-style win — which makes Add blind
// there: it returns (0, false) regardless of the stored state.
func (s *Sess[K]) Add(key K, delta uint64) (uint64, bool) {
	r := s.c.do1(OpAdd, hashKey(key), delta)
	return r.Val, r.Ok
}

// Apply executes the op vector, writing each operation's outcome into
// res (len(res) must be at least len(ops)). Direct mode runs each op to
// completion in order. Batched mode executes the vector as one
// uncommitted batch — the caller owns the Commit. Combined mode groups
// the vector by shard, announces each group to its combiner, and returns
// once every group's window has committed: results are durable on
// return. Within one Apply, ops on the same key execute in vector order.
func (s *Sess[K]) Apply(ops []Op[K], res []Result) {
	if len(res) < len(ops) {
		panic("store: Apply result slice shorter than op vector")
	}
	s.hops = s.hops[:0]
	for i := range ops {
		s.hops = append(s.hops, hashedOp{kind: ops[i].Kind, h: hashKey(ops[i].Key), val: ops[i].Val})
	}
	s.c.apply(s.hops, res[:len(ops)])
}
