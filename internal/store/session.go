package store

import (
	"fmt"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/hashtable"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// SessionMode selects how a session's operations reach persistence. The
// combiner is a mode, not a fourth session type: every mode shares one
// generic session surface (Open / Sess), and the legacy Session and
// BatchSession types are thin deprecated wrappers over the same core.
type SessionMode int

const (
	// Direct executes each operation to completion under the store's
	// policy: persistence (flush + fence + untag) happens inside the
	// operation, exactly as the paper's per-op FliT discipline.
	Direct SessionMode = iota
	// Batched executes operations under the group-commit skeleton
	// (core.Deferred): stores apply and flush immediately but the fence
	// and untagging are held until Commit, which persists the whole batch
	// under one fence. Results MUST NOT be exposed before Commit returns.
	Batched
	// Combined announces operations to the store's per-shard flat
	// combiners: one winner thread per shard executes every announced
	// operation and commits the window under ONE fence before publishing
	// results, so results are durable — and safe to expose — as soon as
	// the call returns. FAA traffic (Add) is additionally coalesced to
	// net deltas within a window unless Options.CombineNoCoalesce is set.
	Combined
)

// String names the mode as spelled in bench cell IDs.
func (m SessionMode) String() string {
	switch m {
	case Direct:
		return "direct"
	case Batched:
		return "batched"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("SessionMode(%d)", int(m))
	}
}

// SessionModes lists all modes.
var SessionModes = []SessionMode{Direct, Batched, Combined}

// SessionModeByName resolves a mode name as printed by String.
func SessionModeByName(name string) (SessionMode, bool) {
	for _, m := range SessionModes {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Key constrains the session key type: string for convenience, []byte for
// allocation-free hot loops reusing one buffer. Both hash identically
// (HashKey ≡ HashKeyBytes on equal bytes), so sessions of different key
// types interoperate on one store.
type Key interface{ ~string | ~[]byte }

// OpKind identifies a store operation in the vector Apply interface.
type OpKind uint8

const (
	// OpGet reads a key: Result{Val, Ok: present}.
	OpGet OpKind = iota
	// OpPut stores key→val (masked to ValueMask): Result{Ok: inserted}.
	OpPut
	// OpDelete removes a key: Result{Ok: was present}.
	OpDelete
	// OpContains probes a key: Result{Ok: present}.
	OpContains
	// OpAdd atomically adds Val (a two's-complement delta, full 64-bit
	// wrap) to the key's value, inserting key→Val when absent. Direct and
	// Batched sessions return Result{Val: new value, Ok: was present};
	// Combined sessions coalesce deltas blind and return Result{} (see
	// Sess.Add).
	OpAdd
)

// Op is one operation in a vector Apply call.
type Op[K Key] struct {
	Kind OpKind
	Key  K
	// Val is the value for OpPut, the delta for OpAdd; unused otherwise.
	Val uint64
}

// Result is one operation's outcome. Val/Ok meanings per OpKind are
// documented on the OpKind constants.
type Result struct {
	Val uint64
	Ok  bool
}

// hashedOp is an Op after key hashing — the mode-independent internal
// currency, and what travels through a combining slot.
type hashedOp struct {
	kind OpKind
	h    uint64
	val  uint64
}

// sessionCore is the non-generic heart shared by Sess[K] and the legacy
// Session/BatchSession wrappers: it works on hashed keys and dispatches
// on the session mode. Not safe for concurrent use.
type sessionCore struct {
	st   *Store
	mode SessionMode

	// Direct/Batched execution state: one pmem thread, one arena, one
	// handle per shard table (nil in Combined mode — combined sessions own
	// no execution resources, the per-shard combiners do). Handles track
	// the store layout: ths aligns with the serving tables, dths with a
	// migration's new target tables, and byTab caches one handle per table
	// so layout swaps reuse handles and close releases every one opened.
	t     *pmem.Thread
	ar    *pheap.Arena
	d     *core.Deferred // Batched only
	lay   *layout
	ths   []*hashtable.Thread
	dths  []*hashtable.Thread
	byTab map[*hashtable.Table]*hashtable.Thread

	// Combined announcement state: this session's slot at each shard's
	// combiner, plus scratch reused across Apply calls.
	slots   []*cslot
	idxs    [][]int // per shard: original op index of each slot entry
	touched []int   // shards announced to in the current Apply
	op1     [1]hashedOp
	res1    [1]Result

	pending int
	closed  bool
}

func newSessionCore(s *Store, mode SessionMode) *sessionCore {
	c := &sessionCore{st: s, mode: mode}
	if mode == Combined {
		s.initCombiners()
		c.slots = make([]*cslot, len(s.combiners))
		c.idxs = make([][]int, len(s.combiners))
		for i, cb := range s.combiners {
			c.slots[i] = cb.register()
		}
		return c
	}
	c.t = s.mem.RegisterThread()
	c.ar = s.heap.NewArena()
	if mode == Batched {
		c.d = core.NewDeferred(s.policy)
	}
	c.byTab = make(map[*hashtable.Table]*hashtable.Thread)
	c.refresh()
	return c
}

func (c *sessionCore) topts() dstruct.ThreadOpts {
	o := dstruct.ThreadOpts{T: c.t, Arena: c.ar}
	if c.d != nil {
		o.Policy = c.d
	}
	return o
}

// handleFor returns the session's handle on tbl, opening one on first use.
func (c *sessionCore) handleFor(tbl *hashtable.Table) *hashtable.Thread {
	if th, ok := c.byTab[tbl]; ok {
		return th
	}
	th := tbl.Open(c.topts())
	c.byTab[tbl] = th
	return th
}

// refresh re-aligns the handle slices with the store's current layout
// (cheap pointer compare when nothing changed — the per-op cost of online
// splitting for every session).
func (c *sessionCore) refresh() {
	lay := c.st.lay.Load()
	if lay == c.lay {
		return
	}
	c.ths = c.ths[:0]
	for _, tbl := range lay.tables {
		c.ths = append(c.ths, c.handleFor(tbl))
	}
	c.dths = c.dths[:0]
	if m := lay.mig; m != nil {
		for _, tbl := range m.dir {
			c.dths = append(c.dths, c.handleFor(tbl))
		}
	}
	c.lay = lay
}

// close releases everything the session holds: combiner slots in Combined
// mode; otherwise any still-deferred batch is quietly committed (tolerating
// a simulated crash), every table handle's reclamation slot is closed, and
// the arena and pmem thread are returned for reuse. Idempotent.
func (c *sessionCore) close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.mode == Combined {
		for i, cb := range c.st.combiners {
			cb.deregister(c.slots[i])
		}
		return
	}
	if c.d != nil {
		// A Batched session's uncommitted results were never exposed, but
		// its stores already hit the table — commit them rather than leave
		// flit-tags dangling. The flush of a crashed or poisoned session
		// may itself panic; the batch was never acknowledged, so dropping
		// it is a legal crash point, and close still releases everything.
		func() {
			defer func() { recover() }()
			c.d.Flush(c.t)
		}()
	}
	for _, th := range c.byTab {
		th.Close()
	}
	c.ar.Release()
	c.t.Release()
}

// do1 routes a single operation through the mode's execution path.
func (c *sessionCore) do1(kind OpKind, h, val uint64) Result {
	if c.mode == Combined {
		c.op1[0] = hashedOp{kind: kind, h: h, val: val}
		c.applyCombined(c.op1[:], c.res1[:])
		return c.res1[0]
	}
	c.pending++
	c.refresh()
	lay := c.lay
	if lay.mig != nil {
		return c.doMigrating(lay, kind, h, val)
	}
	return c.exec(c.ths[int(h%uint64(len(lay.tables)))], kind, h, val)
}

// exec runs one op on one table handle — the whole story when no split is
// migrating.
func (c *sessionCore) exec(sh *hashtable.Thread, kind OpKind, h, val uint64) Result {
	switch kind {
	case OpGet:
		v, ok := sh.Get(h)
		return Result{Val: v, Ok: ok}
	case OpPut:
		return Result{Ok: sh.Put(h, val&ValueMask)}
	case OpDelete:
		return Result{Ok: sh.Delete(h)}
	case OpContains:
		return Result{Ok: sh.Contains(h)}
	case OpAdd:
		v, ok := sh.Add(h, val)
		return Result{Val: v, Ok: ok}
	default:
		panic(fmt.Sprintf("store: unknown OpKind %d", kind))
	}
}

// targetTh returns the handle for target shard index j under migration m.
func (c *sessionCore) targetTh(m *migration, j int) *hashtable.Thread {
	if j < m.oldN {
		return c.ths[j]
	}
	return c.dths[j-m.oldN]
}

// doMigrating routes one op while a split migrates. Three per-key regimes:
//
//   - The key does not change shards (h%oldN == h%newN): single table,
//     lock-free, exactly the no-split path.
//   - The key's old shard is fully migrated (below the cursor): the key
//     lives only in its target table — single table, lock-free.
//   - Otherwise the key's old shard is pending or in flight: the op takes
//     the migration read-lock (excluded only while the migrator moves a
//     batch) and re-reads the cursor. A shard strictly above the cursor is
//     untouched — old table only, which keeps every copy of the key in one
//     place. The shard AT the cursor is dual-read: reads check the target
//     first (authoritative), writes go to the target only, deletes clear
//     old-then-new so no crash boundary resurrects a stale copy.
func (c *sessionCore) doMigrating(lay *layout, kind OpKind, h, val uint64) Result {
	m := lay.mig
	oldIdx := int(h % uint64(m.oldN))
	newIdx := int(h % uint64(m.newN))
	if newIdx == oldIdx {
		return c.exec(c.ths[oldIdx], kind, h, val)
	}
	if int64(oldIdx) < m.cursor.Load() {
		return c.exec(c.targetTh(m, newIdx), kind, h, val)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	cur := m.cursor.Load()
	switch {
	case int64(oldIdx) < cur:
		return c.exec(c.targetTh(m, newIdx), kind, h, val)
	case int64(oldIdx) > cur:
		return c.exec(c.ths[oldIdx], kind, h, val)
	}
	return c.doDual(c.ths[oldIdx], c.targetTh(m, newIdx), kind, h, val)
}

// doDual is the in-flight-shard path: the key may exist in its old table,
// its target table, or (mid-move) both with the target copy authoritative.
func (c *sessionCore) doDual(old, tgt *hashtable.Thread, kind OpKind, h, val uint64) Result {
	switch kind {
	case OpGet:
		if v, ok := tgt.Get(h); ok {
			return Result{Val: v, Ok: true}
		}
		v, ok := old.Get(h)
		return Result{Val: v, Ok: ok}
	case OpContains:
		return Result{Ok: tgt.Contains(h) || old.Contains(h)}
	case OpPut:
		// Upsert the target only: the stale old copy is shadowed by the
		// read path and cleaned by the migrator (insert-if-absent there
		// never overwrites this value). "Newly inserted" means absent from
		// both tables.
		ins := tgt.Put(h, val&ValueMask)
		if ins && old.Contains(h) {
			ins = false
		}
		return Result{Ok: ins}
	case OpDelete:
		// Old first: a crash between the two deletes must not leave a
		// stale old copy that recovery would resurrect after the target
		// copy is gone.
		a := old.Delete(h)
		b := tgt.Delete(h)
		return Result{Ok: a || b}
	case OpAdd:
		for {
			if _, ok := tgt.Get(h); ok {
				v, _ := tgt.Add(h, val)
				return Result{Val: v, Ok: true}
			}
			if v, ok := old.Get(h); ok {
				// Seed the target with the summed value; losing the insert
				// race means another session seeded it first — fold the
				// delta in on the next pass.
				nv := (v + val) & ValueMask
				if tgt.Insert(h, nv) {
					return Result{Val: nv, Ok: true}
				}
				continue
			}
			v, ok := tgt.Add(h, val)
			return Result{Val: v, Ok: ok}
		}
	default:
		panic(fmt.Sprintf("store: unknown OpKind %d", kind))
	}
}

// apply executes a pre-hashed op vector, filling res (len(res) must equal
// len(ops)). Direct mode runs each op to completion; Batched mode runs
// the vector as one uncommitted batch (caller commits); Combined mode
// announces per-shard groups and waits for the combiners.
func (c *sessionCore) apply(ops []hashedOp, res []Result) {
	if c.mode == Combined {
		c.applyCombined(ops, res)
		return
	}
	for i := range ops {
		res[i] = c.do1(ops[i].kind, ops[i].h, ops[i].val)
	}
}

// commit is the group commit (Batched mode): one fence persists every
// operation since the previous commit; returns lines drained. Direct and
// Combined sessions have nothing deferred, so commit is a no-op.
func (c *sessionCore) commit() int {
	c.pending = 0
	if c.d == nil {
		return 0
	}
	return c.d.Flush(c.t)
}

// Sess is the unified per-goroutine store session, generic over the key
// type and parameterized by SessionMode at construction. Not safe for
// concurrent use; create one per goroutine. Sessions of any mix of modes
// compose on one store: Direct and Batched sessions interleave through
// the structures' lock-free protocols (in-flight deferred stores stay
// flit-tagged, so other sessions' p-loads carry their flush obligation),
// and Combined sessions serialize per shard through the combiner.
type Sess[K Key] struct {
	c *sessionCore

	// hops is scratch for Apply: the hashed spelling of the op vector.
	hops []hashedOp
}

// Open registers a new session on s in the given mode. The key type is
// chosen explicitly at the call site: Open[string](s, store.Direct) for
// convenience keys, Open[[]byte](s, store.Batched) for zero-allocation
// loops reusing one key buffer.
func Open[K Key](s *Store, mode SessionMode) *Sess[K] {
	return &Sess[K]{c: newSessionCore(s, mode)}
}

// Mode returns the session's mode.
func (s *Sess[K]) Mode() SessionMode { return s.c.mode }

// Thread exposes the session's pmem thread (stats, crash injection).
// Combined sessions execute nothing themselves — their operations run on
// the combiner threads (Store.CombinerThreads) — so Thread returns nil.
func (s *Sess[K]) Thread() *pmem.Thread { return s.c.t }

// Pending reports the operations executed since the last Commit
// (meaningful in Batched mode; Direct and Combined operations are
// already durable when they return).
func (s *Sess[K]) Pending() int { return s.c.pending }

// Commit is the group commit (Batched mode): one fence persists every
// operation executed since the previous Commit, then the batch's
// deferred flit-tags are released; it returns the number of cache lines
// drained. Only after Commit may a Batched session's results be exposed.
// In Direct and Combined modes Commit is a no-op returning 0.
func (s *Sess[K]) Commit() int { return s.c.commit() }

// Close releases the session's execution resources — epoch-reclamation
// slots, the heap arena (surrendering its free lists for reuse), and the
// pmem thread (its ID and stats fold back into the memory's totals); a
// Combined session instead withdraws its combiner slots. A Batched
// session's still-deferred batch is committed first. Sessions MUST be
// closed when abandoned: an open session pins the reclamation epoch and a
// thread slot, which is unbounded memory growth under connection churn.
// Close is idempotent and safe after a simulated crash (the pending batch
// is then lost, exactly as power loss would lose it). The session must
// not be used after Close.
func (s *Sess[K]) Close() { s.c.close() }

// Get returns the value stored under key, if present.
func (s *Sess[K]) Get(key K) (uint64, bool) {
	r := s.c.do1(OpGet, hashKey(key), 0)
	return r.Val, r.Ok
}

// Put stores key→val (masked to ValueMask), inserting or durably
// overwriting in place; it reports whether the key was newly inserted.
func (s *Sess[K]) Put(key K, val uint64) bool {
	return s.c.do1(OpPut, hashKey(key), val).Ok
}

// Delete removes key; it reports whether the key was present.
func (s *Sess[K]) Delete(key K) bool {
	return s.c.do1(OpDelete, hashKey(key), 0).Ok
}

// Contains reports whether key is present.
func (s *Sess[K]) Contains(key K) bool {
	return s.c.do1(OpContains, hashKey(key), 0).Ok
}

// Add atomically adds delta (two's-complement, full 64-bit wrap) to the
// value under key, inserting key→delta when absent. Direct and Batched
// sessions return the post-add value and whether the key was already
// present. Combined sessions coalesce deltas to one net store per key
// per combining window — the VSA-style win — which makes Add blind
// there: it returns (0, false) regardless of the stored state.
func (s *Sess[K]) Add(key K, delta uint64) (uint64, bool) {
	r := s.c.do1(OpAdd, hashKey(key), delta)
	return r.Val, r.Ok
}

// Apply executes the op vector, writing each operation's outcome into
// res (len(res) must be at least len(ops)). Direct mode runs each op to
// completion in order. Batched mode executes the vector as one
// uncommitted batch — the caller owns the Commit. Combined mode groups
// the vector by shard, announces each group to its combiner, and returns
// once every group's window has committed: results are durable on
// return. Within one Apply, ops on the same key execute in vector order.
func (s *Sess[K]) Apply(ops []Op[K], res []Result) {
	if len(res) < len(ops) {
		panic("store: Apply result slice shorter than op vector")
	}
	s.hops = s.hops[:0]
	for i := range ops {
		s.hops = append(s.hops, hashedOp{kind: ops[i].Kind, h: hashKey(ops[i].Key), val: ops[i].Val})
	}
	s.c.apply(s.hops, res[:len(ops)])
}
