package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// addBase keeps Add-churned values far from zero so signed deltas never
// wrap the stored payload negative.
const addBase = uint64(1) << 20

func newTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.ExpectedKeys == 0 {
		opts.ExpectedKeys = 1 << 10
	}
	opts.VirtualClock = true
	st, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSessModesAgainstModel drives every session mode through a random
// single-op workload against a map model. Combined Add is blind, so the
// model only checks Get/Contains results (which settle pending deltas).
func TestSessModesAgainstModel(t *testing.T) {
	for _, mode := range SessionModes {
		t.Run(mode.String(), func(t *testing.T) {
			st := newTestStore(t, Options{})
			s := Open[string](st, mode)
			model := make(map[string]uint64)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(64))
				switch rng.Intn(5) {
				case 0:
					v, ok := s.Get(key)
					want, wok := model[key]
					if ok != wok || (ok && v != want) {
						t.Fatalf("op %d: Get(%s) = %d,%v want %d,%v", i, key, v, ok, want, wok)
					}
				case 1:
					val := uint64(rng.Intn(1 << 16))
					s.Put(key, val)
					model[key] = val
				case 2:
					s.Delete(key)
					delete(model, key)
				case 3:
					if got, want := s.Contains(key), contains(model, key); got != want {
						t.Fatalf("op %d: Contains(%s) = %v want %v", i, key, got, want)
					}
				case 4:
					delta := uint64(1)
					if rng.Intn(2) == 0 {
						delta = ^uint64(0) // -1
					}
					if _, ok := model[key]; !ok {
						// Seed with the base so churn stays positive.
						s.Put(key, addBase)
						model[key] = addBase
					}
					s.Add(key, delta)
					model[key] += delta
				}
				if mode == Batched && rng.Intn(8) == 0 {
					s.Commit()
				}
			}
			s.Commit()
			snap := st.Snapshot()
			if len(snap) != len(model) {
				t.Fatalf("snapshot has %d keys, model %d", len(snap), len(model))
			}
			for k, want := range model {
				if got := snap[HashKey(k)]; got != want {
					t.Fatalf("key %s: snapshot %d want %d", k, got, want)
				}
			}
		})
	}
}

func contains(m map[string]uint64, k string) bool {
	_, ok := m[k]
	return ok
}

// TestCombinedApplyOrdering checks the settle rule: within one Apply,
// non-Add ops on a key observe every earlier Add on that key, including
// inserts of absent keys.
func TestCombinedApplyOrdering(t *testing.T) {
	st := newTestStore(t, Options{})
	s := Open[string](st, Combined)
	ops := []Op[string]{
		{Kind: OpAdd, Key: "fresh", Val: 5},
		{Kind: OpGet, Key: "fresh"},
		{Kind: OpAdd, Key: "fresh", Val: 2},
		{Kind: OpAdd, Key: "gone", Val: 1},
		{Kind: OpDelete, Key: "gone"},
		{Kind: OpContains, Key: "gone"},
	}
	res := make([]Result, len(ops))
	s.Apply(ops, res)
	if !res[1].Ok || res[1].Val != 5 {
		t.Fatalf("Get after pending Add = %d,%v want 5,true", res[1].Val, res[1].Ok)
	}
	if !res[4].Ok {
		t.Fatal("Delete after pending Add on absent key must find it present")
	}
	if res[5].Ok {
		t.Fatal("Contains after Delete must be false")
	}
	if v, ok := s.Get("fresh"); !ok || v != 7 {
		t.Fatalf("after windows: fresh = %d,%v want 7,true", v, ok)
	}
}

// TestCombinedConcurrent churns Combined sessions from many goroutines:
// per-goroutine private keys verify result correctness, shared hot keys
// verify Add commutativity, and the final snapshot must match.
func TestCombinedConcurrent(t *testing.T) {
	st := newTestStore(t, Options{})
	const workers, iters, hot = 6, 800, 3
	seed := Open[string](st, Direct)
	for h := 0; h < hot; h++ {
		seed.Put(fmt.Sprintf("hot%d", h), addBase)
	}
	nets := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := Open[[]byte](st, Combined)
			rng := rand.New(rand.NewSource(int64(w)))
			var net int64
			for i := 0; i < iters; i++ {
				priv := []byte(fmt.Sprintf("w%d-k%d", w, rng.Intn(16)))
				val := uint64(i + 1)
				if !func() bool { s.Put(priv, val); v, ok := s.Get(priv); return ok && v == val }() {
					t.Errorf("worker %d: private key readback failed", w)
					return
				}
				delta := uint64(1)
				if rng.Intn(2) == 0 {
					delta = ^uint64(0)
					net--
				} else {
					net++
				}
				s.Add([]byte(fmt.Sprintf("hot%d", rng.Intn(hot))), delta)
			}
			nets[w] = net
		}(w)
	}
	wg.Wait()
	var want int64
	for _, n := range nets {
		want += n
	}
	var got int64
	for h := 0; h < hot; h++ {
		v, ok := seed.Get(fmt.Sprintf("hot%d", h))
		if !ok {
			t.Fatalf("hot%d missing", h)
		}
		got += int64(v - addBase)
	}
	if got != want {
		t.Fatalf("hot-key net sum %d want %d", got, want)
	}
}

// TestCombinedCoalescingElidesPWBs is the VSA property at unit scale: a
// window of self-cancelling adds on one hot key persists far fewer lines
// coalesced than with CombineNoCoalesce.
func TestCombinedCoalescingElidesPWBs(t *testing.T) {
	run := func(noCoalesce bool) uint64 {
		st := newTestStore(t, Options{CombineNoCoalesce: noCoalesce})
		s := Open[string](st, Combined)
		s.Put("hot", addBase)
		const n = 256
		ops := make([]Op[string], n)
		for i := range ops {
			d := uint64(1)
			if i%2 == 1 {
				d = ^uint64(0)
			}
			ops[i] = Op[string]{Kind: OpAdd, Key: "hot", Val: d}
		}
		res := make([]Result, n)
		st.Mem().ResetStats()
		s.Apply(ops, res)
		return st.Mem().TotalStats().PWBs
	}
	plain := run(true)
	coalesced := run(false)
	if coalesced*10 > plain {
		t.Fatalf("coalesced window used %d PWBs vs %d uncoalesced; want ≥10x reduction", coalesced, plain)
	}
	if v, ok := Open[string](newTestStore(t, Options{}), Direct).Get("absent"); ok || v != 0 {
		t.Fatal("sanity: absent key visible")
	}
}
