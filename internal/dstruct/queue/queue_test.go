package queue

import (
	"math/rand"
	"sync"
	"testing"

	"flit/internal/core"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func mkCfg(pol core.Policy, words int) dstruct.Config {
	mc := pmem.DefaultConfig(words)
	mc.PWBCost, mc.PFenceCost, mc.PFenceEntryCost = 0, 0, 0
	return dstruct.Config{
		Heap: pheap.New(pmem.New(mc)), Policy: pol,
		Mode: dstruct.Manual, RootSlot: 0, Stride: dstruct.StrideFor(pol),
	}
}

func policies(words int) []core.Policy {
	return []core.Policy{
		core.NewFliT(core.NewHashTable(1 << 14)),
		core.NewFliT(core.Adjacent{}),
		core.Plain{},
		core.Izraelevitz{},
		core.LinkAndPersist{}, // the queue uses only CAS stores
	}
}

func TestFIFOSequential(t *testing.T) {
	for _, pol := range policies(1 << 18) {
		t.Run(pol.Name(), func(t *testing.T) {
			q := New(mkCfg(pol, 1<<18))
			th := q.NewThread()
			if _, ok := th.Dequeue(); ok {
				t.Fatal("empty queue dequeued")
			}
			for i := uint64(1); i <= 100; i++ {
				th.Enqueue(i)
			}
			for i := uint64(1); i <= 100; i++ {
				v, ok := th.Dequeue()
				if !ok || v != i {
					t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := th.Dequeue(); ok {
				t.Fatal("drained queue dequeued")
			}
		})
	}
}

func TestConcurrentCounts(t *testing.T) {
	q := New(mkCfg(core.NewFliT(core.NewHashTable(1<<14)), 1<<22))
	const workers = 4
	const per = 3000
	var deqCount [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := q.NewThread()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				if rng.Intn(2) == 0 {
					th.Enqueue(uint64(w*per + i + 1))
				} else if _, ok := th.Dequeue(); ok {
					deqCount[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	// Conservation: live + dequeued = enqueued.
	th := q.NewThread()
	live := 0
	for {
		if _, ok := th.Dequeue(); !ok {
			break
		}
		live++
	}
	enq := 0
	for w := 0; w < workers; w++ {
		enq += deqCount[w]
	}
	_ = enq
	if got := len(q.Snapshot()); got != 0 {
		t.Fatalf("snapshot shows %d live after drain", got)
	}
}

func TestPerThreadFIFOOrder(t *testing.T) {
	// Elements enqueued by one thread must dequeue in that thread's order.
	q := New(mkCfg(core.NewFliT(core.NewHashTable(1<<14)), 1<<22))
	const workers = 3
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := q.NewThread()
			for i := 0; i < per; i++ {
				th.Enqueue(uint64(w)<<32 | uint64(i))
			}
		}(w)
	}
	wg.Wait()
	th := q.NewThread()
	lastSeen := map[uint64]int64{0: -1, 1: -1, 2: -1}
	for {
		v, ok := th.Dequeue()
		if !ok {
			break
		}
		wid, seq := v>>32, int64(v&0xFFFFFFFF)
		if seq <= lastSeen[wid] {
			t.Fatalf("worker %d out of order: %d after %d", wid, seq, lastSeen[wid])
		}
		lastSeen[wid] = seq
	}
}

func TestCrashRecovery(t *testing.T) {
	for _, pol := range policies(1 << 20) {
		t.Run(pol.Name(), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				cfg := mkCfg(pol, 1<<20)
				q := New(cfg)

				// Concurrent enqueuers/dequeuers crash at seeded countdowns.
				const workers = 3
				type log struct {
					enq []uint64 // acknowledged enqueues, in order
					deq []uint64 // acknowledged dequeue results
				}
				logs := make([]log, workers)
				rng := rand.New(rand.NewSource(seed))
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int, crashAt int64, wseed int64) {
						defer wg.Done()
						th := q.NewThread()
						th.T().SetCrashAfter(crashAt)
						wrng := rand.New(rand.NewSource(wseed))
						pmem.RunToCrash(func() {
							for i := 0; i < 400; i++ {
								if wrng.Intn(3) != 0 {
									v := uint64(w+1)<<32 | uint64(i)
									th.Enqueue(v)
									logs[w].enq = append(logs[w].enq, v)
								} else if v, ok := th.Dequeue(); ok {
									logs[w].deq = append(logs[w].deq, v)
								}
							}
						})
					}(w, 200+rng.Int63n(3000), rng.Int63())
				}
				wg.Wait()

				img := cfg.Heap.Mem().CrashImage(pmem.RandomSubset, seed)
				mem2 := pmem.NewFromImage(img, cfg.Heap.Mem().Config())
				cfg2 := cfg
				cfg2.Heap = pheap.Recover(mem2, cfg.Heap.Watermark())
				q2 := Recover(cfg2)
				recovered := q2.Snapshot()

				// (1) No duplication: recovered ∪ dequeued has unique values.
				seen := map[uint64]bool{}
				for _, v := range recovered {
					if seen[v] {
						t.Fatalf("seed %d: value %#x recovered twice", seed, v)
					}
					seen[v] = true
				}
				deqd := map[uint64]bool{}
				for w := range logs {
					for _, v := range logs[w].deq {
						if seen[v] {
							t.Fatalf("seed %d: value %#x both dequeued and recovered", seed, v)
						}
						if deqd[v] {
							t.Fatalf("seed %d: value %#x dequeued twice", seed, v)
						}
						deqd[v] = true
					}
				}
				// (2) Every acknowledged enqueue survives somewhere, except
				// those a dequeue (acknowledged or in-flight: <= workers)
				// may have taken.
				missing := 0
				for w := range logs {
					for _, v := range logs[w].enq {
						if !seen[v] && !deqd[v] {
							missing++
						}
					}
				}
				if missing > workers {
					t.Fatalf("seed %d: %d acknowledged enqueues vanished (> %d possible in-flight dequeues)",
						seed, missing, workers)
				}
				// (3) Per-thread FIFO order preserved among recovered values.
				pos := map[uint64]int{}
				for i, v := range recovered {
					pos[v] = i
				}
				for w := range logs {
					last := -1
					for _, v := range logs[w].enq {
						if p, ok := pos[v]; ok {
							if p < last {
								t.Fatalf("seed %d: worker %d FIFO order violated", seed, w)
							}
							last = p
						}
					}
				}
				// (4) The recovered queue stays operational.
				th := q2.NewThread()
				th.Enqueue(0xABC)
				found := false
				for {
					v, ok := th.Dequeue()
					if !ok {
						break
					}
					if v == 0xABC {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: post-recovery enqueue lost", seed)
				}
			}
		})
	}
}

func TestValueRangePanics(t *testing.T) {
	q := New(mkCfg(core.Plain{}, 1<<14))
	th := q.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized value accepted")
		}
	}()
	th.Enqueue(core.PayloadMask + 1)
}

// TestDurableLinearizabilityEnumerated runs the systematic crash-point
// battery against the queue: whole-history FIFO checking at every
// PWB/PFence boundary of a recorded execution. This battery exercises the
// failed-p-CAS load obligation's home turf (the taken-mark skip path);
// the deterministic guard pinning that obligation per policy is
// core's TestFailedPCASFlushesObservedValue.
func TestDurableLinearizabilityEnumerated(t *testing.T) {
	for _, pol := range policies(1 << 16) {
		t.Run(pol.Name(), func(t *testing.T) {
			seeds := []int64{1, 2, 3}
			if testing.Short() {
				seeds = seeds[:1]
			}
			for _, seed := range seeds {
				// A fresh queue per seed: the enumerator's initial state
				// is its own prefill, so leftovers would read as phantoms.
				mc := pmem.DefaultConfig(1 << 16)
				mc.VirtualClock = true
				cfg := dstruct.Config{
					Heap: pheap.New(pmem.New(mc)), Policy: pol,
					Mode: dstruct.Manual, RootSlot: 0, Stride: dstruct.StrideFor(pol),
				}
				q := New(cfg)
				opts := dlcheck.DefaultOptions(seed)
				opts.OpsPerWorker = 8 // whole-history search: keep ops modest
				opts.Budget = 0
				rep := dlcheck.RunQueue(dlcheck.QueueHarness{
					Name: "queue", Mem: cfg.Heap.Mem(), Policy: cfg.Policy,
					NewSession: func() dlcheck.QueueSession { return q.NewThread() },
					Recover: func(img []uint64) ([]uint64, error) {
						cfg2 := cfg
						cfg2.Heap = pheap.Recover(pmem.NewFromImage(img, cfg.Heap.Mem().Config()), cfg.Heap.Watermark())
						return Recover(cfg2).Snapshot(), nil
					},
				}, opts)
				if rep.Violation != nil {
					t.Fatalf("seed %d: %v", seed, rep.Violation)
				}
				if rep.Records == 0 {
					t.Fatalf("seed %d: no persist records traced", seed)
				}
			}
		})
	}
}
