// Package queue implements a durable Michael–Scott queue in the style of
// Friedman et al. [PPoPP'18], the example the FliT paper uses (§4) for
// variables that never need the persist<> treatment: the head and tail
// pointers are plain volatile words, while node contents and links are
// p-instructions. After a crash, head and tail are rediscovered by
// scanning from a persisted anchor; dequeues persist a per-node taken
// mark, so completed dequeues never resurrect.
//
// Like the Friedman queue (and the paper's artifact), dequeued nodes are
// not reclaimed: the anchor-to-head prefix must remain walkable for
// recovery. Suitable for the queue-shaped workloads the paper motivates;
// compaction is an orthogonal concern.
package queue

import (
	"sync/atomic"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pmem"
)

// Node field indices (times stride): value, next link, taken mark.
const (
	fVal   = 0
	fNext  = 1
	fTaken = 2
	// NumFields is the number of persisted fields per node.
	NumFields = 3
)

// Queue is a durable lock-free FIFO queue.
type Queue struct {
	cfg dstruct.Config
	// head and tail are *volatile*: the paper's example (§4) of state
	// that never needs persist<> because recovery reconstructs it. They
	// live in plain Go memory, exactly as the C++ version keeps them
	// outside the persist<> template.
	head atomic.Uint64 // node whose next is the first live element
	tail atomic.Uint64 // last known node
}

// New creates an empty queue anchored at cfg's root slot: a persisted
// sentinel node the recovery scan starts from.
func New(cfg dstruct.Config) *Queue {
	t := cfg.Heap.Mem().RegisterThread()
	ar := cfg.Heap.NewArena()
	pol := cfg.Policy
	sentinel := ar.Alloc(cfg.Words(NumFields))
	pol.StorePrivate(t, cfg.Field(sentinel, fVal), 0, core.V)
	pol.StorePrivate(t, cfg.Field(sentinel, fNext), 0, core.V)
	pol.StorePrivate(t, cfg.Field(sentinel, fTaken), 1, core.V) // sentinel counts as taken
	pol.PersistObject(t, sentinel, cfg.Words(NumFields))
	pol.Store(t, cfg.Root(), uint64(sentinel), core.P)
	pol.Complete(t)
	ar.Release()
	t.Release()
	q := &Queue{cfg: cfg}
	q.head.Store(uint64(sentinel))
	q.tail.Store(uint64(sentinel))
	return q
}

// Thread is a per-goroutine handle to the queue.
type Thread struct {
	q  *Queue
	t  *pmem.Thread
	ar interface {
		Alloc(n int) pmem.Addr
	}
}

// NewThread creates a per-goroutine handle.
func (q *Queue) NewThread() *Thread {
	return &Thread{q: q, t: q.cfg.Heap.Mem().RegisterThread(), ar: q.cfg.Heap.NewArena()}
}

// T exposes the pmem thread (stats, crash injection).
func (t *Thread) T() *pmem.Thread { return t.t }

// volatile head/tail accesses: raw instructions, as the paper prescribes
// for variables that never need persistence. We use atomic loads/CAS on
// the Go-side fields via a tiny spinless protocol.

// Enqueue appends v (must fit the word payload). The linking p-CAS is the
// linearization point; the value is persisted before the instruction
// returns, so an acknowledged enqueue always survives.
func (t *Thread) Enqueue(v uint64) {
	if v&^core.PayloadMask != 0 {
		panic("queue: value out of payload range")
	}
	cfg := &t.q.cfg
	pol := cfg.Policy
	node := t.ar.Alloc(cfg.Words(NumFields))
	pol.StorePrivate(t.t, cfg.Field(node, fVal), v, core.V)
	pol.StorePrivate(t.t, cfg.Field(node, fNext), 0, core.V)
	pol.StorePrivate(t.t, cfg.Field(node, fTaken), 0, core.V)
	pol.PersistObject(t.t, node, cfg.Words(NumFields))
	for {
		tail := t.loadTail()
		nextAddr := cfg.Field(tail, fNext)
		next := dstruct.Ptr(pol.Load(t.t, nextAddr, core.V))
		if next != pmem.NilAddr {
			t.casTail(tail, next) // help lagging tail
			continue
		}
		// The link is the durable hand-off: p-CAS flushes and fences.
		if pol.CAS(t.t, nextAddr, 0, uint64(node), core.P) {
			t.casTail(tail, node)
			pol.Complete(t.t)
			return
		}
	}
}

// Dequeue removes and returns the oldest element. The taken-mark p-CAS is
// the linearization point: a completed dequeue is durable, so the element
// cannot resurrect after a crash.
func (t *Thread) Dequeue() (uint64, bool) {
	cfg := &t.q.cfg
	pol := cfg.Policy
	for {
		head := t.loadHead()
		next := dstruct.Ptr(pol.Load(t.t, cfg.Field(head, fNext), core.P))
		if next == pmem.NilAddr {
			pol.Complete(t.t)
			return 0, false
		}
		v := pol.Load(t.t, cfg.Field(next, fVal), core.V) // immutable, persisted at init
		if pol.CAS(t.t, cfg.Field(next, fTaken), 0, 1, core.P) {
			t.casHead(head, next) // volatile cleanup; recovery tolerates lag
			pol.Complete(t.t)
			return v, true
		}
		// Someone else took it; advance head past the taken node and retry.
		t.casHead(head, next)
	}
}

// The head/tail words are Go-side volatile state guarded by atomics on
// the Queue struct. Helpers keep the call sites tidy.

func (t *Thread) loadHead() pmem.Addr { return pmem.Addr(t.q.head.Load()) }
func (t *Thread) loadTail() pmem.Addr { return pmem.Addr(t.q.tail.Load()) }
func (t *Thread) casHead(old, new pmem.Addr) bool {
	return t.q.head.CompareAndSwap(uint64(old), uint64(new))
}
func (t *Thread) casTail(old, new pmem.Addr) bool {
	return t.q.tail.CompareAndSwap(uint64(old), uint64(new))
}

// Snapshot returns the live (un-taken) values in FIFO order (test helper;
// callers quiescent).
func (q *Queue) Snapshot() []uint64 {
	mem := q.cfg.Heap.Mem()
	var out []uint64
	n := dstruct.Ptr(mem.VolatileWord(q.cfg.Root()))
	for n != pmem.NilAddr {
		if mem.VolatileWord(q.cfg.Field(n, fTaken)) == 0 {
			out = append(out, mem.VolatileWord(q.cfg.Field(n, fVal)))
		}
		n = dstruct.Ptr(mem.VolatileWord(q.cfg.Field(n, fNext)))
	}
	return out
}

// Recover rebuilds the queue from the persisted anchor: the chain is
// walked from the sentinel, nodes whose taken mark persisted are skipped,
// and head/tail are re-established. The surviving structure is reused
// in place — nothing is copied, exactly as the Friedman recovery does.
func Recover(cfg dstruct.Config) *Queue {
	mem := cfg.Heap.Mem()
	sentinel := dstruct.Ptr(mem.VolatileWord(cfg.Root()))
	q := &Queue{cfg: cfg}
	q.head.Store(uint64(sentinel))
	q.tail.Store(uint64(sentinel))
	// head: last taken node before the first live one (or the last node);
	// tail: the final node of the chain. A torn link past the last
	// *persisted* link simply ends the scan — those enqueues were pending.
	n := sentinel
	seen := map[pmem.Addr]bool{}
	for {
		next := dstruct.Ptr(mem.VolatileWord(cfg.Field(n, fNext)))
		if next == pmem.NilAddr || seen[next] {
			break
		}
		seen[next] = true
		if mem.VolatileWord(cfg.Field(next, fTaken)) != 0 && q.head.Load() == uint64(n) {
			q.head.Store(uint64(next)) // still in the fully-taken prefix
		}
		n = next
	}
	q.tail.Store(uint64(n))
	return q
}
