// Package dstruct defines the common shape of the four lock-free sets the
// paper evaluates (linked list, hash table, skiplist, BST): a Set built
// over a persistent heap and a core.Policy, operated on through per-thread
// handles, with a durability Mode choosing which instructions are p- and
// which are v-instructions.
package dstruct

import (
	"fmt"

	"flit/internal/core"
	"flit/internal/pheap"
	"flit/internal/pmem"
	"flit/internal/reclaim"
)

// Mode selects the durability method applied to a data structure — the
// three methods compared throughout the paper's evaluation.
type Mode int

const (
	// Automatic makes every instruction a p-instruction: Theorem 3.1's
	// transformation of a linearizable structure into a durably
	// linearizable one with zero algorithmic insight.
	Automatic Mode = iota
	// NVTraverse applies the NVtraverse methodology [Friedman et al.,
	// PLDI'20]: loads in the read-only traversal phase are v-instructions;
	// at the traversal/critical transition the last-read links are
	// re-examined with p-loads; critical-phase instructions are persisted.
	NVTraverse
	// Manual is the hand-tuned method in the style of David et al.
	// [ATC'18]: beyond NVtraverse, instructions whose loss a recovery
	// procedure can repair (skiplist towers, BST cleanup tags) stay
	// volatile.
	Manual
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Automatic:
		return "automatic"
	case NVTraverse:
		return "nvtraverse"
	case Manual:
		return "manual"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all durability methods, in the paper's order.
var Modes = []Mode{Automatic, NVTraverse, Manual}

// ModeByName resolves a durability-mode name as printed by Mode.String.
func ModeByName(name string) (Mode, bool) {
	for _, m := range Modes {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// KeyMax bounds user keys (exclusive): keys at or above it are reserved
// for sentinels and must fit the instrumented word payload.
const KeyMax = uint64(1) << 48

// Config assembles everything a data structure instance needs.
type Config struct {
	Heap   *pheap.Heap
	Policy core.Policy
	Mode   Mode
	// RootSlot selects which persistent root (pheap.Root) anchors the
	// structure; recovery looks there.
	RootSlot int
	// RootAddr, when non-zero, anchors the structure at an explicit word
	// address instead of a root-region slot. The store's online shard
	// splitting uses it: the heap's root region is sized once at
	// creation, so shards grown later anchor in a persisted directory
	// object whose slot addresses recovery reads from the superblock.
	RootAddr pmem.Addr
	// Stride is the distance in words between consecutive persisted
	// fields of a node: 1 normally, core.AdjacentStride under the
	// flit-adjacent counter placement (each field carries its counter in
	// the next word). Use StrideFor.
	Stride int
}

// StrideFor returns the field stride a policy requires.
func StrideFor(p core.Policy) int {
	if f, ok := p.(*core.FliT); ok {
		if _, adj := f.C.(core.Adjacent); adj {
			return core.AdjacentStride
		}
	}
	return 1
}

// Field returns the address of persisted field i of the object at base.
func (c *Config) Field(base pmem.Addr, i int) pmem.Addr {
	return base + pmem.Addr(i*c.Stride)
}

// Words returns the allocation size of an object with n persisted fields.
func (c *Config) Words(n int) int { return n * c.Stride }

// Root returns the address of the structure's root anchor word: the
// explicit RootAddr when set, the RootSlot root-region word otherwise.
func (c *Config) Root() pmem.Addr {
	if c.RootAddr != 0 {
		return c.RootAddr
	}
	return c.Heap.Root(c.RootSlot)
}

// Ctx bundles the per-thread execution state: the pmem thread (write-back
// queue, stats), a heap arena, and an epoch-reclamation handle.
type Ctx struct {
	T  *pmem.Thread
	Ar *pheap.Arena
	H  *reclaim.Handle
}

// NewCtx registers a new thread context against the heap and domain.
func (c *Config) NewCtx(dom *reclaim.Domain) Ctx {
	ar := c.Heap.NewArena()
	return Ctx{T: c.Heap.Mem().RegisterThread(), Ar: ar, H: dom.NewHandle(ar)}
}

// ThreadOpts configures a per-goroutine structure handle — the single
// options-struct constructor argument that replaced the
// NewThread/NewThreadWith/NewThreadWithPolicy sprawl. Zero values pick
// the structure's own defaults, so Open(ThreadOpts{}) is the standalone
// handle NewThread returns, and each field overrides one piece of the
// execution context independently.
type ThreadOpts struct {
	// T is the pmem thread the handle issues instructions through (one
	// write-back queue, one statistics record, one crash countdown). A
	// goroutine operating several structures at once — a store session
	// spanning N shards — must pass the same T to every handle, exactly
	// as a single core would. Nil registers a fresh thread.
	T *pmem.Thread
	// Arena is the persistent-heap allocation arena. Nil opens a fresh
	// one; sessions spanning structures share one arena alongside T.
	Arena *pheap.Arena
	// Policy overrides the structure's configured policy for this handle.
	// It must be layout-compatible (same stride) — the intended use is a
	// per-session wrapper over the configured policy, such as the
	// deferred group-commit skeleton (core.NewDeferred). Nil keeps the
	// structure's policy.
	Policy core.Policy
}

// SetThread is a per-thread handle to a concurrent set. Handles are not
// safe for concurrent use; create one per goroutine.
type SetThread interface {
	// Insert adds key→val if key is absent; reports whether it inserted.
	Insert(key, val uint64) bool
	// Delete removes key if present; reports whether it removed.
	Delete(key uint64) bool
	// Contains reports whether key is present.
	Contains(key uint64) bool
}

// Set is a concurrent set instance.
type Set interface {
	// NewThread creates a per-goroutine operation handle.
	NewThread() SetThread
	// Name identifies the data structure (e.g. "list").
	Name() string
}

// Word-payload helpers shared by the structures.

// Ptr extracts the node address from a raw link word.
func Ptr(raw uint64) pmem.Addr { return pmem.Addr(raw & core.PayloadMask) }

// Marked reports the Harris deletion mark.
func Marked(raw uint64) bool { return raw&core.MarkBit != 0 }

// Flagged reports the NM-BST flag bit.
func Flagged(raw uint64) bool { return raw&core.FlagBit != 0 }

// Tagged reports the NM-BST tag bit.
func Tagged(raw uint64) bool { return raw&core.TagBit != 0 }
