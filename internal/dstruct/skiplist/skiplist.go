// Package skiplist implements a Fraser-style lock-free skiplist [Fraser,
// 2003], the paper's third benchmark structure. Deletion marks a node's
// next pointers top-down, bottom last (the linearization point); traversals
// unlink marked nodes per level.
//
// Durability methods map naturally onto the tower structure: the bottom
// level *is* the set, so Automatic persists everything, NVTraverse
// persists the critical phase (bottom link plus tower writes), and Manual
// leaves all tower writes volatile — after a crash the index is rebuilt
// from the bottom level, exactly the hand-tuned construction of David et
// al. that the paper benchmarks.
//
// Nodes are not recycled: a skiplist node may remain reachable at upper
// levels after its bottom-level unlink, so safe reuse would need full
// tower unlinking guarantees; like the paper's artifact (ssmem without
// GC), deleted nodes leak for the run's duration. In exchange, Manual's
// volatile tower unlinks are safe: a stale persistent tower link can only
// point at an intact, never-reused marked node, which recovery discards.
package skiplist

import (
	"math/rand"
	"sync/atomic"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/reclaim"
)

// MaxLevel is the tallest tower (supports ~2^20 keys comfortably).
const MaxLevel = 20

// Node field indices: 0 key, 1 value, 2 level, 3+i next[i].
const (
	fKey   = 0
	fVal   = 1
	fLevel = 2
	fNext0 = 3
)

// nodeFields returns the persisted field count of a node with the given
// tower height.
func nodeFields(level int) int { return fNext0 + level }

// SkipList is a durable lock-free skiplist set.
type SkipList struct {
	cfg  dstruct.Config
	dom  *reclaim.Domain
	head pmem.Addr
}

var seedCounter atomic.Int64

// New creates an empty skiplist anchored at cfg's root slot: a full-height
// head tower, persisted, with the root pointing at it.
func New(cfg dstruct.Config) *SkipList {
	t := cfg.Heap.Mem().RegisterThread()
	ar := cfg.Heap.NewArena()
	pol := cfg.Policy
	head := ar.Alloc(cfg.Words(nodeFields(MaxLevel)))
	pol.StorePrivate(t, cfg.Field(head, fKey), 0, core.V)
	pol.StorePrivate(t, cfg.Field(head, fVal), 0, core.V)
	pol.StorePrivate(t, cfg.Field(head, fLevel), MaxLevel, core.V)
	for i := 0; i < MaxLevel; i++ {
		pol.StorePrivate(t, cfg.Field(head, fNext0+i), 0, core.V)
	}
	pol.PersistObject(t, head, cfg.Words(nodeFields(MaxLevel)))
	pol.Store(t, cfg.Root(), uint64(head), core.P)
	pol.Complete(t)
	ar.Release()
	t.Release()
	return Attach(cfg)
}

// Attach wraps the skiplist persisted at cfg's root slot.
func Attach(cfg dstruct.Config) *SkipList {
	head := dstruct.Ptr(cfg.Heap.Mem().VolatileWord(cfg.Root()))
	return &SkipList{cfg: cfg, dom: reclaim.NewDomain(), head: head}
}

// Name returns "skiplist".
func (s *SkipList) Name() string { return "skiplist" }

// Thread is a per-goroutine handle to the skiplist.
type Thread struct {
	s   *SkipList
	c   dstruct.Ctx
	rng *rand.Rand
}

// NewThread creates a per-goroutine handle.
func (s *SkipList) NewThread() dstruct.SetThread { return s.newThread() }

func (s *SkipList) newThread() *Thread {
	return &Thread{
		s:   s,
		c:   s.cfg.NewCtx(s.dom),
		rng: rand.New(rand.NewSource(0x5eed + seedCounter.Add(1))),
	}
}

// Ctx exposes the thread's execution context (stats, crash injection).
func (t *Thread) Ctx() dstruct.Ctx { return t.c }

// randLevel draws a geometric(1/2) tower height in [1, MaxLevel].
func (t *Thread) randLevel() int {
	lvl := 1
	for lvl < MaxLevel && t.rng.Intn(2) == 0 {
		lvl++
	}
	return lvl
}

func (s *SkipList) travP() bool { return s.cfg.Mode == dstruct.Automatic }

// towerP reports whether tower (level >= 1) writes persist: Manual leaves
// the index volatile and rebuilds it during recovery.
func (s *SkipList) towerP() bool { return s.cfg.Mode != dstruct.Manual }

func (t *Thread) nextField(node pmem.Addr, lvl int) pmem.Addr {
	return t.s.cfg.Field(node, fNext0+lvl)
}

// find returns, per level, the address of the link word preceding key and
// the first node with key >= key, unlinking marked nodes on the way
// (Harris helping per level). Bottom-level unlinks persist in every mode:
// the bottom list is the durable set.
func (t *Thread) find(key uint64) (predLinks, succs [MaxLevel]pmem.Addr) {
	cfg := &t.s.cfg
	pol := cfg.Policy
	travP := t.s.travP()
retry:
	pred := t.s.head
	for lvl := MaxLevel - 1; lvl >= 0; lvl-- {
		link := t.nextField(pred, lvl)
		curr := dstruct.Ptr(pol.Load(t.c.T, link, travP))
		for curr != pmem.NilAddr {
			raw := pol.Load(t.c.T, t.nextField(curr, lvl), travP)
			if dstruct.Marked(raw) {
				unlinkP := core.P
				if lvl > 0 && !t.s.towerP() {
					unlinkP = core.V
				}
				if !pol.CAS(t.c.T, link, uint64(curr), uint64(dstruct.Ptr(raw)), unlinkP) {
					goto retry
				}
				curr = dstruct.Ptr(raw)
				continue
			}
			k := pol.Load(t.c.T, cfg.Field(curr, fKey), travP)
			if k >= key {
				break
			}
			pred = curr
			link = t.nextField(curr, lvl)
			curr = dstruct.Ptr(raw)
		}
		predLinks[lvl] = link
		succs[lvl] = curr
	}
	return predLinks, succs
}

func (t *Thread) transition(a pmem.Addr) {
	if t.s.cfg.Mode != dstruct.Automatic {
		t.s.cfg.Policy.Load(t.c.T, a, core.P)
	}
}

// Insert adds key→val if absent. The bottom-level link CAS linearizes (and
// persists); tower links follow best-effort.
func (t *Thread) Insert(key, val uint64) bool {
	if key >= dstruct.KeyMax {
		panic("skiplist: key out of range")
	}
	cfg := &t.s.cfg
	pol := cfg.Policy
	topLevel := t.randLevel()
	t.c.H.Enter()
	for {
		predLinks, succs := t.find(key)
		if succs[0] != pmem.NilAddr &&
			pol.Load(t.c.T, cfg.Field(succs[0], fKey), t.s.travP()) == key {
			t.transition(predLinks[0])
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return false
		}
		t.transition(predLinks[0])
		node := t.c.Ar.Alloc(cfg.Words(nodeFields(topLevel)))
		t.initNode(node, key, val, topLevel, &succs)
		if !pol.CAS(t.c.T, predLinks[0], uint64(succs[0]), uint64(node), core.P) {
			t.c.Ar.Free(node, cfg.Words(nodeFields(topLevel))) // never shared
			continue
		}
		t.linkTowers(node, key, topLevel, &predLinks, &succs)
		pol.Complete(t.c.T)
		t.c.H.Exit()
		return true
	}
}

// initNode writes a fresh node. See list.initNode for the Automatic-vs-
// optimized distinction.
func (t *Thread) initNode(node pmem.Addr, key, val uint64, topLevel int, succs *[MaxLevel]pmem.Addr) {
	cfg := &t.s.cfg
	pol := cfg.Policy
	if cfg.Mode == dstruct.Automatic {
		pol.Store(t.c.T, cfg.Field(node, fKey), key, core.P)
		pol.Store(t.c.T, cfg.Field(node, fVal), val, core.P)
		pol.Store(t.c.T, cfg.Field(node, fLevel), uint64(topLevel), core.P)
		for i := 0; i < topLevel; i++ {
			pol.Store(t.c.T, t.nextField(node, i), uint64(succs[i]), core.P)
		}
		return
	}
	pol.StorePrivate(t.c.T, cfg.Field(node, fKey), key, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(node, fVal), val, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(node, fLevel), uint64(topLevel), core.V)
	for i := 0; i < topLevel; i++ {
		pol.StorePrivate(t.c.T, t.nextField(node, i), uint64(succs[i]), core.V)
	}
	pol.PersistObject(t.c.T, node, cfg.Words(nodeFields(topLevel)))
}

// linkTowers links node into levels 1..topLevel-1, abandoning a level (and
// the rest) if the node gets deleted concurrently — the standard
// best-effort index maintenance.
func (t *Thread) linkTowers(node pmem.Addr, key uint64, topLevel int, predLinks, succs *[MaxLevel]pmem.Addr) {
	cfg := &t.s.cfg
	pol := cfg.Policy
	towerP := t.s.towerP()
	for lvl := 1; lvl < topLevel; lvl++ {
		for {
			if dstruct.Marked(pol.Load(t.c.T, t.nextField(node, 0), core.V)) {
				return // node deleted; stop indexing it
			}
			if pol.CAS(t.c.T, predLinks[lvl], uint64(succs[lvl]), uint64(node), towerP) {
				break
			}
			pl, sc := t.find(key)
			if sc[0] != node {
				return // removed (or superseded); stop
			}
			*predLinks, *succs = pl, sc
			// Refresh our own forward pointer for this level; if the node
			// got marked meanwhile, stop.
			old := pol.Load(t.c.T, t.nextField(node, lvl), core.V)
			if dstruct.Marked(old) {
				return
			}
			if old != uint64(succs[lvl]) &&
				!pol.CAS(t.c.T, t.nextField(node, lvl), old, uint64(succs[lvl]), towerP) {
				return
			}
		}
	}
}

// Delete removes key if present: towers are marked top-down, then the
// bottom-level mark linearizes (persisted in every mode).
func (t *Thread) Delete(key uint64) bool {
	cfg := &t.s.cfg
	pol := cfg.Policy
	travP := t.s.travP()
	towerP := t.s.towerP()
	t.c.H.Enter()
	for {
		predLinks, succs := t.find(key)
		curr := succs[0]
		if curr == pmem.NilAddr || pol.Load(t.c.T, cfg.Field(curr, fKey), travP) != key {
			t.transition(predLinks[0])
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return false
		}
		t.transition(predLinks[0])
		level := int(pol.Load(t.c.T, cfg.Field(curr, fLevel), travP))
		for lvl := level - 1; lvl >= 1; lvl-- {
			for {
				raw := pol.Load(t.c.T, t.nextField(curr, lvl), travP)
				if dstruct.Marked(raw) {
					break
				}
				if pol.CAS(t.c.T, t.nextField(curr, lvl), raw, raw|core.MarkBit, towerP) {
					break
				}
			}
		}
		for {
			raw := pol.Load(t.c.T, t.nextField(curr, 0), travP)
			if dstruct.Marked(raw) {
				// A concurrent delete linearized first.
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return false
			}
			if pol.CAS(t.c.T, t.nextField(curr, 0), raw, raw|core.MarkBit, core.P) {
				t.find(key) // physical cleanup
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return true
			}
		}
	}
}

// Contains reports whether key is present (wait-free: skips marked nodes
// without unlinking).
func (t *Thread) Contains(key uint64) bool {
	cfg := &t.s.cfg
	pol := cfg.Policy
	travP := t.s.travP()
	t.c.H.Enter()
	pred := t.s.head
	var link pmem.Addr
	for lvl := MaxLevel - 1; lvl >= 0; lvl-- {
		link = t.nextField(pred, lvl)
		curr := dstruct.Ptr(pol.Load(t.c.T, link, travP))
		for curr != pmem.NilAddr {
			raw := pol.Load(t.c.T, t.nextField(curr, lvl), travP)
			if dstruct.Marked(raw) {
				curr = dstruct.Ptr(raw)
				continue
			}
			k := pol.Load(t.c.T, cfg.Field(curr, fKey), travP)
			if k < key {
				pred = curr
				link = t.nextField(curr, lvl)
				curr = dstruct.Ptr(raw)
				continue
			}
			if lvl == 0 && k == key {
				t.transition(link)
				t.transition(t.nextField(curr, 0))
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return true
			}
			break
		}
	}
	t.transition(link)
	pol.Complete(t.c.T)
	t.c.H.Exit()
	return false
}

// Snapshot reads the unmarked bottom-level pairs (test helper).
func (s *SkipList) Snapshot() map[uint64]uint64 {
	mem := s.cfg.Heap.Mem()
	out := make(map[uint64]uint64)
	curr := dstruct.Ptr(mem.VolatileWord(s.cfg.Field(s.head, fNext0)))
	for curr != pmem.NilAddr {
		raw := mem.VolatileWord(s.cfg.Field(curr, fNext0))
		if !dstruct.Marked(raw) {
			out[mem.VolatileWord(s.cfg.Field(curr, fKey))] = mem.VolatileWord(s.cfg.Field(curr, fVal))
		}
		curr = dstruct.Ptr(raw)
	}
	return out
}

// Recover rebuilds a durably consistent skiplist from the bottom level
// persisted at cfg's root slot: surviving pairs are gathered from the
// bottom list (towers are untrusted — Manual never persisted them) and
// re-inserted into a fresh skiplist at the same root.
//
//flit:rawpersist recovery is single-threaded; the rebuild fences once after re-insertion
func Recover(cfg dstruct.Config) *SkipList {
	mem := cfg.Heap.Mem()
	oldHead := dstruct.Ptr(mem.VolatileWord(cfg.Root()))
	pairs := make(map[uint64]uint64)
	seen := make(map[pmem.Addr]bool)
	curr := dstruct.Ptr(mem.VolatileWord(cfg.Field(oldHead, fNext0)))
	for curr != pmem.NilAddr && !seen[curr] {
		seen[curr] = true
		raw := mem.VolatileWord(cfg.Field(curr, fNext0))
		if !dstruct.Marked(raw) {
			pairs[mem.VolatileWord(cfg.Field(curr, fKey))] = mem.VolatileWord(cfg.Field(curr, fVal))
		}
		curr = dstruct.Ptr(raw)
	}
	s := New(cfg) // fresh head, root overwritten durably
	th := s.newThread()
	for k, v := range pairs {
		th.Insert(k, v)
	}
	th.c.T.PFence()
	return s
}
