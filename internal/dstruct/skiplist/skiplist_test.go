package skiplist

import (
	"testing"

	"flit/internal/dstruct"
	"flit/internal/dstruct/dstest"
	"flit/internal/pmem"
)

func factory(cfg dstruct.Config) dstest.Instance {
	s := New(cfg)
	return dstest.Instance{Set: s, Cfg: cfg, Snapshot: s.Snapshot}
}

func recoverer(cfg dstruct.Config) dstest.Instance {
	s := Recover(cfg)
	return dstest.Instance{Set: s, Cfg: cfg, Snapshot: s.Snapshot}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, cfg := range dstest.ShortConfigs(dstest.Configs(1<<20, true)) {
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.SequentialModel(t, cfg, factory, 96, dstest.Scale(4000, 8))
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<22, true) {
		if cfg.Policy.Name() != "flit-HT(64KB)" && cfg.Policy.Name() != "link-and-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.ConcurrentStress(t, cfg, factory, 64, 4, dstest.Scale(4000, 4))
		})
	}
}

func TestCleanRecovery(t *testing.T) {
	for _, cfg := range dstest.ShortConfigs(dstest.Configs(1<<20, true)) {
		if cfg.Policy.Name() == "no-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.CleanRecovery(t, cfg, factory, recoverer, 300)
		})
	}
}

// TestTowersStayConsistent verifies the index property after heavy churn:
// every node linked at level i is linked at level 0 or marked.
func TestTowersStayConsistent(t *testing.T) {
	cfg := dstest.Configs(1<<22, false)[0]
	s := New(cfg)
	th := s.newThread()
	for i := 0; i < 3000; i++ {
		k := uint64(i % 200)
		if i%3 == 0 {
			th.Delete(k)
		} else {
			th.Insert(k, uint64(i))
		}
	}
	mem := cfg.Heap.Mem()
	// Collect unmarked bottom-level nodes.
	bottom := map[pmem.Addr]bool{}
	curr := dstruct.Ptr(mem.VolatileWord(cfg.Field(s.head, fNext0)))
	for curr != pmem.NilAddr {
		raw := mem.VolatileWord(cfg.Field(curr, fNext0))
		if !dstruct.Marked(raw) {
			bottom[curr] = true
		}
		curr = dstruct.Ptr(raw)
	}
	for lvl := 1; lvl < MaxLevel; lvl++ {
		curr := dstruct.Ptr(mem.VolatileWord(cfg.Field(s.head, fNext0+lvl)))
		for curr != pmem.NilAddr {
			raw := mem.VolatileWord(cfg.Field(curr, fNext0+lvl))
			if !dstruct.Marked(mem.VolatileWord(cfg.Field(curr, fNext0))) && !bottom[curr] {
				t.Fatalf("node %d linked at level %d but missing from bottom", curr, lvl)
			}
			curr = dstruct.Ptr(raw)
		}
	}
}

func TestRandLevelDistribution(t *testing.T) {
	cfg := dstest.Configs(1<<16, false)[0]
	s := New(cfg)
	th := s.newThread()
	counts := make([]int, MaxLevel+1)
	for i := 0; i < 10000; i++ {
		l := th.randLevel()
		if l < 1 || l > MaxLevel {
			t.Fatalf("randLevel out of range: %d", l)
		}
		counts[l]++
	}
	if counts[1] < 4000 || counts[1] > 6000 {
		t.Fatalf("level-1 frequency %d of 10000, want ~5000 (geometric 1/2)", counts[1])
	}
}

func TestRepeatedCrashes(t *testing.T) {
	cfg := dstest.Configs(1<<22, false)[0]
	dstest.RepeatedCrashes(t, cfg, factory, recoverer, dstest.Scale(4, 2))
}

// TestDurableLinearizabilityEnumerated runs the systematic crash-point
// battery: every (budgeted) PWB/PFence boundary of a recorded execution
// must recover to a state some linearization explains.
func TestDurableLinearizabilityEnumerated(t *testing.T) {
	for _, cfg := range dstest.DLConfigs(true) {
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.DLCheck(t, "skiplist", cfg, factory, recoverer, 1)
		})
	}
}
