package bst

import (
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/dstest"
)

func factory(cfg dstruct.Config) dstest.Instance {
	b := New(cfg)
	return dstest.Instance{Set: b, Cfg: cfg, Snapshot: b.Snapshot}
}

func recoverer(cfg dstruct.Config) dstest.Instance {
	b := Recover(cfg)
	return dstest.Instance{Set: b, Cfg: cfg, Snapshot: b.Snapshot}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, cfg := range dstest.ShortConfigs(dstest.Configs(1<<20, false)) {
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.SequentialModel(t, cfg, factory, 96, dstest.Scale(4000, 8))
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<22, false) {
		if cfg.Policy.Name() != "flit-HT(64KB)" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.ConcurrentStress(t, cfg, factory, 64, 4, dstest.Scale(4000, 4))
		})
	}
}

func TestCleanRecovery(t *testing.T) {
	for _, cfg := range dstest.ShortConfigs(dstest.Configs(1<<20, false)) {
		if cfg.Policy.Name() == "no-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.CleanRecovery(t, cfg, factory, recoverer, 300)
		})
	}
}

func TestLinkAndPersistRejected(t *testing.T) {
	cfg := dstest.Configs(1<<16, false)[0]
	cfg.Policy = core.LinkAndPersist{}
	defer func() {
		if recover() == nil {
			t.Fatal("BST accepted link-and-persist; the paper reports it inapplicable")
		}
	}()
	New(cfg)
}

func TestGet(t *testing.T) {
	cfg := dstest.Configs(1<<18, false)[0]
	b := New(cfg)
	th := b.newThread()
	th.Insert(10, 100)
	th.Insert(20, 200)
	if v, ok := th.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = (%d,%v), want (100,true)", v, ok)
	}
	if _, ok := th.Get(15); ok {
		t.Fatal("Get(15) found a missing key")
	}
	th.Delete(10)
	if _, ok := th.Get(10); ok {
		t.Fatal("Get(10) found a deleted key")
	}
}

// TestExternalTreeInvariants checks BST ordering and external-tree shape
// after churn: every internal node has two children; leaves partition the
// key space by the internal keys.
func TestExternalTreeInvariants(t *testing.T) {
	cfg := dstest.Configs(1<<20, false)[0]
	b := New(cfg)
	th := b.newThread()
	for i := 0; i < 3000; i++ {
		k := uint64((i * 37) % 500)
		if i%3 == 0 {
			th.Delete(k)
		} else {
			th.Insert(k, k)
		}
	}
	mem := cfg.Heap.Mem()
	var walk func(n uint64, lo, hi uint64)
	walk = func(raw uint64, lo, hi uint64) {
		n := dstruct.Ptr(raw)
		if n == 0 {
			t.Fatal("nil child of internal node (external tree violated)")
		}
		k := mem.VolatileWord(cfg.Field(n, fKey))
		if k < lo || k > hi {
			t.Fatalf("key %d outside [%d,%d]", k, lo, hi)
		}
		l := mem.VolatileWord(cfg.Field(n, fLeft))
		r := mem.VolatileWord(cfg.Field(n, fRight))
		lp, rp := dstruct.Ptr(l), dstruct.Ptr(r)
		if (lp == 0) != (rp == 0) {
			t.Fatalf("internal node %d with exactly one child", n)
		}
		if lp != 0 {
			if k == 0 {
				t.Fatal("internal key 0 cannot split")
			}
			walk(l, lo, k-1)
			walk(r, k, hi)
		}
	}
	walk(uint64(b.r), 0, inf2)
}

func TestRepeatedCrashes(t *testing.T) {
	cfg := dstest.Configs(1<<22, false)[0]
	dstest.RepeatedCrashes(t, cfg, factory, recoverer, dstest.Scale(4, 2))
}

// TestDurableLinearizabilityEnumerated runs the systematic crash-point
// battery: every (budgeted) PWB/PFence boundary of a recorded execution
// must recover to a state some linearization explains.
func TestDurableLinearizabilityEnumerated(t *testing.T) {
	for _, cfg := range dstest.DLConfigs(false) {
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.DLCheck(t, "bst", cfg, factory, recoverer, 1)
		})
	}
}
