// Package bst implements the Natarajan–Mittal lock-free external binary
// search tree [PPoPP'14], the paper's second benchmark structure. Keys
// live in leaves; internal nodes route. Deletion is two-phase: injection
// flags the parent→leaf edge, then cleanup tags the sibling edge (freezing
// it) and swings the ancestor's edge to the sibling, removing leaf and
// parent in one CAS.
//
// The NM algorithm uses both spare bits of every child word (flag + tag),
// which is exactly why the paper reports the link-and-persist technique as
// inapplicable to this BST; New rejects that policy.
//
// Durability: the decisive CASes — an insert's link, a delete's flag
// (intent) and swing (linearization + physical removal) — are p-stores in
// every mode. The swing must persist before parent and leaf are retired
// (reuse safety). Manual leaves the tag freeze and all cleanup loads
// volatile: a crash image may carry stale tags and flags, and recovery
// discards both (a flagged leaf belongs to a delete that either completed
// — in which case the persisted swing already detached it — or was still
// pending, which durable linearizability allows to take effect).
package bst

import (
	"sort"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/reclaim"
)

// Node field indices. Internal nodes use key/left/right; leaves use
// key/value and have nil children.
const (
	fKey   = 0
	fVal   = 1
	fLeft  = 2
	fRight = 3
	// NumFields is the number of persisted fields per node.
	NumFields = 4
)

// Sentinel keys, above every user key (dstruct.KeyMax is the exclusive
// user bound): the NM initialization uses three infinities ∞₀ < ∞₁ < ∞₂.
const (
	inf0 = dstruct.KeyMax     // S's initial left leaf
	inf1 = dstruct.KeyMax + 1 // S sentinel
	inf2 = dstruct.KeyMax + 2 // R sentinel
)

// BST is a durable lock-free external binary search tree.
type BST struct {
	cfg  dstruct.Config
	dom  *reclaim.Domain
	r, s pmem.Addr // immutable sentinel internal nodes
}

// New creates an empty tree anchored at cfg's root slot: sentinels R and S
// with three infinity leaves, persisted, root pointing at R. It rejects
// policies without FAA/Exchange? No — it rejects nothing except
// link-and-persist, whose stolen bit collides with the NM tag bits.
func New(cfg dstruct.Config) *BST {
	if _, lap := cfg.Policy.(core.LinkAndPersist); lap {
		panic("bst: link-and-persist is inapplicable — the NM-BST uses every spare word bit (paper §6.4)")
	}
	t := cfg.Heap.Mem().RegisterThread()
	ar := cfg.Heap.NewArena()
	pol := cfg.Policy
	mkNode := func(key, val uint64, left, right pmem.Addr) pmem.Addr {
		n := ar.Alloc(cfg.Words(NumFields))
		pol.StorePrivate(t, cfg.Field(n, fKey), key, core.V)
		pol.StorePrivate(t, cfg.Field(n, fVal), val, core.V)
		pol.StorePrivate(t, cfg.Field(n, fLeft), uint64(left), core.V)
		pol.StorePrivate(t, cfg.Field(n, fRight), uint64(right), core.V)
		pol.PersistObject(t, n, cfg.Words(NumFields))
		return n
	}
	l0 := mkNode(inf0, 0, 0, 0)
	l1 := mkNode(inf1, 0, 0, 0)
	l2 := mkNode(inf2, 0, 0, 0)
	s := mkNode(inf1, 0, l0, l1)
	r := mkNode(inf2, 0, s, l2)
	pol.Store(t, cfg.Root(), uint64(r), core.P)
	pol.Complete(t)
	ar.Release()
	t.Release()
	return Attach(cfg)
}

// Attach wraps the tree persisted at cfg's root slot.
func Attach(cfg dstruct.Config) *BST {
	mem := cfg.Heap.Mem()
	r := dstruct.Ptr(mem.VolatileWord(cfg.Root()))
	s := dstruct.Ptr(mem.VolatileWord(cfg.Field(r, fLeft)))
	return &BST{cfg: cfg, dom: reclaim.NewDomain(), r: r, s: s}
}

// Name returns "bst".
func (b *BST) Name() string { return "bst" }

// Thread is a per-goroutine handle to the tree.
type Thread struct {
	b *BST
	c dstruct.Ctx
}

// NewThread creates a per-goroutine handle.
func (b *BST) NewThread() dstruct.SetThread { return b.newThread() }

func (b *BST) newThread() *Thread { return &Thread{b: b, c: b.cfg.NewCtx(b.dom)} }

// Ctx exposes the thread's execution context (stats, crash injection).
func (t *Thread) Ctx() dstruct.Ctx { return t.c }

func (b *BST) travP() bool { return b.cfg.Mode == dstruct.Automatic }

// cleanupP is the pflag of loads and of the tag CAS inside cleanup: the
// NVtraverse methodology persists the whole critical phase; Manual lets
// recovery repair lost tags.
func (b *BST) cleanupP() bool { return b.cfg.Mode != dstruct.Manual }

// childField returns the address of node's child edge toward key.
func (t *Thread) childField(node pmem.Addr, nodeKey, key uint64) pmem.Addr {
	if key < nodeKey {
		return t.b.cfg.Field(node, fLeft)
	}
	return t.b.cfg.Field(node, fRight)
}

// seekRec is the NM seek record: ancestor's edge to successor is the last
// untagged edge on the path; parent's edge to leaf is the last edge.
type seekRec struct {
	ancestor, successor, parent, leaf pmem.Addr
	leafKey                           uint64
}

// seek walks from the sentinels to the leaf for key.
func (t *Thread) seek(key uint64) seekRec {
	cfg := &t.b.cfg
	pol := cfg.Policy
	travP := t.b.travP()
	sr := seekRec{ancestor: t.b.r, successor: t.b.s, parent: t.b.s}
	parentRaw := pol.Load(t.c.T, cfg.Field(t.b.s, fLeft), travP) // key < inf1: always left of S
	sr.leaf = dstruct.Ptr(parentRaw)
	sr.leafKey = pol.Load(t.c.T, cfg.Field(sr.leaf, fKey), travP)
	curRaw := pol.Load(t.c.T, t.childField(sr.leaf, sr.leafKey, key), travP)
	for {
		cur := dstruct.Ptr(curRaw)
		if cur == pmem.NilAddr {
			return sr
		}
		if !dstruct.Tagged(parentRaw) {
			sr.ancestor = sr.parent
			sr.successor = sr.leaf
		}
		sr.parent = sr.leaf
		sr.leaf = cur
		sr.leafKey = pol.Load(t.c.T, cfg.Field(cur, fKey), travP)
		parentRaw = curRaw
		curRaw = pol.Load(t.c.T, t.childField(cur, sr.leafKey, key), travP)
	}
}

func (t *Thread) transition(a pmem.Addr) {
	if t.b.cfg.Mode != dstruct.Automatic {
		t.b.cfg.Policy.Load(t.c.T, a, core.P)
	}
}

// initNode writes a fresh node (see list.initNode for the mode split).
func (t *Thread) initNode(n pmem.Addr, key, val uint64, left, right pmem.Addr) {
	cfg := &t.b.cfg
	pol := cfg.Policy
	if cfg.Mode == dstruct.Automatic {
		pol.Store(t.c.T, cfg.Field(n, fKey), key, core.P)
		pol.Store(t.c.T, cfg.Field(n, fVal), val, core.P)
		pol.Store(t.c.T, cfg.Field(n, fLeft), uint64(left), core.P)
		pol.Store(t.c.T, cfg.Field(n, fRight), uint64(right), core.P)
		return
	}
	pol.StorePrivate(t.c.T, cfg.Field(n, fKey), key, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(n, fVal), val, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(n, fLeft), uint64(left), core.V)
	pol.StorePrivate(t.c.T, cfg.Field(n, fRight), uint64(right), core.V)
	pol.PersistObject(t.c.T, n, cfg.Words(NumFields))
}

// Insert adds key→val if absent.
func (t *Thread) Insert(key, val uint64) bool {
	if key >= dstruct.KeyMax {
		panic("bst: key out of range")
	}
	cfg := &t.b.cfg
	pol := cfg.Policy
	t.c.H.Enter()
	for {
		sr := t.seek(key)
		pkey := pol.Load(t.c.T, cfg.Field(sr.parent, fKey), t.b.travP())
		edge := t.childField(sr.parent, pkey, key)
		if sr.leafKey == key {
			t.transition(edge)
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return false
		}
		t.transition(edge)
		newLeaf := t.c.Ar.Alloc(cfg.Words(NumFields))
		t.initNode(newLeaf, key, val, 0, 0)
		newInt := t.c.Ar.Alloc(cfg.Words(NumFields))
		if key < sr.leafKey {
			t.initNode(newInt, sr.leafKey, 0, newLeaf, sr.leaf)
		} else {
			t.initNode(newInt, key, 0, sr.leaf, newLeaf)
		}
		if pol.CAS(t.c.T, edge, uint64(sr.leaf), uint64(newInt), core.P) {
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return true
		}
		// Never shared: reuse directly.
		t.c.Ar.Free(newLeaf, cfg.Words(NumFields))
		t.c.Ar.Free(newInt, cfg.Words(NumFields))
		raw := pol.Load(t.c.T, edge, t.b.travP())
		if dstruct.Ptr(raw) == sr.leaf && (dstruct.Flagged(raw) || dstruct.Tagged(raw)) {
			t.cleanup(key, sr) // help the obstructing delete
		}
	}
}

// Delete removes key if present: flag the parent→leaf edge (injection),
// then cleanup until the leaf is gone.
func (t *Thread) Delete(key uint64) bool {
	cfg := &t.b.cfg
	pol := cfg.Policy
	t.c.H.Enter()
	injecting := true
	var leaf pmem.Addr
	for {
		sr := t.seek(key)
		if injecting {
			if sr.leafKey != key {
				pkey := pol.Load(t.c.T, cfg.Field(sr.parent, fKey), t.b.travP())
				t.transition(t.childField(sr.parent, pkey, key))
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return false
			}
			pkey := pol.Load(t.c.T, cfg.Field(sr.parent, fKey), t.b.travP())
			edge := t.childField(sr.parent, pkey, key)
			t.transition(edge)
			if pol.CAS(t.c.T, edge, uint64(sr.leaf), uint64(sr.leaf)|core.FlagBit, core.P) {
				injecting = false
				leaf = sr.leaf
				if t.cleanup(key, sr) {
					pol.Complete(t.c.T)
					t.c.H.Exit()
					return true
				}
			} else {
				raw := pol.Load(t.c.T, edge, t.b.travP())
				if dstruct.Ptr(raw) == sr.leaf && (dstruct.Flagged(raw) || dstruct.Tagged(raw)) {
					t.cleanup(key, sr)
				}
			}
		} else {
			if sr.leaf != leaf {
				// Someone finished our removal.
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return true
			}
			if t.cleanup(key, sr) {
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return true
			}
		}
	}
}

// cleanup performs the NM removal: freeze the sibling edge with a tag,
// then swing the ancestor's successor edge to the sibling (preserving the
// sibling's flag). Returns whether this thread's swing succeeded; if so it
// retires the removed parent and leaf.
func (t *Thread) cleanup(key uint64, sr seekRec) bool {
	cfg := &t.b.cfg
	pol := cfg.Policy
	cp := t.b.cleanupP()
	ak := pol.Load(t.c.T, cfg.Field(sr.ancestor, fKey), cp)
	succField := t.childField(sr.ancestor, ak, key)
	pk := pol.Load(t.c.T, cfg.Field(sr.parent, fKey), cp)
	childField := t.childField(sr.parent, pk, key)
	siblingField := cfg.Field(sr.parent, fLeft)
	if childField == siblingField {
		siblingField = cfg.Field(sr.parent, fRight)
	}
	childRaw := pol.Load(t.c.T, childField, cp)
	if !dstruct.Flagged(childRaw) {
		// The pending delete targets the other side; keep that side's
		// subtree and remove the (flagged) original sibling.
		siblingField = childField
	}
	// Freeze the kept edge so it cannot change while we splice it up.
	for {
		v := pol.Load(t.c.T, siblingField, cp)
		if dstruct.Tagged(v) {
			break
		}
		if pol.CAS(t.c.T, siblingField, v, v|core.TagBit, cp) {
			break
		}
	}
	v := pol.Load(t.c.T, siblingField, cp)
	kept := uint64(dstruct.Ptr(v)) | (v & core.FlagBit) // untag, keep flag
	// The swing is a p-store in every mode: it makes parent and leaf
	// unreachable, and they are retired for reuse below.
	if !pol.CAS(t.c.T, succField, uint64(sr.successor), kept, core.P) {
		return false
	}
	removedField := cfg.Field(sr.parent, fLeft)
	if removedField == siblingField {
		removedField = cfg.Field(sr.parent, fRight)
	}
	removed := dstruct.Ptr(pol.Load(t.c.T, removedField, cp))
	t.c.H.Retire(sr.parent, cfg.Words(NumFields))
	if removed != pmem.NilAddr {
		t.c.H.Retire(removed, cfg.Words(NumFields))
	}
	return true
}

// Contains reports whether key is present.
func (t *Thread) Contains(key uint64) bool {
	pol := t.b.cfg.Policy
	t.c.H.Enter()
	sr := t.seek(key)
	found := sr.leafKey == key
	pkey := pol.Load(t.c.T, t.b.cfg.Field(sr.parent, fKey), t.b.travP())
	t.transition(t.childField(sr.parent, pkey, key))
	pol.Complete(t.c.T)
	t.c.H.Exit()
	return found
}

// Get returns the value stored under key, if present.
func (t *Thread) Get(key uint64) (uint64, bool) {
	pol := t.b.cfg.Policy
	t.c.H.Enter()
	sr := t.seek(key)
	if sr.leafKey != key {
		pol.Complete(t.c.T)
		t.c.H.Exit()
		return 0, false
	}
	v := pol.Load(t.c.T, t.b.cfg.Field(sr.leaf, fVal), t.b.travP())
	pkey := pol.Load(t.c.T, t.b.cfg.Field(sr.parent, fKey), t.b.travP())
	t.transition(t.childField(sr.parent, pkey, key))
	pol.Complete(t.c.T)
	t.c.H.Exit()
	return v, true
}

// Snapshot reads all live user pairs (test helper; callers quiescent).
func (b *BST) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	mem := b.cfg.Heap.Mem()
	var walk func(raw uint64)
	walk = func(raw uint64) {
		n := dstruct.Ptr(raw)
		if n == pmem.NilAddr || dstruct.Flagged(raw) {
			return
		}
		l := mem.VolatileWord(b.cfg.Field(n, fLeft))
		r := mem.VolatileWord(b.cfg.Field(n, fRight))
		if dstruct.Ptr(l) == pmem.NilAddr && dstruct.Ptr(r) == pmem.NilAddr {
			k := mem.VolatileWord(b.cfg.Field(n, fKey))
			if k < dstruct.KeyMax {
				out[k] = mem.VolatileWord(b.cfg.Field(n, fVal))
			}
			return
		}
		walk(l)
		walk(r)
	}
	walk(uint64(b.r))
	return out
}

// Recover rebuilds a durably consistent tree from the image at cfg's root
// slot: leaves reachable through unflagged edges survive (a persisted flag
// is a delete that may take effect — see the package comment); flags and
// tags are discarded with the old structure, and survivors are re-inserted
// in median order into a fresh tree at the same root, yielding a balanced
// rebuild.
//
//flit:rawpersist recovery is single-threaded; the rebuild fences once after re-insertion
func Recover(cfg dstruct.Config) *BST {
	mem := cfg.Heap.Mem()
	rootRaw := mem.VolatileWord(cfg.Root())
	pairs := make(map[uint64]uint64)
	seen := make(map[pmem.Addr]bool)
	var walk func(raw uint64)
	walk = func(raw uint64) {
		n := dstruct.Ptr(raw)
		if n == pmem.NilAddr || dstruct.Flagged(raw) || seen[n] {
			return
		}
		seen[n] = true
		l := mem.VolatileWord(cfg.Field(n, fLeft))
		r := mem.VolatileWord(cfg.Field(n, fRight))
		if dstruct.Ptr(l) == pmem.NilAddr && dstruct.Ptr(r) == pmem.NilAddr {
			if k := mem.VolatileWord(cfg.Field(n, fKey)); k < dstruct.KeyMax {
				pairs[k] = mem.VolatileWord(cfg.Field(n, fVal))
			}
			return
		}
		walk(l)
		walk(r)
	}
	walk(rootRaw)

	b := New(cfg)
	th := b.newThread()
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var insertBalanced func(lo, hi int)
	insertBalanced = func(lo, hi int) {
		if lo >= hi {
			return
		}
		mid := (lo + hi) / 2
		th.Insert(keys[mid], pairs[keys[mid]])
		insertBalanced(lo, mid)
		insertBalanced(mid+1, hi)
	}
	insertBalanced(0, len(keys))
	th.c.T.PFence()
	return b
}
