// Package dstest is a reusable test battery for the durable sets: every
// data structure package runs the same sequential-model, concurrent-stress
// and clean-recovery suites across all (policy × durability mode)
// combinations, so a regression in any pairing is caught uniformly.
package dstest

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"flit/internal/core"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// Instance is a live data structure under test.
type Instance struct {
	Set      dstruct.Set
	Cfg      dstruct.Config
	Snapshot func() map[uint64]uint64
}

// Factory builds a fresh instance over cfg.
type Factory func(cfg dstruct.Config) Instance

// Recoverer rebuilds an instance from a crash image already loaded into
// cfg.Heap.
type Recoverer func(cfg dstruct.Config) Instance

// Policies returns the standard policy matrix. memWords sizes DirectMap.
// withLAP excludes link-and-persist for structures it cannot instrument
// (the BST).
func Policies(memWords int, withLAP bool) []core.Policy {
	ps := []core.Policy{
		core.NewFliT(core.NewHashTable(1 << 16)),
		core.NewFliT(core.Adjacent{}),
		core.NewFliT(core.NewPackedHashTable(1 << 12)),
		core.NewFliT(core.NewDirectMap(memWords)),
		core.Plain{},
		core.Izraelevitz{},
		core.NoPersist{},
	}
	if withLAP {
		ps = append(ps, core.LinkAndPersist{})
	}
	return ps
}

// Configs enumerates (policy × mode) over fresh heaps of memWords words.
func Configs(memWords int, withLAP bool) []dstruct.Config {
	var out []dstruct.Config
	for _, pol := range Policies(memWords, withLAP) {
		for _, mode := range dstruct.Modes {
			cfg := pmem.DefaultConfig(memWords)
			// Correctness batteries never read a latency number: the
			// virtual clock keeps the modeled costs at spin-free speed.
			cfg.VirtualClock = true
			h := pheap.New(pmem.New(cfg))
			out = append(out, dstruct.Config{
				Heap: h, Policy: pol, Mode: mode, RootSlot: 0, Stride: dstruct.StrideFor(pol),
			})
		}
	}
	return out
}

// Label names a config for subtests.
func Label(cfg dstruct.Config) string { return cfg.Policy.Name() + "/" + cfg.Mode.String() }

// Scale returns n in the default run and n/div (floored at 1) under
// -short, so slow suites shrink without losing default-run coverage.
func Scale(n, div int) int {
	if testing.Short() {
		n /= div
		if n < 1 {
			n = 1
		}
	}
	return n
}

// ShortConfigs trims a Configs matrix under -short to one FliT counter
// scheme plus the plain and link-and-persist baselines (the three
// persistence-ordering behaviours that differ); the default run keeps the
// full matrix.
func ShortConfigs(cfgs []dstruct.Config) []dstruct.Config {
	if !testing.Short() {
		return cfgs
	}
	var out []dstruct.Config
	for _, c := range cfgs {
		name := c.Policy.Name()
		if strings.HasPrefix(name, "flit-HT") || name == "plain" || name == "link-and-persist" {
			out = append(out, c)
		}
	}
	return out
}

// DLConfigs enumerates the (policy × mode) combinations the systematic
// durable-linearizability battery checks: the flit-HT scheme across every
// durability mode, plus one representative of each other persistence-
// ordering behaviour under automatic. Heaps are small (dlcheck.Words) and
// run on the virtual clock.
func DLConfigs(withLAP bool) []dstruct.Config {
	mk := dlcheck.NewConfig
	var out []dstruct.Config
	for _, mode := range dstruct.Modes {
		out = append(out, mk(core.NewFliT(core.NewHashTable(1<<14)), mode))
	}
	out = append(out,
		mk(core.NewFliT(core.Adjacent{}), dstruct.Automatic),
		mk(core.Plain{}, dstruct.Automatic),
		mk(core.Izraelevitz{}, dstruct.Automatic),
	)
	if withLAP {
		out = append(out, mk(core.LinkAndPersist{}, dstruct.Automatic))
	}
	return out
}

// DLCheck runs the systematic crash-point enumeration battery
// (internal/dlcheck) against one structure configuration: a recorded
// concurrent execution is checked for durable linearizability at every
// (budgeted) PWB/PFence boundary. The full default run enumerates every
// boundary; -short bounds the budget.
func DLCheck(t *testing.T, name string, cfg dstruct.Config, f Factory, r Recoverer, seed int64) {
	t.Helper()
	opts := dlcheck.DefaultOptions(seed)
	if testing.Short() {
		opts.Budget = 48
	} else {
		opts.Budget = 0
	}
	rep := dlcheck.RunSet(cfg, dlcheck.Target{
		Name: name,
		New: func(c dstruct.Config) dlcheck.Instance {
			in := f(c)
			return dlcheck.Instance{Set: in.Set, Snapshot: in.Snapshot}
		},
		Recover: func(c dstruct.Config) dlcheck.Instance {
			in := r(c)
			return dlcheck.Instance{Set: in.Set, Snapshot: in.Snapshot}
		},
	}, opts)
	if rep.Violation != nil {
		t.Fatalf("dlcheck: %v", rep.Violation)
	}
	if _, isNoPersist := cfg.Policy.(core.NoPersist); !isNoPersist && rep.Records == 0 {
		t.Fatal("dlcheck: no persist records traced — tracer unwired?")
	}
}

// SequentialModel drives random single-threaded operations against a map
// model and verifies every response and the final snapshot.
func SequentialModel(t *testing.T, cfg dstruct.Config, f Factory, keyRange int, ops int) {
	t.Helper()
	inst := f(cfg)
	th := inst.Set.NewThread()
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keyRange))
		switch rng.Intn(3) {
		case 0:
			v := uint64(i + 1)
			_, in := model[k]
			if got := th.Insert(k, v); got != !in {
				t.Fatalf("op %d: Insert(%d) = %v, model %v", i, k, got, !in)
			}
			if !in {
				model[k] = v
			}
		case 1:
			_, in := model[k]
			if got := th.Delete(k); got != in {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", i, k, got, in)
			}
			delete(model, k)
		default:
			_, in := model[k]
			if got := th.Contains(k); got != in {
				t.Fatalf("op %d: Contains(%d) = %v, model %v", i, k, got, in)
			}
		}
	}
	snap := inst.Snapshot()
	if len(snap) != len(model) {
		t.Fatalf("snapshot size %d, model %d", len(snap), len(model))
	}
	for k, v := range model {
		if snap[k] != v {
			t.Fatalf("snapshot[%d] = %d, want %d", k, snap[k], v)
		}
	}
}

// ConcurrentStress hammers the set from several goroutines and checks that
// final size equals successful inserts minus deletes.
func ConcurrentStress(t *testing.T, cfg dstruct.Config, f Factory, keyRange, workers, iters int) {
	t.Helper()
	inst := f(cfg)
	var ins, del [16]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := inst.Set.NewThread()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					if th.Insert(k, uint64(w+1)) {
						ins[w]++
					}
				case 1:
					if th.Delete(k) {
						del[w]++
					}
				default:
					th.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	tIns, tDel := 0, 0
	for w := 0; w < workers; w++ {
		tIns += ins[w]
		tDel += del[w]
	}
	if got := len(inst.Snapshot()); got != tIns-tDel {
		t.Fatalf("size %d, want %d-%d = %d", got, tIns, tDel, tIns-tDel)
	}
}

// CleanRecovery populates a set, takes a DropUnfenced crash image after
// quiescence, recovers, and verifies contents and operability.
func CleanRecovery(t *testing.T, cfg dstruct.Config, f Factory, r Recoverer, n int) {
	t.Helper()
	inst := f(cfg)
	th := inst.Set.NewThread()
	model := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		k := uint64(i)
		th.Insert(k, k*7+1)
		model[k] = k*7 + 1
	}
	for i := 0; i < n; i += 3 {
		th.Delete(uint64(i))
		delete(model, uint64(i))
	}
	wm := cfg.Heap.Watermark()
	img := cfg.Heap.Mem().CrashImage(pmem.DropUnfenced, 99)

	mem2 := pmem.NewFromImage(img, cfg.Heap.Mem().Config())
	cfg2 := cfg
	cfg2.Heap = pheap.Recover(mem2, wm)
	rec := r(cfg2)
	snap := rec.Snapshot()
	if len(snap) != len(model) {
		t.Fatalf("recovered %d keys, want %d", len(snap), len(model))
	}
	for k, v := range model {
		if snap[k] != v {
			t.Fatalf("recovered[%d] = %d, want %d", k, snap[k], v)
		}
	}
	th2 := rec.Set.NewThread()
	if !th2.Insert(uint64(n+1000), 5) || !th2.Contains(uint64(n+1000)) || !th2.Delete(uint64(n+1000)) {
		t.Fatal("recovered structure not operational")
	}
}

// RepeatedCrashes exercises durable linearizability across several crash
// events (the paper's Definition covers any number of crashes): populate,
// crash, recover, mutate, crash again, recover again — contents must track
// the model at every step.
func RepeatedCrashes(t *testing.T, cfg dstruct.Config, f Factory, r Recoverer, rounds int) {
	t.Helper()
	inst := f(cfg)
	model := map[uint64]uint64{}
	th := inst.Set.NewThread()
	for i := uint64(0); i < 100; i++ {
		th.Insert(i, i+1)
		model[i] = i + 1
	}
	cur := inst
	curCfg := cfg
	for round := 0; round < rounds; round++ {
		wm := curCfg.Heap.Watermark()
		img := curCfg.Heap.Mem().CrashImage(pmem.RandomSubset, int64(1000+round))
		mem := pmem.NewFromImage(img, curCfg.Heap.Mem().Config())
		nextCfg := curCfg
		nextCfg.Heap = pheap.Recover(mem, wm)
		cur = r(nextCfg)
		curCfg = nextCfg

		snap := cur.Snapshot()
		if len(snap) != len(model) {
			t.Fatalf("round %d: recovered %d keys, want %d", round, len(snap), len(model))
		}
		for k, v := range model {
			if snap[k] != v {
				t.Fatalf("round %d: key %d = %d, want %d", round, k, snap[k], v)
			}
		}
		// Mutate between crashes so each round persists fresh state.
		th := cur.Set.NewThread()
		base := uint64(1000 * (round + 1))
		for i := uint64(0); i < 50; i++ {
			th.Insert(base+i, base+i)
			model[base+i] = base + i
		}
		for i := uint64(0); i < 20; i++ {
			k := uint64(round*20) + i
			if _, ok := model[k]; ok {
				th.Delete(k)
				delete(model, k)
			}
		}
	}
}
