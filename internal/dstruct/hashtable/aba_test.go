package hashtable

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"flit/internal/dstruct"
	"flit/internal/dstruct/dstest"
)

// abaPoison stamps every freed word. Its pointer payload (low 48 bits)
// is far outside any test memory, so a reader that chases a recycled
// node's next pointer trips an out-of-range access deterministically
// instead of silently wandering a stale chain.
const abaPoison = 0x0FFF_FFFF_FFFF_FFF7

// abaConfig returns a flit-HT config on a fresh heap.
func abaConfig(t *testing.T) dstruct.Config {
	t.Helper()
	for _, cfg := range dstest.Configs(1<<20, false) {
		if cfg.Policy.Name() == "flit-HT(64KB)" {
			return cfg
		}
	}
	t.Fatal("no flit-HT config available")
	panic("unreachable")
}

// runABA churns a block of keys in a single-bucket table while
// concurrent readers probe a key that sits behind all of them in the
// chain and is never deleted. Every freed block is poisoned. The churn
// runs in rounds — delete every churn key, yield, reinsert every churn
// key — so a reader paused mid-traversal (the only way goroutines
// interleave on one CPU) resumes holding a pointer into a freed,
// poisoned block. With epoch reclamation doing its job no reader can
// ever observe the poison: the grace period keeps every block a pinned
// reader might hold un-recycled, so a probe is ALWAYS found and never
// faults. Each missed probe or recovered fault counts as one anomaly.
// unsafeFree routes retirements around the grace period
// (reclaim.Handle.SetUnsafeImmediateFree) — the mutation tooth the
// battery must catch.
func runABA(t *testing.T, unsafeFree bool, maxRounds int) int {
	t.Helper()
	cfg := abaConfig(t)
	tb := New(cfg, 1) // one bucket: the probe key chains behind every churn key
	wr := tb.Open(dstruct.ThreadOpts{})
	defer wr.Close()
	const churnKeys, probeKey = 32, 1000 // sorted chain: head → 0..31 → 1000
	if !wr.Insert(probeKey, 1) {
		t.Fatal("seed insert failed")
	}
	for k := uint64(0); k < churnKeys; k++ {
		if !wr.Insert(k, 1) {
			t.Fatal("seed insert failed")
		}
	}

	cfg.Heap.SetFreePoison(abaPoison, true)
	defer cfg.Heap.SetFreePoison(0, false)
	if unsafeFree {
		wr.Ctx().H.SetUnsafeImmediateFree(true)
	}

	var anomalies atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd := tb.Open(dstruct.ThreadOpts{})
			for {
				select {
				case <-stop:
					return
				default:
				}
				found := func() (found bool) {
					defer func() {
						if recover() != nil {
							// Out-of-range access: the reader chased a
							// poisoned pointer through a recycled block.
							anomalies.Add(1)
							found = true // already counted; don't double-count
						}
					}()
					return rd.Contains(probeKey)
				}()
				if !found {
					anomalies.Add(1) // probe key vanished: stale-chain read
				}
			}
		}()
	}

	for i := 0; i < maxRounds; i++ {
		for k := uint64(0); k < churnKeys; k++ {
			if !wr.Delete(k) {
				t.Fatalf("churn delete of %d failed", k)
			}
		}
		// Every churn block is now free (and, without the grace period,
		// poisoned). Hand the CPU to the readers here: one parked
		// mid-traversal resumes into the carnage.
		runtime.Gosched()
		for k := uint64(0); k < churnKeys; k++ {
			if !wr.Insert(k, 1) {
				t.Fatalf("churn insert of %d failed", k)
			}
		}
		runtime.Gosched()
		if unsafeFree && anomalies.Load() > 0 {
			break // tooth detected; no need to keep faulting
		}
	}
	close(stop)
	wg.Wait()
	return int(anomalies.Load())
}

// TestABASafeUnderReclamation: with the grace period in force, poisoned
// blocks are never visible to a pinned reader — zero anomalies across
// the whole churn. Run with -race: it also proves the retire path
// publishes nodes safely.
func TestABASafeUnderReclamation(t *testing.T) {
	if n := runABA(t, false, 50); n != 0 {
		t.Fatalf("reader observed %d anomalies under epoch reclamation, want 0", n)
	}
}

// TestABAToothDetectsImmediateFree is the battery's mutation tooth:
// freeing on delete instead of retiring MUST be observed — a reader
// dereferences a recycled (poisoned) block within the iteration budget.
// If this test ever passes with zero anomalies, the battery has lost
// its teeth and TestABASafeUnderReclamation proves nothing.
func TestABAToothDetectsImmediateFree(t *testing.T) {
	if n := runABA(t, true, 5000); n == 0 {
		t.Fatal("immediate-free mutation produced no anomalies: the ABA battery cannot detect use-after-free")
	}
}
