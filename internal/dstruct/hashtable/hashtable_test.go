package hashtable

import (
	"testing"

	"flit/internal/dstruct"
	"flit/internal/dstruct/dstest"
)

func factory(buckets int) dstest.Factory {
	return func(cfg dstruct.Config) dstest.Instance {
		tb := New(cfg, buckets)
		return dstest.Instance{Set: tb, Cfg: cfg, Snapshot: tb.Snapshot}
	}
}

func recoverer(cfg dstruct.Config) dstest.Instance {
	tb := Recover(cfg)
	return dstest.Instance{Set: tb, Cfg: cfg, Snapshot: tb.Snapshot}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<18, true) {
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.SequentialModel(t, cfg, factory(16), 96, 4000)
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<20, true) {
		if cfg.Policy.Name() != "flit-HT(64KB)" && cfg.Policy.Name() != "link-and-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.ConcurrentStress(t, cfg, factory(8), 64, 4, 4000)
		})
	}
}

func TestCleanRecovery(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<18, true) {
		if cfg.Policy.Name() == "no-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.CleanRecovery(t, cfg, factory(16), recoverer, 300)
		})
	}
}

func TestBucketCountRoundsToPowerOfTwo(t *testing.T) {
	cfg := dstest.Configs(1<<16, false)[0]
	tb := New(cfg, 100)
	if tb.Buckets() != 128 {
		t.Fatalf("Buckets() = %d, want 128", tb.Buckets())
	}
}

func TestAttachFindsExistingTable(t *testing.T) {
	cfg := dstest.Configs(1<<16, false)[0]
	tb := New(cfg, 8)
	th := tb.Open(dstruct.ThreadOpts{})
	th.Insert(42, 420)
	tb2 := Attach(cfg)
	th2 := tb2.Open(dstruct.ThreadOpts{})
	if v, ok := th2.Get(42); !ok || v != 420 {
		t.Fatalf("Get(42) via Attach = (%d,%v), want (420,true)", v, ok)
	}
	if tb2.Buckets() != 8 {
		t.Fatalf("attached bucket count %d, want 8", tb2.Buckets())
	}
}

func TestRepeatedCrashes(t *testing.T) {
	cfg := dstest.Configs(1<<20, false)[0]
	dstest.RepeatedCrashes(t, cfg, factory(16), recoverer, 4)
}

// TestDurableLinearizabilityEnumerated runs the systematic crash-point
// battery: every (budgeted) PWB/PFence boundary of a recorded execution
// must recover to a state some linearization explains.
func TestDurableLinearizabilityEnumerated(t *testing.T) {
	for _, cfg := range dstest.DLConfigs(true) {
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.DLCheck(t, "hashtable", cfg, factory(8), recoverer, 1)
		})
	}
}
