// Package hashtable implements the paper's fourth benchmark structure: a
// fixed-size hash table whose buckets are Harris linked lists. All list
// mechanics (marking, unlinking, durability transitions) are inherited
// from the list package; this package adds the persistent bucket array.
package hashtable

import (
	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/list"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// Header field indices: field 0 holds the bucket count; bucket i's head
// link is field 1+i. The whole header is persisted at construction and
// never modified afterwards.
const fCount = 0

// Table is a durable lock-free hash table.
type Table struct {
	cfg     dstruct.Config
	l       *list.List
	base    pmem.Addr
	buckets uint64
	shift   uint
}

// New creates a table with the given bucket count (rounded up to a power
// of two), anchored at cfg's root slot.
func New(cfg dstruct.Config, buckets int) *Table {
	b := core.CeilPow2(buckets)
	t := cfg.Heap.Mem().RegisterThread()
	ar := cfg.Heap.NewArena()
	base := ar.Alloc(cfg.Words(1 + b))
	pol := cfg.Policy
	pol.StorePrivate(t, cfg.Field(base, fCount), uint64(b), core.V)
	for i := 0; i < b; i++ {
		pol.StorePrivate(t, cfg.Field(base, 1+i), 0, core.V)
	}
	pol.PersistObject(t, base, cfg.Words(1+b))
	// Publishing the header is a shared p-store: its leading fence orders
	// the header contents before the root points at them.
	pol.Store(t, cfg.Root(), uint64(base), core.P)
	pol.Complete(t)
	ar.Release()
	t.Release()
	return attach(cfg, base, uint64(b))
}

// Attach wraps the table persisted at cfg's root slot (e.g. in recovered
// memory) without modifying it.
func Attach(cfg dstruct.Config) *Table {
	mem := cfg.Heap.Mem()
	base := dstruct.Ptr(mem.VolatileWord(cfg.Root()))
	b := mem.VolatileWord(cfg.Field(base, fCount))
	return attach(cfg, base, b)
}

func attach(cfg dstruct.Config, base pmem.Addr, b uint64) *Table {
	t := &Table{cfg: cfg, l: list.Attach(cfg), base: base, buckets: b}
	t.shift = 64
	for e := b; e > 1; e >>= 1 {
		t.shift--
	}
	return t
}

// Name returns "hashtable".
func (t *Table) Name() string { return "hashtable" }

// Buckets returns the bucket count.
func (t *Table) Buckets() int { return int(t.buckets) }

// Base returns the table header's persistent address — the value its
// anchor word holds. The store's shard-split directory copies it when a
// grown shard's anchor moves to a new directory object.
func (t *Table) Base() pmem.Addr { return t.base }

// bucketIdx returns the bucket index for key.
func (t *Table) bucketIdx(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> t.shift)
}

// bucketHead returns the address of the bucket link word for key.
func (t *Table) bucketHead(key uint64) pmem.Addr {
	return t.cfg.Field(t.base, 1+t.bucketIdx(key))
}

// Thread is a per-goroutine handle to the table.
type Thread struct {
	t  *Table
	lt *list.Thread
}

// NewThread creates a standalone per-goroutine handle — the Set
// interface's spelling of Open(ThreadOpts{}).
func (t *Table) NewThread() dstruct.SetThread { return t.Open(dstruct.ThreadOpts{}) }

// Open creates a per-goroutine handle configured by o (see list.Open and
// dstruct.ThreadOpts): sessions that operate many shard tables from one
// goroutine pass the shared pmem thread and arena; group-commit and
// combining sessions additionally override the policy with a deferred
// wrapper.
func (t *Table) Open(o dstruct.ThreadOpts) *Thread {
	return &Thread{t: t, lt: t.l.Open(o)}
}

// NewThreadWith creates a handle sharing an existing pmem thread and
// arena.
//
// Deprecated: use Open(dstruct.ThreadOpts{T: th, Arena: ar}).
func (t *Table) NewThreadWith(th *pmem.Thread, ar *pheap.Arena) *Thread {
	return t.Open(dstruct.ThreadOpts{T: th, Arena: ar})
}

// NewThreadWithPolicy is NewThreadWith with the thread's instructions
// instrumented by pol instead of the table's configured policy.
//
// Deprecated: use Open(dstruct.ThreadOpts{T: th, Arena: ar, Policy: pol}).
func (t *Table) NewThreadWithPolicy(th *pmem.Thread, ar *pheap.Arena, pol core.Policy) *Thread {
	return t.Open(dstruct.ThreadOpts{T: th, Arena: ar, Policy: pol})
}

// Ctx exposes the thread's execution context (stats, crash injection).
func (th *Thread) Ctx() dstruct.Ctx { return th.lt.Ctx() }

// Close releases the handle's reclamation slot and any pmem thread or
// arena the handle registered itself (see list.Thread.Close). Idempotent.
func (th *Thread) Close() { th.lt.Close() }

// Insert adds key→val if absent.
func (th *Thread) Insert(key, val uint64) bool {
	return th.lt.InsertAt(th.t.bucketHead(key), key, val)
}

// Put inserts key→val, or durably overwrites the value in place when key
// is already present; it reports whether a new key was inserted.
func (th *Thread) Put(key, val uint64) bool {
	return th.lt.UpsertAt(th.t.bucketHead(key), key, val)
}

// Add atomically adds delta to key's value, inserting key→delta when
// absent (see list.AddAt for the persistence and wrap-around contract).
// It returns the post-add value and whether the key was already present.
func (th *Thread) Add(key, delta uint64) (uint64, bool) {
	return th.lt.AddAt(th.t.bucketHead(key), key, delta)
}

// Delete removes key if present.
func (th *Thread) Delete(key uint64) bool {
	return th.lt.DeleteAt(th.t.bucketHead(key), key)
}

// Contains reports whether key is present.
func (th *Thread) Contains(key uint64) bool {
	return th.lt.ContainsAt(th.t.bucketHead(key), key)
}

// Get returns the value stored under key, if present.
func (th *Thread) Get(key uint64) (uint64, bool) {
	return th.lt.GetAt(th.t.bucketHead(key), key)
}

// Snapshot reads all unmarked pairs (test helper; callers quiescent).
func (t *Table) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i := 0; i < int(t.buckets); i++ {
		for k, v := range t.l.SnapshotAt(t.cfg.Field(t.base, 1+i)) {
			out[k] = v
		}
	}
	return out
}

// Recover rebuilds a durably consistent table from the structure persisted
// at cfg's root slot. The bucket array itself survives as-is (it is
// immutable after construction); each bucket chain is gathered and
// re-laid-out clean, like list recovery.
func Recover(cfg dstruct.Config) *Table {
	tbl, _ := RecoverCount(cfg)
	return tbl
}

// RecoverCount is Recover, additionally reporting how many key→value
// pairs survived — the gather pass already knows, so callers doing
// shard-parallel recovery need not re-scan the table to count keys.
func RecoverCount(cfg dstruct.Config) (*Table, int) {
	return BeginRecover(cfg).Complete()
}

// Recovery is a two-phase table recovery: BeginRecover gathers every
// bucket's surviving pairs into process memory, Complete rebuilds the
// chains and fences. The split exists because recovery may run with a
// stale allocation watermark (the embedding process crashed before it
// could carry the newer one forward), in which case the rebuild's fresh
// nodes can land on addresses still holding chains that have not been
// gathered yet. Within one table the two phases order that correctly;
// recoveries sharing one heap (the store's shard-parallel rebuild) must
// additionally barrier between everyone's gather and anyone's rebuild.
type Recovery struct {
	cfg   dstruct.Config
	tbl   *Table
	pairs []map[uint64]uint64
	keys  int
}

// BeginRecover attaches the persisted table and gathers every bucket's
// surviving pairs (phase one; writes nothing).
func BeginRecover(cfg dstruct.Config) *Recovery {
	tbl := Attach(cfg)
	r := &Recovery{cfg: cfg, tbl: tbl, pairs: make([]map[uint64]uint64, tbl.buckets)}
	for i := range r.pairs {
		r.pairs[i] = list.GatherAt(&cfg, cfg.Field(tbl.base, 1+i))
		r.keys += len(r.pairs[i])
	}
	return r
}

// Keys reports the surviving pair count gathered by BeginRecover.
func (r *Recovery) Keys() int { return r.keys }

// Pairs returns a copy of the union of the gathered per-bucket pairs —
// the table's surviving contents. Callers that redistribute keys across
// tables (the store's shard-split recovery) read every table's pairs,
// recompute each table's final contents, and rebuild with CompleteWith.
func (r *Recovery) Pairs() map[uint64]uint64 {
	out := make(map[uint64]uint64, r.keys)
	for _, b := range r.pairs {
		for k, v := range b {
			out[k] = v
		}
	}
	return out
}

// Complete rebuilds every bucket chain from the gathered pairs and
// fences (phase two), returning the recovered table and its key count.
func (r *Recovery) Complete() (*Table, int) {
	return r.complete(r.pairs)
}

// CompleteWith is Complete with the table's final contents overridden:
// the chains are rebuilt to hold exactly pairs, partitioned by the
// table's own bucket hash. The store's shard-split recovery uses it to
// move keys between shards while rebuilding each table in place.
func (r *Recovery) CompleteWith(pairs map[uint64]uint64) (*Table, int) {
	byBucket := make([]map[uint64]uint64, r.tbl.buckets)
	for i := range byBucket {
		byBucket[i] = make(map[uint64]uint64)
	}
	for k, v := range pairs {
		byBucket[r.tbl.bucketIdx(k)][k] = v
	}
	return r.complete(byBucket)
}

// complete rebuilds every bucket chain and fences once at the end.
//
//flit:rawpersist recovery is single-threaded; one fence persists all rebuilt chains
func (r *Recovery) complete(byBucket []map[uint64]uint64) (*Table, int) {
	t := r.cfg.Heap.Mem().RegisterThread()
	ar := r.cfg.Heap.NewArena()
	n := 0
	for i := range byBucket {
		list.RebuildAt(&r.cfg, t, ar, r.cfg.Field(r.tbl.base, 1+i), byBucket[i])
		n += len(byBucket[i])
	}
	t.PFence()
	ar.Release()
	t.Release()
	return r.tbl, n
}
