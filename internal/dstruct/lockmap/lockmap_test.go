package lockmap

import (
	"testing"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/dstest"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func factory(buckets int) dstest.Factory {
	return func(cfg dstruct.Config) dstest.Instance {
		m := New(cfg, buckets)
		return dstest.Instance{Set: m, Cfg: cfg, Snapshot: m.Snapshot}
	}
}

func recoverer(cfg dstruct.Config) dstest.Instance {
	m := Recover(cfg)
	return dstest.Instance{Set: m, Cfg: cfg, Snapshot: m.Snapshot}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<18, true) {
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.SequentialModel(t, cfg, factory(16), 96, 4000)
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<20, true) {
		if cfg.Policy.Name() != "flit-HT(64KB)" && cfg.Policy.Name() != "link-and-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.ConcurrentStress(t, cfg, factory(8), 64, 4, 4000)
		})
	}
}

func TestCleanRecovery(t *testing.T) {
	for _, cfg := range dstest.Configs(1<<18, true) {
		if cfg.Policy.Name() == "no-persist" {
			continue
		}
		cfg := cfg
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.CleanRecovery(t, cfg, factory(16), recoverer, 300)
		})
	}
}

func TestRepeatedCrashes(t *testing.T) {
	cfg := dstest.Configs(1<<20, false)[0]
	dstest.RepeatedCrashes(t, cfg, factory(16), recoverer, 4)
}

func TestRecoveryClearsEvictedLocks(t *testing.T) {
	cfg := dstest.Configs(1<<16, false)[0]
	m := New(cfg, 8)
	th := m.newThread()
	th.Insert(5, 50)
	// Simulate a crash while a lock was held AND evicted: force the lock
	// word set in the volatile layer, then take a PersistAll image (every
	// volatile line "evicted").
	lock, _ := m.bucket(5)
	raw := cfg.Heap.Mem().RegisterThread()
	raw.Store(lock, 1)
	wm := cfg.Heap.Watermark()
	img := cfg.Heap.Mem().CrashImage(pmem.PersistAll, 1)
	mem2 := pmem.NewFromImage(img, cfg.Heap.Mem().Config())
	cfg2 := cfg
	cfg2.Heap = pheap.Recover(mem2, wm)
	m2 := Recover(cfg2)
	th2 := m2.newThread()
	// If the lock survived, this would spin forever; the test timing out
	// is the failure mode.
	if !th2.Contains(5) {
		t.Fatal("key lost across lock-held crash")
	}
}

func TestContainsIssuesNoFlushes(t *testing.T) {
	cfg := dstest.Configs(1<<16, false)[0]
	m := New(cfg, 8)
	th := m.newThread()
	for i := uint64(0); i < 50; i++ {
		th.Insert(i, i)
	}
	before := th.c.T.Stats.PWBs
	for i := uint64(0); i < 50; i++ {
		th.Contains(i)
	}
	if th.c.T.Stats.PWBs != before {
		t.Fatalf("lock-based contains issued %d flushes; private loads never flush",
			th.c.T.Stats.PWBs-before)
	}
}

func TestLinkAndPersistWorks(t *testing.T) {
	// The lockmap uses only CAS/stores on its lock and private stores on
	// data, so link-and-persist applies.
	for _, cfg := range dstest.Configs(1<<18, true) {
		if cfg.Policy.Name() != "link-and-persist" {
			continue
		}
		m := New(cfg, 8)
		th := m.newThread()
		if !th.Insert(1, 10) || !th.Contains(1) || !th.Delete(1) {
			t.Fatal("link-and-persist lockmap broken")
		}
		break
	}
	_ = core.P
}

// TestDurableLinearizabilityEnumerated runs the systematic crash-point
// battery: every (budgeted) PWB/PFence boundary of a recorded execution
// must recover to a state some linearization explains.
func TestDurableLinearizabilityEnumerated(t *testing.T) {
	for _, cfg := range dstest.DLConfigs(true) {
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.DLCheck(t, "lockmap", cfg, factory(8), recoverer, 1)
		})
	}
}
