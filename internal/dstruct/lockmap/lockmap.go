// Package lockmap is a lock-based durable hash map demonstrating the
// paper's §7 point: the P-V Interface captures lock-based algorithms too,
// and instructions inside a critical section are *private* — no other
// thread can access the protected words concurrently — so they skip the
// flit-counters and leading fences entirely. Reads never flush: every
// value behind the lock was persisted by the store that put it there.
//
// The per-bucket lock words are volatile state (never deliberately
// flushed): after a crash, recovery clears them — along with any lock a
// cache eviction happened to persist while held.
//
// Durability discipline inside the critical section, per Condition 4:
// a fresh node is written with private v-stores, its lines are written
// back (PersistObject), a fence orders them, and only then is the linking
// private p-store issued — otherwise an eviction could persist the link
// before the node it points to.
package lockmap

import (
	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pmem"
)

// Node field indices: key, value, next.
const (
	fKey  = 0
	fVal  = 1
	fNext = 2
	// NumFields is the number of persisted fields per node.
	NumFields = 3
)

// Header layout: field 0 = bucket count; bucket i owns two fields —
// lock at 1+2i (volatile), chain head at 2+2i (persistent).
const fCount = 0

// Map is a durable lock-based hash map.
type Map struct {
	cfg     dstruct.Config
	base    pmem.Addr
	buckets uint64
	shift   uint
}

// New creates a map with the given bucket count (rounded to a power of
// two) anchored at cfg's root slot.
func New(cfg dstruct.Config, buckets int) *Map {
	b := core.CeilPow2(buckets)
	t := cfg.Heap.Mem().RegisterThread()
	ar := cfg.Heap.NewArena()
	pol := cfg.Policy
	base := ar.Alloc(cfg.Words(1 + 2*b))
	pol.StorePrivate(t, cfg.Field(base, fCount), uint64(b), core.V)
	for i := 0; i < 2*b; i++ {
		pol.StorePrivate(t, cfg.Field(base, 1+i), 0, core.V)
	}
	pol.PersistObject(t, base, cfg.Words(1+2*b))
	pol.Store(t, cfg.Root(), uint64(base), core.P)
	pol.Complete(t)
	ar.Release()
	t.Release()
	return attach(cfg, base, uint64(b))
}

// Attach wraps the map persisted at cfg's root slot.
func Attach(cfg dstruct.Config) *Map {
	mem := cfg.Heap.Mem()
	base := dstruct.Ptr(mem.VolatileWord(cfg.Root()))
	return attach(cfg, base, mem.VolatileWord(cfg.Field(base, fCount)))
}

func attach(cfg dstruct.Config, base pmem.Addr, b uint64) *Map {
	m := &Map{cfg: cfg, base: base, buckets: b}
	m.shift = 64
	for e := b; e > 1; e >>= 1 {
		m.shift--
	}
	return m
}

// Name returns "lockmap".
func (m *Map) Name() string { return "lockmap" }

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return int(m.buckets) }

func (m *Map) bucket(key uint64) (lock, head pmem.Addr) {
	h := (key * 0x9E3779B97F4A7C15) >> m.shift
	return m.cfg.Field(m.base, 1+2*int(h)), m.cfg.Field(m.base, 2+2*int(h))
}

// Thread is a per-goroutine handle to the map.
type Thread struct {
	m *Map
	c dstruct.Ctx
}

// NewThread creates a per-goroutine handle.
func (m *Map) NewThread() dstruct.SetThread { return m.newThread() }

func (m *Map) newThread() *Thread {
	ar := m.cfg.Heap.NewArena()
	return &Thread{m: m, c: dstruct.Ctx{T: m.cfg.Heap.Mem().RegisterThread(), Ar: ar}}
}

// Ctx exposes the thread's execution context (stats, crash injection).
func (t *Thread) Ctx() dstruct.Ctx { return t.c }

// acquire spins on the bucket lock with volatile CAS: the lock word holds
// no durable information.
func (t *Thread) acquire(lock pmem.Addr) {
	pol := t.m.cfg.Policy
	for !pol.CAS(t.c.T, lock, 0, 1, core.V) {
	}
}

// release writes the lock open with a volatile store.
func (t *Thread) release(lock pmem.Addr) {
	t.m.cfg.Policy.Store(t.c.T, lock, 0, core.V)
}

// find walks the chain under the lock. All loads are private: nothing can
// race, and everything reachable was persisted when linked.
func (t *Thread) find(head pmem.Addr, key uint64) (predNext pmem.Addr, node pmem.Addr) {
	cfg := &t.m.cfg
	pol := cfg.Policy
	predNext = head
	n := dstruct.Ptr(pol.LoadPrivate(t.c.T, head, core.V))
	for n != pmem.NilAddr {
		if pol.LoadPrivate(t.c.T, cfg.Field(n, fKey), core.V) == key {
			return predNext, n
		}
		predNext = cfg.Field(n, fNext)
		n = dstruct.Ptr(pol.LoadPrivate(t.c.T, predNext, core.V))
	}
	return predNext, pmem.NilAddr
}

// Insert adds key→val if absent.
func (t *Thread) Insert(key, val uint64) bool {
	if key >= dstruct.KeyMax {
		panic("lockmap: key out of range")
	}
	cfg := &t.m.cfg
	pol := cfg.Policy
	lock, head := t.m.bucket(key)
	t.acquire(lock)
	_, n := t.find(head, key)
	if n != pmem.NilAddr {
		t.release(lock)
		pol.Complete(t.c.T)
		return false
	}
	node := t.c.Ar.Alloc(cfg.Words(NumFields))
	pol.StorePrivate(t.c.T, cfg.Field(node, fKey), key, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(node, fVal), val, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(node, fNext),
		pol.LoadPrivate(t.c.T, head, core.V), core.V)
	pol.PersistObject(t.c.T, node, cfg.Words(NumFields))
	pol.Complete(t.c.T) // node lines durable before the link can persist
	pol.StorePrivate(t.c.T, head, uint64(node), core.P)
	t.release(lock)
	pol.Complete(t.c.T)
	return true
}

// Delete removes key if present. The unlink is a private p-store: it must
// be durable before the node's memory can be reused.
func (t *Thread) Delete(key uint64) bool {
	cfg := &t.m.cfg
	pol := cfg.Policy
	lock, head := t.m.bucket(key)
	t.acquire(lock)
	predNext, n := t.find(head, key)
	if n == pmem.NilAddr {
		t.release(lock)
		pol.Complete(t.c.T)
		return false
	}
	succ := pol.LoadPrivate(t.c.T, cfg.Field(n, fNext), core.V)
	pol.StorePrivate(t.c.T, predNext, succ, core.P)
	t.c.Ar.Free(n, cfg.Words(NumFields)) // safe: unlink persisted, lock held
	t.release(lock)
	pol.Complete(t.c.T)
	return true
}

// Contains reports whether key is present — with zero flushes: every link
// it reads was persisted by the private p-store that wrote it.
func (t *Thread) Contains(key uint64) bool {
	pol := t.m.cfg.Policy
	lock, head := t.m.bucket(key)
	t.acquire(lock)
	_, n := t.find(head, key)
	t.release(lock)
	pol.Complete(t.c.T)
	return n != pmem.NilAddr
}

// Get returns the value stored under key, if present.
func (t *Thread) Get(key uint64) (uint64, bool) {
	cfg := &t.m.cfg
	pol := cfg.Policy
	lock, head := t.m.bucket(key)
	t.acquire(lock)
	defer t.release(lock)
	_, n := t.find(head, key)
	if n == pmem.NilAddr {
		pol.Complete(t.c.T)
		return 0, false
	}
	v := pol.LoadPrivate(t.c.T, cfg.Field(n, fVal), core.V)
	pol.Complete(t.c.T)
	return v, true
}

// Snapshot reads all pairs (test helper; callers quiescent).
func (m *Map) Snapshot() map[uint64]uint64 {
	mem := m.cfg.Heap.Mem()
	out := make(map[uint64]uint64)
	for i := 0; i < int(m.buckets); i++ {
		n := dstruct.Ptr(mem.VolatileWord(m.cfg.Field(m.base, 2+2*i)))
		for n != pmem.NilAddr {
			out[mem.VolatileWord(m.cfg.Field(n, fKey))] = mem.VolatileWord(m.cfg.Field(n, fVal))
			n = dstruct.Ptr(mem.VolatileWord(m.cfg.Field(n, fNext)))
		}
	}
	return out
}

// Recover re-attaches the map persisted at cfg's root slot and clears
// every bucket lock: lock words are volatile, but a background eviction
// may have persisted a held lock — after a crash nobody holds anything.
// Chains are structurally consistent by construction (each insert/delete
// persists a single link word whose target is already durable).
//
//flit:rawpersist lock-word clears are volatile and idempotent across repeated crashes; no flush needed
func Recover(cfg dstruct.Config) *Map {
	m := Attach(cfg)
	t := cfg.Heap.Mem().RegisterThread()
	for i := 0; i < int(m.buckets); i++ {
		t.Store(cfg.Field(m.base, 1+2*i), 0)
	}
	t.Release()
	return m
}
