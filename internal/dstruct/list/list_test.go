package list

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/dstest"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// configs returns one list config per (policy, mode) combination worth
// unit-testing, each over a fresh heap.
func configs(words int) []dstruct.Config {
	var out []dstruct.Config
	policies := []core.Policy{
		core.NewFliT(core.NewHashTable(1 << 16)),
		core.NewFliT(core.Adjacent{}),
		core.NewFliT(core.NewPackedHashTable(1 << 12)),
		core.NewFliT(core.NewDirectMap(words)),
		core.Plain{},
		core.LinkAndPersist{},
		core.NoPersist{},
	}
	for _, pol := range policies {
		for _, mode := range dstruct.Modes {
			cfg := pmem.DefaultConfig(words)
			cfg.PWBCost, cfg.PFenceCost, cfg.PFenceEntryCost = 0, 0, 0
			h := pheap.New(pmem.New(cfg))
			out = append(out, dstruct.Config{
				Heap: h, Policy: pol, Mode: mode, RootSlot: 0, Stride: dstruct.StrideFor(pol),
			})
		}
	}
	return out
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, cfg := range configs(1 << 18) {
		t.Run(cfg.Policy.Name()+"/"+cfg.Mode.String(), func(t *testing.T) {
			l := New(cfg)
			th := l.Open(dstruct.ThreadOpts{})
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					v := uint64(i)
					_, inModel := model[k]
					if got := th.Insert(k, v); got != !inModel {
						t.Fatalf("op %d: Insert(%d) = %v, model says %v", i, k, got, !inModel)
					}
					if !inModel {
						model[k] = v
					}
				case 1:
					_, inModel := model[k]
					if got := th.Delete(k); got != inModel {
						t.Fatalf("op %d: Delete(%d) = %v, model says %v", i, k, got, inModel)
					}
					delete(model, k)
				case 2:
					_, inModel := model[k]
					if got := th.Contains(k); got != inModel {
						t.Fatalf("op %d: Contains(%d) = %v, model says %v", i, k, got, inModel)
					}
					if v, ok := th.Get(k); ok != inModel || (ok && v != model[k]) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, k, v, ok, model[k], inModel)
					}
				}
			}
			snap := l.Snapshot()
			if len(snap) != len(model) {
				t.Fatalf("snapshot has %d keys, model %d", len(snap), len(model))
			}
			for k, v := range model {
				if snap[k] != v {
					t.Fatalf("snapshot[%d] = %d, want %d", k, snap[k], v)
				}
			}
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	// One flit config and link-and-persist, all modes, hammered by 4
	// goroutines on a small key range to maximize contention.
	for _, cfg := range configs(1 << 20) {
		if cfg.Policy.Name() != "flit-HT(64KB)" && cfg.Policy.Name() != "link-and-persist" {
			continue
		}
		cfg := cfg
		t.Run(cfg.Policy.Name()+"/"+cfg.Mode.String(), func(t *testing.T) {
			l := New(cfg)
			const workers = 4
			const iters = 4000
			var inserted, deleted [workers]int
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := l.Open(dstruct.ThreadOpts{})
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(32))
						switch rng.Intn(3) {
						case 0:
							if th.Insert(k, uint64(w)) {
								inserted[w]++
							}
						case 1:
							if th.Delete(k) {
								deleted[w]++
							}
						default:
							th.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()
			ins, del := 0, 0
			for w := 0; w < workers; w++ {
				ins += inserted[w]
				del += deleted[w]
			}
			if got := len(l.Snapshot()); got != ins-del {
				t.Fatalf("size %d, want inserts-deletes = %d-%d = %d", got, ins, del, ins-del)
			}
			// Chain must be sorted and mark-free after quiescence cleanup.
			keys := sortedKeys(l)
			for i := 1; i < len(keys); i++ {
				if keys[i] <= keys[i-1] {
					t.Fatalf("chain out of order at %d: %v", i, keys)
				}
			}
		})
	}
}

func sortedKeys(l *List) []uint64 {
	mem := l.cfg.Heap.Mem()
	var keys []uint64
	curr := dstruct.Ptr(mem.VolatileWord(l.cfg.Root()))
	for curr != pmem.NilAddr {
		raw := mem.VolatileWord(l.cfg.Field(curr, fNext))
		if !dstruct.Marked(raw) {
			keys = append(keys, mem.VolatileWord(l.cfg.Field(curr, fKey)))
		}
		curr = dstruct.Ptr(raw)
	}
	return keys
}

func TestRecoveryAfterCleanShutdown(t *testing.T) {
	for _, cfg := range configs(1 << 18) {
		if cfg.Policy.Name() == "no-persist" {
			continue
		}
		t.Run(cfg.Policy.Name()+"/"+cfg.Mode.String(), func(t *testing.T) {
			l := New(cfg)
			th := l.Open(dstruct.ThreadOpts{})
			model := map[uint64]uint64{}
			for i := uint64(0); i < 200; i++ {
				th.Insert(i, i*10)
				model[i] = i * 10
			}
			for i := uint64(0); i < 200; i += 3 {
				th.Delete(i)
				delete(model, i)
			}
			wm := cfg.Heap.Watermark()
			img := cfg.Heap.Mem().CrashImage(pmem.DropUnfenced, 1)

			mem2 := pmem.NewFromImage(img, cfg.Heap.Mem().Config())
			cfg2 := cfg
			cfg2.Heap = pheap.Recover(mem2, wm)
			l2 := Recover(cfg2)
			th2 := l2.Open(dstruct.ThreadOpts{})
			for k, v := range model {
				if got, ok := th2.Get(k); !ok || got != v {
					t.Fatalf("recovered Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
				}
			}
			for i := uint64(0); i < 200; i += 3 {
				if th2.Contains(i) {
					t.Fatalf("deleted key %d resurrected", i)
				}
			}
			// The recovered structure must stay fully operational.
			if !th2.Insert(1000, 1) || !th2.Contains(1000) || !th2.Delete(1000) {
				t.Fatal("recovered list not operational")
			}
		})
	}
}

func TestRecoveryIgnoresCycles(t *testing.T) {
	cfg := configs(1 << 14)[0]
	l := New(cfg)
	th := l.Open(dstruct.ThreadOpts{})
	th.Insert(1, 1)
	th.Insert(2, 2)
	// Corrupt the image in volatile memory: make node2 point at node1.
	mem := cfg.Heap.Mem()
	n1 := dstruct.Ptr(mem.VolatileWord(cfg.Root()))
	n2 := dstruct.Ptr(mem.VolatileWord(cfg.Field(n1, fNext)))
	raw := mem.RegisterThread()
	raw.Store(cfg.Field(n2, fNext), uint64(n1))
	pairs := GatherAt(&cfg, cfg.Root())
	if len(pairs) != 2 {
		t.Fatalf("gather on cyclic chain returned %d pairs, want 2", len(pairs))
	}
}

// TestQuickRandomOpsMatchModel drives random op sequences through the
// default config and a model map (property test).
func TestQuickRandomOpsMatchModel(t *testing.T) {
	cfg := configs(1 << 18)[0]
	l := New(cfg)
	th := l.Open(dstruct.ThreadOpts{})
	model := make(map[uint64]uint64)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := uint64(op % 48)
			switch op % 3 {
			case 0:
				_, in := model[k]
				if th.Insert(k, uint64(op)) == in {
					return false
				}
				if !in {
					model[k] = uint64(op)
				}
			case 1:
				_, in := model[k]
				if th.Delete(k) != in {
					return false
				}
				delete(model, k)
			default:
				_, in := model[k]
				if th.Contains(k) != in {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRangePanics(t *testing.T) {
	cfg := configs(1 << 14)[0]
	l := New(cfg)
	th := l.Open(dstruct.ThreadOpts{})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized key accepted")
		}
	}()
	th.Insert(dstruct.KeyMax, 0)
}

func TestRepeatedCrashes(t *testing.T) {
	cfg := configs(1 << 20)[0]
	inst := func(c dstruct.Config) dstest.Instance {
		l := New(c)
		return dstest.Instance{Set: l, Cfg: c, Snapshot: l.Snapshot}
	}
	rec := func(c dstruct.Config) dstest.Instance {
		l := Recover(c)
		return dstest.Instance{Set: l, Cfg: c, Snapshot: l.Snapshot}
	}
	dstest.RepeatedCrashes(t, cfg, inst, rec, 4)
}

// TestDurableLinearizabilityEnumerated runs the systematic crash-point
// battery: every (budgeted) PWB/PFence boundary of a recorded execution
// must recover to a state some linearization explains.
func TestDurableLinearizabilityEnumerated(t *testing.T) {
	inst := func(c dstruct.Config) dstest.Instance {
		l := New(c)
		return dstest.Instance{Set: l, Cfg: c, Snapshot: l.Snapshot}
	}
	rec := func(c dstruct.Config) dstest.Instance {
		l := Recover(c)
		return dstest.Instance{Set: l, Cfg: c, Snapshot: l.Snapshot}
	}
	for _, cfg := range dstest.DLConfigs(true) {
		t.Run(dstest.Label(cfg), func(t *testing.T) {
			dstest.DLCheck(t, "list", cfg, inst, rec, 1)
		})
	}
}

// TestAddSequentialAgainstModel drives Add/Insert/Delete against a map
// model, checking the fetch-and-add contract (post-add value, presence
// flag, insert-if-absent) under every policy — including the p-CAS
// fallback for link-and-persist, whose counters must stay inside the
// instrumented payload.
func TestAddSequentialAgainstModel(t *testing.T) {
	for _, cfg := range configs(1 << 18) {
		cfg := cfg
		t.Run(cfg.Policy.Name()+"/"+cfg.Mode.String(), func(t *testing.T) {
			l := New(cfg)
			th := l.Open(dstruct.ThreadOpts{})
			model := make(map[uint64]uint64)
			// Base offset keeps the counters positive, so the RMW (full
			// 64-bit wrap) and CAS-loop (payload wrap) spellings agree.
			const base = uint64(1) << 20
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(24))
				switch rng.Intn(4) {
				case 0:
					delta := uint64(1)
					if rng.Intn(2) == 0 {
						delta = ^uint64(0) // -1
					}
					_, inModel := model[k]
					if !inModel {
						delta = base // first touch plants the base offset
					}
					want := model[k] + delta
					model[k] = want
					got, existed := th.Add(k, delta)
					if got != want || existed != inModel {
						t.Fatalf("op %d: Add(%d,%d) = (%d,%v), model says (%d,%v)",
							i, k, delta, got, existed, want, inModel)
					}
				case 1:
					_, inModel := model[k]
					if got := th.Delete(k); got != inModel {
						t.Fatalf("op %d: Delete(%d) = %v, model says %v", i, k, got, inModel)
					}
					delete(model, k)
				default:
					v, ok := th.Get(k)
					mv, inModel := model[k]
					if ok != inModel || (ok && v != mv) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), model says (%d,%v)", i, k, v, ok, mv, inModel)
					}
				}
			}
		})
	}
}

// TestAddConcurrentSum checks the linearizable-counter property: N
// workers issuing ±1 churn on a few hot keys leave exactly the net sum.
func TestAddConcurrentSum(t *testing.T) {
	for _, cfg := range configs(1 << 18) {
		cfg := cfg
		t.Run(cfg.Policy.Name()+"/"+cfg.Mode.String(), func(t *testing.T) {
			l := New(cfg)
			const workers, iters, keys = 4, 2000, 3
			const base = uint64(1) << 20
			init := l.Open(dstruct.ThreadOpts{})
			for k := uint64(0); k < keys; k++ {
				init.Insert(k, base)
			}
			var nets [workers][keys]uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := l.Open(dstruct.ThreadOpts{})
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						delta := uint64(1)
						if rng.Intn(2) == 0 {
							delta = ^uint64(0)
						}
						th.Add(k, delta)
						nets[w][k] += delta
					}
				}(w)
			}
			wg.Wait()
			snap := l.Snapshot()
			for k := uint64(0); k < keys; k++ {
				want := base
				for w := 0; w < workers; w++ {
					want += nets[w][k]
				}
				if snap[k] != want {
					t.Fatalf("key %d: recovered %d, want %d", k, snap[k], want)
				}
			}
		})
	}
}
