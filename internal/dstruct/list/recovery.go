package list

import (
	"sort"

	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

// GatherAt reads the persisted chain rooted at head in (recovered) memory
// and returns the surviving key→value pairs: nodes whose next word carries
// the Harris mark were logically deleted before the crash — the marking
// CAS is a p-instruction in every durability mode, so a marked node is
// marked in every crash image — and are discarded. A visited-set guards
// against cycles so a corrupt image fails recovery instead of hanging it.
func GatherAt(cfg *dstruct.Config, head pmem.Addr) map[uint64]uint64 {
	mem := cfg.Heap.Mem()
	out := make(map[uint64]uint64)
	seen := make(map[pmem.Addr]bool)
	curr := dstruct.Ptr(mem.VolatileWord(head))
	for curr != pmem.NilAddr && !seen[curr] {
		seen[curr] = true
		nextRaw := mem.VolatileWord(cfg.Field(curr, fNext))
		if !dstruct.Marked(nextRaw) {
			out[mem.VolatileWord(cfg.Field(curr, fKey))] = mem.VolatileWord(cfg.Field(curr, fVal))
		}
		curr = dstruct.Ptr(nextRaw)
	}
	return out
}

// RebuildAt writes a fresh, fully persisted sorted chain holding pairs at
// the link word head, using raw stores (recovery is single-threaded, the
// paper's crash model spawns new processes). The caller fences afterwards
// via FinishRebuild.
//
//flit:rawpersist single-threaded recovery rebuild with explicit PWB walk per node
func RebuildAt(cfg *dstruct.Config, t *pmem.Thread, ar *pheap.Arena, head pmem.Addr, pairs map[uint64]uint64) {
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	next := pmem.NilAddr
	for i := len(keys) - 1; i >= 0; i-- {
		n := ar.Alloc(cfg.Words(NumFields))
		t.Store(cfg.Field(n, fKey), keys[i])
		t.Store(cfg.Field(n, fVal), pairs[keys[i]])
		t.Store(cfg.Field(n, fNext), uint64(next))
		// Flush every line the node covers, stepping line-ALIGNED (the
		// same walk as core's persistObject) rather than line-SIZED from
		// the node base: the old spelling covers a straddling node's tail
		// line only by the accident of pheap's size-class alignment never
		// producing one. Spell the invariant, don't inherit it.
		end := n + pmem.Addr(cfg.Words(NumFields))
		for a := n; a < end; a = (a + pmem.WordsPerLine) &^ (pmem.WordsPerLine - 1) {
			t.PWB(a)
		}
		next = n
	}
	t.Store(head, uint64(next))
	t.PWB(head)
}

// Recover rebuilds a durably consistent list from the structure persisted
// at cfg's root slot: surviving pairs are gathered, re-laid-out into a
// clean chain, persisted, and the result attached. cfg.Heap must be a
// pheap.Recover heap over the crash image, so new nodes cannot overwrite
// surviving data.
//
//flit:rawpersist recovery fences the RebuildAt stores before attach
func Recover(cfg dstruct.Config) *List {
	t := cfg.Heap.Mem().RegisterThread()
	ar := cfg.Heap.NewArena()
	pairs := GatherAt(&cfg, cfg.Root())
	RebuildAt(&cfg, t, ar, cfg.Root(), pairs)
	t.PFence()
	ar.Release()
	t.Release()
	return Attach(cfg)
}
