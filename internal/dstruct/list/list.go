// Package list implements Harris's lock-free linked list [DISC'01], the
// first of the paper's four benchmark structures (and the building block
// of its hash table). Logical deletion sets the Harris mark bit in a
// node's next pointer; traversals physically unlink marked nodes.
//
// Persistence is delegated entirely to the configured core.Policy and
// durability Mode: Automatic issues every access as a p-instruction;
// NVTraverse and Manual traverse with v-loads and re-examine the decisive
// links with p-loads at the traversal/critical transition. Unlink CASes
// are p-instructions in every mode: a node is retired to the reclamation
// domain right after it is unlinked, so the unlink must be persistent
// before the node's memory can be reused (otherwise the persistent image
// could point into recycled memory).
package list

import (
	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
	"flit/internal/reclaim"
)

// Node field indices (multiplied by the configured stride).
const (
	fKey  = 0
	fVal  = 1
	fNext = 2
	// NumFields is the number of persisted fields per node.
	NumFields = 3
)

// List is a durable lock-free sorted linked list (a set of key→value
// pairs). The root slot word holds the pointer to the first node; there
// are no sentinel nodes.
type List struct {
	cfg dstruct.Config
	dom *reclaim.Domain
}

// New creates an empty list anchored at cfg's root slot. The root word is
// initialized durably so that recovery after an immediate crash finds an
// empty, not garbage, structure.
func New(cfg dstruct.Config) *List {
	l := &List{cfg: cfg, dom: reclaim.NewDomain()}
	t := cfg.Heap.Mem().RegisterThread()
	cfg.Policy.StorePrivate(t, cfg.Root(), 0, core.P)
	t.Release()
	return l
}

// Attach wraps an existing structure (e.g. one found in recovered memory)
// without touching the root.
func Attach(cfg dstruct.Config) *List {
	return &List{cfg: cfg, dom: reclaim.NewDomain()}
}

// Name returns "list".
func (l *List) Name() string { return "list" }

// Thread is a per-goroutine handle to the list.
type Thread struct {
	l *List
	// cfg is the list's config, with Policy possibly overridden per
	// thread (NewThreadWithPolicy): the group-commit batch sessions run
	// the same structure under a deferred-persistence wrapper while
	// plain sessions keep the base policy.
	cfg dstruct.Config
	c   dstruct.Ctx
	// ownsT/ownsAr record whether Open registered the pmem thread/arena
	// itself (nil ThreadOpts fields), in which case Close releases them;
	// resources passed in by the caller stay the caller's to release.
	ownsT  bool
	ownsAr bool
}

// NewThread creates a standalone per-goroutine handle — the Set
// interface's spelling of Open(ThreadOpts{}).
func (l *List) NewThread() dstruct.SetThread { return l.Open(dstruct.ThreadOpts{}) }

// Open creates a per-goroutine handle configured by o: zero fields take
// the list's defaults (fresh pmem thread, fresh arena, configured
// policy); see dstruct.ThreadOpts for what each override means. Only the
// epoch-reclamation handle is never shared — each structure owns its
// domain.
func (l *List) Open(o dstruct.ThreadOpts) *Thread {
	cfg := l.cfg
	if o.Policy != nil {
		cfg.Policy = o.Policy
	}
	t := o.T
	ownsT := false
	if t == nil {
		t = cfg.Heap.Mem().RegisterThread()
		ownsT = true
	}
	ar := o.Arena
	ownsAr := false
	if ar == nil {
		ar = cfg.Heap.NewArena()
		ownsAr = true
	}
	return &Thread{
		l: l, cfg: cfg, ownsT: ownsT, ownsAr: ownsAr,
		c: dstruct.Ctx{T: t, Ar: ar, H: l.dom.NewHandleOwned(ar, t)},
	}
}

// Close releases the handle's per-structure resources: the reclamation
// handle deregisters from the list's domain (retirees still in their
// grace period become domain orphans), and a pmem thread or arena the
// handle registered itself is released for reuse. Idempotent; the handle
// must not be used afterwards.
func (t *Thread) Close() {
	t.c.H.Close()
	if t.ownsAr {
		t.c.Ar.Release()
	}
	if t.ownsT {
		t.c.T.Release()
	}
}

// NewThreadWith creates a handle that shares an existing pmem thread and
// arena.
//
// Deprecated: use Open(dstruct.ThreadOpts{T: t, Arena: ar}).
func (l *List) NewThreadWith(t *pmem.Thread, ar *pheap.Arena) *Thread {
	return l.Open(dstruct.ThreadOpts{T: t, Arena: ar})
}

// NewThreadWithPolicy is NewThreadWith with the thread's instructions
// instrumented by pol instead of the list's configured policy.
//
// Deprecated: use Open(dstruct.ThreadOpts{T: t, Arena: ar, Policy: pol}).
func (l *List) NewThreadWithPolicy(t *pmem.Thread, ar *pheap.Arena, pol core.Policy) *Thread {
	return l.Open(dstruct.ThreadOpts{T: t, Arena: ar, Policy: pol})
}

// Ctx exposes the thread's execution context (stats, crash injection).
func (t *Thread) Ctx() dstruct.Ctx { return t.c }

// travP reports whether traversal loads are p-instructions (Automatic) or
// v-instructions (NVTraverse, Manual).
func (t *Thread) travP() bool { return t.cfg.Mode == dstruct.Automatic }

// find locates the first node with key >= key, physically unlinking any
// marked node it passes (Harris's helping). It returns the address of the
// link word pointing at curr (predLink), curr itself (0 if none), and
// curr's key.
func (t *Thread) find(head pmem.Addr, key uint64) (predLink pmem.Addr, curr pmem.Addr, curKey uint64) {
	cfg := &t.cfg
	pol := cfg.Policy
	travP := t.travP()
retry:
	predLink = head
	curr = dstruct.Ptr(pol.Load(t.c.T, predLink, travP))
	for curr != pmem.NilAddr {
		nextRaw := pol.Load(t.c.T, cfg.Field(curr, fNext), travP)
		if dstruct.Marked(nextRaw) {
			// curr is logically deleted: unlink it. The unlink is a
			// p-instruction in every mode — curr is retired immediately
			// after, so its unreachability must persist before reuse.
			succ := dstruct.Ptr(nextRaw)
			if !pol.CAS(t.c.T, predLink, uint64(curr), uint64(succ), core.P) {
				goto retry
			}
			t.c.H.Retire(curr, cfg.Words(NumFields))
			curr = succ
			continue
		}
		k := pol.Load(t.c.T, cfg.Field(curr, fKey), travP)
		if k >= key {
			return predLink, curr, k
		}
		predLink = cfg.Field(curr, fNext)
		curr = dstruct.Ptr(nextRaw)
	}
	return predLink, pmem.NilAddr, 0
}

// transition re-examines a link with a p-load at the traversal/critical
// boundary (NVTraverse's transition; Manual needs the same flush on the
// links its return value depends on). Under Automatic it is redundant and
// skipped — every load already was a p-load.
func (t *Thread) transition(a pmem.Addr) {
	if t.cfg.Mode != dstruct.Automatic {
		t.cfg.Policy.Load(t.c.T, a, core.P)
	}
}

// initNode writes a fresh node's fields. Automatic mode cannot know the
// node is still private — the C++ library instruments every persist<>
// access identically — so each field is a shared p-store. The optimized
// modes use private v-stores plus one batched write-back per line, fenced
// implicitly by the leading fence of the linking p-CAS.
func (t *Thread) initNode(node pmem.Addr, key, val uint64, nextRaw uint64) {
	cfg := &t.cfg
	pol := cfg.Policy
	if cfg.Mode == dstruct.Automatic {
		pol.Store(t.c.T, cfg.Field(node, fKey), key, core.P)
		pol.Store(t.c.T, cfg.Field(node, fVal), val, core.P)
		pol.Store(t.c.T, cfg.Field(node, fNext), nextRaw, core.P)
		return
	}
	pol.StorePrivate(t.c.T, cfg.Field(node, fKey), key, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(node, fVal), val, core.V)
	pol.StorePrivate(t.c.T, cfg.Field(node, fNext), nextRaw, core.V)
	pol.PersistObject(t.c.T, node, cfg.Words(NumFields))
}

// Insert adds key→val if absent.
func (t *Thread) Insert(key, val uint64) bool { return t.InsertAt(t.cfg.Root(), key, val) }

// InsertAt runs Insert on the chain rooted at the link word head — the
// entry point the hash table uses for its buckets.
func (t *Thread) InsertAt(head pmem.Addr, key, val uint64) bool {
	return t.insertAt(head, key, val, false)
}

// insertAt is the shared insert protocol; the key-present branch either
// returns false untouched (Insert) or overwrites the value in place with
// a shared p-store (Upsert).
func (t *Thread) insertAt(head pmem.Addr, key, val uint64, upsert bool) bool {
	if key >= dstruct.KeyMax {
		panic("list: key out of range")
	}
	cfg := &t.cfg
	pol := cfg.Policy
	t.c.H.Enter()
	for {
		predLink, curr, curKey := t.find(head, key)
		if curr != pmem.NilAddr && curKey == key {
			// Present: the response depends on the link that proves it.
			t.transition(predLink)
			if upsert {
				pol.Store(t.c.T, cfg.Field(curr, fVal), val, core.P)
			}
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return false
		}
		t.transition(predLink)
		node := t.c.Ar.Alloc(cfg.Words(NumFields))
		t.initNode(node, key, val, uint64(curr))
		if pol.CAS(t.c.T, predLink, uint64(curr), uint64(node), core.P) {
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return true
		}
		// Lost the race; the node was never shared, reuse it directly.
		t.c.Ar.Free(node, cfg.Words(NumFields))
	}
}

// Upsert inserts key→val if key is absent, or durably overwrites the value
// in place if present. It reports whether a new node was inserted.
func (t *Thread) Upsert(key, val uint64) bool { return t.UpsertAt(t.cfg.Root(), key, val) }

// UpsertAt runs Upsert on the chain rooted at head. The in-place update is
// a shared p-store on the value word: its leading fence orders the loads
// that located the node, and the value is persisted before the operation
// completes, so recovery observes either the old or the new value, never a
// torn state. Overwriting a node that a concurrent Delete has already
// marked is benign — the upsert linearizes immediately before the delete —
// and writing a node another thread has retired is safe inside the epoch,
// which blocks reuse until every current operation exits.
func (t *Thread) UpsertAt(head pmem.Addr, key, val uint64) bool {
	return t.insertAt(head, key, val, true)
}

// Add atomically adds delta to key's value (fetch-and-add semantics,
// wrapping at 2^64), inserting key→delta if absent. It returns the
// post-add value and whether the key was already present.
func (t *Thread) Add(key, delta uint64) (uint64, bool) { return t.AddAt(t.cfg.Root(), key, delta) }

// AddAt runs Add on the chain rooted at head. On a present key the
// update is a single shared p-FAA on the value word — its leading fence
// orders the locating loads, and the new value persists before the
// operation completes, so recovery observes the counter before or after
// the whole delta, never torn. Policies without RMW instructions
// (link-and-persist) fall back to a p-CAS loop, which additionally
// requires the counter to stay inside the instrumented payload
// (core.PayloadMask): the dirty-bit discipline owns the high bits of
// every word it stores. Adding to a node a concurrent Delete has marked
// is benign for the same reason Upsert's overwrite is — the add
// linearizes immediately before the delete. Decrement is delta's two's
// complement.
func (t *Thread) AddAt(head pmem.Addr, key, delta uint64) (uint64, bool) {
	if key >= dstruct.KeyMax {
		panic("list: key out of range")
	}
	cfg := &t.cfg
	pol := cfg.Policy
	t.c.H.Enter()
	for {
		predLink, curr, curKey := t.find(head, key)
		if curr != pmem.NilAddr && curKey == key {
			// Present: the response depends on the link that proves it.
			t.transition(predLink)
			vAddr := cfg.Field(curr, fVal)
			var nv uint64
			if pol.SupportsRMW() {
				nv = pol.FAA(t.c.T, vAddr, delta, core.P) + delta
			} else {
				for {
					old := pol.Load(t.c.T, vAddr, core.P)
					nv = (old + delta) & core.PayloadMask
					if pol.CAS(t.c.T, vAddr, old, nv, core.P) {
						break
					}
				}
			}
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return nv, true
		}
		// Absent: insert key→delta through the shared insert protocol.
		t.transition(predLink)
		node := t.c.Ar.Alloc(cfg.Words(NumFields))
		t.initNode(node, key, delta, uint64(curr))
		if pol.CAS(t.c.T, predLink, uint64(curr), uint64(node), core.P) {
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return delta, false
		}
		// Lost the race; the node was never shared, reuse it directly.
		t.c.Ar.Free(node, cfg.Words(NumFields))
	}
}

// Delete removes key if present. The marking CAS is the linearization
// point and is persisted in every mode; the physical unlink is also
// persisted (see package comment) but its failure is benign — find() of
// any later operation finishes the job.
func (t *Thread) Delete(key uint64) bool { return t.DeleteAt(t.cfg.Root(), key) }

// DeleteAt runs Delete on the chain rooted at head.
func (t *Thread) DeleteAt(head pmem.Addr, key uint64) bool {
	cfg := &t.cfg
	pol := cfg.Policy
	t.c.H.Enter()
	for {
		predLink, curr, curKey := t.find(head, key)
		if curr == pmem.NilAddr || curKey != key {
			t.transition(predLink)
			pol.Complete(t.c.T)
			t.c.H.Exit()
			return false
		}
		nextAddr := cfg.Field(curr, fNext)
		// The mark depends on curr being reachable: flush the incoming
		// link if a concurrent insert's p-store is still pending.
		t.transition(predLink)
		nextRaw := pol.Load(t.c.T, nextAddr, t.travP())
		if dstruct.Marked(nextRaw) {
			continue // someone else is deleting it; re-find helps unlink
		}
		if !pol.CAS(t.c.T, nextAddr, nextRaw, nextRaw|core.MarkBit, core.P) {
			continue
		}
		// Physical unlink; on failure a traversal will help.
		if pol.CAS(t.c.T, predLink, uint64(curr), nextRaw, core.P) {
			t.c.H.Retire(curr, cfg.Words(NumFields))
		} else {
			t.find(head, key)
		}
		pol.Complete(t.c.T)
		t.c.H.Exit()
		return true
	}
}

// Contains reports whether key is present. Read-only: it skips marked
// nodes without unlinking.
func (t *Thread) Contains(key uint64) bool { return t.ContainsAt(t.cfg.Root(), key) }

// ContainsAt runs Contains on the chain rooted at head.
func (t *Thread) ContainsAt(head pmem.Addr, key uint64) bool {
	cfg := &t.cfg
	pol := cfg.Policy
	travP := t.travP()
	t.c.H.Enter()
	predLink := head
	curr := dstruct.Ptr(pol.Load(t.c.T, predLink, travP))
	var nextRaw uint64
	for curr != pmem.NilAddr {
		nextRaw = pol.Load(t.c.T, cfg.Field(curr, fNext), travP)
		k := pol.Load(t.c.T, cfg.Field(curr, fKey), travP)
		if k >= key {
			if k == key && !dstruct.Marked(nextRaw) {
				// Present: the response depends on the link to curr and on
				// curr's unmarked next word.
				t.transition(predLink)
				t.transition(cfg.Field(curr, fNext))
				pol.Complete(t.c.T)
				t.c.H.Exit()
				return true
			}
			break
		}
		predLink = cfg.Field(curr, fNext)
		curr = dstruct.Ptr(nextRaw)
	}
	// Absent: the response depends on the link proving absence.
	t.transition(predLink)
	pol.Complete(t.c.T)
	t.c.H.Exit()
	return false
}

// Get returns the value stored under key, if present.
func (t *Thread) Get(key uint64) (uint64, bool) { return t.GetAt(t.cfg.Root(), key) }

// GetAt runs Get on the chain rooted at head.
func (t *Thread) GetAt(head pmem.Addr, key uint64) (uint64, bool) {
	cfg := &t.cfg
	pol := cfg.Policy
	travP := t.travP()
	t.c.H.Enter()
	defer t.c.H.Exit()
	predLink := head
	curr := dstruct.Ptr(pol.Load(t.c.T, predLink, travP))
	for curr != pmem.NilAddr {
		nextRaw := pol.Load(t.c.T, cfg.Field(curr, fNext), travP)
		k := pol.Load(t.c.T, cfg.Field(curr, fKey), travP)
		if k >= key {
			if k == key && !dstruct.Marked(nextRaw) {
				v := pol.Load(t.c.T, cfg.Field(curr, fVal), travP)
				// Present: the response depends on the link to curr, on
				// curr's unmarked next word, and — since Upsert makes it
				// mutable after publish — on the value word, whose
				// re-examining p-load flushes a concurrent overwrite's
				// pending p-store before this Get completes.
				t.transition(predLink)
				t.transition(cfg.Field(curr, fNext))
				t.transition(cfg.Field(curr, fVal))
				pol.Complete(t.c.T)
				return v, true
			}
			break
		}
		predLink = cfg.Field(curr, fNext)
		curr = dstruct.Ptr(nextRaw)
	}
	// Absent: the response depends on the link proving absence.
	t.transition(predLink)
	pol.Complete(t.c.T)
	return 0, false
}

// Snapshot returns the unmarked key→value pairs in order, reading the
// volatile state directly (test helper; callers must be quiescent).
func (l *List) Snapshot() map[uint64]uint64 { return l.SnapshotAt(l.cfg.Root()) }

// SnapshotAt reads the chain rooted at head (test helper).
func (l *List) SnapshotAt(head pmem.Addr) map[uint64]uint64 {
	mem := l.cfg.Heap.Mem()
	out := make(map[uint64]uint64)
	curr := dstruct.Ptr(mem.VolatileWord(head))
	for curr != pmem.NilAddr {
		nextRaw := mem.VolatileWord(l.cfg.Field(curr, fNext))
		if !dstruct.Marked(nextRaw) {
			out[mem.VolatileWord(l.cfg.Field(curr, fKey))] = mem.VolatileWord(l.cfg.Field(curr, fVal))
		}
		curr = dstruct.Ptr(nextRaw)
	}
	return out
}
