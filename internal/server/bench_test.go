package server_test

import (
	"testing"

	"flit/internal/core"
	"flit/internal/server"
	"flit/internal/store"
	"flit/internal/workload"
)

// benchExec measures the batch executor on a depth-16 mixed window,
// with and without the metrics bundle — the difference is the
// observability tax on the hot path (a few atomic adds and one
// time.Now per op).
func benchExec(b *testing.B, metricsOn bool) {
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 12, Policy: core.PolicyHT,
		HTBytes: 1 << 16, VirtualClock: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(st, server.Options{Metrics: metricsOn})
	defer srv.Close()
	bt := srv.NewBatcher()

	const depth = 16
	reqs := make([]server.Request, depth)
	resps := make([]server.Response, depth)
	for i := range reqs {
		key := workload.AppendKey(nil, uint64(i))
		if i%2 == 0 {
			reqs[i] = server.Request{Op: server.OpPut, Key: key, Val: uint64(i)}
		} else {
			reqs[i] = server.Request{Op: server.OpGet, Key: key}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Exec(reqs, resps)
	}
}

func BenchmarkServerExecMetricsOn(b *testing.B)  { benchExec(b, true) }
func BenchmarkServerExecMetricsOff(b *testing.B) { benchExec(b, false) }
