package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"flit/internal/metrics"
)

// The server's observability layer. When Options.Metrics is set the
// server carries a Metrics bundle — striped per-connection op counters
// and lock-free latency histograms from internal/metrics — that the
// batch executor records into on the hot path (zero allocations, a few
// atomic adds per op; see BenchmarkServerExec* for the pinned cost) and
// three consumers read from: the Prometheus-style /metrics page
// (WriteMetrics / MetricsHandler), the STATS v2 wire snapshot
// (Stats().Metrics), and the timeseries ring a background sampler fills
// with per-second deltas (StartSampler). With Options.Metrics unset the
// hot path pays one nil check per batch and the consumers degrade: the
// exposition page carries counters only, STATS omits the v2 block, and
// StartSampler declines to start.

// Op kind indices for the per-op-type metrics families.
const (
	kindGet = iota
	kindPut
	kindDelete
	kindContains
	numOpKinds
)

// opKindNames are the `op` label values, indexed by kind.
var opKindNames = [numOpKinds]string{"get", "put", "delete", "contains"}

// opKind maps a store opcode to its metrics index. Only key-carrying
// opcodes have one; callers gate on hasKey first.
func opKind(op byte) int {
	switch op {
	case OpGet:
		return kindGet
	case OpPut:
		return kindPut
	case OpDelete:
		return kindDelete
	default:
		return kindContains
	}
}

// Metrics is the server's metric bundle. All fields are safe for
// concurrent recording and concurrent reading; see internal/metrics.
type Metrics struct {
	// Ops counts acknowledged store operations by type; each batcher
	// writes on its own stripe, so connections never contend.
	Ops [numOpKinds]metrics.Counter
	// Lat is the op service time by type, in nanoseconds: each op's
	// equal share of its batch's execution window (the executor pays
	// three clock reads per batch, not one per op — see Batcher.Exec).
	// It deliberately excludes the shared group-commit fence — that
	// cost is visible on its own as Commit and BatchFences, because
	// attributing a shared fence to any single op would be arbitrary.
	Lat [numOpKinds]metrics.Hist
	// Commit is the group-commit duration per batch (the single fence
	// plus write-back drain), in nanoseconds.
	Commit metrics.Hist
	// BatchOps is the store-op count per group commit (values, not ns).
	BatchOps metrics.Hist
	// BatchFences is the PFence count per group commit.
	BatchFences metrics.Hist
	// Depth is the drained pipeline window size in request frames
	// (store ops and PING/STATS alike) per Exec.
	Depth metrics.Hist
	// ConnsOpen tracks currently-open connections.
	ConnsOpen metrics.Gauge
}

// NewMetrics builds an initialized bundle.
func NewMetrics() *Metrics {
	m := &Metrics{}
	for i := range m.Lat {
		m.Lat[i].Init()
	}
	m.Commit.Init()
	m.BatchOps.Init()
	m.BatchFences.Init()
	m.Depth.Init()
	return m
}

// OpsTotal sums the per-type op counters.
func (m *Metrics) OpsTotal() uint64 {
	var n uint64
	for i := range m.Ops {
		n += m.Ops[i].Load()
	}
	return n
}

// LatSnapshot fills s with the union of the per-type latency
// histograms — the "all ops" service-time distribution.
func (m *Metrics) LatSnapshot(s *metrics.HistSnapshot) {
	var one metrics.HistSnapshot
	*s = metrics.HistSnapshot{}
	for i := range m.Lat {
		m.Lat[i].Read(&one)
		s.Merge(&one)
	}
}

// Metrics returns the server's metric bundle, or nil when disabled.
func (s *Server) Metrics() *Metrics { return s.metrics }

// WriteMetrics renders the server's full Prometheus text exposition
// page: cumulative counters (always), the histogram families and open-
// connection gauge (when metrics are enabled), and per-shard recovery
// time when the served store was rebuilt from a crash image.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	p := metrics.NewPromWriter(w)
	p.Meta("flit_conns_total", "counter", "connections accepted")
	p.Sample("flit_conns_total", "", float64(st.Conns))
	p.Meta("flit_ops_served_total", "counter", "store operations acknowledged (ack => persisted)")
	p.Sample("flit_ops_served_total", "", float64(st.OpsServed))
	p.Meta("flit_batches_total", "counter", "group commits issued")
	p.Sample("flit_batches_total", "", float64(st.Batches))
	p.Meta("flit_drained_lines_total", "counter", "cache lines drained by group commits")
	p.Sample("flit_drained_lines_total", "", float64(st.Drained))
	p.Meta("flit_pwbs_total", "counter", "PWB instructions issued serving requests")
	p.Sample("flit_pwbs_total", "", float64(st.PWBs))
	p.Meta("flit_pfences_total", "counter", "PFence instructions issued serving requests")
	p.Sample("flit_pfences_total", "", float64(st.PFences))
	p.Meta("flit_shards", "gauge", "store shard count")
	p.Sample("flit_shards", "", float64(st.Shards))
	p.Meta("flit_pheap_watermark_words", "gauge", "persistent-heap allocation high-water mark in words; steady under churn when reclamation recycles")
	p.Sample("flit_pheap_watermark_words", "", float64(s.st.Heap().Watermark()))
	p.Meta("flit_mem_threads", "gauge", "live registered pmem threads (released slots excluded)")
	p.Sample("flit_mem_threads", "", float64(len(s.st.Mem().Threads())))
	if ss := s.st.SplitStat(); ss.Active {
		p.Meta("flit_split_target_shards", "gauge", "target shard count of the in-flight online split")
		p.Sample("flit_split_target_shards", "", float64(ss.Target))
		p.Meta("flit_split_shards_migrated", "gauge", "old shards fully migrated by the in-flight split")
		p.Sample("flit_split_shards_migrated", "", float64(ss.Migrated))
		p.Meta("flit_split_keys_moved", "gauge", "keys moved so far by the in-flight split")
		p.Sample("flit_split_keys_moved", "", float64(ss.Moved))
	}
	p.Meta("flit_max_batch", "gauge", "group commit size cap")
	p.Sample("flit_max_batch", "", float64(st.MaxBatch))
	p.Meta("flit_shed_total", "counter", "store operations shed by admission control, by reason")
	p.Sample("flit_shed_total", `reason="busy"`, float64(st.ShedBusy))
	p.Sample("flit_shed_total", `reason="draining"`, float64(st.ShedDraining))
	p.Meta("flit_conns_rejected_total", "counter", "connections rejected at the max-connections cap")
	p.Sample("flit_conns_rejected_total", "", float64(st.ConnsRejected))
	p.Meta("flit_conn_errors_total", "counter", "failed connections by cause")
	for _, cause := range connCauseNames {
		p.Sample("flit_conn_errors_total", fmt.Sprintf("cause=%q", cause), float64(st.ConnErrors[cause]))
	}
	p.Meta("flit_draining", "gauge", "1 while a graceful shutdown is draining connections")
	drainVal := 0.0
	if st.Draining {
		drainVal = 1
	}
	p.Sample("flit_draining", "", drainVal)

	if m := s.metrics; m != nil {
		p.Meta("flit_conns_open", "gauge", "currently open connections")
		p.Sample("flit_conns_open", "", float64(m.ConnsOpen.Load()))
		p.Meta("flit_ops_total", "counter", "acknowledged store operations by type")
		for k, name := range opKindNames {
			p.Sample("flit_ops_total", fmt.Sprintf("op=%q", name), float64(m.Ops[k].Load()))
		}
		var snap metrics.HistSnapshot
		p.Meta("flit_op_seconds", "histogram", "op service time by type (equal share of the batch execution window, excluding the shared group-commit fence)")
		for k, name := range opKindNames {
			m.Lat[k].Read(&snap)
			p.Histogram("flit_op_seconds", fmt.Sprintf("op=%q", name), &snap, 1e-9)
		}
		p.Meta("flit_commit_seconds", "histogram", "group-commit duration per batch (fence + write-back drain)")
		m.Commit.Read(&snap)
		p.Histogram("flit_commit_seconds", "", &snap, 1e-9)
		p.Meta("flit_batch_ops", "histogram", "store operations per group commit")
		m.BatchOps.Read(&snap)
		p.Histogram("flit_batch_ops", "", &snap, 1)
		p.Meta("flit_batch_pfences", "histogram", "PFence instructions per group commit")
		m.BatchFences.Read(&snap)
		p.Histogram("flit_batch_pfences", "", &snap, 1)
		p.Meta("flit_pipeline_depth", "histogram", "drained pipeline window size in request frames")
		m.Depth.Read(&snap)
		p.Histogram("flit_pipeline_depth", "", &snap, 1)
	}

	if rs := s.st.LastRecovery(); rs != nil {
		p.Meta("flit_recovery_seconds", "gauge", "per-shard rebuild time of the last crash recovery")
		for i, d := range rs.Shards {
			p.Sample("flit_recovery_seconds", fmt.Sprintf("shard=%q", fmt.Sprint(i)), d.Seconds())
		}
		p.Meta("flit_recovery_total_seconds", "gauge", "wall time of the last shard-parallel recovery")
		p.Sample("flit_recovery_total_seconds", "", rs.Elapsed.Seconds())
		p.Meta("flit_recovery_keys", "gauge", "keys present after the last recovery")
		p.Sample("flit_recovery_keys", "", float64(rs.Keys))
	}
	return p.Flush()
}

// MetricsHandler serves WriteMetrics over HTTP — mount it at /metrics
// for Prometheus-style scraping.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
}

// StartSampler launches the background sampler: every interval it
// reads the cumulative counters and histograms, computes the interval
// deltas (ops/s, p50/p95/p99 service time, pwbs/op, pfences/op,
// ops/batch) and pushes one metrics.Sample into a fresh ring holding
// the last capacity samples. stop halts the sampler and waits for it;
// the ring stays readable after. Requires Options.Metrics — with the
// bundle disabled there is nothing to sample and it returns (nil,
// no-op).
func (s *Server) StartSampler(interval time.Duration, capacity int) (*metrics.Ring, func()) {
	m := s.metrics
	if m == nil {
		return nil, func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	ring := metrics.NewRing(capacity)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var prevLat metrics.HistSnapshot
		m.LatSnapshot(&prevLat)
		prev := s.Stats()
		prevT := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			cur := s.Stats()
			now := time.Now()
			var lat metrics.HistSnapshot
			m.LatSnapshot(&lat)
			interval := lat
			interval.Sub(&prevLat)
			sm := metrics.Sample{
				UnixNano: now.UnixNano(),
				Ops:      cur.OpsServed,
				Batches:  cur.Batches,
				Conns:    m.ConnsOpen.Load(),
				P50Ns:    interval.Quantile(0.50),
				P95Ns:    interval.Quantile(0.95),
				P99Ns:    interval.Quantile(0.99),
			}
			if dt := now.Sub(prevT).Seconds(); dt > 0 {
				sm.OpsPerSec = float64(cur.OpsServed-prev.OpsServed) / dt
			}
			if dops := cur.OpsServed - prev.OpsServed; dops > 0 {
				sm.PWBsPerOp = float64(cur.PWBs-prev.PWBs) / float64(dops)
				sm.PFencesPerOp = float64(cur.PFences-prev.PFences) / float64(dops)
			}
			if dbatches := cur.Batches - prev.Batches; dbatches > 0 {
				sm.OpsPerBatch = float64(cur.OpsServed-prev.OpsServed) / float64(dbatches)
			}
			ring.Push(sm)
			prev, prevT, prevLat = cur, now, lat
		}
	}()
	var stopOnce sync.Once
	return ring, func() {
		stopOnce.Do(func() { close(done) })
		wg.Wait()
	}
}
