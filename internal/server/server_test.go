package server_test

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"

	"flit/internal/client"
	"flit/internal/core"
	"flit/internal/pmem"
	"flit/internal/server"
	"flit/internal/store"
)

func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 10, Policy: core.PolicyHT,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// pipeServer starts a server over an in-process pipe and returns a
// connected client.
func pipeServer(t *testing.T, st *store.Store, opts server.Options) (*server.Server, *client.Conn) {
	t.Helper()
	srv := server.New(st, opts)
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	c := client.New(cc)
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestServerRoundTrips covers every opcode through the synchronous
// client API.
func TestServerRoundTrips(t *testing.T) {
	_, c := pipeServer(t, newTestStore(t), server.Options{})

	if ins, err := c.Put([]byte("alpha"), 41); err != nil || !ins {
		t.Fatalf("Put = %v,%v want true,nil", ins, err)
	}
	if ins, err := c.Put([]byte("alpha"), 42); err != nil || ins {
		t.Fatalf("overwrite Put = %v,%v want false,nil", ins, err)
	}
	if v, ok, err := c.Get([]byte("alpha")); err != nil || !ok || v != 42 {
		t.Fatalf("Get = %d,%v,%v want 42,true,nil", v, ok, err)
	}
	if _, ok, err := c.Get([]byte("ghost")); err != nil || ok {
		t.Fatalf("Get(ghost) = %v,%v want false,nil", ok, err)
	}
	if present, err := c.Contains([]byte("alpha")); err != nil || !present {
		t.Fatalf("Contains = %v,%v want true,nil", present, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if existed, err := c.Delete([]byte("alpha")); err != nil || !existed {
		t.Fatalf("Delete = %v,%v want true,nil", existed, err)
	}
	if existed, err := c.Delete([]byte("alpha")); err != nil || existed {
		t.Fatalf("re-Delete = %v,%v want false,nil", existed, err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.OpsServed != 7 || stats.Batches == 0 || stats.Shards != 4 {
		t.Fatalf("Stats = %+v: want 7 ops served over >0 batches on 4 shards", stats)
	}
}

// TestServerPipelineBatches: a flushed pipeline window executes as one
// group commit, and responses come back in request order.
func TestServerPipelineBatches(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{})

	const n = 16
	var keys [n][2]byte
	for i := 0; i < n; i++ {
		keys[i] = [2]byte{'k', byte(i)}
		c.Send(&server.Request{Op: server.OpPut, Key: keys[i][:], Val: uint64(100 + i)})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Flag {
			t.Fatalf("pipelined Put %d reported existing key", i)
		}
	}
	// Read them back pipelined; response order must match request order.
	for i := 0; i < n; i++ {
		c.Send(&server.Request{Op: server.OpGet, Key: keys[i][:]})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != server.StatusOK || resp.Val != uint64(100+i) {
			t.Fatalf("pipelined Get %d = status %d val %d", i, resp.Status, resp.Val)
		}
	}
	stats := srv.Stats()
	if stats.OpsServed != 2*n {
		t.Fatalf("served %d ops, want %d", stats.OpsServed, 2*n)
	}
	if stats.Batches >= 2*n {
		t.Fatalf("%d batches for %d pipelined ops: no batching happened", stats.Batches, 2*n)
	}
}

// TestServerSameKeyPipelineOrder: same-key requests in one pipeline
// window keep program order through the per-shard grouping.
func TestServerSameKeyPipelineOrder(t *testing.T) {
	_, c := pipeServer(t, newTestStore(t), server.Options{})
	key := []byte("hot")
	c.Send(&server.Request{Op: server.OpPut, Key: key, Val: 1})
	c.Send(&server.Request{Op: server.OpGet, Key: key})
	c.Send(&server.Request{Op: server.OpPut, Key: key, Val: 2})
	c.Send(&server.Request{Op: server.OpGet, Key: key})
	c.Send(&server.Request{Op: server.OpDelete, Key: key})
	c.Send(&server.Request{Op: server.OpContains, Key: key})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		val  uint64
		flag bool
	}{{0, true}, {1, false}, {0, false}, {2, false}, {0, true}, {0, false}}
	for i, w := range want {
		resp, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Val != w.val || resp.Flag != w.flag {
			t.Fatalf("frame %d: val=%d flag=%v, want val=%d flag=%v", i, resp.Val, resp.Flag, w.val, w.flag)
		}
	}
}

// TestServerAckImpliesPersisted: everything acknowledged over the wire
// survives a DropUnfenced crash — the protocol-level durable rule.
func TestServerAckImpliesPersisted(t *testing.T) {
	st := newTestStore(t)
	_, c := pipeServer(t, st, server.Options{})
	for i := 0; i < 32; i++ {
		key := [2]byte{'d', byte(i)}
		c.Send(&server.Request{Op: server.OpPut, Key: key[:], Val: uint64(i)})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	// Every response frame has been read: the ops are acknowledged.
	img := st.Mem().CrashImage(pmem.DropUnfenced, 7)
	st2, _, err := store.Recover(pmem.NewFromImage(img, st.Mem().Config()), st.Heap().Watermark(), st.Opts())
	if err != nil {
		t.Fatal(err)
	}
	sess := store.Open[[]byte](st2, store.Direct)
	for i := 0; i < 32; i++ {
		key := [2]byte{'d', byte(i)}
		if v, ok := sess.Get(key[:]); !ok || v != uint64(i) {
			t.Fatalf("acknowledged key %d lost across crash (got %d,%v)", i, v, ok)
		}
	}
}

// TestServerOverTCP exercises a real listener end to end, including
// Close unblocking Serve.
func TestServerOverTCP(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put([]byte("tcp-key"), 9); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get([]byte("tcp-key")); err != nil || !ok || v != 9 {
		t.Fatalf("Get over TCP = %d,%v,%v", v, ok, err)
	}
	c.Close()
	srv.Close()
	if err := <-done; err != server.ErrClosed {
		t.Fatalf("Serve returned %v, want ErrClosed", err)
	}
}

// TestBatcherDirect drives the batch executor without a transport — the
// path the crash batteries enumerate.
func TestBatcherDirect(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{})
	b := srv.NewBatcher()
	reqs := []server.Request{
		{Op: server.OpPut, Key: []byte("x"), Val: 1},
		{Op: server.OpPut, Key: []byte("y"), Val: 2},
		{Op: server.OpGet, Key: []byte("x")},
		{Op: server.OpPing},
		{Op: server.OpDelete, Key: []byte("y")},
	}
	resps := make([]server.Response, len(reqs))
	b.Exec(reqs, resps)
	if !resps[0].Flag || !resps[1].Flag {
		t.Fatal("puts did not insert")
	}
	if resps[2].Status != server.StatusOK || resps[2].Val != 1 {
		t.Fatalf("get = %+v", resps[2])
	}
	if resps[3].Status != server.StatusOK {
		t.Fatalf("ping = %+v", resps[3])
	}
	if !resps[4].Flag {
		t.Fatal("delete missed")
	}
	if b.Session().Pending() != 0 {
		t.Fatal("Exec left the batch uncommitted")
	}
	if n, ok := core.LiveTagCount(st.Policy()); !ok || n != 0 {
		t.Fatalf("live tags after Exec = %d, want 0", n)
	}
}

// TestStatsConcurrentWithTraffic: STATS is a monitoring poll and must be
// safe while other connections execute batches (run under -race in the
// nightly suite — the server publishes batcher-thread deltas into
// atomics rather than walking live per-thread counters).
func TestStatsConcurrentWithTraffic(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{})
	mk := func() *client.Conn {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		c := client.New(cc)
		t.Cleanup(func() { c.Close() })
		return c
	}
	traffic, monitor := mk(), mk()

	done := make(chan struct{})
	go func() {
		defer close(done)
		key := make([]byte, 2)
		for i := 0; i < 200; i++ {
			key[0], key[1] = byte(i), byte(i>>8)
			for j := 0; j < 8; j++ {
				traffic.Send(&server.Request{Op: server.OpPut, Key: key, Val: uint64(j)})
			}
			if err := traffic.Flush(); err != nil {
				return
			}
			for j := 0; j < 8; j++ {
				if _, err := traffic.Recv(); err != nil {
					return
				}
			}
		}
	}()
	var last server.Stats
	for i := 0; ; i++ {
		stats, err := monitor.Stats()
		if err != nil {
			t.Fatalf("Stats poll %d: %v", i, err)
		}
		if stats.OpsServed < last.OpsServed || stats.PWBs < last.PWBs || stats.PFences < last.PFences {
			t.Fatalf("server counters went backwards: %+v after %+v", stats, last)
		}
		last = stats
		select {
		case <-done:
			final, err := monitor.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if final.OpsServed != 1600 {
				t.Fatalf("served %d ops, want 1600", final.OpsServed)
			}
			if final.PWBs == 0 || final.PFences == 0 {
				t.Fatalf("request execution published no instruction counts: %+v", final)
			}
			return
		default:
		}
	}
}

// TestServerMalformedRequestGetsErrorFrame: an unknown opcode draws a
// best-effort StatusErr diagnostic frame before the connection closes —
// the protocol's documented malformed-request behavior.
func TestServerMalformedRequestGetsErrorFrame(t *testing.T) {
	srv := server.New(newTestStore(t), server.Options{})
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	defer cc.Close()
	// Frame: payload length 1, opcode 99 (unknown).
	if _, err := cc.Write([]byte{1, 0, 0, 0, 99}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(cc)
	var resp server.Response
	if err := server.ReadResponse(br, 0, &resp); err != nil {
		t.Fatalf("no error frame before close: %v", err)
	}
	if resp.Status != server.StatusErr || !strings.Contains(string(resp.Body), "opcode") {
		t.Fatalf("error frame = %+v, want StatusErr naming the opcode", resp)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection stayed open after protocol error (err=%v)", err)
	}
}

// TestConnectionChurnReusesSessions: pmem threads (and their arenas and
// reclamation slots) cannot be unregistered, so the server pools its
// batch executors — serial connection churn must not grow the thread
// registry past the peak concurrency.
func TestConnectionChurnReusesSessions(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{})
	base := len(st.Mem().Threads()) // store construction registers its own
	for i := 0; i < 20; i++ {
		cc, sc := net.Pipe()
		done := make(chan struct{})
		go func() { srv.ServeConn(sc); close(done) }()
		c := client.New(cc)
		if _, err := c.Put([]byte{'c', byte(i)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
		c.Close()
		<-done // batcher returned to the pool before the next connection
	}
	if n := len(st.Mem().Threads()) - base; n > 2 {
		t.Fatalf("20 serial connections registered %d new pmem threads: sessions are leaking per connection", n)
	}
}
