package server

import (
	"bufio"
	"net"
	"testing"

	"flit/internal/core"
	"flit/internal/store"
)

// TestServeConnPanicIsolation injects a crash panic into the batcher a
// connection will pick up and proves the blast radius is that one
// connection: the panic is recovered, counted under cause=panic, the
// batcher's session is cleaned up, and the server keeps serving new
// connections.
func TestServeConnPanicIsolation(t *testing.T) {
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 10, Policy: core.PolicyHT,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, Options{})

	// Arm the pooled batcher: the next connection's first Exec trips the
	// injected crash a few instrumented instructions in.
	armed := s.NewBatcher()
	armed.Session().Thread().SetCrashAfter(3)
	s.putBatcher(armed)

	roundTrip := func(cc net.Conn, req *Request) (Response, error) {
		var resp Response
		if _, err := cc.Write(AppendRequest(nil, req)); err != nil {
			return resp, err
		}
		err := ReadResponse(bufio.NewReader(cc), req.Op, &resp)
		return resp, err
	}

	cc1, sc1 := net.Pipe()
	done := make(chan struct{})
	go func() { s.ServeConn(sc1); close(done) }()
	// The put panics mid-execution; the client sees the conn die, never
	// an ack.
	if resp, err := roundTrip(cc1, &Request{Op: OpPut, Key: []byte("boom"), Val: 1}); err == nil {
		t.Fatalf("op on crashing conn was answered: %+v", resp)
	}
	cc1.Close()
	<-done

	if got := s.connErrs[causePanic].Load(); got != 1 {
		t.Fatalf("connErrs[panic] = %d, want 1", got)
	}
	// The process survived and a fresh connection serves normally.
	cc2, sc2 := net.Pipe()
	go s.ServeConn(sc2)
	defer cc2.Close()
	resp, err := roundTrip(cc2, &Request{Op: OpPut, Key: []byte("alive"), Val: 7})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("post-panic put = %+v, %v; want StatusOK", resp, err)
	}
}
