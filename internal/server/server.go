// Package server is the network front-end of FliT-Store: a pipelined
// binary protocol (see protocol.go) whose request path is built around
// group-commit durability batching.
//
// Every connection is served by one goroutine owning one
// store.BatchSession. The handler drains the connection's pipeline —
// everything already buffered, up to Options.MaxBatch — into a batch,
// groups the batch per shard (stable order, so same-key requests keep
// their pipeline order), executes it with persistence deferred
// (core.Deferred), issues ONE fence for the whole batch via the
// coalescing write-back queue, and only then writes the responses. The
// ack rule is the durable-linearizability contract: a response frame
// exists only for operations whose effects a single shared PFence has
// already persisted, so "acknowledged ⇒ persisted" holds at every crash
// point — verified systematically by the batched dlcheck battery
// (internal/crashtest.RunStoreBatchedDL).
//
// Compared with per-operation persistence, the batch pays one completion
// fence per pipeline instead of one per op, and its deferred stores
// coalesce repeated flushes of hot lines — the fence- and
// flush-amortization of flat-combining persistent designs, applied at
// the service boundary.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flit/internal/metrics"
	"flit/internal/resilience"
	"flit/internal/store"
)

// Options configures a server. Zero values pick defaults.
type Options struct {
	// MaxBatch caps the operations executed under one group commit
	// (default 64). A connection's batch is min(pipelined, MaxBatch).
	MaxBatch int
	// Metrics enables the observability layer (see metrics.go): per-op
	// latency histograms, striped op counters, batch-shape histograms,
	// the /metrics exposition page's histogram families, the STATS v2
	// summary and the timeseries sampler. Off, the hot path pays one
	// nil check per batch and those consumers degrade gracefully.
	Metrics bool

	// --- resilience layer (admission control, deadlines, drain) ---
	// Zero values disable each mechanism, so the hot path of an
	// unconfigured server pays one nil/zero check per batch and no
	// deadline syscalls.

	// MaxConns caps concurrently served connections. A connection over
	// the cap is answered with one unsolicited BUSY frame and closed.
	MaxConns int
	// MaxInflight caps store ops concurrently being executed across all
	// connections; a batch that would exceed it is shed with BUSY.
	MaxInflight int
	// RateLimit admits at most this many store ops per second (token
	// bucket, burst RateBurst); excess batches are shed with BUSY plus a
	// retry-after hint. PING/STATS are control traffic, never shed.
	RateLimit float64
	// RateBurst is the token-bucket burst. Defaults to 4*MaxBatch and is
	// clamped to at least MaxBatch so a full pipeline window can always
	// (eventually) conform.
	RateBurst int
	// IdleTimeout reaps connections that sit idle at a pipeline head.
	IdleTimeout time.Duration
	// WriteTimeout is the slow-reader budget: the whole response batch
	// must be accepted by the peer within it. A stalled reader is
	// disconnected rather than wedging its handler goroutine (each
	// connection commits its own batches, so a wedged writer would
	// otherwise hold a batcher session hostage, not just itself).
	WriteTimeout time.Duration
	// Logger receives one line per failed connection (cause + remote
	// address). nil keeps the server silent; counters still tick.
	Logger *log.Logger

	// UnsafeDrainAckFirst deliberately breaks Shutdown for the chaos
	// harness's must-fail tooth: while draining, connections keep being
	// served but batches are acknowledged WITHOUT being executed or
	// committed. The ack⇒persisted contract is violated at the next
	// crash — the chaos battery must detect this. Never set outside
	// tests.
	UnsafeDrainAckFirst bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.RateLimit > 0 {
		if o.RateBurst <= 0 {
			o.RateBurst = 4 * o.MaxBatch
		}
		if o.RateBurst < o.MaxBatch {
			o.RateBurst = o.MaxBatch
		}
	}
	return o
}

// StatsVersion is the STATS snapshot format version. v1 was the bare
// counter set; v2 added the Version field itself and the optional
// Metrics summary (server-side latency quantiles and batch-shape
// distribution). The body is JSON, so the versions are mutually
// forward- and backward-compatible: old clients ignore the new fields,
// new clients treat a missing Metrics block as "server has metrics
// disabled" (or a v1 server).
const StatsVersion = 2

// Stats is the server's cumulative operational snapshot, also the STATS
// opcode's JSON body. The instruction counts cover the server's request
// execution (each batcher folds its own thread's deltas into server
// atomics after every batch — never a racy walk of live per-thread
// counters), so pwbs/acked-op over a window is ΔPWBs/ΔOpsServed.
type Stats struct {
	Version   int    `json:"v"`          // StatsVersion of the emitting server
	Conns     uint64 `json:"conns"`      // connections accepted
	OpsServed uint64 `json:"ops_served"` // store ops acknowledged
	Batches   uint64 `json:"batches"`    // group commits issued
	Drained   uint64 `json:"drained"`    // lines drained by group commits
	MaxBatch  int    `json:"max_batch"`

	Shards int    `json:"shards"`
	Policy string `json:"policy"`

	PWBs    uint64 `json:"pwbs"`    // PWB instructions issued serving requests
	PFences uint64 `json:"pfences"` // PFence instructions issued serving requests

	// Resilience accounting (compatible v2 extensions — JSON ignores
	// unknown fields, so older clients are unaffected). Shed counts are
	// store ops rejected without execution; ConnErrors classifies failed
	// connections by cause (framing, reset, idle, slow_reader, panic).
	ShedBusy      uint64            `json:"shed_busy"`
	ShedDraining  uint64            `json:"shed_draining"`
	ConnsRejected uint64            `json:"conns_rejected"`
	ConnErrors    map[string]uint64 `json:"conn_errors,omitempty"`
	Draining      bool              `json:"draining,omitempty"`

	// Metrics is the v2 extension, present when the server's metrics
	// core is enabled: cumulative server-side quantiles and batch-shape
	// summaries, so a load generator can print server-observed
	// percentiles next to its client-observed ones.
	Metrics *StatsMetrics `json:"metrics,omitempty"`
}

// StatsMetrics is the STATS v2 summary block, distilled from the
// metric bundle's histograms at snapshot time. All values are
// cumulative since server start.
type StatsMetrics struct {
	Gets     uint64 `json:"gets"`
	Puts     uint64 `json:"puts"`
	Deletes  uint64 `json:"deletes"`
	Contains uint64 `json:"contains"`

	// Op service time quantiles across all op types (ns); the batch
	// execution time of an op, excluding the shared group-commit fence.
	OpP50Ns int64 `json:"op_p50_ns"`
	OpP95Ns int64 `json:"op_p95_ns"`
	OpP99Ns int64 `json:"op_p99_ns"`
	OpMaxNs int64 `json:"op_max_ns"`

	// Group-commit shape: fence duration tail, ops-per-commit
	// distribution, mean fences per commit, pipeline window tail.
	CommitP99Ns        int64   `json:"commit_p99_ns"`
	BatchOpsP50        int64   `json:"batch_ops_p50"`
	BatchOpsP95        int64   `json:"batch_ops_p95"`
	FencesPerBatchMean float64 `json:"fences_per_batch_mean"`
	DepthP95           int64   `json:"depth_p95"`
}

// Server serves a FliT-Store over the wire protocol.
type Server struct {
	st   *store.Store
	opts Options

	// metrics is the observability bundle, nil when Options.Metrics is
	// unset — every hot-path record site gates on that nil.
	metrics    *Metrics
	batcherIDs atomic.Uint64 // counter stripe assignment
	epoch      time.Time     // fixed base for cheap monotonic time.Since reads

	conns     atomic.Uint64
	opsServed atomic.Uint64
	batches   atomic.Uint64
	drained   atomic.Uint64
	pwbs      atomic.Uint64
	pfences   atomic.Uint64

	// Resilience state. The shed counters are striped (batchers write on
	// their own stripe); conn-level counters are plain atomics — they
	// tick at connection granularity, not op granularity.
	limiter       *resilience.Limiter
	draining      atomic.Bool
	connWG        sync.WaitGroup // live ServeConn handlers, drained by Shutdown
	inflight      atomic.Int64   // store ops currently inside Exec
	connsOpen     atomic.Int64   // currently served connections (MaxConns)
	connsRejected atomic.Uint64  // connections turned away at MaxConns
	shedBusy      metrics.Counter
	shedDraining  metrics.Counter
	connErrs      [numConnCauses]atomic.Uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	open      map[net.Conn]struct{}
	closed    bool

	// idle pools batchers for reuse across connections. Sessions release
	// their pmem thread, arena and reclamation slots on Close, so pooling
	// is a throughput optimization (no per-connection session setup), not
	// a leak-prevention necessity; the pool is drained — every batcher
	// closed — when the server closes.
	idleMu sync.Mutex
	idle   []*Batcher
}

// Connection failure causes for flit_conn_errors_total{cause=...} and
// Stats.ConnErrors. A clean EOF is not an error and is not counted.
const (
	causeFraming    = iota // malformed frame (protocol violation)
	causeReset             // transport error (peer reset, unexpected EOF)
	causeIdle              // idle-timeout reap at a pipeline head
	causeSlowReader        // write budget exceeded (stalled response reader)
	causePanic             // handler panic, isolated and recovered
	numConnCauses
)

// connCauseNames are the `cause` label values, indexed by cause.
var connCauseNames = [numConnCauses]string{"framing", "reset", "idle", "slow_reader", "panic"}

// New builds a server over st.
func New(st *store.Store, opts Options) *Server {
	s := &Server{
		st: st, opts: opts.withDefaults(),
		listeners: make(map[net.Listener]struct{}),
		open:      make(map[net.Conn]struct{}),
		epoch:     time.Now(),
	}
	s.limiter = resilience.NewLimiter(s.opts.RateLimit, s.opts.RateBurst)
	if s.opts.Metrics {
		s.metrics = NewMetrics()
	}
	return s
}

// connError counts a failed connection once per cause and logs it once
// per connection with the remote address — the silent-hangup bug fix:
// framing errors and peer resets used to vanish without a trace.
func (s *Server) connError(c net.Conn, cause int, err error) {
	s.connErrs[cause].Add(1)
	if lg := s.opts.Logger; lg != nil {
		addr := "?"
		if ra := c.RemoteAddr(); ra != nil {
			addr = ra.String()
		}
		lg.Printf("server: conn %s: %s: %v", addr, connCauseNames[cause], err)
	}
}

// Store returns the served store.
func (s *Server) Store() *store.Store { return s.st }

// Stats snapshots the server counters. Safe to call from any goroutine
// at any time: every field is an atomic the batchers publish into —
// reading the live per-thread instruction counters here would race with
// the connection goroutines incrementing them.
func (s *Server) Stats() Stats {
	st := Stats{
		Version:   StatsVersion,
		Conns:     s.conns.Load(),
		OpsServed: s.opsServed.Load(),
		Batches:   s.batches.Load(),
		Drained:   s.drained.Load(),
		MaxBatch:  s.opts.MaxBatch,
		Shards:    s.st.NumShards(),
		Policy:    s.st.Opts().Policy,
		PWBs:      s.pwbs.Load(),
		PFences:   s.pfences.Load(),

		ShedBusy:      s.shedBusy.Load(),
		ShedDraining:  s.shedDraining.Load(),
		ConnsRejected: s.connsRejected.Load(),
		Draining:      s.draining.Load(),
	}
	for c := range s.connErrs {
		if n := s.connErrs[c].Load(); n > 0 {
			if st.ConnErrors == nil {
				st.ConnErrors = make(map[string]uint64, numConnCauses)
			}
			st.ConnErrors[connCauseNames[c]] = n
		}
	}
	if m := s.metrics; m != nil {
		var lat, commit, bops, bfences, depth metrics.HistSnapshot
		m.LatSnapshot(&lat)
		m.Commit.Read(&commit)
		m.BatchOps.Read(&bops)
		m.BatchFences.Read(&bfences)
		m.Depth.Read(&depth)
		st.Metrics = &StatsMetrics{
			Gets:     m.Ops[kindGet].Load(),
			Puts:     m.Ops[kindPut].Load(),
			Deletes:  m.Ops[kindDelete].Load(),
			Contains: m.Ops[kindContains].Load(),

			OpP50Ns: lat.Quantile(0.50),
			OpP95Ns: lat.Quantile(0.95),
			OpP99Ns: lat.Quantile(0.99),
			OpMaxNs: lat.MaxNs,

			CommitP99Ns:        commit.Quantile(0.99),
			BatchOpsP50:        bops.Quantile(0.50),
			BatchOpsP95:        bops.Quantile(0.95),
			FencesPerBatchMean: bfences.Mean(),
			DepthP95:           depth.Quantile(0.95),
		}
	}
	return st
}

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("server: closed")

// Serve accepts connections on ln until ln fails or the server is
// closed or draining, handling each connection on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed || s.draining.Load() {
				return ErrClosed
			}
			return err
		}
		go s.ServeConn(c)
	}
}

// Close stops all listeners, closes every open connection, and drains
// the batcher pool — every idle session's thread, arena and reclamation
// slots return to the store's registries.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.open {
		c.Close()
	}
	s.mu.Unlock()
	s.idleMu.Lock()
	idle := s.idle
	s.idle = nil
	s.idleMu.Unlock()
	for _, b := range idle {
		b.Close()
	}
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, wakes every
// handler parked at a pipeline head (their next read fails immediately,
// and anything already buffered is answered DRAINING), lets in-flight
// batches finish their group commit and write their acks, then closes
// everything. If ctx expires first the remaining connections are cut
// hard (Close) and ctx's error is returned — but even then, no response
// was ever written before its batch's fence, so ack⇒persisted holds.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	wake := make([]net.Conn, 0, len(s.open))
	for c := range s.open {
		wake = append(wake, c)
	}
	s.mu.Unlock()
	// Expired read deadlines fail the blocking head read without
	// touching data already buffered — the handler answers that with
	// DRAINING on the way out.
	now := time.Now()
	for _, c := range wake {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.Close()
		return nil
	case <-ctx.Done():
		s.Close()
		<-done
		return ctx.Err()
	}
}

// track registers c for Close and the drain waitgroup, returning false
// when the server is already closed or draining. The draining check
// under mu pairs with Shutdown's lock acquisition: every tracked
// connection is either woken by Shutdown or rejected here, so the
// waitgroup never gains handlers after the drain wait begins.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining.Load() {
		return false
	}
	s.open[c] = struct{}{}
	s.connWG.Add(1)
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.open, c)
	s.mu.Unlock()
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// admit charges a batch of storeOps against the inflight cap and the
// rate limiter. shed=true means answer BUSY (retry after retryMs) and
// execute nothing; otherwise the ops are charged to inflight and the
// caller must release them after Exec.
func (s *Server) admit(storeOps int) (shed bool, retryMs uint32) {
	n := int64(storeOps)
	cur := s.inflight.Add(n)
	if mi := s.opts.MaxInflight; mi > 0 && cur > int64(mi) {
		s.inflight.Add(-n)
		return true, 1
	}
	if ok, retry := s.limiter.Allow(int64(time.Since(s.epoch)), storeOps); !ok {
		s.inflight.Add(-n)
		ms := uint32((retry + time.Millisecond - 1) / time.Millisecond)
		if ms == 0 {
			ms = 1
		}
		return true, ms
	}
	return false, 0
}

// commitQuietly clears a batcher's possibly-deferred state after a
// handler panic, reporting whether the session survived. Committing
// applied-but-unacked effects is linearizable (the client never got a
// response, so either outcome is a legal crash point); a session whose
// commit itself panics is poisoned and must not be pooled.
func commitQuietly(b *Batcher) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	b.bs.Commit()
	return true
}

// ServeConn serves one connection until EOF, a protocol error, Close,
// or a resilience decision (idle reap, slow-reader budget, drain). It
// is exported so tests and in-process benchmarks can serve synthetic
// transports (net.Pipe) without a listener.
func (s *Server) ServeConn(c net.Conn) {
	defer c.Close()
	if !s.track(c) {
		return
	}
	defer s.untrack(c)
	defer s.connWG.Done()
	if mc := s.opts.MaxConns; mc > 0 {
		if s.connsOpen.Add(1) > int64(mc) {
			s.connsOpen.Add(-1)
			s.connsRejected.Add(1)
			// One unsolicited BUSY frame tells the client this was
			// admission control, not a crash; then hang up.
			if s.opts.WriteTimeout > 0 {
				c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			resp := Response{Status: StatusBusy, RetryAfterMs: 1}
			c.Write(AppendResponse(nil, 0, &resp))
			return
		}
		defer s.connsOpen.Add(-1)
	}
	s.conns.Add(1)
	if m := s.metrics; m != nil {
		m.ConnsOpen.Add(1)
		defer m.ConnsOpen.Add(-1)
	}

	b := s.getBatcher()
	// Panic isolation: one connection's failure (a store bug, an
	// injected crash) must not take the process down or poison the
	// batcher pool. The batcher returns to the pool only if its session
	// still commits cleanly; a poisoned one is closed instead, returning
	// its thread, arena and reclamation slots to the store's registries.
	defer func() {
		if r := recover(); r != nil {
			s.connError(c, causePanic, fmt.Errorf("handler panic: %v", r))
			if commitQuietly(b) {
				s.putBatcher(b)
			} else {
				b.Close()
			}
			return
		}
		s.putBatcher(b)
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	reqs := make([]Request, s.opts.MaxBatch)
	resps := make([]Response, s.opts.MaxBatch)
	var out []byte
	// bail answers a malformed request with a best-effort StatusErr
	// frame (the diagnostic the protocol promises) before the deferred
	// Close hangs up; after a framing error the stream offset is
	// unreliable, so the connection cannot continue either way.
	bail := func(err error) {
		if err == nil || err == io.EOF {
			return
		}
		resp := Response{Status: StatusErr, Body: []byte(err.Error())}
		if _, werr := bw.Write(AppendResponse(nil, 0, &resp)); werr == nil {
			bw.Flush()
		}
	}
	// writeResps ships resps[:n] under the slow-reader budget; a false
	// return means the connection is done (already counted and logged).
	writeResps := func(n int) bool {
		out = out[:0]
		for i := 0; i < n; i++ {
			out = AppendResponse(out, reqs[i].Op, &resps[i])
		}
		if s.opts.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		_, err := bw.Write(out)
		if err == nil {
			err = bw.Flush()
		}
		if err == nil {
			return true
		}
		if isTimeout(err) {
			s.connError(c, causeSlowReader, err)
		} else {
			s.connError(c, causeReset, err)
		}
		return false
	}
	// drainReject answers whatever the client already pipelined with
	// DRAINING (store ops; control ops are served) on the way out — the
	// whole buffered pipeline, however many batch windows deep.
	drainReject := func() {
		for br.Buffered() > 0 {
			n := 0
			for n < s.opts.MaxBatch && br.Buffered() > 0 {
				if err := ReadRequest(br, &reqs[n]); err != nil {
					return
				}
				n++
			}
			for i := 0; i < n; i++ {
				if hasKey(reqs[i].Op) {
					resps[i] = Response{Status: StatusDraining}
					s.shedDraining.Inc(b.id)
				} else {
					s.serveControl(reqs[i].Op, &resps[i])
				}
			}
			if !writeResps(n) {
				return
			}
		}
	}
	// readFailed classifies and accounts a request-read failure. A clean
	// EOF is a normal hangup; a deadline expiry is either the Shutdown
	// wake-up (answer DRAINING) or the idle reaper; a malformed frame
	// gets the best-effort diagnostic; anything else is transport loss.
	readFailed := func(err error) {
		switch {
		case err == io.EOF:
		case isTimeout(err):
			if s.draining.Load() {
				drainReject()
			} else {
				s.connError(c, causeIdle, err)
			}
		case errors.Is(err, ErrMalformed):
			s.connError(c, causeFraming, err)
			bail(err)
		default:
			s.connError(c, causeReset, err)
		}
	}
	for {
		if s.draining.Load() && !s.opts.UnsafeDrainAckFirst {
			drainReject()
			return
		}
		if s.opts.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		} else if s.opts.UnsafeDrainAckFirst && s.draining.Load() {
			// Broken-drain mode keeps serving: clear the expired
			// deadline Shutdown set so the tooth stays exposed.
			c.SetReadDeadline(time.Time{})
		}
		// Block for the pipeline's head, then drain what is already
		// buffered — the group-commit window is "whatever the client
		// managed to pipeline", capped at MaxBatch.
		if err := ReadRequest(br, &reqs[0]); err != nil {
			if isTimeout(err) && s.opts.UnsafeDrainAckFirst && s.draining.Load() {
				// Broken-drain mode: Shutdown's wake-up deadline fired at
				// a parked head read (nothing consumed on a pipe). Clear
				// it and keep serving so the tooth bites deterministically.
				c.SetReadDeadline(time.Time{})
				continue
			}
			readFailed(err)
			return
		}
		n := 1
		for n < s.opts.MaxBatch && br.Buffered() > 0 {
			if err := ReadRequest(br, &reqs[n]); err != nil {
				readFailed(err)
				return
			}
			n++
		}
		storeOps := 0
		for i := 0; i < n; i++ {
			if hasKey(reqs[i].Op) {
				storeOps++
			}
		}
		if storeOps > 0 {
			if shed, retryMs := s.admit(storeOps); shed {
				for i := 0; i < n; i++ {
					if hasKey(reqs[i].Op) {
						resps[i] = Response{Status: StatusBusy, RetryAfterMs: retryMs}
						s.shedBusy.Inc(b.id)
					} else {
						s.serveControl(reqs[i].Op, &resps[i])
					}
				}
				if !writeResps(n) {
					return
				}
				continue
			}
			b.Exec(reqs[:n], resps[:n])
			s.inflight.Add(-int64(storeOps))
		} else {
			b.Exec(reqs[:n], resps[:n])
		}
		if !writeResps(n) {
			return
		}
		for i := 0; i < n; i++ {
			if resps[i].Status == StatusErr {
				return // protocol error: answered, then hang up
			}
		}
	}
}

// Batcher executes request batches against one Batched-mode store
// session with group commit. One per connection (it is as single-goroutine as the session
// it wraps); also the entry point the crash batteries drive directly,
// bypassing sockets.
type Batcher struct {
	srv  *Server
	bs   *store.Sess[[]byte]
	bySh [][]int // per-shard request indices, reused across batches
	id   int     // metrics counter stripe (stable per batcher)

	// lastPWBs/lastPFences remember the session thread's counters at the
	// previous publish, so each batch folds only its delta into the
	// server atomics (the thread's counters are single-goroutine state;
	// only this batcher reads them).
	lastPWBs, lastPFences uint64
}

// NewBatcher registers a new batch executor (one Batched-mode session).
func (s *Server) NewBatcher() *Batcher {
	return &Batcher{
		srv:  s,
		bs:   store.Open[[]byte](s.st, store.Batched),
		bySh: make([][]int, s.st.NumShards()),
		id:   int(s.batcherIDs.Add(1) - 1),
	}
}

// getBatcher reuses a pooled batcher or registers a new one. A batcher
// leaves the pool fully committed (every Exec ends in Commit), so
// handing it to the next connection carries no deferred state.
func (s *Server) getBatcher() *Batcher {
	s.idleMu.Lock()
	defer s.idleMu.Unlock()
	if n := len(s.idle); n > 0 {
		b := s.idle[n-1]
		s.idle = s.idle[:n-1]
		return b
	}
	return s.NewBatcher()
}

func (s *Server) putBatcher(b *Batcher) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		// The pool was already drained; close rather than re-pool. (A
		// batcher racing past this check into a drained pool is merely
		// parked until process exit, not a growing leak.)
		b.Close()
		return
	}
	s.idleMu.Lock()
	s.idle = append(s.idle, b)
	s.idleMu.Unlock()
}

// Session exposes the underlying batch session (crash injection,
// stats).
func (b *Batcher) Session() *store.Sess[[]byte] { return b.bs }

// Close releases the batcher's session (thread, arena, reclamation
// slots). Called when the batcher leaves service — a poisoned session
// after a handler panic, or pool drain at server close. Idempotent.
func (b *Batcher) Close() { b.bs.Close() }

// Exec executes one pipeline batch: requests are grouped per shard in
// stable order (same-key requests keep their pipeline order — one key
// always maps to one shard), executed with persistence deferred, and
// committed under a single fence before any response is materialized.
// resps[i] answers reqs[i]; len(resps) must equal len(reqs).
func (b *Batcher) Exec(reqs []Request, resps []Response) {
	st := b.srv.st
	m := b.srv.metrics
	// Capture the shard count once per batch: an online split can swap
	// the store layout mid-loop, and same-key requests must group under
	// ONE index to keep their pipeline order. The grouping is a locality
	// heuristic — the session routes each key correctly regardless — so a
	// count one split stale is harmless; it just groups by the old map.
	nsh := uint64(st.NumShards())
	if int(nsh) > len(b.bySh) {
		b.bySh = append(b.bySh, make([][]int, int(nsh)-len(b.bySh))...)
	}
	for i := range b.bySh {
		b.bySh[i] = b.bySh[i][:0]
	}
	storeOps := 0
	var kindN [numOpKinds]uint64
	for i := range reqs {
		if hasKey(reqs[i].Op) {
			sh := store.HashKeyBytes(reqs[i].Key) % nsh
			b.bySh[sh] = append(b.bySh[sh], i)
			kindN[opKind(reqs[i].Op)]++
			storeOps++
		}
	}
	if storeOps > 0 && b.srv.opts.UnsafeDrainAckFirst && b.srv.draining.Load() {
		// Chaos tooth (see Options.UnsafeDrainAckFirst): acknowledge the
		// batch without executing or persisting anything. The served
		// counters still tick, so the battery sees confident acks that a
		// crash image — or even a plain re-read — will disprove.
		for i := range reqs {
			if hasKey(reqs[i].Op) {
				resps[i] = Response{Status: StatusOK, Flag: true}
			}
		}
		b.srv.batches.Add(1)
		b.srv.opsServed.Add(uint64(storeOps))
		b.answerControl(reqs, resps)
		return
	}
	// With metrics on, service time is measured at batch granularity:
	// three clock reads per Exec — [t0,t1) brackets the execution loop
	// and is attributed to the batch's store ops in equal shares, and
	// [t1,t2) after Commit is the group-commit duration. A clock read
	// per op would cost more than a simulated store op does (time.Now
	// runs ~70ns on hosts without fast vdso paths), so the per-op
	// histograms record each op's share of its batch window instead of
	// an individually-timed span; across many batches of varying
	// composition the per-type distributions still separate. Durations
	// come from time.Since on a fixed epoch — the monotonic-only path,
	// about half the cost of time.Now.
	var t0 time.Duration
	if m != nil {
		m.Depth.RecordNs(int64(len(reqs)))
		if storeOps > 0 {
			t0 = time.Since(b.srv.epoch)
		}
	}
	for _, idxs := range b.bySh {
		for _, i := range idxs {
			req, resp := &reqs[i], &resps[i]
			resp.Status, resp.Val, resp.Flag, resp.Body = StatusOK, 0, false, nil
			switch req.Op {
			case OpGet:
				v, ok := b.bs.Get(req.Key)
				if ok {
					resp.Val = v
				} else {
					resp.Status = StatusNotFound
				}
			case OpPut:
				resp.Flag = b.bs.Put(req.Key, req.Val)
			case OpDelete:
				resp.Flag = b.bs.Delete(req.Key)
			case OpContains:
				resp.Flag = b.bs.Contains(req.Key)
			}
		}
	}
	// The group commit: after this fence — and only after it — the
	// batch's results exist as far as any client can observe. A batch of
	// pure PING/STATS frames touched nothing and commits nothing.
	if storeOps > 0 {
		var t1 time.Duration
		if m != nil {
			t1 = time.Since(b.srv.epoch)
		}
		drained := b.bs.Commit()
		b.srv.batches.Add(1)
		b.srv.opsServed.Add(uint64(storeOps))
		b.srv.drained.Add(uint64(drained))
		ts := &b.bs.Thread().Stats
		pfences := ts.PFences - b.lastPFences
		b.srv.pwbs.Add(ts.PWBs - b.lastPWBs)
		b.srv.pfences.Add(pfences)
		b.lastPWBs, b.lastPFences = ts.PWBs, ts.PFences
		if m != nil {
			m.Commit.RecordNs(int64(time.Since(b.srv.epoch) - t1))
			share := int64(t1-t0) / int64(storeOps)
			for k, n := range kindN {
				if n > 0 {
					m.Lat[k].RecordNNs(share, n)
					m.Ops[k].Add(b.id, n)
				}
			}
			m.BatchOps.RecordNs(int64(storeOps))
			m.BatchFences.RecordNs(int64(pfences))
		}
	}
	// Non-store opcodes are answered after the commit, preserving
	// response order.
	b.answerControl(reqs, resps)
}

// answerControl fills in the responses for every non-store request in
// the batch.
func (b *Batcher) answerControl(reqs []Request, resps []Response) {
	for i := range reqs {
		if hasKey(reqs[i].Op) {
			continue
		}
		b.srv.serveControl(reqs[i].Op, &resps[i])
	}
}

// serveControl answers a PING or STATS request. Control traffic is
// always served — even while store ops are being shed or drained, it is
// how clients find out what is happening.
func (s *Server) serveControl(op byte, resp *Response) {
	resp.Status, resp.Val, resp.Flag, resp.Body, resp.RetryAfterMs = StatusOK, 0, false, nil, 0
	switch op {
	case OpPing:
	case OpStats:
		body, err := json.Marshal(s.Stats())
		if err != nil {
			resp.Status = StatusErr
			resp.Body = []byte(err.Error())
			break
		}
		resp.Body = body
	default:
		// Unreachable from the wire (ReadRequest rejects unknown
		// opcodes before Exec); guards direct Exec callers.
		resp.Status = StatusErr
		resp.Body = []byte(fmt.Sprintf("unknown opcode %d", op))
	}
}
