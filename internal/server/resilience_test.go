package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"log"
	"net"
	"strings"
	"testing"
	"time"

	"flit/internal/client"
	"flit/internal/server"
)

func waitDraining(t *testing.T, srv *server.Server) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if srv.Stats().Draining {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never reported draining")
}

func TestServerBusyUnderRateLimit(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{
		MaxBatch: 1, RateLimit: 1, RateBurst: 1,
	})
	if _, err := c.Put([]byte("a"), 1); err != nil {
		t.Fatalf("first op must fit the burst: %v", err)
	}
	_, err := c.Put([]byte("b"), 2)
	var be *client.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("second op err = %v, want *BusyError", err)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("BusyError.RetryAfter = %v, want positive hint", be.RetryAfter)
	}
	if st := srv.Stats(); st.ShedBusy != 1 {
		t.Fatalf("Stats.ShedBusy = %d, want 1", st.ShedBusy)
	}
	// Control traffic is never shed.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping during overload: %v", err)
	}
}

func TestServerMaxInflightShedsWholeBatch(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{MaxInflight: 2})
	for i := 0; i < 5; i++ {
		c.Send(&server.Request{Op: server.OpPut, Key: []byte{byte('a' + i)}, Val: uint64(i)})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if resp.Status != server.StatusBusy {
			t.Fatalf("resp %d status = %d, want StatusBusy", i, resp.Status)
		}
		if resp.RetryAfterMs == 0 {
			t.Fatalf("resp %d carries no retry-after hint", i)
		}
	}
	if st := srv.Stats(); st.ShedBusy != 5 {
		t.Fatalf("Stats.ShedBusy = %d, want 5", st.ShedBusy)
	}
	// A batch that fits the cap goes through on the same connection.
	if _, err := c.Put([]byte("ok"), 7); err != nil {
		t.Fatalf("within-cap op after shed: %v", err)
	}
}

func TestServerMaxConnsRejectsWithBusy(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{MaxConns: 1})
	cc1, sc1 := net.Pipe()
	go srv.ServeConn(sc1)
	c1 := client.New(cc1)
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatalf("first conn ping: %v", err)
	}

	cc2, sc2 := net.Pipe()
	go srv.ServeConn(sc2)
	defer cc2.Close()
	// The over-cap connection gets one unsolicited BUSY frame, then EOF.
	var resp server.Response
	if err := server.ReadResponse(bufio.NewReader(cc2), 0, &resp); err != nil {
		t.Fatalf("reading rejection frame: %v", err)
	}
	if resp.Status != server.StatusBusy {
		t.Fatalf("rejection status = %d, want StatusBusy", resp.Status)
	}
	if st := srv.Stats(); st.ConnsRejected != 1 {
		t.Fatalf("Stats.ConnsRejected = %d, want 1", st.ConnsRejected)
	}
	// The first connection is unaffected.
	if _, err := c1.Put([]byte("x"), 1); err != nil {
		t.Fatalf("first conn op after rejection: %v", err)
	}
}

// TestServerDrainAnswersDraining pins the drain state machine with a
// deterministic interleaving that net.Pipe's synchronous writes give us:
// the client pipelines 12 ops (3 batches of MaxBatch=4) and only starts
// reading after Shutdown is underway, so the server is parked writing
// batch 1's responses when draining flips. Batch 1 was executed —
// committed and acked. Batches 2 and 3 were still queued — every op
// answered DRAINING, nothing executed.
func TestServerDrainAnswersDraining(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{MaxBatch: 4})
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	c := client.New(cc)
	defer c.Close()

	key := func(i int) []byte { return []byte{byte('a' + i)} }
	for i := 0; i < 12; i++ {
		c.Send(&server.Request{Op: server.OpPut, Key: key(i), Val: uint64(i)})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitDraining(t, srv)

	acked, drained := 0, 0
	for i := 0; i < 12; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		switch resp.Status {
		case server.StatusOK:
			acked++
		case server.StatusDraining:
			drained++
		default:
			t.Fatalf("recv %d: status %d", i, resp.Status)
		}
	}
	if acked != 4 || drained != 8 {
		t.Fatalf("acked=%d drained=%d, want 4 acked (batch 1) and 8 DRAINING", acked, drained)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := srv.Stats(); st.ShedDraining != 8 {
		t.Fatalf("Stats.ShedDraining = %d, want 8", st.ShedDraining)
	}
}

func TestServerShutdownIdleAndServeAfter(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("idle Shutdown: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	if err := srv.Serve(ln); !errors.Is(err, server.ErrClosed) {
		t.Fatalf("Serve after Shutdown = %v, want ErrClosed", err)
	}
}

func TestServerIdleReap(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{IdleTimeout: 30 * time.Millisecond})
	if err := c.Ping(); err != nil {
		t.Fatalf("ping before idling: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := c.Ping(); err == nil {
		t.Fatal("ping on a reaped connection succeeded")
	}
	if st := srv.Stats(); st.ConnErrors["idle"] != 1 {
		t.Fatalf("ConnErrors[idle] = %d, want 1", st.ConnErrors["idle"])
	}
}

// TestServerSlowReaderDoesNotBlockOthers wedges one connection by never
// reading its responses; the write budget must disconnect it while a
// second connection keeps committing normally.
func TestServerSlowReaderDoesNotBlockOthers(t *testing.T) {
	st := newTestStore(t)
	srv := server.New(st, server.Options{WriteTimeout: 40 * time.Millisecond})

	cc1, sc1 := net.Pipe()
	go srv.ServeConn(sc1)
	slow := client.New(cc1)
	defer slow.Close()
	for i := 0; i < 4; i++ {
		slow.Send(&server.Request{Op: server.OpPut, Key: []byte{byte(i)}, Val: 1})
	}
	if err := slow.Flush(); err != nil {
		t.Fatal(err)
	}
	// Never Recv: the server's response write stalls on the synchronous
	// pipe until the budget reaps the connection.

	cc2, sc2 := net.Pipe()
	go srv.ServeConn(sc2)
	good := client.New(cc2)
	defer good.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := good.Put([]byte("live"), 9); err != nil {
			t.Fatalf("healthy conn blocked by slow reader: %v", err)
		}
		if srv.Stats().ConnErrors["slow_reader"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow reader never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerFramingErrorCountedAndLogged(t *testing.T) {
	var logBuf bytes.Buffer
	st := newTestStore(t)
	srv := server.New(st, server.Options{Logger: log.New(&logBuf, "", 0)})
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	defer cc.Close()

	// A zero-length frame is a protocol violation.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, err := cc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server answers with the promised StatusErr diagnostic...
	var resp server.Response
	if err := server.ReadResponse(bufio.NewReader(cc), 0, &resp); err != nil {
		t.Fatalf("reading diagnostic frame: %v", err)
	}
	if resp.Status != server.StatusErr {
		t.Fatalf("diagnostic status = %d, want StatusErr", resp.Status)
	}
	// ...counts the failure by cause, and logs it once with the address.
	deadline := time.Now().Add(time.Second)
	for srv.Stats().ConnErrors["framing"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("framing error never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Stats().ConnErrors["framing"]; got != 1 {
		t.Fatalf("ConnErrors[framing] = %d, want 1", got)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "framing") || strings.Count(logged, "\n") != 1 {
		t.Fatalf("log = %q, want exactly one framing line", logged)
	}
}
