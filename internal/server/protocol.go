package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrMalformed tags protocol-violation decode errors (bad length
// prefixes, unknown opcodes, wrong body sizes) so callers can separate
// them from transport failures with errors.Is.
var ErrMalformed = errors.New("malformed frame")

// The wire protocol is a pipelined, length-prefixed binary framing over
// any stream transport (TCP, unix sockets, net.Pipe). All integers are
// little-endian. Responses are returned strictly in request order per
// connection, so frames carry no sequence numbers — the pipeline is the
// sequencing.
//
// Request frame:
//
//	u32 payloadLen | u8 op | body
//	  GET/DELETE/CONTAINS: u16 keyLen | key
//	  PUT:                 u16 keyLen | key | u64 value
//	  PING/STATS:          (empty)
//
// Response frame:
//
//	u32 payloadLen | u8 status | body
//	  GET:              value (u64) when StatusOK; empty when StatusNotFound
//	  PUT/DELETE/CONTAINS: u8 flag (PUT: newly inserted; DELETE: existed;
//	                       CONTAINS: present)
//	  PING:             (empty)
//	  STATS:            JSON (see Stats; the "v" field carries
//	                    StatsVersion — v2 adds the optional "metrics"
//	                    summary block when the server's metrics core is
//	                    enabled. JSON keeps the versions mutually
//	                    compatible: unknown fields are ignored, missing
//	                    ones stay zero.)
//	  StatusErr:        error message (per-request from the executor, or a
//	                    final best-effort frame for a malformed request —
//	                    either way the server then closes the connection)
//	  StatusBusy:       u32 retry-after-ms — the op was shed by admission
//	                    control, not executed; retry after the hint
//	  StatusDraining:   (empty) — the server is shutting down; the op was
//	                    not executed and the connection closes after the
//	                    batch is answered

// Opcodes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpContains
	OpPing
	OpStats
)

// Response statuses. Busy and Draining are the admission-control
// rejections (see resilience layer): the request was NOT executed and the
// client may retry it — after the carried hint for Busy, against another
// server (or later) for Draining. They can answer any store opcode; PING
// and STATS are control traffic and are always served.
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusBusy     byte = 2 // shed by admission control; body: u32 retry-after-ms
	StatusDraining byte = 3 // server shutting down; empty body
	StatusErr      byte = 255
)

// Frame limits: keys are length-prefixed with 16 bits; the payload cap
// bounds a malformed or hostile length prefix before any allocation.
const (
	MaxKeyLen   = 1<<16 - 1
	MaxFrameLen = 1 << 20
)

// Request is one decoded client request.
type Request struct {
	Op  byte
	Key []byte
	Val uint64

	// buf is ReadRequest's reused frame buffer; Key aliases it until the
	// next ReadRequest on the same Request.
	buf []byte
}

// Response is one decoded server response.
type Response struct {
	Status       byte
	Val          uint64 // GET value
	Flag         bool   // PUT inserted / DELETE existed / CONTAINS present
	Body         []byte // STATS JSON or error message
	RetryAfterMs uint32 // StatusBusy backoff hint

	// buf is ReadResponse's reused frame buffer; Body aliases it until
	// the next ReadResponse on the same Response.
	buf []byte
}

// hasKey reports whether op carries a key field.
func hasKey(op byte) bool {
	return op == OpGet || op == OpPut || op == OpDelete || op == OpContains
}

// AppendRequest appends req's frame to dst and returns the extended
// slice (allocation-free once dst has capacity).
func AppendRequest(dst []byte, req *Request) []byte {
	n := 1
	if hasKey(req.Op) {
		n += 2 + len(req.Key)
		if req.Op == OpPut {
			n += 8
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, req.Op)
	if hasKey(req.Op) {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(req.Key)))
		dst = append(dst, req.Key...)
		if req.Op == OpPut {
			dst = binary.LittleEndian.AppendUint64(dst, req.Val)
		}
	}
	return dst
}

// AppendResponse appends resp's frame for the given request opcode to
// dst and returns the extended slice.
func AppendResponse(dst []byte, op byte, resp *Response) []byte {
	n := 1
	switch {
	case resp.Status == StatusErr, resp.Status == StatusOK && op == OpStats:
		n += len(resp.Body)
	case resp.Status == StatusBusy:
		n += 4
	case resp.Status == StatusDraining:
	case op == OpGet && resp.Status == StatusOK:
		n += 8
	case op == OpPut, op == OpDelete, op == OpContains:
		n++
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, resp.Status)
	switch {
	case resp.Status == StatusErr, resp.Status == StatusOK && op == OpStats:
		dst = append(dst, resp.Body...)
	case resp.Status == StatusBusy:
		dst = binary.LittleEndian.AppendUint32(dst, resp.RetryAfterMs)
	case resp.Status == StatusDraining:
	case op == OpGet && resp.Status == StatusOK:
		dst = binary.LittleEndian.AppendUint64(dst, resp.Val)
	case op == OpPut, op == OpDelete, op == OpContains:
		b := byte(0)
		if resp.Flag {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

// readFrame reads one length-prefixed payload into buf (grown as
// needed), returning the payload slice.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameLen {
		return nil, fmt.Errorf("server: frame length %d outside (0,%d]: %w", n, MaxFrameLen, ErrMalformed)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadRequest decodes the next request frame, reusing req.Key's backing
// array when possible. The returned key aliases req.Key until the next
// call.
func ReadRequest(r *bufio.Reader, req *Request) error {
	payload, err := readFrame(r, req.buf)
	if err != nil {
		return err
	}
	req.buf = payload
	req.Key = payload[:0]
	req.Op = payload[0]
	req.Val = 0
	body := payload[1:]
	if !hasKey(req.Op) {
		if req.Op != OpPing && req.Op != OpStats {
			return fmt.Errorf("server: unknown opcode %d: %w", req.Op, ErrMalformed)
		}
		if len(body) != 0 {
			return fmt.Errorf("server: opcode %d carries %d unexpected body bytes: %w", req.Op, len(body), ErrMalformed)
		}
		return nil
	}
	if len(body) < 2 {
		return fmt.Errorf("server: truncated key header: %w", ErrMalformed)
	}
	klen := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	want := klen
	if req.Op == OpPut {
		want += 8
	}
	if len(body) != want {
		return fmt.Errorf("server: opcode %d body is %d bytes, want %d: %w", req.Op, len(body), want, ErrMalformed)
	}
	req.Key = body[:klen]
	if req.Op == OpPut {
		req.Val = binary.LittleEndian.Uint64(body[klen:])
	}
	return nil
}

// ReadResponse decodes the next response frame for a request with the
// given opcode, reusing resp.Body's backing array when possible.
func ReadResponse(r *bufio.Reader, op byte, resp *Response) error {
	payload, err := readFrame(r, resp.buf)
	if err != nil {
		return err
	}
	resp.buf = payload
	resp.Status = payload[0]
	resp.Val, resp.Flag, resp.Body, resp.RetryAfterMs = 0, false, payload[:0], 0
	body := payload[1:]
	switch {
	case resp.Status == StatusErr, resp.Status == StatusOK && op == OpStats:
		resp.Body = body
	case resp.Status == StatusBusy:
		if len(body) != 4 {
			return fmt.Errorf("server: BUSY response body is %d bytes, want 4: %w", len(body), ErrMalformed)
		}
		resp.RetryAfterMs = binary.LittleEndian.Uint32(body)
	case resp.Status == StatusDraining:
		if len(body) != 0 {
			return fmt.Errorf("server: DRAINING response carries %d unexpected body bytes: %w", len(body), ErrMalformed)
		}
	case op == OpGet && resp.Status == StatusOK:
		if len(body) != 8 {
			return fmt.Errorf("server: GET response body is %d bytes, want 8: %w", len(body), ErrMalformed)
		}
		resp.Val = binary.LittleEndian.Uint64(body)
	case op == OpPut, op == OpDelete, op == OpContains:
		if len(body) != 1 {
			return fmt.Errorf("server: flag response body is %d bytes, want 1: %w", len(body), ErrMalformed)
		}
		resp.Flag = body[0] != 0
	}
	return nil
}
