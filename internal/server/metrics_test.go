package server_test

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flit/internal/client"
	"flit/internal/metrics"
	"flit/internal/server"
	"flit/internal/workload"
)

// TestMetricsUnderConcurrency is the observability race battery: while
// pipelined batches commit on several connections, one goroutine
// hammers STATS over the wire and another scrapes the Prometheus page.
// It asserts the monitoring invariants — counters are monotone across
// polls, every scrape parses, and once traffic quiesces the histogram
// counts equal the op counts — under -race, where any unsynchronized
// read of hot-path state would be reported.
func TestMetricsUnderConcurrency(t *testing.T) {
	srv := server.New(newTestStore(t), server.Options{Metrics: true})
	defer srv.Close()
	dial := func() *client.Conn {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return client.New(cc)
	}

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial()
			defer c.Close()
			keyBuf := make([]byte, 0, 32)
			var req server.Request
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// A pipelined window mixing every store opcode.
				for j := uint64(0); j < 8; j++ {
					k := (i*8 + j) % 512
					keyBuf = workload.AppendKey(keyBuf[:0], k)
					switch j % 4 {
					case 0, 1:
						req = server.Request{Op: server.OpPut, Key: keyBuf, Val: k}
					case 2:
						req = server.Request{Op: server.OpGet, Key: keyBuf}
					default:
						req = server.Request{Op: server.OpContains, Key: keyBuf}
					}
					c.Send(&req)
				}
				if err := c.Flush(); err != nil {
					errs[w] = err
					return
				}
				for c.Pending() > 0 {
					if _, err := c.Recv(); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}

	// STATS poller: counters must be monotone poll over poll, and the
	// v2 block must be present and internally consistent.
	var pollErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := dial()
		defer c.Close()
		var last server.Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := c.Stats()
			if err != nil {
				pollErr = err
				return
			}
			if st.Version != server.StatsVersion {
				pollErr = fmt.Errorf("stats version %d, want %d", st.Version, server.StatsVersion)
				return
			}
			if st.Metrics == nil {
				pollErr = fmt.Errorf("metrics-enabled server returned no v2 block")
				return
			}
			if st.OpsServed < last.OpsServed || st.Batches < last.Batches ||
				st.PWBs < last.PWBs || st.PFences < last.PFences {
				pollErr = fmt.Errorf("counters went backwards: %+v after %+v", st, last)
				return
			}
			m, lm := st.Metrics, last.Metrics
			if lm != nil && (m.Gets < lm.Gets || m.Puts < lm.Puts || m.Contains < lm.Contains) {
				pollErr = fmt.Errorf("op counters went backwards: %+v after %+v", m, lm)
				return
			}
			last = st
		}
	}()

	// Scraper: every exposition page rendered mid-traffic must parse.
	var scrapeErr error
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf.Reset()
			if err := srv.WriteMetrics(&buf); err != nil {
				scrapeErr = err
				return
			}
			if _, err := metrics.ValidateExposition(buf.Bytes()); err != nil {
				scrapeErr = fmt.Errorf("scrape %d: %v\npage:\n%s", scrapes, err, buf.String())
				return
			}
			scrapes++
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if pollErr != nil {
		t.Fatalf("stats poller: %v", pollErr)
	}
	if scrapeErr != nil {
		t.Fatalf("scraper: %v", scrapeErr)
	}
	if scrapes == 0 {
		t.Fatal("scraper never completed a scrape")
	}

	// Quiesced: histogram counts equal op counts equal the acked total.
	m := srv.Metrics()
	stats := srv.Stats()
	if stats.OpsServed == 0 {
		t.Fatal("no traffic reached the server")
	}
	if got := m.OpsTotal(); got != stats.OpsServed {
		t.Fatalf("striped op counters sum to %d, OpsServed = %d", got, stats.OpsServed)
	}
	var lat metrics.HistSnapshot
	m.LatSnapshot(&lat)
	if lat.Count != stats.OpsServed {
		t.Fatalf("latency histograms hold %d observations, OpsServed = %d", lat.Count, stats.OpsServed)
	}
	var bops metrics.HistSnapshot
	m.BatchOps.Read(&bops)
	if bops.Sum != stats.OpsServed {
		t.Fatalf("batch-ops histogram sums to %d ops, OpsServed = %d", bops.Sum, stats.OpsServed)
	}
	if bops.Count != stats.Batches {
		t.Fatalf("batch-ops histogram holds %d batches, Batches = %d", bops.Count, stats.Batches)
	}
	sm := stats.Metrics
	if sm.Gets == 0 || sm.Puts == 0 || sm.Contains == 0 {
		t.Fatalf("v2 op counters missing traffic: %+v", sm)
	}
	if sm.OpP99Ns < sm.OpP50Ns || sm.OpMaxNs < sm.OpP99Ns {
		t.Fatalf("v2 quantiles out of order: %+v", sm)
	}
}

// TestMetricsDisabled: without Options.Metrics the server must serve,
// report v2-less STATS, render a counters-only exposition page, and
// refuse to start a sampler.
func TestMetricsDisabled(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{})
	if _, err := c.Put([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != server.StatsVersion || st.Metrics != nil {
		t.Fatalf("disabled metrics: v=%d metrics=%v", st.Version, st.Metrics)
	}
	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("counters-only page invalid: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "flit_op_seconds") {
		t.Fatal("histogram families on a metrics-disabled page")
	}
	if !strings.Contains(buf.String(), "flit_ops_served_total 1") {
		t.Fatalf("page missing op counter:\n%s", buf.String())
	}
	if ring, stopFn := srv.StartSampler(time.Millisecond, 8); ring != nil {
		stopFn()
		t.Fatal("sampler started without metrics")
	}
}

// TestMetricsHandler scrapes the HTTP endpoint end-to-end and checks
// content type and exposition validity.
func TestMetricsHandler(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{Metrics: true})
	for i := 0; i < 32; i++ {
		if _, err := c.Put([]byte(fmt.Sprintf("key-%d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	hs := httptest.NewServer(srv.MetricsHandler())
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	stats, err := metrics.ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, buf.String())
	}
	if stats.Families < 10 {
		t.Fatalf("only %d families on a metrics-enabled page", stats.Families)
	}
	for _, want := range []string{
		"flit_ops_total{op=\"put\"} 32",
		"flit_op_seconds_bucket{op=\"put\",le=\"+Inf\"} 32",
		"flit_batch_ops_count 32", // depth-1 pipeline: one op per commit
		"flit_pipeline_depth_count 32",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("scrape missing %q:\n%s", want, buf.String())
		}
	}
}

// TestSampler drives traffic past a running sampler and checks the
// ring fills with plausible interval samples.
func TestSampler(t *testing.T) {
	srv, c := pipeServer(t, newTestStore(t), server.Options{Metrics: true})
	ring, stopFn := srv.StartSampler(5*time.Millisecond, 16)
	if ring == nil {
		t.Fatal("sampler refused to start with metrics enabled")
	}
	defer stopFn()
	deadline := time.Now().Add(time.Second)
	for i := 0; ring.Len() < 3; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("ring only reached %d samples", ring.Len())
		}
		if _, err := c.Put([]byte(fmt.Sprintf("key-%d", i%64)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	stopFn()
	samples := ring.Snapshot(nil)
	if len(samples) < 3 {
		t.Fatalf("snapshot holds %d samples", len(samples))
	}
	var sawTraffic bool
	for i := 1; i < len(samples); i++ {
		if samples[i].Ops < samples[i-1].Ops {
			t.Fatalf("cumulative ops went backwards: %+v after %+v", samples[i], samples[i-1])
		}
		if samples[i].UnixNano <= samples[i-1].UnixNano {
			t.Fatalf("sample timestamps not increasing")
		}
		if samples[i].OpsPerSec > 0 {
			sawTraffic = true
			if samples[i].PWBsPerOp <= 0 || samples[i].PFencesPerOp <= 0 {
				t.Fatalf("interval with ops but no persistence cost: %+v", samples[i])
			}
		}
	}
	if !sawTraffic {
		t.Fatal("no sample observed a positive op rate")
	}
	last, ok := ring.Last()
	if !ok || last.Ops == 0 {
		t.Fatalf("last sample = %+v, %v", last, ok)
	}
}
