package server

import (
	"bufio"
	"net"
	"testing"

	"flit/internal/core"
	"flit/internal/store"
)

func newLifecycleStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 10, Policy: core.PolicyHT,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func lifecycleRoundTrip(cc net.Conn, req *Request) (Response, error) {
	var resp Response
	if _, err := cc.Write(AppendRequest(nil, req)); err != nil {
		return resp, err
	}
	err := ReadResponse(bufio.NewReader(cc), req.Op, &resp)
	return resp, err
}

// TestRepeatedPanicsNoResourceGrowth is the poisoned-batcher leak
// regression test: N connections in a row each trip an injected crash
// panic mid-operation. Every poisoned batcher must be closed — its pmem
// thread, arena and reclamation handles released — so the thread
// registry ends where it started instead of growing by one session per
// panic.
func TestRepeatedPanicsNoResourceGrowth(t *testing.T) {
	st := newLifecycleStore(t)
	s := New(st, Options{})
	base := len(st.Mem().Threads())

	const panics = 20
	for i := 0; i < panics; i++ {
		armed := s.NewBatcher()
		armed.Session().Thread().SetCrashAfter(3)
		s.putBatcher(armed)

		cc, sc := net.Pipe()
		done := make(chan struct{})
		go func() { s.ServeConn(sc); close(done) }()
		if resp, err := lifecycleRoundTrip(cc, &Request{Op: OpPut, Key: []byte("boom"), Val: 1}); err == nil {
			t.Fatalf("cycle %d: op on crashing conn was answered: %+v", i, resp)
		}
		cc.Close()
		<-done
	}

	if got := s.connErrs[causePanic].Load(); got != panics {
		t.Fatalf("connErrs[panic] = %d, want %d", got, panics)
	}
	// Crashed pmem threads cannot be reused (their slot is retired), so
	// the registry may not shrink to exactly base — but it must not grow
	// with the panic count beyond those dead slots plus the live pool.
	if n := len(st.Mem().Threads()); n > base+panics {
		t.Fatalf("thread registry grew past the crashed sessions: %d live, base %d, %d panics", n, base, panics)
	}

	// The server still works, and a healthy churn after the panic storm
	// stays flat.
	after := len(st.Mem().Threads())
	for i := 0; i < 10; i++ {
		cc, sc := net.Pipe()
		done := make(chan struct{})
		go func() { s.ServeConn(sc); close(done) }()
		if resp, err := lifecycleRoundTrip(cc, &Request{Op: OpPut, Key: []byte("alive"), Val: uint64(i)}); err != nil || resp.Status != StatusOK {
			t.Fatalf("post-panic put = %+v, %v; want StatusOK", resp, err)
		}
		cc.Close()
		<-done
	}
	if n := len(st.Mem().Threads()); n > after+1 {
		t.Fatalf("healthy churn after panics grew threads: %d live, was %d", n, after)
	}
}

// TestConnectionChurnThreadsBounded: N sequential connect→op→disconnect
// cycles reuse pooled batcher sessions, so the live pmem thread count
// stays bounded by the pool high-water mark (one here), not the
// connection count.
func TestConnectionChurnThreadsBounded(t *testing.T) {
	st := newLifecycleStore(t)
	s := New(st, Options{})
	base := len(st.Mem().Threads())

	const cycles = 50
	for i := 0; i < cycles; i++ {
		cc, sc := net.Pipe()
		done := make(chan struct{})
		go func() { s.ServeConn(sc); close(done) }()
		if resp, err := lifecycleRoundTrip(cc, &Request{Op: OpPut, Key: []byte("churn"), Val: uint64(i)}); err != nil || resp.Status != StatusOK {
			t.Fatalf("cycle %d: put = %+v, %v", i, resp, err)
		}
		cc.Close()
		<-done
	}
	if n := len(st.Mem().Threads()); n > base+1 {
		t.Fatalf("connection churn leaked threads: %d live after %d cycles, base %d", n, cycles, base)
	}
}

// TestServerCloseDrainsPool: Close must release every pooled batcher's
// session resources, returning the thread registry to its pre-server
// state.
func TestServerCloseDrainsPool(t *testing.T) {
	st := newLifecycleStore(t)
	base := len(st.Mem().Threads())
	s := New(st, Options{})

	for i := 0; i < 4; i++ {
		s.putBatcher(s.NewBatcher())
	}
	if n := len(st.Mem().Threads()); n != base+4 {
		t.Fatalf("pool setup: %d threads, want %d", n, base+4)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(st.Mem().Threads()); n != base {
		t.Fatalf("Close left %d threads live, want %d (pool not drained)", n, base)
	}
	// A batcher returned after Close is closed, not pooled.
	late := s.NewBatcher()
	s.putBatcher(late)
	if n := len(st.Mem().Threads()); n != base {
		t.Fatalf("post-Close putBatcher parked a session: %d threads, want %d", n, base)
	}
}
